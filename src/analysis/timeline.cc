#include "analysis/timeline.h"

#include <algorithm>
#include <map>

#include "analysis/ordering.h"
#include "util/strings.h"

namespace dpm::analysis {

std::string render_timeline(const Trace& trace, TimelineOptions opts) {
  if (trace.events.empty()) return "(empty trace)\n";
  const int width = std::max(8, opts.width);

  const Ordering ordering = order_events(trace);
  const ClockAlignment clocks = estimate_clock_alignment(trace, ordering);

  struct Row {
    std::int64_t first = 0;
    std::int64_t last = 0;
    bool seen = false;
    std::map<std::uint64_t, std::int64_t> pending;  // sock -> recvcall time
    std::vector<std::pair<std::int64_t, std::int64_t>> waits;
  };
  std::map<ProcKey, Row> rows;
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;

  for (const Event& e : trace.events) {
    Row& r = rows[e.proc()];
    const std::int64_t t = clocks.aligned(e);
    if (!r.seen) {
      r.first = r.last = t;
      r.seen = true;
    }
    r.last = std::max(r.last, t);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    if (e.type == meter::EventType::recvcall) {
      r.pending[e.sock] = t;
    } else if (e.type == meter::EventType::recv) {
      auto it = r.pending.find(e.sock);
      if (it != r.pending.end()) {
        if (t > it->second) r.waits.emplace_back(it->second, t);
        r.pending.erase(it);
      }
    }
  }
  if (hi <= lo) hi = lo + 1;

  auto bucket_of = [&](std::int64_t t) {
    const auto b = (t - lo) * width / (hi - lo);
    return static_cast<int>(std::clamp<std::int64_t>(b, 0, width - 1));
  };

  std::string out;
  for (const auto& [key, r] : rows) {
    std::string line(static_cast<std::size_t>(width), ' ');
    for (int b = bucket_of(r.first); b <= bucket_of(r.last); ++b) {
      line[static_cast<std::size_t>(b)] = '#';
    }
    for (const auto& [a, b] : r.waits) {
      for (int i = bucket_of(a); i <= bucket_of(b); ++i) {
        line[static_cast<std::size_t>(i)] = '.';
      }
    }
    out += util::strprintf("%-12s |%s|\n", proc_key_text(key).c_str(),
                           line.c_str());
  }
  if (opts.show_legend) {
    out += util::strprintf(
        "window: %lld us ('#' active, '.' waiting for a message)\n",
        static_cast<long long>(hi - lo));
  }
  return out;
}

}  // namespace dpm::analysis
