// Trace browser: the off-line analyst's view. Runs a canned measurement
// session (a three-stage pipeline across four machines), retrieves the
// trace, and then shows what the analysis library can tell you about it:
//
//   * every event record with its deduced Lamport time
//   * the estimated per-machine clock offsets (from the trace alone)
//   * the per-connection traffic table
//   * the communication graph, statistics, parallelism, timeline
//
// This is the "analysis routines" deliverable of §3.3 as an interactive
// artifact rather than a library call.
#include <iostream>

#include "analysis/report.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"
#include "util/strings.h"

int main() {
  using namespace dpm;

  kernel::World world;
  const kernel::MachineId yellow = world.add_machine("yellow");
  world.add_machine("red");
  world.add_machine("green");
  world.add_machine("blue");
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(world, {.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 yellow");
  (void)session.command("newjob pipe");
  (void)session.command("addprocess pipe blue pipe_sink 8301");
  (void)session.command("addprocess pipe green pipe_stage 8300 blue 8301 600");
  (void)session.command("addprocess pipe red pipe_source green 8300 12 200");
  (void)session.command("setflags pipe all");
  (void)session.command("startjob pipe");
  (void)session.command("removejob pipe");
  (void)session.command("getlog f1 pipe.trace");
  (void)session.command("bye");
  world.run();

  auto text = world.machine(yellow).fs.read_text("pipe.trace");
  if (!text) {
    std::cerr << "no trace\n";
    return 1;
  }
  const analysis::Trace trace = analysis::read_trace(*text);
  const analysis::Ordering ordering = analysis::order_events(trace);
  const analysis::ClockAlignment clocks =
      analysis::estimate_clock_alignment(trace, ordering);

  std::cout << "=== event listing (with deduced Lamport times) ===\n";
  std::cout << "lamport  machine  localClock  aligned    event\n";
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const analysis::Event& e = trace.events[i];
    std::cout << util::strprintf(
        "%7llu  m%-6u  %-10lld %-10lld %s pid=%d sock=%llu",
        static_cast<unsigned long long>(ordering.lamport_of(i)), e.machine,
        static_cast<long long>(e.cpu_time),
        static_cast<long long>(clocks.aligned(e)),
        std::string(meter::event_name(e.type)).c_str(), e.pid,
        static_cast<unsigned long long>(e.sock));
    if (ordering.events[i].matched_send) {
      std::cout << "  <- send #" << *ordering.events[i].matched_send;
    }
    std::cout << "\n";
  }

  std::cout << "\n=== estimated clock offsets (relative to machine "
            << clocks.offset_us.begin()->first << ") ===\n";
  for (const auto& [machine, off] : clocks.offset_us) {
    std::cout << util::strprintf("  m%u: %+lld us\n", machine,
                                 static_cast<long long>(off));
  }

  std::cout << "\n" << analysis::full_report(trace);
  return 0;
}
