#include "apps/apps.h"

#include "apps/apps_util.h"

namespace dpm::apps {

util::SysResult<kernel::Fd> connect_retry(kernel::Sys& sys,
                                          const std::string& host,
                                          net::Port port,
                                          ConnectRetryOpts opts) {
  util::Err last = util::Err::etimedout;
  const int attempts = opts.attempts < 1 ? 1 : opts.attempts;
  for (int i = 0; i < attempts; ++i) {
    auto addr = sys.resolve(host, port);
    if (!addr) return util::Err::eaddrnotavail;
    auto fd = sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
    if (!fd) return fd.error();
    auto conn = sys.connect(*fd, *addr, opts.deadline);
    if (conn) return *fd;
    last = conn.error();
    (void)sys.close(*fd);
    if (i + 1 < attempts) sys.sleep(opts.pause);
  }
  return last;
}

util::Bytes payload(std::size_t n, std::uint8_t tag) {
  util::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(tag + i);
  }
  return b;
}

kernel::ProcessMain make_hello(const std::vector<std::string>& argv) {
  return [argv](kernel::Sys& sys) {
    const std::string text = arg_str(argv, 1, "hello");
    (void)sys.print(text + "\n");
    sys.exit(0);
  };
}

void register_all(kernel::ExecRegistry& r) {
  r.register_program("hello", make_hello);
  r.register_program("pingpong_server", make_pingpong_server);
  r.register_program("pingpong_client", make_pingpong_client);
  r.register_program("dgram_sink", make_dgram_sink);
  r.register_program("dgram_sender", make_dgram_sender);
  r.register_program("burst_sender", make_burst_sender);
  r.register_program("waiter", make_waiter);
  r.register_program("echo_server", make_echo_server);
  r.register_program("echo_client", make_echo_client);
  r.register_program("ring_node", make_ring_node);
  r.register_program("grid_node", make_grid_node);
  r.register_program("pipe_source", make_pipe_source);
  r.register_program("pipe_stage", make_pipe_stage);
  r.register_program("pipe_sink", make_pipe_sink);
  r.register_program("tsp_master", make_tsp_master);
  r.register_program("tsp_worker", make_tsp_worker);
}

void install_everywhere(kernel::World& world) {
  register_all(world.programs());
  static const char* kNames[] = {
      "hello",       "pingpong_server", "pingpong_client", "dgram_sink",
      "dgram_sender", "burst_sender",   "waiter",
      "echo_server",    "echo_client",     "ring_node",
      "pipe_source", "pipe_stage",      "pipe_sink",       "tsp_master",
      "grid_node",
      "tsp_worker",
  };
  for (kernel::MachineId m : world.machines()) {
    auto& fs = world.machine(m).fs;
    for (const char* name : kNames) fs.put_executable(name, name);
  }
}

}  // namespace dpm::apps
