#include "kernel/syscalls.h"

#include <algorithm>
#include <cassert>

#include "kernel/meter_hooks.h"
#include "util/logging.h"

namespace dpm::kernel {

using util::Err;

namespace {
constexpr std::size_t kDgramMax = 16 * 1024;
}

// ---------------------------------------------------------------------------
// Prologue / scheduling primitives
// ---------------------------------------------------------------------------

const std::string& Sys::hostname() const {
  return world_.machine(proc_->machine).name;
}

std::int64_t Sys::clock_us() const {
  return mach().clock.read_us(world_.exec().now());
}

std::int64_t Sys::proctime_us() const {
  const std::int64_t grain = world_.config().cpu_grain.count();
  return (proc_->cpu_used.count() / grain) * grain;
}

void Sys::enter(util::Duration extra_cost) {
  ++proc_->syscalls;
  stop_checkpoint();
  charge(world_.config().costs.syscall_base + extra_cost);
}

void Sys::charge(util::Duration d) {
  if (d.count() <= 0) return;
  auto& exec = world_.exec();
  Machine& m = mach();
  const util::TimePoint start = std::max(exec.now(), m.cpu_free_at);
  const util::TimePoint end = start + d;
  m.cpu_free_at = end;
  proc_->cpu_used += d;
  const sim::TaskId me = exec.current_task();
  exec.schedule_at(end, [&exec, me] { exec.make_runnable(me); });
  while (exec.now() < end) exec.park_current();
}

void Sys::stop_checkpoint() {
  auto& exec = world_.exec();
  while (proc_->stop_requested) {
    if (!proc_->in_stop) {
      proc_->in_stop = true;
      if (proc_->parent != 0 && !proc_->initial_suspend) {
        world_.push_child_change(
            mach(), proc_->parent,
            ChildChange{proc_->pid, ChildEvent::stopped, 0});
      }
    }
    proc_->stop_gate.add(exec.current_task());
    exec.park_current();
  }
  if (proc_->in_stop) {
    proc_->in_stop = false;
    if (proc_->parent != 0 && !proc_->initial_suspend) {
      world_.push_child_change(mach(), proc_->parent,
                               ChildChange{proc_->pid, ChildEvent::continued, 0});
    }
    proc_->initial_suspend = false;
  }
}

void Sys::wait_on(WaitChannel& chan, const std::function<bool()>& cond) {
  auto& exec = world_.exec();
  while (!cond()) {
    chan.add(exec.current_task());
    exec.park_current();
    stop_checkpoint();
  }
}

void Sys::compute(util::Duration d) {
  stop_checkpoint();
  charge(d);
}

void Sys::sleep(util::Duration d) {
  stop_checkpoint();
  world_.exec().sleep_for(d);
}

void Sys::yield() {
  auto& exec = world_.exec();
  const sim::TaskId me = exec.current_task();
  exec.schedule_at(exec.now(), [&exec, me] { exec.make_runnable(me); });
  exec.park_current();
  stop_checkpoint();
}

util::SysResult<Socket*> Sys::sock_of(Fd fd) {
  Descriptor* d = proc_->fds.get(fd);
  if (!d) return Err::ebadf;
  if (d->kind != Descriptor::Kind::socket) return Err::enotsock;
  Socket* s = world_.find_socket(d->sock);
  if (!s) return Err::ebadf;
  return s;
}

util::SysResult<void> Sys::auto_bind(Socket& s) {
  if (s.bound) return {};
  Machine& m = mach();
  if (s.domain == SockDomain::internet) {
    net::Interface itf;
    if (!m.primary_interface(&itf)) return Err::eaddrnotavail;
    while (m.inet_bound.count(m.next_port)) ++m.next_port;
    const net::Port port = m.next_port++;
    s.name = net::SockAddr::inet(itf.network, itf.addr, port);
    m.inet_bound[port] = s.id;
  } else {
    s.name = net::SockAddr::internal(world_.next_internal_name_++);
  }
  s.bound = true;
  return {};
}

// ---------------------------------------------------------------------------
// Socket creation / naming
// ---------------------------------------------------------------------------

util::SysResult<Fd> Sys::socket(SockDomain domain, SockType type) {
  enter(world_.config().costs.socket_create);
  const SocketId sid = world_.create_socket(proc_->machine, domain, type);
  world_.socket_ref(sid);
  const Fd fd = proc_->fds.alloc(Descriptor::for_socket(sid));
  if (fd < 0) {
    world_.socket_unref(sid);
    return Err::emfile;
  }
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_SOCKET,
                             meter::MeterSockCrt{
                                 proc_->pid, proc_->pc, sid,
                                 static_cast<std::uint32_t>(domain),
                                 static_cast<std::uint32_t>(type), 0}});
  return fd;
}

util::SysResult<void> Sys::bind(Fd fd, const net::SockAddr& name) {
  enter(world_.config().costs.bind_cost);
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.bound) return Err::einval;
  Machine& m = mach();
  switch (name.family) {
    case net::Family::internet: {
      if (s.domain != SockDomain::internet) return Err::einval;
      net::SockAddr a = name;
      // Fill in the host part from the machine's interface on the
      // requested network (processes bind ports, not foreign addresses).
      bool have = false;
      for (const auto& itf : m.interfaces) {
        if (itf.network == a.network) {
          a.host = itf.addr;
          have = true;
          break;
        }
      }
      if (!have) return Err::eaddrnotavail;
      if (a.port == 0) {
        while (m.inet_bound.count(m.next_port)) ++m.next_port;
        a.port = m.next_port++;
      } else if (m.inet_bound.count(a.port)) {
        return Err::eaddrinuse;
      }
      m.inet_bound[a.port] = s.id;
      s.name = a;
      break;
    }
    case net::Family::unix_path: {
      if (s.domain != SockDomain::unix_path) return Err::einval;
      if (name.path.empty()) return Err::einval;
      if (m.unix_bound.count(name.path)) return Err::eaddrinuse;
      m.unix_bound[name.path] = s.id;
      s.name = name;
      break;
    }
    default:
      return Err::einval;
  }
  s.bound = true;
  return {};
}

util::SysResult<net::SockAddr> Sys::bind_port(Fd fd, net::Port port) {
  net::Interface itf;
  if (!mach().primary_interface(&itf)) return Err::eaddrnotavail;
  auto r = bind(fd, net::SockAddr::inet(itf.network, itf.addr, port));
  if (!r) return r.error();
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  return (*sr)->name;
}

util::SysResult<void> Sys::listen(Fd fd, int backlog) {
  enter();
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.type != SockType::stream) return Err::eopnotsupp;
  if (s.sstate != Socket::StreamState::idle) return Err::einval;
  auto b = auto_bind(s);
  if (!b) return b.error();
  s.sstate = Socket::StreamState::listening;
  s.backlog = std::max(1, backlog);
  return {};
}

// ---------------------------------------------------------------------------
// Connection establishment
// ---------------------------------------------------------------------------

namespace {

/// Runs on the server machine when a connection request arrives.
void syn_arrives(World& w, MachineId server_machine, net::SockAddr dest,
                 SocketId client_id, MachineId client_machine,
                 net::SockAddr client_name, net::NetworkId over_net) {
  Machine& m = w.machine(server_machine);
  // A crashed machine swallows SYNs silently: the caller sees no reply and
  // times out (connect with a deadline) rather than an instant refusal.
  if (!m.up) return;
  SocketId listener_id = 0;
  if (dest.family == net::Family::internet) {
    auto it = m.inet_bound.find(dest.port);
    if (it != m.inet_bound.end()) listener_id = it->second;
  } else if (dest.family == net::Family::unix_path) {
    auto it = m.unix_bound.find(dest.path);
    if (it != m.unix_bound.end()) listener_id = it->second;
  }

  Socket* listener = listener_id ? w.find_socket(listener_id) : nullptr;
  const bool acceptable =
      listener && listener->type == SockType::stream &&
      listener->sstate == Socket::StreamState::listening &&
      listener->accept_queue.size() <
          static_cast<std::size_t>(listener->backlog);

  auto reply = [&w, client_id, server_machine, client_machine, over_net](
                   util::Err result, SocketId conn_id,
                   net::SockAddr listener_name) {
    w.fabric().send(over_net, server_machine, client_machine, /*channel=*/0,
                    /*droppable=*/false, 8,
                    [&w, client_id, result, conn_id, listener_name] {
                      Socket* c = w.find_socket(client_id);
                      if (!c) return;
                      // The client may have given up (connect deadline) or
                      // been reused; a stale SYN-ack must not resurrect it.
                      if (c->sstate != Socket::StreamState::connecting) return;
                      if (result == util::Err::ok) {
                        c->sstate = Socket::StreamState::connected;
                        c->peer = conn_id;
                        c->peer_name = listener_name;
                        c->connect_result = util::Err::ok;
                      } else {
                        c->sstate = Socket::StreamState::idle;
                        c->connect_result = result;
                      }
                      c->connectors.wake_all(w.exec());
                      c->writers.wake_all(w.exec());
                    });
  };

  if (!acceptable) {
    reply(util::Err::econnrefused, 0, {});
    return;
  }

  // Create the connection socket (owned by the accepting side once
  // accept() runs; until then it lives on the listener's queue).
  const SocketId conn_id =
      w.create_socket(server_machine, listener->domain, SockType::stream);
  Socket& conn = w.socket(conn_id);
  conn.sstate = Socket::StreamState::connected;
  conn.bound = true;
  conn.name = listener->name;  // connection sockets share the listener name
  conn.peer = client_id;
  conn.peer_name = client_name;
  conn.net_hint = over_net;
  conn.tx_channel = w.fabric().new_channel();

  listener->accept_queue.push_back(conn_id);
  listener->readers.wake_all(w.exec());

  reply(util::Err::ok, conn_id, listener->name);
}

}  // namespace

util::SysResult<void> Sys::connect(Fd fd, const net::SockAddr& name) {
  return connect_impl(fd, name, std::nullopt);
}

util::SysResult<void> Sys::connect(Fd fd, const net::SockAddr& name,
                                   util::Duration deadline) {
  return connect_impl(fd, name, deadline);
}

util::SysResult<void> Sys::connect_impl(Fd fd, const net::SockAddr& name,
                                        std::optional<util::Duration> deadline) {
  enter(world_.config().costs.connect_cost);
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;

  if (s.type == SockType::dgram) {
    // Predefining the recipient (§3.1): later send() uses this name.
    s.default_dest = name;
    auto b = auto_bind(s);
    if (!b) return b.error();
    meter_emit(world_, *proc_,
               MeterEventDraft{meter::M_CONNECT,
                               meter::MeterConnect{proc_->pid, proc_->pc, s.id,
                                                   s.name.text(), name.text()}});
    return {};
  }

  if (s.sstate == Socket::StreamState::connected) return Err::eisconn;
  if (s.sstate != Socket::StreamState::idle) return Err::einval;
  auto launched = connect_launch(s, name);
  if (!launched) return launched.error();
  const SocketId sid = s.id;

  if (deadline) {
    // Bounded wait: a down machine never answers a SYN, so callers that
    // cannot afford to hang forever pass a deadline and get etimedout.
    auto& exec = world_.exec();
    const util::TimePoint dl = exec.now() + *deadline;
    bool timer_armed = false;
    for (;;) {
      Socket* sock2 = world_.find_socket(sid);
      if (!sock2 || sock2->connect_result.has_value()) break;
      if (exec.now() >= dl) {
        // Give up: back to idle so a stale SYN-ack cannot resurrect the
        // socket into a connection nobody is waiting for.
        sock2->sstate = Socket::StreamState::idle;
        sock2->connect_result = Err::etimedout;
        break;
      }
      const sim::TaskId me = exec.current_task();
      sock2->connectors.add(me);
      if (!timer_armed) {
        exec.schedule_at(dl, [&exec, me] { exec.make_runnable(me); });
        timer_armed = true;
      }
      exec.park_current();
      stop_checkpoint();
    }
  } else {
    wait_on(s.connectors, [this, sid] {
      Socket* sock2 = world_.find_socket(sid);
      return !sock2 || sock2->connect_result.has_value();
    });
  }

  Socket* sock = world_.find_socket(sid);
  if (!sock) return Err::ebadf;
  if (*sock->connect_result != Err::ok) return *sock->connect_result;
  sock->tx_channel = world_.fabric().new_channel();

  meter_emit(world_, *proc_,
             MeterEventDraft{
                 meter::M_CONNECT,
                 meter::MeterConnect{proc_->pid, proc_->pc, sock->id,
                                     sock->name.text(), sock->peer_name.text()}});
  return {};
}

util::SysResult<void> Sys::connect_launch(Socket& s, const net::SockAddr& name) {
  auto b = auto_bind(s);
  if (!b) return b.error();

  // Locate the destination machine.
  MachineId target = 0;
  net::NetworkId over_net = 0;
  if (name.family == net::Family::internet) {
    auto tm = world_.hosts().machine_at(name);
    if (!tm) return Err::econnrefused;
    target = *tm;
    over_net = name.network;
  } else if (name.family == net::Family::unix_path) {
    if (s.domain != SockDomain::unix_path) return Err::einval;
    target = proc_->machine;  // UNIX-domain names are machine-local
  } else {
    return Err::einval;
  }

  s.sstate = Socket::StreamState::connecting;
  s.connect_result.reset();
  s.net_hint = over_net;

  const SocketId sid = s.id;
  const net::SockAddr client_name = s.name;
  const MachineId client_machine = proc_->machine;
  World* w = &world_;
  world_.fabric().send(over_net, proc_->machine, target, /*channel=*/0,
                       /*droppable=*/false, 8,
                       [w, target, name, sid, client_machine, client_name,
                        over_net] {
                         syn_arrives(*w, target, name, sid, client_machine,
                                     client_name, over_net);
                       });
  return {};
}

util::SysResult<void> Sys::connect_begin(Fd fd, const net::SockAddr& name) {
  enter(world_.config().costs.connect_cost);
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.type != SockType::stream) return Err::eopnotsupp;
  if (s.sstate == Socket::StreamState::connected) return Err::eisconn;
  if (s.sstate == Socket::StreamState::connecting) return Err::einval;
  if (s.sstate != Socket::StreamState::idle) return Err::einval;
  return connect_launch(s, name);
}

util::SysResult<void> Sys::connect_finish(Fd fd) {
  enter();
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (!s.connect_result.has_value()) {
    return s.sstate == Socket::StreamState::connecting ? Err::ewouldblock
                                                       : Err::einval;
  }
  if (*s.connect_result != Err::ok) return *s.connect_result;
  if (s.sstate != Socket::StreamState::connected) return Err::econnreset;
  if (s.tx_channel == 0) {
    s.tx_channel = world_.fabric().new_channel();
    meter_emit(world_, *proc_,
               MeterEventDraft{
                   meter::M_CONNECT,
                   meter::MeterConnect{proc_->pid, proc_->pc, s.id,
                                       s.name.text(), s.peer_name.text()}});
  }
  return {};
}

util::SysResult<Fd> Sys::accept(Fd fd) {
  enter(world_.config().costs.accept_cost);
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.type != SockType::stream) return Err::eopnotsupp;
  if (s.sstate != Socket::StreamState::listening) return Err::einval;

  const SocketId sid = s.id;
  wait_on(s.readers, [this, sid] {
    Socket* sock = world_.find_socket(sid);
    return !sock || !sock->accept_queue.empty();
  });

  Socket* listener = world_.find_socket(sid);
  if (!listener) return Err::ebadf;
  const SocketId conn_id = listener->accept_queue.front();
  listener->accept_queue.pop_front();

  world_.socket_ref(conn_id);
  const Fd nfd = proc_->fds.alloc(Descriptor::for_socket(conn_id));
  if (nfd < 0) {
    world_.socket_unref(conn_id);
    return Err::emfile;
  }
  Socket& conn = world_.socket(conn_id);
  meter_emit(world_, *proc_,
             MeterEventDraft{
                 meter::M_ACCEPT,
                 meter::MeterAccept{proc_->pid, proc_->pc, listener->id,
                                    conn_id, listener->name.text(),
                                    conn.peer_name.text()}});
  return nfd;
}

util::SysResult<std::pair<Fd, Fd>> Sys::socketpair() {
  enter(world_.config().costs.socket_create * 2);
  const SocketId a = world_.create_socket(proc_->machine, SockDomain::internal,
                                          SockType::stream);
  const SocketId b = world_.create_socket(proc_->machine, SockDomain::internal,
                                          SockType::stream);
  Socket& sa = world_.socket(a);
  Socket& sb = world_.socket(b);
  sa.name = net::SockAddr::internal(world_.next_internal_name_++);
  sb.name = net::SockAddr::internal(world_.next_internal_name_++);
  sa.bound = sb.bound = true;
  sa.sstate = sb.sstate = Socket::StreamState::connected;
  sa.peer = b;
  sb.peer = a;
  sa.peer_name = sb.name;
  sb.peer_name = sa.name;
  sa.tx_channel = world_.fabric().new_channel();
  sb.tx_channel = world_.fabric().new_channel();

  world_.socket_ref(a);
  const Fd fa = proc_->fds.alloc(Descriptor::for_socket(a));
  if (fa < 0) {
    world_.socket_unref(a);
    return Err::emfile;
  }
  world_.socket_ref(b);
  const Fd fb = proc_->fds.alloc(Descriptor::for_socket(b));
  if (fb < 0) {
    world_.socket_unref(b);
    (void)close(fa);
    return Err::emfile;
  }

  // §3.2: "socketpair() is not treated differently from a pair of socket
  // creates followed by separate connects and accepts; all four messages
  // are produced."
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_SOCKET,
                             meter::MeterSockCrt{
                                 proc_->pid, proc_->pc, a,
                                 static_cast<std::uint32_t>(sa.domain),
                                 static_cast<std::uint32_t>(sa.type), 0}});
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_SOCKET,
                             meter::MeterSockCrt{
                                 proc_->pid, proc_->pc, b,
                                 static_cast<std::uint32_t>(sb.domain),
                                 static_cast<std::uint32_t>(sb.type), 0}});
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_CONNECT,
                             meter::MeterConnect{proc_->pid, proc_->pc, a,
                                                 sa.name.text(),
                                                 sb.name.text()}});
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_ACCEPT,
                             meter::MeterAccept{proc_->pid, proc_->pc, b, b,
                                                sb.name.text(),
                                                sa.name.text()}});
  return std::make_pair(fa, fb);
}

// ---------------------------------------------------------------------------
// Data transfer
// ---------------------------------------------------------------------------

util::SysResult<std::size_t> Sys::send(Fd fd, const util::Bytes& data) {
  return send_impl(fd, data, nullptr);
}

util::SysResult<std::size_t> Sys::send(Fd fd, std::string_view data) {
  return send_impl(fd, util::to_bytes(data), nullptr);
}

util::SysResult<std::size_t> Sys::sendto(Fd fd, const util::Bytes& data,
                                         const net::SockAddr& dest) {
  return send_impl(fd, data, &dest);
}

util::SysResult<std::size_t> Sys::send_impl(Fd fd, const util::Bytes& data,
                                            const net::SockAddr* dest) {
  const auto& costs = world_.config().costs;
  enter(costs.send_base +
        util::usec(costs.send_per_kb.count() *
                   static_cast<std::int64_t>(data.size()) / 1024));
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.type == SockType::stream) {
    if (dest) return Err::eisconn;  // sendto on a stream socket
    return stream_send(s, data);
  }
  const net::SockAddr* target = dest;
  if (!target) {
    if (s.default_dest.is_unspec()) return Err::enotconn;
    target = &s.default_dest;
  }
  return dgram_send(s, data, *target);
}

util::SysResult<std::size_t> Sys::stream_send(Socket& s,
                                              const util::Bytes& data) {
  if (s.sstate != Socket::StreamState::connected) return Err::enotconn;
  const SocketId sid = s.id;
  const std::size_t window = world_.config().stream_window;
  std::size_t sent = 0;

  while (sent < data.size()) {
    Socket* self = world_.find_socket(sid);
    if (!self || self->sstate != Socket::StreamState::connected) return Err::epipe;
    Socket* peer = world_.find_socket(self->peer);
    if (!peer || peer->eof) return Err::epipe;

    const std::size_t used = peer->rbuf.size() + peer->in_flight;
    if (used >= window) {
      // Wait for the reader to drain; senders queue on the *peer's*
      // writers channel (the reader wakes it).
      const SocketId peer_id = peer->id;
      wait_on(peer->writers, [this, peer_id, sid, window] {
        Socket* p = world_.find_socket(peer_id);
        Socket* me = world_.find_socket(sid);
        if (!p || !me || me->sstate != Socket::StreamState::connected ||
            p->eof) {
          return true;  // error surfaced on re-check above
        }
        return p->rbuf.size() + p->in_flight < window;
      });
      continue;
    }

    const std::size_t chunk = std::min(window - used, data.size() - sent);
    util::Bytes payload(data.begin() + static_cast<std::ptrdiff_t>(sent),
                        data.begin() + static_cast<std::ptrdiff_t>(sent + chunk));
    peer->in_flight += chunk;
    const SocketId peer_id = peer->id;
    World* w = &world_;
    world_.fabric().send(self->net_hint, self->machine, peer->machine,
                         self->tx_channel, /*droppable=*/false, chunk,
                         [w, peer_id, payload = std::move(payload)]() mutable {
                           w->deliver_stream(peer_id, std::move(payload),
                                             /*accounted=*/true);
                         });
    sent += chunk;
  }

  // §4.1: when one writes across a connection the recipient's name is not
  // available to the metering software — the name length is zero.
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_SEND,
                             meter::MeterSend{proc_->pid, proc_->pc, sid,
                                              static_cast<std::uint32_t>(
                                                  data.size()),
                                              ""}});
  return sent;
}

util::SysResult<std::size_t> Sys::dgram_send(Socket& s, const util::Bytes& data,
                                             const net::SockAddr& dest) {
  if (data.size() > kDgramMax) return Err::emsgsize;
  auto b = auto_bind(s);
  if (!b) return b.error();

  // Resolve the destination machine; an unresolvable destination behaves
  // like a lost datagram (no error surfaces to the sender).
  MachineId target = 0;
  bool resolvable = false;
  net::NetworkId over_net = 0;
  if (dest.family == net::Family::internet) {
    if (auto tm = world_.hosts().machine_at(dest)) {
      target = *tm;
      over_net = dest.network;
      resolvable = true;
    }
  } else if (dest.family == net::Family::unix_path) {
    target = proc_->machine;
    resolvable = true;
  }

  if (resolvable) {
    const bool local = (target == proc_->machine);
    World* w = &world_;
    const net::SockAddr source = s.name;
    const net::SockAddr to = dest;
    const std::size_t max_queue = world_.config().dgram_queue_max;
    util::Bytes payload = data;
    world_.fabric().send(
        over_net, proc_->machine, target, /*channel=*/0, /*droppable=*/!local,
        data.size(),
        [w, target, to, source, payload = std::move(payload), max_queue]() mutable {
          Machine& m = w->machine(target);
          if (!m.up) return;  // a crashed machine loses arriving datagrams
          SocketId sid = 0;
          if (to.family == net::Family::internet) {
            auto it = m.inet_bound.find(to.port);
            if (it != m.inet_bound.end()) sid = it->second;
          } else {
            auto it = m.unix_bound.find(to.path);
            if (it != m.unix_bound.end()) sid = it->second;
          }
          Socket* rs = sid ? w->find_socket(sid) : nullptr;
          if (!rs || rs->type != SockType::dgram) return;   // dropped
          if (rs->dgrams.size() >= max_queue) return;       // queue overflow
          rs->dgrams.push_back(Datagram{source, std::move(payload)});
          rs->readers.wake_all(w->exec());
        });
  }

  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_SEND,
                             meter::MeterSend{proc_->pid, proc_->pc, s.id,
                                              static_cast<std::uint32_t>(
                                                  data.size()),
                                              dest.text()}});
  return data.size();
}

util::SysResult<std::size_t> Sys::writev(Fd fd,
                                         const std::vector<util::Bytes>& iov) {
  util::Bytes all;
  for (const auto& part : iov) all.insert(all.end(), part.begin(), part.end());
  return send(fd, all);
}

util::SysResult<util::Bytes> Sys::recv(Fd fd, std::size_t max) {
  enter(world_.config().costs.recv_base);
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.type != SockType::stream) {
    // read() on a datagram socket returns one whole message (§3.1).
    auto d = recvfrom_unlogged(fd);
    if (!d) return d.error();
    return std::move(d->data);
  }
  if (s.sstate == Socket::StreamState::listening) return Err::einval;
  if (s.sstate != Socket::StreamState::connected &&
      s.sstate != Socket::StreamState::closed && !s.eof) {
    if (s.rbuf.empty()) return Err::enotconn;
  }

  const SocketId sid = s.id;
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_RECEIVECALL,
                             meter::MeterRecvCall{proc_->pid, proc_->pc, sid}});

  wait_on(s.readers, [this, sid] {
    Socket* sock = world_.find_socket(sid);
    return !sock || !sock->rbuf.empty() ||
           (sock->ring_rx && sock->ring && !sock->ring->empty()) ||
           sock->eof || sock->sstate != Socket::StreamState::connected;
  });

  Socket* sock = world_.find_socket(sid);
  if (!sock) return Err::ebadf;
  std::size_t n = std::min(max, sock->rbuf.size());
  util::Bytes out(sock->rbuf.begin(),
                  sock->rbuf.begin() + static_cast<std::ptrdiff_t>(n));
  sock->rbuf.erase(sock->rbuf.begin(),
                   sock->rbuf.begin() + static_cast<std::ptrdiff_t>(n));
  world_.mobs_.rbuf_bytes->sub(static_cast<std::int64_t>(n));
  if (n > 0 && sock->is_meter_conn && sock->meter_tier == 1) {
    world_.fobs_.queue_bytes->sub(static_cast<std::int64_t>(n));
  }
  if (n > 0 && sock->is_meter_conn) {
    // Advance the conservation frame cursor: these bytes are now the
    // reader's problem; whole records crossing the cursor count consumed.
    world_.meter_consume(*sock, out.data(), n);
  }
  if (n < max && sock->ring_rx && sock->ring && !sock->ring->empty()) {
    // Ring transport: drain the shared ring directly — the bytes never
    // crossed the fabric, only the wakeup doorbell did. The same frame
    // cursor counts consumption, so conservation cannot tell transports
    // apart.
    const std::size_t at = out.size();
    const std::size_t got = sock->ring->pop(out, max - n);
    world_.mobs_.ring_occupancy->sub(static_cast<std::int64_t>(got));
    if (got > 0 && sock->is_meter_conn) {
      world_.meter_consume(*sock, out.data() + at, got);
    }
    n += got;
  }
  if (n > 0) sock->writers.wake_all(world_.exec());  // window opened

  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_RECEIVE,
                             meter::MeterRecv{proc_->pid, proc_->pc, sid,
                                              static_cast<std::uint32_t>(n),
                                              ""}});
  return out;
}

util::SysResult<util::Bytes> Sys::recv_exact(Fd fd, std::size_t n) {
  util::Bytes out;
  while (out.size() < n) {
    auto chunk = recv(fd, n - out.size());
    if (!chunk) return chunk.error();
    if (chunk->empty()) return Err::econnreset;  // EOF mid-message
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  return out;
}

util::SysResult<Datagram> Sys::recvfrom(Fd fd) {
  enter(world_.config().costs.recv_base);
  return recvfrom_unlogged(fd);
}

util::SysResult<Datagram> Sys::recvfrom_unlogged(Fd fd) {
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.type != SockType::dgram) return Err::eopnotsupp;
  auto b = auto_bind(s);
  if (!b) return b.error();

  const SocketId sid = s.id;
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_RECEIVECALL,
                             meter::MeterRecvCall{proc_->pid, proc_->pc, sid}});

  wait_on(s.readers, [this, sid] {
    Socket* sock = world_.find_socket(sid);
    return !sock || !sock->dgrams.empty();
  });

  Socket* sock = world_.find_socket(sid);
  if (!sock) return Err::ebadf;
  Datagram d = std::move(sock->dgrams.front());
  sock->dgrams.pop_front();

  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_RECEIVE,
                             meter::MeterRecv{proc_->pid, proc_->pc, sid,
                                              static_cast<std::uint32_t>(
                                                  d.data.size()),
                                              d.source.text()}});
  return d;
}

// ---------------------------------------------------------------------------
// Descriptor management
// ---------------------------------------------------------------------------

util::SysResult<Fd> Sys::dup(Fd fd) {
  enter();
  Descriptor* d = proc_->fds.get(fd);
  if (!d) return Err::ebadf;
  Descriptor copy = *d;
  if (copy.kind == Descriptor::Kind::socket) world_.socket_ref(copy.sock);
  const SocketId sock_id = copy.kind == Descriptor::Kind::socket ? copy.sock : 0;
  const Fd nfd = proc_->fds.alloc(std::move(copy));
  if (nfd < 0) {
    if (sock_id) world_.socket_unref(sock_id);
    return Err::emfile;
  }
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_DUP,
                             meter::MeterDup{proc_->pid, proc_->pc, sock_id,
                                             sock_id}});
  return nfd;
}

util::SysResult<void> Sys::close(Fd fd) {
  enter();
  auto released = proc_->fds.release(fd);
  if (!released) return Err::ebadf;
  if (released->kind == Descriptor::Kind::socket) {
    meter_emit(world_, *proc_,
               MeterEventDraft{meter::M_DESTSOCKET,
                               meter::MeterDestSock{proc_->pid, proc_->pc,
                                                    released->sock}});
  }
  world_.release_descriptor(*released);
  return {};
}

util::SysResult<net::SockAddr> Sys::getsockname(Fd fd) {
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  return (*sr)->name;
}

util::SysResult<net::SockAddr> Sys::getpeername(Fd fd) {
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  if ((*sr)->sstate != Socket::StreamState::connected) return Err::enotconn;
  return (*sr)->peer_name;
}

// ---------------------------------------------------------------------------
// select / waitchange
// ---------------------------------------------------------------------------

util::SysResult<SelectResult> Sys::select(const std::vector<Fd>& read_fds,
                                          bool child_events,
                                          std::optional<util::Duration> timeout) {
  return select(read_fds, {}, child_events, timeout);
}

namespace {

/// 4.2BSD writability: a completed (or failed) connect attempt, an
/// established connection, or a socket where a send would fail fast. A
/// vanished socket counts writable so the error surfaces on use.
bool sock_writable(const Socket* s) {
  if (!s) return true;
  if (s->type != SockType::stream) return true;
  switch (s->sstate) {
    case Socket::StreamState::connecting:
      return s->connect_result.has_value();
    case Socket::StreamState::listening:
      return false;
    case Socket::StreamState::idle:
    case Socket::StreamState::connected:
    case Socket::StreamState::closed:
      return true;
  }
  return true;
}

}  // namespace

util::SysResult<SelectResult> Sys::select(const std::vector<Fd>& read_fds,
                                          const std::vector<Fd>& write_fds,
                                          bool child_events,
                                          std::optional<util::Duration> timeout) {
  enter();
  auto& exec = world_.exec();
  std::optional<util::TimePoint> deadline;
  if (timeout) deadline = exec.now() + *timeout;
  bool timer_armed = false;
  sim::EventId timer_id = 0;
  // A select satisfied before its deadline must take its timer with it:
  // a stale timeout event would hold the event queue open and stretch
  // every run-to-quiescence (and any sim-time measurement) out to the
  // full deadline. now < deadline guarantees the timer has not fired.
  const auto disarm = [&] {
    if (timer_armed && exec.now() < *deadline) exec.cancel_event(timer_id);
  };

  for (;;) {
    SelectResult out;
    for (Fd fd : read_fds) {
      const Descriptor* d = proc_->fds.get(fd);
      if (!d) {
        disarm();
        return Err::ebadf;
      }
      bool ready = false;
      switch (d->kind) {
        case Descriptor::Kind::socket: {
          Socket* s = world_.find_socket(d->sock);
          ready = !s || s->readable();
          break;
        }
        case Descriptor::Kind::pipe:
          ready = !d->pipe->buf.empty() || d->pipe->closed;
          break;
        case Descriptor::Kind::file:
          ready = true;
          break;
        case Descriptor::Kind::null:
          ready = true;  // reads return EOF immediately
          break;
      }
      if (ready) out.readable.push_back(fd);
    }
    for (Fd fd : write_fds) {
      const Descriptor* d = proc_->fds.get(fd);
      if (!d) {
        disarm();
        return Err::ebadf;
      }
      const bool ready = d->kind != Descriptor::Kind::socket ||
                         sock_writable(world_.find_socket(d->sock));
      if (ready) out.writable.push_back(fd);
    }
    if (child_events && !proc_->child_changes.empty()) out.child_event = true;

    if (!out.readable.empty() || !out.writable.empty() || out.child_event) {
      disarm();
      return out;
    }
    if (deadline && exec.now() >= *deadline) {
      out.timed_out = true;
      return out;
    }

    // Register for wakeups, then park.
    const sim::TaskId me = exec.current_task();
    for (Fd fd : read_fds) {
      const Descriptor* d = proc_->fds.get(fd);
      if (d->kind == Descriptor::Kind::socket) {
        if (Socket* s = world_.find_socket(d->sock)) s->readers.add(me);
      } else if (d->kind == Descriptor::Kind::pipe) {
        d->pipe->readers.add(me);
      }
    }
    for (Fd fd : write_fds) {
      const Descriptor* d = proc_->fds.get(fd);
      if (d->kind == Descriptor::Kind::socket) {
        if (Socket* s = world_.find_socket(d->sock)) {
          // A connecting socket completes through its connectors channel;
          // window/teardown wakeups ride writers.
          s->connectors.add(me);
          s->writers.add(me);
        }
      }
    }
    if (child_events) proc_->child_wait.add(me);
    if (deadline && !timer_armed) {
      timer_id =
          exec.schedule_at(*deadline, [&exec, me] { exec.make_runnable(me); });
      timer_armed = true;
    }
    exec.park_current();
    stop_checkpoint();
  }
}

util::SysResult<ChildChange> Sys::waitchange(bool block) {
  enter();
  if (proc_->child_changes.empty() && !block) return Err::ewouldblock;
  wait_on(proc_->child_wait, [this] { return !proc_->child_changes.empty(); });
  ChildChange c = proc_->child_changes.front();
  proc_->child_changes.pop_front();
  return c;
}

// ---------------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------------

util::SysResult<Pid> Sys::fork(ProcessMain child_main) {
  enter(world_.config().costs.fork_cost);
  SpawnOpts opts;
  opts.parent = proc_->pid;
  auto r = world_.spawn(proc_->machine, proc_->name + "'", proc_->euid,
                        std::move(child_main), opts);
  if (!r) return r.error();
  Process* child = world_.find_process(proc_->machine, *r);
  assert(child);

  // Inherit the descriptor table (§3.1: a forked child gains access to the
  // parent's sockets and open files).
  for (auto& [fd, d] : proc_->fds.entries()) {
    if (d.kind == Descriptor::Kind::socket) world_.socket_ref(d.sock);
    child->fds.install(fd, d);
  }

  // §3.2: "When a process forks, the child process inherits the meter
  // socket and the meter flags of the parent."
  child->meter_flags = proc_->meter_flags;
  if (proc_->meter_sock != 0) {
    world_.socket_ref(proc_->meter_sock);
    child->meter_sock = proc_->meter_sock;
  }

  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_FORK,
                             meter::MeterFork{proc_->pid, proc_->pc, *r}});
  return *r;
}

util::SysResult<Pid> Sys::spawn(const SpawnArgs& sa) {
  enter(world_.config().costs.fork_cost);

  auto stdio = [this](Fd fd) -> util::SysResult<Descriptor> {
    if (fd < 0) return Descriptor::null_dev();
    Descriptor* d = proc_->fds.get(fd);
    if (!d) return Err::ebadf;
    return *d;  // World::spawn refs sockets when installing stdio
  };
  auto in = stdio(sa.stdin_fd);
  if (!in) return in.error();
  auto out = stdio(sa.stdout_fd);
  if (!out) return out.error();
  auto err = stdio(sa.stderr_fd);
  if (!err) return err.error();

  SpawnOpts opts;
  opts.suspended = sa.suspended;
  opts.parent = proc_->pid;
  opts.stdin_fd = *in;
  opts.stdout_fd = *out;
  opts.stderr_fd = *err;
  auto r = world_.spawn_file(proc_->machine, sa.path, proc_->euid, sa.args,
                             std::move(opts));
  if (!r) return r.error();

  // Meter inheritance, as for fork (§3.2: a process created by a monitored
  // server is itself monitored).
  Process* child = world_.find_process(proc_->machine, *r);
  assert(child);
  child->meter_flags = proc_->meter_flags;
  if (proc_->meter_sock != 0) {
    world_.socket_ref(proc_->meter_sock);
    child->meter_sock = proc_->meter_sock;
  }
  meter_emit(world_, *proc_,
             MeterEventDraft{meter::M_FORK,
                             meter::MeterFork{proc_->pid, proc_->pc, *r}});
  return *r;
}

util::SysResult<void> Sys::seteuid(Uid uid) {
  enter();
  if (proc_->uid != kSuperUser) return Err::eperm;
  proc_->euid = uid;
  return {};
}

void Sys::exit(int status) { throw ProcessExit{status}; }

util::SysResult<void> Sys::kill_stop(Pid pid) {
  enter();
  return world_.proc_stop(proc_->machine, pid, proc_->euid);
}

util::SysResult<void> Sys::kill_continue(Pid pid) {
  enter();
  return world_.proc_continue(proc_->machine, pid, proc_->euid);
}

util::SysResult<void> Sys::kill_kill(Pid pid) {
  enter();
  if (pid == proc_->pid) exit(-1);
  return world_.proc_kill(proc_->machine, pid, proc_->euid);
}

// ---------------------------------------------------------------------------
// setmeter (Appendix C)
// ---------------------------------------------------------------------------

util::SysResult<void> Sys::setmeter(std::int32_t proc, std::int32_t flags,
                                    std::int32_t sock) {
  enter();
  Process* target;
  if (proc == meter::SETMETER_SELF) {
    target = proc_.get();
  } else {
    target = world_.find_process(proc_->machine, proc);
  }
  if (!target || target->status == ProcStatus::dead) return Err::esrch;
  // "A user can request metering only for processes belonging to that
  // user. ... A superuser process can set metering for any process."
  if (target->uid != proc_->euid && proc_->euid != kSuperUser) return Err::eperm;

  // Validate the socket argument before changing anything.
  SocketId new_sock = 0;
  bool change_sock = false;
  bool close_sock = false;
  if (sock == meter::SETMETER_NO_CHANGE) {
    // keep
  } else if (sock == meter::SETMETER_NONE) {
    change_sock = true;
    close_sock = true;
  } else {
    Descriptor* d = proc_->fds.get(sock);
    if (!d) return Err::esrch;  // man page: ESRCH "the socket does not exist"
    if (d->kind != Descriptor::Kind::socket) return Err::enotsock;
    Socket* s = world_.find_socket(d->sock);
    if (!s) return Err::esrch;
    // "The socket provided must be a stream socket in the Internet
    // domain." Connectedness is deliberately NOT checked.
    if (s->domain != SockDomain::internet || s->type != SockType::stream) {
      return Err::einval;
    }
    new_sock = s->id;
    change_sock = true;
  }

  if (change_sock) {
    if (target->meter_sock != 0) {
      // "If setmeter() is called specifying a new meter socket for a
      // process already having one, the old socket is closed."
      meter_flush(world_, *target);
      world_.socket_unref(target->meter_sock);
      target->meter_sock = 0;
    }
    if (!close_sock) {
      // The descriptor is duplicated for the metered process but not
      // placed in its descriptor table (§3.2) — just take a reference.
      world_.socket_ref(new_sock);
      target->meter_sock = new_sock;
      Socket& ms = world_.socket(new_sock);
      ms.is_meter_conn = true;
      // Mark the filter-side end too: its receive buffer carries meter
      // records, so a teardown with a partial record pending is a counted
      // loss (MeterStats::malformed_records).
      if (Socket* peer = world_.find_socket(ms.peer)) {
        peer->is_meter_conn = true;
        // Ring transport: map one shared SPSC ring across this edge. The
        // kernel edge of the metered process produces, the filter side
        // consumes; further setmeter calls (and forked children) sharing
        // the socket reuse the same ring.
        const std::size_t rb = world_.config().meter_ring_bytes;
        if (rb > 0 && !ms.ring &&
            ms.sstate == Socket::StreamState::connected) {
          auto ring = std::make_shared<meter::MeterRing>(rb);
          ms.ring = ring;
          peer->ring = std::move(ring);
          peer->ring_rx = true;
        }
      }
    }
  }

  if (flags == meter::SETMETER_NO_CHANGE) {
    // keep
  } else if (flags == meter::SETMETER_NONE) {
    target->meter_flags = 0;
  } else {
    // Appendix C: the mask *replaces* the previous mask (the controller's
    // union semantics are implemented above the kernel).
    target->meter_flags = static_cast<meter::Flags>(flags);
  }
  return {};
}

// ---------------------------------------------------------------------------
// Fan-in tier (local filter / aggregator plumbing)
// ---------------------------------------------------------------------------

util::SysResult<void> Sys::metertap(Fd fd) {
  enter();
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (s.domain != SockDomain::internet || s.type != SockType::stream) {
    return Err::einval;
  }
  if (s.sstate != Socket::StreamState::connected) return Err::enotconn;
  s.is_meter_conn = true;
  s.meter_tier = 1;
  if (Socket* peer = world_.find_socket(s.peer)) {
    // The upstream end is where records are buffered and consumed; marking
    // it routes its frame cursor and teardown residue into the tier-1
    // ledger.
    peer->is_meter_conn = true;
    peer->meter_tier = 1;
  }
  return {};
}

util::SysResult<void> Sys::meter_forward(Fd fd, const util::Bytes& batch,
                                         std::uint32_t records) {
  const auto& costs = world_.config().costs;
  enter(costs.send_base +
        util::usec(costs.send_per_kb.count() *
                   static_cast<std::int64_t>(batch.size()) / 1024));
  auto sr = sock_of(fd);
  if (!sr) return sr.error();
  Socket& s = **sr;
  if (!s.is_meter_conn || s.meter_tier != 1) return Err::einval;
  if (!world_.kernel_fanin_forward(s.id, batch, records)) return Err::epipe;
  return {};
}

// ---------------------------------------------------------------------------
// Files, pipes and stdio
// ---------------------------------------------------------------------------

util::SysResult<Fd> Sys::open(const std::string& path, OpenMode mode) {
  enter(world_.config().costs.file_io_base);
  Machine& m = mach();
  if (mode == OpenMode::read) {
    auto f = m.fs.open_read(path, proc_->euid);
    if (!f) return f.error();
  } else {
    auto f = m.fs.open_write(path, proc_->euid, mode == OpenMode::write_trunc);
    if (!f) return f.error();
  }
  auto of = std::make_shared<OpenFile>();
  of->machine = proc_->machine;
  of->path = path;
  of->writable = mode != OpenMode::read;
  of->append = mode == OpenMode::append;
  if (of->append) {
    if (auto data = m.fs.read_bytes(path)) of->offset = data->size();
  }
  const Fd fd = proc_->fds.alloc(Descriptor::for_file(std::move(of)));
  if (fd < 0) return Err::emfile;
  return fd;
}

util::SysResult<util::Bytes> Sys::read(Fd fd, std::size_t max) {
  Descriptor* d = proc_->fds.get(fd);
  if (!d) return Err::ebadf;
  switch (d->kind) {
    case Descriptor::Kind::socket:
      return recv(fd, max);
    case Descriptor::Kind::file: {
      const auto& costs = world_.config().costs;
      enter(costs.file_io_base);
      auto data = world_.machine(d->file->machine).fs.read_bytes(d->file->path);
      if (!data) return Err::enoent;
      if (d->file->offset >= data->size()) return util::Bytes{};  // EOF
      const std::size_t n = std::min(max, data->size() - d->file->offset);
      util::Bytes out(data->begin() + static_cast<std::ptrdiff_t>(d->file->offset),
                      data->begin() + static_cast<std::ptrdiff_t>(d->file->offset + n));
      d->file->offset += n;
      charge(util::usec(costs.file_io_per_kb.count() *
                        static_cast<std::int64_t>(n) / 1024));
      return out;
    }
    case Descriptor::Kind::pipe: {
      enter();
      auto pipe = d->pipe;
      wait_on(pipe->readers,
              [pipe] { return !pipe->buf.empty() || pipe->closed; });
      const std::size_t n = std::min(max, pipe->buf.size());
      util::Bytes out(pipe->buf.begin(),
                      pipe->buf.begin() + static_cast<std::ptrdiff_t>(n));
      pipe->buf.erase(pipe->buf.begin(),
                      pipe->buf.begin() + static_cast<std::ptrdiff_t>(n));
      return out;
    }
    case Descriptor::Kind::null:
      enter();
      return util::Bytes{};  // EOF
  }
  return Err::ebadf;
}

util::SysResult<std::size_t> Sys::write(Fd fd, const util::Bytes& data) {
  Descriptor* d = proc_->fds.get(fd);
  if (!d) return Err::ebadf;
  switch (d->kind) {
    case Descriptor::Kind::socket:
      return send(fd, data);
    case Descriptor::Kind::file: {
      const auto& costs = world_.config().costs;
      enter(costs.file_io_base +
            util::usec(costs.file_io_per_kb.count() *
                       static_cast<std::int64_t>(data.size()) / 1024));
      if (!d->file->writable) return Err::eacces;
      Machine& fm = world_.machine(d->file->machine);
      auto f = fm.fs.open_write(d->file->path, proc_->euid, /*truncate=*/false);
      if (!f) return f.error();
      auto& content = (*f)->content;
      if (d->file->offset > content.size()) d->file->offset = content.size();
      content.resize(std::max(content.size(), d->file->offset + data.size()));
      std::copy(data.begin(), data.end(),
                content.begin() + static_cast<std::ptrdiff_t>(d->file->offset));
      d->file->offset += data.size();
      return data.size();
    }
    case Descriptor::Kind::pipe: {
      enter();
      auto pipe = d->pipe;
      pipe->buf.insert(pipe->buf.end(), data.begin(), data.end());
      pipe->readers.wake_all(world_.exec());
      return data.size();
    }
    case Descriptor::Kind::null:
      enter();
      return data.size();  // discarded
  }
  return Err::ebadf;
}

util::SysResult<std::size_t> Sys::write(Fd fd, std::string_view data) {
  return write(fd, util::to_bytes(data));
}

util::SysResult<void> Sys::unlink(const std::string& path) {
  enter(world_.config().costs.file_io_base);
  return mach().fs.remove(path, proc_->euid);
}

util::SysResult<void> Sys::rcp(const std::string& src_host,
                               const std::string& src,
                               const std::string& dst_host,
                               const std::string& dst) {
  enter(world_.config().costs.file_io_base);
  auto sm = world_.hosts().machine_of(src_host);
  auto dm = world_.hosts().machine_of(dst_host);
  if (!sm || !dm) return Err::enoent;
  auto r = world_.copy_file(*sm, src, *dm, dst, proc_->euid);
  if (!r) return r.error();
  // Network transfer time: a simple size-proportional sleep.
  const std::int64_t bytes = static_cast<std::int64_t>(*r);
  if (*sm != *dm) sleep(util::msec(5) + util::usec(bytes));
  return {};
}

util::SysResult<std::size_t> Sys::print(std::string_view s) {
  return write(1, s);
}

util::SysResult<std::optional<std::string>> Sys::read_line() {
  for (;;) {
    auto nl = stdin_buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = stdin_buf_.substr(0, nl);
      stdin_buf_.erase(0, nl + 1);
      return std::optional<std::string>(std::move(line));
    }
    auto chunk = read(0, 512);
    if (!chunk) return chunk.error();
    if (chunk->empty()) {
      if (stdin_buf_.empty()) return std::optional<std::string>{};
      std::string line = std::move(stdin_buf_);
      stdin_buf_.clear();
      return std::optional<std::string>(std::move(line));
    }
    stdin_buf_ += util::to_string(*chunk);
  }
}

std::optional<net::SockAddr> Sys::resolve(const std::string& host,
                                          net::Port port) {
  return world_.hosts().resolve_from(hostname(), host, port);
}

}  // namespace dpm::kernel
