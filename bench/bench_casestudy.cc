// E7 — the measurement studies themselves: simulated completion time of
// the two case-study computations as workers are added. This is the
// experiment the *user* of the monitor runs (the Lai & Miller loop: the
// paper reports the tool led to "substantial improvements" in a program's
// performance); the monitor's analyses explain the shapes these curves
// take.
//
// Counters:
//   sim_ms       simulated completion time of the computation
//   speedup left to EXPERIMENTS.md (ratio of sim_ms across worker counts)
#include "bench_util.h"

#include "util/strings.h"

namespace dpm::bench {
namespace {

/// Runs a job to completion and returns the simulated time startjob took.
double run_job(kernel::World& world, control::MonitorSession& session,
               const std::vector<std::string>& add_commands) {
  (void)session.command("filter f1 m0");
  (void)session.command("newjob study");
  for (const auto& cmd : add_commands) (void)session.command(cmd);
  (void)session.command("setflags study all");
  const double t0 = sim_us(world);
  (void)session.command("startjob study");
  world.run();
  return (sim_us(world) - t0) / 1000.0;
}

void BM_TspWorkers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  double total = 0;
  for (auto _ : state) {
    auto world = make_world(static_cast<std::size_t>(workers) + 2);
    control::spawn_meterdaemons(*world);
    control::MonitorSession session(*world, {.host = "m0", .uid = 100});
    world->run();
    (void)session.drain_output();
    std::vector<std::string> cmds;
    cmds.push_back(util::strprintf("addprocess study m1 tsp_master 9000 %d 10 7",
                                   workers));
    for (int i = 0; i < workers; ++i) {
      cmds.push_back(util::strprintf("addprocess study m%d tsp_worker m1 9000",
                                     2 + i));
    }
    total += run_job(*world, session, cmds);
  }
  state.counters["sim_ms"] = total / static_cast<double>(state.iterations());
}

void BM_GridNodes(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  double total = 0;
  for (auto _ : state) {
    auto world = make_world(static_cast<std::size_t>(nodes) + 1);
    control::spawn_meterdaemons(*world);
    control::MonitorSession session(*world, {.host = "m0", .uid = 100});
    world->run();
    (void)session.drain_output();
    std::string hosts;
    for (int i = 0; i < nodes; ++i) hosts += util::strprintf(" m%d", 1 + i);
    std::vector<std::string> cmds;
    for (int i = 0; i < nodes; ++i) {
      cmds.push_back(util::strprintf(
          "addprocess study m%d grid_node %d %d 20 48 32 8400%s", 1 + i, i,
          nodes, hosts.c_str()));
    }
    total += run_job(*world, session, cmds);
  }
  state.counters["sim_ms"] = total / static_cast<double>(state.iterations());
}

BENCHMARK(BM_TspWorkers)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GridNodes)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
