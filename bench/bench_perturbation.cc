// E2 — application perturbation (§2.2).
//
// "The measurements will cause some degradation of the computation's
// performance, but this degradation should be kept as small as possible."
// The workload is a fixed ping-pong exchange; the measured quantity is
// its simulated completion time with metering off, with each flag subset,
// buffered vs immediate. The slowdown ratios are what EXPERIMENTS.md
// reports.
//
// Counters:
//   sim_ms_total   simulated completion time of the whole exchange
//   sim_us_per_rt  simulated time per round trip
#include "bench_util.h"

namespace dpm::bench {
namespace {

constexpr int kRounds = 100;

void run_pingpong(benchmark::State& state, bool metered, meter::Flags flags,
                  const std::string& filter_host = "m0") {
  double total_sim_us = 0;
  for (auto _ : state) {
    auto world = make_world(3);
    control::spawn_meterdaemons(*world);
    control::MonitorSession session(*world, {.host = "m0", .uid = 100});
    world->run();
    (void)session.drain_output();

    (void)session.command("filter f1 " + filter_host);
    (void)session.command("newjob bench");
    (void)session.command("addprocess bench m1 pingpong_server 5000 " +
                          std::to_string(kRounds));
    (void)session.command("addprocess bench m2 pingpong_client m1 5000 " +
                          std::to_string(kRounds) + " 64");
    if (metered) {
      (void)session.command("setflags bench " +
                            meter::flags_to_string(flags & ~meter::M_IMMEDIATE) +
                            ((flags & meter::M_IMMEDIATE) ? " immediate" : ""));
    }
    const double before = sim_us(*world);
    std::string out = session.command("startjob bench");
    const double after = sim_us(*world);
    total_sim_us += after - before;
    benchmark::DoNotOptimize(out);
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["sim_ms_total"] = total_sim_us / iters / 1000.0;
  state.counters["sim_us_per_rt"] = total_sim_us / iters / kRounds;
}

void BM_PingPong_Unmetered(benchmark::State& state) {
  run_pingpong(state, false, 0);
}
void BM_PingPong_AllBuffered(benchmark::State& state) {
  run_pingpong(state, true, meter::M_ALL);
}
void BM_PingPong_AllImmediate(benchmark::State& state) {
  run_pingpong(state, true, meter::M_ALL | meter::M_IMMEDIATE);
}
void BM_PingPong_SendReceiveOnly(benchmark::State& state) {
  run_pingpong(state, true, meter::M_SEND | meter::M_RECEIVE);
}
void BM_PingPong_ConnectionEventsOnly(benchmark::State& state) {
  run_pingpong(state, true,
               meter::M_ACCEPT | meter::M_CONNECT | meter::M_SOCKET |
                   meter::M_DESTSOCKET);
}

// Ablation (§3.4): "There are no restrictions placed on ... the location
// of the filter ... In situations where filter operations contribute
// significantly to the system load, this flexibility may be useful."
// Hosting the filter on the *server's* machine steals that machine's CPU
// from the computation; a disjoint filter machine does not.
void BM_PingPong_FilterOnServerMachine(benchmark::State& state) {
  run_pingpong(state, true, meter::M_ALL, "m1");
}
void BM_PingPong_FilterOnDisjointMachine(benchmark::State& state) {
  run_pingpong(state, true, meter::M_ALL, "m0");
}

BENCHMARK(BM_PingPong_Unmetered)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong_AllBuffered)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong_AllImmediate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong_SendReceiveOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong_ConnectionEventsOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong_FilterOnServerMachine)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong_FilterOnDisjointMachine)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
