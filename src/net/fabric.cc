#include "net/fabric.h"

#include <utility>

namespace dpm::net {

Fabric::Fabric(sim::Executive& exec, std::uint64_t seed)
    : exec_(exec), rng_(seed) {}

void Fabric::configure_network(NetworkId net, NetworkConfig cfg) {
  nets_[net] = cfg;
}

const NetworkConfig& Fabric::config_for(NetworkId net) const {
  auto it = nets_.find(net);
  return it == nets_.end() ? default_net_ : it->second;
}

void Fabric::send(NetworkId net, bool local, std::uint64_t channel,
                  bool droppable, std::size_t size_bytes,
                  std::function<void()> deliver) {
  ++stats_.packets_sent;
  stats_.bytes_sent += size_bytes;

  util::Duration delay;
  if (local) {
    delay = local_.base_latency +
            util::usec(local_.per_kb.count() * static_cast<std::int64_t>(size_bytes) / 1024);
  } else {
    const NetworkConfig& cfg = config_for(net);
    if (droppable && rng_.bernoulli(cfg.dgram_loss)) {
      ++stats_.packets_dropped;
      return;
    }
    delay = cfg.base_latency +
            util::usec(cfg.per_kb.count() * static_cast<std::int64_t>(size_bytes) / 1024);
    if (cfg.jitter_max.count() > 0) {
      delay += util::usec(rng_.uniform(0, cfg.jitter_max.count() - 1));
    }
  }

  util::TimePoint arrive = exec_.now() + delay;
  if (channel != 0) {
    // In-order channels never deliver before an earlier packet on the same
    // channel: push the arrival time past the channel horizon.
    auto& horizon = channel_horizon_[channel];
    if (arrive < horizon) arrive = horizon;
    horizon = arrive;
  }
  exec_.schedule_at(arrive, std::move(deliver));
}

}  // namespace dpm::net
