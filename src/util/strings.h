// Small string utilities shared by the parsers (description files, template
// files, controller command lines) and by report formatting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dpm::util {

/// Splits on any character in `seps`; empty fields are dropped.
std::vector<std::string> split(std::string_view s, std::string_view seps);

/// Splits on `sep` keeping empty fields (for positional formats).
std::vector<std::string> split_keep_empty(std::string_view s, char sep);

std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);

/// Strict integer parse of the whole string (optionally signed).
std::optional<std::int64_t> parse_int(std::string_view s);
/// Integer parse in the given base (2..16), whole string.
std::optional<std::int64_t> parse_int_base(std::string_view s, int base);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` consists only of the paper's legal parameter characters:
/// digits, letters, '/', '.', '-', '_' and ':' (we admit '-' for flag
/// negation and '_' / ':' for names).
bool is_word(std::string_view s);

}  // namespace dpm::util
