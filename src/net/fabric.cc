#include "net/fabric.h"

#include <utility>

namespace dpm::net {

Fabric::Fabric(sim::Executive& exec, std::uint64_t seed, obs::Registry* obs)
    : exec_(exec), rng_(seed) {
  if (!obs) {
    own_obs_ = std::make_unique<obs::Registry>();
    obs = own_obs_.get();
    obs->set_clock([this] { return exec_.now(); });
  }
  obs_ = obs;
  packets_sent_ = &obs_->counter("net.packets_sent");
  packets_dropped_ = &obs_->counter("net.packets_dropped");
  bytes_sent_ = &obs_->counter("net.bytes_sent");
  in_flight_ = &obs_->gauge("net.in_flight");
  delivery_us_ = &obs_->histogram("net.delivery_us");
}

FabricStats Fabric::raw_stats() const {
  return FabricStats{packets_sent_->value(), packets_dropped_->value(),
                     bytes_sent_->value()};
}

FabricStats Fabric::stats() const {
  const FabricStats raw = raw_stats();
  return FabricStats{raw.packets_sent - base_.packets_sent,
                     raw.packets_dropped - base_.packets_dropped,
                     raw.bytes_sent - base_.bytes_sent};
}

void Fabric::configure_network(NetworkId net, NetworkConfig cfg) {
  nets_[net] = cfg;
}

const NetworkConfig& Fabric::config_for(NetworkId net) const {
  auto it = nets_.find(net);
  return it == nets_.end() ? default_net_ : it->second;
}

void Fabric::send(NetworkId net, bool local, std::uint64_t channel,
                  bool droppable, std::size_t size_bytes,
                  std::function<void()> deliver) {
  packets_sent_->add(1);
  bytes_sent_->add(size_bytes);

  util::Duration delay;
  if (local) {
    delay = local_.base_latency +
            util::usec(local_.per_kb.count() * static_cast<std::int64_t>(size_bytes) / 1024);
  } else {
    const NetworkConfig& cfg = config_for(net);
    if (droppable && rng_.bernoulli(cfg.dgram_loss)) {
      packets_dropped_->add(1);
      return;
    }
    delay = cfg.base_latency +
            util::usec(cfg.per_kb.count() * static_cast<std::int64_t>(size_bytes) / 1024);
    if (cfg.jitter_max.count() > 0) {
      delay += util::usec(rng_.uniform(0, cfg.jitter_max.count() - 1));
    }
  }

  util::TimePoint arrive = exec_.now() + delay;
  if (channel != 0) {
    // In-order channels never deliver before an earlier packet on the same
    // channel: push the arrival time past the channel horizon.
    auto& horizon = channel_horizon_[channel];
    if (arrive < horizon) arrive = horizon;
    horizon = arrive;
  }
  delivery_us_->record(util::count_us(arrive - exec_.now()));
  in_flight_->add(1);
  exec_.schedule_at(arrive, [this, d = std::move(deliver)] {
    in_flight_->sub(1);
    d();
  });
}

}  // namespace dpm::net
