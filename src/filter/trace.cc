#include "filter/trace.h"

#include "meter/metermsgs.h"
#include "util/strings.h"

namespace dpm::filter {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == ' ' || ch == '%' || ch == '\n' || ch == '=') {
      out += util::strprintf("%%%02x", static_cast<unsigned char>(ch));
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hi = util::parse_int_base(s.substr(i + 1, 2), 16);
      if (hi) {
        out.push_back(static_cast<char>(*hi));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

std::string trace_line(const Record& rec, const std::set<std::string>& discard) {
  std::string out = "event=" + rec.event_name;
  for (const auto& [name, value] : rec.fields) {
    if (discard.count(name)) continue;
    out += ' ';
    out += name;
    out += '=';
    out += escape(field_value_text(value));
  }
  out += '\n';
  return out;
}

std::string trace_line(const Record& rec, const std::vector<bool>* discard_mask) {
  std::string out = "event=" + rec.event_name;
  for (std::size_t i = 0; i < rec.fields.size(); ++i) {
    if (discard_mask && i < discard_mask->size() && (*discard_mask)[i]) continue;
    const auto& [name, value] = rec.fields[i];
    out += ' ';
    out += name;
    out += '=';
    out += escape(field_value_text(value));
  }
  out += '\n';
  return out;
}

std::optional<Record> parse_trace_line(const std::string& line) {
  const std::string trimmed{util::trim(line)};
  if (trimmed.empty() || trimmed[0] == '#') return std::nullopt;
  Record rec;
  for (const auto& tok : util::split(trimmed, " \t")) {
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string name = tok.substr(0, eq);
    const std::string value = unescape(tok.substr(eq + 1));
    if (name == "event") {
      rec.event_name = value;
      continue;
    }
    if (auto n = util::parse_int(value)) {
      rec.fields.emplace_back(name, *n);
    } else {
      rec.fields.emplace_back(name, value);
    }
  }
  if (rec.event_name.empty()) return std::nullopt;
  if (auto t = rec.num("type")) rec.type = static_cast<std::uint32_t>(*t);
  return rec;
}

ParsedTrace parse_trace(const std::string& text) {
  ParsedTrace out;
  for (const auto& line : util::split_keep_empty(text, '\n')) {
    const std::string t{util::trim(line)};
    if (t.empty() || t[0] == '#') continue;
    auto rec = parse_trace_line(t);
    if (rec) {
      out.records.push_back(std::move(*rec));
    } else {
      ++out.malformed;
    }
  }
  return out;
}

std::string log_path_for(const std::string& filter_name) {
  return "/usr/tmp/" + filter_name + ".log";
}

}  // namespace dpm::filter
