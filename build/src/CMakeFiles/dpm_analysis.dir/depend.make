# Empty dependencies file for dpm_analysis.
# This may be replaced when dependencies are built.
