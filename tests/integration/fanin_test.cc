// The fan-in tier end to end: tree construction and record carriage,
// edge selection counts, the metertap/meter_forward syscall contract,
// and batched-vs-serial controller equivalence (DESIGN.md §11).
#include <gtest/gtest.h>

#include "analysis/trace_reader.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/syscalls.h"
#include "meter/metermsgs.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

using util::Err;

std::size_t count_substr(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// A hub plus g1..gN with the monitor booted and a session on hub.
struct FanInWorld {
  explicit FanInWorld(int n, std::uint64_t seed = 4242)
      : world(dpm::testing::quick_config(seed)) {
    std::vector<std::string> names{"hub"};
    for (int i = 1; i <= n; ++i) names.push_back("g" + std::to_string(i));
    machines = dpm::testing::add_machines(world, names);
    control::install_monitor(world);
    apps::install_everywhere(world);
    control::spawn_meterdaemons(world);
    session = std::make_unique<control::MonitorSession>(
        world, control::MonitorSession::Options{.host = "hub", .uid = 100});
    world.run();
    (void)session->drain_output();
  }

  kernel::World world;
  std::vector<kernel::MachineId> machines;
  std::unique_ptr<control::MonitorSession> session;
};

TEST(FanInTest, TreeBuildsAndCarriesRecords) {
  FanInWorld w(6);
  auto& s = *w.session;
  (void)s.command("filter f1 hub");
  // 6 leaves at arity 2 group into 3 aggregators, then 2, then the root:
  // 5 interior nodes, 4 tiers of machines end to end.
  const std::string out = s.command("fanin f1 2 g 1 6");
  EXPECT_NE(out.find("fanin 'f1': 6 local filters (0 failed), "
                     "5 aggregators (0 failed), depth 4"),
            std::string::npos)
      << out;

  (void)s.command("newjob big");
  (void)s.command("addprocess big g2 pingpong_server 5600 6");
  (void)s.command("addprocess big g5 pingpong_client g2 5600 6 32");
  (void)s.command("setflags big all");
  (void)s.command("startjob big");
  w.world.run();

  // Records really crossed the tree and every hop is accounted for.
  const kernel::FanInConservation fic = w.world.fanin_conservation();
  EXPECT_GT(fic.forwarded, 0u);
  EXPECT_TRUE(fic.balanced())
      << "forwarded=" << fic.forwarded << " accounted=" << fic.accounted()
      << " consumed=" << fic.consumed << " lost=" << fic.lost
      << " overflow=" << fic.overflow << " stranded=" << fic.stranded
      << " malformed=" << fic.malformed << " buffered=" << fic.buffered;
  EXPECT_TRUE(w.world.meter_conservation().balanced());

  // The root renders forwarded records into an ordinary, well-formed log.
  (void)s.command("getlog f1 t");
  auto text = w.world.machine(w.machines[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  EXPECT_EQ(trace.malformed, 0u);
  EXPECT_GT(trace.events.size(), 0u);
}

TEST(FanInTest, LocalFiltersSelectExactly) {
  FanInWorld w(4);
  auto& s = *w.session;
  // Accept only the large sends: 1-in-`every` of each burst_sender's
  // datagrams, so the accepted count is exact and loss-free.
  w.world.machine_by_name("hub")->fs.put_text(
      "tmpl_big", "machine=#*, pid=#*, type=1, msgLength>256\n");
  (void)s.command("filter f1 hub filter descriptions tmpl_big");
  const std::string out = s.command("fanin f1 2 g 1 4");
  EXPECT_EQ(count_substr(out, "(0 failed)"), 2u) << out;

  constexpr int kCount = 24, kEvery = 4;
  (void)s.command("newjob send");
  (void)s.command("setflags send send");
  (void)s.command(util::strprintf(
      "addgroup send g 1 4 1 burst_sender self 9 %d 64 512 %d 300", kCount,
      kEvery));
  const auto a0 = w.world.obs().counter("filter.accepted").value();
  (void)s.command("startjob send");
  w.world.run();
  const auto accepted = w.world.obs().counter("filter.accepted").value() - a0;

  // 4 senders x ceil(24/4) large datagrams each, all surviving selection.
  EXPECT_EQ(accepted, 4u * ((kCount + kEvery - 1) / kEvery));
  EXPECT_TRUE(w.world.fanin_conservation().balanced());
  EXPECT_TRUE(w.world.meter_conservation().balanced());
}

TEST(FanInTest, MeterForwardSyscallContract) {
  kernel::World world(dpm::testing::quick_config(7));
  auto machines = dpm::testing::add_machines(world, {"red", "green"});
  world.add_account_everywhere(100);

  // A framed tier-1 batch: two wire records, each self-framing (leading
  // u32 size), exactly as a local filter re-frames accepted bytes.
  meter::MeterMsg m1;
  m1.header.machine = 1;
  m1.body = meter::MeterSend{
      .pid = 7, .pc = 1, .sock = 3, .msg_length = 64, .dest_name = {}};
  meter::MeterMsg m2;
  m2.header.machine = 1;
  m2.body = meter::MeterRecv{
      .pid = 8, .pc = 2, .sock = 4, .msg_length = 64, .source_name = {}};
  util::Bytes batch = m1.serialize();
  const util::Bytes second = m2.serialize();
  batch.insert(batch.end(), second.begin(), second.end());
  const std::size_t batch_bytes = batch.size();

  std::size_t drained = 0;
  auto sr = world.spawn(machines[0], "up", 100, [&](kernel::Sys& sys) {
    auto ls = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    ASSERT_TRUE(ls.ok());
    ASSERT_TRUE(sys.bind_port(*ls, 4800).ok());
    ASSERT_TRUE(sys.listen(*ls, 1).ok());
    auto conn = sys.accept(*ls);
    ASSERT_TRUE(conn.ok());
    while (drained < batch_bytes) {
      auto d = sys.recv(*conn, batch_bytes - drained);
      if (!d.ok() || d->empty()) break;
      drained += d->size();
    }
  });
  ASSERT_TRUE(sr.ok());

  auto cr = world.spawn(machines[1], "down", 100, [&](kernel::Sys& sys) {
    // Untapped datagram socket: metertap wants a connected stream.
    auto dg = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::dgram);
    ASSERT_TRUE(dg.ok());
    EXPECT_EQ(sys.metertap(*dg).error(), Err::einval);

    auto fd = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    ASSERT_TRUE(fd.ok());
    EXPECT_EQ(sys.metertap(*fd).error(), Err::enotconn);

    sys.sleep(util::msec(5));  // let the upstream bind
    auto addr = sys.resolve("red", 4800);
    ASSERT_TRUE(addr.has_value());
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());

    // Forwarding on an untapped edge is refused; tapping converts it.
    EXPECT_EQ(sys.meter_forward(*fd, batch, 2).error(),
              Err::einval);
    ASSERT_TRUE(sys.metertap(*fd).ok());
    ASSERT_TRUE(sys.meter_forward(*fd, batch, 2).ok());
  });
  ASSERT_TRUE(cr.ok());

  world.run();
  EXPECT_EQ(drained, batch_bytes);
  const kernel::FanInConservation fic = world.fanin_conservation();
  EXPECT_EQ(fic.forwarded, 2u);
  EXPECT_EQ(fic.consumed, 2u);
  EXPECT_TRUE(fic.balanced());
}

TEST(FanInTest, BatchedJobOpsMatchSerial) {
  FanInWorld w(3);
  auto& s = *w.session;
  (void)s.command("filter f1 hub");

  // Same 9-process group through both RPC modes; the serial wave reports
  // one line per process, the batched wave one summary — identical counts.
  (void)s.command("rpcmode serial");
  (void)s.command("newjob wS");
  (void)s.command("addgroup wS g 1 3 3 waiter");
  std::string out = s.command("startjob wS");
  EXPECT_EQ(count_substr(out, "' started."), 9u) << out;
  out = s.command("stopjob wS");
  EXPECT_EQ(count_substr(out, "' stopped."), 9u) << out;
  out = s.command("removejob wS");
  EXPECT_EQ(count_substr(out, "' removed"), 9u) << out;

  (void)s.command("rpcmode batched 4");
  (void)s.command("newjob wB");
  out = s.command("addgroup wB g 1 3 3 waiter");
  EXPECT_NE(out.find("9 of 9 processes created across 3 machines"),
            std::string::npos)
      << out;
  out = s.command("startjob wB");
  EXPECT_NE(out.find("'wB': 9 of 9 processes started."), std::string::npos)
      << out;
  out = s.command("stopjob wB");
  EXPECT_NE(out.find("'wB': 9 of 9 processes stopped."), std::string::npos)
      << out;
  out = s.command("removejob wB");
  EXPECT_EQ(count_substr(out, "' removed"), 9u) << out;

  // The pipelined path really ran: calls were put in flight concurrently.
  EXPECT_GT(w.world.obs().counter("daemon.rpc_pipelined").value(), 0u);
}

}  // namespace
}  // namespace dpm
