# Empty dependencies file for dpm_util.
# This may be replaced when dependencies are built.
