// RollingWindow: sliding sim-time sum/count with exact eviction at the
// window boundary.
#include <gtest/gtest.h>

#include "analysis/live/window.h"

namespace dpm::analysis::live {
namespace {

TEST(RollingWindow, CountsAndSumsWithinSpan) {
  RollingWindow w(1000);
  w.add(0);
  w.add(500);
  w.add(999);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_EQ(w.sum(), 3);
}

TEST(RollingWindow, EvictsAtExactBoundary) {
  RollingWindow w(1000);
  w.add(0);
  w.add(500);
  w.add(1000);  // cutoff is now 0: the t=0 entry falls out (t <= cutoff)
  EXPECT_EQ(w.count(), 2u);
  w.advance(1500);  // cutoff 500: t=500 falls out
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 1);
  w.advance(2001);  // cutoff 1001: empty
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.sum(), 0);
}

TEST(RollingWindow, WeightsAccumulateAndEvict) {
  RollingWindow w(100);
  w.add(10, 64);
  w.add(50, 128);
  EXPECT_EQ(w.sum(), 192);
  w.advance(120);  // cutoff 20: the 64-byte entry leaves
  EXPECT_EQ(w.sum(), 128);
  EXPECT_EQ(w.count(), 1u);
}

TEST(RollingWindow, AdvanceNeverMovesBackwards) {
  RollingWindow w(100);
  w.add(1000, 5);
  w.advance(500);  // regression: ignored, nothing un-evicted or re-evicted
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 5);
  w.advance(1101);
  EXPECT_EQ(w.count(), 0u);
}

TEST(RollingWindow, PerSecondScalesBySpan) {
  RollingWindow w(500'000);  // half a second
  w.add(0, 10);
  EXPECT_DOUBLE_EQ(w.per_second(), 20.0);
  w.advance(600'000);
  EXPECT_DOUBLE_EQ(w.per_second(), 0.0);
}

TEST(RollingWindow, EdgeEventCountedInExactlyOneWindow) {
  // Regression for the window-boundary tick: the window at `now` is the
  // half-open interval (now - span, now]. An event landing exactly on the
  // edge between two adjacent windows belongs to the earlier one only —
  // present for every `now` in [t, t + span), evicted at the first tick
  // where now == t + span, so it is never counted twice and never lost.
  const std::int64_t span = 1000;
  const std::int64_t t = 5000;
  RollingWindow w(span);
  w.add(t);
  EXPECT_EQ(w.count(), 1u);          // its own window sees it immediately
  w.advance(t + span - 1);
  EXPECT_EQ(w.count(), 1u);          // last tick of the first window: in
  w.advance(t + span);
  EXPECT_EQ(w.count(), 0u);          // first tick of the next window: out
  EXPECT_EQ(w.sum(), 0);

  // The same edge with a fresh window and one advance step straight over
  // the boundary: the event is still counted exactly once overall.
  RollingWindow v(span);
  v.add(t);
  std::int64_t observed = 0;
  for (std::int64_t now = t; now <= t + span; ++now) {
    v.advance(now);
    observed += v.count();
  }
  EXPECT_EQ(observed, span);  // in for ticks [t, t+span), out at t+span
}

TEST(RollingWindow, NonPositiveSpanClampsToOne) {
  RollingWindow w(0);
  w.add(100);
  EXPECT_EQ(w.count(), 1u);
  w.advance(102);
  EXPECT_EQ(w.count(), 0u);
}

}  // namespace
}  // namespace dpm::analysis::live
