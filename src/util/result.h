// errno-style error codes and a lightweight expected-like result type.
//
// The simulated kernel's system calls return `SysResult<T>`: either a value
// or an `Err`. This mirrors the UNIX convention (return value or errno)
// while staying type-safe.
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>
#include <utility>
#include <variant>

namespace dpm::util {

/// Subset of 4.2BSD errno values used by the simulated kernel.
enum class Err : std::uint8_t {
  ok = 0,
  eperm,         // operation not permitted (setmeter on foreign process)
  esrch,         // no such process / socket (setmeter man page)
  ebadf,         // bad descriptor
  einval,        // invalid argument
  eacces,        // permission denied (file access)
  enoent,        // no such file
  emfile,        // descriptor table full
  enotsock,      // descriptor is not a socket
  eopnotsupp,    // operation not supported on this socket type
  eaddrinuse,    // address already in use
  eaddrnotavail, // cannot assign requested address
  eisconn,       // socket is already connected
  enotconn,      // socket is not connected
  econnrefused,  // nobody listening on the remote address
  econnreset,    // connection reset by peer
  epipe,         // write to a closed stream
  ewouldblock,   // non-blocking operation would block
  eintr,         // interrupted (process killed while blocked)
  etimedout,     // connection attempt timed out
  emsgsize,      // datagram too large
  echild,        // no children to wait for
  eagain,        // resource temporarily unavailable (process table full)
  enomem,        // out of simulated memory/buffers
};

/// Stable lower-case name, e.g. "econnrefused".
std::string_view err_name(Err e);

/// Human-readable description for diagnostics.
std::string_view err_message(Err e);

/// Value-or-error result. `Err::ok` is not a valid error payload.
template <typename T>
class [[nodiscard]] SysResult {
 public:
  SysResult(T value) : rep_(std::in_place_index<0>, std::move(value)) {}
  SysResult(Err e) : rep_(std::in_place_index<1>, e) { assert(e != Err::ok); }

  bool ok() const { return rep_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Error code; Err::ok when the result holds a value.
  Err error() const { return ok() ? Err::ok : std::get<1>(rep_); }

  T& value() & {
    assert(ok());
    return std::get<0>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<0>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Err> rep_;
};

/// Void specialization: success or error.
template <>
class [[nodiscard]] SysResult<void> {
 public:
  SysResult() : err_(Err::ok) {}
  SysResult(Err e) : err_(e) {}

  bool ok() const { return err_ == Err::ok; }
  explicit operator bool() const { return ok(); }
  Err error() const { return err_; }

 private:
  Err err_;
};

}  // namespace dpm::util
