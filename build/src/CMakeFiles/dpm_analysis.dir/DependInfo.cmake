
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/comm_stats.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/comm_stats.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/comm_stats.cc.o.d"
  "/root/repo/src/analysis/diagnose.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/diagnose.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/diagnose.cc.o.d"
  "/root/repo/src/analysis/ordering.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/ordering.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/ordering.cc.o.d"
  "/root/repo/src/analysis/parallelism.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/parallelism.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/parallelism.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/report.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/report.cc.o.d"
  "/root/repo/src/analysis/structure.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/structure.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/structure.cc.o.d"
  "/root/repo/src/analysis/timeline.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/timeline.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/timeline.cc.o.d"
  "/root/repo/src/analysis/trace_reader.cc" "src/CMakeFiles/dpm_analysis.dir/analysis/trace_reader.cc.o" "gcc" "src/CMakeFiles/dpm_analysis.dir/analysis/trace_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
