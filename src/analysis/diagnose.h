// Performance diagnosis: turn a trace into the findings a programmer
// acts on. This is the end purpose of the tool ("aid the programmer in
// developing, debugging, and measuring the performance of distributed
// programs") distilled into rules over the other analyses:
//
//   * starved processes — a large fraction of the active window spent in
//     recvcall→receive waits, attributed to the dominant sending peer
//   * serialization — low average parallelism despite several processes
//   * traffic hot spots — one channel dominating the byte volume
//   * message loss — attributable datagram sends that never arrived
//   * clock skew — cross-machine timestamp anomalies and their magnitude
#pragma once

#include <string>
#include <vector>

#include "analysis/trace_reader.h"

namespace dpm::analysis {

enum class Severity { info, notice, warning };

struct Finding {
  Severity severity = Severity::info;
  std::string category;  // "wait", "serial", "hotspot", "loss", "clocks"
  std::string message;   // human-readable, self-contained
};

struct Diagnosis {
  std::vector<Finding> findings;

  bool has(const std::string& category) const;
  std::string render() const;
};

Diagnosis diagnose(const Trace& trace);

}  // namespace dpm::analysis
