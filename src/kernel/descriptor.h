// Descriptor tables.
//
// Each process owns a descriptor table pointing at sockets, open files, or
// host pipes (the harness's stand-in for a terminal). Fork copies the
// table, as 4.2BSD does; dup copies one slot. The table has a fixed size
// so tests can verify that metering does not consume descriptor budget
// (§3.2: the meter socket "is not stored in the process's descriptor
// table").
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "kernel/wait.h"
#include "util/bytes.h"

namespace dpm::kernel {

/// An open regular file: shared position, as when inherited across fork.
struct OpenFile {
  MachineId machine;
  std::string path;
  std::size_t offset = 0;
  bool writable = false;
  bool append = false;
};

/// One direction of a harness-visible byte pipe (simulated terminal).
/// The harness side reads/writes outside the simulation; the process side
/// goes through read/write syscalls.
struct HostPipe {
  std::deque<std::uint8_t> buf;
  bool closed = false;  // writer side closed: readers see EOF after drain
  WaitChannel readers;

  void host_write(const std::string& s) {
    buf.insert(buf.end(), s.begin(), s.end());
  }
  std::string host_drain() {
    std::string out(buf.begin(), buf.end());
    buf.clear();
    return out;
  }
};

struct Descriptor {
  enum class Kind { null, socket, file, pipe };
  Kind kind = Kind::null;
  SocketId sock = 0;
  std::shared_ptr<OpenFile> file;
  std::shared_ptr<HostPipe> pipe;

  static Descriptor null_dev() { return Descriptor{}; }
  static Descriptor for_socket(SocketId s) {
    Descriptor d;
    d.kind = Kind::socket;
    d.sock = s;
    return d;
  }
  static Descriptor for_file(std::shared_ptr<OpenFile> f) {
    Descriptor d;
    d.kind = Kind::file;
    d.file = std::move(f);
    return d;
  }
  static Descriptor for_pipe(std::shared_ptr<HostPipe> p) {
    Descriptor d;
    d.kind = Kind::pipe;
    d.pipe = std::move(p);
    return d;
  }
};

class DescriptorTable {
 public:
  explicit DescriptorTable(std::size_t max_slots) : slots_(max_slots) {}

  /// Lowest free slot, as UNIX allocates descriptors. -1 if full.
  Fd alloc(Descriptor d);

  /// Installs at a specific slot (stdio wiring), replacing what is there.
  void install(Fd fd, Descriptor d);

  Descriptor* get(Fd fd);
  const Descriptor* get(Fd fd) const;

  /// Clears the slot and returns what it held.
  std::optional<Descriptor> release(Fd fd);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t in_use() const;

  /// All occupied slots (fork inheritance walks this).
  std::vector<std::pair<Fd, Descriptor>> entries() const;

 private:
  std::vector<std::optional<Descriptor>> slots_;
};

}  // namespace dpm::kernel
