// Critical-path attribution: the incremental max-cost relaxation must
// report exact, hand-computable paths — per-process compute time from
// program edges, per-channel wait time from message edges.
#include <gtest/gtest.h>

#include "analysis/live/aggregator.h"
#include "analysis/trace_reader.h"
#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using live::EdgeKind;
using live::LiveAnalysis;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;

LiveAnalysis analyze(const std::vector<std::pair<Stamp, meter::MeterBody>>& evs) {
  const Trace trace = read_trace(analysis_testing::trace_text(evs));
  LiveAnalysis live;
  for (const Event& e : trace.events) live.add_event(e);
  return live;
}

TEST(CriticalPath, EmptyIsInvalid) {
  LiveAnalysis live;
  EXPECT_FALSE(live.critical_path().valid);
  EXPECT_EQ(live.critical_path().total_us, 0);
}

TEST(CriticalPath, SingleProcessChain) {
  // Three events of one process at t = 0, 100, 250: the path is the
  // program chain, total = elapsed span, all of it attributed to the one
  // process.
  LiveAnalysis live = analyze({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{0, 100, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{0, 250, 0}, MeterSend{1, 0, 5, 8, ""}},
  });
  const auto cp = live.critical_path();
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.total_us, 250);
  EXPECT_EQ(cp.end_event, 2u);
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_EQ(cp.steps[0].kind, EdgeKind::program);
  EXPECT_EQ(cp.steps[0].elapsed_us, 100);
  EXPECT_EQ(cp.steps[1].elapsed_us, 150);
  const ProcKey p{0, 1};
  ASSERT_TRUE(cp.proc_us.contains(p));
  EXPECT_EQ(cp.proc_us.at(p), 250);
  EXPECT_TRUE(cp.channel_us.empty());
}

TEST(CriticalPath, PingPongWithSkewAttributesBothChannels) {
  // Client (machine 0, pid 1) sends at t=1000; the server's clock runs
  // behind, stamping the receive t=900 (raw latency -100, clamped to 0
  // and counted as an anomaly). The server replies at 1700, received at
  // 2100 (latency 400). The relayed path — 900 compute + 0 + 800 compute
  // + 400 — beats the client's direct 1000→2100 program edge, so both
  // channels appear on the path with exact attribution.
  LiveAnalysis live = analyze({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "X", "Y"}},
      {Stamp{1, 120, 0}, MeterAccept{2, 0, 7, 9, "Y", "X"}},
      {Stamp{0, 1000, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{1, 900, 0}, MeterRecv{2, 0, 9, 64, ""}},
      {Stamp{1, 1700, 0}, MeterSend{2, 0, 9, 64, ""}},
      {Stamp{0, 2100, 0}, MeterRecv{1, 0, 5, 64, ""}},
  });
  const ProcKey client{0, 1};
  const ProcKey server{1, 2};

  const auto st = live.stats();
  EXPECT_EQ(st.message_pairs, 2u);
  EXPECT_EQ(st.cross_machine_pairs, 2u);
  EXPECT_EQ(st.clock_anomalies, 1u);
  EXPECT_EQ(st.max_anomaly_us, 100);

  const auto cp = live.critical_path();
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.total_us, 2100);
  EXPECT_EQ(cp.end_event, 5u);
  ASSERT_EQ(cp.steps.size(), 4u);
  EXPECT_EQ(cp.steps[0].kind, EdgeKind::program);  // connect -> send, 900
  EXPECT_EQ(cp.steps[0].elapsed_us, 900);
  EXPECT_EQ(cp.steps[1].kind, EdgeKind::message);  // clamped skewed hop
  EXPECT_EQ(cp.steps[1].elapsed_us, 0);
  EXPECT_EQ(cp.steps[2].kind, EdgeKind::program);  // server compute
  EXPECT_EQ(cp.steps[2].elapsed_us, 800);
  EXPECT_EQ(cp.steps[3].kind, EdgeKind::message);  // reply latency
  EXPECT_EQ(cp.steps[3].elapsed_us, 400);

  ASSERT_TRUE(cp.proc_us.contains(client));
  ASSERT_TRUE(cp.proc_us.contains(server));
  EXPECT_EQ(cp.proc_us.at(client), 900);
  EXPECT_EQ(cp.proc_us.at(server), 800);
  ASSERT_TRUE(cp.channel_us.contains({client, server}));
  ASSERT_TRUE(cp.channel_us.contains({server, client}));
  EXPECT_EQ(cp.channel_us.at({client, server}), 0);
  EXPECT_EQ(cp.channel_us.at({server, client}), 400);
}

TEST(CriticalPath, FanInPicksTheCostlierBranch) {
  // Two senders feed one receiver. The path must run through sender A's
  // 900 us message hop (cost 1000 into the first receive beats the
  // receiver's own 990 us program chain); sender B's 600 us hop loses to
  // the receiver's program edge and must not appear in the attribution.
  LiveAnalysis live = analyze({
      {Stamp{0, 0, 0}, MeterConnect{1, 0, 5, "A1", "B1"}},
      {Stamp{2, 10, 0}, MeterAccept{3, 0, 7, 9, "B1", "A1"}},
      {Stamp{1, 20, 0}, MeterConnect{2, 0, 6, "A2", "B2"}},
      {Stamp{2, 30, 0}, MeterAccept{3, 0, 8, 10, "B2", "A2"}},
      {Stamp{0, 100, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{1, 500, 0}, MeterSend{2, 0, 6, 64, ""}},
      {Stamp{2, 1000, 0}, MeterRecv{3, 0, 9, 64, ""}},
      {Stamp{2, 1100, 0}, MeterRecv{3, 0, 10, 64, ""}},
  });
  const ProcKey sender_a{0, 1};
  const ProcKey sender_b{1, 2};
  const ProcKey receiver{2, 3};

  EXPECT_EQ(live.stats().message_pairs, 2u);

  const auto cp = live.critical_path();
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.total_us, 1100);
  EXPECT_EQ(cp.end_event, 7u);
  ASSERT_EQ(cp.steps.size(), 3u);
  EXPECT_EQ(cp.steps[1].kind, EdgeKind::message);
  EXPECT_EQ(cp.steps[1].elapsed_us, 900);

  ASSERT_TRUE(cp.channel_us.contains({sender_a, receiver}));
  EXPECT_EQ(cp.channel_us.at({sender_a, receiver}), 900);
  EXPECT_FALSE(cp.channel_us.contains({sender_b, receiver}));
  EXPECT_FALSE(cp.proc_us.contains(sender_b));
  EXPECT_EQ(cp.proc_us.at(sender_a), 100);   // connect -> send
  EXPECT_EQ(cp.proc_us.at(receiver), 100);   // recv -> recv
}

TEST(CriticalPath, GrowsMonotonicallyAsEventsStream) {
  // Feeding one event at a time: total_us never decreases, and each
  // prefix's path is exactly the chain so far.
  const Trace trace = read_trace(analysis_testing::trace_text({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{0, 40, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{0, 90, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{0, 170, 0}, MeterSend{1, 0, 5, 8, ""}},
  }));
  LiveAnalysis live;
  const std::int64_t expected_total[] = {0, 40, 90, 170};
  std::int64_t prev = -1;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    live.add_event(trace.events[i]);
    const auto cp = live.critical_path();
    ASSERT_TRUE(cp.valid);
    EXPECT_EQ(cp.total_us, expected_total[i]) << "after event " << i;
    EXPECT_GE(cp.total_us, prev);
    EXPECT_EQ(cp.steps.size(), i);
    prev = cp.total_us;
  }
}

}  // namespace
}  // namespace dpm::analysis
