// Sys — the system-call interface handed to every simulated process.
//
// This is the programmer's view the monitor must stay consistent with
// (§2.1): socket(), bind(), listen(), connect(), accept(), the write()
// family (write/writev/send/sendmsg are "all variations of write()", so a
// single send entry point), the read() family, sendto/recvfrom for
// datagrams, socketpair(), dup(), close(), fork(), select(), plus
// setmeter() (Appendix C) and a few process/file calls the monitor's own
// components need.
//
// Blocking calls park the calling task; a killed process unwinds via
// sim::TaskAborted from inside any blocking call.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kernel/process.h"
#include "kernel/socket.h"
#include "kernel/types.h"
#include "kernel/world.h"
#include "net/address.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/time.h"

namespace dpm::kernel {

/// Thrown by Sys::exit; caught by the process wrapper.
struct ProcessExit {
  int status;
};

struct SelectResult {
  std::vector<Fd> readable;
  std::vector<Fd> writable;
  bool child_event = false;
  bool timed_out = false;
};

class Sys {
 public:
  Sys(World& world, std::shared_ptr<Process> proc)
      : world_(world), proc_(std::move(proc)) {}

  // ---- identity & environment ----
  Pid getpid() const { return proc_->pid; }
  Uid getuid() const { return proc_->euid; }
  MachineId machine_id() const { return proc_->machine; }
  const std::string& hostname() const;
  const std::vector<std::string>& args() const { return args_; }
  void set_args(std::vector<std::string> a) { args_ = std::move(a); }

  /// Local (skewed, quantized) clock reading in microseconds — gettimeofday.
  std::int64_t clock_us() const;
  /// CPU time charged to this process, at the accounting grain (§4.1).
  std::int64_t proctime_us() const;

  /// Tags subsequent meter events with a call-site id ("pc").
  void set_pc(std::uint32_t pc) { proc_->pc = pc; }

  // ---- computation ----
  /// Consumes CPU for `d` (contends with other local processes).
  void compute(util::Duration d);
  /// Blocks without consuming CPU.
  void sleep(util::Duration d);
  /// Yields to other runnable activity at the current instant.
  void yield();

  // ---- sockets ----
  util::SysResult<Fd> socket(SockDomain domain, SockType type);
  util::SysResult<void> bind(Fd fd, const net::SockAddr& name);
  /// Binds an internet socket to a specific or ephemeral (port 0) port on
  /// the machine's primary interface; returns the bound name.
  util::SysResult<net::SockAddr> bind_port(Fd fd, net::Port port);
  util::SysResult<void> listen(Fd fd, int backlog);
  util::SysResult<Fd> accept(Fd fd);
  util::SysResult<void> connect(Fd fd, const net::SockAddr& name);
  /// connect with a bounded wait: a target that never answers (crashed
  /// machine, partitioned link) yields etimedout after `deadline`. The
  /// socket is returned to idle; close the fd and retry on a fresh one.
  util::SysResult<void> connect(Fd fd, const net::SockAddr& name,
                                util::Duration deadline);
  /// Non-blocking connect (stream sockets): sends the SYN and returns at
  /// once. The socket shows up writable in select() when the attempt
  /// completes (success or failure); connect_finish() reaps the result.
  /// The BSD idiom for many concurrent connects from one process — the
  /// pipelined RPC layer is built on it.
  util::SysResult<void> connect_begin(Fd fd, const net::SockAddr& name);
  /// Reaps a connect_begin: ewouldblock while still in flight, otherwise
  /// the connect result (the socket is connected on ok).
  util::SysResult<void> connect_finish(Fd fd);
  /// Stream write: blocks until all bytes are queued. Returns byte count.
  util::SysResult<std::size_t> send(Fd fd, const util::Bytes& data);
  util::SysResult<std::size_t> send(Fd fd, std::string_view data);
  /// Datagram send to an explicit destination.
  util::SysResult<std::size_t> sendto(Fd fd, const util::Bytes& data,
                                      const net::SockAddr& dest);
  /// Stream read: up to `max` bytes; empty result means EOF.
  util::SysResult<util::Bytes> recv(Fd fd, std::size_t max);
  /// Reads exactly `n` bytes or fails with econnreset on early EOF.
  util::SysResult<util::Bytes> recv_exact(Fd fd, std::size_t n);
  /// Datagram receive: one whole message (§3.1).
  util::SysResult<Datagram> recvfrom(Fd fd);

  // §3.1: write(), writev(), send() and sendmsg() "may all be thought of
  // as variations of write()", and the five read routines of read(); the
  // variants share one implementation and thus one meter event ("it is
  // not important to distinguish between the varieties", §3.2).
  util::SysResult<std::size_t> sendmsg(Fd fd, const util::Bytes& data) {
    return send(fd, data);
  }
  util::SysResult<std::size_t> writev(Fd fd,
                                      const std::vector<util::Bytes>& iov);
  util::SysResult<util::Bytes> readv(Fd fd, std::size_t max) {
    return recv(fd, max);
  }
  util::SysResult<util::Bytes> recvmsg(Fd fd, std::size_t max) {
    return recv(fd, max);
  }
  util::SysResult<std::pair<Fd, Fd>> socketpair();
  util::SysResult<Fd> dup(Fd fd);
  util::SysResult<void> close(Fd fd);
  util::SysResult<net::SockAddr> getsockname(Fd fd);
  util::SysResult<net::SockAddr> getpeername(Fd fd);

  /// select(): blocks until an fd in `read_fds` is readable, a child
  /// state-change is queued (if `child_events`), or the timeout expires.
  util::SysResult<SelectResult> select(const std::vector<Fd>& read_fds,
                                       bool child_events,
                                       std::optional<util::Duration> timeout);
  /// select() with a write set: a stream socket is writable when a pending
  /// connect has completed (connect_begin), when it is connected, or when
  /// a send would fail fast (closed/reset) — the 4.2BSD contract the
  /// pipelined RPC client relies on. Listening sockets are never writable.
  util::SysResult<SelectResult> select(const std::vector<Fd>& read_fds,
                                       const std::vector<Fd>& write_fds,
                                       bool child_events,
                                       std::optional<util::Duration> timeout);

  // ---- processes ----
  /// fork(): the child runs `child_main` with an inherited descriptor
  /// table, uid, and meter state (§3.2). Returns the child pid.
  util::SysResult<Pid> fork(ProcessMain child_main);

  /// fork+exec: creates a child from an executable file on this machine.
  /// stdio descriptors name slots in the *caller's* table (-1 = null
  /// device); the child inherits copies, plus the caller's meter state —
  /// as the paper notes for the rexec server, a process created by a
  /// monitored server is itself monitored (§3.2).
  struct SpawnArgs {
    std::string path;
    std::vector<std::string> args;
    bool suspended = false;
    Fd stdin_fd = -1;
    Fd stdout_fd = -1;
    Fd stderr_fd = -1;
  };
  util::SysResult<Pid> spawn(const SpawnArgs& sa);

  /// seteuid(): root only (eperm otherwise); the meterdaemon uses it to
  /// carry out each request with the requesting user's privileges.
  util::SysResult<void> seteuid(Uid uid);
  [[noreturn]] void exit(int status);
  /// Oldest queued child state change; blocks if `block` and none queued.
  util::SysResult<ChildChange> waitchange(bool block);
  /// Stop / continue / kill another local process (signal stand-ins).
  util::SysResult<void> kill_stop(Pid pid);
  util::SysResult<void> kill_continue(Pid pid);
  util::SysResult<void> kill_kill(Pid pid);

  // ---- the paper's system call (Appendix C) ----
  /// proc: pid or SETMETER_SELF. flags: mask, SETMETER_NO_CHANGE or
  /// SETMETER_NONE. sock: descriptor of a connected internet stream
  /// socket, SETMETER_NO_CHANGE, or SETMETER_NONE (closes the meter
  /// socket). Errors: eperm (foreign process), esrch (no such process),
  /// einval (socket not an internet stream socket).
  util::SysResult<void> setmeter(std::int32_t proc, std::int32_t flags,
                                 std::int32_t sock);

  // ---- fan-in tier (monitor-internal; not part of the 4.2BSD surface) ----
  /// Marks a connected internet stream socket (and its peer) as a tier-1
  /// meter edge: a local-filter→aggregator or aggregator→session-filter
  /// hop of the fan-in tree. Records moving over it are accounted in the
  /// tier-1 conservation ledger (World::fanin_conservation), never the
  /// process-edge one. Called by the downstream node after connecting to
  /// its parent.
  util::SysResult<void> metertap(Fd fd);
  /// Ships a frame-aligned batch of `records` accepted meter records up a
  /// metertap'd edge. Charged like a send; bypasses the stream window (the
  /// fan-in backpressure policy is the receiver-side accounted drop, see
  /// WorldConfig::fanin_queue_bytes). Returns epipe when the edge is dead
  /// — the records are then already booked fanin.lost_records, so the
  /// caller may reconnect but must not re-send the batch.
  util::SysResult<void> meter_forward(Fd fd, const util::Bytes& batch,
                                      std::uint32_t records);

  // ---- files ----
  enum class OpenMode { read, write_trunc, append };
  util::SysResult<Fd> open(const std::string& path, OpenMode mode);
  util::SysResult<util::Bytes> read(Fd fd, std::size_t max);
  util::SysResult<std::size_t> write(Fd fd, const util::Bytes& data);
  util::SysResult<std::size_t> write(Fd fd, std::string_view data);
  util::SysResult<void> unlink(const std::string& path);
  /// Simulated `rcp host1:path1 host2:path2` (§3.5.3). Either host may be
  /// the local one. Charged transfer latency proportional to size.
  util::SysResult<void> rcp(const std::string& src_host, const std::string& src,
                            const std::string& dst_host, const std::string& dst);

  // ---- stdio convenience ----
  util::SysResult<std::size_t> print(std::string_view s);  // fd 1
  /// Reads one '\n'-terminated line from fd 0 (blocking); nullopt on EOF.
  util::SysResult<std::optional<std::string>> read_line();

  // ---- escape hatches for the harness/tools (not part of the 4.2BSD
  //      surface; used by programs that must resolve host names) ----
  World& world() { return world_; }
  Process& process() { return *proc_; }
  /// Resolves `host:port` from this machine's point of view (§3.5.4).
  std::optional<net::SockAddr> resolve(const std::string& host, net::Port port);

 private:
  friend class World;

  // Syscall prologue: stop-gate checkpoint + base CPU charge + accounting.
  void enter(util::Duration extra_cost = util::Duration{0});
  void charge(util::Duration d);
  void stop_checkpoint();
  /// Parks until `cond` is true; registers on `chan` each iteration.
  void wait_on(WaitChannel& chan, const std::function<bool()>& cond);

  util::SysResult<Socket*> sock_of(Fd fd);
  util::SysResult<void> auto_bind(Socket& s);
  Machine& mach() const { return world_.machine(proc_->machine); }

  util::SysResult<void> connect_impl(Fd fd, const net::SockAddr& name,
                                     std::optional<util::Duration> deadline);
  /// Shared connect launch: binds, resolves the target, flips the socket
  /// to `connecting` and ships the SYN. Blocking connect waits afterwards;
  /// connect_begin returns to the caller.
  util::SysResult<void> connect_launch(Socket& s, const net::SockAddr& name);
  util::SysResult<std::size_t> send_impl(Fd fd, const util::Bytes& data,
                                         const net::SockAddr* dest);
  util::SysResult<std::size_t> stream_send(Socket& s, const util::Bytes& data);
  util::SysResult<std::size_t> dgram_send(Socket& s, const util::Bytes& data,
                                          const net::SockAddr& dest);
  /// recvfrom body without the syscall prologue (read() on dgram sockets).
  util::SysResult<Datagram> recvfrom_unlogged(Fd fd);

  World& world_;
  std::shared_ptr<Process> proc_;
  std::vector<std::string> args_;
  std::string stdin_buf_;  // read_line() carry-over
};

}  // namespace dpm::kernel
