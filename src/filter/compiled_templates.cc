#include "filter/compiled_templates.h"

#include <algorithm>

#include "util/strings.h"

namespace dpm::filter {

namespace {

/// Index of `name` in `layout`, or npos.
std::size_t layout_index(const std::vector<std::string>& layout,
                         const std::string& name) {
  for (std::size_t i = 0; i < layout.size(); ++i) {
    if (layout[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

int sign(int cmp) { return cmp < 0 ? -1 : cmp > 0 ? 1 : 0; }

bool apply_op(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::eq: return cmp == 0;
    case CmpOp::ne: return cmp != 0;
    case CmpOp::lt: return cmp < 0;
    case CmpOp::gt: return cmp > 0;
    case CmpOp::le: return cmp <= 0;
    case CmpOp::ge: return cmp >= 0;
  }
  return false;
}

}  // namespace

CompiledTemplates CompiledTemplates::compile(const Templates& templates,
                                             const Descriptions& descriptions) {
  CompiledTemplates out;
  out.accept_all_ = templates.rule_count() == 0;

  for (std::uint32_t type : descriptions.types()) {
    if (type > kMaxDirectType) continue;  // interpreted fallback
    const std::vector<std::string> layout = descriptions.record_layout(type);
    if (out.plans_.size() <= type) out.plans_.resize(type + 1);
    EventPlan& plan = out.plans_[type];
    plan.valid = true;
    plan.field_count = layout.size();
    if (const WirePlan* wp = descriptions.wire_plan(type)) plan.wire = *wp;

    for (const Rule& rule : templates.rules()) {
      RulePlan rp;
      std::vector<bool> discard(layout.size(), false);
      bool any_discard = false;
      bool feasible = true;
      for (const Clause& c : rule.clauses) {
        const std::size_t lhs = layout_index(layout, c.field);
        if (lhs == kNpos) {
          // The event type never carries this field, so the clause (and
          // with it the whole rule) can never hold for this type.
          feasible = false;
          break;
        }
        ClausePlan cc;
        cc.lhs = lhs;
        cc.op = c.op;
        cc.wildcard = c.wildcard;
        if (c.discard) {
          discard[lhs] = true;
          any_discard = true;
        }
        if (!c.wildcard) {
          const std::size_t rhs = layout_index(layout, c.value);
          if (rhs != kNpos) {
            cc.rhs_is_field = true;
            cc.rhs_field = rhs;
          } else if (auto n = util::parse_int(c.value)) {
            cc.rhs_num = *n;
            // Textual view for the string-compare fallback must match the
            // interpreted path, which renders the *parsed* value.
            cc.rhs_text = field_value_text(FieldValue{*n});
          } else {
            cc.rhs_text = c.value;
          }
        }
        rp.clauses.push_back(std::move(cc));
      }
      if (!feasible) continue;
      if (any_discard) rp.discard = std::move(discard);
      plan.rules.push_back(std::move(rp));
    }
  }
  return out;
}

bool CompiledTemplates::clause_holds(const ClausePlan& c, const Record& rec) {
  const FieldValue& lhs = rec.fields[c.lhs].second;
  if (c.wildcard) return true;

  int cmp;
  if (c.rhs_is_field) {
    const FieldValue& rhs = rec.fields[c.rhs_field].second;
    const auto ln = field_value_num(lhs);
    const auto rn = field_value_num(rhs);
    if (ln && rn) {
      cmp = (*ln < *rn) ? -1 : (*ln > *rn) ? 1 : 0;
    } else {
      cmp = sign(field_value_text(lhs).compare(field_value_text(rhs)));
    }
  } else {
    // field_value_num does no parsing for integer fields, only for
    // counted-string fields (whose contents may still compare numerically
    // — internet names, Fig 3.3).
    const auto ln = field_value_num(lhs);
    if (ln && c.rhs_num) {
      cmp = (*ln < *c.rhs_num) ? -1 : (*ln > *c.rhs_num) ? 1 : 0;
    } else {
      cmp = sign(field_value_text(lhs).compare(c.rhs_text));
    }
  }
  return apply_op(c.op, cmp);
}

bool CompiledTemplates::clause_holds(const ClausePlan& c, const RecordView& v,
                                     const WirePlan& wire) {
  if (c.wildcard) return true;
  const auto lhs = wire.field(v, c.lhs);
  if (!lhs) return false;  // unreachable on validated records

  int cmp;
  if (c.rhs_is_field) {
    const auto rhs = wire.field(v, c.rhs_field);
    if (!rhs) return false;
    cmp = field_view_cmp(*lhs, *rhs);
  } else {
    const auto ln = field_view_num(*lhs);
    if (ln && c.rhs_num) {
      cmp = (*ln < *c.rhs_num) ? -1 : (*ln > *c.rhs_num) ? 1 : 0;
    } else {
      cmp = field_view_text_cmp(*lhs, c.rhs_text);
    }
  }
  return apply_op(c.op, cmp);
}

std::optional<CompiledTemplates::Decision> CompiledTemplates::evaluate(
    const RecordView& v) const {
  if (accept_all_) return Decision{true, nullptr};
  if (v.type >= plans_.size() || !plans_[v.type].valid) return std::nullopt;
  const EventPlan& plan = plans_[v.type];
  if (!plan.wire.viewable()) return std::nullopt;

  for (const RulePlan& rule : plan.rules) {
    bool all = true;
    for (const ClausePlan& c : rule.clauses) {
      if (!clause_holds(c, v, plan.wire)) {
        all = false;
        break;
      }
    }
    if (all) {
      return Decision{true, rule.discard.empty() ? nullptr : &rule.discard};
    }
  }
  return Decision{false, nullptr};
}

std::optional<CompiledTemplates::Decision> CompiledTemplates::evaluate(
    const Record& rec) const {
  if (accept_all_) return Decision{true, nullptr};
  if (rec.type >= plans_.size() || !plans_[rec.type].valid) return std::nullopt;
  const EventPlan& plan = plans_[rec.type];
  if (rec.fields.size() != plan.field_count) return std::nullopt;

  for (const RulePlan& rule : plan.rules) {
    bool all = true;
    for (const ClausePlan& c : rule.clauses) {
      if (!clause_holds(c, rec)) {
        all = false;
        break;
      }
    }
    if (all) {
      return Decision{true, rule.discard.empty() ? nullptr : &rule.discard};
    }
  }
  return Decision{false, nullptr};
}

std::size_t CompiledTemplates::plan_count() const {
  return static_cast<std::size_t>(
      std::count_if(plans_.begin(), plans_.end(),
                    [](const EventPlan& p) { return p.valid; }));
}

}  // namespace dpm::filter
