// Structural studies (§3.3): who talks to whom.
//
// §4.1: "By examining the sockets that were paired when the connection was
// created, the recipient information can be recovered. This is one of the
// tasks of the analysis programs." ConnectionMatcher does that recovery:
// a CONNECT record carrying (sockName, peerName) pairs with the ACCEPT
// record carrying the mirrored names, tying the connector's socket id to
// the acceptor's connection socket id. Datagram traffic is matched by
// name: a SEND's destName is the receiving socket's bound name, and a
// RECEIVE's sourceName is the sending socket's bound name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/trace_reader.h"

namespace dpm::analysis {

/// One endpoint of a matched connection.
struct Endpoint {
  ProcKey proc;
  std::uint64_t sock = 0;
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

class ConnectionMatcher {
 public:
  explicit ConnectionMatcher(const Trace& trace);

  /// The remote endpoint of (proc, sock), when the trace pins it down.
  std::optional<Endpoint> remote_of(const ProcKey& proc,
                                    std::uint64_t sock) const;

  /// Socket-name ownership: which endpoint bound `name` (datagram
  /// matching). Accept/connect/receive records teach us names.
  std::optional<Endpoint> owner_of_name(const std::string& name) const;

  std::size_t matched_connections() const { return matched_; }

 private:
  std::map<std::pair<ProcKey, std::uint64_t>, Endpoint> peers_;
  std::map<std::string, Endpoint> names_;
  std::size_t matched_ = 0;
};

/// The communication graph: per ordered process pair, message count and
/// byte volume attributed from send records (falling back to receive
/// records for channels whose sender was not metered).
struct CommEdge {
  ProcKey from;
  ProcKey to;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct CommGraph {
  std::vector<ProcKey> nodes;
  std::vector<CommEdge> edges;

  const CommEdge* edge(const ProcKey& from, const ProcKey& to) const;
};

CommGraph build_comm_graph(const Trace& trace);

/// Per-connection statistics: each matched stream connection with its
/// traffic in both directions (the channel-level view of the structure
/// study; the graph aggregates these per process pair).
struct ConnStat {
  Endpoint a;  // the connecting side when known
  Endpoint b;
  std::uint64_t msgs_ab = 0;
  std::uint64_t bytes_ab = 0;
  std::uint64_t msgs_ba = 0;
  std::uint64_t bytes_ba = 0;
};

std::vector<ConnStat> connection_table(const Trace& trace);

}  // namespace dpm::analysis
