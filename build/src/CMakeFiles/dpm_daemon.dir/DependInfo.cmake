
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/daemon/meterdaemon.cc" "src/CMakeFiles/dpm_daemon.dir/daemon/meterdaemon.cc.o" "gcc" "src/CMakeFiles/dpm_daemon.dir/daemon/meterdaemon.cc.o.d"
  "/root/repo/src/daemon/protocol.cc" "src/CMakeFiles/dpm_daemon.dir/daemon/protocol.cc.o" "gcc" "src/CMakeFiles/dpm_daemon.dir/daemon/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
