#!/bin/sh
# Regression gate for the ring-transport + filter-bytecode fast path.
#
# Runs the two bench smokes (equivalence is their pass signal: owned==view
# output, batch==ring logs, compiled==interpreted decisions), then re-runs
# the full-scale end-to-end comparison and fails if any workload's
# ring+bytecode speedup fell more than 20% below the value recorded in the
# committed BENCH_pipeline.json. Everything runs in a scratch directory:
# both smokes write their JSON into the cwd, and the committed files must
# not be clobbered by a gate run.
# Usage: scripts/check_bench.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"
build="${1:-build}"
bench="$repo/$build/bench"

for bin in bench_pipeline bench_filter bench_scale; do
  if [ ! -x "$bench/$bin" ]; then
    echo "check_bench: $bench/$bin not built" >&2
    exit 1
  fi
done
for f in BENCH_pipeline.json BENCH_scale.json; do
  if [ ! -f "$repo/$f" ]; then
    echo "check_bench: no committed $f to compare against" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cd "$tmp"

echo "== bench_filter --smoke (decision equivalence)"
"$bench/bench_filter" --smoke

echo "== bench_pipeline --smoke (output + log equivalence)"
"$bench/bench_pipeline" --smoke

echo "== bench_pipeline --e2e (full-scale regression gate)"
"$bench/bench_pipeline" --e2e

# Fresh speedup must be >= 0.8x the recorded one, per workload. The ratios
# are machine-independent (both transports run on the same host in the same
# process), so 20% headroom covers run-to-run noise without hiding a real
# regression.
fail=0
for wl in $(jq -r '.e2e[].workload' "$repo/BENCH_pipeline.json"); do
  rec="$(jq -r ".e2e[] | select(.workload == \"$wl\") | .speedup" \
        "$repo/BENCH_pipeline.json")"
  fresh="$(jq -r ".e2e[] | select(.workload == \"$wl\") | .speedup" \
        BENCH_e2e.json)"
  if [ -z "$fresh" ] || [ "$fresh" = "null" ]; then
    echo "check_bench: workload $wl missing from fresh BENCH_e2e.json" >&2
    fail=1
    continue
  fi
  ok="$(echo "$fresh $rec" | awk '{print ($1 >= 0.8 * $2) ? "yes" : "no"}')"
  echo "   $wl: recorded ${rec}x, fresh ${fresh}x -> $ok"
  if [ "$ok" != "yes" ]; then
    echo "check_bench: $wl regressed: ${fresh}x < 0.8 * ${rec}x" >&2
    fail=1
  fi
done

echo "== bench_scale --smoke (fan-in conservation + batched-RPC gate)"
"$bench/bench_scale" --smoke

# The cluster-scale metrics are simulated time, so they are deterministic:
# a fresh smoke run must reproduce the committed file's smoke section to
# within the same 20% headroom (which here only absorbs intentional
# retunings of simulated costs, not host noise). The committed file is
# written by a full run but always embeds the smoke-size section.
for key in '.smoke.speedup.start' '.smoke.speedup.kill' \
           '.smoke.scaling.hier'; do
  rec="$(jq -r "$key" "$repo/BENCH_scale.json")"
  fresh="$(jq -r "$key" BENCH_scale.json)"
  if [ -z "$fresh" ] || [ "$fresh" = "null" ] || [ -z "$rec" ] || \
     [ "$rec" = "null" ]; then
    echo "check_bench: $key missing from BENCH_scale.json" >&2
    fail=1
    continue
  fi
  ok="$(echo "$fresh $rec" | awk '{print ($1 >= 0.8 * $2) ? "yes" : "no"}')"
  echo "   scale $key: recorded $rec, fresh $fresh -> $ok"
  if [ "$ok" != "yes" ]; then
    echo "check_bench: scale $key regressed: $fresh < 0.8 * $rec" >&2
    fail=1
  fi
done

exit "$fail"
