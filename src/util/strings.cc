#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace dpm::util {

std::vector<std::string> split(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_int_base(std::string_view s, int base) {
  if (s.empty() || base < 2 || base > 16) return std::nullopt;
  bool neg = false;
  if (s.front() == '-') {
    neg = true;
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return neg ? -v : v;
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_word(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '/' && c != '.' &&
        c != '-' && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

}  // namespace dpm::util
