// Event ordering (§4.1): send-before-receive constraints, Lamport clocks,
// clock-anomaly detection under skew.
#include "analysis/ordering.h"

#include <gtest/gtest.h>

#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;

// A connected pair: client (m0,p1,sock5) <-> server conn (m1,p2,sock9).
std::vector<std::pair<Stamp, meter::MeterBody>> connected_prefix() {
  return {
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 120, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
  };
}

TEST(Ordering, MatchesStreamSendToReceive) {
  auto events = connected_prefix();
  events.push_back({Stamp{0, 200, 0}, MeterSend{1, 0, 5, 64, ""}});
  events.push_back({Stamp{1, 260, 0}, MeterRecv{2, 0, 9, 64, ""}});
  auto trace = analysis_testing::make_trace(events);
  Ordering o = order_events(trace);
  EXPECT_EQ(o.message_pairs, 1u);
  EXPECT_EQ(o.cross_machine_pairs, 1u);
  ASSERT_TRUE(o.events[3].matched_send.has_value());
  EXPECT_EQ(*o.events[3].matched_send, 2u);
  // The receive is ordered after the send.
  EXPECT_GT(o.lamport_of(3), o.lamport_of(2));
}

TEST(Ordering, KthSendPairsWithKthReceive) {
  auto events = connected_prefix();
  for (int i = 0; i < 3; ++i) {
    events.push_back({Stamp{0, 200 + i, 0}, MeterSend{1, 0, 5, 10, ""}});
  }
  for (int i = 0; i < 3; ++i) {
    events.push_back({Stamp{1, 300 + i, 0}, MeterRecv{2, 0, 9, 10, ""}});
  }
  auto trace = analysis_testing::make_trace(events);
  Ordering o = order_events(trace);
  EXPECT_EQ(o.message_pairs, 3u);
  EXPECT_EQ(*o.events[5].matched_send, 2u);
  EXPECT_EQ(*o.events[6].matched_send, 3u);
  EXPECT_EQ(*o.events[7].matched_send, 4u);
  EXPECT_FALSE(o.had_cycle);
}

TEST(Ordering, ProgramOrderWithinProcess) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 1, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 2, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 3, 0}, MeterSend{1, 0, 5, 1, ""}},
  });
  Ordering o = order_events(trace);
  EXPECT_LT(o.lamport_of(0), o.lamport_of(1));
  EXPECT_LT(o.lamport_of(1), o.lamport_of(2));
}

TEST(Ordering, DetectsClockAnomalyFromSkew) {
  // The receive is stamped *earlier* (receiver's clock runs behind):
  // physically impossible, so it must be counted as a clock anomaly.
  auto events = connected_prefix();
  events.push_back({Stamp{0, 5000, 0}, MeterSend{1, 0, 5, 64, ""}});
  events.push_back({Stamp{1, 3000, 0}, MeterRecv{2, 0, 9, 64, ""}});
  auto trace = analysis_testing::make_trace(events);
  Ordering o = order_events(trace);
  EXPECT_EQ(o.clock_anomalies, 1u);
  EXPECT_EQ(o.max_anomaly_us, 2000);
  // The deduced order still places the send first, against the clocks.
  EXPECT_GT(o.lamport_of(3), o.lamport_of(2));
}

TEST(Ordering, SameMachinePairsAreNotAnomalies) {
  auto events = std::vector<std::pair<Stamp, meter::MeterBody>>{
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{0, 120, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
      {Stamp{0, 200, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{0, 210, 0}, MeterRecv{2, 0, 9, 64, ""}},
  };
  auto trace = analysis_testing::make_trace(events);
  Ordering o = order_events(trace);
  EXPECT_EQ(o.message_pairs, 1u);
  EXPECT_EQ(o.cross_machine_pairs, 0u);
  EXPECT_EQ(o.clock_anomalies, 0u);
}

TEST(Ordering, TransitiveOrderAcrossMessages) {
  // p1 sends to p2; p2 then sends to p3 (via a second connection): p3's
  // receive must be ordered after p1's send transitively.
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 110, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
      {Stamp{1, 120, 0}, MeterConnect{2, 0, 8, "n3", "n4"}},
      {Stamp{2, 130, 0}, MeterAccept{3, 0, 10, 11, "n4", "n3"}},
      {Stamp{0, 200, 0}, MeterSend{1, 0, 5, 8, ""}},     // p1 -> p2
      {Stamp{1, 260, 0}, MeterRecv{2, 0, 9, 8, ""}},     // p2 recv
      {Stamp{1, 270, 0}, MeterSend{2, 0, 8, 8, ""}},     // p2 -> p3
      {Stamp{2, 330, 0}, MeterRecv{3, 0, 11, 8, ""}},    // p3 recv
  });
  Ordering o = order_events(trace);
  EXPECT_EQ(o.message_pairs, 2u);
  EXPECT_GT(o.lamport_of(7), o.lamport_of(4));
  EXPECT_GT(o.lamport_of(7), o.lamport_of(6));
}

TEST(Ordering, UnmatchedTrafficLeavesNoPairs) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 1, 0}, MeterSend{1, 0, 5, 10, ""}},
      {Stamp{1, 2, 0}, MeterRecv{2, 0, 9, 10, ""}},
  });
  Ordering o = order_events(trace);
  EXPECT_EQ(o.message_pairs, 0u);  // no connection evidence
  EXPECT_FALSE(o.events[1].matched_send.has_value());
}

TEST(Ordering, EmptyTrace) {
  Trace t;
  Ordering o = order_events(t);
  EXPECT_TRUE(o.events.empty());
  EXPECT_EQ(o.message_pairs, 0u);
  EXPECT_FALSE(o.had_cycle);
}

}  // namespace
}  // namespace dpm::analysis
