// Connection matching and the communication graph (§3.3 structural
// studies; §4.1 name-pairing recovery).
#include "analysis/structure.h"

#include <gtest/gtest.h>

#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;

TEST(ConnectionMatcher, PairsConnectWithMirroredAccept) {
  // Client (machine 0, pid 1, sock 5) connects to listener named "131073"
  // (its own name "196612"); server (machine 1, pid 2) accepts: conn
  // socket 9.
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 150, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
  });
  ConnectionMatcher m(trace);
  EXPECT_EQ(m.matched_connections(), 1u);

  auto remote = m.remote_of(ProcKey{0, 1}, 5);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->proc, (ProcKey{1, 2}));
  EXPECT_EQ(remote->sock, 9u);

  auto back = m.remote_of(ProcKey{1, 2}, 9);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->proc, (ProcKey{0, 1}));
  EXPECT_EQ(back->sock, 5u);
}

TEST(ConnectionMatcher, UnmatchedWhenNamesDoNotMirror) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 150, 0}, MeterAccept{2, 0, 7, 9, "131073", "999999"}},
  });
  ConnectionMatcher m(trace);
  EXPECT_EQ(m.matched_connections(), 0u);
  EXPECT_FALSE(m.remote_of(ProcKey{0, 1}, 5).has_value());
}

TEST(ConnectionMatcher, OwnerOfNameFromConnect) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
  });
  ConnectionMatcher m(trace);
  auto owner = m.owner_of_name("196612");
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->proc, (ProcKey{0, 1}));
  EXPECT_EQ(owner->sock, 5u);
  EXPECT_FALSE(m.owner_of_name("nope").has_value());
}

TEST(CommGraph, StreamEdgeFromSendRecords) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 150, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
      {Stamp{0, 200, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{0, 300, 0}, MeterSend{1, 0, 5, 36, ""}},
      {Stamp{1, 400, 0}, MeterRecv{2, 0, 9, 100, ""}},
  });
  CommGraph g = build_comm_graph(trace);
  const CommEdge* e = g.edge(ProcKey{0, 1}, ProcKey{1, 2});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->messages, 2u);  // send-side counts are authoritative
  EXPECT_EQ(e->bytes, 100u);
  // No reverse edge (no reverse traffic).
  EXPECT_EQ(g.edge(ProcKey{1, 2}, ProcKey{0, 1}), nullptr);
}

TEST(CommGraph, ReceiveSideFallbackWhenSenderUnmetered) {
  // Only the acceptor is metered: its receive records still produce an
  // edge from the (known, by pairing) connector.
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 150, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
      {Stamp{1, 400, 0}, MeterRecv{2, 0, 9, 80, ""}},
  });
  CommGraph g = build_comm_graph(trace);
  const CommEdge* e = g.edge(ProcKey{0, 1}, ProcKey{1, 2});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->bytes, 80u);
}

TEST(CommGraph, DatagramEdgesFromReceiveRecords) {
  // Datagram sender connected first (so its name is attributable); the
  // receiver's records carry sourceName.
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 300, 0}, MeterRecv{2, 0, 7, 48, "196612"}},
      {Stamp{1, 350, 0}, MeterRecv{2, 0, 7, 48, "196612"}},
  });
  CommGraph g = build_comm_graph(trace);
  const CommEdge* e = g.edge(ProcKey{0, 1}, ProcKey{1, 2});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->messages, 2u);
  EXPECT_EQ(e->bytes, 96u);
}

TEST(CommGraph, NodesCoverEveryProcessSeen) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 1, 0}, MeterSend{1, 0, 5, 10, ""}},
      {Stamp{0, 2, 0}, MeterSend{2, 0, 6, 10, ""}},
      {Stamp{3, 3, 0}, MeterSend{1, 0, 7, 10, ""}},
  });
  CommGraph g = build_comm_graph(trace);
  EXPECT_EQ(g.nodes.size(), 3u);  // (0,1), (0,2), (3,1)
}

}  // namespace
}  // namespace dpm::analysis
