file(REMOVE_RECURSE
  "CMakeFiles/dpm_kernel.dir/kernel/descriptor.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/descriptor.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/exec_registry.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/exec_registry.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/file_system.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/file_system.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/meter_hooks.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/meter_hooks.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/process.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/process.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/socket.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/socket.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/syscalls.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/syscalls.cc.o.d"
  "CMakeFiles/dpm_kernel.dir/kernel/world.cc.o"
  "CMakeFiles/dpm_kernel.dir/kernel/world.cc.o.d"
  "libdpm_kernel.a"
  "libdpm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
