// Typed view over filter traces — the input to the analysis routines.
//
// "The analysis routines provide the means for interpreting the traces
// created by filters. They give meaning to the data by summarizing and
// operating on the event records collected." (§3.3)
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "filter/trace.h"
#include "meter/metermsgs.h"

namespace dpm::analysis {

/// A process identity within a trace: pids are only unique per machine
/// (§3.5.1), so the pair identifies a process.
struct ProcKey {
  std::uint16_t machine = 0;
  std::int32_t pid = 0;
  friend auto operator<=>(const ProcKey&, const ProcKey&) = default;
};

std::string proc_key_text(const ProcKey& k);

/// One trace event with every field the standard meter may produce.
/// Fields that a record does not carry (or that the filter discarded) are
/// left at their defaults; `has(name)` reports presence.
struct Event {
  meter::EventType type = meter::EventType::send;
  std::uint16_t machine = 0;
  std::int64_t cpu_time = 0;   // local clock (skewed!)
  std::int64_t proc_time = 0;  // CPU time, 10ms grain
  std::int32_t pid = 0;
  std::uint32_t pc = 0;
  std::uint64_t sock = 0;
  std::uint64_t new_sock = 0;
  std::uint32_t msg_length = 0;
  std::int32_t new_pid = 0;
  std::int32_t status = 0;
  std::string dest_name;
  std::string source_name;
  std::string sock_name;
  std::string peer_name;
  std::size_t index = 0;  // position in the trace file

  ProcKey proc() const { return ProcKey{machine, pid}; }
};

/// Converts a decoded filter record; nullopt if the event name is unknown
/// or identity fields are missing.
std::optional<Event> event_from_record(const filter::Record& rec);

struct Trace {
  std::vector<Event> events;
  std::size_t malformed = 0;

  std::vector<ProcKey> processes() const;
};

/// Parses a filter log file's text. Lines are scanned as views straight
/// into Events — no intermediate Record (or per-field string) is built, so
/// large traces load without per-record churn. Produces the same events
/// and malformed count as converting parse_trace's records one by one.
Trace read_trace(const std::string& text);

/// Parses one trimmed, non-comment trace line into `e` — the per-line
/// primitive read_trace is built on, exposed so streaming consumers
/// (analysis/live/ TraceTailer) parse identically to the batch reader.
/// False on a malformed token or an unknown/missing event name; the
/// caller owns skipping blank/'#' lines and assigning `e.index`.
bool parse_trace_event_line(std::string_view line, Event& e);

}  // namespace dpm::analysis
