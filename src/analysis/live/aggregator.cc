#include "analysis/live/aggregator.h"

#include <algorithm>

#include "util/strings.h"

namespace dpm::analysis::live {

LiveAnalysis::LiveAnalysis(LiveConfig cfg, obs::Registry* reg) : cfg_(cfg) {
  if (reg == nullptr) {
    own_reg_ = std::make_unique<obs::Registry>();
    reg = own_reg_.get();
  }
  reg_ = reg;
  c_events_ = &reg_->counter("live.events");
  c_pairs_ = &reg_->counter("live.message_pairs");
  c_cross_ = &reg_->counter("live.cross_machine_pairs");
  c_anomalies_ = &reg_->counter("live.clock_anomalies");
  c_relax_ = &reg_->counter("live.relax_steps");
  c_gaps_ = &reg_->counter("live.gaps");
  g_parked_ = &reg_->gauge("live.parked");
  g_max_lamport_ = &reg_->gauge("live.max_lamport");
  g_crit_us_ = &reg_->gauge("live.critical_path_us");
  g_procs_ = &reg_->gauge("live.processes");
  h_latency_ = &reg_->histogram("live.pair_latency_us");
  pairing_.set_park_ttl(cfg_.park_ttl);
}

std::optional<std::size_t> LiveAnalysis::matched_send_of(std::size_t i) const {
  const Node& n = nodes_[i];
  if (n.type != meter::EventType::recv || n.pair_peer == kNone)
    return std::nullopt;
  return n.pair_peer;
}

std::int64_t LiveAnalysis::edge_weight(std::uint32_t u, std::uint32_t v) const {
  // Elapsed local (program edge) or cross-clock (message edge) time, clamped
  // at zero so skewed clocks never produce negative path costs.
  return std::max<std::int64_t>(0, nodes_[v].t_us - nodes_[u].t_us);
}

bool LiveAnalysis::relax(std::uint32_t u, std::uint32_t v, EdgeKind kind) {
  Node& nu = nodes_[u];
  Node& nv = nodes_[v];
  bool changed = false;
  if (nu.lamport + 1 > nv.lamport) {
    nv.lamport = nu.lamport + 1;
    changed = true;
    if (nv.lamport > max_lamport_) {
      max_lamport_ = nv.lamport;
      g_max_lamport_->set(static_cast<std::int64_t>(max_lamport_));
    }
  }
  const std::int64_t cost = nu.cost + edge_weight(u, v);
  if (cost > nv.cost || nv.pred == kNone) {
    if (cost > nv.cost) changed = true;
    nv.cost = std::max(nv.cost, cost);
    nv.pred = u;
    nv.pred_kind = kind;
    if (best_cost_node_ == kNone || nv.cost >= nodes_[best_cost_node_].cost) {
      best_cost_node_ = v;
      g_crit_us_->set(nv.cost);
    }
  }
  return changed;
}

void LiveAnalysis::propagate(std::uint32_t from) {
  // Monotone relaxation: a node goes on the worklist only when its clock or
  // cost rose, and each visit relaxes its (at most two) outgoing edges. In a
  // DAG every node's Lamport clock is bounded by the event count, so a clock
  // above it proves a pair-induced cycle; relaxation then freezes for good
  // (stats().had_cycle mirrors the batch Ordering::had_cycle).
  worklist_.clear();
  worklist_.push_back(from);
  const std::uint64_t limit = nodes_.size();
  while (!worklist_.empty()) {
    const std::uint32_t u = worklist_.back();
    worklist_.pop_back();
    if (nodes_[u].lamport > limit) {
      had_cycle_ = true;
      return;
    }
    if (nodes_[u].prog_next != kNone) {
      ++relax_steps_;
      c_relax_->add(1);
      if (relax(u, nodes_[u].prog_next, EdgeKind::program))
        worklist_.push_back(nodes_[u].prog_next);
    }
    if (nodes_[u].type == meter::EventType::send &&
        nodes_[u].pair_peer != kNone) {
      ++relax_steps_;
      c_relax_->add(1);
      if (relax(u, nodes_[u].pair_peer, EdgeKind::message))
        worklist_.push_back(nodes_[u].pair_peer);
    }
  }
}

void LiveAnalysis::on_pair(const PairingCore::Pair& p) {
  const auto send = static_cast<std::uint32_t>(p.send);
  const auto recv = static_cast<std::uint32_t>(p.recv);
  Node& s = nodes_[send];
  Node& r = nodes_[recv];
  s.pair_peer = recv;
  r.pair_peer = send;

  ++message_pairs_;
  c_pairs_->add(1);
  const std::int64_t raw_latency = r.t_us - s.t_us;
  if (s.proc.machine != r.proc.machine) {
    ++cross_machine_pairs_;
    c_cross_->add(1);
    if (raw_latency < 0) {
      ++clock_anomalies_;
      c_anomalies_->add(1);
      max_anomaly_us_ = std::max(max_anomaly_us_, -raw_latency);
    }
  }
  const std::int64_t latency = std::max<std::int64_t>(0, raw_latency);
  h_latency_->record(latency);

  auto [it, fresh] = chans_.try_emplace(std::pair{s.proc, r.proc},
                                        cfg_.window_us);
  ChanStats& cs = it->second;
  if (fresh && cfg_.per_channel_histograms) {
    cs.latency_hist = &reg_->histogram("live.chan_latency_us." +
                                       proc_key_text(s.proc) + "->" +
                                       proc_key_text(r.proc));
  }
  const std::uint64_t bytes = r.bytes != 0 ? r.bytes : s.bytes;
  ++cs.total_msgs;
  cs.total_bytes += bytes;
  cs.last_latency_us = raw_latency;
  cs.wnd_msgs.add(r.t_us, 1);
  cs.wnd_bytes.add(r.t_us, static_cast<std::int64_t>(bytes));
  cs.wnd_latency.add(r.t_us, latency);
  if (cs.latency_hist != nullptr) cs.latency_hist->record(latency);

  if (!had_cycle_ && relax(send, recv, EdgeKind::message)) propagate(recv);
}

void LiveAnalysis::add_event(const Event& e) {
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.proc = e.proc();
  n.type = e.type;
  n.t_us = e.cpu_time;
  n.bytes = e.msg_length;
  nodes_.push_back(n);
  if (e.cpu_time > now_us_) now_us_ = e.cpu_time;
  c_events_->add(1);
  if (best_cost_node_ == kNone) best_cost_node_ = idx;
  if (max_lamport_ == 0) {
    max_lamport_ = 1;
    g_max_lamport_->set(1);
  }

  // Per-process rolling stats.
  auto [pit, fresh] = procs_.try_emplace(n.proc, cfg_.window_us);
  ProcStats& ps = pit->second;
  if (fresh) g_procs_->set(static_cast<std::int64_t>(procs_.size()));
  ++ps.total_events;
  ps.wnd_events.add(n.t_us, 1);
  std::uint64_t bytes = 0;
  if (e.type == meter::EventType::send) {
    ++ps.total_sends;
    bytes = e.msg_length;
  } else if (e.type == meter::EventType::recv) {
    ++ps.total_recvs;
    bytes = e.msg_length;
  } else if (e.type == meter::EventType::termproc) {
    ps.terminated = true;
  }
  if (bytes != 0) {
    ps.total_bytes += bytes;
    ps.wnd_bytes.add(n.t_us, static_cast<std::int64_t>(bytes));
  } else {
    ps.wnd_bytes.advance(n.t_us);
  }

  // Program-order edge from this process's previous event.
  auto [lit, first] = last_of_.try_emplace(n.proc, idx);
  if (!first) {
    const std::uint32_t prev = lit->second;
    nodes_[prev].prog_next = idx;
    lit->second = idx;
    if (!had_cycle_) {
      ++relax_steps_;
      c_relax_->add(1);
      if (relax(prev, idx, EdgeKind::program)) propagate(idx);
    }
  }

  for (LiveObserver* o : observers_) o->on_event(idx, e);

  // Pairing: this event may complete any number of parked pairs.
  pairing_.observe(e, idx);
  for (const PairingCore::Pair& p : pairing_.take_pairs()) {
    on_pair(p);
    for (LiveObserver* o : observers_) o->on_pair(p.send, p.recv);
  }

  // Park-TTL sweep, keyed on Lamport progress: entries whose evidence is
  // presumed lost to a fault become per-channel gaps instead of growing
  // the park queues forever (batch order_events never advances progress,
  // so batch pairing stays exact).
  pairing_.advance_progress(max_lamport_);
  for (const PairingCore::Gap& g : pairing_.take_gaps()) {
    c_gaps_->add(1);
    reg_->counter("live.gap." + g.channel).add(1);
    for (LiveObserver* o : observers_) o->on_gap(g.index);
  }
  g_parked_->set(static_cast<std::int64_t>(pairing_.parked()));
}

LiveAnalysis::Stats LiveAnalysis::stats() const {
  Stats s;
  s.events = nodes_.size();
  s.message_pairs = message_pairs_;
  s.cross_machine_pairs = cross_machine_pairs_;
  s.clock_anomalies = clock_anomalies_;
  s.max_anomaly_us = max_anomaly_us_;
  s.had_cycle = had_cycle_;
  s.pairing_disorder = pairing_.disorder();
  s.parked = pairing_.parked();
  s.gaps = pairing_.gaps();
  s.max_lamport = max_lamport_;
  s.relax_steps = relax_steps_;
  s.now_us = now_us_;
  return s;
}

std::vector<LiveAnalysis::ProcRates> LiveAnalysis::process_rates() {
  std::vector<ProcRates> out;
  out.reserve(procs_.size());
  for (auto& [proc, ps] : procs_) {
    ps.wnd_events.advance(now_us_);
    ps.wnd_bytes.advance(now_us_);
    ProcRates r;
    r.proc = proc;
    r.total_events = ps.total_events;
    r.total_sends = ps.total_sends;
    r.total_recvs = ps.total_recvs;
    r.total_bytes = ps.total_bytes;
    r.events_per_s = ps.wnd_events.per_second();
    r.bytes_per_s = ps.wnd_bytes.per_second();
    r.terminated = ps.terminated;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<LiveAnalysis::ChannelRates> LiveAnalysis::channel_rates() {
  std::vector<ChannelRates> out;
  out.reserve(chans_.size());
  for (auto& [key, cs] : chans_) {
    cs.wnd_msgs.advance(now_us_);
    cs.wnd_bytes.advance(now_us_);
    cs.wnd_latency.advance(now_us_);
    ChannelRates r;
    r.from = key.first;
    r.to = key.second;
    r.total_msgs = cs.total_msgs;
    r.total_bytes = cs.total_bytes;
    r.msgs_per_s = cs.wnd_msgs.per_second();
    r.bytes_per_s = cs.wnd_bytes.per_second();
    r.avg_latency_us =
        cs.wnd_msgs.count() != 0
            ? static_cast<double>(cs.wnd_latency.sum()) /
                  static_cast<double>(cs.wnd_msgs.count())
            : 0.0;
    r.last_latency_us = cs.last_latency_us;
    out.push_back(std::move(r));
  }
  return out;
}

LiveAnalysis::CriticalPath LiveAnalysis::critical_path() const {
  CriticalPath out;
  if (nodes_.empty() || best_cost_node_ == kNone) return out;
  out.valid = true;
  out.end_event = best_cost_node_;
  out.total_us = nodes_[best_cost_node_].cost;

  std::uint32_t v = best_cost_node_;
  std::size_t guard = 0;
  while (nodes_[v].pred != kNone && guard++ <= nodes_.size()) {
    const std::uint32_t u = nodes_[v].pred;
    CritStep step;
    step.from = u;
    step.to = v;
    step.kind = nodes_[v].pred_kind;
    step.elapsed_us = edge_weight(u, v);
    step.from_proc = nodes_[u].proc;
    step.to_proc = nodes_[v].proc;
    if (step.kind == EdgeKind::message) {
      out.channel_us[{step.from_proc, step.to_proc}] += step.elapsed_us;
    } else {
      out.proc_us[step.to_proc] += step.elapsed_us;
    }
    out.steps.push_back(step);
    v = u;
  }
  std::reverse(out.steps.begin(), out.steps.end());
  return out;
}

// ---- TraceTailer ----------------------------------------------------------

void TraceTailer::feed(std::string_view chunk) {
  std::size_t start = 0;
  while (start <= chunk.size()) {
    const std::size_t nl = chunk.find('\n', start);
    if (nl == std::string_view::npos) break;
    if (partial_.empty()) {
      take_line(chunk.substr(start, nl - start));
    } else {
      partial_.append(chunk.substr(start, nl - start));
      take_line(partial_);
      partial_.clear();
    }
    start = nl + 1;
  }
  partial_.append(chunk.substr(start));
}

void TraceTailer::finish() {
  if (!partial_.empty()) {
    take_line(partial_);
    partial_.clear();
  }
}

void TraceTailer::take_line(std::string_view line) {
  line = util::trim(line);
  if (line.empty() || line.front() == '#') return;
  ++lines_;
  Event e;
  if (!parse_trace_event_line(line, e)) {
    ++malformed_;
    return;
  }
  e.index = live_->events();
  live_->add_event(e);
}

// ---- LiveRecordSink -------------------------------------------------------

void LiveRecordSink::on_record(const filter::Record& rec) {
  std::optional<Event> e = event_from_record(rec);
  if (!e) {
    ++dropped_;
    return;
  }
  e->index = live_->events();
  live_->add_event(*e);
}

}  // namespace dpm::analysis::live
