// Quickstart: build a two-machine world, meter a client/server pair
// through a filter, retrieve the trace, and run every analysis on it.
//
// This is the smallest end-to-end use of the library:
//   1. create a World and machines
//   2. install the monitor (filter/daemon/controller programs + files)
//   3. drive the controller exactly as the paper's user would (§4.3)
//   4. read the trace and analyze it
#include <iostream>

#include "analysis/report.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"

int main() {
  using namespace dpm;

  // ---- 1. the simulated distributed system ----
  kernel::World world;
  const kernel::MachineId yellow = world.add_machine("yellow");
  world.add_machine("red");
  world.add_machine("green");

  // ---- 2. the measurement system ----
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  // ---- 3. a metering session (cf. Appendix B) ----
  control::MonitorSession session(world, {.host = "yellow", .uid = 100});
  world.run();
  std::cout << session.drain_output();

  auto run = [&](const std::string& cmd) {
    std::cout << cmd << "\n" << session.command(cmd);
  };
  run("filter f1 yellow");
  run("newjob quick");
  run("addprocess quick red pingpong_server 5000 10");
  run("addprocess quick green pingpong_client red 5000 10 256");
  run("setflags quick all");
  run("startjob quick");
  run("removejob quick");
  run("getlog f1 quick.trace");
  session.send_line("bye");
  world.run();

  // ---- 4. analysis ----
  auto text = world.machine(yellow).fs.read_text("quick.trace");
  if (!text) {
    std::cerr << "no trace retrieved\n";
    return 1;
  }
  const analysis::Trace trace = analysis::read_trace(*text);
  std::cout << "\nretrieved " << trace.events.size() << " event records\n\n";
  std::cout << analysis::full_report(trace);
  return 0;
}
