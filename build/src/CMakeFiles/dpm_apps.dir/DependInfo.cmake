
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apps.cc" "src/CMakeFiles/dpm_apps.dir/apps/apps.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/apps.cc.o.d"
  "/root/repo/src/apps/datagram_chat.cc" "src/CMakeFiles/dpm_apps.dir/apps/datagram_chat.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/datagram_chat.cc.o.d"
  "/root/repo/src/apps/echo_server.cc" "src/CMakeFiles/dpm_apps.dir/apps/echo_server.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/echo_server.cc.o.d"
  "/root/repo/src/apps/grid.cc" "src/CMakeFiles/dpm_apps.dir/apps/grid.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/grid.cc.o.d"
  "/root/repo/src/apps/pingpong.cc" "src/CMakeFiles/dpm_apps.dir/apps/pingpong.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/pingpong.cc.o.d"
  "/root/repo/src/apps/pipeline.cc" "src/CMakeFiles/dpm_apps.dir/apps/pipeline.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/pipeline.cc.o.d"
  "/root/repo/src/apps/ring.cc" "src/CMakeFiles/dpm_apps.dir/apps/ring.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/ring.cc.o.d"
  "/root/repo/src/apps/tsp.cc" "src/CMakeFiles/dpm_apps.dir/apps/tsp.cc.o" "gcc" "src/CMakeFiles/dpm_apps.dir/apps/tsp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
