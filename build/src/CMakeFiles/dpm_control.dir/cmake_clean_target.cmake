file(REMOVE_RECURSE
  "libdpm_control.a"
)
