file(REMOVE_RECURSE
  "libdpm_daemon.a"
)
