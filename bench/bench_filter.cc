// E3 — filter selection and reduction (§3.4).
//
// Measures the FilterEngine directly (real-time throughput, since the
// filter's own speed is what bounds how much metering a filter machine
// can absorb), across rule-set sizes and selectivities, plus the
// trace-size reduction from '#' discard editing.
//
// Counters:
//   records_per_s   decode+select+render throughput (real time)
//   accept_rate     fraction of records kept
//   bytes_out_per_record  log bytes per accepted record (discard effect)
#include <benchmark/benchmark.h>

#include "filter/filter_program.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"
#include "util/strings.h"

namespace dpm::bench {
namespace {

/// A batch of realistic meter records from several machines/pids.
util::Bytes make_batch(int records) {
  util::Bytes out;
  for (int i = 0; i < records; ++i) {
    meter::MeterMsg m;
    switch (i % 4) {
      case 0:
        // Some sends hit the paper's Fig 3.3 rule (machine 0, sock 4,
        // destName 228320140).
        m.body = meter::MeterSend{i % 7, 0,
                                  static_cast<meter::SocketId>(i % 8 == 0 ? 4 : 3),
                                  static_cast<std::uint32_t>(32 + i % 1024),
                                  i % 8 == 0 ? "228320140" : ""};
        break;
      case 1:
        m.body = meter::MeterRecv{i % 7, 0, 3, 64, "228320140"};
        break;
      case 2:
        m.body = meter::MeterRecvCall{i % 7, 0, 3};
        break;
      default:
        m.body = meter::MeterAccept{i % 7, 0, 4, 5, "131073", "196612"};
        break;
    }
    m.header.machine = static_cast<std::uint16_t>(i % 8 == 0 ? 0 : 1 + i % 5);
    m.header.cpu_time = 1000 * i;
    m.header.proc_time = 10000 * (i / 16);
    auto wire = m.serialize();
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

filter::FilterEngine make_engine(const std::string& rules) {
  auto d = filter::Descriptions::parse(filter::default_descriptions_text());
  auto t = filter::Templates::parse(rules);
  return filter::FilterEngine(std::move(*d), std::move(*t));
}

constexpr int kRecords = 2000;

void run_engine(benchmark::State& state, const std::string& rules) {
  const util::Bytes batch = make_batch(kRecords);
  std::uint64_t accepted = 0, records = 0, bytes_out = 0;
  for (auto _ : state) {
    filter::FilterEngine engine = make_engine(rules);
    std::string log = engine.feed(1, batch);
    benchmark::DoNotOptimize(log);
    accepted += engine.stats().accepted;
    records += engine.stats().records_in;
    bytes_out += engine.stats().bytes_out;
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["accept_rate"] =
      static_cast<double>(accepted) / static_cast<double>(records);
  state.counters["bytes_out_per_record"] =
      accepted ? static_cast<double>(bytes_out) / static_cast<double>(accepted)
               : 0.0;
}

void BM_Filter_NoRules(benchmark::State& state) { run_engine(state, ""); }

void BM_Filter_OneRule(benchmark::State& state) {
  run_engine(state, "machine=2\n");  // keeps ~20%
}

void BM_Filter_PaperRules(benchmark::State& state) {
  // The paper's Fig 3.3 rules verbatim.
  run_engine(state,
             "machine=5, cpuTime<10000\n"
             "machine=0, type=1, sock=4, destName=228320140\n");
}

void BM_Filter_ManyRules(benchmark::State& state) {
  std::string rules;
  for (int i = 0; i < state.range(0); ++i) {
    rules += util::strprintf("machine=%d, type=%d\n", i % 5, 1 + i % 10);
  }
  run_engine(state, rules);
}

void BM_Filter_DiscardEditing(benchmark::State& state) {
  // Keep everything but drop four fields from every record (Fig 3.4's
  // size-reduction technique).
  run_engine(state, "machine=#*, pid=#*, pc=#*, procTime=#*\n");
}

void BM_Filter_HighlySelective(benchmark::State& state) {
  run_engine(state, "type=1, msgLength>900\n");  // keeps a few percent
}

BENCHMARK(BM_Filter_NoRules);
BENCHMARK(BM_Filter_OneRule);
BENCHMARK(BM_Filter_PaperRules);
BENCHMARK(BM_Filter_ManyRules)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_Filter_DiscardEditing);
BENCHMARK(BM_Filter_HighlySelective);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
