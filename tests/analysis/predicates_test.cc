// Predicate DSL and online detector: spec parsing/compilation against the
// standard descriptions, and hand-built trace scenarios through
// LiveAnalysis + PredicateDetector — concurrent state overlap yields
// possibly (and definitely when the overlap survives ε), happens-before
// edges exclude ordered intervals, reach conjuncts gate on settled
// channels, wildcard selectors instantiate per observed process, and the
// settled frontier neither wedges on pairing races nor leaks send stamps.
#include <gtest/gtest.h>

#include "analysis/analysis_testing.h"
#include "analysis/live/aggregator.h"
#include "analysis/predicates/detector.h"
#include "analysis/predicates/predicate.h"

namespace dpm::analysis::pred {
namespace {

using dpm::analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterRecvCall;
using meter::MeterSend;
using meter::MeterSockCrt;
using meter::MeterTermProc;

const filter::Descriptions& desc() {
  static const filter::Descriptions d =
      *filter::Descriptions::parse(filter::default_descriptions_text());
  return d;
}

using Events = std::vector<std::pair<Stamp, meter::MeterBody>>;

/// Feeds `events` through a LiveAnalysis with the detector subscribed,
/// finishes, and returns every verdict. `stats`/`status` report the
/// detector's final state when non-null.
std::vector<PredicateDetector::Verdict> run_detector(
    const Events& events, const std::string& spec, std::int64_t eps,
    PredicateDetector::Stats* stats = nullptr,
    std::vector<PredicateDetector::PredicateStatus>* status = nullptr) {
  live::LiveAnalysis live;
  PredicateDetector det(desc(), DetectorConfig{.epsilon_us = eps});
  live.add_observer(&det);
  std::string err;
  EXPECT_TRUE(det.add_predicate(spec, &err)) << err;
  const Trace tr = dpm::analysis_testing::make_trace(events);
  for (const Event& e : tr.events) live.add_event(e);
  det.finish();
  if (stats != nullptr) *stats = det.stats();
  if (status != nullptr) *status = det.status();
  return det.take_verdicts();
}

// ---- spec parsing ---------------------------------------------------------

TEST(PredicateSpec, ParsesAndRoundTrips) {
  const std::string text =
      "wait: @0:* type=recvcall & @1:101 type=recvcall, sock>=10"
      " & reach @0:* -> @1:*";
  std::string err;
  const auto spec = PredicateSpec::parse(text, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->name, "wait");
  ASSERT_EQ(spec->locals.size(), 2u);
  EXPECT_EQ(spec->locals[0].sel.machine, 0);
  EXPECT_FALSE(spec->locals[0].sel.pid.has_value());
  EXPECT_EQ(spec->locals[1].sel.pid, 101);
  ASSERT_EQ(spec->locals[1].clauses.size(), 2u);
  EXPECT_EQ(spec->locals[1].clauses[1].field, "sock");
  EXPECT_EQ(spec->locals[1].clauses[1].op, filter::CmpOp::ge);
  ASSERT_EQ(spec->reaches.size(), 1u);

  // Canonical text re-parses to the same structure.
  const auto again = PredicateSpec::parse(spec->to_string(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->to_string(), spec->to_string());
  EXPECT_EQ(again->locals.size(), spec->locals.size());
  EXPECT_EQ(again->reaches.size(), spec->reaches.size());
}

TEST(PredicateSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                // no name
      "type=send",                       // no name prefix
      "p: ",                             // empty conjunct list
      "p: @0:* type=send & & @1:* pc=0", // empty conjunct between '&'s
      "p: @0:* type=send, , pc=0",       // empty clause between ','s
      "p: @zork type=send",              // bad selector
      "p: @0:* type",                    // clause without operator
      "p: @0:* type=",                   // clause without value
      "p: @0:* type!*",                  // wildcard with non-'='
      "p: type=send",                    // conjunct without '@'
      "p: @0:*",                         // conjunct without clauses
      "p: reach @0:* -> @1:*",           // reach only, no local conjunct
      "p: @0:* type=send & reach @0:*",  // reach without arrow
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(PredicateSpec::parse(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(PredicateSpec, CompileValidatesFieldsAndTypeNames) {
  std::string err;
  const auto unknown_field =
      PredicateSpec::parse("p: @0:* bogus=3", &err);
  ASSERT_TRUE(unknown_field.has_value());
  EXPECT_FALSE(
      CompiledPredicate::compile(*unknown_field, desc(), &err).has_value());
  EXPECT_NE(err.find("bogus"), std::string::npos);

  const auto unknown_type =
      PredicateSpec::parse("p: @0:* type=zork", &err);
  ASSERT_TRUE(unknown_type.has_value());
  EXPECT_FALSE(
      CompiledPredicate::compile(*unknown_type, desc(), &err).has_value());

  // A numeric type value canonicalizes to the event name the state holds.
  const auto numeric = PredicateSpec::parse("p: @0:* type=2", &err);
  ASSERT_TRUE(numeric.has_value());
  const auto compiled = CompiledPredicate::compile(*numeric, desc(), &err);
  ASSERT_TRUE(compiled.has_value()) << err;
  EXPECT_EQ(compiled->locals()[0].clauses[0].value,
            meter::event_name(static_cast<meter::EventType>(2)));
}

// ---- detection scenarios --------------------------------------------------

/// Two processes on different machines enter type=recvcall concurrently
/// (no messages, so no happens-before edges): A holds [1000,3000], B
/// holds [1500,3500] on their local clocks.
Events concurrent_overlap() {
  return {
      {Stamp{0, 1000, 0}, MeterRecvCall{100, 0, 10}},
      {Stamp{1, 1500, 0}, MeterRecvCall{101, 0, 11}},
      {Stamp{0, 3000, 0}, MeterSockCrt{100, 0, 50, 2, 1, 0}},
      {Stamp{1, 3500, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 5000, 0}, MeterTermProc{100, 0, 0}},
      {Stamp{1, 5500, 0}, MeterTermProc{101, 0, 0}},
  };
}

TEST(PredicateDetectorTest, ConcurrentOverlapYieldsPossiblyThenDefinitely) {
  PredicateDetector::Stats st;
  std::vector<PredicateDetector::PredicateStatus> status;
  const auto verdicts = run_detector(
      concurrent_overlap(), "w: @0:* type=recvcall & @1:* type=recvcall",
      /*eps=*/100, &st, &status);

  // The overlap [1500,3000] is 1500us wide, far beyond ε=100: the cut is
  // first witnessed as possibly (while B's interval is still open), then
  // upgraded to definitely once both ends are known.
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].kind, PredicateDetector::VerdictKind::possibly);
  EXPECT_EQ(verdicts[1].kind, PredicateDetector::VerdictKind::definitely);
  EXPECT_EQ(verdicts[0].occurrence, verdicts[1].occurrence);
  ASSERT_EQ(verdicts[1].witness.size(), 2u);
  EXPECT_EQ(verdicts[1].cut_lo_us, 1500);
  EXPECT_EQ(verdicts[1].cut_hi_us, 3000);
  EXPECT_EQ(verdicts[1].witness[0].proc, (ProcKey{0, 100}));
  EXPECT_EQ(verdicts[1].witness[1].proc, (ProcKey{1, 101}));

  EXPECT_EQ(st.events, 6u);
  EXPECT_EQ(st.settled, 6u);
  EXPECT_EQ(st.verdicts_possibly, 1u);
  EXPECT_EQ(st.verdicts_definitely, 1u);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].strongest, 2);
  EXPECT_EQ(status[0].possibly_count, 1u);
  EXPECT_EQ(status[0].definitely_count, 1u);
}

TEST(PredicateDetectorTest, WideEpsilonDowngradesDefinitelyToPossibly) {
  // With ε=2000 the 1500us overlap no longer survives every skew
  // assignment (max_lo + ε = 3500 > min_hi = 3000): possibly still
  // fires, definitely must not.
  const auto verdicts = run_detector(
      concurrent_overlap(), "w: @0:* type=recvcall & @1:* type=recvcall",
      /*eps=*/2000);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].kind, PredicateDetector::VerdictKind::possibly);
}

TEST(PredicateDetectorTest, HappensBeforeExclusionSuppressesVerdicts) {
  // A's interval [1000,3000] is ordered before B's [5000,5500] by a
  // message: A sends after leaving the state, B receives before entering
  // it. No skew assignment can overlap hb-ordered intervals, so even a
  // huge ε yields nothing.
  const Events ordered = {
      {Stamp{0, 400, 0}, MeterConnect{100, 0, 10, "na", "nb"}},
      {Stamp{1, 600, 0}, MeterAccept{101, 0, 20, 11, "nb", "na"}},
      {Stamp{0, 1000, 0}, MeterRecvCall{100, 0, 10}},
      {Stamp{0, 3000, 0}, MeterSockCrt{100, 0, 50, 2, 1, 0}},
      {Stamp{0, 4000, 0}, MeterSend{100, 0, 10, 32, ""}},
      {Stamp{1, 4500, 0}, MeterRecv{101, 0, 11, 32, ""}},
      {Stamp{1, 5000, 0}, MeterRecvCall{101, 0, 11}},
      {Stamp{1, 5500, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 6000, 0}, MeterTermProc{100, 0, 0}},
      {Stamp{1, 6500, 0}, MeterTermProc{101, 0, 0}},
  };
  EXPECT_TRUE(run_detector(ordered,
                           "w: @0:* type=recvcall & @1:* type=recvcall",
                           /*eps=*/10000)
                  .empty());

  // The same local timings without the message are merely time-separated:
  // widening by ε=10000 overlaps them, so possibly fires. (B's opening
  // sockcrt binds it before A's interval — an instantiation only tracks
  // intervals from its binding on.)
  const Events unordered = {
      {Stamp{1, 400, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 1000, 0}, MeterRecvCall{100, 0, 10}},
      {Stamp{0, 3000, 0}, MeterSockCrt{100, 0, 50, 2, 1, 0}},
      {Stamp{1, 5000, 0}, MeterRecvCall{101, 0, 11}},
      {Stamp{1, 5500, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 6000, 0}, MeterTermProc{100, 0, 0}},
      {Stamp{1, 6500, 0}, MeterTermProc{101, 0, 0}},
  };
  const auto verdicts = run_detector(
      unordered, "w: @0:* type=recvcall & @1:* type=recvcall",
      /*eps=*/10000);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].kind, PredicateDetector::VerdictKind::possibly);
}

TEST(PredicateDetectorTest, TimeExclusionSuppressesAtSmallEpsilon) {
  // Same separated intervals, ε=100: A ends (3000) more than ε before B
  // starts (5000), so no skew assignment overlaps them. B binds early so
  // A's interval is actually tracked and the exclusion logic (not a
  // missing binding) is what suppresses the verdict.
  const Events separated = {
      {Stamp{1, 400, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 1000, 0}, MeterRecvCall{100, 0, 10}},
      {Stamp{0, 3000, 0}, MeterSockCrt{100, 0, 50, 2, 1, 0}},
      {Stamp{1, 5000, 0}, MeterRecvCall{101, 0, 11}},
      {Stamp{1, 5500, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 6000, 0}, MeterTermProc{100, 0, 0}},
      {Stamp{1, 6500, 0}, MeterTermProc{101, 0, 0}},
  };
  EXPECT_TRUE(run_detector(separated,
                           "w: @0:* type=recvcall & @1:* type=recvcall",
                           /*eps=*/100)
                  .empty());
}

TEST(PredicateDetectorTest, ReachConjunctGatesOnSettledChannels) {
  const std::string spec =
      "r: @0:* type=recvcall & @1:* type=recvcall & reach @0:* -> @1:*";

  // Concurrent overlap but no message ever flowed 0 -> 1: the reach
  // conjunct never certifies, so the cut is never reported.
  EXPECT_TRUE(run_detector(concurrent_overlap(), spec, /*eps=*/100).empty());

  // An early message (before either interval, so the intervals stay
  // concurrent) settles the 0 -> 1 channel edge and unlocks the verdict.
  const Events reached = {
      {Stamp{0, 100, 0}, MeterConnect{100, 0, 10, "na", "nb"}},
      {Stamp{1, 150, 0}, MeterAccept{101, 0, 20, 11, "nb", "na"}},
      {Stamp{0, 200, 0}, MeterSend{100, 0, 10, 32, ""}},
      {Stamp{1, 300, 0}, MeterRecv{101, 0, 11, 32, ""}},
      {Stamp{0, 1000, 0}, MeterRecvCall{100, 0, 10}},
      {Stamp{1, 1500, 0}, MeterRecvCall{101, 0, 11}},
      {Stamp{0, 3000, 0}, MeterSockCrt{100, 0, 50, 2, 1, 0}},
      {Stamp{1, 3500, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      {Stamp{0, 5000, 0}, MeterTermProc{100, 0, 0}},
      {Stamp{1, 5500, 0}, MeterTermProc{101, 0, 0}},
  };
  const auto verdicts = run_detector(reached, spec, /*eps=*/100);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].kind, PredicateDetector::VerdictKind::possibly);
  EXPECT_EQ(verdicts[1].kind, PredicateDetector::VerdictKind::definitely);
}

TEST(PredicateDetectorTest, WildcardSelectorInstantiatesPerProcess) {
  PredicateDetector::Stats st;
  const auto verdicts = run_detector(concurrent_overlap(),
                                     "any: @* type=recvcall",
                                     /*eps=*/100, &st);
  // One instantiation per observed process; each interval is 2000us wide,
  // beyond ε, so each process gets possibly + definitely.
  EXPECT_EQ(st.instantiations, 2u);
  EXPECT_EQ(st.verdicts_possibly, 2u);
  EXPECT_EQ(st.verdicts_definitely, 2u);
  ASSERT_EQ(verdicts.size(), 4u);
  bool saw_a = false, saw_b = false;
  for (const auto& v : verdicts) {
    ASSERT_EQ(v.witness.size(), 1u);
    if (v.witness[0].proc == ProcKey{0, 100}) saw_a = true;
    if (v.witness[0].proc == ProcKey{1, 101}) saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(PredicateDetectorTest, UnmatchedReceiveSettlesOnFinish) {
  // A receive with no send anywhere blocks the settled frontier (its
  // happens-before edge may still arrive) until finish() releases it.
  live::LiveAnalysis live;
  PredicateDetector det(desc(), DetectorConfig{.epsilon_us = 100});
  live.add_observer(&det);
  std::string err;
  ASSERT_TRUE(det.add_predicate("p: @0:* type=recv", &err)) << err;
  const Trace tr = dpm::analysis_testing::make_trace({
      {Stamp{0, 1000, 0}, MeterRecv{100, 0, 10, 32, ""}},
      {Stamp{0, 2000, 0}, MeterTermProc{100, 0, 0}},
  });
  for (const Event& e : tr.events) live.add_event(e);
  EXPECT_EQ(det.stats().settled, 0u);
  EXPECT_EQ(det.stats().unsettled, 2u);
  det.finish();
  EXPECT_EQ(det.stats().settled, 2u);
  EXPECT_EQ(det.stats().unsettled, 0u);
  EXPECT_EQ(det.stats().verdicts_possibly, 1u);
}

/// A's send at 4000 is blocked behind an earlier unpaired receive on A
/// (sock 9 never joins — delayed meter chunks); B's receive at 4500 pairs
/// with that send. A's recvcall interval [1000,3000] is hb-ordered before
/// B's [5000,5500] through the message, so with the join intact no ε can
/// produce a verdict.
Events blocked_send_chain() {
  return {
      {Stamp{0, 300, 0}, MeterConnect{100, 0, 10, "na", "nb"}},
      {Stamp{1, 350, 0}, MeterAccept{101, 0, 20, 11, "nb", "na"}},
      {Stamp{0, 500, 0}, MeterRecv{100, 0, 9, 32, ""}},
      {Stamp{0, 1000, 0}, MeterRecvCall{100, 0, 10}},
      {Stamp{0, 3000, 0}, MeterSockCrt{100, 0, 50, 2, 1, 0}},
      {Stamp{0, 4000, 0}, MeterSend{100, 0, 10, 32, ""}},
      {Stamp{1, 4500, 0}, MeterRecv{101, 0, 11, 32, ""}},
      {Stamp{1, 5000, 0}, MeterRecvCall{101, 0, 11}},
      {Stamp{1, 5500, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
      // Filler keeps Lamport progress advancing so a park TTL can expire
      // within the trace.
      {Stamp{1, 5600, 0}, MeterSockCrt{101, 0, 52, 2, 1, 0}},
      {Stamp{1, 5700, 0}, MeterSockCrt{101, 0, 53, 2, 1, 0}},
      {Stamp{1, 5800, 0}, MeterSockCrt{101, 0, 54, 2, 1, 0}},
      {Stamp{0, 6000, 0}, MeterTermProc{100, 0, 0}},
      {Stamp{1, 6500, 0}, MeterTermProc{101, 0, 0}},
  };
}

TEST(PredicateDetectorTest, SettledSendWakesItsWaitingReceive) {
  // When the pairing TTL expels A's stuck receive, A's send settles — and
  // must wake B's waiting receive: the whole trace settles *live* (no
  // finish() needed), the message edge is joined (so the hb-ordered
  // intervals yield nothing even at a huge ε), and the consumed send
  // stamp is reclaimed. The TTL is sized so the expulsion lands *after*
  // B's receive has been announced as paired (the lost-wakeup shape) but
  // before the trace ends.
  live::LiveConfig lcfg;
  lcfg.park_ttl = 4;
  live::LiveAnalysis live(lcfg);
  PredicateDetector det(desc(), DetectorConfig{.epsilon_us = 10000});
  live.add_observer(&det);
  std::string err;
  ASSERT_TRUE(det.add_predicate("w: @0:* type=recvcall & @1:* type=recvcall",
                                &err))
      << err;
  const Trace tr = dpm::analysis_testing::make_trace(blocked_send_chain());
  for (const Event& e : tr.events) live.add_event(e);

  const auto st = det.stats();
  EXPECT_EQ(st.settled, tr.events.size());
  EXPECT_EQ(st.unsettled, 0u);
  EXPECT_EQ(st.send_stamps, 0u);

  det.finish();
  EXPECT_TRUE(det.take_verdicts().empty());
}

TEST(PredicateDetectorTest, FinishJoinsWaitingReceiveInsteadOfSevering) {
  // Same chain with the TTL never firing: everything behind A's unpaired
  // receive is still buffered at finish(). Severing that one head must
  // cascade into real settlements — A's send records its stamp, B's
  // waiting receive joins it — rather than severing B's receive too and
  // dropping the happens-before edge (which would emit a bogus possibly).
  live::LiveAnalysis live;
  PredicateDetector det(desc(), DetectorConfig{.epsilon_us = 10000});
  live.add_observer(&det);
  std::string err;
  ASSERT_TRUE(det.add_predicate("w: @0:* type=recvcall & @1:* type=recvcall",
                                &err))
      << err;
  const Trace tr = dpm::analysis_testing::make_trace(blocked_send_chain());
  for (const Event& e : tr.events) live.add_event(e);
  EXPECT_GT(det.stats().unsettled, 0u);

  det.finish();
  const auto st = det.stats();
  EXPECT_EQ(st.settled, tr.events.size());
  EXPECT_EQ(st.unsettled, 0u);
  EXPECT_TRUE(det.take_verdicts().empty());
}

TEST(PredicateDetectorTest, SendStampsArePrunedAndBounded) {
  // A datagram send whose destination name never resolves settles (and
  // stamps) immediately, then is expelled by the pairing TTL: the gap
  // notification must reclaim the stamp it left behind.
  {
    live::LiveConfig lcfg;
    lcfg.park_ttl = 2;
    live::LiveAnalysis live(lcfg);
    PredicateDetector det(desc(), DetectorConfig{.epsilon_us = 100});
    live.add_observer(&det);
    std::string err;
    ASSERT_TRUE(det.add_predicate("p: @0:* type=send", &err)) << err;
    const Trace tr = dpm::analysis_testing::make_trace({
        {Stamp{0, 100, 0}, MeterSend{100, 0, 9, 32, "nowhere"}},
        // Unrelated progress on another machine drives the TTL sweep.
        {Stamp{1, 200, 0}, MeterSockCrt{101, 0, 51, 2, 1, 0}},
        {Stamp{1, 300, 0}, MeterSockCrt{101, 0, 52, 2, 1, 0}},
        {Stamp{1, 400, 0}, MeterSockCrt{101, 0, 53, 2, 1, 0}},
        {Stamp{1, 500, 0}, MeterSockCrt{101, 0, 54, 2, 1, 0}},
        {Stamp{1, 600, 0}, MeterSockCrt{101, 0, 55, 2, 1, 0}},
    });
    for (const Event& e : tr.events) live.add_event(e);
    EXPECT_EQ(det.stats().send_stamps, 0u);
    EXPECT_GE(det.stats().send_stamps_dropped, 1u);
  }

  // Stream sends whose receives never arrive leave no reclamation signal
  // at all: the cap keeps the retained stamps bounded.
  {
    live::LiveAnalysis live;
    PredicateDetector det(
        desc(), DetectorConfig{.epsilon_us = 100, .max_send_stamps = 2});
    live.add_observer(&det);
    std::string err;
    ASSERT_TRUE(det.add_predicate("p: @0:* type=send", &err)) << err;
    const Trace tr = dpm::analysis_testing::make_trace({
        {Stamp{0, 100, 0}, MeterConnect{100, 0, 10, "na", "nb"}},
        {Stamp{1, 150, 0}, MeterAccept{101, 0, 20, 11, "nb", "na"}},
        {Stamp{0, 1000, 0}, MeterSend{100, 0, 10, 32, ""}},
        {Stamp{0, 2000, 0}, MeterSend{100, 0, 10, 32, ""}},
        {Stamp{0, 3000, 0}, MeterSend{100, 0, 10, 32, ""}},
        {Stamp{0, 4000, 0}, MeterSend{100, 0, 10, 32, ""}},
        {Stamp{0, 5000, 0}, MeterSend{100, 0, 10, 32, ""}},
    });
    for (const Event& e : tr.events) live.add_event(e);
    const auto st = det.stats();
    EXPECT_EQ(st.send_stamps, 2u);
    EXPECT_EQ(st.send_stamps_dropped, 3u);
  }
}

TEST(PredicateDetectorTest, RejectsDuplicateNamesAndBadSpecs) {
  PredicateDetector det(desc());
  std::string err;
  ASSERT_TRUE(det.add_predicate("p: @0:* type=send", &err)) << err;
  EXPECT_FALSE(det.add_predicate("p: @1:* type=recv", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(det.add_predicate("q: @0:* bogus=1", &err));
  EXPECT_FALSE(det.add_predicate("not a spec", &err));
  EXPECT_EQ(det.stats().predicates, 1u);
}

}  // namespace
}  // namespace dpm::analysis::pred
