file(REMOVE_RECURSE
  "CMakeFiles/dpm_daemon.dir/daemon/meterdaemon.cc.o"
  "CMakeFiles/dpm_daemon.dir/daemon/meterdaemon.cc.o.d"
  "CMakeFiles/dpm_daemon.dir/daemon/protocol.cc.o"
  "CMakeFiles/dpm_daemon.dir/daemon/protocol.cc.o.d"
  "libdpm_daemon.a"
  "libdpm_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
