// RollingWindow: sliding sim-time sum/count with exact eviction at the
// window boundary.
#include <gtest/gtest.h>

#include "analysis/live/window.h"

namespace dpm::analysis::live {
namespace {

TEST(RollingWindow, CountsAndSumsWithinSpan) {
  RollingWindow w(1000);
  w.add(0);
  w.add(500);
  w.add(999);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_EQ(w.sum(), 3);
}

TEST(RollingWindow, EvictsAtExactBoundary) {
  RollingWindow w(1000);
  w.add(0);
  w.add(500);
  w.add(1000);  // cutoff is now 0: the t=0 entry falls out (t <= cutoff)
  EXPECT_EQ(w.count(), 2u);
  w.advance(1500);  // cutoff 500: t=500 falls out
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 1);
  w.advance(2001);  // cutoff 1001: empty
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.sum(), 0);
}

TEST(RollingWindow, WeightsAccumulateAndEvict) {
  RollingWindow w(100);
  w.add(10, 64);
  w.add(50, 128);
  EXPECT_EQ(w.sum(), 192);
  w.advance(120);  // cutoff 20: the 64-byte entry leaves
  EXPECT_EQ(w.sum(), 128);
  EXPECT_EQ(w.count(), 1u);
}

TEST(RollingWindow, AdvanceNeverMovesBackwards) {
  RollingWindow w(100);
  w.add(1000, 5);
  w.advance(500);  // regression: ignored, nothing un-evicted or re-evicted
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 5);
  w.advance(1101);
  EXPECT_EQ(w.count(), 0u);
}

TEST(RollingWindow, PerSecondScalesBySpan) {
  RollingWindow w(500'000);  // half a second
  w.add(0, 10);
  EXPECT_DOUBLE_EQ(w.per_second(), 20.0);
  w.advance(600'000);
  EXPECT_DOUBLE_EQ(w.per_second(), 0.0);
}

TEST(RollingWindow, NonPositiveSpanClampsToOne) {
  RollingWindow w(0);
  w.add(100);
  EXPECT_EQ(w.count(), 1u);
  w.advance(102);
  EXPECT_EQ(w.count(), 0u);
}

}  // namespace
}  // namespace dpm::analysis::live
