#include "filter/count_filter.h"

#include <algorithm>
#include <map>

#include "filter/descriptions.h"
#include "filter/filter_program.h"
#include "filter/templates.h"
#include "kernel/syscalls.h"
#include "util/strings.h"

namespace dpm::filter {

namespace {

using kernel::Fd;
using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

std::string read_whole_file(Sys& sys, const std::string& path) {
  auto fd = sys.open(path, Sys::OpenMode::read);
  if (!fd) return {};
  std::string text;
  for (;;) {
    auto chunk = sys.read(*fd, 4096);
    if (!chunk || chunk->empty()) break;
    text += util::to_string(*chunk);
  }
  (void)sys.close(*fd);
  return text;
}

/// Aggregated view of the accepted records.
class Counters {
 public:
  void add(const Record& rec) {
    ++by_event_[rec.event_name];
    const auto machine = rec.num("machine").value_or(-1);
    const auto pid = rec.num("pid").value_or(-1);
    auto& p = by_proc_[{machine, pid}];
    ++p.events;
    if (rec.event_name == "SEND") {
      ++p.sends;
      p.bytes += rec.num("msgLength").value_or(0);
    }
    ++total_;
  }

  std::string render() const {
    std::string out = "# countfilter summary\n";
    out += util::strprintf("total=%llu\n",
                           static_cast<unsigned long long>(total_));
    for (const auto& [name, n] : by_event_) {
      out += util::strprintf("event %s %llu\n", name.c_str(),
                             static_cast<unsigned long long>(n));
    }
    for (const auto& [key, p] : by_proc_) {
      out += util::strprintf(
          "proc m%lld/p%lld events=%llu sends=%llu sendBytes=%lld\n",
          static_cast<long long>(key.first), static_cast<long long>(key.second),
          static_cast<unsigned long long>(p.events),
          static_cast<unsigned long long>(p.sends),
          static_cast<long long>(p.bytes));
    }
    return out;
  }

 private:
  struct ProcCounts {
    std::uint64_t events = 0;
    std::uint64_t sends = 0;
    std::int64_t bytes = 0;
  };
  std::map<std::string, std::uint64_t> by_event_;
  std::map<std::pair<std::int64_t, std::int64_t>, ProcCounts> by_proc_;
  std::uint64_t total_ = 0;
};

}  // namespace

kernel::ProcessMain make_count_filter_main(
    const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    if (argv.size() < 5) {
      (void)sys.print("countfilter: bad arguments\n");
      sys.exit(1);
    }
    const std::string& logfile = argv[1];
    auto desc = Descriptions::parse(read_whole_file(sys, argv[2]));
    auto templ = Templates::parse(read_whole_file(sys, argv[3]));
    const auto port = util::parse_int(argv[4]).value_or(0);
    if (!desc || !templ || port <= 0) {
      (void)sys.print("countfilter: bad support files\n");
      sys.exit(1);
    }
    // The engine does framing, decode, and (compiled) selection; this
    // filter only aggregates the accepted records. It accounts into the
    // world's registry like the standard filter.
    FilterEngine engine(std::move(*desc), std::move(*templ), EvalPath::view,
                        &sys.world().obs());

    auto lsock = sys.socket(SockDomain::internet, SockType::stream);
    if (!lsock || !sys.bind_port(*lsock, static_cast<net::Port>(port)) ||
        !sys.listen(*lsock, 32)) {
      sys.exit(1);
    }

    Counters counters;

    auto rewrite_log = [&] {
      auto fd = sys.open(logfile, Sys::OpenMode::write_trunc);
      if (fd) {
        (void)sys.write(*fd, counters.render());
        (void)sys.close(*fd);
      }
    };
    rewrite_log();  // an empty summary exists from the start

    std::vector<Fd> conns;
    for (;;) {
      std::vector<Fd> fds = conns;
      fds.push_back(*lsock);
      auto sel = sys.select(fds, false, std::nullopt);
      if (!sel) break;
      bool changed = false;
      for (Fd fd : sel->readable) {
        if (fd == *lsock) {
          auto conn = sys.accept(*lsock);
          if (conn) conns.push_back(*conn);
          continue;
        }
        auto data = sys.recv(fd, 8192);
        if (!data || data->empty()) {
          engine.end_connection(static_cast<std::uint64_t>(fd));
          (void)sys.close(fd);
          conns.erase(std::remove(conns.begin(), conns.end(), fd), conns.end());
          continue;
        }
        engine.feed_each(static_cast<std::uint64_t>(fd), *data,
                         [&](const Record& rec) {
                           counters.add(rec);
                           changed = true;
                         });
      }
      if (changed) rewrite_log();
    }

    (void)sys.write(2, filter_summary_line("countfilter", engine.stats()));
    sys.exit(0);
  };
}

void register_count_filter_program(kernel::ExecRegistry& registry) {
  registry.register_program(kCountFilterProgram, make_count_filter_main);
}

}  // namespace dpm::filter
