#include "sim/clock.h"

#include <gtest/gtest.h>

namespace dpm::sim {
namespace {

using util::TimePoint;
using util::usec;

TEST(MachineClock, DefaultReadsTrueTimeQuantized) {
  MachineClock c;
  // default tick 100us
  EXPECT_EQ(c.read_us(TimePoint{} + usec(1234567)), 1234500);
}

TEST(MachineClock, OffsetShiftsReadings) {
  MachineClock::Config cfg;
  cfg.offset = usec(5000);
  cfg.tick = usec(1);
  MachineClock c(cfg);
  EXPECT_EQ(c.read_us(TimePoint{} + usec(1000)), 6000);
}

TEST(MachineClock, NegativeOffsetCanReadBehind) {
  MachineClock::Config cfg;
  cfg.offset = usec(-3000);
  cfg.tick = usec(1);
  MachineClock c(cfg);
  EXPECT_EQ(c.read_us(TimePoint{} + usec(1000)), -2000);
}

TEST(MachineClock, DriftAccumulates) {
  MachineClock::Config cfg;
  cfg.drift_ppm = 100.0;  // 100 us per second fast
  cfg.tick = usec(1);
  MachineClock c(cfg);
  EXPECT_EQ(c.read_us(TimePoint{} + usec(10000000)), 10001000);
}

TEST(MachineClock, TickQuantizes) {
  MachineClock::Config cfg;
  cfg.tick = usec(10000);  // 10ms line clock
  MachineClock c(cfg);
  EXPECT_EQ(c.read_us(TimePoint{} + usec(19999)), 10000);
  EXPECT_EQ(c.read_us(TimePoint{} + usec(20000)), 20000);
}

TEST(MachineClock, TwoSkewedClocksDisagree) {
  MachineClock::Config a;
  a.offset = usec(2000);
  a.tick = usec(1);
  MachineClock::Config b;
  b.offset = usec(-2000);
  b.tick = usec(1);
  const TimePoint t = TimePoint{} + usec(500000);
  // The same true instant reads 4ms apart — the paper's "no universal
  // time base" problem.
  EXPECT_EQ(MachineClock(a).read_us(t) - MachineClock(b).read_us(t), 4000);
}

}  // namespace
}  // namespace dpm::sim
