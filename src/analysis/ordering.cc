#include "analysis/ordering.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "analysis/live/pairing.h"

namespace dpm::analysis {

Ordering order_events(const Trace& trace) {
  Ordering out;
  const std::size_t n = trace.events.size();
  out.events.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.events[i].index = i;

  // ---- Match sends to receives per directed channel ----
  // The channel semantics (k-th send with k-th receive, stream channels
  // keyed by the sending endpoint, datagram traffic by name ownership)
  // live in the incremental PairingCore shared with the streaming
  // aggregator — the batch path just feeds it the whole trace.
  live::PairingCore pairing;
  for (std::size_t i = 0; i < n; ++i) pairing.observe(trace.events[i], i);

  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  auto add_edge = [&](std::size_t a, std::size_t b) {
    succ[a].push_back(b);
    ++indeg[b];
  };

  for (const auto& p : pairing.take_pairs()) {
    out.events[p.recv].matched_send = p.send;
    add_edge(p.send, p.recv);
    ++out.message_pairs;
    const Event& se = trace.events[p.send];
    const Event& re = trace.events[p.recv];
    if (se.machine != re.machine) {
      ++out.cross_machine_pairs;
      if (re.cpu_time < se.cpu_time) {
        ++out.clock_anomalies;
        out.max_anomaly_us =
            std::max(out.max_anomaly_us, se.cpu_time - re.cpu_time);
      }
    }
  }

  // ---- Program order within each process ----
  std::map<ProcKey, std::size_t> last_of;
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = last_of.try_emplace(trace.events[i].proc(), i);
    if (!fresh) {
      add_edge(it->second, i);
      it->second = i;
    }
  }

  // ---- Lamport clocks by topological order (Kahn) ----
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    out.events[i].lamport = 1;
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    ++visited;
    for (std::size_t j : succ[i]) {
      out.events[j].lamport =
          std::max(out.events[j].lamport, out.events[i].lamport + 1);
      if (--indeg[j] == 0) ready.push_back(j);
    }
  }
  out.had_cycle = visited != n;  // possible only from mis-matched pairs
  return out;
}

ClockAlignment estimate_clock_alignment(const Trace& trace,
                                        const Ordering& ordering) {
  ClockAlignment out;

  // Minimum observed (recv - send) per directed machine pair.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::int64_t> min_delta;
  std::set<std::uint16_t> machines;
  for (const Event& e : trace.events) machines.insert(e.machine);

  for (const OrderedEvent& oe : ordering.events) {
    if (!oe.matched_send) continue;
    const Event& recv = trace.events[oe.index];
    const Event& send = trace.events[*oe.matched_send];
    if (recv.machine == send.machine) continue;
    const std::int64_t delta = recv.cpu_time - send.cpu_time;
    auto key = std::make_pair(send.machine, recv.machine);
    auto it = min_delta.find(key);
    if (it == min_delta.end() || delta < it->second) min_delta[key] = delta;
  }

  // Pairwise offset estimates; BFS over the "has traffic" graph anchors
  // each component at its lowest machine id.
  auto pair_offset = [&](std::uint16_t a,
                         std::uint16_t b) -> std::optional<std::int64_t> {
    auto ab = min_delta.find({a, b});
    auto ba = min_delta.find({b, a});
    if (ab != min_delta.end() && ba != min_delta.end()) {
      return (ab->second - ba->second) / 2;  // offset_b - offset_a
    }
    if (ab != min_delta.end()) return ab->second;  // latency unknown: bound
    if (ba != min_delta.end()) return -ba->second;
    return std::nullopt;
  };

  std::set<std::uint16_t> done;
  for (std::uint16_t root : machines) {
    if (done.count(root)) continue;
    out.offset_us[root] = 0;
    done.insert(root);
    std::deque<std::uint16_t> frontier{root};
    while (!frontier.empty()) {
      const std::uint16_t a = frontier.front();
      frontier.pop_front();
      for (std::uint16_t b : machines) {
        if (done.count(b)) continue;
        auto off = pair_offset(a, b);
        if (!off) continue;
        out.offset_us[b] = out.offset_us[a] + *off;
        done.insert(b);
        frontier.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace dpm::analysis
