# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/meter_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
