// Ring-buffer meter transport (WorldConfig::meter_ring_bytes > 0): records
// encode straight into a shared SPSC ring and only wakeup doorbells cross
// the fabric. These tests pin the transport-level guarantees: the consumer
// reads byte-identical streams to the legacy batch-over-socket transport,
// conservation stays exact through overflow drops and endpoint crashes,
// and oversized records are dropped whole on the ring path / delivered
// whole on the legacy path — never truncated on either.
#include <algorithm>
#include <functional>

#include <gtest/gtest.h>

#include "kernel/meter_hooks.h"
#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/meterflags.h"
#include "meter/metermsgs.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

/// Counter value by obs key (0 when never registered).
std::uint64_t counter(World& w, const std::string& name) {
  return w.obs().counter(name).value();
}

class RingTransportTest : public ::testing::Test {
 protected:
  RingTransportTest() { reset(ring_config()) ; }

  static WorldConfig ring_config(std::size_t ring_bytes = 64 * 1024,
                                 std::size_t wakeup_bytes = 1024) {
    WorldConfig cfg;
    cfg.meter_ring_bytes = ring_bytes;
    cfg.meter_ring_wakeup_bytes = wakeup_bytes;
    return cfg;
  }

  void reset(WorldConfig cfg) {
    collected_.clear();
    world_ = std::make_unique<World>(cfg);
    machines_ = dpm::testing::add_machines(*world_, {"red", "green"});
    world_->add_account_everywhere(100);
  }

  /// Collects raw meter bytes on green:4500 (the hooks_test sink).
  void spawn_sink() {
    (void)world_->spawn(machines_[1], "sink", 100, [this](Sys& sys) {
      auto ls = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 8);
      std::vector<Fd> conns;
      for (;;) {
        std::vector<Fd> fds = conns;
        fds.push_back(*ls);
        auto sel = sys.select(fds, false, util::sec(30));
        if (!sel.ok() || sel->timed_out) break;
        for (Fd fd : sel->readable) {
          if (fd == *ls) {
            auto c = sys.accept(*ls);
            if (c.ok()) conns.push_back(*c);
            continue;
          }
          auto data = sys.recv(fd, 65536);
          if (!data.ok() || data->empty()) {
            (void)sys.close(fd);
            conns.erase(std::remove(conns.begin(), conns.end(), fd),
                        conns.end());
            continue;
          }
          collected_.insert(collected_.end(), data->begin(), data->end());
        }
      }
    });
  }

  void run_metered(meter::Flags flags, std::function<void(Sys&)> body) {
    (void)world_->spawn(machines_[0], "app", 100, [&, flags](Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("green", 4500);
      auto ms = sys.socket(SockDomain::internet, SockType::stream);
      ASSERT_TRUE(sys.connect(*ms, *addr).ok());
      ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                               static_cast<std::int32_t>(flags), *ms)
                      .ok());
      ASSERT_TRUE(sys.close(*ms).ok());
      body(sys);
    });
    world_->run();
  }

  std::vector<meter::MeterMsg> messages() const {
    std::vector<meter::MeterMsg> out;
    std::size_t pos = 0;
    while (auto m = meter::MeterMsg::parse_stream(collected_, pos)) {
      out.push_back(std::move(*m));
    }
    return out;
  }

  void expect_conserved() {
    const MeterConservation cons = world_->meter_conservation();
    EXPECT_TRUE(cons.balanced())
        << "emitted=" << cons.emitted << " accounted=" << cons.accounted()
        << " consumed=" << cons.consumed << " dropped=" << cons.dropped
        << " lost=" << cons.lost << " stranded=" << cons.stranded
        << " malformed=" << cons.malformed << " pending=" << cons.pending
        << " buffered=" << cons.buffered;
  }

  std::unique_ptr<World> world_;
  std::vector<MachineId> machines_;
  util::Bytes collected_;
};

TEST_F(RingTransportTest, RecordsArriveIntactThroughTheRing) {
  spawn_sink();
  run_metered(meter::M_SEND, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 50; ++i) (void)sys.send(pair->first, "x");
  });
  auto msgs = messages();
  ASSERT_EQ(msgs.size(), 50u);
  for (const auto& m : msgs) EXPECT_EQ(m.type(), meter::EventType::send);
  // The transport really was the ring: doorbells fired, data bytes never
  // rode the fabric as batches, nothing overflowed, all of it was drained.
  EXPECT_GT(counter(*world_, "ring.wakeups"), 0u);
  EXPECT_EQ(counter(*world_, "ring.overflow_drops"), 0u);
  EXPECT_GT(world_->obs().gauge("ring.occupancy").high_water(), 0);
  EXPECT_EQ(world_->obs().gauge("ring.occupancy").value(), 0);
  expect_conserved();
}

TEST_F(RingTransportTest, StreamIsByteIdenticalToLegacyTransport) {
  // The acceptance bar for the transport swap: with metering CPU costs
  // zeroed (so emission instants match), the byte stream the sink reads is
  // identical under the legacy batch transport and the ring — same
  // records, same order, same header clock readings, bit for bit.
  auto workload = [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 40; ++i) {
      (void)sys.send(pair->first, "x");
      if (i % 8 == 0) (void)sys.recv(pair->second, 16);
    }
    auto child = sys.fork([](Sys&) {});
    ASSERT_TRUE(child.ok());
    (void)sys.waitchange(true);
  };
  auto run_with = [&](std::size_t ring_bytes) {
    WorldConfig cfg = ring_config(ring_bytes);
    cfg.costs.meter_event = util::usec(0);
    cfg.costs.meter_flush_base = util::usec(0);
    cfg.costs.meter_flush_per_kb = util::usec(0);
    reset(cfg);
    spawn_sink();
    run_metered(meter::M_ALL, workload);
    expect_conserved();
    return collected_;
  };
  const util::Bytes legacy = run_with(0);
  const util::Bytes ring = run_with(64 * 1024);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(ring, legacy);
}

TEST_F(RingTransportTest, OverflowDropsWholeRecordsWithExactAccounting) {
  // A ring too small for the burst: the producer emits 200 records without
  // yielding, so the consumer cannot drain between pushes. Overflowing
  // records are dropped whole — the survivors parse cleanly (no torn
  // frames) and emitted == consumed + dropped exactly.
  reset(ring_config(/*ring_bytes=*/256, /*wakeup_bytes=*/64));
  spawn_sink();
  run_metered(meter::M_SEND, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 200; ++i) (void)sys.send(pair->first, "x");
  });
  const std::uint64_t drops = counter(*world_, "ring.overflow_drops");
  EXPECT_GT(drops, 0u);
  auto msgs = messages();
  EXPECT_GT(msgs.size(), 0u);
  for (const auto& m : msgs) EXPECT_EQ(m.type(), meter::EventType::send);
  const MeterConservation cons = world_->meter_conservation();
  EXPECT_EQ(cons.emitted, 200u);
  EXPECT_EQ(msgs.size() + cons.dropped, cons.emitted);
  expect_conserved();
}

TEST_F(RingTransportTest, RecordLargerThanTheRingIsDroppedNeverTruncated) {
  // Satellite regression: a record that cannot fit even an empty ring.
  // Every push refuses whole; the consumer sees nothing rather than a
  // truncated prefix, and every refusal is accounted as a drop.
  reset(ring_config(/*ring_bytes=*/16, /*wakeup_bytes=*/8));
  spawn_sink();
  run_metered(meter::M_SEND, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 10; ++i) (void)sys.send(pair->first, "x");
  });
  EXPECT_EQ(counter(*world_, "ring.overflow_drops"), 10u);
  EXPECT_TRUE(messages().empty());
  const MeterConservation cons = world_->meter_conservation();
  EXPECT_EQ(cons.emitted, 10u);
  EXPECT_EQ(cons.dropped, 10u);
  expect_conserved();
}

TEST_F(RingTransportTest, LegacyPathDeliversOversizedRecordWhole) {
  // Satellite, legacy half: a single record bigger than the whole batch
  // byte threshold still arrives intact — the pending buffer overshoots
  // the threshold and the flush ships the record whole, never clipped to
  // meter_buffer_bytes.
  WorldConfig cfg;  // meter_ring_bytes = 0: legacy transport
  cfg.meter_buffer_bytes = 48;  // smaller than one accept record below
  reset(cfg);
  spawn_sink();
  const std::string big_name(200, 'n');
  run_metered(meter::M_ACCEPT, [&](Sys& sys) {
    Process* self = sys.world().find_process(machines_[0], sys.getpid());
    ASSERT_NE(self, nullptr);
    meter::MeterAccept body{sys.getpid(), 0, 7, 8, big_name, big_name};
    meter_emit(sys.world(), *self,
               MeterEventDraft{meter::M_ACCEPT, std::move(body)});
  });
  auto msgs = messages();
  ASSERT_EQ(msgs.size(), 1u);
  const auto* acc = std::get_if<meter::MeterAccept>(&msgs[0].body);
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc->sock_name, big_name);
  EXPECT_EQ(acc->peer_name, big_name);
  expect_conserved();
}

TEST_F(RingTransportTest, ConsumerCrashBooksRingResidueNotLeak) {
  // Crash the filter machine while records sit undrained in the ring:
  // teardown must walk the residue with the frame cursor (complete frames
  // stranded — the ring holds only whole records) and the producer must
  // degrade to accounted drops, keeping emitted == accounted without the
  // consumer ever reading a byte of them.
  reset(ring_config(/*ring_bytes=*/64 * 1024, /*wakeup_bytes=*/1 << 20));
  spawn_sink();
  (void)world_->spawn(machines_[0], "app", 100, [this](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("green", 4500);
    auto ms = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*ms, *addr).ok());
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SEND), *ms)
                    .ok());
    ASSERT_TRUE(sys.close(*ms).ok());
    auto pair = sys.socketpair();
    // Huge wakeup threshold: all 30 records sit undrained in the ring.
    for (int i = 0; i < 30; ++i) (void)sys.send(pair->first, "x");
    sys.sleep(util::msec(200));  // the crash lands here
    for (int i = 0; i < 5; ++i) (void)sys.send(pair->first, "x");
  });
  world_->run_for(util::msec(100));
  world_->crash_machine(machines_[1]);
  world_->run();

  const MeterConservation cons = world_->meter_conservation();
  EXPECT_EQ(cons.consumed, 0u);
  EXPECT_EQ(cons.stranded, 30u);
  EXPECT_GE(cons.dropped, 5u);  // post-crash sends degrade to drops
  EXPECT_EQ(world_->obs().gauge("ring.occupancy").value(), 0);
  expect_conserved();
}

TEST_F(RingTransportTest, ProducerCrashLeavesConservationExact) {
  reset(ring_config(/*ring_bytes=*/64 * 1024, /*wakeup_bytes=*/1 << 20));
  spawn_sink();
  (void)world_->spawn(machines_[0], "app", 100, [](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("green", 4500);
    auto ms = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*ms, *addr).ok());
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SEND), *ms)
                    .ok());
    ASSERT_TRUE(sys.close(*ms).ok());
    auto pair = sys.socketpair();
    for (int i = 0; i < 30; ++i) (void)sys.send(pair->first, "x");
    sys.sleep(util::sec(5));
  });
  world_->run_for(util::msec(100));
  world_->crash_machine(machines_[0]);
  world_->run();
  // Ring residue when the producer side dies is stranded or consumed
  // depending on doorbell timing; either way nothing leaks.
  expect_conserved();
}

TEST_F(RingTransportTest, ImmediateFlagForcesDoorbellPerEvent) {
  reset(ring_config(/*ring_bytes=*/64 * 1024, /*wakeup_bytes=*/1 << 20));
  spawn_sink();
  run_metered(meter::M_SEND | meter::M_IMMEDIATE, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 10; ++i) (void)sys.send(pair->first, "x");
  });
  // Despite the unreachable byte threshold, M_IMMEDIATE rings the doorbell
  // for every event (plus the termination flush).
  EXPECT_GE(counter(*world_, "ring.wakeups"), 10u);
  EXPECT_EQ(messages().size(), 10u);
  expect_conserved();
}

}  // namespace
}  // namespace dpm::kernel
