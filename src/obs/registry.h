// Monitor-the-monitor: the unified metrics registry.
//
// The paper's thesis is that a distributed computation must be measured,
// not guessed at (§2.1); this module applies the same standard to the
// monitor itself. Every subsystem (kernel metering, fabric, filter,
// daemon, controller, executive) accounts through one Registry of named
// instruments instead of ad-hoc stats structs:
//
//   Counter    monotonic event count
//   Gauge      instantaneous level with a high-water mark
//   Histogram  fixed-bucket log2 distribution (count/sum/min/max + buckets)
//
// Keys are "subsystem.name" ("kernel.meter_events", "net.delivery_us").
// All timestamps are *simulated* time: the registry never reads a wall
// clock — its clock is a callback the simulation executive installs, so
// standalone use (unit tests, microbenchmarks) simply reads zero.
//
// Trace spans (ObsSpan, span.h) record begin/end events with parent
// linkage into a bounded ring owned by the registry.
//
// Hot-path discipline: instrument handles are plain pointers resolved
// once (the maps are node-based, so references are stable); recording is
// an inline add/compare with no allocation and no locking (the simulation
// is single-threaded by construction).
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "util/time.h"

namespace dpm::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// A level (buffer occupancy, queue depth) with a high-water mark. The
/// value is signed so that mismatched add/sub pairs surface as a negative
/// level instead of a silent wrap.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_ = v;
    if (v > high_) high_ = v;
  }
  void add(std::int64_t d) { set(v_ + d); }
  void sub(std::int64_t d) { v_ -= d; }  // never lowers the high-water mark
  std::int64_t value() const { return v_; }
  std::int64_t high_water() const { return high_; }

 private:
  std::int64_t v_ = 0;
  std::int64_t high_ = 0;
};

/// Fixed-bucket log2 histogram of non-negative samples. Bucket 0 holds
/// v <= 0; bucket i (i >= 1) holds v in [2^(i-1), 2^i). 64 buckets cover
/// the whole int64 range, so record() never clips.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  static int bucket_of(std::int64_t v) {
    if (v <= 0) return 0;
    const int w = std::bit_width(static_cast<std::uint64_t>(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (what a percentile reports).
  static std::int64_t bucket_bound(int i) {
    if (i <= 0) return 0;
    if (i >= 63) return INT64_MAX;
    return (std::int64_t{1} << i) - 1;
  }

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }
  const std::uint64_t* buckets() const { return buckets_; }

  /// Upper-bound estimate of the p-th percentile (p in [0,100]): the
  /// bound of the first bucket whose cumulative count reaches p% of the
  /// samples, clamped to the observed maximum. Zero when empty.
  std::int64_t percentile(double p) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// One begin or end event of a trace span, as stored in the ring.
struct SpanEvent {
  std::uint64_t span = 0;    // span id (1-based)
  std::uint64_t parent = 0;  // enclosing open span at begin time (0 = root)
  std::string name;          // "subsystem.operation"
  bool begin = false;        // begin or end event
  std::int64_t t_us = 0;     // sim time of the event
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- instruments (references are stable for the registry's lifetime) --
  Counter& counter(std::string_view key);
  Gauge& gauge(std::string_view key);
  Histogram& histogram(std::string_view key);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // ---- sim-time clock ---------------------------------------------------
  /// Installs the time source (the executive's clock). Without one, now()
  /// is the epoch — spans then record zero-length durations, which keeps
  /// standalone registries (tests, microbenchmarks) working.
  void set_clock(std::function<util::TimePoint()> fn) { clock_ = std::move(fn); }
  util::TimePoint now() const { return clock_ ? clock_() : util::TimePoint{}; }

  // ---- trace spans (used via ObsSpan, span.h) ---------------------------
  /// Begins a span: pushes a begin event and returns the span id.
  std::uint64_t span_begin(std::string name);
  /// Ends the given span (must be the innermost open one; spans are RAII
  /// so begin/end nest by construction).
  void span_end(std::uint64_t id);
  void set_span_ring_capacity(std::size_t cap) { span_capacity_ = cap; }
  const std::deque<SpanEvent>& span_ring() const { return span_ring_; }
  std::uint64_t spans_dropped() const { return spans_dropped_; }
  /// Id of the innermost open span (0 = none) — the parent of the next one.
  std::uint64_t current_span() const {
    return open_spans_.empty() ? 0 : open_spans_.back().span;
  }

  // ---- snapshots ---------------------------------------------------------
  /// Serializes every instrument plus the span ring to JSONL (see
  /// snapshot.h for the line schema and the parser).
  std::string snapshot_jsonl() const;
  void snapshot_jsonl(std::string& out) const;

  std::size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  void push_span_event(SpanEvent ev);

  // Node-based maps: Counter&/Gauge&/Histogram& stay valid forever.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;

  std::function<util::TimePoint()> clock_;

  struct OpenSpan {
    std::uint64_t span = 0;
    std::string name;
  };
  std::deque<SpanEvent> span_ring_;
  std::deque<OpenSpan> open_spans_;  // stack: innermost at the back
  std::size_t span_capacity_ = 1024;
  std::uint64_t next_span_ = 1;
  std::uint64_t spans_dropped_ = 0;
  mutable std::uint64_t snapshot_seq_ = 0;
};

}  // namespace dpm::obs
