#include "control/session.h"

#include <cassert>

#include "control/controller.h"
#include "daemon/meterdaemon.h"
#include "filter/descriptions.h"
#include "filter/count_filter.h"
#include "filter/fanin.h"
#include "filter/filter_program.h"
#include "filter/templates.h"

namespace dpm::control {

void install_monitor(kernel::World& world) {
  filter::register_filter_program(world.programs());
  filter::register_count_filter_program(world.programs());
  filter::register_fanin_programs(world.programs());
  daemon::register_meterdaemon_program(world.programs());
  register_controller_program(world.programs());

  for (kernel::MachineId m : world.machines()) {
    auto& fs = world.machine(m).fs;
    fs.put_executable("filter", filter::kStdFilterProgram);
    fs.put_executable("countfilter", filter::kCountFilterProgram);
    fs.put_executable("localfilter", filter::kLocalFilterProgram);
    fs.put_executable("aggregator", filter::kAggregatorProgram);
    fs.put_executable("meterdaemon", daemon::kMeterdaemonProgram);
    fs.put_executable("controller", kControllerProgram);
    fs.put_text("descriptions", filter::default_descriptions_text());
    fs.put_text("templates", filter::default_templates_text());
  }
}

void spawn_meterdaemons(kernel::World& world) {
  for (kernel::MachineId m : world.machines()) {
    auto r = world.spawn(m, "meterdaemon", kernel::kSuperUser,
                         daemon::make_meterdaemon_main({}));
    assert(r.ok() && "meterdaemon spawn failed");
    (void)r;
    // Boot program: a crashed-then-restarted machine comes back with a
    // fresh meterdaemon (its old state is gone, as after a real reboot).
    world.add_boot_program(m, [m](kernel::World& w) {
      (void)w.spawn(m, "meterdaemon", kernel::kSuperUser,
                    daemon::make_meterdaemon_main({}));
    });
  }
}

void install_app(kernel::World& world, kernel::MachineId m,
                 const std::string& path, const std::string& program) {
  world.machine(m).fs.put_executable(path, program);
}

MonitorSession::MonitorSession(kernel::World& world, Options opts)
    : world_(world) {
  kernel::Machine* host = world.machine_by_name(opts.host);
  assert(host && "unknown session host");
  host_ = host->id;

  if (opts.grant_accounts) world.add_account_everywhere(opts.uid);

  stdin_pipe_ = std::make_shared<kernel::HostPipe>();
  stdout_pipe_ = std::make_shared<kernel::HostPipe>();

  kernel::SpawnOpts so;
  so.stdin_fd = kernel::Descriptor::for_pipe(stdin_pipe_);
  so.stdout_fd = kernel::Descriptor::for_pipe(stdout_pipe_);
  so.stderr_fd = kernel::Descriptor::for_pipe(stdout_pipe_);
  auto r = world.spawn(host_, "controller", opts.uid,
                       make_controller_main({}), std::move(so));
  assert(r.ok() && "controller spawn failed");
  pid_ = *r;
}

void MonitorSession::send_line(const std::string& line) {
  stdin_pipe_->host_write(line + "\n");
  stdin_pipe_->readers.wake_all(world_.exec());
}

std::string MonitorSession::drain_output() {
  return stdout_pipe_->host_drain();
}

std::string MonitorSession::command(const std::string& line) {
  send_line(line);
  world_.run();
  return drain_output();
}

void MonitorSession::close_input() {
  stdin_pipe_->closed = true;
  stdin_pipe_->readers.wake_all(world_.exec());
}

bool MonitorSession::controller_alive() const {
  kernel::Process* p =
      const_cast<kernel::World&>(world_).find_process(host_, pid_);
  return p && p->status != kernel::ProcStatus::dead;
}

}  // namespace dpm::control
