// Online predicate detection under injected clock skew (analysis/predicates/).
//
// The detector claims (DESIGN.md §12): with physical skew bounded by ε,
// possibly(P) admits every cut that could be simultaneous under some skew
// assignment within ε, and definitely(P) only cuts whose overlap survives
// every such assignment. This bench measures what those claims buy at the
// verdict level, against ground truth only the simulator has: machine
// clocks are configured with *known* offset/drift (three severities, the
// stormiest adding message-delay faults from the fault fabric), the trace
// is captured from a real metered session, and every local reading is
// inverted back to true simulated time through the exact clock model
// (MachineClock::true_us_from_local). A verdict counts as a true positive
// when each witness interval, mapped to true time, intersects a true
// occurrence of the predicate.
//
// Sweeping ε across {too small, the sound bound, 4x the bound} yields the
// precision/recall/sensitivity curves of BENCH_predicates.json:
//
//   * small ε: time-exclusion wrongly separates truly-overlapping states
//     (possibly recall drops below 1) and definitely claims a certainty
//     its ε cannot back;
//   * sound ε: possibly recall is ~1 by construction;
//   * large ε: possibly admits cuts that never overlapped (precision can
//     drop), and definitely demands >ε overlap few true states have
//     (definitely recall decays to 0). Sensitivity records the shortest
//     true occurrence each tier still detected, against the ε floor.
//
// `--smoke` runs the same 3x3 grid on a shorter session and enforces the
// structural guarantees: definitely ⊆ possibly in every cell, verdicts
// deterministic across a re-run, and ≥1 truth and ≥1 verdict per severity.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/live/aggregator.h"
#include "analysis/predicates/detector.h"
#include "analysis/predicates/service.h"
#include "analysis/trace_reader.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"
#include "net/faults.h"
#include "sim/clock.h"
#include "util/strings.h"

namespace dpm::bench {
namespace {

using analysis::pred::PredicateDetector;

// Both processes waiting on the wire at once: the client's recvcall state
// spans the pong flight, the server's spans client compute plus the ping
// flight, so true overlap durations sit in the same few-ms range as the
// injected skew — exactly where the ε sweep bites.
constexpr const char* kPredicate =
    "wait: @0:* type=recvcall & @1:* type=recvcall";

struct Severity {
  const char* name;
  std::int64_t off0_us, off1_us;  // clock offsets, machines 0 and 1
  double drift0_ppm, drift1_ppm;
  bool faults;  // message-delay spikes from the fault fabric
};

constexpr Severity kSeverities[] = {
    {"calm", 150, -150, 20.0, -20.0, false},
    {"skewed", 2500, -2500, 200.0, -200.0, false},
    {"stormy", 2500, -2500, 200.0, -200.0, true},
};

sim::MachineClock::Config clock_cfg(std::int64_t off_us, double drift_ppm) {
  sim::MachineClock::Config cfg;
  cfg.offset = util::usec(off_us);
  cfg.drift_ppm = drift_ppm;
  cfg.tick = util::usec(1);  // fine ticks keep the truth inversion exact
  return cfg;
}

struct Capture {
  std::string trace_text;
  std::int64_t final_t_us = 0;
  sim::MachineClock::Config cfg[2];
};

/// One metered ping-pong session under `sev`'s clocks (and faults), its
/// trace retrieved through getlog — the same bytes any analysis consumer
/// would see.
Capture capture_trace(const Severity& sev, int rounds) {
  Capture cap;
  cap.cfg[0] = clock_cfg(sev.off0_us, sev.drift0_ppm);
  cap.cfg[1] = clock_cfg(sev.off1_us, sev.drift1_ppm);

  kernel::World world;
  const auto alpha =
      world.add_machine("alpha", {net::Interface{0, 101}}, cap.cfg[0]);
  world.add_machine("beta", {net::Interface{0, 102}}, cap.cfg[1]);
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  control::MonitorSession session(world, {.host = "alpha", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 alpha");
  (void)session.command("newjob pp");
  (void)session.command(
      util::strprintf("addprocess pp beta pingpong_server 5100 %d", rounds));
  (void)session.command(util::strprintf(
      "addprocess pp alpha pingpong_client beta 5100 %d 128 800", rounds));
  (void)session.command("setflags pp all");

  if (sev.faults) {
    // Delay spikes on the shared network, anchored to the session clock so
    // they land mid-job; delays stretch flight times (and so the true
    // overlap windows) without losing records.
    const std::int64_t t0 = util::count_us(world.now() - util::TimePoint{});
    auto at = [t0](std::int64_t off) {
      return std::to_string(t0 + off) + "us";
    };
    auto plan = net::FaultPlan::parse(
        "spike@" + at(10'000) + " net=0 for=100ms add=2ms\n"
        "spike@" + at(200'000) + " net=0 for=150ms add=4ms\n");
    if (plan) world.install_faults(*plan);
  }

  (void)session.command("startjob pp");
  (void)session.command("removejob pp");
  (void)session.command("getlog f1 pp.trace");
  session.send_line("bye");
  world.run();

  if (auto text = world.machine(alpha).fs.read_text("pp.trace")) {
    cap.trace_text = *text;
  }
  cap.final_t_us = util::count_us(world.now() - util::TimePoint{});
  return cap;
}

/// Streams the captured trace through a fresh LiveAnalysis + detector at
/// skew bound `eps` and returns the full verdict sequence.
std::vector<PredicateDetector::Verdict> detect(const Capture& cap,
                                               std::int64_t eps) {
  analysis::live::LiveAnalysis live;
  PredicateDetector det(analysis::pred::standard_descriptions(),
                        {.epsilon_us = eps});
  live.add_observer(&det);
  std::string err;
  if (!det.add_predicate(kPredicate, &err)) {
    std::fprintf(stderr, "bench_predicates: bad predicate: %s\n", err.c_str());
    return {};
  }
  analysis::live::TraceTailer tailer(live);
  constexpr std::size_t kChunk = 4096;
  for (std::size_t pos = 0; pos < cap.trace_text.size(); pos += kChunk) {
    tailer.feed(std::string_view(cap.trace_text).substr(pos, kChunk));
  }
  tailer.finish();
  det.finish();
  return {det.verdicts().begin(), det.verdicts().end()};
}

std::string verdict_line(const PredicateDetector::Verdict& v) {
  std::string s = util::strprintf(
      "%s/%d/#%llu/[%lld,%lld]/", v.predicate.c_str(),
      static_cast<int>(v.kind), static_cast<unsigned long long>(v.occurrence),
      static_cast<long long>(v.cut_lo_us), static_cast<long long>(v.cut_hi_us));
  for (const auto& w : v.witness) {
    s += util::strprintf("m%u:p%d@%zu-%zu;", w.proc.machine, w.proc.pid,
                         w.lo_index, w.hi_index);
  }
  return s;
}

struct TrueIv {
  std::int64_t lo = 0, hi = 0;
};

/// Intervals (true sim time) where some process on machine `m` has
/// last-event type `want`, recovered by inverting each local reading
/// through that machine's exact clock model.
std::vector<TrueIv> conjunct_truth(const analysis::Trace& trace,
                                   const sim::MachineClock clk[2],
                                   std::uint16_t m, meter::EventType want,
                                   std::int64_t final_t) {
  std::vector<TrueIv> ivs;
  std::map<std::int32_t, std::pair<bool, std::int64_t>> state;  // pid->(in,lo)
  for (const auto& e : trace.events) {
    if (e.machine != m) continue;
    const std::int64_t t = clk[m].true_us_from_local(e.cpu_time);
    auto& [in, lo] = state[e.pid];
    const bool now = e.type == want;
    if (now && !in) {
      in = true;
      lo = t;
    } else if (!now && in) {
      in = false;
      if (t > lo) ivs.push_back({lo, t});
    }
  }
  for (auto& [pid, s] : state) {
    if (s.first && final_t > s.second) ivs.push_back({s.second, final_t});
  }
  std::sort(ivs.begin(), ivs.end(),
            [](const TrueIv& a, const TrueIv& b) { return a.lo < b.lo; });
  // Union across processes of the machine (wildcard selector semantics).
  std::vector<TrueIv> merged;
  for (const auto& iv : ivs) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

std::vector<TrueIv> intersect(const std::vector<TrueIv>& a,
                              const std::vector<TrueIv>& b) {
  std::vector<TrueIv> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].lo, b[j].lo);
    const std::int64_t hi = std::min(a[i].hi, b[j].hi);
    if (hi > lo) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

/// True occurrences of kPredicate: both conjunct states hold at once, in
/// true time — the deterministic sim's global-state ground truth.
std::vector<TrueIv> predicate_truth(const Capture& cap,
                                    const sim::MachineClock clk[2]) {
  const analysis::Trace trace = analysis::read_trace(cap.trace_text);
  const auto c0 = conjunct_truth(trace, clk, 0, meter::EventType::recvcall,
                                 cap.final_t_us);
  const auto c1 = conjunct_truth(trace, clk, 1, meter::EventType::recvcall,
                                 cap.final_t_us);
  return intersect(c0, c1);
}

// Clock ticks round each endpoint; ±2us absorbs quantization + rounding.
constexpr std::int64_t kSlack = 2;

bool verdict_matches(const PredicateDetector::Verdict& v,
                     const sim::MachineClock clk[2], const TrueIv& t) {
  for (const auto& w : v.witness) {
    const auto& c = clk[w.proc.machine <= 1 ? w.proc.machine : 0];
    const std::int64_t lo = c.true_us_from_local(w.lo_local_us) - kSlack;
    const std::int64_t hi = c.true_us_from_local(w.hi_local_us) + kSlack;
    if (hi < t.lo || lo > t.hi) return false;
  }
  return true;
}

struct TierResult {
  std::size_t verdicts = 0;
  std::size_t matched = 0;       // verdicts intersecting some truth
  std::size_t truths_hit = 0;    // truths some verdict intersects
  double precision = -1, recall = -1;
  std::int64_t min_detected_us = -1;  // shortest true occurrence detected
};

TierResult score(const std::vector<PredicateDetector::Verdict>& vs,
                 PredicateDetector::VerdictKind kind,
                 const sim::MachineClock clk[2],
                 const std::vector<TrueIv>& truth) {
  TierResult r;
  std::vector<bool> hit(truth.size(), false);
  for (const auto& v : vs) {
    if (v.kind != kind) continue;
    ++r.verdicts;
    bool any = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (verdict_matches(v, clk, truth[i])) {
        any = true;
        if (!hit[i]) {
          hit[i] = true;
          ++r.truths_hit;
        }
        const std::int64_t d = truth[i].hi - truth[i].lo;
        if (r.min_detected_us < 0 || d < r.min_detected_us) {
          r.min_detected_us = d;
        }
      }
    }
    if (any) ++r.matched;
  }
  if (r.verdicts > 0) {
    r.precision = static_cast<double>(r.matched) / r.verdicts;
  }
  if (!truth.empty()) {
    r.recall = static_cast<double>(r.truths_hit) / truth.size();
  }
  return r;
}

/// Every definitely occurrence must already have a possibly verdict for
/// the same occurrence ordinal (the detector's structural subset claim).
bool definitely_subset(const std::vector<PredicateDetector::Verdict>& vs) {
  for (const auto& d : vs) {
    if (d.kind != PredicateDetector::VerdictKind::definitely) continue;
    bool found = false;
    for (const auto& p : vs) {
      if (p.kind == PredicateDetector::VerdictKind::possibly &&
          p.occurrence == d.occurrence) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

struct Cell {
  std::int64_t eps = 0;
  TierResult possibly, definitely;
  bool subset = false;
};

int run(int rounds, bool smoke) {
  std::ofstream out("BENCH_predicates.json", std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_predicates: cannot write output\n");
    return 1;
  }
  out << "{\n  \"bench\": \"predicate_skew_sweep\",\n"
      << "  \"predicate\": \"" << kPredicate << "\",\n"
      << util::strprintf("  \"rounds\": %d,\n  \"severities\": [\n", rounds);

  bool ok = true;
  std::size_t sev_i = 0;
  for (const Severity& sev : kSeverities) {
    const Capture cap = capture_trace(sev, rounds);
    if (cap.trace_text.empty()) {
      std::fprintf(stderr, "bench_predicates: %s: empty trace\n", sev.name);
      return 1;
    }
    const sim::MachineClock clk[2] = {sim::MachineClock(cap.cfg[0]),
                                      sim::MachineClock(cap.cfg[1])};
    const std::vector<TrueIv> truth = predicate_truth(cap, clk);
    if (truth.empty()) {
      std::fprintf(stderr, "bench_predicates: %s: no true occurrences\n",
                   sev.name);
      ok = false;
    }
    std::int64_t min_true = -1;
    for (const auto& t : truth) {
      if (min_true < 0 || t.hi - t.lo < min_true) min_true = t.hi - t.lo;
    }

    // The sound bound for this world, from the configured clock models at
    // the trace's horizon (what World::clock_skew_bound_us reports live).
    const std::int64_t bound = clk[0].error_bound_us(cap.final_t_us) +
                               clk[1].error_bound_us(cap.final_t_us);
    const std::int64_t eps_sweep[3] = {250, bound, 4 * bound};

    // Verdict determinism: the same trace at the same ε must reproduce the
    // identical verdict sequence (the ISSUE's same-seed guarantee).
    bool deterministic = true;
    {
      const auto a = detect(cap, bound);
      const auto b = detect(cap, bound);
      if (a.size() != b.size()) deterministic = false;
      for (std::size_t i = 0; deterministic && i < a.size(); ++i) {
        if (verdict_line(a[i]) != verdict_line(b[i])) deterministic = false;
      }
    }
    if (!deterministic) {
      std::fprintf(stderr, "bench_predicates: %s: verdicts not deterministic\n",
                   sev.name);
      ok = false;
    }

    Cell cells[3];
    for (int c = 0; c < 3; ++c) {
      const auto vs = detect(cap, eps_sweep[c]);
      cells[c].eps = eps_sweep[c];
      cells[c].possibly =
          score(vs, PredicateDetector::VerdictKind::possibly, clk, truth);
      cells[c].definitely =
          score(vs, PredicateDetector::VerdictKind::definitely, clk, truth);
      cells[c].subset = definitely_subset(vs);
      if (!cells[c].subset) {
        std::fprintf(stderr,
                     "bench_predicates: %s eps=%lld: definitely not a subset "
                     "of possibly\n",
                     sev.name, static_cast<long long>(eps_sweep[c]));
        ok = false;
      }
      if (cells[c].definitely.verdicts > cells[c].possibly.verdicts) {
        std::fprintf(stderr, "bench_predicates: %s: more definitely than "
                             "possibly verdicts\n",
                     sev.name);
        ok = false;
      }
    }
    // At 4x the sound bound the detector must at least see the predicate.
    if (cells[2].possibly.verdicts == 0) {
      std::fprintf(stderr, "bench_predicates: %s: no possibly verdicts at "
                           "widest eps\n",
                   sev.name);
      ok = false;
    }

    out << util::strprintf(
        "    {\n      \"name\": \"%s\",\n      \"skew_bound_us\": %lld,\n"
        "      \"final_t_us\": %lld,\n      \"truth_occurrences\": %zu,\n"
        "      \"min_true_duration_us\": %lld,\n"
        "      \"deterministic\": %s,\n      \"cells\": [\n",
        sev.name, static_cast<long long>(bound),
        static_cast<long long>(cap.final_t_us), truth.size(),
        static_cast<long long>(min_true), deterministic ? "true" : "false");
    for (int c = 0; c < 3; ++c) {
      auto tier = [](const TierResult& t) {
        return util::strprintf(
            "{\"verdicts\": %zu, \"matched\": %zu, \"precision\": %.4f, "
            "\"recall\": %.4f, \"min_detected_true_duration_us\": %lld}",
            t.verdicts, t.matched, t.precision, t.recall,
            static_cast<long long>(t.min_detected_us));
      };
      out << util::strprintf(
          "        {\"epsilon_us\": %lld, \"theory_floor_us\": %lld,\n"
          "         \"possibly\": %s,\n         \"definitely\": %s,\n"
          "         \"definitely_subset\": %s}%s\n",
          static_cast<long long>(cells[c].eps),
          static_cast<long long>(cells[c].eps),
          tier(cells[c].possibly).c_str(), tier(cells[c].definitely).c_str(),
          cells[c].subset ? "true" : "false", c < 2 ? "," : "");
      std::printf(
          "bench_predicates%s: %-7s eps=%-7lld possibly %zu verdicts "
          "(p=%.2f r=%.2f)  definitely %zu (p=%.2f r=%.2f)  truths=%zu\n",
          smoke ? " --smoke" : "", sev.name,
          static_cast<long long>(cells[c].eps), cells[c].possibly.verdicts,
          cells[c].possibly.precision, cells[c].possibly.recall,
          cells[c].definitely.verdicts, cells[c].definitely.precision,
          cells[c].definitely.recall, truth.size());
    }
    out << util::strprintf("      ]\n    }%s\n",
                           ++sev_i < std::size(kSeverities) ? "," : "");
  }
  out << "  ]\n}\n";
  if (!out.good()) {
    std::fprintf(stderr, "bench_predicates: write failed\n");
    return 1;
  }
  std::printf("wrote BENCH_predicates.json\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dpm::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return dpm::bench::run(/*rounds=*/60, /*smoke=*/true);
    }
  }
  return dpm::bench::run(/*rounds=*/400, /*smoke=*/false);
}
