#include "filter/filter_program.h"

#include <algorithm>

#include "filter/trace.h"
#include "kernel/syscalls.h"
#include "meter/metermsgs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dpm::filter {

bool FilterEngine::select_view(const std::uint8_t* raw, std::size_t size,
                               const OnAccept& on_accept) {
  const auto v = make_record_view(raw, size);
  if (!v) return false;
  const WirePlan* wp = desc_.wire_plan(v->type);
  if (!wp || !wp->viewable()) return false;  // owned path decides

  if (!wp->validate(*v)) {
    ++stats_.malformed;
    return true;
  }
  // Match straight on the wire bytes; an owned Record is materialized only
  // for records that survive selection and must be handed downstream.
  const std::vector<bool>* mask = nullptr;
  const std::set<std::string>* names = nullptr;
  Templates::Decision d;
  if (auto cd = compiled_.evaluate(*v)) {
    ++stats_.eval_compiled;
    if (!cd->accept) {
      ++stats_.rejected;
      return true;
    }
    mask = cd->discard;
  } else {
    ++stats_.eval_interpreted;
    d = templ_.evaluate_view(*v, desc_);
    if (!d.accept) {
      ++stats_.rejected;
      return true;
    }
    if (!d.discard.empty()) names = &d.discard;
  }
  ++stats_.accepted;
  // validate() passed, so the decode cannot fail.
  auto rec = desc_.decode(raw, size);
  on_accept(*rec, mask, names);
  return true;
}

void FilterEngine::drain(std::uint64_t conn, const util::Bytes& data,
                         const OnAccept& on_accept) {
  stats_.bytes_in += data.size();
  util::Bytes& buf = partial_[conn];
  buf.insert(buf.end(), data.begin(), data.end());

  std::size_t pos = 0;
  while (buf.size() - pos >= 4) {
    const std::uint32_t size = static_cast<std::uint32_t>(buf[pos]) |
                               static_cast<std::uint32_t>(buf[pos + 1]) << 8 |
                               static_cast<std::uint32_t>(buf[pos + 2]) << 16 |
                               static_cast<std::uint32_t>(buf[pos + 3]) << 24;
    if (size < meter::kHeaderSize || size > (1u << 20)) {
      // Desynchronized stream: drop the connection's buffer.
      ++stats_.malformed;
      buf.clear();
      pos = 0;
      break;
    }
    if (buf.size() - pos < size) break;  // record incomplete
    const std::uint8_t* raw = buf.data() + pos;
    pos += size;
    ++stats_.records_in;

    // Hot path: evaluate in place over the wire bytes (the view borrows
    // `buf`, which is not touched until the loop ends). Types the view
    // decoder cannot handle fall through to the owned decode below.
    if (path_ == EvalPath::view && select_view(raw, size, on_accept)) continue;

    auto rec = desc_.decode(raw, size);
    if (!rec) {
      ++stats_.malformed;
      continue;
    }
    // Clause plan compiled against the record description; records of
    // types the compiler did not cover fall back to the interpreted
    // evaluator.
    if (auto cd = compiled_.evaluate(*rec)) {
      ++stats_.eval_compiled;
      if (!cd->accept) {
        ++stats_.rejected;
        continue;
      }
      ++stats_.accepted;
      on_accept(*rec, cd->discard, nullptr);
    } else {
      ++stats_.eval_interpreted;
      const Templates::Decision d = templ_.evaluate(*rec);
      if (!d.accept) {
        ++stats_.rejected;
        continue;
      }
      ++stats_.accepted;
      on_accept(*rec, nullptr, d.discard.empty() ? nullptr : &d.discard);
    }
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
}

void FilterEngine::end_connection(std::uint64_t conn) {
  auto it = partial_.find(conn);
  if (it == partial_.end()) return;
  if (!it->second.empty()) {
    // The connection ended mid-record: the cut-short tail is a counted
    // loss, not a silent one.
    ++stats_.malformed;
    ++stats_.truncated;
  }
  partial_.erase(it);
}

std::string FilterEngine::feed(std::uint64_t conn, const util::Bytes& data) {
  std::string out;
  feed(conn, data, out);
  return out;
}

void FilterEngine::feed(std::uint64_t conn, const util::Bytes& data,
                        std::string& out) {
  drain(conn, data,
        [&](const Record& rec, const std::vector<bool>* mask,
            const std::set<std::string>* names) {
          std::string line = names ? trace_line(rec, *names)
                                   : trace_line(rec, mask);
          stats_.bytes_out += line.size();
          out += line;
        });
}

void FilterEngine::feed_each(std::uint64_t conn, const util::Bytes& data,
                             const std::function<void(const Record&)>& fn) {
  drain(conn, data,
        [&](const Record& rec, const std::vector<bool>*,
            const std::set<std::string>*) { fn(rec); });
}

kernel::ProcessMain make_filter_main(const std::vector<std::string>& argv) {
  return [argv](kernel::Sys& sys) {
    if (argv.size() < 5) {
      (void)sys.print("filter: usage: filter logfile descriptions templates port\n");
      sys.exit(1);
    }
    const std::string& logfile = argv[1];
    const std::string& desc_path = argv[2];
    const std::string& templ_path = argv[3];
    const auto port = util::parse_int(argv[4]);
    if (!port || *port <= 0 || *port > 65535) {
      (void)sys.print("filter: bad port\n");
      sys.exit(1);
    }

    auto read_file = [&sys](const std::string& path) -> std::string {
      auto fd = sys.open(path, kernel::Sys::OpenMode::read);
      if (!fd) return {};
      std::string text;
      for (;;) {
        auto chunk = sys.read(*fd, 4096);
        if (!chunk || chunk->empty()) break;
        text += util::to_string(*chunk);
      }
      (void)sys.close(*fd);
      return text;
    };

    std::string err;
    auto desc = Descriptions::parse(read_file(desc_path), &err);
    if (!desc) {
      (void)sys.print("filter: bad descriptions: " + err + "\n");
      sys.exit(1);
    }
    auto templ = Templates::parse(read_file(templ_path), &err);
    if (!templ) {
      (void)sys.print("filter: bad templates: " + err + "\n");
      sys.exit(1);
    }
    FilterEngine engine(std::move(*desc), std::move(*templ));

    auto log_fd = sys.open(logfile, kernel::Sys::OpenMode::write_trunc);
    if (!log_fd) {
      (void)sys.print("filter: cannot open log file\n");
      sys.exit(1);
    }

    auto lsock = sys.socket(kernel::SockDomain::internet,
                            kernel::SockType::stream);
    if (!lsock) sys.exit(1);
    auto bound = sys.bind_port(*lsock, static_cast<net::Port>(*port));
    if (!bound) {
      (void)sys.print("filter: cannot bind meter port\n");
      sys.exit(1);
    }
    if (!sys.listen(*lsock, 32)) sys.exit(1);

    // Trace lines are batched per select round instead of written per
    // record; kHighWater bounds the buffer within a round. Every round
    // flushes at its end so the log file stays current for concurrent
    // readers (getlog copies it while the filter is live).
    constexpr std::size_t kHighWater = 16 * 1024;
    std::string pending;
    auto flush_log = [&] {
      if (pending.empty()) return;
      (void)sys.write(*log_fd, pending);
      pending.clear();
    };

    std::vector<kernel::Fd> conns;
    for (;;) {
      std::vector<kernel::Fd> fds = conns;
      fds.push_back(*lsock);
      auto sel = sys.select(fds, /*child_events=*/false, std::nullopt);
      if (!sel) break;
      for (kernel::Fd fd : sel->readable) {
        if (fd == *lsock) {
          auto conn = sys.accept(*lsock);
          if (conn) conns.push_back(*conn);
          continue;
        }
        auto data = sys.recv(fd, 8192);
        if (!data || data->empty()) {
          // Metered process went away; drop the connection.
          engine.end_connection(static_cast<std::uint64_t>(fd));
          (void)sys.close(fd);
          conns.erase(std::remove(conns.begin(), conns.end(), fd), conns.end());
          continue;
        }
        engine.feed(static_cast<std::uint64_t>(fd), *data, pending);
        if (pending.size() >= kHighWater) flush_log();
      }
      flush_log();
    }
    flush_log();

    const FilterStats& st = engine.stats();
    (void)sys.write(
        2, util::strprintf(
               "filter: records=%llu accepted=%llu rejected=%llu "
               "malformed=%llu truncated=%llu\n",
               static_cast<unsigned long long>(st.records_in),
               static_cast<unsigned long long>(st.accepted),
               static_cast<unsigned long long>(st.rejected),
               static_cast<unsigned long long>(st.malformed),
               static_cast<unsigned long long>(st.truncated)));
    sys.exit(0);
  };
}

void register_filter_program(kernel::ExecRegistry& registry) {
  registry.register_program(kStdFilterProgram, make_filter_main);
}

}  // namespace dpm::filter
