// Meter message formats — Appendix A and Fig 4.1.
#include "meter/metermsgs.h"

#include <gtest/gtest.h>

#include "meter/meterflags.h"

namespace dpm::meter {
namespace {

MeterMsg stamped(MeterBody body) {
  MeterMsg m;
  m.body = std::move(body);
  m.header.machine = 3;
  m.header.cpu_time = 123456789;
  m.header.proc_time = 40000;
  return m;
}

TEST(MeterMsgs, TypeNumbersMatchPaperExamples) {
  // Fig 3.3 second rule matches a send with "type=1"; Fig 3.4 matches
  // accepts with "type=8".
  EXPECT_EQ(static_cast<std::uint32_t>(EventType::send), 1u);
  EXPECT_EQ(static_cast<std::uint32_t>(EventType::accept), 8u);
}

TEST(MeterMsgs, EventNames) {
  EXPECT_EQ(event_name(EventType::send), "send");
  EXPECT_EQ(event_name(EventType::termproc), "termproc");
  EXPECT_EQ(event_by_name("accept").value(), EventType::accept);
  EXPECT_FALSE(event_by_name("nope").has_value());
}

TEST(MeterMsgs, EventNamesRoundTripForEveryType) {
  // event_name and event_by_name are generated from one shared table, so
  // every type must survive the round trip (no hard-coded loop bounds).
  for (std::uint32_t t = 1; t <= 10; ++t) {
    const EventType type = static_cast<EventType>(t);
    const std::string_view name = event_name(type);
    EXPECT_NE(name, "unknown") << "type " << t;
    auto back = event_by_name(name);
    ASSERT_TRUE(back.has_value()) << "type " << t;
    EXPECT_EQ(*back, type);
  }
  EXPECT_EQ(event_name(static_cast<EventType>(0)), "unknown");
  EXPECT_EQ(event_name(static_cast<EventType>(11)), "unknown");
  EXPECT_FALSE(event_by_name("").has_value());
  EXPECT_FALSE(event_by_name("unknown").has_value());
}

TEST(MeterMsgs, HeaderLayoutIsFixed) {
  MeterMsg m = stamped(MeterSend{7, 9, 42, 100, "destination"});
  const util::Bytes wire = m.serialize();
  ASSERT_GE(wire.size(), kHeaderSize);
  // size u32 @0
  const std::uint32_t size = wire[0] | wire[1] << 8 | wire[2] << 16 |
                             static_cast<std::uint32_t>(wire[3]) << 24;
  EXPECT_EQ(size, wire.size());
  // machine u16 @4
  EXPECT_EQ(wire[4] | wire[5] << 8, 3);
  // traceType u32 @22
  EXPECT_EQ(wire[22], 1u);  // send
}

template <typename T>
T round_trip(MeterBody body) {
  MeterMsg m = stamped(std::move(body));
  auto wire = m.serialize();
  auto parsed = MeterMsg::parse(wire);
  EXPECT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.machine, 3);
  EXPECT_EQ(parsed->header.cpu_time, 123456789);
  EXPECT_EQ(parsed->header.proc_time, 40000);
  return std::get<T>(parsed->body);
}

TEST(MeterMsgs, SendRoundTrip) {
  auto b = round_trip<MeterSend>(MeterSend{7, 9, 42, 100, "328140"});
  EXPECT_EQ(b.pid, 7);
  EXPECT_EQ(b.pc, 9u);
  EXPECT_EQ(b.sock, 42u);
  EXPECT_EQ(b.msg_length, 100u);
  EXPECT_EQ(b.dest_name, "328140");
}

TEST(MeterMsgs, SendWithUnknownDestHasZeroLengthName) {
  // §4.1: when one writes across a connection, the recipient's name is
  // unavailable and "the length of the name is specified as zero".
  auto b = round_trip<MeterSend>(MeterSend{7, 0, 42, 100, ""});
  EXPECT_TRUE(b.dest_name.empty());
}

TEST(MeterMsgs, RecvRoundTrip) {
  auto b = round_trip<MeterRecv>(MeterRecv{1, 2, 3, 4, "source"});
  EXPECT_EQ(b.source_name, "source");
  EXPECT_EQ(b.msg_length, 4u);
}

TEST(MeterMsgs, RecvCallRoundTrip) {
  auto b = round_trip<MeterRecvCall>(MeterRecvCall{5, 6, 7});
  EXPECT_EQ(b.pid, 5);
  EXPECT_EQ(b.sock, 7u);
}

TEST(MeterMsgs, SockCrtRoundTrip) {
  auto b = round_trip<MeterSockCrt>(MeterSockCrt{1, 2, 3, 2, 1, 0});
  EXPECT_EQ(b.domain, 2u);  // AF_INET
  EXPECT_EQ(b.type, 1u);    // SOCK_STREAM
}

TEST(MeterMsgs, DupRoundTrip) {
  auto b = round_trip<MeterDup>(MeterDup{1, 2, 30, 31});
  EXPECT_EQ(b.sock, 30u);
  EXPECT_EQ(b.new_sock, 31u);
}

TEST(MeterMsgs, DestSockRoundTrip) {
  auto b = round_trip<MeterDestSock>(MeterDestSock{1, 2, 3});
  EXPECT_EQ(b.sock, 3u);
}

TEST(MeterMsgs, ForkRoundTrip) {
  auto b = round_trip<MeterFork>(MeterFork{100, 0, 101});
  EXPECT_EQ(b.pid, 100);
  EXPECT_EQ(b.new_pid, 101);
}

TEST(MeterMsgs, AcceptRoundTripWithBothNames) {
  // Fig 4.1: accept carries sock, newSocket, and both bound names.
  auto b = round_trip<MeterAccept>(
      MeterAccept{9, 8, 7, 6, "listener-name", "client-name"});
  EXPECT_EQ(b.sock, 7u);
  EXPECT_EQ(b.new_sock, 6u);
  EXPECT_EQ(b.sock_name, "listener-name");
  EXPECT_EQ(b.peer_name, "client-name");
}

TEST(MeterMsgs, ConnectRoundTrip) {
  auto b = round_trip<MeterConnect>(MeterConnect{9, 8, 7, "me", "them"});
  EXPECT_EQ(b.sock_name, "me");
  EXPECT_EQ(b.peer_name, "them");
}

TEST(MeterMsgs, TermProcRoundTrip) {
  auto b = round_trip<MeterTermProc>(MeterTermProc{9, 0, -1});
  EXPECT_EQ(b.status, -1);
}

TEST(MeterMsgs, StreamParsingSplitsConcatenatedMessages) {
  util::Bytes wire;
  for (int i = 0; i < 5; ++i) {
    MeterMsg m = stamped(MeterSend{i, 0, 1, 10, ""});
    auto one = m.serialize();
    wire.insert(wire.end(), one.begin(), one.end());
  }
  std::size_t pos = 0;
  int count = 0;
  while (auto m = MeterMsg::parse_stream(wire, pos)) {
    EXPECT_EQ(m->pid(), count);
    ++count;
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(pos, wire.size());
}

TEST(MeterMsgs, StreamParsingWaitsForCompleteMessage) {
  MeterMsg m = stamped(MeterSend{1, 0, 1, 10, "name"});
  auto wire = m.serialize();
  util::Bytes partial(wire.begin(), wire.end() - 3);
  std::size_t pos = 0;
  EXPECT_FALSE(MeterMsg::parse_stream(partial, pos).has_value());
  EXPECT_EQ(pos, 0u);  // nothing consumed
}

TEST(MeterMsgs, ParseRejectsGarbage) {
  util::Bytes junk(40, 0xff);
  EXPECT_FALSE(MeterMsg::parse(junk).has_value());
  util::Bytes empty;
  EXPECT_FALSE(MeterMsg::parse(empty).has_value());
}

TEST(MeterMsgs, ParseRejectsBadType) {
  MeterMsg m = stamped(MeterSend{1, 0, 1, 10, ""});
  auto wire = m.serialize();
  wire[22] = 99;  // invalid traceType
  EXPECT_FALSE(MeterMsg::parse(wire).has_value());
}

TEST(MeterMsgs, PrettyIsOneLine) {
  MeterMsg m = stamped(MeterAccept{9, 8, 7, 6, "l", "c"});
  const std::string p = m.pretty();
  EXPECT_NE(p.find("accept"), std::string::npos);
  EXPECT_NE(p.find("machine=3"), std::string::npos);
  EXPECT_EQ(p.find('\n'), std::string::npos);
}

class AllEventTypes : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Range, AllEventTypes, ::testing::Range(1u, 11u));

TEST_P(AllEventTypes, MakeMsgSerializeParseAgree) {
  const auto t = static_cast<EventType>(GetParam());
  MeterMsg m = make_msg(t);
  EXPECT_EQ(m.type(), t);
  auto wire = m.serialize();
  auto parsed = MeterMsg::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type(), t);
  EXPECT_EQ(parsed->serialize(), wire);  // canonical form is stable
}

// ---- serialize_into: the zero-copy encode path ----

/// A message of type `t` with `name` planted in every string field the
/// type carries (types without string fields ignore it).
MeterMsg typed_with_name(std::uint32_t t, const std::string& name) {
  switch (static_cast<EventType>(t)) {
    case EventType::send: return stamped(MeterSend{1, 2, 3, 4, name});
    case EventType::recv: return stamped(MeterRecv{1, 2, 3, 4, name});
    case EventType::recvcall: return stamped(MeterRecvCall{1, 2, 3});
    case EventType::sockcrt: return stamped(MeterSockCrt{1, 2, 3, 2, 1, 0});
    case EventType::dup: return stamped(MeterDup{1, 2, 3, 4});
    case EventType::destsock: return stamped(MeterDestSock{1, 2, 3});
    case EventType::fork: return stamped(MeterFork{1, 2, 3});
    case EventType::accept: return stamped(MeterAccept{1, 2, 3, 4, name, name});
    case EventType::connect: return stamped(MeterConnect{1, 2, 3, name, name});
    case EventType::termproc: return stamped(MeterTermProc{1, 2, -1});
  }
  return stamped(MeterSend{});
}

TEST_P(AllEventTypes, SerializeIntoIsByteIdenticalToSerialize) {
  // Empty, ordinary, and long socket names (the wire carries a u32 count,
  // so "max length" is bounded only by the record-size sanity cap; 255
  // exercises multi-byte counts without tripping it).
  for (const std::string& name :
       {std::string(), std::string("228320140"), std::string(255, 'n')}) {
    MeterMsg m = typed_with_name(GetParam(), name);
    const util::Bytes wire = m.serialize();
    util::Bytes out;
    m.serialize_into(out);
    EXPECT_EQ(out, wire) << "name length " << name.size();

    auto parsed = MeterMsg::parse(out);
    ASSERT_TRUE(parsed.has_value()) << "name length " << name.size();
    EXPECT_EQ(parsed->serialize(), wire);
  }
}

TEST_P(AllEventTypes, SerializeIntoAppendsWithoutDisturbingPrefix) {
  MeterMsg m = typed_with_name(GetParam(), "peer-name");
  const util::Bytes wire = m.serialize();
  util::Bytes out{0xde, 0xad, 0xbe, 0xef};
  m.serialize_into(out);
  ASSERT_EQ(out.size(), 4u + wire.size());
  EXPECT_EQ((util::Bytes{out[0], out[1], out[2], out[3]}),
            (util::Bytes{0xde, 0xad, 0xbe, 0xef}));
  // The size word must be patched relative to this record's start, not
  // the buffer's.
  EXPECT_EQ(util::Bytes(out.begin() + 4, out.end()), wire);
}

TEST(MeterMsgs, SerializeIntoBuildsParseableBatches) {
  // Encode all ten types back to back into one buffer — exactly what
  // meter_emit does to the pending batch — and parse the stream back.
  util::Bytes batch;
  for (std::uint32_t t = 1; t <= 10; ++t) {
    typed_with_name(t, "n").serialize_into(batch);
  }
  std::size_t pos = 0;
  std::uint32_t expect = 1;
  while (auto m = MeterMsg::parse_stream(batch, pos)) {
    EXPECT_EQ(static_cast<std::uint32_t>(m->type()), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 11u);
  EXPECT_EQ(pos, batch.size());
}

}  // namespace
}  // namespace dpm::meter
