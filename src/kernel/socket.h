// Socket objects.
//
// §3.1: "A socket, once created, exists independent of the creating
// process. Several processes might have access to the same socket at the
// same time. A socket disappears when it is no longer referenced by any
// process." Sockets are therefore reference-counted: each descriptor-table
// slot and each process-table *meter-socket* slot holds one reference; the
// World destroys a socket when its count reaches zero.
//
// Socket objects are passive data; the connection/transfer logic lives in
// syscalls.cc and world.cc (it needs the executive, fabric and registry).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "kernel/types.h"
#include "kernel/wait.h"
#include "meter/ring.h"
#include "net/address.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dpm::kernel {

struct Datagram {
  net::SockAddr source;
  util::Bytes data;
};

class Socket {
 public:
  Socket(SocketId id, MachineId machine, SockDomain domain, SockType type)
      : id(id), machine(machine), domain(domain), type(type) {}

  SocketId id;
  MachineId machine;
  SockDomain domain;
  SockType type;

  /// References held by descriptor slots and meter-socket slots.
  int refs = 0;

  /// Local name, set by bind() or auto-bound on first use.
  net::SockAddr name;
  bool bound = false;

  // ---- Stream state ----
  enum class StreamState { idle, listening, connecting, connected, closed };
  StreamState sstate = StreamState::idle;
  SocketId peer = 0;            // connected peer (0 = none)
  net::SockAddr peer_name;      // name of the peer socket
  std::deque<std::uint8_t> rbuf;  // received, not-yet-read stream bytes
  std::size_t in_flight = 0;      // bytes en route toward this socket
  bool eof = false;               // peer closed its end
  int backlog = 0;
  std::deque<SocketId> accept_queue;  // connection sockets awaiting accept()
  std::optional<util::Err> connect_result;  // set when a connect completes
  std::uint64_t tx_channel = 0;  // fabric ordered channel toward the peer
  net::NetworkId net_hint = 0;   // network this connection runs over

  // ---- Datagram state ----
  std::deque<Datagram> dgrams;
  net::SockAddr default_dest;  // set by connect() on a datagram socket

  // ---- Wakeup channels ----
  WaitChannel readers;     // data/connection/EOF arrived
  WaitChannel writers;     // window opened / peer vanished
  WaitChannel connectors;  // connect completed

  /// Marks sockets created by setmeter plumbing (kept out of app stats).
  bool is_meter_conn = false;

  /// Which conservation ledger a meter conn's records belong to: tier 0 is
  /// the process→filter edge (setmeter), tier 1 the fan-in tier — local
  /// filter → aggregator → session filter edges marked by metertap().
  /// Records are counted per tier so each ledger balances on its own.
  std::uint8_t meter_tier = 0;

  // ---- Ring transport (meter conns with WorldConfig::meter_ring_bytes) ----
  // Both endpoints of a meter connection share one ring: the metered
  // process's kernel edge pushes encoded records, the filter's recv pops
  // them. ring_rx marks the draining endpoint — residue accounting and the
  // conservation walk count ring bytes there, and only there.
  std::shared_ptr<meter::MeterRing> ring;
  bool ring_rx = false;

  // Incremental frame cursor over *consumed* bytes (meter conns only):
  // tracks how far the reader has advanced through the framed record
  // stream, so record consumption is counted exactly and teardown can
  // split the remainder into complete (stranded) vs cut-short (malformed)
  // records. frame_hdr accumulates a partially-read size word;
  // frame_need is the body remainder of the frame being read.
  std::uint32_t frame_need = 0;
  std::uint8_t frame_hdr[4] = {};
  std::uint8_t frame_hdr_have = 0;

  bool stream_readable() const {
    return !rbuf.empty() || (ring_rx && ring && !ring->empty()) || eof ||
           (sstate == StreamState::listening && !accept_queue.empty());
  }
  bool readable() const {
    return type == SockType::stream ? stream_readable() : !dgrams.empty() || eof;
  }
};

}  // namespace dpm::kernel
