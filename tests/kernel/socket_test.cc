// Socket layer semantics (§3.1): streams are reliable ordered byte
// streams with read-what-is-available semantics; datagrams are whole
// messages; connections follow the client-server bind/listen/connect/
// accept dance; sockets outlive descriptors only while referenced.
#include "kernel/socket.h"

#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm::kernel {
namespace {

using util::Err;

class SocketTest : public ::testing::Test {
 protected:
  SocketTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
  }

  Pid spawn(MachineId m, const std::string& name, ProcessMain main) {
    auto r = world_.spawn(m, name, 100, std::move(main));
    EXPECT_TRUE(r.ok());
    return r.value_or(-1);
  }

  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(SocketTest, StreamConnectAcceptTransfer) {
  std::string received;
  net::SockAddr server_name;

  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(ls.ok());
    auto bound = sys.bind_port(*ls, 4000);
    ASSERT_TRUE(bound.ok());
    server_name = *bound;
    ASSERT_TRUE(sys.listen(*ls, 4).ok());
    auto conn = sys.accept(*ls);
    ASSERT_TRUE(conn.ok());
    auto data = sys.recv_exact(*conn, 11);
    ASSERT_TRUE(data.ok());
    received = util::to_string(*data);
    ASSERT_TRUE(sys.send(*conn, "pong").ok());
  });

  std::string reply;
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));  // let the server bind
    auto addr = sys.resolve("red", 4000);
    ASSERT_TRUE(addr.has_value());
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    ASSERT_TRUE(sys.send(*fd, "hello world").ok());
    auto data = sys.recv_exact(*fd, 4);
    ASSERT_TRUE(data.ok());
    reply = util::to_string(*data);
  });

  world_.run();
  EXPECT_EQ(received, "hello world");
  EXPECT_EQ(reply, "pong");
  EXPECT_EQ(server_name.port, 4000);
}

TEST_F(SocketTest, ConnectWithoutListenerRefused) {
  Err result = Err::ok;
  spawn(machines_[0], "client", [&](Sys& sys) {
    auto addr = sys.resolve("green", 4999);
    ASSERT_TRUE(addr.has_value());
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    result = sys.connect(*fd, *addr).error();
  });
  world_.run();
  EXPECT_EQ(result, Err::econnrefused);
}

TEST_F(SocketTest, StreamDeliversBytesInOrder) {
  // Many small sends arrive as one ordered stream (§3.1: "as many bytes
  // as possible are delivered for each read without regard for whether or
  // not the bytes originated from the same message").
  std::string collected;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4001);
    (void)sys.listen(*ls, 4);
    auto conn = sys.accept(*ls);
    for (;;) {
      auto data = sys.recv(*conn, 4096);
      if (!data.ok() || data->empty()) break;
      collected += util::to_string(*data);
    }
  });
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4001);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(sys.send(*fd, util::strprintf("%02d,", i)).ok());
    }
    ASSERT_TRUE(sys.close(*fd).ok());
  });
  world_.run();
  std::string expect;
  for (int i = 0; i < 50; ++i) expect += util::strprintf("%02d,", i);
  EXPECT_EQ(collected, expect);
}

TEST_F(SocketTest, DatagramWholeMessages) {
  std::vector<std::string> got;
  net::SockAddr source_seen;
  spawn(machines_[0], "sink", [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 5001);
    for (int i = 0; i < 3; ++i) {
      auto d = sys.recvfrom(*fd);
      ASSERT_TRUE(d.ok());
      got.push_back(util::to_string(d->data));
      source_seen = d->source;
    }
  });
  spawn(machines_[1], "sender", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 5001);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(sys.sendto(*fd, util::to_bytes(util::strprintf("msg%d", i)),
                             *addr).ok());
    }
  });
  world_.run();
  ASSERT_EQ(got.size(), 3u);
  // Each read returns one whole message (no concatenation).
  EXPECT_EQ(got[0], "msg0");
  EXPECT_EQ(got[1], "msg1");
  EXPECT_EQ(got[2], "msg2");
  EXPECT_EQ(source_seen.family, net::Family::internet);
}

TEST_F(SocketTest, SocketpairBidirectional) {
  std::string a_got, b_got;
  spawn(machines_[0], "pair", [&](Sys& sys) {
    auto pair = sys.socketpair();
    ASSERT_TRUE(pair.ok());
    ASSERT_TRUE(sys.send(pair->first, "to-b").ok());
    ASSERT_TRUE(sys.send(pair->second, "to-a").ok());
    a_got = util::to_string(*sys.recv_exact(pair->first, 4));
    b_got = util::to_string(*sys.recv_exact(pair->second, 4));
  });
  world_.run();
  EXPECT_EQ(a_got, "to-a");
  EXPECT_EQ(b_got, "to-b");
}

TEST_F(SocketTest, CloseGivesEofToPeer) {
  bool got_eof = false;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4002);
    (void)sys.listen(*ls, 1);
    auto conn = sys.accept(*ls);
    auto data = sys.recv(*conn, 100);  // "bye"
    ASSERT_TRUE(data.ok());
    auto eof = sys.recv(*conn, 100);  // peer closed
    got_eof = eof.ok() && eof->empty();
  });
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4002);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    ASSERT_TRUE(sys.send(*fd, "bye").ok());
    ASSERT_TRUE(sys.close(*fd).ok());
  });
  world_.run();
  EXPECT_TRUE(got_eof);
}

TEST_F(SocketTest, EofArrivesAfterInFlightData) {
  // Close must never overtake data on the same connection.
  std::string got;
  bool clean_eof = false;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4003);
    (void)sys.listen(*ls, 1);
    auto conn = sys.accept(*ls);
    for (;;) {
      auto data = sys.recv(*conn, 4096);
      if (!data.ok()) break;
      if (data->empty()) {
        clean_eof = true;
        break;
      }
      got += util::to_string(*data);
    }
  });
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4003);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    ASSERT_TRUE(sys.send(*fd, std::string(10000, 'x')).ok());
    ASSERT_TRUE(sys.close(*fd).ok());  // immediately after a large send
  });
  world_.run();
  EXPECT_TRUE(clean_eof);
  EXPECT_EQ(got.size(), 10000u);
}

TEST_F(SocketTest, SendToClosedPeerIsEpipe) {
  Err result = Err::ok;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4004);
    (void)sys.listen(*ls, 1);
    auto conn = sys.accept(*ls);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(sys.close(*conn).ok());
  });
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4004);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    sys.sleep(util::msec(50));  // let the close land
    auto r = sys.send(*fd, "anyone there?");
    result = r.error();
  });
  world_.run();
  EXPECT_EQ(result, Err::epipe);
}

TEST_F(SocketTest, BindConflictsAddrInUse) {
  Err second = Err::ok;
  spawn(machines_[0], "binder", [&](Sys& sys) {
    auto a = sys.socket(SockDomain::internet, SockType::dgram);
    ASSERT_TRUE(sys.bind_port(*a, 6000).ok());
    auto b = sys.socket(SockDomain::internet, SockType::dgram);
    second = sys.bind_port(*b, 6000).error();
  });
  world_.run();
  EXPECT_EQ(second, Err::eaddrinuse);
}

TEST_F(SocketTest, UnixDomainStreamOnSameMachine) {
  std::string got;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::unix_path, SockType::stream);
    ASSERT_TRUE(sys.bind(*ls, net::SockAddr::unix_name("/tmp/srv")).ok());
    ASSERT_TRUE(sys.listen(*ls, 1).ok());
    auto conn = sys.accept(*ls);
    got = util::to_string(*sys.recv_exact(*conn, 5));
  });
  spawn(machines_[0], "client", [&](Sys& sys) {
    sys.sleep(util::msec(2));
    auto fd = sys.socket(SockDomain::unix_path, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, net::SockAddr::unix_name("/tmp/srv")).ok());
    ASSERT_TRUE(sys.send(*fd, "local").ok());
  });
  world_.run();
  EXPECT_EQ(got, "local");
}

TEST_F(SocketTest, FlowControlBlocksSenderUntilReaderDrains) {
  // Window is 64 KiB; pushing 256 KiB must interleave with reads.
  std::size_t received = 0;
  bool send_finished = false;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4005);
    (void)sys.listen(*ls, 1);
    auto conn = sys.accept(*ls);
    for (;;) {
      auto data = sys.recv(*conn, 8192);
      if (!data.ok() || data->empty()) break;
      received += data->size();
      sys.compute(util::usec(50));  // slow reader
    }
  });
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4005);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    util::Bytes big(256 * 1024, 0x7f);
    ASSERT_TRUE(sys.send(*fd, big).ok());
    send_finished = true;
    ASSERT_TRUE(sys.close(*fd).ok());
  });
  world_.run();
  EXPECT_TRUE(send_finished);
  EXPECT_EQ(received, 256u * 1024u);
}

TEST_F(SocketTest, ListenBacklogLimitsPendingConnections) {
  int refused = 0, accepted_ok = 0;
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4006);
    (void)sys.listen(*ls, 1);    // queue of one
    sys.sleep(util::msec(100));  // let clients pile up
    for (;;) {
      auto sel = sys.select({*ls}, false, util::msec(1));
      if (!sel.ok() || sel->timed_out) break;
      if (sys.accept(*ls).ok()) ++accepted_ok;
    }
  });
  for (int i = 0; i < 3; ++i) {
    spawn(machines_[1], "client", [&](Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("red", 4006);
      auto fd = sys.socket(SockDomain::internet, SockType::stream);
      auto r = sys.connect(*fd, *addr);
      if (!r.ok() && r.error() == Err::econnrefused) ++refused;
    });
  }
  world_.run();
  EXPECT_EQ(accepted_ok, 1);
  EXPECT_EQ(refused, 2);
}

TEST_F(SocketTest, DescriptorErrors) {
  spawn(machines_[0], "errs", [&](Sys& sys) {
    EXPECT_EQ(sys.send(42, "x").error(), Err::ebadf);
    EXPECT_EQ(sys.close(42).error(), Err::ebadf);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    EXPECT_EQ(sys.listen(*fd, 1).error(), Err::eopnotsupp);
    EXPECT_EQ(sys.send(*fd, "x").error(), Err::enotconn);  // no default dest
    auto sfd = sys.socket(SockDomain::internet, SockType::stream);
    EXPECT_EQ(sys.recv(*sfd, 10).error(), Err::enotconn);
    EXPECT_EQ(sys.recvfrom(*sfd).error(), Err::eopnotsupp);
  });
  world_.run();
}

TEST_F(SocketTest, DupSharesSocket) {
  std::string got;
  spawn(machines_[0], "duper", [&](Sys& sys) {
    auto pair = sys.socketpair();
    ASSERT_TRUE(pair.ok());
    auto dup_fd = sys.dup(pair->first);
    ASSERT_TRUE(dup_fd.ok());
    ASSERT_TRUE(sys.close(pair->first).ok());  // original gone, dup lives
    ASSERT_TRUE(sys.send(*dup_fd, "via-dup").ok());
    got = util::to_string(*sys.recv_exact(pair->second, 7));
  });
  world_.run();
  EXPECT_EQ(got, "via-dup");
}

TEST_F(SocketTest, GetsocknameAndPeername) {
  spawn(machines_[0], "server", [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4007);
    (void)sys.listen(*ls, 1);
    (void)sys.accept(*ls);
  });
  spawn(machines_[1], "client", [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4007);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    EXPECT_EQ(sys.getpeername(*fd).error(), Err::enotconn);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    auto self = sys.getsockname(*fd);
    auto peer = sys.getpeername(*fd);
    ASSERT_TRUE(self.ok());
    ASSERT_TRUE(peer.ok());
    EXPECT_EQ(peer->port, 4007);
    EXPECT_NE(self->port, 0);
  });
  world_.run();
}

}  // namespace
}  // namespace dpm::kernel
