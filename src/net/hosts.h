// The host table: literal host names and their per-network addresses.
//
// §3.5.4: "A given host may be a member of two or more networks and thus
// two or more different addresses may be used to access it ... when
// communicating an address, the literal name of the host and the number of
// the port are exchanged. The receiving process then constructs the socket
// name using its own host address for the specified machine."
//
// HostTable implements exactly that: name→addresses registration and the
// receiver-side reconstruction (resolve a name from the point of view of a
// particular host, picking a network both hosts share).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.h"

namespace dpm::net {

struct Interface {
  NetworkId network = 0;
  HostAddr addr = 0;
};

class HostTable {
 public:
  /// Registers a host; addresses must be unique per network.
  /// Returns false if the name is taken or an address collides.
  bool add_host(const std::string& name, MachineId machine,
                std::vector<Interface> interfaces);

  std::optional<MachineId> machine_of(const std::string& name) const;
  std::optional<std::string> name_of(MachineId machine) const;

  const std::vector<Interface>* interfaces_of(const std::string& name) const;

  /// Receiver-side reconstruction: the socket name that host `from` should
  /// use to reach `target:port`, i.e. target's address on a network `from`
  /// is also attached to. Returns nullopt if no shared network exists.
  std::optional<SockAddr> resolve_from(const std::string& from,
                                       const std::string& target,
                                       Port port) const;

  /// Reverse lookup: which host owns `addr` on `addr.network`?
  std::optional<MachineId> machine_at(const SockAddr& addr) const;

  std::vector<std::string> host_names() const;

 private:
  struct Entry {
    MachineId machine;
    std::vector<Interface> interfaces;
  };
  std::map<std::string, Entry> by_name_;
  std::map<std::pair<NetworkId, HostAddr>, MachineId> by_addr_;
  std::map<MachineId, std::string> names_;
};

}  // namespace dpm::net
