// A custom filter (§3.4).
//
// "Different filter processes can be used in the measurement system.
// Given one basic constraint, a user can write a custom filter." This one
// demonstrates the point: instead of logging every accepted record, it
// *aggregates* — it maintains per-event-type and per-process counters and
// rewrites its log file as a summary each time the counts change. The
// controller creates it exactly like the standard filter
// (`filter f2 <machine> countfilter`), and getlog retrieves the summary.
#pragma once

#include "kernel/exec_registry.h"

namespace dpm::filter {

/// argv: <exe> <logfile> <descriptions> <templates> <meter-port>
/// (the same argv contract as the standard filter, so the daemon's filter
/// creation path works unchanged).
kernel::ProcessMain make_count_filter_main(const std::vector<std::string>& argv);

void register_count_filter_program(kernel::ExecRegistry& registry);

inline constexpr const char* kCountFilterProgram = "countfilter";

}  // namespace dpm::filter
