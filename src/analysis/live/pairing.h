// Incremental send/receive pairing — the shared core of the batch
// order_events() and the streaming LiveAnalysis aggregator.
//
// The pairing semantics are exactly §4.1's channel matching: the k-th
// SEND on a directed channel pairs with the k-th RECEIVE at its far end.
// Stream channels are keyed by the sending endpoint (proc, sock), found
// by joining CONNECT records with their mirrored ACCEPT records by name
// pair; datagram traffic is keyed by (source-name owner endpoint,
// receiving process), found by socket-name ownership.
//
// The batch algorithm routes every receive with the *final* connection
// table. To produce the identical pairing one event at a time, the core
// parks events whose routing evidence has not arrived yet:
//
//   * a stream RECEIVE waits on its endpoint's connect/accept join;
//   * a datagram SEND/RECEIVE waits on a non-zero-sock owner for its
//     destName/sourceName.
//
// Both kinds of evidence are *stable* once established (a name's owner is
// never replaced once resolved; an endpoint pairs at most once in traces
// from this simulator, whose socket ids are globally unique), so parking
// until the evidence arrives and then flushing in index order reproduces
// the batch queues. The one theoretical divergence — two names resolving
// at different times interleaving one channel's queue — is handled by
// index-sorted insertion and surfaced via disorder() instead of silently
// producing different pairs. Events whose evidence never arrives stay
// parked (the batch algorithm drops them; neither pairs them).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "analysis/structure.h"
#include "analysis/trace_reader.h"

namespace dpm::analysis::live {

class PairingCore {
 public:
  struct Pair {
    std::size_t send = 0;  // trace index of the SEND
    std::size_t recv = 0;  // trace index of the RECEIVE
  };

  /// Observes one event at trace position `index`. Indices must be fed in
  /// increasing order (the trace's own order). Newly completed pairs
  /// accumulate until take_pairs().
  void observe(const Event& e, std::size_t index);

  /// Drains the pairs completed since the last call.
  std::vector<Pair> take_pairs();

  /// Matched connect/accept joins so far.
  std::size_t matched_connections() const { return matched_; }

  /// Events parked awaiting routing evidence (stream receives with no
  /// connection join yet, datagram traffic with unresolved names).
  std::size_t parked() const { return parked_; }

  /// True when an insertion order arose that the batch algorithm could
  /// have resolved differently (see the header comment); pairs remain
  /// index-sorted best-effort but exact batch equivalence is no longer
  /// guaranteed.
  bool disorder() const { return disorder_; }

  // ---- fault tolerance: bounded parking ----------------------------------
  //
  // Under failures the evidence a parked event waits for may never arrive
  // (the far end crashed before its CONNECT was metered, the name record
  // was dropped with a dead meter socket). Left alone the park queues grow
  // without bound and the events silently never pair. With a TTL set, the
  // caller reports its Lamport progress and entries parked for more than
  // `ttl` units of progress are expelled as explicit *gaps*: they will
  // never pair (matching batch analysis, which also drops them) and are
  // surfaced per channel instead of corrupting clocks. Batch order_events
  // never calls advance_progress, so batch pairing is untouched.

  /// Sets the park TTL in units of Lamport progress. 0 disables sweeping.
  void set_park_ttl(std::uint64_t ttl) { park_ttl_ = ttl; }

  /// Reports monotone Lamport progress; with a TTL set, stale parked
  /// entries are expelled into the gap list.
  void advance_progress(std::uint64_t lamport);

  /// One expelled parked event: it waited longer than the TTL for routing
  /// evidence that never came.
  struct Gap {
    std::size_t index = 0;  // trace index of the expelled event
    std::string channel;    // "stream:<proc>#<sock>" or "name:<name>"
    bool is_send = false;
  };
  /// Drains the gaps expelled since the last call.
  std::vector<Gap> take_gaps();
  /// Total events expelled as gaps so far.
  std::size_t gaps() const { return gaps_total_; }

 private:
  /// One side of a channel: unpaired indices, kept sorted (pushes are
  /// index-ordered except across late name resolutions).
  struct Side {
    std::deque<std::size_t> q;
    std::size_t max_popped = 0;
    bool any_popped = false;
  };
  struct Chan {
    Side sends;
    Side recvs;
  };

  struct ParkedDgram {
    std::size_t index = 0;
    ProcKey proc;
    std::uint64_t sock = 0;
    bool is_send = false;
    std::uint64_t stamp = 0;  // progress_ at park time
  };
  struct ParkedStreamRecv {
    std::size_t index = 0;
    std::uint64_t stamp = 0;  // progress_ at park time
  };

  void push_side(Side& s, std::size_t index);
  void try_pair(Chan& c);
  void learn_name(const std::string& name, Endpoint ep);
  void join_connections(const std::pair<std::string, std::string>& key);
  void set_peer(Endpoint ep, Endpoint other);
  void sweep();

  // Connection joining (the incremental ConnectionMatcher).
  std::map<std::pair<std::string, std::string>, std::deque<Endpoint>> connects_;
  std::map<std::pair<std::string, std::string>, std::deque<Endpoint>> accepts_;
  std::map<std::pair<ProcKey, std::uint64_t>, Endpoint> peers_;
  std::map<std::string, Endpoint> names_;
  std::size_t matched_ = 0;

  // Channels, keyed exactly as in order_events().
  std::map<std::pair<ProcKey, std::uint64_t>, Chan> stream_;
  std::map<std::pair<Endpoint, ProcKey>, Chan> dgram_;

  // Parked events awaiting evidence.
  std::map<std::pair<ProcKey, std::uint64_t>, std::vector<ParkedStreamRecv>>
      parked_stream_recvs_;
  std::map<std::string, std::vector<ParkedDgram>> parked_by_name_;
  std::size_t parked_ = 0;

  // Park TTL state (inert until set_park_ttl + advance_progress).
  std::uint64_t park_ttl_ = 0;
  std::uint64_t progress_ = 0;
  std::vector<Gap> gaps_;
  std::size_t gaps_total_ = 0;

  std::vector<Pair> pending_;
  bool disorder_ = false;
};

}  // namespace dpm::analysis::live
