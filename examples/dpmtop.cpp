// dpmtop: a live "top" for a metered distributed computation.
//
// The paper's analyses run only after the computation ends (§4); dpmtop
// shows what the streaming layer (analysis/live/) makes possible while it
// runs. A LiveRecordSink is installed on the world before the filter
// starts, so every record the filter accepts is pushed into a
// LiveAnalysis with no log round-trip; the simulation is then driven in
// fixed frames and each frame renders:
//
//   * per-process event/byte rates over a rolling window, with liveness;
//   * per-channel message rates and latencies;
//   * the critical path through the happens-before DAG so far, with its
//     time attributed per process and per channel;
//   * online predicate verdicts (analysis/predicates/): the session adds
//     global predicates through the controller's `predicate` command and
//     the panel shows possibly/definitely counts and recent witness cuts.
//
//   dpmtop [--frames N] [--frame-ms MS] [--no-clear]
//   dpmtop --smoke        few frames, no screen clearing, hard checks
//                         (used as the ctest smoke test)
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/live/aggregator.h"
#include "analysis/predicates/service.h"
#include "apps/apps.h"
#include "control/session.h"
#include "filter/filter_program.h"
#include "kernel/world.h"
#include "util/strings.h"
#include "util/time.h"

namespace {

using namespace dpm;

void render_predicates(analysis::pred::PredicateDetector& det) {
  using analysis::pred::PredicateDetector;
  const auto st = det.status();
  if (st.empty()) return;
  std::cout << util::strprintf("\npredicates (eps=%lld us):\n",
                               static_cast<long long>(det.config().epsilon_us));
  std::cout << "  name         insts  possibly  definitely  strongest\n";
  static const char* kStrength[] = {"never", "possibly", "definitely"};
  for (const auto& p : st) {
    std::cout << util::strprintf(
        "  %-12s %5zu  %8llu  %10llu  %s\n", p.name.c_str(), p.instantiations,
        static_cast<unsigned long long>(p.possibly_count),
        static_cast<unsigned long long>(p.definitely_count),
        kStrength[p.strongest]);
  }
  const auto& vs = det.verdicts();
  const std::size_t show = std::min<std::size_t>(vs.size(), 4);
  for (std::size_t i = vs.size() - show; i < vs.size(); ++i) {
    const auto& v = vs[i];
    std::cout << util::strprintf(
        "  %s %s #%llu cut=[%lld,%lld]us lag=%lldus\n",
        v.kind == PredicateDetector::VerdictKind::definitely ? "definitely"
                                                             : "possibly  ",
        v.predicate.c_str(), static_cast<unsigned long long>(v.occurrence),
        static_cast<long long>(v.cut_lo_us), static_cast<long long>(v.cut_hi_us),
        static_cast<long long>(v.detect_lag_us));
  }
}

void render_frame(kernel::World& world, analysis::live::LiveAnalysis& live,
                  analysis::pred::PredicateDetector& det, int frame,
                  bool clear) {
  if (clear) std::cout << "\x1b[2J\x1b[H";
  const auto st = live.stats();
  std::cout << util::strprintf(
      "dpmtop  frame %-3d  sim t=%lld us\n"
      "events=%zu pairs=%zu cross=%zu parked=%zu max_lamport=%llu%s%s\n\n",
      frame, static_cast<long long>(util::count_us(world.now())), st.events,
      st.message_pairs, st.cross_machine_pairs, st.parked,
      static_cast<unsigned long long>(st.max_lamport),
      st.had_cycle ? "  CYCLE" : "", st.pairing_disorder ? "  DISORDER" : "");

  std::cout << "processes (rates over the rolling window):\n";
  std::cout << "  proc            ev/s      B/s   sends   recvs  state\n";
  for (const auto& p : live.process_rates()) {
    std::cout << util::strprintf(
        "  %-12s %8.1f %8.1f %7llu %7llu  %s\n",
        analysis::proc_key_text(p.proc).c_str(), p.events_per_s, p.bytes_per_s,
        static_cast<unsigned long long>(p.total_sends),
        static_cast<unsigned long long>(p.total_recvs),
        p.terminated ? "done" : "live");
  }

  std::cout << "\nchannels:\n";
  std::cout << "  from -> to                 msg/s   avg lat us  last\n";
  for (const auto& c : live.channel_rates()) {
    std::cout << util::strprintf(
        "  %-24s %8.1f   %10.1f %5lld\n",
        (analysis::proc_key_text(c.from) + " -> " +
         analysis::proc_key_text(c.to))
            .c_str(),
        c.msgs_per_s, c.avg_latency_us,
        static_cast<long long>(c.last_latency_us));
  }

  const auto cp = live.critical_path();
  std::cout << util::strprintf("\ncritical path: %lld us over %zu steps\n",
                               static_cast<long long>(cp.total_us),
                               cp.steps.size());
  for (const auto& [proc, us] : cp.proc_us) {
    std::cout << util::strprintf("  compute %-12s %8lld us\n",
                                 analysis::proc_key_text(proc).c_str(),
                                 static_cast<long long>(us));
  }
  for (const auto& [chan, us] : cp.channel_us) {
    std::cout << util::strprintf(
        "  channel %-24s %8lld us\n",
        (analysis::proc_key_text(chan.first) + " -> " +
         analysis::proc_key_text(chan.second))
            .c_str(),
        static_cast<long long>(us));
  }
  render_predicates(det);
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  bool smoke = false;
  bool clear = true;
  int frames = 25;
  std::int64_t frame_ms = 200;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--smoke") {
      smoke = true;
      clear = false;
      frames = 12;
    } else if (args[i] == "--no-clear") {
      clear = false;
    } else if (args[i] == "--frames" && i + 1 < args.size()) {
      frames = static_cast<int>(*util::parse_int(args[++i]));
    } else if (args[i] == "--frame-ms" && i + 1 < args.size()) {
      frame_ms = *util::parse_int(args[++i]);
    } else {
      std::cerr << "usage: dpmtop [--frames N] [--frame-ms MS] [--no-clear] "
                   "[--smoke]\n";
      return 2;
    }
  }

  kernel::World world;
  world.add_machine("alpha");
  world.add_machine("beta");
  world.add_machine("gamma");
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  // The live tap: installed before the filter starts, so the filter picks
  // it up when it is spawned. The predicate bundle wraps a LiveAnalysis
  // with an online detector; ε comes from the world's clock model, padded
  // for drift accumulated over the run.
  auto bundle = analysis::pred::install_live_predicates(
      world, analysis::pred::standard_descriptions(),
      analysis::live::LiveConfig{.window_us = 500'000},
      analysis::pred::DetectorConfig{
          .epsilon_us = world.clock_skew_bound_us() + 5'000});
  analysis::live::LiveAnalysis& live = bundle->live;
  analysis::pred::PredicateDetector& det = bundle->detector;

  control::MonitorSession session(world, {.host = "alpha", .uid = 100});
  world.run();
  (void)session.drain_output();

  // Global predicates, added the way a user would: through the
  // controller's `predicate` command. Meter records carry the compact
  // 0-based machine index (creation order: alpha=0, beta=1, gamma=2).
  (void)session.command("predicate add xfer: @0:* type=send & @1:* type=send");
  (void)session.command(
      "predicate add flow: @0:* type=send & @2:* type=recv"
      " & reach @0:* -> @2:*");

  // A three-stage pipeline across the three machines (§4.3-style job).
  (void)session.command("filter f1 alpha");
  (void)session.command("newjob pipe");
  (void)session.command("addprocess pipe gamma pipe_sink 6100");
  (void)session.command("addprocess pipe beta pipe_stage 6000 gamma 6100 1500");
  (void)session.command("addprocess pipe alpha pipe_source beta 6000 48 512");
  (void)session.command("setflags pipe all");

  // Start the job but do NOT run to quiescence: drive the world in frames
  // and render the live view between them.
  session.send_line("startjob pipe");
  for (int f = 0; f < frames; ++f) {
    world.run_for(util::msec(frame_ms));
    render_frame(world, live, det, f, clear);
  }

  (void)session.command("predicate list");
  (void)session.command("removejob pipe");
  session.send_line("bye");
  world.run();
  det.finish();  // settle everything buffered before the final panel
  render_frame(world, live, det, frames, clear);

  if (smoke) {
    const auto st = live.stats();
    const auto cp = live.critical_path();
    const auto ds = det.stats();
    auto fail = [](const std::string& what) {
      std::cerr << "dpmtop --smoke: " << what << "\n";
      return 1;
    };
    if (st.events == 0) return fail("no events reached the live sink");
    if (st.message_pairs == 0) return fail("no message pairs formed");
    if (st.cross_machine_pairs == 0) return fail("no cross-machine pairs");
    if (st.had_cycle) return fail("happens-before cycle");
    if (st.pairing_disorder) return fail("pairing disorder");
    if (live.process_rates().size() < 3) return fail("fewer than 3 processes");
    if (!cp.valid || cp.total_us <= 0) return fail("no critical path");
    if (cp.channel_us.empty()) return fail("no channel time on critical path");
    if (ds.events != st.events) return fail("detector missed live events");
    if (ds.predicates != 2) return fail("predicate commands did not register");
    if (ds.verdicts_possibly == 0) return fail("no possibly verdict");
    if (ds.verdicts_definitely > ds.verdicts_possibly) {
      return fail("definitely verdicts exceed possibly verdicts");
    }
    std::cout << "\ndpmtop --smoke: OK\n";
  }
  return 0;
}
