#include "obs/snapshot.h"

#include <cinttypes>

#include "obs/json.h"
#include "obs/registry.h"
#include "util/strings.h"

namespace dpm::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  json_append_escaped(out, s);
}

const JsonValue* field(const JsonValue& obj, const char* key,
                       JsonValue::Kind kind) {
  return json_field(obj, key, kind);
}

}  // namespace

void write_snapshot_jsonl(const Registry& reg, std::uint64_t seq,
                          std::string& out) {
  const std::int64_t t_us = util::count_us(reg.now());
  out += util::strprintf(
      "{\"kind\":\"snapshot\",\"seq\":%" PRIu64 ",\"t_us\":%" PRId64
      ",\"metrics\":%zu,\"spans\":%zu}\n",
      seq, t_us, reg.metric_count(), reg.span_ring().size());

  for (const auto& [key, c] : reg.counters()) {
    out += "{\"kind\":\"counter\",\"key\":";
    append_escaped(out, key);
    out += util::strprintf(",\"value\":%" PRIu64 "}\n", c.value());
  }
  for (const auto& [key, g] : reg.gauges()) {
    out += "{\"kind\":\"gauge\",\"key\":";
    append_escaped(out, key);
    out += util::strprintf(",\"value\":%" PRId64 ",\"high_water\":%" PRId64
                           "}\n",
                           g.value(), g.high_water());
  }
  for (const auto& [key, h] : reg.histograms()) {
    out += "{\"kind\":\"histogram\",\"key\":";
    append_escaped(out, key);
    out += util::strprintf(
        ",\"count\":%" PRIu64 ",\"sum\":%" PRId64 ",\"min\":%" PRId64
        ",\"max\":%" PRId64 ",\"p50\":%" PRId64 ",\"p90\":%" PRId64
        ",\"p99\":%" PRId64 ",\"buckets\":[",
        h.count(), h.sum(), h.min(), h.max(), h.percentile(50),
        h.percentile(90), h.percentile(99));
    bool first = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets()[i] == 0) continue;
      if (!first) out += ',';
      first = false;
      out += util::strprintf("[%d,%" PRIu64 "]", i, h.buckets()[i]);
    }
    out += "]}\n";
  }
  for (const auto& ev : reg.span_ring()) {
    out += util::strprintf("{\"kind\":\"span\",\"id\":%" PRIu64
                           ",\"parent\":%" PRIu64 ",\"name\":",
                           ev.span, ev.parent);
    append_escaped(out, ev.name);
    out += util::strprintf(",\"phase\":\"%s\",\"t_us\":%" PRId64 "}\n",
                           ev.begin ? "begin" : "end", ev.t_us);
  }
}

std::string jsonl_to_json_array(const std::string& jsonl, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "[";
  bool first = true;
  for (const auto& line : util::split(jsonl, "\n")) {
    if (util::trim(line).empty()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += pad;
    out += util::trim(line);
  }
  if (!first) out += '\n';
  out += ']';
  return out;
}

std::vector<std::string> Snapshot::subsystems() const {
  std::map<std::string, bool> seen;
  auto note = [&seen](const std::string& key) {
    seen[key.substr(0, key.find('.'))] = true;
  };
  for (const auto& [k, v] : counters) note(k);
  for (const auto& [k, v] : gauges) note(k);
  for (const auto& [k, v] : histograms) note(k);
  std::vector<std::string> out;
  out.reserve(seen.size());
  for (const auto& [k, v] : seen) out.push_back(k);
  return out;
}

std::optional<Snapshot> parse_snapshot(const std::string& text,
                                       std::string* err) {
  auto bad = [err](std::size_t line_no, const std::string& why) {
    if (err) *err = util::strprintf("line %zu: %s", line_no, why.c_str());
    return std::nullopt;
  };

  Snapshot snap;
  bool saw_header = false;
  std::size_t line_no = 0;
  for (const auto& line : util::split_keep_empty(text, '\n')) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    std::string perr;
    JsonParser parser(line, &perr);
    auto v = parser.parse();
    if (!v || v->kind != JsonValue::Kind::object) {
      return bad(line_no, perr.empty() ? "not a JSON object" : perr);
    }
    const JsonValue* kind = field(*v, "kind", JsonValue::Kind::string);
    if (!kind) return bad(line_no, "missing \"kind\"");

    if (kind->str == "snapshot") {
      const JsonValue* seq = field(*v, "seq", JsonValue::Kind::number);
      const JsonValue* t = field(*v, "t_us", JsonValue::Kind::number);
      if (!seq || !t) return bad(line_no, "snapshot header missing seq/t_us");
      // A later snapshot restarts the accumulation: last one wins.
      snap = Snapshot{};
      snap.seq = seq->as_u64();
      snap.t_us = t->as_i64();
      saw_header = true;
      continue;
    }
    if (!saw_header) return bad(line_no, "metric line before snapshot header");

    if (kind->str == "counter") {
      const JsonValue* key = field(*v, "key", JsonValue::Kind::string);
      const JsonValue* val = field(*v, "value", JsonValue::Kind::number);
      if (!key || !val) return bad(line_no, "counter missing key/value");
      snap.counters[key->str] = val->as_u64();
    } else if (kind->str == "gauge") {
      const JsonValue* key = field(*v, "key", JsonValue::Kind::string);
      const JsonValue* val = field(*v, "value", JsonValue::Kind::number);
      const JsonValue* hw = field(*v, "high_water", JsonValue::Kind::number);
      if (!key || !val || !hw) {
        return bad(line_no, "gauge missing key/value/high_water");
      }
      snap.gauges[key->str] = GaugeSample{val->as_i64(), hw->as_i64()};
    } else if (kind->str == "histogram") {
      const JsonValue* key = field(*v, "key", JsonValue::Kind::string);
      const JsonValue* buckets = field(*v, "buckets", JsonValue::Kind::array);
      if (!key || !buckets) return bad(line_no, "histogram missing key/buckets");
      HistogramSample h;
      struct NumField { const char* name; std::int64_t* dst; };
      std::int64_t count_tmp = 0;
      const NumField nums[] = {{"count", &count_tmp}, {"sum", &h.sum},
                               {"min", &h.min},       {"max", &h.max},
                               {"p50", &h.p50},       {"p90", &h.p90},
                               {"p99", &h.p99}};
      for (const auto& nf : nums) {
        const JsonValue* f = field(*v, nf.name, JsonValue::Kind::number);
        if (!f) return bad(line_no, std::string("histogram missing ") + nf.name);
        *nf.dst = f->as_i64();
      }
      h.count = static_cast<std::uint64_t>(count_tmp);
      for (const auto& pair : buckets->arr) {
        if (pair.kind != JsonValue::Kind::array || pair.arr.size() != 2 ||
            pair.arr[0].kind != JsonValue::Kind::number ||
            pair.arr[1].kind != JsonValue::Kind::number) {
          return bad(line_no, "histogram bucket is not [index,count]");
        }
        h.buckets.emplace_back(static_cast<int>(pair.arr[0].num),
                               pair.arr[1].as_u64());
      }
      snap.histograms[key->str] = std::move(h);
    } else if (kind->str == "span") {
      const JsonValue* id = field(*v, "id", JsonValue::Kind::number);
      const JsonValue* parent = field(*v, "parent", JsonValue::Kind::number);
      const JsonValue* name = field(*v, "name", JsonValue::Kind::string);
      const JsonValue* phase = field(*v, "phase", JsonValue::Kind::string);
      const JsonValue* t = field(*v, "t_us", JsonValue::Kind::number);
      if (!id || !parent || !name || !phase ||
          (phase->str != "begin" && phase->str != "end") || !t) {
        return bad(line_no, "span missing id/parent/name/phase/t_us");
      }
      SpanSample s;
      s.id = id->as_u64();
      s.parent = parent->as_u64();
      s.name = name->str;
      s.begin = phase->str == "begin";
      s.t_us = t->as_i64();
      snap.spans.push_back(std::move(s));
    } else {
      return bad(line_no, "unknown kind \"" + kind->str + "\"");
    }
  }
  if (!saw_header) return bad(line_no, "no snapshot header line");
  return snap;
}

std::string validate_snapshot(const std::string& text) {
  std::string err;
  auto snap = parse_snapshot(text, &err);
  if (!snap) return err;
  for (const auto& [key, g] : snap->gauges) {
    if (g.value >= 0 && g.high_water < g.value) {
      return "gauge " + key + ": high_water below value";
    }
  }
  for (const auto& [key, h] : snap->histograms) {
    std::uint64_t total = 0;
    for (const auto& [idx, n] : h.buckets) {
      if (idx < 0 || idx >= Histogram::kBuckets) {
        return "histogram " + key + ": bucket index out of range";
      }
      total += n;
    }
    if (total != h.count) {
      return "histogram " + key + ": bucket counts do not sum to count";
    }
    if (h.count > 0 && h.min > h.max) {
      return "histogram " + key + ": min above max";
    }
  }
  return {};
}

std::string diff_snapshots(const Snapshot& a, const Snapshot& b) {
  std::string out;
  out += util::strprintf("snapshot diff: seq %" PRIu64 " (t=%" PRId64
                         "us) -> seq %" PRIu64 " (t=%" PRId64 "us)\n",
                         a.seq, a.t_us, b.seq, b.t_us);

  out += "counters:\n";
  for (const auto& [key, bv] : b.counters) {
    auto it = a.counters.find(key);
    if (it == a.counters.end()) {
      out += util::strprintf("  %-40s + %" PRIu64 " (new)\n", key.c_str(), bv);
    } else if (bv != it->second) {
      out += util::strprintf("  %-40s %+lld (%" PRIu64 " -> %" PRIu64 ")\n",
                             key.c_str(),
                             static_cast<long long>(bv) -
                                 static_cast<long long>(it->second),
                             it->second, bv);
    }
  }
  for (const auto& [key, av] : a.counters) {
    if (!b.counters.count(key)) {
      out += util::strprintf("  %-40s (gone)\n", key.c_str());
    }
  }

  out += "gauges:\n";
  for (const auto& [key, bg] : b.gauges) {
    auto it = a.gauges.find(key);
    if (it == a.gauges.end()) {
      out += util::strprintf("  %-40s %" PRId64 " (high-water %" PRId64
                             ") (new)\n",
                             key.c_str(), bg.value, bg.high_water);
    } else if (bg.value != it->second.value ||
               bg.high_water != it->second.high_water) {
      out += util::strprintf("  %-40s %" PRId64 " -> %" PRId64
                             " (high-water %" PRId64 ")\n",
                             key.c_str(), it->second.value, bg.value,
                             bg.high_water);
    }
  }
  for (const auto& [key, ag] : a.gauges) {
    if (!b.gauges.count(key)) {
      out += util::strprintf("  %-40s (gone)\n", key.c_str());
    }
  }

  out += "histograms:\n";
  for (const auto& [key, bh] : b.histograms) {
    auto it = a.histograms.find(key);
    if (it == a.histograms.end()) {
      out += util::strprintf("  %-40s +%" PRIu64 " samples (p50 %" PRId64
                             ", p99 %" PRId64 ", max %" PRId64 ") (new)\n",
                             key.c_str(), bh.count, bh.p50, bh.p99, bh.max);
    } else if (bh.count != it->second.count) {
      out += util::strprintf("  %-40s +%" PRIu64 " samples (p50 %" PRId64
                             ", p99 %" PRId64 ", max %" PRId64 ")\n",
                             key.c_str(), bh.count - it->second.count, bh.p50,
                             bh.p99, bh.max);
    }
  }
  for (const auto& [key, ah] : a.histograms) {
    if (!b.histograms.count(key)) {
      out += util::strprintf("  %-40s (gone)\n", key.c_str());
    }
  }
  return out;
}

}  // namespace dpm::obs
