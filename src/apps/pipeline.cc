// A pipeline: source -> stage* -> sink over stream connections. Stages
// add CPU work, so the parallelism analysis sees genuine overlap across
// machines.
#include "apps/apps.h"
#include "apps/apps_util.h"

namespace dpm::apps {

using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

namespace {

kernel::Fd listen_accept(Sys& sys, net::Port port) {
  auto ls = sys.socket(SockDomain::internet, SockType::stream);
  if (!ls || !sys.bind_port(*ls, port) || !sys.listen(*ls, 2)) return -1;
  auto conn = sys.accept(*ls);
  (void)sys.close(*ls);
  return conn ? *conn : -1;
}

}  // namespace

kernel::ProcessMain make_pipe_source(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const std::string host = arg_str(argv, 1, "localhost");
    const auto port = static_cast<net::Port>(arg_int(argv, 2, 8100));
    const auto items = arg_int(argv, 3, 20);
    const auto bytes = static_cast<std::size_t>(arg_int(argv, 4, 256));

    auto outr = connect_retry(sys, host, port);
    if (!outr) sys.exit(1);
    kernel::Fd out = *outr;
    const util::Bytes item = payload(bytes, 0x44);
    for (std::int64_t i = 0; i < items; ++i) {
      sys.compute(util::usec(300));  // producing an item costs CPU
      if (!sys.send(out, item)) break;
    }
    (void)sys.close(out);
    sys.exit(0);
  };
}

kernel::ProcessMain make_pipe_stage(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto in_port = static_cast<net::Port>(arg_int(argv, 1, 8100));
    const std::string out_host = arg_str(argv, 2, "localhost");
    const auto out_port = static_cast<net::Port>(arg_int(argv, 3, 8101));
    const auto compute_us = arg_int(argv, 4, 500);

    auto outr = connect_retry(sys, out_host, out_port);
    if (!outr) sys.exit(1);
    kernel::Fd out = *outr;
    kernel::Fd in = listen_accept(sys, in_port);
    if (in < 0) sys.exit(1);

    for (;;) {
      auto data = sys.recv(in, 4096);
      if (!data || data->empty()) break;
      sys.compute(util::usec(compute_us));
      if (!sys.send(out, *data)) break;
    }
    (void)sys.close(in);
    (void)sys.close(out);
    sys.exit(0);
  };
}

kernel::ProcessMain make_pipe_sink(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto in_port = static_cast<net::Port>(arg_int(argv, 1, 8101));
    kernel::Fd in = listen_accept(sys, in_port);
    if (in < 0) sys.exit(1);
    std::int64_t bytes = 0;
    for (;;) {
      auto data = sys.recv(in, 4096);
      if (!data || data->empty()) break;
      bytes += static_cast<std::int64_t>(data->size());
    }
    (void)sys.close(in);
    (void)sys.print(util::strprintf("pipe_sink: %lld bytes\n",
                                    static_cast<long long>(bytes)));
    sys.exit(0);
  };
}

}  // namespace dpm::apps
