// Chaos quickstart: a monitoring session that survives real failures.
//
// A three-machine world runs a metered pingpong job while a scripted
// fault plan cuts the red↔green link for two seconds of sim time and then
// crashes green outright (its meterdaemon and the metered client die with
// it). The controller's hardened RPCs notice — green is marked down, the
// `jobs` listing says so — and once the plan restarts the machine, the
// `reconcile` command probes the respawned daemon, clears the mark, and
// declares the dead process "[presumed dead]". The session then proves
// that nothing was silently lost: every emitted meter record is accounted
// for exactly, and the surviving trace still renders as a Chrome trace.
//
//   chaos            # verbose walk-through
//   chaos --smoke    # quiet self-check (the ctest entry)
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/live/aggregator.h"
#include "analysis/live/chrome_trace.h"
#include "analysis/ordering.h"
#include "analysis/trace_reader.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"
#include "net/faults.h"

int main(int argc, char** argv) {
  using namespace dpm;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  kernel::World world;
  const kernel::MachineId hub = world.add_machine("hub");
  world.add_machine("red");
  world.add_machine("green");
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  control::MonitorSession session(world, {.host = "hub", .uid = 100});
  world.run();
  (void)session.drain_output();

  std::string transcript;
  auto run = [&](const std::string& cmd) {
    const std::string out = session.command(cmd);
    transcript += out;
    if (!smoke) std::cout << cmd << "\n" << out;
  };

  run("filter f1 hub");
  run("newjob demo");
  run("addprocess demo red pingpong_server 5000 2000");
  run("addprocess demo green pingpong_client red 5000 2000 128");
  run("setflags demo all");

  // The fault plan, in the scenario DSL (reproducible by construction):
  // cut the red↔green link for 2s of sim time, crash green mid-job (its
  // daemon and the metered client die with it), and bring the machine
  // back late enough that reconciliation has a fresh daemon to talk to.
  // Times are anchored to the session's current sim clock — a plan armed
  // in the past would fire before the job exists.
  const std::int64_t t0 = util::count_us(world.now() - util::TimePoint{});
  auto at = [t0](std::int64_t off_us) {
    return std::to_string(t0 + off_us) + "us";
  };
  std::string dsl_err;
  auto plan = net::FaultPlan::parse(
      "partition@" + at(100'000) + " red green for=2s\n"
      "crash@" + at(500'000) + " green\n"
      "restart@" + at(4'000'000) + " green\n",
      &dsl_err);
  if (!plan) {
    std::cerr << "bad fault plan: " << dsl_err << "\n";
    return 1;
  }
  world.install_faults(*plan);
  if (!smoke) std::cout << "fault plan: " << plan->to_string() << "\n";

  session.send_line("startjob demo");

  // Run into the storm: the partition holds the stream, then the crash
  // kills green's daemon and the client with it.
  world.run_until(util::TimePoint{} + util::usec(t0 + 800'000));

  // The next RPC at green exhausts its deadline/retry budget and marks
  // the machine down.
  run("stopjob demo");
  run("jobs demo");
  if (transcript.find("marked down") == std::string::npos ||
      transcript.find("DOWN") == std::string::npos) {
    std::cerr << "controller never reported green down\n" << transcript;
    return 1;
  }

  // Let the plan restart green (its boot program respawns the daemon),
  // then reconcile: the mark clears and the dead client is declared.
  world.run_until(util::TimePoint{} + util::usec(t0 + 4'500'000));
  run("reconcile");
  run("jobs demo");
  if (transcript.find("reconciled") == std::string::npos ||
      transcript.find("presumed dead") == std::string::npos) {
    std::cerr << "reconcile did not recover green\n" << transcript;
    return 1;
  }

  run("removejob demo");
  run("getlog f1 demo.trace");
  session.send_line("bye");
  world.run();

  // Exact record conservation: emitted == consumed + dropped + lost +
  // stranded + malformed + pending + buffered, even across the crash.
  const kernel::MeterConservation cons = world.meter_conservation();
  if (!smoke) {
    std::cout << "\nmeter records: emitted=" << cons.emitted
              << " consumed=" << cons.consumed << " dropped=" << cons.dropped
              << " lost=" << cons.lost << " stranded=" << cons.stranded
              << " malformed=" << cons.malformed << " pending=" << cons.pending
              << " buffered=" << cons.buffered << "\n";
  }
  if (!cons.balanced()) {
    std::cerr << "record conservation violated: emitted=" << cons.emitted
              << " accounted=" << cons.accounted() << "\n";
    return 1;
  }

  // The surviving trace still analyzes and renders.
  auto text = world.machine(hub).fs.read_text("demo.trace");
  if (!text) {
    std::cerr << "no trace retrieved\n";
    return 1;
  }
  const analysis::Trace trace = analysis::read_trace(*text);
  if (trace.events.empty() || trace.malformed != 0) {
    std::cerr << "surviving trace unusable: events=" << trace.events.size()
              << " malformed=" << trace.malformed << "\n";
    return 1;
  }
  const analysis::Ordering ord = analysis::order_events(trace);
  analysis::live::LiveAnalysis live;
  for (const analysis::Event& e : trace.events) live.add_event(e);
  const std::string json = analysis::live::chrome_trace_json(live);
  const auto check = analysis::live::check_chrome_trace(json);
  if (!check.ok) {
    std::cerr << "chrome trace schema check failed: " << check.error << "\n";
    return 1;
  }

  if (!smoke) {
    std::cout << "trace: " << trace.events.size() << " events, "
              << ord.message_pairs << " pairs (had_cycle="
              << (ord.had_cycle ? "yes" : "no") << ")\n"
              << "chrome export: " << check.events << " trace events, "
              << check.slices << " slices, " << check.flow_pairs
              << " flows -- schema ok\n"
              << "\ngreen died, the monitor noticed, reconciled, and kept "
                 "every record accounted for.\n";
  }
  return 0;
}
