// The meterdaemon (§3.5).
//
// "There must be a meterdaemon on each machine that supports the
// measurement system. The sole purpose of the meterdaemons is to carry
// out control functions for the controller."
//
// The daemon: listens on the well-known daemon port for RPC connections;
// creates processes suspended (new state) with their stdio redirected
// through a gateway socket pair (§3.5.2); wires meter connections to the
// filter and issues setmeter(); starts/stops/kills its children on
// request; reports child state changes to the responsible controller by
// initiating a connection (the protocol's one exception, §3.5.1); and
// forwards process output to the controller as io notes.
#pragma once

#include <string>

#include "kernel/exec_registry.h"

namespace dpm::daemon {

/// The meterdaemon program (runs as root). argv: <exe>. Registered as
/// program "meterdaemon".
kernel::ProcessMain make_meterdaemon_main(const std::vector<std::string>& argv);

void register_meterdaemon_program(kernel::ExecRegistry& registry);

inline constexpr const char* kMeterdaemonProgram = "meterdaemon";

}  // namespace dpm::daemon
