file(REMOVE_RECURSE
  "libdpm_net.a"
)
