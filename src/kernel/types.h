// Shared kernel identifiers and tunables.
#pragma once

#include <cstdint>

#include "net/address.h"
#include "net/fabric.h"
#include "util/time.h"

namespace dpm::kernel {

using Pid = std::int32_t;       // meaningful only on its own machine (§3.5.1)
using Uid = std::int32_t;       // 0 is the superuser
using Fd = std::int32_t;
using SocketId = std::uint64_t; // "file table entry address": unique socket id
using MachineId = net::MachineId;

constexpr Uid kSuperUser = 0;

/// 4.2BSD-style socket domains and types (numeric values as in the BSD
/// headers; they appear in meter sockcrt records).
enum class SockDomain : std::uint32_t {
  unix_path = 1,  // AF_UNIX
  internet = 2,   // AF_INET
  internal = 3,   // socketpair-internal
};

enum class SockType : std::uint32_t {
  stream = 1,  // SOCK_STREAM
  dgram = 2,   // SOCK_DGRAM
};

/// Simulated costs of kernel operations, charged to the calling process on
/// its machine's CPU. Rough VAX-11/780-era magnitudes; benchmarks sweep
/// the metering-related ones.
struct SyscallCosts {
  util::Duration syscall_base = util::usec(25);    // trap + validate
  util::Duration socket_create = util::usec(120);
  util::Duration bind_cost = util::usec(60);
  util::Duration connect_cost = util::usec(150);
  util::Duration accept_cost = util::usec(120);
  util::Duration send_base = util::usec(80);
  util::Duration send_per_kb = util::usec(250);
  util::Duration recv_base = util::usec(70);
  util::Duration fork_cost = util::usec(3000);
  util::Duration file_io_base = util::usec(200);
  util::Duration file_io_per_kb = util::usec(400);
  // Metering costs (§2.2: degradation should be small but is not zero).
  util::Duration meter_event = util::usec(18);      // build + store a record
  util::Duration meter_flush_base = util::usec(90); // send the batch
  util::Duration meter_flush_per_kb = util::usec(120);
};

struct WorldConfig {
  std::uint64_t seed = 1;
  SyscallCosts costs;
  net::NetworkConfig default_net;
  net::LocalConfig local_net;
  /// Meter buffering thresholds: flush when either is reached (§3.2 "when a
  /// sufficient number of messages have been stored").
  std::size_t meter_buffer_bytes = 1024;
  std::uint32_t meter_buffer_msgs = 8;
  /// Ring transport for the meter path. Non-zero enables a shared SPSC
  /// byte ring of this capacity per meter connection: meter_emit encodes
  /// records straight into the ring and only small wakeup packets cross
  /// the fabric. Zero keeps the legacy batch-over-socket transport.
  std::size_t meter_ring_bytes = 0;
  /// Wakeup batching: a (droppable) wakeup packet is sent once this many
  /// unsignalled bytes sit in the ring; M_IMMEDIATE events and meter_flush
  /// force one regardless.
  std::size_t meter_ring_wakeup_bytes = 4096;
  /// Fan-in tier backpressure bound: a forwarded batch arriving at an
  /// aggregation-tier socket whose receive buffer already holds this many
  /// bytes is dropped whole, with every record booked to the tier's
  /// overflow counter (batches are frame-aligned, so drops never cut a
  /// record in half). Keeps aggregator occupancy bounded under storms
  /// while the conservation ledger stays exact.
  std::size_t fanin_queue_bytes = 256 * 1024;
  /// CPU accounting reporting grain — "CPU use is updated in increments of
  /// 10ms" (§4.1).
  util::Duration cpu_grain = util::msec(10);
  std::size_t max_descriptors = 64;
  std::size_t stream_window = 64 * 1024;  // per-connection receive window
  std::size_t dgram_queue_max = 64;       // datagrams queued per socket
};

}  // namespace dpm::kernel
