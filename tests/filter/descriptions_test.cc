// Event record description files — Fig 3.2.
#include "filter/descriptions.h"

#include <gtest/gtest.h>

#include "meter/metermsgs.h"

namespace dpm::filter {
namespace {

TEST(Descriptions, ParsesPaperStyleSendLine) {
  // The shape of Fig 3.2, with this kernel's offsets.
  const std::string text =
      "HEADER size machine cpuTime procTime traceType\n"
      "SEND 1, pid,0,4,10 pc,4,4,10 sock,8,8,10 msgLength,16,4,10 "
      "destNameLen,20,4,10 destName,24,0,0\n";
  std::string err;
  auto d = Descriptions::parse(text, &err);
  ASSERT_TRUE(d.has_value()) << err;
  const EventDesc* send = d->by_type(1);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->name, "SEND");
  ASSERT_EQ(send->fields.size(), 6u);
  EXPECT_EQ(send->fields[2].name, "sock");
  EXPECT_EQ(send->fields[2].offset, 8u);
  EXPECT_EQ(send->fields[2].length, 8u);
  EXPECT_EQ(send->fields[5].length, 0u);  // counted string
}

TEST(Descriptions, DefaultFileDescribesAllTenEvents) {
  std::string err;
  auto d = Descriptions::parse(default_descriptions_text(), &err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_EQ(d->size(), 10u);
  for (std::uint32_t t = 1; t <= 10; ++t) {
    EXPECT_NE(d->by_type(t), nullptr) << "missing type " << t;
  }
  EXPECT_NE(d->by_name("ACCEPT"), nullptr);
  EXPECT_EQ(d->by_name("NOPE"), nullptr);
}

TEST(Descriptions, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Descriptions::parse("", &err).has_value());
  EXPECT_FALSE(Descriptions::parse("SEND\n", &err).has_value());
  EXPECT_FALSE(Descriptions::parse("SEND x, pid,0,4,10\n", &err).has_value());
  EXPECT_FALSE(
      Descriptions::parse("SEND 1, pid,0,nope,10\n", &err).has_value());
  EXPECT_FALSE(Descriptions::parse("SEND 1, pid,0,3,10\n", &err).has_value());
  EXPECT_FALSE(err.empty());
}

class DecodeTest : public ::testing::Test {
 protected:
  DecodeTest() {
    auto d = Descriptions::parse(default_descriptions_text());
    EXPECT_TRUE(d.has_value());
    desc_ = std::move(*d);
  }

  static meter::MeterMsg stamped(meter::MeterBody body) {
    meter::MeterMsg m;
    m.body = std::move(body);
    m.header.machine = 5;
    m.header.cpu_time = 7777;
    m.header.proc_time = 20000;
    return m;
  }

  Descriptions desc_{*Descriptions::parse(default_descriptions_text())};
};

TEST_F(DecodeTest, DecodesSendRecord) {
  auto wire = stamped(meter::MeterSend{42, 3, 9, 128, "228320140"}).serialize();
  auto rec = desc_.decode(wire);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->event_name, "SEND");
  EXPECT_EQ(rec->num("machine").value(), 5);
  EXPECT_EQ(rec->num("cpuTime").value(), 7777);
  EXPECT_EQ(rec->num("procTime").value(), 20000);
  EXPECT_EQ(rec->num("pid").value(), 42);
  EXPECT_EQ(rec->num("sock").value(), 9);
  EXPECT_EQ(rec->num("msgLength").value(), 128);
  EXPECT_EQ(rec->text("destName").value(), "228320140");
  // A numeric-looking name compares numerically too.
  EXPECT_EQ(rec->num("destName").value(), 228320140);
}

TEST_F(DecodeTest, DecodesAcceptWithTwoCountedStrings) {
  auto wire = stamped(meter::MeterAccept{1, 0, 11, 12, "listener", "client"})
                  .serialize();
  auto rec = desc_.decode(wire);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->text("sockName").value(), "listener");
  EXPECT_EQ(rec->text("peerName").value(), "client");
  EXPECT_EQ(rec->num("sock").value(), 11);
  EXPECT_EQ(rec->num("newSock").value(), 12);
}

TEST_F(DecodeTest, DecodesEmptyNames) {
  auto wire = stamped(meter::MeterSend{1, 0, 2, 64, ""}).serialize();
  auto rec = desc_.decode(wire);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->text("destName").value(), "");
  EXPECT_EQ(rec->num("destNameLen").value(), 0);
}

TEST_F(DecodeTest, RejectsTruncatedRecord) {
  auto wire = stamped(meter::MeterSend{1, 0, 2, 64, "abc"}).serialize();
  util::Bytes cut(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(desc_.decode(cut).has_value());
}

TEST_F(DecodeTest, RejectsUnknownType) {
  auto wire = stamped(meter::MeterSend{1, 0, 2, 64, ""}).serialize();
  wire[22] = 77;
  EXPECT_FALSE(desc_.decode(wire).has_value());
}

TEST_F(DecodeTest, EveryEventTypeDecodes) {
  using namespace meter;
  const MeterBody bodies[] = {
      MeterBody{MeterSend{1, 2, 3, 4, "d"}},
      MeterBody{MeterRecv{1, 2, 3, 4, "s"}},
      MeterBody{MeterRecvCall{1, 2, 3}},
      MeterBody{MeterSockCrt{1, 2, 3, 2, 1, 0}},
      MeterBody{MeterDup{1, 2, 3, 4}},
      MeterBody{MeterDestSock{1, 2, 3}},
      MeterBody{MeterFork{1, 2, 9}},
      MeterBody{MeterAccept{1, 2, 3, 4, "a", "b"}},
      MeterBody{MeterConnect{1, 2, 3, "a", "b"}},
      MeterBody{MeterTermProc{1, 2, 0}},
  };
  for (const auto& b : bodies) {
    auto wire = stamped(b).serialize();
    auto rec = desc_.decode(wire);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->num("pid").value(), 1);
  }
}

TEST(FieldValue, NumericAndText) {
  EXPECT_EQ(field_value_text(FieldValue{std::int64_t{42}}), "42");
  EXPECT_EQ(field_value_text(FieldValue{std::string{"x"}}), "x");
  EXPECT_EQ(field_value_num(FieldValue{std::string{"17"}}).value(), 17);
  EXPECT_FALSE(field_value_num(FieldValue{std::string{"ab"}}).has_value());
}

}  // namespace
}  // namespace dpm::filter
