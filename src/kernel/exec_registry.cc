#include "kernel/exec_registry.h"

namespace dpm::kernel {

void ExecRegistry::register_program(const std::string& name,
                                    ProgramFactory factory) {
  programs_[name] = std::move(factory);
}

bool ExecRegistry::has(const std::string& name) const {
  return programs_.count(name) != 0;
}

std::optional<ProcessMain> ExecRegistry::instantiate(
    const std::string& name, const std::vector<std::string>& argv) const {
  auto it = programs_.find(name);
  if (it == programs_.end()) return std::nullopt;
  return it->second(argv);
}

std::vector<std::string> ExecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [name, f] : programs_) out.push_back(name);
  return out;
}

}  // namespace dpm::kernel
