// SPSC ring-buffer transport for the meter path.
//
// The legacy transport batches serialized records in the emitting process
// and ships each batch through the simulated network fabric as a stream
// payload — one fabric packet plus a byte-by-byte receive-buffer copy per
// batch. The ring replaces that with the perf/kmem idiom: a fixed byte
// ring mapped (conceptually) between the metered process and its filter,
// written in place by `meter_emit` and drained directly by the consumer's
// recv. Only tiny *wakeup* packets cross the fabric, so the fault fabric
// can still drop or delay the signalling edge without touching the data.
//
// Policy decisions that keep the conservation invariant exact:
//  - a record is written whole or not at all; when it does not fit the
//    producer drops it with accounting (overflow-to-drop), never truncates;
//  - the consumer endpoint's teardown walks the residue with the same
//    frame cursor used for receive buffers, booking complete frames as
//    stranded and partial ones as malformed — ring bytes are never leaked.
//
// Single-producer/single-consumer is by construction: the simulation is
// single-threaded and one meter connection has exactly one writing kernel
// edge and one draining filter.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "meter/metermsgs.h"
#include "util/bytes.h"

namespace dpm::meter {

class MeterRing {
 public:
  explicit MeterRing(std::size_t capacity_bytes);

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return used_; }
  std::size_t free() const { return buf_.size() - used_; }
  bool empty() const { return used_ == 0; }

  /// Producer side. Encodes `msg` directly into ring storage when the
  /// contiguous tail region fits it (the common case — the ring resets to
  /// offset 0 whenever it drains); a record that wraps the end of storage
  /// is staged once through a reused scratch buffer and copied in two
  /// memcpys. Returns the encoded size, or 0 when the record does not fit
  /// in the free space — the ring is never partially written and the
  /// record is never truncated; the caller drops it with accounting.
  std::size_t push(const MeterMsg& msg);

  /// Raw-byte producer path (tests and future pre-encoded producers).
  /// Same whole-or-nothing contract as push().
  bool push_bytes(const std::uint8_t* data, std::size_t n);

  /// Consumer side: appends up to `max` bytes to `out` in FIFO order,
  /// wrap-aware. Returns the byte count moved. Draining the ring empty
  /// clears the producer's unsignalled counters (the consumer is caught
  /// up, so those bytes no longer need a wakeup).
  std::size_t pop(util::Bytes& out, std::size_t max);

  struct Span {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  /// The readable content as at most two contiguous spans, for teardown
  /// and conservation walks that must see residue without consuming it.
  std::array<Span, 2> spans() const;

  /// Discards all content (consumer teardown, after the residue walk).
  void clear();

  // Producer-edge wakeup batching state: bytes/records written since the
  // last wakeup packet was sent toward the consumer.
  std::size_t unsignalled_bytes = 0;
  std::uint64_t unsignalled_records = 0;
  // Set when the consumer endpoint was destroyed: producers must degrade
  // (drop with accounting) instead of writing into a ring nobody drains.
  bool closed = false;

 private:
  util::Bytes buf_;
  util::Bytes scratch_;  // reused staging for records that wrap
  std::size_t head_ = 0; // offset of the oldest readable byte
  std::size_t used_ = 0; // readable byte count
};

}  // namespace dpm::meter
