#include "util/logging.h"

#include <iostream>


namespace dpm::util {
namespace {

LogLevel g_level = LogLevel::warn;
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(std::ostream* sink) { g_sink = sink; }

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
  if (level < g_level || msg.empty()) return;
  std::ostream& out = g_sink ? *g_sink : std::cerr;
  out << "[" << level_name(level) << "] " << tag << ": " << msg << "\n";
}

}  // namespace dpm::util
