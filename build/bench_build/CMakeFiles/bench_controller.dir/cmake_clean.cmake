file(REMOVE_RECURSE
  "../bench/bench_controller"
  "../bench/bench_controller.pdb"
  "CMakeFiles/bench_controller.dir/bench_controller.cc.o"
  "CMakeFiles/bench_controller.dir/bench_controller.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
