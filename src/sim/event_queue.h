// Discrete-event queue: the single source of time in the simulation.
//
// Events at equal times fire in insertion order (a monotone sequence number
// breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace dpm::sim {

class EventQueue {
 public:
  using Fn = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `at`.
  void schedule(util::TimePoint at, Fn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must not be empty.
  util::TimePoint next_time() const;

  /// Removes and returns the earliest event's action.
  Fn pop();

 private:
  struct Event {
    util::TimePoint at;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dpm::sim
