# Empty compiler generated dependencies file for dpm_apps.
# This may be replaced when dependencies are built.
