
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/dpm_sim.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/dpm_sim.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/dpm_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/dpm_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/executive.cc" "src/CMakeFiles/dpm_sim.dir/sim/executive.cc.o" "gcc" "src/CMakeFiles/dpm_sim.dir/sim/executive.cc.o.d"
  "/root/repo/src/sim/task.cc" "src/CMakeFiles/dpm_sim.dir/sim/task.cc.o" "gcc" "src/CMakeFiles/dpm_sim.dir/sim/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
