// The custom counting filter (§3.4: user-written filters obey one
// constraint — they read meter messages from their meter connections).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"

namespace dpm {
namespace {

TEST(CountFilterTest, AggregatesInsteadOfLogging) {
  kernel::World world(dpm::testing::quick_config(51));
  auto machines = dpm::testing::add_machines(world, {"yellow", "red", "green"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  // The custom filter file instead of the default "filter".
  std::string out = session.command("filter agg yellow countfilter");
  ASSERT_NE(out.find("created"), std::string::npos) << out;
  (void)session.command("newjob j");
  (void)session.command("addprocess j red pingpong_server 4870 4");
  (void)session.command("addprocess j green pingpong_client red 4870 4 100");
  (void)session.command("setflags j send receive accept connect");
  (void)session.command("startjob j");
  (void)session.command("removejob j");
  (void)session.command("getlog agg summary");

  auto text = world.machine(machines[0]).fs.read_text("summary");
  ASSERT_TRUE(text.has_value());
  // The summary aggregates: one SEND line with the total, not one line
  // per event.
  EXPECT_NE(text->find("# countfilter summary"), std::string::npos) << *text;
  EXPECT_NE(text->find("event SEND"), std::string::npos) << *text;
  EXPECT_NE(text->find("event ACCEPT 1"), std::string::npos) << *text;
  EXPECT_NE(text->find("event CONNECT 1"), std::string::npos) << *text;
  // Two processes appear with their send byte totals.
  EXPECT_NE(text->find("sendBytes=400"), std::string::npos) << *text;
}

TEST(CountFilterTest, StandardAndCustomFiltersCoexist) {
  // §3.4: "Many filter processes may exist simultaneously" — one job logs
  // through the standard filter while another aggregates.
  kernel::World world(dpm::testing::quick_config(52));
  auto machines = dpm::testing::add_machines(world, {"yellow", "red"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter plain yellow");
  (void)session.command("filter agg yellow countfilter");
  (void)session.command("newjob a plain");
  (void)session.command("newjob b agg");
  (void)session.command("addprocess a red hello one");
  (void)session.command("addprocess b red hello two");
  (void)session.command("setflags a all");
  (void)session.command("setflags b all");
  (void)session.command("startjob a");
  (void)session.command("startjob b");
  (void)session.command("removejob a");
  (void)session.command("removejob b");
  (void)session.command("getlog plain t1");
  (void)session.command("getlog agg t2");

  auto t1 = world.machine(machines[0]).fs.read_text("t1");
  auto t2 = world.machine(machines[0]).fs.read_text("t2");
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_NE(t1->find("event=TERMPROC"), std::string::npos);  // raw records
  EXPECT_NE(t2->find("# countfilter summary"), std::string::npos);
  EXPECT_NE(t2->find("event TERMPROC 1"), std::string::npos);
}

}  // namespace
}  // namespace dpm
