// Activity timeline: a text rendering of each process's life, with the
// machines' clocks aligned from the trace's own message constraints.
//
//   m1/p101 |##....####..######    |  '#' computing, '.' waiting for a
//   m2/p103 |  ####....##......####|      message (recvcall -> receive)
//
// This is the visual form of the parallelism measurement (§3.3): where
// the columns stack, processes overlap; where a row is dots, that process
// starves.
#pragma once

#include <string>

#include "analysis/trace_reader.h"

namespace dpm::analysis {

struct TimelineOptions {
  int width = 64;           // buckets across the observation window
  bool show_legend = true;
};

std::string render_timeline(const Trace& trace, TimelineOptions opts = {});

}  // namespace dpm::analysis
