#include "analysis/live/chrome_trace.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "meter/metermsgs.h"
#include "obs/json.h"
#include "util/strings.h"

namespace dpm::analysis::live {

namespace {

// The synthetic critical-path lane must not collide with a machine id
// (machines are uint16).
constexpr std::int64_t kCritPid = 1 << 16;

void append_kv(std::string& out, const char* key, std::int64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, const std::string& v) {
  out += '"';
  out += key;
  out += "\":";
  obs::json_append_escaped(out, v);
}

class EventList {
 public:
  explicit EventList(std::string& out) : out_(&out) {}

  /// Starts one traceEvents entry; returns the buffer with "{" appended.
  std::string& item() {
    if (!first_) *out_ += ',';
    first_ = false;
    *out_ += "\n{";
    return *out_;
  }

 private:
  std::string* out_;
  bool first_ = true;
};

void emit_metadata(std::string& out, EventList& list, const char* what,
                   std::int64_t pid, std::int64_t tid,
                   const std::string& name) {
  std::string& o = list.item();
  append_kv(o, "ph", std::string("M"));
  o += ',';
  append_kv(o, "name", std::string(what));
  o += ',';
  append_kv(o, "pid", pid);
  o += ',';
  append_kv(o, "tid", tid);
  o += ",\"args\":{";
  append_kv(o, "name", name);
  o += "}}";
  (void)out;
}

void emit_slice(EventList& list, const std::string& name, const char* cat,
                std::int64_t pid, std::int64_t tid, std::int64_t ts,
                std::int64_t dur) {
  std::string& o = list.item();
  append_kv(o, "ph", std::string("X"));
  o += ',';
  append_kv(o, "name", name);
  o += ',';
  append_kv(o, "cat", std::string(cat));
  o += ',';
  append_kv(o, "pid", pid);
  o += ',';
  append_kv(o, "tid", tid);
  o += ',';
  append_kv(o, "ts", ts);
  o += ',';
  append_kv(o, "dur", dur);
  o += '}';
}

}  // namespace

std::string chrome_trace_json(const LiveAnalysis& live,
                              const ChromeTraceOptions& opts) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EventList list(out);

  const std::size_t n = live.events();
  std::map<ProcKey, std::vector<std::size_t>> per_proc;
  for (std::size_t i = 0; i < n; ++i) per_proc[live.proc_of(i)].push_back(i);

  // Lane names: one Chrome "process" per machine, one "thread" per
  // monitored process.
  std::set<std::uint16_t> machines;
  for (const auto& [proc, idxs] : per_proc) machines.insert(proc.machine);
  for (std::uint16_t m : machines) {
    emit_metadata(out, list, "process_name", m, 0,
                  "machine " + std::to_string(m));
  }
  for (const auto& [proc, idxs] : per_proc) {
    emit_metadata(out, list, "thread_name", proc.machine, proc.pid,
                  "pid " + std::to_string(proc.pid));
  }

  // One slice per event, spanning to the process's next event (the last
  // event of each process gets a zero-length slice).
  for (const auto& [proc, idxs] : per_proc) {
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      const std::int64_t ts = live.time_of(idxs[k]);
      const std::int64_t dur =
          k + 1 < idxs.size()
              ? std::max<std::int64_t>(0, live.time_of(idxs[k + 1]) - ts)
              : 0;
      emit_slice(list, std::string(meter::event_name(live.type_of(idxs[k]))),
                 "event", proc.machine, proc.pid, ts, dur);
    }
  }

  // Flow events: an "s"/"f" pair per matched message, drawn as an arrow
  // from the send slice to the receive slice.
  if (opts.flows) {
    std::int64_t flow_id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto send = live.matched_send_of(i);
      if (!send) continue;
      ++flow_id;
      const ProcKey sp = live.proc_of(*send);
      const ProcKey rp = live.proc_of(i);
      {
        std::string& o = list.item();
        append_kv(o, "ph", std::string("s"));
        o += ',';
        append_kv(o, "id", flow_id);
        o += ',';
        append_kv(o, "name", std::string("msg"));
        o += ',';
        append_kv(o, "cat", std::string("msg"));
        o += ',';
        append_kv(o, "pid", sp.machine);
        o += ',';
        append_kv(o, "tid", sp.pid);
        o += ',';
        append_kv(o, "ts", live.time_of(*send));
        o += '}';
      }
      {
        std::string& o = list.item();
        append_kv(o, "ph", std::string("f"));
        o += ',';
        append_kv(o, "bp", std::string("e"));
        o += ',';
        append_kv(o, "id", flow_id);
        o += ',';
        append_kv(o, "name", std::string("msg"));
        o += ',';
        append_kv(o, "cat", std::string("msg"));
        o += ',';
        append_kv(o, "pid", rp.machine);
        o += ',';
        append_kv(o, "tid", rp.pid);
        o += ',';
        append_kv(o, "ts", live.time_of(i));
        o += '}';
      }
    }
  }

  // The critical path, plotted in cost coordinates: slice k spans
  // [cost-so-far, cost-so-far + edge contribution], so the lane's total
  // width is the path cost and each slice's share is its attribution.
  if (opts.critical_path) {
    const LiveAnalysis::CriticalPath cp = live.critical_path();
    if (cp.valid && !cp.steps.empty()) {
      emit_metadata(out, list, "process_name", kCritPid, 0, "critical path");
      std::int64_t acc = 0;
      for (const LiveAnalysis::CritStep& step : cp.steps) {
        const std::string name =
            step.kind == EdgeKind::message
                ? proc_key_text(step.from_proc) + " -> " +
                      proc_key_text(step.to_proc)
                : "compute " + proc_key_text(step.to_proc);
        emit_slice(list, name, "critical", kCritPid, 0, acc, step.elapsed_us);
        acc += step.elapsed_us;
      }
    }
  }

  out += "\n]}\n";
  return out;
}

ChromeTraceCheck check_chrome_trace(const std::string& json_text) {
  ChromeTraceCheck out;
  std::string err;
  obs::JsonParser parser(json_text, &err);
  std::optional<obs::JsonValue> doc = parser.parse();
  if (!doc) {
    out.error = "parse error: " + err;
    return out;
  }
  if (doc->kind != obs::JsonValue::Kind::object) {
    out.error = "top level is not an object";
    return out;
  }
  const obs::JsonValue* events =
      obs::json_field(*doc, "traceEvents", obs::JsonValue::Kind::array);
  if (!events) {
    out.error = "missing traceEvents array";
    return out;
  }

  std::map<std::int64_t, std::int64_t> s_pid;  // flow id -> sending pid
  std::map<std::int64_t, std::int64_t> f_pid;
  for (const obs::JsonValue& ev : events->arr) {
    if (ev.kind != obs::JsonValue::Kind::object) {
      out.error = "traceEvents entry is not an object";
      return out;
    }
    const obs::JsonValue* ph =
        obs::json_field(ev, "ph", obs::JsonValue::Kind::string);
    if (!ph) {
      out.error = "entry lacks ph";
      return out;
    }
    ++out.events;
    const obs::JsonValue* pid =
        obs::json_field(ev, "pid", obs::JsonValue::Kind::number);
    if (!pid) {
      out.error = "entry lacks pid";
      return out;
    }
    if (ph->str == "X") {
      for (const char* key : {"tid", "ts", "dur"}) {
        if (!obs::json_field(ev, key, obs::JsonValue::Kind::number)) {
          out.error = std::string("X entry lacks ") + key;
          return out;
        }
      }
      if (!obs::json_field(ev, "name", obs::JsonValue::Kind::string)) {
        out.error = "X entry lacks name";
        return out;
      }
      ++out.slices;
    } else if (ph->str == "s" || ph->str == "f") {
      const obs::JsonValue* id =
          obs::json_field(ev, "id", obs::JsonValue::Kind::number);
      const obs::JsonValue* ts =
          obs::json_field(ev, "ts", obs::JsonValue::Kind::number);
      if (!id || !ts) {
        out.error = "flow entry lacks id/ts";
        return out;
      }
      (ph->str == "s" ? s_pid : f_pid)[id->as_i64()] = pid->as_i64();
    } else if (ph->str == "M") {
      const obs::JsonValue* name =
          obs::json_field(ev, "name", obs::JsonValue::Kind::string);
      const obs::JsonValue* args =
          obs::json_field(ev, "args", obs::JsonValue::Kind::object);
      if (name && name->str == "process_name" && args) {
        const obs::JsonValue* lane =
            obs::json_field(*args, "name", obs::JsonValue::Kind::string);
        if (lane && lane->str == "critical path") out.has_critical_path = true;
      }
    }
  }
  for (const auto& [id, spid] : s_pid) {
    auto it = f_pid.find(id);
    if (it == f_pid.end()) continue;
    ++out.flow_pairs;
    if (it->second != spid) ++out.cross_machine_flow_pairs;
  }
  if (out.flow_pairs != s_pid.size() || out.flow_pairs != f_pid.size()) {
    out.error = "unmatched flow events";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace dpm::analysis::live
