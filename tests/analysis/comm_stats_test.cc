#include "analysis/comm_stats.h"

#include <gtest/gtest.h>

#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterFork;
using meter::MeterRecv;
using meter::MeterRecvCall;
using meter::MeterSend;
using meter::MeterSockCrt;
using meter::MeterTermProc;

TEST(CommStats, PerProcessCounters) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 10000}, MeterSockCrt{1, 0, 5, 2, 1, 0}},
      {Stamp{0, 200, 10000}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{0, 300, 20000}, MeterSend{1, 0, 5, 36, ""}},
      {Stamp{0, 350, 20000}, MeterRecvCall{1, 0, 5}},
      {Stamp{0, 400, 20000}, MeterRecv{1, 0, 5, 128, ""}},
      {Stamp{0, 450, 20000}, MeterFork{1, 0, 2}},
      {Stamp{0, 500, 30000}, MeterTermProc{1, 0, 0}},
  });
  CommStats s = communication_statistics(trace);
  ASSERT_EQ(s.per_process.size(), 1u);
  const ProcessStats& p = s.per_process.at(ProcKey{0, 1});
  EXPECT_EQ(p.sends, 2u);
  EXPECT_EQ(p.send_bytes, 100u);
  EXPECT_EQ(p.recvs, 1u);
  EXPECT_EQ(p.recv_bytes, 128u);
  EXPECT_EQ(p.recv_calls, 1u);
  EXPECT_EQ(p.sockets_created, 1u);
  EXPECT_EQ(p.forks, 1u);
  EXPECT_TRUE(p.terminated);
  EXPECT_EQ(p.first_cpu_time, 100);
  EXPECT_EQ(p.last_cpu_time, 500);
  EXPECT_EQ(p.final_proc_time, 30000);
}

TEST(CommStats, Totals) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 1, 0}, MeterSend{1, 0, 5, 10, ""}},
      {Stamp{1, 2, 0}, MeterSend{2, 0, 6, 30, ""}},
      {Stamp{1, 3, 0}, MeterRecv{2, 0, 6, 10, ""}},
  });
  CommStats s = communication_statistics(trace);
  EXPECT_EQ(s.total_events, 3u);
  EXPECT_EQ(s.total_messages, 2u);
  EXPECT_EQ(s.total_bytes, 40u);
  EXPECT_EQ(s.per_process.size(), 2u);
}

TEST(CommStats, EmptyTrace) {
  Trace t;
  CommStats s = communication_statistics(t);
  EXPECT_EQ(s.total_events, 0u);
  EXPECT_TRUE(s.per_process.empty());
  EXPECT_TRUE(s.graph.edges.empty());
}

}  // namespace
}  // namespace dpm::analysis
