#include "sim/clock.h"

namespace dpm::sim {

std::int64_t MachineClock::skewed_us(std::int64_t true_us) const {
  const double skewed =
      static_cast<double>(true_us) * (1.0 + cfg_.drift_ppm * 1e-6) +
      static_cast<double>(cfg_.offset.count());
  const std::int64_t tick = cfg_.tick.count() > 0 ? cfg_.tick.count() : 1;
  const auto raw = static_cast<std::int64_t>(skewed);
  return (raw / tick) * tick;
}

}  // namespace dpm::sim
