// Filesystem + file descriptor + rcp (§3.5.3) + protection (§3.5.5).
#include <gtest/gtest.h>

#include "kernel/file_system.h"
#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

using util::Err;

class FileTest : public ::testing::Test {
 protected:
  FileTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
    world_.add_account_everywhere(200);
  }
  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(FileTest, WriteReadRoundTrip) {
  std::string got;
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    auto w = sys.open("data.txt", Sys::OpenMode::write_trunc);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(sys.write(*w, "line one\nline two\n").ok());
    ASSERT_TRUE(sys.close(*w).ok());
    auto r = sys.open("data.txt", Sys::OpenMode::read);
    ASSERT_TRUE(r.ok());
    auto data = sys.read(*r, 4096);
    ASSERT_TRUE(data.ok());
    got = util::to_string(*data);
  });
  world_.run();
  EXPECT_EQ(got, "line one\nline two\n");
}

TEST_F(FileTest, AppendModePreservesContent) {
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    auto a = sys.open("log", Sys::OpenMode::write_trunc);
    (void)sys.write(*a, "first\n");
    (void)sys.close(*a);
    auto b = sys.open("log", Sys::OpenMode::append);
    (void)sys.write(*b, "second\n");
    (void)sys.close(*b);
  });
  world_.run();
  EXPECT_EQ(world_.machine(machines_[0]).fs.read_text("log").value(),
            "first\nsecond\n");
}

TEST_F(FileTest, ReadMissingIsEnoent) {
  Err result = Err::ok;
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    result = sys.open("ghost", Sys::OpenMode::read).error();
  });
  world_.run();
  EXPECT_EQ(result, Err::enoent);
}

TEST_F(FileTest, ProtectionOnPrivateFiles) {
  world_.machine(machines_[0]).fs.put_text("secret", "shh", /*owner=*/100,
                                           /*world_readable=*/false);
  Err other_read = Err::ok, other_write = Err::ok, owner_read = Err::ok;
  (void)world_.spawn(machines_[0], "other", 200, [&](Sys& sys) {
    other_read = sys.open("secret", Sys::OpenMode::read).error();
    other_write = sys.open("secret", Sys::OpenMode::write_trunc).error();
  });
  (void)world_.spawn(machines_[0], "owner", 100, [&](Sys& sys) {
    owner_read = sys.open("secret", Sys::OpenMode::read).error();
  });
  world_.run();
  EXPECT_EQ(other_read, Err::eacces);
  EXPECT_EQ(other_write, Err::eacces);
  EXPECT_EQ(owner_read, Err::ok);
}

TEST_F(FileTest, RcpCopiesAcrossMachines) {
  world_.machine(machines_[0]).fs.put_text("prog.dat", "payload", 100);
  Err result = Err::eperm;
  (void)world_.spawn(machines_[0], "copier", 100, [&](Sys& sys) {
    result = sys.rcp("red", "prog.dat", "green", "prog.dat").error();
  });
  world_.run();
  EXPECT_EQ(result, Err::ok);
  EXPECT_EQ(world_.machine(machines_[1]).fs.read_text("prog.dat").value(),
            "payload");
}

TEST_F(FileTest, RcpPreservesExecutableness) {
  world_.programs().register_program(
      "noop", [](const std::vector<std::string>&) -> ProcessMain {
        return [](Sys&) {};
      });
  world_.machine(machines_[0]).fs.put_executable("bin/noop", "noop");
  (void)world_.spawn(machines_[0], "copier", 100, [&](Sys& sys) {
    ASSERT_TRUE(sys.rcp("red", "bin/noop", "green", "bin/noop").ok());
  });
  world_.run();
  auto pid = world_.spawn_file(machines_[1], "bin/noop", 100, {});
  EXPECT_TRUE(pid.ok());
  world_.run();
}

TEST_F(FileTest, RcpUnknownHostFails) {
  Err result = Err::ok;
  (void)world_.spawn(machines_[0], "copier", 100, [&](Sys& sys) {
    result = sys.rcp("red", "x", "mauve", "x").error();
  });
  world_.run();
  EXPECT_EQ(result, Err::enoent);
}

TEST_F(FileTest, SharedOffsetAcrossFork) {
  // Open files are shared across fork (same table entry): the child's
  // read continues at the parent's offset.
  world_.machine(machines_[0]).fs.put_text("seq", "abcdef", 100);
  std::string parent_part, child_part;
  (void)world_.spawn(machines_[0], "parent", 100, [&](Sys& sys) {
    auto fd = sys.open("seq", Sys::OpenMode::read);
    ASSERT_TRUE(fd.ok());
    parent_part = util::to_string(*sys.read(*fd, 3));
    auto child = sys.fork([fd = *fd, &child_part](Sys& csys) {
      child_part = util::to_string(*csys.read(fd, 3));
    });
    ASSERT_TRUE(child.ok());
    (void)sys.waitchange(true);
  });
  world_.run();
  EXPECT_EQ(parent_part, "abc");
  EXPECT_EQ(child_part, "def");
}

TEST_F(FileTest, UnlinkRespectsOwnership) {
  world_.machine(machines_[0]).fs.put_text("mine", "x", 100);
  Err other = Err::ok, owner = Err::eperm;
  (void)world_.spawn(machines_[0], "other", 200, [&](Sys& sys) {
    other = sys.unlink("mine").error();
  });
  (void)world_.spawn(machines_[0], "owner", 100, [&](Sys& sys) {
    sys.sleep(util::msec(1));
    owner = sys.unlink("mine").error();
  });
  world_.run();
  EXPECT_EQ(other, Err::eacces);
  EXPECT_EQ(owner, Err::ok);
  EXPECT_FALSE(world_.machine(machines_[0]).fs.exists("mine"));
}

TEST_F(FileTest, HostPipeStdio) {
  auto in = std::make_shared<HostPipe>();
  auto out = std::make_shared<HostPipe>();
  SpawnOpts opts;
  opts.stdin_fd = Descriptor::for_pipe(in);
  opts.stdout_fd = Descriptor::for_pipe(out);
  in->host_write("echo me\n");
  in->closed = true;
  (void)world_.spawn(machines_[0], "echoer", 100, [&](Sys& sys) {
    for (;;) {
      auto line = sys.read_line();
      if (!line.ok() || !line->has_value()) break;
      (void)sys.print("got: " + **line + "\n");
    }
  }, opts);
  world_.run();
  EXPECT_EQ(out->host_drain(), "got: echo me\n");
}

}  // namespace
}  // namespace dpm::kernel
