file(REMOVE_RECURSE
  "libdpm_sim.a"
)
