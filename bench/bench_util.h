// Shared setup for the benchmark harness.
//
// The benchmarks report *simulated* costs (the quantity the paper cares
// about: how much the monitor perturbs the computation) as benchmark
// counters, alongside the real-time throughput of the simulator itself.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "control/session.h"
#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/meterflags.h"

namespace dpm::bench {

/// A world with `n` machines named m0..m(n-1), monitor installed, daemons
/// running, and account 100 everywhere.
inline std::unique_ptr<kernel::World> make_world(std::size_t n,
                                                 kernel::WorldConfig cfg = {}) {
  auto world = std::make_unique<kernel::World>(cfg);
  for (std::size_t i = 0; i < n; ++i) {
    world->add_machine("m" + std::to_string(i));
  }
  control::install_monitor(*world);
  apps::install_everywhere(*world);
  world->add_account_everywhere(100);
  return world;
}

/// Simulated microseconds elapsed in the world.
inline double sim_us(const kernel::World& world) {
  return static_cast<double>(util::count_us(world.now()));
}

}  // namespace dpm::bench
