# Empty compiler generated dependencies file for dpm_daemon.
# This may be replaced when dependencies are built.
