file(REMOVE_RECURSE
  "CMakeFiles/dpm_filter.dir/filter/count_filter.cc.o"
  "CMakeFiles/dpm_filter.dir/filter/count_filter.cc.o.d"
  "CMakeFiles/dpm_filter.dir/filter/descriptions.cc.o"
  "CMakeFiles/dpm_filter.dir/filter/descriptions.cc.o.d"
  "CMakeFiles/dpm_filter.dir/filter/filter_program.cc.o"
  "CMakeFiles/dpm_filter.dir/filter/filter_program.cc.o.d"
  "CMakeFiles/dpm_filter.dir/filter/templates.cc.o"
  "CMakeFiles/dpm_filter.dir/filter/templates.cc.o.d"
  "CMakeFiles/dpm_filter.dir/filter/trace.cc.o"
  "CMakeFiles/dpm_filter.dir/filter/trace.cc.o.d"
  "libdpm_filter.a"
  "libdpm_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
