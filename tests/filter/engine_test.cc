// FilterEngine: framing, selection, reduction, statistics.
#include "filter/filter_program.h"

#include <gtest/gtest.h>

#include "filter/trace.h"
#include "meter/metermsgs.h"

namespace dpm::filter {
namespace {

meter::MeterMsg stamped(meter::MeterBody body, std::uint16_t machine = 0) {
  meter::MeterMsg m;
  m.body = std::move(body);
  m.header.machine = machine;
  m.header.cpu_time = 1000;
  m.header.proc_time = 0;
  return m;
}

FilterEngine make_engine(const std::string& rules) {
  auto d = Descriptions::parse(default_descriptions_text());
  auto t = Templates::parse(rules);
  EXPECT_TRUE(d.has_value());
  EXPECT_TRUE(t.has_value());
  return FilterEngine(std::move(*d), std::move(*t));
}

TEST(FilterEngine, AcceptsAllWithoutRules) {
  FilterEngine e = make_engine("");
  util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, "d"}).serialize();
  const std::string out = e.feed(1, wire);
  auto records = parse_trace(out).records;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event_name, "SEND");
  EXPECT_EQ(e.stats().accepted, 1u);
}

TEST(FilterEngine, SelectsByRule) {
  FilterEngine e = make_engine("machine=5\n");
  util::Bytes wire;
  auto add = [&wire](std::uint16_t m) {
    auto one = stamped(meter::MeterSend{1, 0, 2, 10, ""}, m).serialize();
    wire.insert(wire.end(), one.begin(), one.end());
  };
  add(5);
  add(4);
  add(5);
  const std::string out = e.feed(1, wire);
  EXPECT_EQ(parse_trace(out).records.size(), 2u);
  EXPECT_EQ(e.stats().records_in, 3u);
  EXPECT_EQ(e.stats().accepted, 2u);
  EXPECT_EQ(e.stats().rejected, 1u);
}

TEST(FilterEngine, HandlesSplitRecordsAcrossFeeds) {
  FilterEngine e = make_engine("");
  util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, "name"}).serialize();
  // Deliver byte by byte, as a stream may.
  std::string out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    out += e.feed(7, util::Bytes{wire[i]});
  }
  EXPECT_EQ(parse_trace(out).records.size(), 1u);
}

TEST(FilterEngine, KeepsConnectionsSeparate) {
  FilterEngine e = make_engine("");
  util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, ""}).serialize();
  util::Bytes half1(wire.begin(), wire.begin() + 10);
  util::Bytes half2(wire.begin() + 10, wire.end());
  // Interleave two connections' partial records.
  std::string out;
  out += e.feed(1, half1);
  out += e.feed(2, half1);
  out += e.feed(1, half2);
  out += e.feed(2, half2);
  EXPECT_EQ(parse_trace(out).records.size(), 2u);
}

TEST(FilterEngine, DiscardReducesBytesOut) {
  FilterEngine keep = make_engine("machine=*\n");
  FilterEngine drop = make_engine("machine=#*, pid=#*, cpuTime=#*\n");
  util::Bytes wire;
  for (int i = 0; i < 20; ++i) {
    auto one = stamped(meter::MeterSend{1, 0, 2, 10, "x"}).serialize();
    wire.insert(wire.end(), one.begin(), one.end());
  }
  (void)keep.feed(1, wire);
  (void)drop.feed(1, wire);
  EXPECT_EQ(keep.stats().accepted, 20u);
  EXPECT_EQ(drop.stats().accepted, 20u);
  EXPECT_LT(drop.stats().bytes_out, keep.stats().bytes_out);
}

TEST(FilterEngine, GarbageDesyncIsContained) {
  FilterEngine e = make_engine("");
  util::Bytes junk(64, 0xff);  // size field will be absurd
  EXPECT_EQ(e.feed(1, junk), "");
  EXPECT_EQ(e.stats().malformed, 1u);
  // The engine recovers for subsequent well-formed input.
  util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, ""}).serialize();
  EXPECT_EQ(parse_trace(e.feed(1, wire)).records.size(), 1u);
}

TEST(FilterEngine, EndConnectionDropsPartialState) {
  FilterEngine e = make_engine("");
  util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, ""}).serialize();
  (void)e.feed(1, util::Bytes(wire.begin(), wire.begin() + 8));
  e.end_connection(1);
  // Feeding the rest alone cannot form a record.
  EXPECT_EQ(e.feed(1, util::Bytes(wire.begin() + 8, wire.end())), "");
}

TEST(FilterEngine, TruncatedTailIsCountedNotSilent) {
  // A connection that dies mid-record leaves a cut-short tail; ending the
  // connection must account for it (malformed + truncated), and complete
  // records before the cut must still be selected.
  FilterEngine e = make_engine("");
  util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, "x"}).serialize();
  util::Bytes batch = wire;
  batch.insert(batch.end(), wire.begin(), wire.end() - 5);  // cut the 2nd
  (void)e.feed(1, batch);
  EXPECT_EQ(e.stats().records_in, 1u);
  EXPECT_EQ(e.stats().accepted, 1u);
  e.end_connection(1);
  EXPECT_EQ(e.stats().malformed, 1u);
  EXPECT_EQ(e.stats().truncated, 1u);

  // A connection that ends exactly on a record boundary counts nothing.
  (void)e.feed(2, wire);
  e.end_connection(2);
  EXPECT_EQ(e.stats().malformed, 1u);
  EXPECT_EQ(e.stats().truncated, 1u);
  // Ending an unknown connection is a no-op.
  e.end_connection(99);
  EXPECT_EQ(e.stats().truncated, 1u);
}

}  // namespace
}  // namespace dpm::filter
