// Socket lifecycle and stream delivery (World methods).
//
// Sockets are never deallocated during a run: destruction marks the object
// closed ("zombie"), releases its names, drains its queues and wakes every
// waiter. This guarantees that syscall code blocked on a socket can safely
// re-examine it after waking, with no dangling references.
#include "kernel/socket.h"

#include <cassert>

#include "kernel/world.h"
#include "util/logging.h"

namespace dpm::kernel {
namespace {

/// Framed records remaining in a meter conn's rbuf past the read cursor:
/// `head` = 1 if a frame was partially consumed at the cursor (its
/// remainder — possibly the whole buffer — is skipped), `complete` = full
/// frames after it, `tail` = 1 if trailing bytes do not form a whole
/// frame.
struct FrameRemainder {
  std::uint64_t head = 0;
  std::uint64_t complete = 0;
  std::uint64_t tail = 0;
};

/// Core of the remainder walk over any indexable byte source: the receive
/// buffer on the legacy transport, the ring's wrap-aware spans on the ring
/// transport. `at(i)` must be valid for i in [0, n).
template <typename ByteAt>
FrameRemainder count_frames_over(const Socket& s, std::size_t n, ByteAt at) {
  FrameRemainder out;
  std::size_t pos = 0;
  std::uint8_t hdr[4] = {s.frame_hdr[0], s.frame_hdr[1], s.frame_hdr[2],
                         s.frame_hdr[3]};
  std::uint8_t hdr_have = s.frame_hdr_have;
  std::uint32_t need = s.frame_need;
  if (hdr_have > 0 || need > 0) {
    out.head = 1;
    if (need == 0) {
      while (hdr_have < 4 && pos < n) hdr[hdr_have++] = at(pos++);
      if (hdr_have < 4) return out;  // remainder all belongs to the head
      const std::uint32_t size = static_cast<std::uint32_t>(hdr[0]) |
                                 static_cast<std::uint32_t>(hdr[1]) << 8 |
                                 static_cast<std::uint32_t>(hdr[2]) << 16 |
                                 static_cast<std::uint32_t>(hdr[3]) << 24;
      need = size > 4 ? size - 4 : 0;
    }
    if (n - pos < need) return out;  // head frame swallows the rest
    pos += need;
  }
  while (n - pos >= 4) {
    const std::uint32_t size =
        static_cast<std::uint32_t>(at(pos)) |
        static_cast<std::uint32_t>(at(pos + 1)) << 8 |
        static_cast<std::uint32_t>(at(pos + 2)) << 16 |
        static_cast<std::uint32_t>(at(pos + 3)) << 24;
    if (size < 4 || n - pos < size) break;  // cut-short (or garbage) tail
    pos += size;
    ++out.complete;
  }
  if (pos < n) out.tail = 1;
  return out;
}

FrameRemainder count_remaining_frames(const Socket& s) {
  if (s.ring_rx && s.ring && !s.ring->empty()) {
    const auto sp = s.ring->spans();
    return count_frames_over(
        s, sp[0].size + sp[1].size, [&sp](std::size_t i) {
          return i < sp[0].size ? sp[0].data[i] : sp[1].data[i - sp[0].size];
        });
  }
  return count_frames_over(s, s.rbuf.size(),
                           [&s](std::size_t i) { return s.rbuf[i]; });
}

}  // namespace

SocketId World::create_socket(MachineId m, SockDomain domain, SockType type) {
  const SocketId id = next_socket_++;
  sockets_[id] = std::make_unique<Socket>(id, m, domain, type);
  return id;
}

Socket* World::find_socket(SocketId id) {
  auto it = sockets_.find(id);
  if (it == sockets_.end()) return nullptr;
  if (it->second->sstate == Socket::StreamState::closed &&
      it->second->refs == 0) {
    return nullptr;  // destroyed; object kept only for parked waiters
  }
  return it->second.get();
}

Socket& World::socket(SocketId id) {
  auto it = sockets_.find(id);
  assert(it != sockets_.end());
  return *it->second;
}

void World::socket_ref(SocketId id) {
  if (id == 0) return;
  Socket* s = find_socket(id);
  assert(s);
  ++s->refs;
}

void World::socket_unref(SocketId id) {
  if (id == 0) return;
  auto it = sockets_.find(id);
  assert(it != sockets_.end());
  Socket& s = *it->second;
  assert(s.refs > 0);
  if (--s.refs == 0) destroy_socket(id);
}

void World::destroy_socket(SocketId id) {
  Socket& s = socket(id);

  // Release name bindings.
  Machine& m = machine(s.machine);
  if (s.bound) {
    if (s.name.family == net::Family::internet) {
      auto it = m.inet_bound.find(s.name.port);
      if (it != m.inet_bound.end() && it->second == id) m.inet_bound.erase(it);
    } else if (s.name.family == net::Family::unix_path) {
      auto it = m.unix_bound.find(s.name.path);
      if (it != m.unix_bound.end() && it->second == id) m.unix_bound.erase(it);
    }
  }

  // A dying listener destroys its queued, not-yet-accepted connections.
  for (SocketId conn_id : s.accept_queue) {
    Socket* conn = find_socket(conn_id);
    if (conn && conn->refs == 0) {
      close_stream(*conn);
      conn->sstate = Socket::StreamState::closed;
      conn->readers.wake_all(exec_);
      conn->writers.wake_all(exec_);
    }
  }
  s.accept_queue.clear();

  if (s.sstate == Socket::StreamState::connected) close_stream(s);
  s.sstate = Socket::StreamState::closed;
  if (s.is_meter_conn &&
      (!s.rbuf.empty() || s.frame_hdr_have > 0 || s.frame_need > 0 ||
       (s.ring_rx && s.ring && !s.ring->empty()))) {
    // Undelivered meter bytes die with the socket. Frame them the way the
    // filter would have: complete unread records are stranded, records cut
    // short (a partially-consumed head, a partial tail) are malformed —
    // the loss is counted record by record, not silent. The loss lands in
    // the ledger the conn belongs to: tier 0 (process→filter) or tier 1
    // (fan-in), never both.
    const FrameRemainder rem = count_remaining_frames(s);
    obs::Counter* stranded =
        s.meter_tier == 0 ? mobs_.stranded_records : fobs_.stranded;
    obs::Counter* malformed =
        s.meter_tier == 0 ? mobs_.malformed_records : fobs_.malformed;
    if (rem.complete) stranded->add(rem.complete);
    if (rem.head + rem.tail) malformed->add(rem.head + rem.tail);
    s.frame_hdr_have = 0;
    s.frame_need = 0;
  }
  if (s.is_meter_conn && s.meter_tier == 1) {
    fobs_.queue_bytes->sub(static_cast<std::int64_t>(s.rbuf.size()));
  }
  mobs_.rbuf_bytes->sub(static_cast<std::int64_t>(s.rbuf.size()));
  s.rbuf.clear();
  if (s.ring) {
    if (s.ring_rx) {
      // The draining endpoint dies: whatever ring residue was just booked
      // as stranded/malformed is discarded, and the ring is closed so any
      // surviving producer degrades instead of writing into the void.
      mobs_.ring_occupancy->sub(static_cast<std::int64_t>(s.ring->size()));
      s.ring->clear();
      s.ring->closed = true;
    }
    s.ring.reset();
  }
  s.dgrams.clear();
  s.readers.wake_all(exec_);
  s.writers.wake_all(exec_);
  s.connectors.wake_all(exec_);
}

void World::close_stream(Socket& s) {
  if (s.sstate != Socket::StreamState::connected || s.peer == 0) return;
  const SocketId peer_id = s.peer;
  Socket* peer = find_socket(peer_id);
  s.sstate = Socket::StreamState::closed;
  s.peer = 0;
  if (!peer) return;
  // EOF must arrive after any data still in flight: ship it on the same
  // ordered channel.
  fabric_.send(s.net_hint, s.machine, peer->machine, s.tx_channel,
               /*droppable=*/false, 1, [this, peer_id] { deliver_eof(peer_id); });
}

void World::kernel_stream_send(SocketId from, util::Bytes data,
                               std::uint32_t meter_msgs) {
  Socket* s = find_socket(from);
  // Appendix C: "Meter messages are lost if they are sent on an
  // unconnected socket." For meter batches the loss is accounted, not
  // silent.
  if (!s || s->sstate != Socket::StreamState::connected || s->peer == 0) {
    if (meter_msgs) mobs_.lost_records->add(meter_msgs);
    return;
  }
  Socket* peer = find_socket(s->peer);
  if (!peer) {
    if (meter_msgs) mobs_.lost_records->add(meter_msgs);
    return;
  }
  const SocketId peer_id = peer->id;
  const std::size_t n = data.size();
  fabric_.send(s->net_hint, s->machine, peer->machine, s->tx_channel,
               /*droppable=*/false, n,
               [this, peer_id, meter_msgs, data = std::move(data)]() mutable {
                 auto it = sockets_.find(peer_id);
                 Socket* p = it == sockets_.end() ? nullptr : it->second.get();
                 if (!p || (p->sstate == Socket::StreamState::closed &&
                            p->refs == 0)) {
                   // The connection died while the batch was in flight.
                   if (meter_msgs) mobs_.lost_records->add(meter_msgs);
                   return;
                 }
                 deliver_stream(peer_id, std::move(data), /*accounted=*/false);
               });
}

void World::kernel_ring_wakeup(SocketId from, bool reliable) {
  Socket* s = find_socket(from);
  if (!s || s->sstate != Socket::StreamState::connected || s->peer == 0) return;
  Socket* peer = find_socket(s->peer);
  if (!peer) return;
  if (s->ring) {
    s->ring->unsignalled_bytes = 0;
    s->ring->unsignalled_records = 0;
  }
  mobs_.ring_wakeups->add(1);
  const SocketId peer_id = peer->id;
  // The data already sits in the shared ring; only this one-byte doorbell
  // crosses the fabric. Threshold wakeups are droppable (the fault fabric
  // may eat or delay them — a later wakeup, flush, or EOF re-arms the
  // consumer); flush-forced wakeups ride reliably so termination always
  // drains the ring.
  fabric_.send(s->net_hint, s->machine, peer->machine, s->tx_channel,
               /*droppable=*/!reliable, 1, [this, peer_id] {
                 auto it = sockets_.find(peer_id);
                 if (it == sockets_.end()) return;
                 it->second->readers.wake_all(exec_);
               });
}

void World::meter_consume(Socket& s, const std::uint8_t* data, std::size_t n) {
  // Consumption counts into the conn's own tier ledger: records a local
  // filter reads off process edges are tier 0; records an aggregator or
  // the session filter reads off fan-in edges are tier 1.
  obs::Counter* consumed_ctr =
      s.meter_tier == 0 ? mobs_.consumed_records : fobs_.consumed;
  std::uint64_t consumed = 0;
  while (n > 0) {
    if (s.frame_need == 0) {
      std::uint32_t size;
      if (s.frame_hdr_have == 0 && n >= 4) {
        // Whole size word available in place — the steady state for every
        // record after the first of a chunk.
        size = static_cast<std::uint32_t>(data[0]) |
               static_cast<std::uint32_t>(data[1]) << 8 |
               static_cast<std::uint32_t>(data[2]) << 16 |
               static_cast<std::uint32_t>(data[3]) << 24;
        data += 4;
        n -= 4;
      } else {
        while (s.frame_hdr_have < 4 && n > 0) {
          s.frame_hdr[s.frame_hdr_have++] = *data++;
          --n;
        }
        if (s.frame_hdr_have < 4) {
          consumed_ctr->add(consumed);
          return;
        }
        size = static_cast<std::uint32_t>(s.frame_hdr[0]) |
               static_cast<std::uint32_t>(s.frame_hdr[1]) << 8 |
               static_cast<std::uint32_t>(s.frame_hdr[2]) << 16 |
               static_cast<std::uint32_t>(s.frame_hdr[3]) << 24;
        s.frame_hdr_have = 0;
      }
      if (size <= 4) {  // degenerate frame: complete at its header
        ++consumed;
        continue;
      }
      s.frame_need = size - 4;
    }
    const std::size_t take = n < s.frame_need ? n : s.frame_need;
    s.frame_need -= static_cast<std::uint32_t>(take);
    data += take;
    n -= take;
    if (s.frame_need == 0) ++consumed;
  }
  consumed_ctr->add(consumed);
}

MeterConservation World::meter_conservation() const {
  MeterConservation c;
  c.emitted = mobs_.events->value();
  c.consumed = mobs_.consumed_records->value();
  c.dropped = mobs_.dropped_records->value();
  c.lost = mobs_.lost_records->value();
  c.stranded = mobs_.stranded_records->value();
  c.malformed = mobs_.malformed_records->value();
  for (const auto& [mid, m] : machines_) {
    for (const auto& [pid, p] : m->procs) c.pending += p->meter_pending_count;
  }
  for (const auto& [id, sp] : sockets_) {
    const Socket& s = *sp;
    if (!s.is_meter_conn || s.meter_tier != 0) continue;
    if (s.sstate == Socket::StreamState::closed && s.refs == 0) continue;
    const FrameRemainder rem = count_remaining_frames(s);
    c.buffered += rem.head + rem.complete + rem.tail;
  }
  return c;
}

FanInConservation World::fanin_conservation() const {
  FanInConservation c;
  c.forwarded = fobs_.forwarded->value();
  c.consumed = fobs_.consumed->value();
  c.lost = fobs_.lost->value();
  c.overflow = fobs_.overflow_records->value();
  c.stranded = fobs_.stranded->value();
  c.malformed = fobs_.malformed->value();
  for (const auto& [id, sp] : sockets_) {
    const Socket& s = *sp;
    if (!s.is_meter_conn || s.meter_tier != 1) continue;
    if (s.sstate == Socket::StreamState::closed && s.refs == 0) continue;
    const FrameRemainder rem = count_remaining_frames(s);
    c.buffered += rem.head + rem.complete + rem.tail;
  }
  return c;
}

bool World::kernel_fanin_forward(SocketId from, util::Bytes data,
                                 std::uint32_t records) {
  // Every record entering the tier is counted here; the branches below put
  // each one in exactly one terminal or in-transit bucket.
  fobs_.forwarded->add(records);
  Socket* s = find_socket(from);
  if (!s || s->sstate != Socket::StreamState::connected || s->peer == 0 ||
      s->eof) {
    fobs_.lost->add(records);
    return false;
  }
  Socket* peer = find_socket(s->peer);
  if (!peer) {
    fobs_.lost->add(records);
    return false;
  }
  const SocketId peer_id = peer->id;
  const std::size_t n = data.size();
  fabric_.send(
      s->net_hint, s->machine, peer->machine, s->tx_channel,
      /*droppable=*/false, n,
      [this, peer_id, records, data = std::move(data)]() mutable {
        auto it = sockets_.find(peer_id);
        Socket* p = it == sockets_.end() ? nullptr : it->second.get();
        if (!p ||
            (p->sstate == Socket::StreamState::closed && p->refs == 0)) {
          // The edge died while the batch was in flight.
          fobs_.lost->add(records);
          return;
        }
        if (p->rbuf.size() >= cfg_.fanin_queue_bytes) {
          // Backpressure by accounted drop: the receiver is not draining.
          // Batches are frame-aligned, so the whole batch goes — records
          // are never cut in half by overflow.
          fobs_.overflow_records->add(records);
          fobs_.overflow_bytes->add(data.size());
          return;
        }
        deliver_stream(peer_id, std::move(data), /*accounted=*/false);
      });
  return true;
}

void World::deliver_stream(SocketId to, util::Bytes data, bool accounted) {
  auto it = sockets_.find(to);
  if (it == sockets_.end()) return;
  Socket& s = *it->second;
  if (accounted) {
    assert(s.in_flight >= data.size());
    s.in_flight -= data.size();
  }
  if (s.sstate == Socket::StreamState::closed && s.refs == 0) return;
  s.rbuf.insert(s.rbuf.end(), data.begin(), data.end());
  mobs_.rbuf_bytes->add(static_cast<std::int64_t>(data.size()));
  if (s.is_meter_conn && s.meter_tier == 1) {
    // Tier-1 occupancy gauge: its high-water is the aggregator-occupancy
    // instrument the backpressure policy is judged by.
    fobs_.queue_bytes->add(static_cast<std::int64_t>(data.size()));
  }
  s.readers.wake_all(exec_);
}

void World::deliver_eof(SocketId to) {
  auto it = sockets_.find(to);
  if (it == sockets_.end()) return;
  Socket& s = *it->second;
  s.eof = true;
  s.readers.wake_all(exec_);
  s.writers.wake_all(exec_);
}

}  // namespace dpm::kernel
