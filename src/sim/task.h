// Cooperative tasks: simulated processes as suspendable activities.
//
// Each task runs its body on a dedicated OS thread, but exactly one thread
// (either the executive or one task) is ever running: control is handed
// over explicitly through resume()/park(). This gives natural blocking
// syscalls inside process bodies while keeping the simulation
// single-threaded in effect — and therefore deterministic.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace dpm::sim {

/// Thrown inside a task body when the task is aborted (process killed while
/// blocked, or simulation teardown). Process bodies must let it propagate;
/// the task wrapper catches it.
struct TaskAborted {};

class Task {
 public:
  using Body = std::function<void()>;

  explicit Task(std::string name);
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Launches the body; the task stays suspended until the first resume().
  void start(Body body);

  /// Executive side: runs the task until it parks or finishes.
  /// Precondition: started, not finished, not currently running.
  void resume();

  /// Task side: yields control back to the executive; returns when resumed.
  /// Throws TaskAborted if an abort was requested.
  void park();

  /// Marks the task for abortion; the next park()/resume boundary throws
  /// TaskAborted inside the body. Safe to call multiple times.
  void request_abort();

  /// Joins the OS thread once the body has finished, releasing its stack
  /// mapping. An exited-but-unjoined thread pins one stack mapping each;
  /// at cluster scale (100k+ simulated processes per world) that hits
  /// vm.max_map_count long before memory runs out. No-op until finished.
  void reap();

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  bool abort_requested() const { return abort_; }
  const std::string& name() const { return name_; }

 private:
  enum class Turn { executive, task };

  void task_side_wait_for_turn();

  std::string name_;
  Body body_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::executive;
  bool started_ = false;
  bool finished_ = false;
  bool abort_ = false;
};

}  // namespace dpm::sim
