#include "analysis/comm_stats.h"

namespace dpm::analysis {

CommStats communication_statistics(const Trace& trace) {
  CommStats out;
  out.graph = build_comm_graph(trace);

  for (const Event& e : trace.events) {
    ProcessStats& p = out.per_process[e.proc()];
    ++out.total_events;
    if (p.first_cpu_time == 0 && p.last_cpu_time == 0) {
      p.first_cpu_time = e.cpu_time;
    }
    p.last_cpu_time = e.cpu_time;
    p.final_proc_time = e.proc_time;

    switch (e.type) {
      case meter::EventType::send:
        ++p.sends;
        p.send_bytes += e.msg_length;
        ++out.total_messages;
        out.total_bytes += e.msg_length;
        break;
      case meter::EventType::recv:
        ++p.recvs;
        p.recv_bytes += e.msg_length;
        break;
      case meter::EventType::recvcall:
        ++p.recv_calls;
        break;
      case meter::EventType::sockcrt:
        ++p.sockets_created;
        break;
      case meter::EventType::destsock:
        ++p.sockets_closed;
        break;
      case meter::EventType::fork:
        ++p.forks;
        break;
      case meter::EventType::accept:
        ++p.accepts;
        break;
      case meter::EventType::connect:
        ++p.connects;
        break;
      case meter::EventType::termproc:
        p.terminated = true;
        break;
      case meter::EventType::dup:
        break;
    }
  }
  return out;
}

}  // namespace dpm::analysis
