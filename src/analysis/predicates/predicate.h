// Global predicate specifications over meter-record state.
//
// The 1985 paper's analyses summarize a deduced event order after the
// fact; the predicate layer asks the online question "did P ever hold?"
// for conjunctive global predicates in the Garg–Waldecker sense: a
// conjunction of per-process state clauses, optionally guarded by
// channel-reachability conjuncts, detected on the happens-before lattice
// (Cooper–Marzullo possibly/definitely, DESIGN.md §12).
//
// Spec grammar (one predicate per spec):
//
//   <name>: <conjunct> [& <conjunct>]*
//   conjunct  := @<sel> <clause>[, <clause>]*        per-process state
//              | reach @<sel> -> @<sel>              channel reachability
//   sel       := <machine>:<pid> | <machine>:* | *
//   clause    := <field> <op> <value>                template syntax
//
// Clauses reuse the filter-template comparison model (templates.h): ops
// =, !=, <, >, <=, >=; the wildcard value '*' (only with '=') asserts
// presence; values compare numerically when both sides have a numeric
// view and textually otherwise. The pseudo-field `type` names the event
// type ("SEND" or its number) and tracks the process's most recent event.
//
// A spec is *compiled* against the record descriptions the way
// CompiledTemplates is: every clause field must be carried by at least
// one described event type (or be a header/pseudo field), and the
// compiler resolves, per event type, which state fields that type
// updates — the detector then re-evaluates a conjunct only when an event
// can have changed it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/trace_reader.h"
#include "filter/descriptions.h"
#include "filter/templates.h"
#include "meter/metermsgs.h"

namespace dpm::analysis::pred {

/// Which concrete processes a conjunct may bind to. A wildcard pid (or a
/// fully wild selector) instantiates once per matching process observed.
struct ProcSelector {
  std::optional<std::uint16_t> machine;  // nullopt = any machine
  std::optional<std::int32_t> pid;       // nullopt = any pid

  bool matches(const ProcKey& k) const {
    return (!machine || *machine == k.machine) && (!pid || *pid == k.pid);
  }
  std::string to_string() const;
};

/// One per-process state clause, template-style.
struct StateClause {
  std::string field;
  filter::CmpOp op = filter::CmpOp::eq;
  bool wildcard = false;  // '*' value: field present
  std::string value;      // raw literal token
};

struct LocalConjunct {
  ProcSelector sel;
  std::vector<StateClause> clauses;
};

struct ReachConjunct {
  ProcSelector from;
  ProcSelector to;
};

struct PredicateSpec {
  std::string name;
  std::vector<LocalConjunct> locals;
  std::vector<ReachConjunct> reaches;

  /// Parses one spec line; nullopt + `error` on malformed input.
  static std::optional<PredicateSpec> parse(std::string_view text,
                                            std::string* error = nullptr);
  /// Canonical text; round-trips through parse().
  std::string to_string() const;
};

// ---- compilation ----------------------------------------------------------

/// Dense ids for the state fields a detector tracks. The universe is the
/// fixed set of fields the standard meter can produce (the Event struct's
/// members) plus the pseudo-field `type`.
using FieldId = std::uint8_t;
inline constexpr FieldId kNoField = 0xff;

/// Name → FieldId for the known state fields; kNoField when unknown.
FieldId state_field_id(std::string_view name);
/// Number of known state fields (FieldIds are < this).
std::size_t state_field_count();
/// The value event `e` assigns to `id` (`type` renders as the event name).
filter::FieldValue state_field_value(const Event& e, FieldId id);

/// A clause with its field resolved and its value pre-analyzed.
struct CompiledClause {
  FieldId field = kNoField;
  filter::CmpOp op = filter::CmpOp::eq;
  bool wildcard = false;
  std::string value;                        // literal text
  std::optional<std::int64_t> value_num;    // numeric view, when it has one


  /// Template comparison semantics against a current state value.
  bool holds(const filter::FieldValue& v) const;
};

struct CompiledConjunct {
  ProcSelector sel;
  std::vector<CompiledClause> clauses;
  /// Union of clause fields, as a bitmask over FieldId (fits: the field
  /// universe is 15 entries). An event re-evaluates the conjunct only
  /// when it updates one of these.
  std::uint32_t field_mask = 0;
};

/// A predicate resolved against record descriptions, plus the per-type
/// state-update table shared by every predicate compiled from `desc`.
class CompiledPredicate {
 public:
  /// Validates every clause field against the descriptions (a field must
  /// be a header field, a described body field of some type, or `type`)
  /// and pre-resolves values. nullopt + `error` on unknown fields, type
  /// names, or empty conjunct lists.
  static std::optional<CompiledPredicate> compile(
      const PredicateSpec& spec, const filter::Descriptions& desc,
      std::string* error = nullptr);

  const PredicateSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  const std::vector<CompiledConjunct>& locals() const { return locals_; }
  const std::vector<ReachConjunct>& reaches() const { return spec_.reaches; }

 private:
  PredicateSpec spec_;
  std::vector<CompiledConjunct> locals_;
};

/// Per-event-type state-update table resolved from descriptions once per
/// detector: update_mask(t) is the FieldId bitmask of state fields an
/// event of type t carries (header fields and `type` always included).
class StateUpdateTable {
 public:
  explicit StateUpdateTable(const filter::Descriptions& desc);
  std::uint32_t update_mask(meter::EventType t) const;

 private:
  static constexpr std::size_t kTypes = 16;
  std::uint32_t masks_[kTypes] = {};
  std::uint32_t default_mask_ = 0;
};

}  // namespace dpm::analysis::pred
