// Selection rules / templates — Figs 3.3 and 3.4, using the paper's own
// example rules.
#include "filter/templates.h"

#include <gtest/gtest.h>

#include "meter/metermsgs.h"

namespace dpm::filter {
namespace {

Record make_record(std::initializer_list<std::pair<std::string, FieldValue>> fields,
                   const std::string& name = "SEND") {
  Record r;
  r.event_name = name;
  for (auto& [k, v] : fields) r.fields.emplace_back(k, v);
  return r;
}

TEST(Templates, EmptyFileAcceptsEverything) {
  auto t = Templates::parse(default_templates_text());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->rule_count(), 0u);
  auto d = t->evaluate(make_record({{"machine", std::int64_t{1}}}));
  EXPECT_TRUE(d.accept);
  EXPECT_TRUE(d.discard.empty());
}

TEST(Templates, PaperFig33FirstRule) {
  // "machine=5, cpuTime<10000" matches records from machine 5 stamped
  // with cpuTime under 10000.
  auto t = Templates::parse("machine=5, cpuTime<10000\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->evaluate(make_record({{"machine", std::int64_t{5}},
                                       {"cpuTime", std::int64_t{9000}}}))
                  .accept);
  EXPECT_FALSE(t->evaluate(make_record({{"machine", std::int64_t{5}},
                                        {"cpuTime", std::int64_t{10000}}}))
                   .accept);
  EXPECT_FALSE(t->evaluate(make_record({{"machine", std::int64_t{4}},
                                        {"cpuTime", std::int64_t{1}}}))
                   .accept);
}

TEST(Templates, PaperFig33SecondRule) {
  // "machine=0, type=1, sock=4, destName=228320140"
  auto t =
      Templates::parse("machine=0, type=1, sock=4, destName=228320140\n");
  ASSERT_TRUE(t.has_value());
  auto hit = make_record({{"machine", std::int64_t{0}},
                          {"type", std::int64_t{1}},
                          {"sock", std::int64_t{4}},
                          {"destName", std::string{"228320140"}}});
  EXPECT_TRUE(t->evaluate(hit).accept);
  auto miss = make_record({{"machine", std::int64_t{0}},
                           {"type", std::int64_t{1}},
                           {"sock", std::int64_t{5}},
                           {"destName", std::string{"228320140"}}});
  EXPECT_FALSE(t->evaluate(miss).accept);
}

TEST(Templates, PaperFig34WildcardAndDiscard) {
  // "machine=#*, type=1, pid=#*, size>=512": match any machine/pid, only
  // sends of 512+ bytes, and discard the machine and pid fields.
  auto t = Templates::parse("machine=#*, type=1, pid=#*, size>=512\n");
  ASSERT_TRUE(t.has_value());
  auto big = make_record({{"machine", std::int64_t{3}},
                          {"type", std::int64_t{1}},
                          {"pid", std::int64_t{42}},
                          {"size", std::int64_t{600}}});
  auto d = t->evaluate(big);
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.discard.size(), 2u);
  EXPECT_TRUE(d.discard.count("machine"));
  EXPECT_TRUE(d.discard.count("pid"));

  auto small = make_record({{"machine", std::int64_t{3}},
                            {"type", std::int64_t{1}},
                            {"pid", std::int64_t{42}},
                            {"size", std::int64_t{100}}});
  EXPECT_FALSE(t->evaluate(small).accept);
}

TEST(Templates, PaperFig34FieldToField) {
  // "type=8, sockName=peerName": accepts whose two names coincide.
  auto t = Templates::parse("type=8, sockName=peerName\n");
  ASSERT_TRUE(t.has_value());
  auto same = make_record({{"type", std::int64_t{8}},
                           {"sockName", std::string{"#5"}},
                           {"peerName", std::string{"#5"}}},
                          "ACCEPT");
  EXPECT_TRUE(t->evaluate(same).accept);
  auto diff = make_record({{"type", std::int64_t{8}},
                           {"sockName", std::string{"#5"}},
                           {"peerName", std::string{"#6"}}},
                          "ACCEPT");
  EXPECT_FALSE(t->evaluate(diff).accept);
}

TEST(Templates, RulesAreAlternatives) {
  auto t = Templates::parse("machine=1\nmachine=2\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->rule_count(), 2u);
  EXPECT_TRUE(t->evaluate(make_record({{"machine", std::int64_t{1}}})).accept);
  EXPECT_TRUE(t->evaluate(make_record({{"machine", std::int64_t{2}}})).accept);
  EXPECT_FALSE(t->evaluate(make_record({{"machine", std::int64_t{3}}})).accept);
}

TEST(Templates, FirstMatchingRuleDecidesDiscards) {
  auto t = Templates::parse("machine=1, pid=#*\nmachine=*, pid=*\n");
  ASSERT_TRUE(t.has_value());
  auto d1 = t->evaluate(make_record(
      {{"machine", std::int64_t{1}}, {"pid", std::int64_t{9}}}));
  EXPECT_TRUE(d1.accept);
  EXPECT_EQ(d1.discard.size(), 1u);
  auto d2 = t->evaluate(make_record(
      {{"machine", std::int64_t{2}}, {"pid", std::int64_t{9}}}));
  EXPECT_TRUE(d2.accept);
  EXPECT_TRUE(d2.discard.empty());
}

TEST(Templates, AllComparisonOperators) {
  auto run = [](const std::string& rule, std::int64_t v) {
    auto t = Templates::parse(rule + "\n");
    EXPECT_TRUE(t.has_value());
    return t->evaluate(make_record({{"x", v}})).accept;
  };
  EXPECT_TRUE(run("x=5", 5));
  EXPECT_FALSE(run("x=5", 6));
  EXPECT_TRUE(run("x!=5", 6));
  EXPECT_FALSE(run("x!=5", 5));
  EXPECT_TRUE(run("x<5", 4));
  EXPECT_FALSE(run("x<5", 5));
  EXPECT_TRUE(run("x>5", 6));
  EXPECT_FALSE(run("x>5", 5));
  EXPECT_TRUE(run("x<=5", 5));
  EXPECT_FALSE(run("x<=5", 6));
  EXPECT_TRUE(run("x>=5", 5));
  EXPECT_FALSE(run("x>=5", 4));
}

TEST(Templates, MissingFieldFailsClause) {
  auto t = Templates::parse("ghost=*\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->evaluate(make_record({{"machine", std::int64_t{1}}})).accept);
}

TEST(Templates, StringComparisonWhenNotNumeric) {
  auto t = Templates::parse("destName=/tmp/sock\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->evaluate(make_record({{"destName", std::string{"/tmp/sock"}}}))
                  .accept);
  EXPECT_FALSE(
      t->evaluate(make_record({{"destName", std::string{"/tmp/other"}}}))
          .accept);
}

TEST(Templates, ParseErrors) {
  std::string err;
  EXPECT_FALSE(Templates::parse("machine 5\n", &err).has_value());  // no op
  EXPECT_FALSE(Templates::parse("machine\n", &err).has_value());    // no op
  EXPECT_FALSE(Templates::parse("=5\n", &err).has_value());
  EXPECT_FALSE(Templates::parse("machine=#\n", &err).has_value());  // '#' alone
  EXPECT_FALSE(Templates::parse("pid=1, cpuTime<#\n", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Templates, WildcardRequiresEquality) {
  // '*' only asserts presence; "field != *" used to accept every record.
  std::string err;
  EXPECT_FALSE(Templates::parse("machine!=*\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("'*'"), std::string::npos) << err;
  EXPECT_FALSE(Templates::parse("pid<*\n", &err).has_value());
  EXPECT_FALSE(Templates::parse("pid>*\n", &err).has_value());
  EXPECT_FALSE(Templates::parse("pid<=*\n", &err).has_value());
  EXPECT_FALSE(Templates::parse("pid>=#*\n", &err).has_value());  // with '#'
  // The error names the offending line.
  EXPECT_FALSE(Templates::parse("pid=5\ncpuTime!=*\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  // '=' with '*' (and '#*') stays legal.
  EXPECT_TRUE(Templates::parse("machine=*\n").has_value());
  EXPECT_TRUE(Templates::parse("machine=#*\n").has_value());
}

TEST(Templates, CommentsAndBlanksIgnored) {
  auto t = Templates::parse("# only comments\n\n   \n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->rule_count(), 0u);
}

}  // namespace
}  // namespace dpm::filter
