#include "util/strings.h"

#include <gtest/gtest.h>

namespace dpm::util {
namespace {

TEST(Split, DropsEmptyFields) {
  auto v = split("  a\tb  c ", " \t");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(SplitKeepEmpty, PreservesPositions) {
  auto v = split_keep_empty("a,,b,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(parse_int("123").value(), 123);
  EXPECT_EQ(parse_int("-5").value(), -5);
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int(" 12").has_value());
}

TEST(ParseIntBase, Hex) {
  EXPECT_EQ(parse_int_base("ff", 16).value(), 255);
  EXPECT_EQ(parse_int_base("-10", 16).value(), -16);
  EXPECT_FALSE(parse_int_base("fg", 16).has_value());
}

TEST(Strprintf, Formats) {
  EXPECT_EQ(strprintf("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(IsWord, PaperParameterCharacters) {
  EXPECT_TRUE(is_word("foo"));
  EXPECT_TRUE(is_word("a/b.c"));
  EXPECT_TRUE(is_word("-send"));
  EXPECT_TRUE(is_word("proc_1"));
  EXPECT_FALSE(is_word(""));
  EXPECT_FALSE(is_word("a b"));
  EXPECT_FALSE(is_word("a*b"));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, Basic) { EXPECT_EQ(to_lower("AbC"), "abc"); }

}  // namespace
}  // namespace dpm::util
