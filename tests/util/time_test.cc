#include "util/time.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace dpm::util {
namespace {

TEST(Time, DurationHelpers) {
  EXPECT_EQ(usec(5).count(), 5);
  EXPECT_EQ(msec(5).count(), 5000);
  EXPECT_EQ(sec(2).count(), 2000000);
}

TEST(Time, FormatTime) {
  EXPECT_EQ(format_time(TimePoint{} + usec(1250000)), "1.250000s");
  EXPECT_EQ(format_time(TimePoint{}), "0.000000s");
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(msec(3)), "3ms");
  EXPECT_EQ(format_duration(usec(1500)), "1500us");
  EXPECT_EQ(format_duration(usec(0)), "0us");
}

TEST(SysResult, ValueAndError) {
  SysResult<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.error(), Err::ok);

  SysResult<int> bad(Err::epipe);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::epipe);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(SysResult, VoidSpecialization) {
  SysResult<void> ok;
  EXPECT_TRUE(ok.ok());
  SysResult<void> bad(Err::eperm);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::eperm);
}

TEST(Err, NamesAndMessages) {
  EXPECT_EQ(err_name(Err::econnrefused), "econnrefused");
  EXPECT_EQ(err_message(Err::eperm), "operation not permitted");
  EXPECT_EQ(err_name(Err::ok), "ok");
}

}  // namespace
}  // namespace dpm::util
