// Clock alignment estimated from the trace's own message pairs.
#include <gtest/gtest.h>

#include "analysis/ordering.h"
#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;

/// Two machines, symmetric traffic, machine 1's clock 40ms ahead,
/// one-way latency 500us in true time.
std::vector<std::pair<Stamp, meter::MeterBody>> skewed_exchange() {
  const std::int64_t skew = 40000;
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 120 + skew, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
  };
  std::int64_t t = 1000;
  for (int i = 0; i < 5; ++i) {
    // m0 sends at t (m0 clock), m1 receives at t+500 true = t+500+skew local.
    ev.push_back({Stamp{0, t, 0}, MeterSend{1, 0, 5, 16, ""}});
    ev.push_back({Stamp{1, t + 500 + skew, 0}, MeterRecv{2, 0, 9, 16, ""}});
    // m1 replies at t+1000 true; m0 receives at t+1500 true = local.
    ev.push_back({Stamp{1, t + 1000 + skew, 0}, MeterSend{2, 0, 9, 16, ""}});
    ev.push_back({Stamp{0, t + 1500, 0}, MeterRecv{1, 0, 5, 16, ""}});
    t += 2000;
  }
  return ev;
}

TEST(ClockAlignment, RecoversSymmetricSkew) {
  auto trace = analysis_testing::make_trace(skewed_exchange());
  Ordering o = order_events(trace);
  ASSERT_EQ(o.message_pairs, 10u);
  ClockAlignment a = estimate_clock_alignment(trace, o);
  ASSERT_TRUE(a.offset_us.count(0));
  ASSERT_TRUE(a.offset_us.count(1));
  EXPECT_EQ(a.offset_us.at(0), 0);
  // With symmetric latency the midpoint construction recovers the skew
  // exactly (min fwd = lat+skew, min back = lat-skew).
  EXPECT_EQ(a.offset_us.at(1), 40000);
}

TEST(ClockAlignment, AlignedTimesRestoreCausality) {
  auto trace = analysis_testing::make_trace(skewed_exchange());
  Ordering o = order_events(trace);
  ClockAlignment a = estimate_clock_alignment(trace, o);
  for (const auto& oe : o.events) {
    if (!oe.matched_send) continue;
    const Event& recv = trace.events[oe.index];
    const Event& send = trace.events[*oe.matched_send];
    EXPECT_GE(a.aligned(recv), a.aligned(send));
  }
}

TEST(ClockAlignment, OneDirectionalTrafficBoundsOffset) {
  // Only m0 -> m1 traffic: the offset cannot be separated from latency,
  // but the estimate (min delta) still yields aligned recv >= send.
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 90200, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
      {Stamp{0, 1000, 0}, MeterSend{1, 0, 5, 16, ""}},
      {Stamp{1, 91500, 0}, MeterRecv{2, 0, 9, 16, ""}},
  };
  auto trace = analysis_testing::make_trace(ev);
  Ordering o = order_events(trace);
  ClockAlignment a = estimate_clock_alignment(trace, o);
  EXPECT_EQ(a.offset_us.at(1), 90500);  // the single observed delta
}

TEST(ClockAlignment, DisconnectedMachinesKeepZero) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{7, 999, 0}, MeterSend{2, 0, 6, 1, ""}},
  });
  Ordering o = order_events(trace);
  ClockAlignment a = estimate_clock_alignment(trace, o);
  EXPECT_EQ(a.offset_us.at(0), 0);
  EXPECT_EQ(a.offset_us.at(7), 0);
}

TEST(ClockAlignment, TransitiveAcrossThreeMachines) {
  // m0 <-> m1 and m1 <-> m2 traffic; m2's offset composes through m1.
  const std::int64_t s1 = 10000, s2 = 25000;  // absolute skews
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "a1", "a2"}},
      {Stamp{1, 120 + s1, 0}, MeterAccept{2, 0, 7, 9, "a2", "a1"}},
      {Stamp{1, 200 + s1, 0}, MeterConnect{2, 0, 8, "b1", "b2"}},
      {Stamp{2, 220 + s2, 0}, MeterAccept{3, 0, 10, 11, "b2", "b1"}},
  };
  auto add_pair = [&](std::uint16_t ma, std::int32_t pa, std::uint64_t sa,
                      std::uint16_t mb, std::int32_t pb, std::uint64_t sb,
                      std::int64_t offa, std::int64_t offb, std::int64_t t) {
    ev.push_back({Stamp{ma, t + offa, 0}, MeterSend{pa, 0, sa, 8, ""}});
    ev.push_back({Stamp{mb, t + 500 + offb, 0}, MeterRecv{pb, 0, sb, 8, ""}});
    ev.push_back({Stamp{mb, t + 1000 + offb, 0}, MeterSend{pb, 0, sb, 8, ""}});
    ev.push_back({Stamp{ma, t + 1500 + offa, 0}, MeterRecv{pa, 0, sa, 8, ""}});
  };
  add_pair(0, 1, 5, 1, 2, 9, 0, s1, 2000);
  add_pair(1, 2, 8, 2, 3, 11, s1, s2, 8000);

  auto trace = analysis_testing::make_trace(ev);
  Ordering o = order_events(trace);
  ClockAlignment a = estimate_clock_alignment(trace, o);
  EXPECT_EQ(a.offset_us.at(0), 0);
  EXPECT_EQ(a.offset_us.at(1), s1);
  EXPECT_EQ(a.offset_us.at(2), s2);
}

}  // namespace
}  // namespace dpm::analysis
