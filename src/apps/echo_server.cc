// A long-running system server (datagram echo). The paper's *acquire*
// command exists for exactly this: "a user may be interested only in
// monitoring a system server to better understand its behavior" (§4.3).
#include "apps/apps.h"
#include "apps/apps_util.h"

namespace dpm::apps {

using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

kernel::ProcessMain make_echo_server(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto port = static_cast<net::Port>(arg_int(argv, 1, 7));
    const auto max = arg_int(argv, 2, 0);  // 0 = run forever

    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    if (!fd || !sys.bind_port(*fd, port)) sys.exit(1);

    std::int64_t served = 0;
    for (;;) {
      auto d = sys.recvfrom(*fd);
      if (!d) break;
      (void)sys.sendto(*fd, d->data, d->source);
      if (max > 0 && ++served >= max) break;
    }
    sys.exit(0);
  };
}

kernel::ProcessMain make_echo_client(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const std::string host = arg_str(argv, 1, "localhost");
    const auto port = static_cast<net::Port>(arg_int(argv, 2, 7));
    const auto count = arg_int(argv, 3, 5);
    const auto bytes = static_cast<std::size_t>(arg_int(argv, 4, 32));

    auto addr = sys.resolve(host, port);
    if (!addr) sys.exit(1);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    if (!fd) sys.exit(1);

    const util::Bytes msg = payload(bytes, 0x22);
    std::int64_t echoed = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      (void)sys.sendto(*fd, msg, *addr);
      auto sel = sys.select({*fd}, false, util::msec(100));
      if (sel && !sel->timed_out && !sel->readable.empty()) {
        if (sys.recvfrom(*fd)) ++echoed;
      }
    }
    (void)sys.print(util::strprintf("echo_client: %lld/%lld echoed\n",
                                    static_cast<long long>(echoed),
                                    static_cast<long long>(count)));
    sys.exit(0);
  };
}

}  // namespace dpm::apps
