// Property tests for template evaluation: the parsed-rule evaluator
// agrees with a straightforward reference implementation on random rules
// and records.
#include <gtest/gtest.h>

#include "filter/templates.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dpm::filter {
namespace {

const char* kFields[] = {"machine", "type", "pid", "sock", "msgLength",
                         "cpuTime"};

struct RefClause {
  std::string field;
  std::string op;
  bool wildcard;
  std::int64_t value;
};

bool ref_clause(const RefClause& c, const Record& rec) {
  auto lhs = rec.num(c.field);
  if (!rec.find(c.field)) return false;
  if (c.wildcard) return true;
  if (!lhs) return false;
  if (c.op == "=") return *lhs == c.value;
  if (c.op == "!=") return *lhs != c.value;
  if (c.op == "<") return *lhs < c.value;
  if (c.op == ">") return *lhs > c.value;
  if (c.op == "<=") return *lhs <= c.value;
  return *lhs >= c.value;
}

Record random_record(util::Rng& rng) {
  Record r;
  r.event_name = "SEND";
  for (const char* f : kFields) {
    if (rng.bernoulli(0.85)) {
      r.fields.emplace_back(f, rng.uniform(0, 20));
    }
  }
  return r;
}

class TemplateProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(TemplateProperty, MatchesReferenceEvaluator) {
  util::Rng rng(GetParam());
  const char* ops[] = {"=", "!=", "<", ">", "<=", ">="};

  for (int trial = 0; trial < 40; ++trial) {
    // Build 1..4 random rules of 1..3 clauses.
    std::vector<std::vector<RefClause>> ref_rules;
    std::string text;
    const int nrules = static_cast<int>(rng.uniform(1, 4));
    for (int r = 0; r < nrules; ++r) {
      std::vector<RefClause> rule;
      const int nclauses = static_cast<int>(rng.uniform(1, 3));
      std::string line;
      for (int c = 0; c < nclauses; ++c) {
        RefClause rc;
        rc.field = kFields[rng.uniform(0, 5)];
        rc.wildcard = rng.bernoulli(0.2);
        rc.op = ops[rng.uniform(0, 5)];
        rc.value = rng.uniform(0, 20);
        if (!line.empty()) line += ", ";
        if (rc.wildcard) {
          line += rc.field + "=*";
          rc.op = "=";
        } else {
          line += rc.field + rc.op + std::to_string(rc.value);
        }
        rule.push_back(rc);
      }
      text += line + "\n";
      ref_rules.push_back(std::move(rule));
    }

    auto templates = Templates::parse(text);
    ASSERT_TRUE(templates.has_value()) << text;

    for (int i = 0; i < 50; ++i) {
      Record rec = random_record(rng);
      bool expect = false;
      for (const auto& rule : ref_rules) {
        bool all = true;
        for (const auto& c : rule) {
          if (!ref_clause(c, rec)) {
            all = false;
            break;
          }
        }
        if (all) {
          expect = true;
          break;
        }
      }
      EXPECT_EQ(templates->evaluate(rec).accept, expect)
          << "rules:\n" << text;
    }
  }
}

TEST_P(TemplateProperty, DiscardOnlyFromFirstMatchingRule) {
  util::Rng rng(GetParam() + 50);
  for (int trial = 0; trial < 30; ++trial) {
    // Rule 1 discards fieldA when machine<10; rule 2 matches anything.
    const std::string field = kFields[rng.uniform(0, 5)];
    auto templates = Templates::parse(field + "<10, pid=#*\nmachine=*\n");
    ASSERT_TRUE(templates.has_value());
    Record rec = random_record(rng);
    auto d = templates->evaluate(rec);
    const auto fv = rec.num(field);
    const bool first_matches = fv && *fv < 10 && rec.find("pid");
    if (!rec.find("machine") && !first_matches) {
      EXPECT_FALSE(d.accept);
      continue;
    }
    EXPECT_TRUE(d.accept);
    EXPECT_EQ(d.discard.count("pid") == 1, first_matches);
  }
}

}  // namespace
}  // namespace dpm::filter
