// Chrome trace_event export of a causally-analyzed trace.
//
// The paper renders its analyses as printed reports (§4); this module
// renders them for chrome://tracing / Perfetto instead. The exporter
// works off a LiveAnalysis (batch traces are replayed through one, so
// file conversion and live streaming share one code path) and emits the
// trace_event JSON format:
//
//   * one process lane per machine (pid = machine id), one thread lane
//     per process (tid = pid), "M" metadata naming both;
//   * one "X" slice per event, lasting until the process's next event —
//     the idle/busy texture of each process over trace time;
//   * one "s"/"f" flow-event pair per matched send/receive, so message
//     arrows connect the lanes;
//   * a synthetic "critical path" process lane plotting the costliest
//     happens-before path in *cost* coordinates (each slice's span is its
//     edge's contribution), program steps labelled by process, message
//     steps by channel.
//
// Timestamps are the trace's local-clock microseconds (Chrome's native
// unit); cross-machine skew shows up as it does in the data.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/live/aggregator.h"

namespace dpm::analysis::live {

struct ChromeTraceOptions {
  bool flows = true;          // emit flow events for matched pairs
  bool critical_path = true;  // emit the synthetic critical-path lane
};

/// Renders the whole analysis as one trace_event JSON document:
/// {"displayTimeUnit":"ms","traceEvents":[...]}.
std::string chrome_trace_json(const LiveAnalysis& live,
                              const ChromeTraceOptions& opts = {});

/// Schema check for exported documents (the trace2chrome --smoke test and
/// equivalence tests run every export through this).
struct ChromeTraceCheck {
  bool ok = false;
  std::string error;
  std::size_t events = 0;  // traceEvents entries of any phase
  std::size_t slices = 0;  // "X" entries
  std::size_t flow_pairs = 0;  // "s" ids with a matching "f"
  std::size_t cross_machine_flow_pairs = 0;  // ... spanning two pids
  bool has_critical_path = false;  // the synthetic lane is present
};
ChromeTraceCheck check_chrome_trace(const std::string& json_text);

}  // namespace dpm::analysis::live
