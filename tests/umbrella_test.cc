// The umbrella header must compile standalone and expose the whole API.
#include "dpm.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EverySubsystemIsReachable) {
  dpm::kernel::World world;
  world.add_machine("solo");
  dpm::control::install_monitor(world);
  dpm::apps::install_everywhere(world);
  EXPECT_TRUE(world.programs().has(dpm::filter::kStdFilterProgram));
  EXPECT_TRUE(world.programs().has(dpm::filter::kCountFilterProgram));
  EXPECT_TRUE(world.programs().has(dpm::daemon::kMeterdaemonProgram));
  EXPECT_TRUE(world.programs().has(dpm::control::kControllerProgram));
  EXPECT_TRUE(world.programs().has("tsp_master"));
  EXPECT_EQ(dpm::meter::flags_to_string(dpm::meter::M_SEND), "send");
  dpm::analysis::Trace empty;
  EXPECT_TRUE(dpm::analysis::diagnose(empty).findings.empty());
}

}  // namespace
