file(REMOVE_RECURSE
  "CMakeFiles/meter_test.dir/meter/hooks_test.cc.o"
  "CMakeFiles/meter_test.dir/meter/hooks_test.cc.o.d"
  "CMakeFiles/meter_test.dir/meter/meterflags_test.cc.o"
  "CMakeFiles/meter_test.dir/meter/meterflags_test.cc.o.d"
  "CMakeFiles/meter_test.dir/meter/metermsgs_test.cc.o"
  "CMakeFiles/meter_test.dir/meter/metermsgs_test.cc.o.d"
  "meter_test"
  "meter_test.pdb"
  "meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
