#include "analysis/predicates/detector.h"

#include <algorithm>

namespace dpm::analysis::pred {

PredicateDetector::PredicateDetector(const filter::Descriptions& desc,
                                     DetectorConfig cfg, obs::Registry* reg)
    : desc_(desc), cfg_(cfg), updates_(desc) {
  if (reg == nullptr) {
    own_reg_ = std::make_unique<obs::Registry>();
    reg = own_reg_.get();
  }
  reg_ = reg;
  c_verdicts_ = &reg_->counter("pred.verdicts");
  c_possibly_ = &reg_->counter("pred.verdicts_possibly");
  c_definitely_ = &reg_->counter("pred.verdicts_definitely");
  c_cuts_ = &reg_->counter("pred.lattice_cuts");
  c_capped_ = &reg_->counter("pred.instantiations_capped");
  c_stamps_dropped_ = &reg_->counter("pred.send_stamps_dropped");
  g_predicates_ = &reg_->gauge("pred.predicates");
  g_insts_ = &reg_->gauge("pred.instantiations");
  g_open_ = &reg_->gauge("pred.open_intervals");
  g_unsettled_ = &reg_->gauge("pred.unsettled");
  h_lag_ = &reg_->histogram("pred.witness_lag_us");
}

bool PredicateDetector::add_predicate(std::string_view spec_text,
                                      std::string* error) {
  const auto spec = PredicateSpec::parse(spec_text, error);
  if (!spec) return false;
  if (pred_of_.count(spec->name)) {
    if (error != nullptr) *error = "predicate '" + spec->name + "' exists";
    return false;
  }
  auto compiled = CompiledPredicate::compile(*spec, desc_, error);
  if (!compiled) return false;

  PredState ps;
  ps.compiled = std::move(*compiled);
  ps.bound.resize(ps.compiled.locals().size());
  ps.c_occurrences = &reg_->counter("pred.occurrences." + spec->name);
  ps.g_state = &reg_->gauge("pred.state." + spec->name);
  pred_of_[spec->name] = preds_.size();
  preds_.push_back(std::move(ps));
  g_predicates_->set(static_cast<std::int64_t>(preds_.size()));

  // Bind the processes that already appeared: a predicate added
  // mid-stream behaves like a late-bound instantiation — its intervals
  // start at the current state, the pre-registration history is not
  // replayed.
  for (std::size_t slot = 0; slot < procs_.size(); ++slot) {
    bind_one(preds_.size() - 1, slot);
  }
  return true;
}

/// Expands instantiations of predicate `pi` with process `slot` bound to
/// every conjunct whose selector matches; then records the binding.
void PredicateDetector::bind_one(std::size_t pi, std::size_t slot) {
  PredState& ps = preds_[pi];
  const auto& locals = ps.compiled.locals();
  const ProcRt& rt = procs_[slot];
  for (std::size_t c = 0; c < locals.size(); ++c) {
    if (!locals[c].sel.matches(rt.key)) continue;
    if (std::find(ps.bound[c].begin(), ps.bound[c].end(), slot) !=
        ps.bound[c].end()) {
      continue;
    }
    // Cartesian expansion with position c pinned to `slot`; conjuncts
    // bind pairwise-distinct processes.
    std::vector<std::size_t> combo(locals.size());
    combo[c] = slot;
    expand_combos(pi, c, 0, combo);
    ps.bound[c].push_back(slot);
  }
}

void PredicateDetector::expand_combos(std::size_t pi, std::size_t pinned,
                                      std::size_t at,
                                      std::vector<std::size_t>& combo) {
  PredState& ps = preds_[pi];
  const std::size_t n = ps.compiled.locals().size();
  if (at == n) {
    if (ps.insts.size() >= cfg_.max_instantiations) {
      ++capped_;
      c_capped_->add(1);
      return;
    }
    Instantiation inst;
    inst.trackers.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      Tracker& t = inst.trackers[i];
      t.proc_slot = combo[i];
      // A process bound after it already ran: its conjunct is evaluated
      // against the current state, and an interval (if the state already
      // satisfies it) starts *now* — the pre-binding history is not
      // replayed, which under-approximates possibly but never fabricates
      // a witness.
      const ProcRt& rt = procs_[combo[i]];
      if (rt.vc.empty()) continue;  // no settled event yet
      if (conjunct_holds(ps.compiled.locals()[i], rt)) {
        t.holds = true;
        t.open = Interval{rt.hlc_l, rt.hlc_l, rt.last_pt, rt.last_pt,
                          rt.vc,    rt.vc,    rt.last_index, rt.last_index,
                          true};
      }
    }
    ps.insts.push_back(std::move(inst));
    g_insts_->set(static_cast<std::int64_t>(++insts_total_));
    return;
  }
  if (at == pinned) {
    expand_combos(pi, pinned, at + 1, combo);
    return;
  }
  for (const std::size_t s : ps.bound[at]) {
    if (std::find(combo.begin(), combo.begin() + static_cast<long>(at), s) !=
            combo.begin() + static_cast<long>(at) ||
        s == combo[pinned]) {
      continue;
    }
    combo[at] = s;
    expand_combos(pi, pinned, at + 1, combo);
  }
  combo[at] = SIZE_MAX;
}

bool PredicateDetector::conjunct_holds(const CompiledConjunct& cc,
                                       const ProcRt& rt) const {
  for (const CompiledClause& c : cc.clauses) {
    const auto& slot = rt.state[c.field];
    if (!slot.has_value()) return false;  // field never seen: wildcard too
    if (!c.holds(*slot)) return false;
  }
  return true;
}

// ---- event intake ---------------------------------------------------------

void PredicateDetector::on_event(std::size_t index, const Event& e) {
  if (finished_) return;
  ++events_seen_;
  PendEvent pe;
  pe.e = e;
  pe.index = index;
  // A pair may have been announced before the recv's own on_event (it
  // cannot with the aggregator's callback order, but stay safe).
  auto [it, fresh] = pending_.try_emplace(index, std::move(pe));
  (void)fresh;
  proc_pending_[e.proc()].push_back(index);
  if (proc_pending_[e.proc()].front() == index) candidates_.insert(index);
  settle_ready();
}

void PredicateDetector::on_pair(std::size_t send_index,
                                std::size_t recv_index) {
  if (finished_) return;
  const auto it = pending_.find(recv_index);
  if (it == pending_.end()) return;  // recv already settled (gap/finish)
  it->second.send_index = send_index;
  candidates_.insert(recv_index);
  settle_ready();
}

void PredicateDetector::on_gap(std::size_t index) {
  if (finished_) return;
  const auto it = pending_.find(index);
  if (it == pending_.end()) {
    // An already-settled send expelled by the pairing TTL: it will never
    // pair, so its retained stamp is dead weight.
    drop_send_stamp(index);
    settle_ready();
    return;
  }
  it->second.gap = true;
  candidates_.insert(index);
  settle_ready();
}

/// Re-queues the receive (if any) parked on `send_index`'s stamp.
void PredicateDetector::wake_waiter(std::size_t send_index) {
  const auto it = send_waiters_.find(send_index);
  if (it == send_waiters_.end()) return;
  candidates_.insert(it->second);
  send_waiters_.erase(it);
}

void PredicateDetector::drop_send_stamp(std::size_t send_index) {
  const auto it = send_stamps_.find(send_index);
  if (it == send_stamps_.end()) return;
  send_stamps_.erase(it);
  ++stamps_dropped_;
  c_stamps_dropped_->add(1);
  wake_waiter(send_index);
}

void PredicateDetector::finish() {
  if (finished_) return;
  // Receives still waiting settle without a join: their sends never
  // arrived (or arrive behind them and can no longer be waited for).
  // Severing the lowest stuck per-process head and re-running the settle
  // loop keeps the result deterministic for a given trace.
  while (!pending_.empty()) {
    settle_ready();
    bool severed = false;
    for (auto& [idx, pe] : pending_) {
      const auto& q = proc_pending_[pe.e.proc()];
      if (q.empty() || q.front() != idx) continue;
      if (pe.e.type == meter::EventType::recv && !pe.gap &&
          pe.send_index != kNoIndex && send_stamps_.count(pe.send_index)) {
        // The join is sitting right there (unreachable given waiter
        // wakeups, but never discard a known causal edge): re-queue the
        // receive instead of severing it.
        candidates_.insert(idx);
      } else {
        pe.gap = true;
        pe.send_index = kNoIndex;
        candidates_.insert(idx);
      }
      severed = true;
      break;
    }
    if (!severed) break;  // no per-process head: bookkeeping bug, don't spin
  }
  finished_ = true;
  g_unsettled_->set(0);
}

void PredicateDetector::settle_ready() {
  while (!candidates_.empty()) {
    const std::size_t idx = *candidates_.begin();
    candidates_.erase(candidates_.begin());
    const auto it = pending_.find(idx);
    if (it == pending_.end()) continue;
    PendEvent& pe = it->second;
    auto& q = proc_pending_[pe.e.proc()];
    if (q.empty() || q.front() != idx) continue;  // program order first
    const bool is_recv = pe.e.type == meter::EventType::recv;
    if (is_recv && !pe.gap && pe.send_index != kNoIndex &&
        !send_stamps_.count(pe.send_index)) {
      if (pending_.count(pe.send_index)) {
        // Paired, but the send has not settled yet (it may be blocked
        // behind its own process's unpaired receive): park as its
        // waiter — settle() wakes us the moment the stamp lands.
        send_waiters_[pe.send_index] = idx;
        continue;
      }
      // The send settled without leaving a stamp (expelled by the
      // pairing TTL or pruned past the stamp cap): the join is
      // unrecoverable — settle without it rather than wedge the queue.
    }
    if (is_recv && !pe.gap && pe.send_index == kNoIndex) {
      continue;  // unpaired recv: wait for pairing evidence or the TTL
    }
    PendEvent settled = std::move(pe);
    pending_.erase(it);
    q.pop_front();
    settle(settled);
    // Settling may unblock this process's next event and (for sends) the
    // waiting receive.
    if (!q.empty()) candidates_.insert(q.front());
  }
  g_unsettled_->set(static_cast<std::int64_t>(pending_.size()));
}

std::size_t PredicateDetector::proc_slot(const ProcKey& key) {
  const auto it = slot_of_.find(key);
  if (it != slot_of_.end()) return it->second;
  const std::size_t slot = procs_.size();
  slot_of_[key] = slot;
  ProcRt rt;
  rt.key = key;
  rt.state.resize(state_field_count());
  procs_.push_back(std::move(rt));
  return slot;
}

void PredicateDetector::settle(PendEvent& pe) {
  const Event& e = pe.e;
  const bool fresh_proc = !slot_of_.count(e.proc());
  const std::size_t slot = proc_slot(e.proc());
  ProcRt& rt = procs_[slot];

  // Vector clock: tick own component; a joined receive folds in the
  // send's clock (which already counts the send itself).
  if (rt.vc.size() <= slot) rt.vc.resize(slot + 1, 0);
  ++rt.vc[slot];
  std::int64_t msg_l = 0;
  bool new_edge = false;
  if (e.type == meter::EventType::recv && pe.send_index != kNoIndex) {
    const auto sit = send_stamps_.find(pe.send_index);
    if (sit != send_stamps_.end()) {
      if (!pe.gap) {
        const SendStamp& ss = sit->second;
        if (rt.vc.size() < ss.vc.size()) rt.vc.resize(ss.vc.size(), 0);
        for (std::size_t i = 0; i < ss.vc.size(); ++i) {
          rt.vc[i] = std::max(rt.vc[i], ss.vc[i]);
        }
        msg_l = ss.hlc_l;
        new_edge = channels_.insert({ss.proc_slot, slot}).second;
      }
      // Joined or not, the receive is the stamp's only consumer.
      send_stamps_.erase(sit);
    }
  }

  // Hybrid logical clock: never behind the local reading nor any clock
  // heard from; the causality counter keeps ties ordered but the physical
  // component l is what interval arithmetic uses.
  const std::int64_t pt = e.cpu_time;
  const std::int64_t prev_l = rt.hlc_l;
  rt.hlc_l = std::max({rt.hlc_l, pt, msg_l});
  rt.hlc_c = rt.hlc_l == prev_l && rt.hlc_l > pt ? rt.hlc_c + 1 : 0;
  rt.last_pt = pt;
  rt.last_index = pe.index;
  frontier_l_ = std::max(frontier_l_, rt.hlc_l);

  // State update: the fields this event type carries.
  const std::uint32_t mask = updates_.update_mask(e.type);
  for (FieldId id = 0; id < state_field_count(); ++id) {
    if (mask & (1u << id)) rt.state[id] = state_field_value(e, id);
  }

  if (e.type == meter::EventType::send) {
    // A gap send was expelled by the pairing TTL and will never pair;
    // recording its stamp would only leak it.
    if (!pe.gap) {
      send_stamps_[pe.index] = SendStamp{rt.vc, rt.hlc_l, slot};
      while (send_stamps_.size() > cfg_.max_send_stamps) {
        drop_send_stamp(send_stamps_.begin()->first);
      }
    }
    wake_waiter(pe.index);
  }

  ++settled_;
  if (fresh_proc) {
    for (std::size_t pi = 0; pi < preds_.size(); ++pi) bind_one(pi, slot);
  }
  update_trackers(slot, mask, e.type == meter::EventType::termproc, rt);

  // Channel edges are monotone: a new one can certify a reach conjunct
  // that was the only thing holding a verdict back.
  if (new_edge) {
    for (PredState& ps : preds_) {
      if (ps.compiled.reaches().empty()) continue;
      for (Instantiation& inst : ps.insts) check_instantiation(ps, inst);
    }
  }
}

void PredicateDetector::close_open(Tracker& t, const ProcRt& rt,
                                   std::int64_t end_l, std::int64_t end_pt) {
  (void)rt;
  Interval iv = t.open;
  iv.open = false;
  // The state held until the falsifying event: its reading bounds the
  // interval's end for the ε arithmetic, while hi_vc/hi_index stay at the
  // last event observed *in* the state (the hb anchor).
  iv.hi_l = std::max(iv.hi_l, end_l);
  iv.hi_pt = std::max(iv.hi_pt, end_pt);
  t.queue.push_back(std::move(iv));
  t.holds = false;
}

void PredicateDetector::update_trackers(std::size_t slot,
                                        std::uint32_t changed_mask,
                                        bool terminating, const ProcRt& rt) {
  std::int64_t open_delta = 0;
  for (PredState& ps : preds_) {
    const auto& locals = ps.compiled.locals();
    for (Instantiation& inst : ps.insts) {
      bool touched = false;
      for (std::size_t c = 0; c < locals.size(); ++c) {
        Tracker& t = inst.trackers[c];
        if (t.proc_slot != slot) continue;
        touched = true;
        // Extend the open interval to the process's newest settled event
        // first — the state still held through it.
        if (t.holds) {
          t.open.hi_l = rt.hlc_l;
          t.open.hi_pt = rt.last_pt;
          t.open.hi_vc = rt.vc;
          t.open.hi_index = rt.last_index;
        }
        const bool relevant = (locals[c].field_mask & changed_mask) != 0;
        if (relevant || terminating) {
          const bool now = !terminating && conjunct_holds(locals[c], rt);
          if (now && !t.holds) {
            t.holds = true;
            t.open = Interval{rt.hlc_l, rt.hlc_l,      rt.last_pt,
                              rt.last_pt, rt.vc,       rt.vc,
                              rt.last_index, rt.last_index, true};
            ++open_delta;
          } else if (!now && t.holds) {
            close_open(t, rt, rt.hlc_l, rt.last_pt);
            --open_delta;
          }
        }
      }
      if (touched) check_instantiation(ps, inst);
    }
  }
  if (open_delta != 0) {
    // Recount lazily; the gauge is cheap relative to detection.
    std::int64_t open = 0;
    for (const PredState& ps : preds_) {
      for (const Instantiation& inst : ps.insts) {
        for (const Tracker& t : inst.trackers) {
          if (t.holds) ++open;
          open += static_cast<std::int64_t>(t.queue.size());
        }
      }
    }
    g_open_->set(open);
  }
}

bool PredicateDetector::hb_before(const Vc& hi, std::size_t hi_slot,
                                  const Vc& lo) const {
  // Event e (on process p, clock Ve) happens-before f (clock Vf) iff
  // Ve[p] <= Vf[p]: f has heard of e's tick.
  const std::uint32_t mine = hi_slot < hi.size() ? hi[hi_slot] : 0;
  const std::uint32_t theirs = hi_slot < lo.size() ? lo[hi_slot] : 0;
  return mine != 0 && mine <= theirs;
}

bool PredicateDetector::reaches_hold(const PredState& ps) const {
  for (const ReachConjunct& rc : ps.compiled.reaches()) {
    // BFS over the settled channel digraph from every process matching
    // `from`; reachable set must touch a process matching `to`.
    std::vector<char> seen(procs_.size(), 0);
    std::vector<std::size_t> frontier;
    for (std::size_t s = 0; s < procs_.size(); ++s) {
      if (rc.from.matches(procs_[s].key)) {
        seen[s] = 1;
        frontier.push_back(s);
      }
    }
    bool hit = false;
    for (std::size_t s = 0; s < procs_.size() && !hit; ++s) {
      if (seen[s] && rc.to.matches(procs_[s].key)) hit = true;
    }
    while (!hit && !frontier.empty()) {
      const std::size_t u = frontier.back();
      frontier.pop_back();
      for (const auto& [a, b] : channels_) {
        if (a != u || seen[b]) continue;
        seen[b] = 1;
        if (rc.to.matches(procs_[b].key)) {
          hit = true;
          break;
        }
        frontier.push_back(b);
      }
    }
    if (!hit) return false;
  }
  return true;
}

void PredicateDetector::check_instantiation(PredState& ps,
                                            Instantiation& inst) {
  const std::size_t n = inst.trackers.size();
  std::vector<const Interval*> heads(n);
  // ε bounds any pair of machines' readings of one instant, so relative
  // to any reference clock every offset lives in one window of width ε:
  // the worst the adversary can do to an overlap is ε, not 2ε.
  const std::int64_t slack = cfg_.epsilon_us;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      Tracker& t = inst.trackers[i];
      heads[i] = !t.queue.empty() ? &t.queue.front()
                                  : (t.holds ? &t.open : nullptr);
      if (heads[i] == nullptr) return;  // conjunct i has no interval yet
    }
    c_cuts_->add(1);

    // Pairwise exclusion: interval i "dead before" interval j when it is
    // happens-before j's start, or ends more than ε (of local clock)
    // before j starts — no skew assignment within ε can overlap them.
    std::size_t pop_i = SIZE_MAX;
    bool excluded = false;
    for (std::size_t i = 0; i < n && pop_i == SIZE_MAX; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const bool hb = hb_before(heads[i]->hi_vc,
                                  inst.trackers[i].proc_slot,
                                  heads[j]->lo_vc);
        const bool time_excl = heads[i]->hi_l + slack < heads[j]->lo_l;
        if (hb || time_excl) {
          excluded = true;
          // Only a closed head is dead for good: j's queue never moves
          // earlier. An open head's end keeps growing; wait instead.
          if (!heads[i]->open) {
            pop_i = i;
            break;
          }
        }
      }
    }
    if (excluded) {
      if (pop_i == SIZE_MAX) return;
      inst.trackers[pop_i].queue.pop_front();
      continue;
    }

    // A witness cut. Reach conjuncts certify against the settled channel
    // graph; when they do not hold yet, the (monotone) next edge re-runs
    // this check.
    if (!reaches_hold(ps)) return;

    std::vector<std::size_t> sig(n);
    for (std::size_t i = 0; i < n; ++i) sig[i] = heads[i]->lo_index;
    std::int64_t max_lo = heads[0]->lo_l, min_hi = heads[0]->hi_l;
    for (std::size_t i = 1; i < n; ++i) {
      max_lo = std::max(max_lo, heads[i]->lo_l);
      min_hi = std::min(min_hi, heads[i]->hi_l);
    }
    // definitely: the overlap survives every skew assignment within ε.
    const bool definite = max_lo + slack <= min_hi;

    const bool fresh_sig = sig != inst.last_sig;
    if (fresh_sig) {
      inst.last_sig = sig;
      inst.last_definitely = false;
      ++inst.occurrences;
      inst.last_occ = ++ps.possibly_count;
      emit_verdict(ps, inst, heads, VerdictKind::possibly);
    }
    if (definite && !inst.last_definitely) {
      inst.last_definitely = true;
      ++ps.definitely_count;
      emit_verdict(ps, inst, heads, VerdictKind::definitely);
    }

    // While any head is still open the occurrence may yet strengthen (its
    // end keeps growing), so wait — the sig dedup keeps it from
    // re-emitting. Once every head is closed, advance Garg–Waldecker
    // style: consume only the interval that ends earliest (it can overlap
    // nothing later), so its peers stay available to witness the next
    // intervals. Popping unconditionally (even on the revisit after the
    // last head closed) is what keeps the queues from wedging behind an
    // already-reported cut.
    for (std::size_t i = 0; i < n; ++i) {
      if (heads[i]->open) return;
    }
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (heads[i]->hi_l < heads[min_i]->hi_l) min_i = i;
    }
    inst.trackers[min_i].queue.pop_front();
    inst.last_sig.clear();
    inst.last_definitely = false;
  }
}

void PredicateDetector::emit_verdict(
    PredState& ps, Instantiation& inst,
    const std::vector<const Interval*>& heads, VerdictKind kind) {
  Verdict v;
  v.predicate = ps.compiled.name();
  v.kind = kind;
  v.occurrence = inst.last_occ;
  v.cut_lo_us = heads[0]->lo_l;
  v.cut_hi_us = heads[0]->hi_l;
  for (const Interval* h : heads) {
    v.cut_lo_us = std::max(v.cut_lo_us, h->lo_l);
    v.cut_hi_us = std::min(v.cut_hi_us, h->hi_l);
  }
  v.detect_lag_us = std::max<std::int64_t>(0, frontier_l_ - v.cut_lo_us);
  for (std::size_t i = 0; i < heads.size(); ++i) {
    WitnessInterval w;
    w.proc = procs_[inst.trackers[i].proc_slot].key;
    w.lo_hlc_us = heads[i]->lo_l;
    w.hi_hlc_us = heads[i]->hi_l;
    w.lo_local_us = heads[i]->lo_pt;
    w.hi_local_us = heads[i]->hi_pt;
    w.lo_index = heads[i]->lo_index;
    w.hi_index = heads[i]->hi_index;
    w.open = heads[i]->open;
    v.witness.push_back(std::move(w));
  }

  c_verdicts_->add(1);
  if (kind == VerdictKind::possibly) {
    c_possibly_->add(1);
    ps.c_occurrences->add(1);
    ps.strongest = std::max(ps.strongest, 1);
  } else {
    c_definitely_->add(1);
    ps.strongest = 2;
  }
  ps.g_state->set(ps.strongest);
  h_lag_->record(v.detect_lag_us);

  verdicts_.push_back(std::move(v));
  while (verdicts_.size() > cfg_.max_verdicts) {
    verdicts_.pop_front();
    if (taken_ > 0) --taken_;
  }
}

std::vector<PredicateDetector::Verdict> PredicateDetector::take_verdicts() {
  std::vector<Verdict> out(verdicts_.begin() + static_cast<long>(taken_),
                           verdicts_.end());
  taken_ = verdicts_.size();
  return out;
}

std::vector<PredicateDetector::PredicateStatus> PredicateDetector::status()
    const {
  std::vector<PredicateStatus> out;
  out.reserve(preds_.size());
  for (const PredState& ps : preds_) {
    PredicateStatus s;
    s.name = ps.compiled.name();
    s.spec = ps.compiled.spec().to_string();
    s.instantiations = ps.insts.size();
    s.possibly_count = ps.possibly_count;
    s.definitely_count = ps.definitely_count;
    s.strongest = ps.strongest;
    out.push_back(std::move(s));
  }
  return out;
}

PredicateDetector::Stats PredicateDetector::stats() const {
  Stats s;
  s.events = events_seen_;
  s.settled = settled_;
  s.unsettled = pending_.size();
  s.predicates = preds_.size();
  for (const PredState& ps : preds_) {
    s.instantiations += ps.insts.size();
    s.verdicts_possibly += ps.possibly_count;
    s.verdicts_definitely += ps.definitely_count;
    for (const Instantiation& inst : ps.insts) {
      for (const Tracker& t : inst.trackers) {
        if (t.holds) ++s.open_intervals;
      }
    }
  }
  s.cuts_examined = c_cuts_->value();
  s.capped_instantiations = capped_;
  s.send_stamps = send_stamps_.size();
  s.send_stamps_dropped = stamps_dropped_;
  return s;
}

}  // namespace dpm::analysis::pred
