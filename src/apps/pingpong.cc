// Ping-pong pair: the canonical two-process computation (processes A and
// B of the paper's example session exchange messages over one stream
// connection). Also the perturbation workload for experiment E2: its
// round-trip rate is sensitive to every added metering cost.
#include "apps/apps.h"
#include "apps/apps_util.h"

namespace dpm::apps {

using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

kernel::ProcessMain make_pingpong_server(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto port = static_cast<net::Port>(arg_int(argv, 1, 5000));
    const auto rounds = arg_int(argv, 2, 10);

    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    if (!ls || !sys.bind_port(*ls, port) || !sys.listen(*ls, 4)) sys.exit(1);
    auto conn = sys.accept(*ls);
    if (!conn) sys.exit(1);

    for (std::int64_t i = 0; i < rounds; ++i) {
      auto msg = sys.recv(*conn, 64 * 1024);
      if (!msg || msg->empty()) break;
      if (!sys.send(*conn, *msg)) break;
    }
    (void)sys.close(*conn);
    (void)sys.close(*ls);
    sys.exit(0);
  };
}

kernel::ProcessMain make_pingpong_client(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const std::string host = arg_str(argv, 1, "localhost");
    const auto port = static_cast<net::Port>(arg_int(argv, 2, 5000));
    const auto rounds = arg_int(argv, 3, 10);
    const auto bytes = static_cast<std::size_t>(arg_int(argv, 4, 64));
    const auto compute_us = arg_int(argv, 5, 0);

    auto fdr = connect_retry(sys, host, port);
    if (!fdr) {
      (void)sys.print("pingpong_client: cannot connect\n");
      sys.exit(1);
    }
    kernel::Fd fd = *fdr;

    const util::Bytes msg = payload(bytes);
    const std::int64_t t0 = sys.clock_us();
    for (std::int64_t i = 0; i < rounds; ++i) {
      if (compute_us > 0) sys.compute(util::usec(compute_us));
      if (!sys.send(fd, msg)) break;
      auto reply = sys.recv_exact(fd, bytes);
      if (!reply) break;
    }
    const std::int64_t t1 = sys.clock_us();
    (void)sys.print(util::strprintf("pingpong: %lld rounds in %lld us\n",
                                    static_cast<long long>(rounds),
                                    static_cast<long long>(t1 - t0)));
    (void)sys.close(fd);
    sys.exit(0);
  };
}

}  // namespace dpm::apps
