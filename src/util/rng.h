// Deterministic random number generation (xoshiro256**).
//
// Every source of randomness in the simulation (network jitter, datagram
// loss, workload generators) draws from an explicitly seeded Rng so that a
// run is a pure function of its seed.
#pragma once

#include <cstdint>

namespace dpm::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent stream (for per-link / per-process RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dpm::util
