// Kernel metering hooks (§3.2).
//
// "On every call to a routine that might initiate a meter event, the
// kernel checks whether the call is currently metered for the process that
// is making the call. If the call is metered, the kernel creates and
// stores a message containing trace data. When a sufficient number of
// messages have been stored, the kernel sends them together to the filter
// across the meter connection."
//
// meter_emit builds the message (header filled from the machine clock and
// the process's CPU accounting), appends it to the process's pending
// buffer, and flushes when the buffer thresholds are hit or M_IMMEDIATE is
// set. meter_flush is also called from process termination.
#pragma once

#include "kernel/process.h"
#include "kernel/world.h"
#include "meter/metermsgs.h"

namespace dpm::kernel {

/// A meter event about to be recorded: the body plus the flag that guards
/// it. The header is filled in by meter_emit.
struct MeterEventDraft {
  meter::Flags guard = 0;
  meter::MeterBody body;
};

/// True if the process meters events guarded by `flag`.
inline bool metered(const Process& p, meter::Flags flag) {
  return (p.meter_flags & flag) != 0 && p.meter_sock != 0;
}

/// Records one meter event for `p` (no-op unless metered). Charges the
/// metering CPU cost to the process's machine but NOT as a visible
/// syscall — metering is transparent to the program (§2.2).
void meter_emit(World& world, Process& p, MeterEventDraft&& draft);

/// Releases a meter socket that died underneath the process and flips it
/// to accounted drop mode (shared by the flush and ring emit paths).
void meter_degrade(World& world, Process& p);

/// Sends any pending meter messages over the meter connection.
void meter_flush(World& world, Process& p);

}  // namespace dpm::kernel
