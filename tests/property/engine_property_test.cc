// FilterEngine framing independence: no matter how the byte stream is cut
// into deliveries, the engine produces exactly the lines the reference
// path (decode + evaluate + render per record) produces.
#include <gtest/gtest.h>

#include "filter/filter_program.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"
#include "util/rng.h"

namespace dpm::filter {
namespace {

meter::MeterMsg random_msg(util::Rng& rng) {
  meter::MeterMsg m;
  switch (rng.uniform(0, 2)) {
    case 0:
      m.body = meter::MeterSend{
          static_cast<meter::Pid>(rng.uniform(1, 50)), 0,
          static_cast<meter::SocketId>(rng.uniform(1, 9)),
          static_cast<std::uint32_t>(rng.uniform(0, 2048)),
          rng.bernoulli(0.5) ? std::to_string(rng.uniform(0, 1 << 20)) : ""};
      break;
    case 1:
      m.body = meter::MeterRecvCall{
          static_cast<meter::Pid>(rng.uniform(1, 50)), 0,
          static_cast<meter::SocketId>(rng.uniform(1, 9))};
      break;
    default:
      m.body = meter::MeterAccept{
          static_cast<meter::Pid>(rng.uniform(1, 50)), 0,
          static_cast<meter::SocketId>(rng.uniform(1, 9)),
          static_cast<meter::SocketId>(rng.uniform(10, 19)),
          "n" + std::to_string(rng.uniform(0, 9)),
          "m" + std::to_string(rng.uniform(0, 9))};
      break;
  }
  m.header.machine = static_cast<std::uint16_t>(rng.uniform(0, 6));
  m.header.cpu_time = rng.uniform(0, 1000000);
  m.header.proc_time = rng.uniform(0, 100) * 10000;
  return m;
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST_P(EngineProperty, ChunkingNeverChangesTheOutput) {
  util::Rng rng(GetParam());
  const std::string rules = "machine<4, pid=#*\ntype=3\n";
  auto desc = Descriptions::parse(default_descriptions_text());
  auto templ = Templates::parse(rules);
  ASSERT_TRUE(desc.has_value());
  ASSERT_TRUE(templ.has_value());

  // Build the reference output record by record.
  util::Bytes wire;
  std::string expected;
  for (int i = 0; i < 100; ++i) {
    meter::MeterMsg m = random_msg(rng);
    auto one = m.serialize();
    wire.insert(wire.end(), one.begin(), one.end());
    auto rec = desc->decode(one);
    ASSERT_TRUE(rec.has_value());
    auto decision = templ->evaluate(*rec);
    if (decision.accept) expected += trace_line(*rec, decision.discard);
  }

  // Feed the same stream in random-sized chunks, several times.
  for (int trial = 0; trial < 10; ++trial) {
    FilterEngine engine(*Descriptions::parse(default_descriptions_text()),
                        *Templates::parse(rules));
    std::string got;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform(1, 97)), wire.size() - pos);
      util::Bytes chunk(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                        wire.begin() + static_cast<std::ptrdiff_t>(pos + n));
      got += engine.feed(7, chunk);
      pos += n;
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(engine.stats().records_in, 100u);
    EXPECT_EQ(engine.stats().malformed, 0u);
  }
}

TEST_P(EngineProperty, InterleavedConnectionsIndependent) {
  util::Rng rng(GetParam() + 10);
  auto make_engine = [] {
    return FilterEngine(*Descriptions::parse(default_descriptions_text()),
                        Templates{});
  };

  // Two independent streams; interleave deliveries arbitrarily.
  util::Bytes wa, wb;
  int count_a = 0, count_b = 0;
  for (int i = 0; i < 40; ++i) {
    auto one = random_msg(rng).serialize();
    if (rng.bernoulli(0.5)) {
      wa.insert(wa.end(), one.begin(), one.end());
      ++count_a;
    } else {
      wb.insert(wb.end(), one.begin(), one.end());
      ++count_b;
    }
  }
  FilterEngine engine = make_engine();
  std::size_t pa = 0, pb = 0;
  while (pa < wa.size() || pb < wb.size()) {
    const bool pick_a = pb >= wb.size() || (pa < wa.size() && rng.bernoulli(0.5));
    util::Bytes& w = pick_a ? wa : wb;
    std::size_t& p = pick_a ? pa : pb;
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform(1, 31)), w.size() - p);
    util::Bytes chunk(w.begin() + static_cast<std::ptrdiff_t>(p),
                      w.begin() + static_cast<std::ptrdiff_t>(p + n));
    (void)engine.feed(pick_a ? 1 : 2, chunk);
    p += n;
  }
  EXPECT_EQ(engine.stats().records_in,
            static_cast<std::uint64_t>(count_a + count_b));
  EXPECT_EQ(engine.stats().malformed, 0u);
}

}  // namespace
}  // namespace dpm::filter
