// Controller-side protocol exercised directly against live meterdaemons
// (Fig 3.5: the controller steps over to another machine through its
// daemon).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "control/session.h"
#include "daemon/protocol.h"
#include "kernel/syscalls.h"
#include "testing.h"

namespace dpm::daemon {
namespace {

using kernel::Fd;
using kernel::MachineId;
using kernel::Pid;
using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;
using util::Err;

class DaemonRpcTest : public ::testing::Test {
 protected:
  DaemonRpcTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
    control::install_monitor(world_);
    apps::install_everywhere(world_);
    control::spawn_meterdaemons(world_);
  }

  /// Runs `body` as a uid-100 process on red acting as a mini controller.
  void as_controller(std::function<void(Sys&)> body) {
    (void)world_.spawn(machines_[0], "mini-controller", 100,
                       [body = std::move(body)](Sys& sys) {
                         sys.sleep(util::msec(5));  // daemons boot
                         body(sys);
                       });
    world_.run();
  }

  kernel::World world_;
  std::vector<MachineId> machines_;
};

TEST_F(DaemonRpcTest, CreateStartsSuspendedThenRuns) {
  Pid created = 0;
  bool exited_note = false;
  as_controller([&](Sys& sys) {
    // Notification socket for state-change reports.
    auto ns = sys.socket(SockDomain::internet, SockType::stream);
    auto bound = sys.bind_port(*ns, 0);
    ASSERT_TRUE(bound.ok());
    ASSERT_TRUE(sys.listen(*ns, 8).ok());

    CreateRequest req;
    req.uid = 100;
    req.filename = "hello";
    req.params = {"hi-there"};
    req.control_port = bound->port;
    req.control_host = "red";
    auto daemon_addr = sys.resolve("green", kDaemonPort);
    ASSERT_TRUE(daemon_addr.has_value());
    auto reply = rpc_call(sys, *daemon_addr, req);
    ASSERT_TRUE(reply.ok());
    auto* cr = std::get_if<CreateReply>(&*reply);
    ASSERT_NE(cr, nullptr);
    ASSERT_EQ(cr->status, 0);
    created = cr->pid;

    // The process is in the "new" state: suspended before its first
    // instruction.
    kernel::Process* p = sys.world().find_process(2, created);
    ASSERT_NE(p, nullptr);
    sys.sleep(util::msec(50));
    EXPECT_NE(p->status, kernel::ProcStatus::dead);

    // Start it.
    ProcRequest start;
    start.what = MsgType::start_request;
    start.uid = 100;
    start.pid = created;
    auto sr = rpc_call(sys, *daemon_addr, start);
    ASSERT_TRUE(sr.ok());
    EXPECT_EQ(std::get<SimpleReply>(*sr).status, 0);

    // The daemon reports the termination by initiating a connection.
    auto conn = sys.accept(*ns);
    ASSERT_TRUE(conn.ok());
    auto note = recv_msg(sys, *conn);
    ASSERT_TRUE(note.ok());
    if (auto* io = std::get_if<IoNote>(&*note)) {
      // The hello program's output may arrive first.
      EXPECT_EQ(io->data, "hi-there\n");
      (void)sys.close(*conn);
      conn = sys.accept(*ns);
      ASSERT_TRUE(conn.ok());
      note = recv_msg(sys, *conn);
      ASSERT_TRUE(note.ok());
    }
    auto* sn = std::get_if<StateNote>(&*note);
    ASSERT_NE(sn, nullptr);
    EXPECT_EQ(sn->machine, "green");
    EXPECT_EQ(sn->pid, created);
    EXPECT_EQ(static_cast<kernel::ChildEvent>(sn->event),
              kernel::ChildEvent::exited);
    exited_note = true;
    (void)sys.close(*conn);
  });
  EXPECT_NE(created, 0);
  EXPECT_TRUE(exited_note);
}

TEST_F(DaemonRpcTest, CreateOfMissingFileFails) {
  as_controller([&](Sys& sys) {
    CreateRequest req;
    req.uid = 100;
    req.filename = "no-such-program";
    auto addr = sys.resolve("green", kDaemonPort);
    auto reply = rpc_call(sys, *addr, req);
    ASSERT_TRUE(reply.ok());
    auto* cr = std::get_if<CreateReply>(&*reply);
    ASSERT_NE(cr, nullptr);
    EXPECT_EQ(static_cast<Err>(cr->status), Err::enoent);
  });
}

TEST_F(DaemonRpcTest, FilterCreationReportsMeterPort) {
  as_controller([&](Sys& sys) {
    FilterRequest req;
    req.uid = 100;
    req.filterfile = "filter";
    req.logfile = "/usr/tmp/f1.log";
    req.descriptions = "descriptions";
    req.templates = "templates";
    auto addr = sys.resolve("green", kDaemonPort);
    auto reply = rpc_call(sys, *addr, req);
    ASSERT_TRUE(reply.ok());
    auto* fr = std::get_if<FilterReply>(&*reply);
    ASSERT_NE(fr, nullptr);
    ASSERT_EQ(fr->status, 0);
    EXPECT_GT(fr->meter_port, 0);

    // The filter is connectable on its meter port once it boots.
    sys.sleep(util::msec(50));
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    auto faddr = sys.resolve("green", fr->meter_port);
    EXPECT_TRUE(sys.connect(*fd, *faddr).ok());
  });
}

TEST_F(DaemonRpcTest, StopAndContinueThroughDaemon) {
  as_controller([&](Sys& sys) {
    CreateRequest req;
    req.uid = 100;
    req.filename = "pingpong_server";  // blocks in accept forever
    req.params = {"4900", "1"};
    auto addr = sys.resolve("red", kDaemonPort);
    auto reply = rpc_call(sys, *addr, req);
    auto* cr = std::get_if<CreateReply>(&*reply);
    ASSERT_NE(cr, nullptr);
    ASSERT_EQ(cr->status, 0);

    ProcRequest start{MsgType::start_request, 100, cr->pid};
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, start)).status, 0);
    ProcRequest stop{MsgType::stop_request, 100, cr->pid};
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, stop)).status, 0);
    ProcRequest cont{MsgType::start_request, 100, cr->pid};
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, cont)).status, 0);
    ProcRequest kill{MsgType::kill_request, 100, cr->pid};
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, kill)).status, 0);
  });
}

TEST_F(DaemonRpcTest, PermissionEnforcedPerRequestUid) {
  // uid 555 has no account anywhere: the daemon, impersonating it, is
  // denied by the kernel (§3.5.5: "a user is granted no special
  // privileges").
  as_controller([&](Sys& sys) {
    CreateRequest req;
    req.uid = 555;
    req.filename = "hello";
    auto addr = sys.resolve("green", kDaemonPort);
    auto reply = rpc_call(sys, *addr, req);
    ASSERT_TRUE(reply.ok());
    auto* cr = std::get_if<CreateReply>(&*reply);
    ASSERT_NE(cr, nullptr);
    EXPECT_EQ(static_cast<Err>(cr->status), Err::eacces);
  });
}

TEST_F(DaemonRpcTest, SignalingForeignProcessDenied) {
  Pid victim = 0;
  {
    auto r = world_.spawn(machines_[1], "victim", 0,  // owned by root
                          [](Sys& sys) { sys.sleep(util::sec(10)); });
    ASSERT_TRUE(r.ok());
    victim = *r;
  }
  as_controller([&](Sys& sys) {
    auto addr = sys.resolve("green", kDaemonPort);
    ProcRequest kill{MsgType::kill_request, 100, victim};
    auto reply = rpc_call(sys, *addr, kill);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(static_cast<Err>(std::get<SimpleReply>(*reply).status),
              Err::eperm);
  });
}

TEST_F(DaemonRpcTest, StdinFileRedirection) {
  // §3.5.2: "In the case where standard input is coming from a file ...
  // The file is then opened by the meterdaemon, which redirects to it the
  // standard input of the process."
  world_.machine(machines_[1]).fs.put_text("input.txt", "from-a-file\n", 100);
  world_.programs().register_program(
      "stdin-echo", [](const std::vector<std::string>&) -> kernel::ProcessMain {
        return [](Sys& sys) {
          auto line = sys.read_line();
          if (line.ok() && line->has_value()) (void)sys.print("read: " + **line + "\n");
        };
      });
  world_.machine(machines_[1]).fs.put_executable("stdin-echo", "stdin-echo");

  std::string output;
  as_controller([&](Sys& sys) {
    auto ns = sys.socket(SockDomain::internet, SockType::stream);
    auto bound = sys.bind_port(*ns, 0);
    (void)sys.listen(*ns, 8);

    CreateRequest req;
    req.uid = 100;
    req.filename = "stdin-echo";
    req.stdin_file = "input.txt";
    req.control_port = bound->port;
    req.control_host = "red";
    auto addr = sys.resolve("green", kDaemonPort);
    auto reply = rpc_call(sys, *addr, req);
    auto* cr = std::get_if<CreateReply>(&*reply);
    ASSERT_NE(cr, nullptr);
    ASSERT_EQ(cr->status, 0);
    ProcRequest start{MsgType::start_request, 100, cr->pid};
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, start)).status, 0);

    // Collect io notes until the exit note arrives.
    for (;;) {
      auto conn = sys.accept(*ns);
      ASSERT_TRUE(conn.ok());
      auto note = recv_msg(sys, *conn);
      (void)sys.close(*conn);
      ASSERT_TRUE(note.ok());
      if (auto* io = std::get_if<IoNote>(&*note)) {
        output += io->data;
        continue;
      }
      break;  // state note
    }
  });
  EXPECT_EQ(output, "read: from-a-file\n");
}

TEST_F(DaemonRpcTest, IoSendReachesProcessStdin) {
  // §3.5.2's reverse path: user input travels controller -> daemon ->
  // gateway -> process standard input.
  world_.programs().register_program(
      "stdin-echo2", [](const std::vector<std::string>&) -> kernel::ProcessMain {
        return [](Sys& sys) {
          auto line = sys.read_line();
          if (line.ok() && line->has_value()) {
            (void)sys.print("heard: " + **line + "\n");
          }
        };
      });
  world_.machine(machines_[1]).fs.put_executable("stdin-echo2", "stdin-echo2");

  std::string output;
  as_controller([&](Sys& sys) {
    auto ns = sys.socket(SockDomain::internet, SockType::stream);
    auto bound = sys.bind_port(*ns, 0);
    (void)sys.listen(*ns, 8);

    CreateRequest req;
    req.uid = 100;
    req.filename = "stdin-echo2";
    req.control_port = bound->port;
    req.control_host = "red";
    auto addr = sys.resolve("green", kDaemonPort);
    auto reply = rpc_call(sys, *addr, req);
    auto* cr = std::get_if<CreateReply>(&*reply);
    ASSERT_NE(cr, nullptr);
    ASSERT_EQ(cr->status, 0);
    ProcRequest start{MsgType::start_request, 100, cr->pid};
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, start)).status, 0);

    IoSend input;
    input.uid = 100;
    input.pid = cr->pid;
    input.data = "type this\n";
    ASSERT_EQ(std::get<SimpleReply>(*rpc_call(sys, *addr, input)).status, 0);

    for (;;) {
      auto conn = sys.accept(*ns);
      ASSERT_TRUE(conn.ok());
      auto note = recv_msg(sys, *conn);
      (void)sys.close(*conn);
      ASSERT_TRUE(note.ok());
      if (auto* io = std::get_if<IoNote>(&*note)) {
        output += io->data;
        continue;
      }
      break;
    }
  });
  EXPECT_EQ(output, "heard: type this\n");
}

}  // namespace
}  // namespace dpm::daemon
