// Byte buffers and fixed-layout binary serialization.
//
// Meter messages and daemon protocol messages are defined by *byte layout*
// (the filter locates fields by offset/length, exactly as the paper's
// description files do), so serialization is explicit little-endian with
// fixed widths — never memcpy of structs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dpm::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian values to a byte vector. Two modes:
/// the default constructor writes into an internal buffer (take() moves it
/// out); the Bytes& constructor appends to a caller-owned buffer in place
/// (zero-copy serialization into an existing batch). In the second mode
/// size() and patch_u32() are relative to where this writer started, so
/// back-patched size words work identically in both modes.
class BinaryWriter {
 public:
  BinaryWriter() : out_(&own_) {}
  /// Appends to `out` (which must outlive the writer); take() is invalid.
  explicit BinaryWriter(Bytes& out) : out_(&out), base_(out.size()) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  /// Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t n);
  void raw(const Bytes& b);
  /// u32 length prefix followed by the bytes of `s`.
  void lstring(std::string_view s);
  /// Exactly `width` bytes: `s` truncated or zero-padded (fixed-layout field).
  void fixed_string(std::string_view s, std::size_t width);

  /// Overwrites a previously written u32 at `at` (for back-patched sizes).
  /// `at` counts from where this writer started appending.
  void patch_u32(std::size_t at, std::uint32_t v);

  /// Bytes written by this writer (not the whole target buffer).
  std::size_t size() const { return out_->size() - base_; }
  const Bytes& bytes() const& { return *out_; }
  Bytes take();

 private:
  /// Extends the buffer by `n` bytes and returns a pointer to the new
  /// region: one capacity check per value/span instead of one per byte
  /// (this writer sits on the meter's per-event encode path).
  std::uint8_t* grow(std::size_t n);

  Bytes own_;
  Bytes* out_;
  std::size_t base_ = 0;
};

/// Bounds-checked reader over a byte span. All getters return nullopt past
/// the end; once a read fails the reader stays failed (`ok()` is false).
class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int32_t> i32();
  std::optional<std::int64_t> i64();
  std::optional<Bytes> raw(std::size_t n);
  std::optional<std::string> lstring();
  /// Reads `width` bytes and strips trailing NULs (fixed-layout field).
  std::optional<std::string> fixed_string(std::size_t width);

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }
  void skip(std::size_t n);

 private:
  bool need(std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Hex dump ("de ad be ef") of at most `max_bytes` bytes, for diagnostics.
std::string hex_dump(const Bytes& b, std::size_t max_bytes = 64);

Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);

}  // namespace dpm::util
