#include "net/hosts.h"

#include <gtest/gtest.h>

namespace dpm::net {
namespace {

TEST(HostTable, RegistrationAndLookup) {
  HostTable t;
  ASSERT_TRUE(t.add_host("red", 1, {{0, 10}}));
  ASSERT_TRUE(t.add_host("green", 2, {{0, 11}}));
  EXPECT_EQ(t.machine_of("red").value(), 1u);
  EXPECT_EQ(t.name_of(2).value(), "green");
  EXPECT_FALSE(t.machine_of("blue").has_value());
}

TEST(HostTable, RejectsDuplicates) {
  HostTable t;
  ASSERT_TRUE(t.add_host("red", 1, {{0, 10}}));
  EXPECT_FALSE(t.add_host("red", 2, {{0, 11}}));     // name taken
  EXPECT_FALSE(t.add_host("blue", 3, {{0, 10}}));    // address taken
  EXPECT_FALSE(t.add_host("green", 1, {{0, 12}}));   // machine id taken
}

TEST(HostTable, ResolveFromPicksSharedNetwork) {
  // §3.5.4: a host on two networks has two addresses; the receiver
  // reconstructs the name using *its own* view of the target.
  HostTable t;
  ASSERT_TRUE(t.add_host("gateway", 1, {{0, 10}, {1, 20}}));
  ASSERT_TRUE(t.add_host("red", 2, {{0, 11}}));      // only network 0
  ASSERT_TRUE(t.add_host("blue", 3, {{1, 21}}));     // only network 1

  auto from_red = t.resolve_from("red", "gateway", 500);
  ASSERT_TRUE(from_red.has_value());
  EXPECT_EQ(from_red->network, 0);
  EXPECT_EQ(from_red->host, 10u);

  auto from_blue = t.resolve_from("blue", "gateway", 500);
  ASSERT_TRUE(from_blue.has_value());
  EXPECT_EQ(from_blue->network, 1);
  EXPECT_EQ(from_blue->host, 20u);

  // The same (host, port) pair thus resolves to *different* socket names
  // from different machines — why literal names must be exchanged.
  EXPECT_NE(from_red->text(), from_blue->text());
}

TEST(HostTable, NoSharedNetworkIsUnresolvable) {
  HostTable t;
  ASSERT_TRUE(t.add_host("red", 1, {{0, 10}}));
  ASSERT_TRUE(t.add_host("blue", 2, {{1, 20}}));
  EXPECT_FALSE(t.resolve_from("red", "blue", 5).has_value());
}

TEST(HostTable, MachineAtReverseLookup) {
  HostTable t;
  ASSERT_TRUE(t.add_host("red", 1, {{0, 10}}));
  EXPECT_EQ(t.machine_at(SockAddr::inet(0, 10, 999)).value(), 1u);
  EXPECT_FALSE(t.machine_at(SockAddr::inet(0, 99, 1)).has_value());
  EXPECT_FALSE(t.machine_at(SockAddr::unix_name("/x")).has_value());
}

TEST(HostTable, HostNamesSorted) {
  HostTable t;
  ASSERT_TRUE(t.add_host("zeta", 1, {{0, 1}}));
  ASSERT_TRUE(t.add_host("alpha", 2, {{0, 2}}));
  auto names = t.host_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace dpm::net
