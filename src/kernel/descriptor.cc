#include "kernel/descriptor.h"

namespace dpm::kernel {

Fd DescriptorTable::alloc(Descriptor d) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]) {
      slots_[i] = std::move(d);
      return static_cast<Fd>(i);
    }
  }
  return -1;
}

void DescriptorTable::install(Fd fd, Descriptor d) {
  if (fd < 0) return;
  const auto i = static_cast<std::size_t>(fd);
  if (i >= slots_.size()) return;
  slots_[i] = std::move(d);
}

Descriptor* DescriptorTable::get(Fd fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size()) return nullptr;
  auto& slot = slots_[static_cast<std::size_t>(fd)];
  return slot ? &*slot : nullptr;
}

const Descriptor* DescriptorTable::get(Fd fd) const {
  if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size()) return nullptr;
  const auto& slot = slots_[static_cast<std::size_t>(fd)];
  return slot ? &*slot : nullptr;
}

std::optional<Descriptor> DescriptorTable::release(Fd fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size()) return std::nullopt;
  auto& slot = slots_[static_cast<std::size_t>(fd)];
  if (!slot) return std::nullopt;
  std::optional<Descriptor> out = std::move(slot);
  slot.reset();
  return out;
}

std::size_t DescriptorTable::in_use() const {
  std::size_t n = 0;
  for (const auto& s : slots_) {
    if (s) ++n;
  }
  return n;
}

std::vector<std::pair<Fd, Descriptor>> DescriptorTable::entries() const {
  std::vector<std::pair<Fd, Descriptor>> out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]) out.emplace_back(static_cast<Fd>(i), *slots_[i]);
  }
  return out;
}

}  // namespace dpm::kernel
