// Online possibly/definitely detection of global predicates.
//
// The detector subscribes to a LiveAnalysis (LiveObserver) and turns its
// event/pairing stream into verdicts about compiled predicates:
//
//   * A *settled frontier* replays events in trace order, holding a
//     receive back until its matching send is known (or the pairing
//     layer expelled it as a gap) — so when an event settles, every
//     happens-before edge into it is final. A receive whose matched
//     send has not settled yet registers as that send's *waiter* and is
//     woken the moment the send's stamp is recorded, so a send blocked
//     behind its own process's unpaired receive can never wedge the
//     receiver's process. Send stamps are retained only until their
//     receive settles (join or gap), are pruned when the pairing TTL
//     expels the send itself, and are capped (lowest trace index
//     evicted first) — a waiter of an evicted stamp settles without the
//     join rather than stall.
//   * Per process it maintains a vector clock (exact happens-before:
//     receives join their send's clock), a hybrid logical clock
//     (l = max(l, local_reading, sender_l); the HLC never runs behind
//     any clock it has heard from), and the *state*: the last value of
//     every meter-record field, which is what clauses test.
//   * Per predicate instantiation (wildcard selectors bind to concrete
//     processes as they appear) and per conjunct, truth transitions of
//     the clause group open and close *intervals* stamped with the
//     VC/HLC/local-time bounds of the state's first and last events.
//   * Interval heads are checked Garg–Waldecker style: a tuple with no
//     pairwise exclusion is a witness cut. With physical skew bounded by
//     ε (MachineClock, World::clock_skew_bound_us):
//
//       possibly(P):  no pair ordered by happens-before, and every pair
//                     of intervals can overlap once readings are
//                     widened by ε;
//       definitely(P): possibly's conditions, and the latest start plus
//                     ε still precedes the earliest end — the overlap
//                     survives any skew assignment within ε, so every
//                     run through the lattice passes through it. (ε
//                     bounds any *pair* of readings of one instant, so
//                     all per-machine offsets against any one reference
//                     clock live in a window of width ε — shifting
//                     starts up and ends down can cost at most ε.)
//
//     definitely(P) ⊆ possibly(P) holds structurally: a definite verdict
//     is only ever emitted on a cut that already passed the possibly
//     tests. An excluded earlier interval can never witness again (its
//     peers' queues only move later) and is popped, so detection is
//     incremental and each interval is visited O(conjuncts) times.
//
// Verdicts are deterministic functions of the trace prefix: same trace,
// same chunking or not, same verdict sequence.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/live/aggregator.h"
#include "analysis/predicates/predicate.h"
#include "obs/registry.h"

namespace dpm::analysis::pred {

struct DetectorConfig {
  /// Physical clock-skew bound ε, in microseconds: any two machine-clock
  /// readings of the same instant differ by at most this. Drives both
  /// verdict tiers (see header comment). World::clock_skew_bound_us()
  /// computes a sound value for a simulated world.
  std::int64_t epsilon_us = 1000;
  /// Cap on concrete instantiations per predicate (cartesian growth over
  /// wildcard selectors); beyond it new combinations are counted
  /// (pred.instantiations_capped) and ignored.
  std::size_t max_instantiations = 64;
  /// Cap on retained (not yet consumed) verdicts.
  std::size_t max_verdicts = 4096;
  /// Cap on retained send stamps (sends settled but whose receive has
  /// not). Stamps normally die when the receive settles or the pairing
  /// TTL expels the send; the cap bounds the residue of sends whose
  /// receive never produces either signal in a long-running session.
  /// Past it the lowest-index stamp is dropped (its receive, if it ever
  /// settles, joins nothing — counted in pred.send_stamps_dropped).
  std::size_t max_send_stamps = 65536;
};

class PredicateDetector : public live::LiveObserver {
 public:
  /// `reg` defaults to a private registry, like LiveAnalysis. Pass the
  /// world's to surface pred.* in obs snapshots.
  PredicateDetector(const filter::Descriptions& desc, DetectorConfig cfg = {},
                    obs::Registry* reg = nullptr);

  /// Parses + compiles + registers one predicate spec. False + `error`
  /// on parse/compile failure or duplicate name.
  bool add_predicate(std::string_view spec_text, std::string* error = nullptr);

  // ---- LiveObserver (feed from a LiveAnalysis via add_observer) ----------
  void on_event(std::size_t index, const Event& e) override;
  void on_pair(std::size_t send_index, std::size_t recv_index) override;
  void on_gap(std::size_t index) override;

  /// Settles everything still buffered (receives whose sends never
  /// arrived settle without a join). Call at end of trace before reading
  /// final verdicts; feeding more events afterwards is undefined.
  void finish();

  // ---- results ------------------------------------------------------------
  enum class VerdictKind : std::uint8_t { possibly, definitely };

  struct WitnessInterval {
    ProcKey proc;
    std::int64_t lo_hlc_us = 0;  // HLC physical component at state entry
    std::int64_t hi_hlc_us = 0;  // ... at last settled event while true
    std::int64_t lo_local_us = 0;  // raw machine-clock readings (for
    std::int64_t hi_local_us = 0;  // ground-truth inversion in benches)
    std::size_t lo_index = 0;      // trace indices of the interval bounds
    std::size_t hi_index = 0;
    bool open = false;  // still true when the verdict was emitted
  };

  struct Verdict {
    std::string predicate;
    VerdictKind kind = VerdictKind::possibly;
    std::uint64_t occurrence = 0;  // per-predicate witness ordinal
    std::int64_t cut_lo_us = 0;    // witness window: latest interval start
    std::int64_t cut_hi_us = 0;    // ... earliest interval end (HLC us)
    std::int64_t detect_lag_us = 0;  // frontier HLC - cut_lo at emission
    std::vector<WitnessInterval> witness;  // one per local conjunct
  };

  /// Verdicts emitted since the last take; order is emission order.
  std::vector<Verdict> take_verdicts();
  /// All verdicts retained so far (bounded by cfg.max_verdicts).
  const std::deque<Verdict>& verdicts() const { return verdicts_; }

  struct PredicateStatus {
    std::string name;
    std::string spec;
    std::size_t instantiations = 0;
    std::uint64_t possibly_count = 0;
    std::uint64_t definitely_count = 0;
    /// 0 = never held, 1 = possibly, 2 = definitely (the strongest
    /// verdict emitted so far; mirrors the pred.state.<name> gauge).
    int strongest = 0;
  };
  std::vector<PredicateStatus> status() const;

  struct Stats {
    std::size_t events = 0;       // observed from the live stream
    std::size_t settled = 0;      // passed the frontier
    std::size_t unsettled = 0;    // buffered awaiting pairing evidence
    std::size_t predicates = 0;
    std::size_t instantiations = 0;
    std::size_t open_intervals = 0;
    std::uint64_t cuts_examined = 0;
    std::uint64_t verdicts_possibly = 0;
    std::uint64_t verdicts_definitely = 0;
    std::size_t capped_instantiations = 0;
    std::size_t send_stamps = 0;          // retained, awaiting their recv
    std::size_t send_stamps_dropped = 0;  // pruned (TTL gap / cap / no recv)
  };
  Stats stats() const;

  const DetectorConfig& config() const { return cfg_; }
  obs::Registry& obs() { return *reg_; }

 private:
  static constexpr std::size_t kNoIndex = SIZE_MAX;

  using Vc = std::vector<std::uint32_t>;  // indexed by dense proc slot

  struct Interval {
    std::int64_t lo_l = 0, hi_l = 0;    // HLC physical bounds
    std::int64_t lo_pt = 0, hi_pt = 0;  // raw local-clock bounds
    Vc lo_vc, hi_vc;                    // VC at entry / last event while true
    std::size_t lo_index = 0, hi_index = 0;
    bool open = true;
  };

  /// One (instantiation, conjunct): the concrete process, its pending
  /// closed intervals, and the currently open one.
  struct Tracker {
    std::size_t proc_slot = 0;
    bool holds = false;
    Interval open;                 // valid while holds
    std::deque<Interval> queue;    // closed, FIFO
  };

  struct Instantiation {
    std::vector<Tracker> trackers;  // one per local conjunct
    std::uint64_t occurrences = 0;
    /// Last emitted witness signature (lo_index per conjunct) and whether
    /// it already got a definite verdict — dedups re-examination of a
    /// tuple that includes still-open intervals.
    std::vector<std::size_t> last_sig;
    bool last_definitely = false;
    std::uint64_t last_occ = 0;
  };

  struct PredState {
    CompiledPredicate compiled;
    std::vector<Instantiation> insts;
    /// Per conjunct: proc slots already bound (drives incremental
    /// cartesian instantiation as processes appear).
    std::vector<std::vector<std::size_t>> bound;
    std::uint64_t possibly_count = 0;
    std::uint64_t definitely_count = 0;
    int strongest = 0;
    obs::Counter* c_occurrences = nullptr;
    obs::Gauge* g_state = nullptr;
  };

  struct ProcRt {
    ProcKey key;
    Vc vc;
    std::int64_t hlc_l = 0;
    std::uint32_t hlc_c = 0;
    std::int64_t last_pt = 0;
    std::size_t last_index = 0;
    std::vector<std::optional<filter::FieldValue>> state;
  };

  struct PendEvent {
    Event e;
    std::size_t index = 0;
    std::size_t send_index = kNoIndex;  // for receives: the matched send
    bool gap = false;                   // expelled by the pairing TTL
  };

  /// Stamps of a settled send, held until its receive settles and joins.
  struct SendStamp {
    Vc vc;
    std::int64_t hlc_l = 0;
    std::size_t proc_slot = 0;
  };

  void settle_ready();
  void settle(PendEvent& pe);
  void wake_waiter(std::size_t send_index);
  void drop_send_stamp(std::size_t send_index);
  std::size_t proc_slot(const ProcKey& key);
  void bind_one(std::size_t pred_index, std::size_t slot);
  void expand_combos(std::size_t pred_index, std::size_t pinned,
                     std::size_t at, std::vector<std::size_t>& combo);
  bool conjunct_holds(const CompiledConjunct& cc, const ProcRt& rt) const;
  void update_trackers(std::size_t slot, std::uint32_t changed_mask,
                       bool terminating, const ProcRt& rt);
  void close_open(Tracker& t, const ProcRt& rt, std::int64_t end_l,
                  std::int64_t end_pt);
  void check_instantiation(PredState& ps, Instantiation& inst);
  bool hb_before(const Vc& hi, std::size_t hi_slot, const Vc& lo) const;
  bool reaches_hold(const PredState& ps) const;
  void emit_verdict(PredState& ps, Instantiation& inst,
                    const std::vector<const Interval*>& heads,
                    VerdictKind kind);

  const filter::Descriptions& desc_;
  DetectorConfig cfg_;
  StateUpdateTable updates_;
  std::unique_ptr<obs::Registry> own_reg_;
  obs::Registry* reg_ = nullptr;

  std::map<ProcKey, std::size_t> slot_of_;
  std::vector<ProcRt> procs_;
  std::map<std::string, std::size_t> pred_of_;  // name -> preds_ index
  std::vector<PredState> preds_;

  std::map<std::size_t, PendEvent> pending_;  // index -> unsettled event
  std::map<ProcKey, std::deque<std::size_t>> proc_pending_;
  std::set<std::size_t> candidates_;  // settle-eligible (to re-verify)
  std::map<std::size_t, SendStamp> send_stamps_;
  /// send index -> receive index parked on its stamp; woken (re-inserted
  /// into candidates_) when the send settles or its stamp is dropped.
  std::map<std::size_t, std::size_t> send_waiters_;
  std::set<std::pair<std::size_t, std::size_t>> channels_;  // settled edges
  std::size_t settled_ = 0;
  std::size_t events_seen_ = 0;
  std::int64_t frontier_l_ = 0;     // max HLC l over settled events
  std::size_t capped_ = 0;
  std::size_t insts_total_ = 0;     // instantiations across all predicates
  std::size_t stamps_dropped_ = 0;
  bool finished_ = false;

  std::deque<Verdict> verdicts_;
  std::size_t taken_ = 0;  // verdicts_ prefix already returned by take

  obs::Counter* c_verdicts_ = nullptr;
  obs::Counter* c_possibly_ = nullptr;
  obs::Counter* c_definitely_ = nullptr;
  obs::Counter* c_cuts_ = nullptr;
  obs::Counter* c_capped_ = nullptr;
  obs::Counter* c_stamps_dropped_ = nullptr;
  obs::Gauge* g_predicates_ = nullptr;
  obs::Gauge* g_insts_ = nullptr;
  obs::Gauge* g_open_ = nullptr;
  obs::Gauge* g_unsettled_ = nullptr;
  obs::Histogram* h_lag_ = nullptr;
};

}  // namespace dpm::analysis::pred
