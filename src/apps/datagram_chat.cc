// Datagram programs: a sink that drains traffic until the network goes
// quiet and a sender that fires a burst. They exercise the unreliable
// path (§3.1: datagram delivery "is not guaranteed, though it is likely")
// and give experiment E5 its loss measurements.
#include "apps/apps.h"
#include "apps/apps_util.h"

namespace dpm::apps {

using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

kernel::ProcessMain make_dgram_sink(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto port = static_cast<net::Port>(arg_int(argv, 1, 6000));
    const auto quiet_ms = arg_int(argv, 2, 200);

    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    if (!fd || !sys.bind_port(*fd, port)) sys.exit(1);

    std::int64_t received = 0;
    std::int64_t bytes = 0;
    for (;;) {
      auto sel = sys.select({*fd}, false, util::msec(quiet_ms));
      if (!sel || sel->timed_out) break;
      auto d = sys.recvfrom(*fd);
      if (!d) break;
      ++received;
      bytes += static_cast<std::int64_t>(d->data.size());
    }
    (void)sys.print(util::strprintf("dgram_sink: %lld datagrams, %lld bytes\n",
                                    static_cast<long long>(received),
                                    static_cast<long long>(bytes)));
    sys.exit(0);
  };
}

kernel::ProcessMain make_dgram_sender(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const std::string host = arg_str(argv, 1, "localhost");
    const auto port = static_cast<net::Port>(arg_int(argv, 2, 6000));
    const auto count = arg_int(argv, 3, 10);
    const auto bytes = static_cast<std::size_t>(arg_int(argv, 4, 64));

    auto addr = sys.resolve(host, port);
    if (!addr) sys.exit(1);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    if (!fd) sys.exit(1);
    // connect() predefines the recipient (§3.1) and, by binding the
    // socket's name into a CONNECT record, lets the analysis attribute
    // this sender's datagrams.
    if (!sys.connect(*fd, *addr)) sys.exit(1);

    const util::Bytes msg = payload(bytes, 0x11);
    for (std::int64_t i = 0; i < count; ++i) {
      (void)sys.send(*fd, msg);
      sys.sleep(util::usec(500));
    }
    sys.exit(0);
  };
}

kernel::ProcessMain make_burst_sender(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    // "self" targets the sender's own machine: one addgroup line can then
    // start a sender per machine without naming each host.
    const std::string host = arg_str(argv, 1, "self");
    const auto port = static_cast<net::Port>(arg_int(argv, 2, 6000));
    const auto count = arg_int(argv, 3, 64);
    const auto small = static_cast<std::size_t>(arg_int(argv, 4, 64));
    const auto big = static_cast<std::size_t>(arg_int(argv, 5, 512));
    const auto every = arg_int(argv, 6, 8);
    const auto gap_us = arg_int(argv, 7, 500);

    auto addr = sys.resolve(host == "self" ? sys.hostname() : host, port);
    if (!addr) sys.exit(1);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    if (!fd) sys.exit(1);
    if (!sys.connect(*fd, *addr)) sys.exit(1);

    const util::Bytes s_msg = payload(small, 0x21);
    const util::Bytes b_msg = payload(big, 0x22);
    for (std::int64_t i = 0; i < count; ++i) {
      // Every `every`-th datagram is the large one: with a size-selective
      // filter rule, exactly 1/every of this sender's records survive.
      (void)sys.send(*fd, (every > 0 && i % every == 0) ? b_msg : s_msg);
      sys.sleep(util::usec(gap_us));
    }
    sys.exit(0);
  };
}

kernel::ProcessMain make_waiter(const std::vector<std::string>& argv) {
  (void)argv;
  return [](Sys& sys) {
    // Parks forever in a timeout-less select on a socket nothing sends
    // to: alive until killed, yet contributes no events — so a world full
    // of waiters still reaches quiescence and command windows measure
    // only the controller's own RPC traffic.
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    if (fd && sys.bind_port(*fd, 0)) {
      for (;;) {
        auto sel = sys.select({*fd}, false, std::nullopt);
        if (!sel) break;
        (void)sys.recvfrom(*fd);
      }
    }
    sys.exit(0);
  };
}

}  // namespace dpm::apps
