// E1 — metering cost at the kernel (§3.2, §4.1).
//
// The paper's design claim: buffering meter messages makes the number of
// messages sent to the filter "considerably smaller" than the number of
// events; M_IMMEDIATE trades that for promptness. This benchmark measures
// (a) the simulated CPU cost added to a metered process per event, and
// (b) the meter-message amplification, across buffer sizes and the
// immediate mode.
//
// Counters:
//   sim_us_per_send  simulated cost of one send syscall under this config
//   events           meter events generated
//   flushes          meter messages (batches) actually sent
//   meter_bytes      bytes shipped over the meter connection
#include "bench_util.h"

namespace dpm::bench {
namespace {

constexpr int kSends = 400;

/// Runs `kSends` socketpair sends under the given metering mode.
/// buffer_msgs == 0 means unmetered; immediate==true forces M_IMMEDIATE.
void run_send_workload(benchmark::State& state, std::uint32_t buffer_msgs,
                       bool immediate, meter::Flags flags) {
  double total_sim_us = 0;
  std::uint64_t events = 0, flushes = 0, bytes = 0;

  for (auto _ : state) {
    kernel::WorldConfig cfg;
    if (buffer_msgs > 0) cfg.meter_buffer_msgs = buffer_msgs;
    cfg.meter_buffer_bytes = 1 << 20;  // count-driven flushing only
    auto world = make_world(2, cfg);

    // Meter sink on m1.
    (void)world->spawn(2, "sink", 100, [](kernel::Sys& sys) {
      auto ls = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 4);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto data = sys.recv(*conn, 65536);
        if (!data.ok() || data->empty()) break;
      }
    });

    std::int64_t t0 = 0, t1 = 0;
    (void)world->spawn(1, "app", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      if (buffer_msgs > 0) {
        auto addr = sys.resolve("m1", 4500);
        auto ms = sys.socket(kernel::SockDomain::internet,
                             kernel::SockType::stream);
        (void)sys.connect(*ms, *addr);
        meter::Flags f = flags;
        if (immediate) f |= meter::M_IMMEDIATE;
        (void)sys.setmeter(meter::SETMETER_SELF,
                           static_cast<std::int32_t>(f), *ms);
        (void)sys.close(*ms);
      }
      auto pair = sys.socketpair();
      t0 = util::count_us(world->now());
      for (int i = 0; i < kSends; ++i) {
        (void)sys.send(pair->first, "0123456789abcdef");
      }
      t1 = util::count_us(world->now());
    });
    world->run();

    total_sim_us += static_cast<double>(t1 - t0);
    const kernel::MeterStats stats = world->meter_stats();
    events += stats.events;
    flushes += stats.flushes;
    bytes += stats.bytes;
  }

  const double iters = static_cast<double>(state.iterations());
  state.counters["sim_us_per_send"] = total_sim_us / iters / kSends;
  state.counters["events"] = static_cast<double>(events) / iters;
  state.counters["flushes"] = static_cast<double>(flushes) / iters;
  state.counters["meter_bytes"] = static_cast<double>(bytes) / iters;
}

void BM_Unmetered(benchmark::State& state) {
  run_send_workload(state, 0, false, 0);
}

void BM_MeteredBuffered(benchmark::State& state) {
  run_send_workload(state, static_cast<std::uint32_t>(state.range(0)), false,
                    meter::M_ALL);
}

void BM_MeteredImmediate(benchmark::State& state) {
  run_send_workload(state, 1, true, meter::M_ALL);
}

void BM_MeteredSendFlagOnly(benchmark::State& state) {
  run_send_workload(state, 8, false, meter::M_SEND);
}

BENCHMARK(BM_Unmetered)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MeteredBuffered)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MeteredImmediate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MeteredSendFlagOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
