// CompiledTemplates: the clause plans resolved against the record
// descriptions must decide exactly like the interpreted evaluator, via
// index lookups only, and fall back cleanly for records it cannot place.
#include "filter/compiled_templates.h"

#include <gtest/gtest.h>

#include "filter/trace.h"
#include "meter/metermsgs.h"

namespace dpm::filter {
namespace {

Descriptions standard_descriptions() {
  auto d = Descriptions::parse(default_descriptions_text());
  EXPECT_TRUE(d.has_value());
  return std::move(*d);
}

Record decoded(const Descriptions& desc, const meter::MeterMsg& msg) {
  auto rec = desc.decode(msg.serialize());
  EXPECT_TRUE(rec.has_value());
  return std::move(*rec);
}

meter::MeterMsg send_msg(std::uint16_t machine, meter::SocketId sock,
                         std::uint32_t len, const std::string& dest) {
  meter::MeterMsg m;
  m.body = meter::MeterSend{7, 0, sock, len, dest};
  m.header.machine = machine;
  m.header.cpu_time = 5000;
  return m;
}

TEST(CompiledTemplates, EmptyRuleSetAcceptsEverything) {
  const Descriptions desc = standard_descriptions();
  const auto compiled = CompiledTemplates::compile(Templates{}, desc);
  const Record rec = decoded(desc, send_msg(1, 3, 10, "x"));
  auto d = compiled.evaluate(rec);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->accept);
  EXPECT_EQ(d->discard, nullptr);
}

TEST(CompiledTemplates, PaperRulesMatchInterpreted) {
  const Descriptions desc = standard_descriptions();
  const std::string rules =
      "machine=5, cpuTime<10000\n"
      "machine=0, type=1, sock=4, destName=228320140\n";
  auto templ = Templates::parse(rules);
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, desc);
  EXPECT_EQ(compiled.plan_count(), desc.size());

  const Record hit = decoded(desc, send_msg(0, 4, 100, "228320140"));
  const Record miss = decoded(desc, send_msg(0, 5, 100, "228320140"));
  auto dh = compiled.evaluate(hit);
  auto dm = compiled.evaluate(miss);
  ASSERT_TRUE(dh.has_value());
  ASSERT_TRUE(dm.has_value());
  EXPECT_TRUE(dh->accept);
  EXPECT_FALSE(dm->accept);
  EXPECT_EQ(dh->accept, templ->evaluate(hit).accept);
  EXPECT_EQ(dm->accept, templ->evaluate(miss).accept);
}

TEST(CompiledTemplates, DiscardMaskRendersLikeDiscardSet) {
  const Descriptions desc = standard_descriptions();
  auto templ = Templates::parse("machine=#*, pid=#*, type=1, msgLength>=64\n");
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, desc);

  const Record rec = decoded(desc, send_msg(3, 2, 64, "name"));
  auto cd = compiled.evaluate(rec);
  ASSERT_TRUE(cd.has_value());
  ASSERT_TRUE(cd->accept);
  ASSERT_NE(cd->discard, nullptr);
  const Templates::Decision id = templ->evaluate(rec);
  ASSERT_TRUE(id.accept);
  EXPECT_EQ(trace_line(rec, cd->discard), trace_line(rec, id.discard));
  // The mask really drops the fields.
  const std::string line = trace_line(rec, cd->discard);
  EXPECT_EQ(line.find("machine="), std::string::npos);
  EXPECT_EQ(line.find(" pid="), std::string::npos);
  EXPECT_NE(line.find("msgLength="), std::string::npos);
}

TEST(CompiledTemplates, FieldReferenceResolvedAgainstDescription) {
  const Descriptions desc = standard_descriptions();
  auto templ = Templates::parse("type=8, sockName=peerName\n");
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, desc);

  meter::MeterMsg same;
  same.body = meter::MeterAccept{1, 0, 4, 5, "131073", "131073"};
  meter::MeterMsg diff;
  diff.body = meter::MeterAccept{1, 0, 4, 5, "131073", "196612"};
  auto ds = compiled.evaluate(decoded(desc, same));
  auto dd = compiled.evaluate(decoded(desc, diff));
  ASSERT_TRUE(ds.has_value());
  ASSERT_TRUE(dd.has_value());
  EXPECT_TRUE(ds->accept);
  EXPECT_FALSE(dd->accept);
}

TEST(CompiledTemplates, LiteralEqualToFieldNameIsAFieldRef) {
  // The documented tie-break: a value token naming a field of the event's
  // record is a field reference — deterministically, per event type. On
  // SEND, "destName=pid" compares the destName string against the pid
  // field, not against the literal "pid".
  const Descriptions desc = standard_descriptions();
  auto templ = Templates::parse("type=1, destName=pid\n");
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, desc);

  meter::MeterMsg m;
  m.body = meter::MeterSend{7, 0, 3, 10, "7"};  // destName "7" == pid 7
  const Record ref_match = decoded(desc, m);
  m.body = meter::MeterSend{7, 0, 3, 10, "pid"};  // the literal string
  const Record lit = decoded(desc, m);

  auto dm = compiled.evaluate(ref_match);
  auto dl = compiled.evaluate(lit);
  ASSERT_TRUE(dm.has_value());
  ASSERT_TRUE(dl.has_value());
  EXPECT_TRUE(dm->accept);
  EXPECT_FALSE(dl->accept);
  // Interpreted path agrees on decoded records.
  EXPECT_TRUE(templ->evaluate(ref_match).accept);
  EXPECT_FALSE(templ->evaluate(lit).accept);
}

TEST(CompiledTemplates, InfeasibleRuleOnlySkippedForThatType) {
  // "newPid=8" can never hold for SEND (no such field) but selects FORKs.
  const Descriptions desc = standard_descriptions();
  auto templ = Templates::parse("newPid=8\n");
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, desc);

  meter::MeterMsg fork;
  fork.body = meter::MeterFork{1, 0, 8};
  auto df = compiled.evaluate(decoded(desc, fork));
  ASSERT_TRUE(df.has_value());
  EXPECT_TRUE(df->accept);

  auto dsend = compiled.evaluate(decoded(desc, send_msg(0, 3, 10, "x")));
  ASSERT_TRUE(dsend.has_value());
  EXPECT_FALSE(dsend->accept);
}

TEST(CompiledTemplates, UnknownTypeFallsBack) {
  const Descriptions desc = standard_descriptions();
  auto templ = Templates::parse("machine=1\n");
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, desc);

  Record odd;
  odd.type = 99;  // not described
  odd.event_name = "ODD";
  odd.fields.emplace_back("machine", std::int64_t{1});
  EXPECT_FALSE(compiled.evaluate(odd).has_value());

  // A known type whose field count does not match the description (a
  // hand-built record) is also not decided by the compiled plan.
  Record short_rec;
  short_rec.type = 1;
  short_rec.event_name = "SEND";
  short_rec.fields.emplace_back("machine", std::int64_t{1});
  EXPECT_FALSE(compiled.evaluate(short_rec).has_value());
}

TEST(CompiledTemplates, RecordLayoutMatchesDecodeOrder) {
  const Descriptions desc = standard_descriptions();
  for (std::uint32_t type : desc.types()) {
    const auto layout = desc.record_layout(type);
    meter::MeterMsg m = meter::make_msg(static_cast<meter::EventType>(type));
    const Record rec = decoded(desc, m);
    ASSERT_EQ(rec.fields.size(), layout.size()) << "type " << type;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      EXPECT_EQ(rec.fields[i].first, layout[i]) << "type " << type;
    }
  }
  EXPECT_TRUE(desc.record_layout(99).empty());
}

}  // namespace
}  // namespace dpm::filter
