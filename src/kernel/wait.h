// Wait channels: the kernel's sleep/wakeup primitive.
//
// Waiters re-check their condition after every wakeup (wakeups may be
// spurious — a task can appear on several channels at once), mirroring the
// classic UNIX sleep/wakeup discipline.
#pragma once

#include <vector>

#include "sim/executive.h"

namespace dpm::kernel {

struct WaitChannel {
  std::vector<sim::TaskId> waiters;

  void add(sim::TaskId id) { waiters.push_back(id); }

  void wake_all(sim::Executive& exec) {
    // Swap out first: a woken task may immediately re-register.
    std::vector<sim::TaskId> ids;
    ids.swap(waiters);
    for (sim::TaskId id : ids) exec.make_runnable(id);
  }
};

}  // namespace dpm::kernel
