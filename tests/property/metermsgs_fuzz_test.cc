// Property tests for the meter message wire format: random messages
// round-trip bit-exactly; arbitrary bytes and truncations never crash or
// mis-parse.
#include <gtest/gtest.h>

#include "meter/metermsgs.h"
#include "util/rng.h"

namespace dpm::meter {
namespace {

std::string random_name(util::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0: return "";
    case 1: return std::to_string(rng.uniform(0, 1u << 30));
    case 2: return "/tmp/sock" + std::to_string(rng.uniform(0, 99));
    default: return "#" + std::to_string(rng.uniform(1, 1 << 20));
  }
}

MeterMsg random_msg(util::Rng& rng) {
  MeterMsg m;
  const Pid pid = static_cast<Pid>(rng.uniform(1, 1 << 20));
  const auto pc = static_cast<std::uint32_t>(rng.uniform(0, 1 << 30));
  const auto sock = static_cast<SocketId>(rng.uniform(1, 1 << 24));
  switch (rng.uniform(1, 10)) {
    case 1:
      m.body = MeterSend{pid, pc, sock,
                         static_cast<std::uint32_t>(rng.uniform(0, 1 << 16)),
                         random_name(rng)};
      break;
    case 2:
      m.body = MeterRecv{pid, pc, sock,
                         static_cast<std::uint32_t>(rng.uniform(0, 1 << 16)),
                         random_name(rng)};
      break;
    case 3: m.body = MeterRecvCall{pid, pc, sock}; break;
    case 4:
      m.body = MeterSockCrt{pid, pc, sock,
                            static_cast<std::uint32_t>(rng.uniform(1, 3)),
                            static_cast<std::uint32_t>(rng.uniform(1, 2)), 0};
      break;
    case 5: m.body = MeterDup{pid, pc, sock, sock + 1}; break;
    case 6: m.body = MeterDestSock{pid, pc, sock}; break;
    case 7: m.body = MeterFork{pid, pc, pid + 1}; break;
    case 8:
      m.body = MeterAccept{pid, pc, sock, sock + 1, random_name(rng),
                           random_name(rng)};
      break;
    case 9:
      m.body = MeterConnect{pid, pc, sock, random_name(rng), random_name(rng)};
      break;
    default:
      m.body = MeterTermProc{pid, pc,
                             static_cast<std::int32_t>(rng.uniform(-1, 255))};
      break;
  }
  m.header.machine = static_cast<std::uint16_t>(rng.uniform(0, 64));
  m.header.cpu_time = rng.uniform(-1000000, 1000000000);
  m.header.proc_time = rng.uniform(0, 100000000) / 10000 * 10000;
  return m;
}

class MeterMsgFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MeterMsgFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST_P(MeterMsgFuzz, RoundTripIsExact) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    MeterMsg m = random_msg(rng);
    auto wire = m.serialize();
    auto parsed = MeterMsg::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type(), m.type());
    EXPECT_EQ(parsed->header.machine, m.header.machine);
    EXPECT_EQ(parsed->header.cpu_time, m.header.cpu_time);
    EXPECT_EQ(parsed->header.proc_time, m.header.proc_time);
    EXPECT_EQ(parsed->serialize(), wire);  // canonical
  }
}

TEST_P(MeterMsgFuzz, TruncationNeverParsesAsComplete) {
  util::Rng rng(GetParam() + 100);
  for (int i = 0; i < 50; ++i) {
    MeterMsg m = random_msg(rng);
    auto wire = m.serialize();
    for (std::size_t cut = 1; cut < wire.size(); ++cut) {
      util::Bytes partial(wire.begin(),
                          wire.begin() + static_cast<std::ptrdiff_t>(cut));
      std::size_t pos = 0;
      EXPECT_FALSE(MeterMsg::parse_stream(partial, pos).has_value());
      EXPECT_EQ(pos, 0u);
    }
  }
}

TEST_P(MeterMsgFuzz, RandomBytesNeverCrash) {
  util::Rng rng(GetParam() + 200);
  for (int i = 0; i < 500; ++i) {
    util::Bytes junk(static_cast<std::size_t>(rng.uniform(0, 200)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    std::size_t pos = 0;
    // Either a (coincidental) parse or a clean rejection — never a crash
    // or an out-of-bounds read.
    (void)MeterMsg::parse_stream(junk, pos);
    EXPECT_LE(pos, junk.size());
  }
}

TEST_P(MeterMsgFuzz, StreamOfManyMessagesReassembles) {
  util::Rng rng(GetParam() + 300);
  std::vector<MeterMsg> msgs;
  util::Bytes wire;
  for (int i = 0; i < 64; ++i) {
    msgs.push_back(random_msg(rng));
    auto one = msgs.back().serialize();
    wire.insert(wire.end(), one.begin(), one.end());
  }
  std::size_t pos = 0;
  std::size_t count = 0;
  while (auto m = MeterMsg::parse_stream(wire, pos)) {
    ASSERT_LT(count, msgs.size());
    EXPECT_EQ(m->type(), msgs[count].type());
    ++count;
  }
  EXPECT_EQ(count, msgs.size());
  EXPECT_EQ(pos, wire.size());
}

}  // namespace
}  // namespace dpm::meter
