// Zero-copy meter→filter pipeline (§3.2–§3.4, §4).
//
// The monitor's hot path is meter_emit → batch flush → filter framing →
// selection → log. This benchmark measures both halves of the PR-2
// zero-copy rework against the paths they replaced:
//
//   * encode: MeterMsg::serialize_into appending straight into the pending
//     batch (with the batch capacity pre-reserved, as meter_emit does)
//     versus the old serialize-to-temporary-then-copy;
//   * filter ingestion: FilterEngine matching on wire views and decoding
//     only accepted records (EvalPath::view) versus decoding every record
//     first (EvalPath::owned);
//   * filter dispatch: the compiled clause-plan walker versus the flat
//     filter bytecode (MatchEngine::compiled vs ::bytecode), same rules,
//     same wire views;
//   * end-to-end: each workload (send/recv-heavy, accept/connect-heavy,
//     mixed) replayed through kernel::meter_emit in a live World, carried
//     by batched socket sends + compiled matching versus the shared meter
//     ring + bytecode, timed in real seconds with the produced logs
//     byte-compared across the two transports.
//
// Every run writes BENCH_pipeline.json (the mixed-workload encode/filter
// rates, the per-workload e2e comparison, and the equivalence verdicts).
// `bench_pipeline --smoke` checks that the owned-Record and RecordView
// paths produce byte-identical selected log output (whole-batch and
// chunked feeds) and identical stats, that every workload's batch and
// ring logs byte-compare equal, validates the JSON, and exits; it is
// registered under ctest and also run under the sanitizer configuration.
#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "filter/filter_program.h"
#include "filter/trace.h"
#include "kernel/meter_hooks.h"
#include "meter/metermsgs.h"
#include "obs/snapshot.h"
#include "util/strings.h"
#include "workloads.h"

namespace dpm::bench {
namespace {

// ---- encode path: serialize+copy vs serialize_into ------------------------

/// The pre-PR meter_emit body: serialize into a temporary, copy into the
/// pending batch, swap the batch out at the flush threshold.
std::uint64_t encode_owned(const std::vector<meter::MeterMsg>& msgs,
                           std::size_t flush_bytes) {
  util::Bytes pending;
  std::uint64_t bytes = 0;
  for (const auto& m : msgs) {
    const util::Bytes wire = m.serialize();
    pending.insert(pending.end(), wire.begin(), wire.end());
    if (pending.size() >= flush_bytes) {
      util::Bytes batch;
      batch.swap(pending);
      bytes += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
  bytes += pending.size();
  benchmark::DoNotOptimize(pending.data());
  return bytes;
}

/// The zero-copy meter_emit body: reserve once per batch, encode in place.
std::uint64_t encode_zero_copy(const std::vector<meter::MeterMsg>& msgs,
                               std::size_t flush_bytes) {
  constexpr std::size_t kSlack = 256;  // meter_hooks' overshoot headroom
  util::Bytes pending;
  std::uint64_t bytes = 0;
  for (const auto& m : msgs) {
    if (pending.capacity() < flush_bytes + kSlack) {
      pending.reserve(flush_bytes + kSlack);
    }
    m.serialize_into(pending);
    if (pending.size() >= flush_bytes) {
      util::Bytes batch;
      batch.swap(pending);
      bytes += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
  bytes += pending.size();
  benchmark::DoNotOptimize(pending.data());
  return bytes;
}

constexpr int kEvents = 2000;
constexpr std::size_t kFlushBytes = 1024;  // WorldConfig default

void run_encode(benchmark::State& state, Workload w, bool zero_copy) {
  const auto msgs = make_messages(w, kEvents);
  std::uint64_t events = 0, bytes = 0;
  for (auto _ : state) {
    bytes += zero_copy ? encode_zero_copy(msgs, kFlushBytes)
                       : encode_owned(msgs, kFlushBytes);
    events += msgs.size();
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

void BM_Encode_Owned_SendRecv(benchmark::State& state) {
  run_encode(state, Workload::sendrecv, false);
}
void BM_Encode_ZeroCopy_SendRecv(benchmark::State& state) {
  run_encode(state, Workload::sendrecv, true);
}
void BM_Encode_Owned_AcceptConnect(benchmark::State& state) {
  run_encode(state, Workload::acceptconnect, false);
}
void BM_Encode_ZeroCopy_AcceptConnect(benchmark::State& state) {
  run_encode(state, Workload::acceptconnect, true);
}
void BM_Encode_Owned_Mixed(benchmark::State& state) {
  run_encode(state, Workload::mixed, false);
}
void BM_Encode_ZeroCopy_Mixed(benchmark::State& state) {
  run_encode(state, Workload::mixed, true);
}

BENCHMARK(BM_Encode_Owned_SendRecv);
BENCHMARK(BM_Encode_ZeroCopy_SendRecv);
BENCHMARK(BM_Encode_Owned_AcceptConnect);
BENCHMARK(BM_Encode_ZeroCopy_AcceptConnect);
BENCHMARK(BM_Encode_Owned_Mixed);
BENCHMARK(BM_Encode_ZeroCopy_Mixed);

// ---- filter ingestion: owned decode vs wire views -------------------------

void run_filter(benchmark::State& state, Workload w, filter::EvalPath path) {
  const util::Bytes batch = make_batch(w, kEvents);
  auto engine = make_engine(path);
  std::uint64_t records = 0, conn = 0;
  for (auto _ : state) {
    std::string log = engine.feed(++conn, batch);
    benchmark::DoNotOptimize(log);
    records += kEvents;
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["accept_rate"] =
      static_cast<double>(engine.stats().accepted) /
      static_cast<double>(engine.stats().records_in);
}

void BM_Filter_Owned_SendRecv(benchmark::State& state) {
  run_filter(state, Workload::sendrecv, filter::EvalPath::owned);
}
void BM_Filter_View_SendRecv(benchmark::State& state) {
  run_filter(state, Workload::sendrecv, filter::EvalPath::view);
}
void BM_Filter_Owned_AcceptConnect(benchmark::State& state) {
  run_filter(state, Workload::acceptconnect, filter::EvalPath::owned);
}
void BM_Filter_View_AcceptConnect(benchmark::State& state) {
  run_filter(state, Workload::acceptconnect, filter::EvalPath::view);
}
void BM_Filter_Owned_Mixed(benchmark::State& state) {
  run_filter(state, Workload::mixed, filter::EvalPath::owned);
}
void BM_Filter_View_Mixed(benchmark::State& state) {
  run_filter(state, Workload::mixed, filter::EvalPath::view);
}

BENCHMARK(BM_Filter_Owned_SendRecv);
BENCHMARK(BM_Filter_View_SendRecv);
BENCHMARK(BM_Filter_Owned_AcceptConnect);
BENCHMARK(BM_Filter_View_AcceptConnect);
BENCHMARK(BM_Filter_Owned_Mixed);
BENCHMARK(BM_Filter_View_Mixed);

// ---- filter dispatch: compiled plan walker vs flat bytecode ---------------

void run_match(benchmark::State& state, Workload w, filter::MatchEngine m) {
  const util::Bytes batch = make_batch(w, kEvents);
  auto engine = make_engine(filter::EvalPath::view, kRules, m);
  std::uint64_t records = 0, conn = 0;
  for (auto _ : state) {
    std::string log = engine.feed(++conn, batch);
    benchmark::DoNotOptimize(log);
    records += kEvents;
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
}

void BM_Match_Compiled_Mixed(benchmark::State& state) {
  run_match(state, Workload::mixed, filter::MatchEngine::compiled);
}
void BM_Match_Bytecode_Mixed(benchmark::State& state) {
  run_match(state, Workload::mixed, filter::MatchEngine::bytecode);
}

BENCHMARK(BM_Match_Compiled_Mixed);
BENCHMARK(BM_Match_Bytecode_Mixed);

// ---- end to end: meter_emit → transport → filter → log --------------------

/// One full pipeline pass: an app process replays a workload's event
/// bodies through kernel::meter_emit (yielding periodically so the
/// consumer keeps up), the configured transport carries them — batched
/// stream sends when ring_bytes == 0, the shared SPSC ring otherwise —
/// and a sink process drains its meter connection into a FilterEngine.
/// Metering CPU costs are zeroed so emission instants (and therefore the
/// record headers) are identical across transports: the produced logs
/// must byte-compare equal, which the caller checks.
struct E2EPass {
  std::string log;
  std::uint64_t events = 0;
  double seconds = 0;
  std::uint64_t ring_wakeups = 0;
  std::uint64_t ring_overflow_drops = 0;
  std::uint64_t bytecode_ops = 0;
};

E2EPass run_e2e_pass(Workload w, int events, std::size_t ring_bytes,
                     filter::MatchEngine match) {
  kernel::WorldConfig cfg;
  // meter_buffer_msgs stays at the shipped default: that is the batching
  // the legacy transport actually runs with (the ring transport ignores
  // it — records encode straight into the ring).
  cfg.meter_ring_bytes = ring_bytes;
  cfg.meter_ring_wakeup_bytes = 8 * 1024;
  cfg.costs.meter_event = util::usec(0);
  cfg.costs.meter_flush_base = util::usec(0);
  cfg.costs.meter_flush_per_kb = util::usec(0);
  auto world = make_world(2, cfg);

  auto engine = make_engine(filter::EvalPath::view, kRules, match);
  E2EPass pass;
  (void)world->spawn(2, "sink", 100, [&](kernel::Sys& sys) {
    auto ls = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    (void)sys.bind_port(*ls, 4500);
    (void)sys.listen(*ls, 4);
    auto conn = sys.accept(*ls);
    for (;;) {
      auto data = sys.recv(*conn, 65536);
      if (!data.ok() || data->empty()) break;
      engine.feed(1, *data, pass.log);
    }
    engine.end_connection(1);
  });

  // Mutable: each body is emitted exactly once, so the replay loop moves
  // it into the draft instead of copying — the app process hands the
  // kernel its event body, it does not keep one.
  auto msgs = make_messages(w, events);
  (void)world->spawn(1, "app", 100, [&](kernel::Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("m1", 4500);
    auto ms = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    (void)sys.connect(*ms, *addr);
    (void)sys.setmeter(meter::SETMETER_SELF,
                       static_cast<std::int32_t>(meter::M_ALL), *ms);
    (void)sys.close(*ms);
    kernel::Process* self = sys.world().find_process(1, sys.getpid());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      kernel::meter_emit(
          sys.world(), *self,
          kernel::MeterEventDraft{meter::M_ALL,
                                  meter::MeterBody(std::move(msgs[i].body))});
      // Yield every 256 events: the consumer drains, the ring never
      // overflows, and the legacy stream window never fills.
      if (i % 256 == 255) sys.sleep(util::usec(500));
    }
  });

  const auto start = std::chrono::steady_clock::now();
  world->run();
  pass.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchmark::DoNotOptimize(pass.log);
  pass.events = world->meter_stats().events;
  pass.ring_wakeups = world->obs().counter("ring.wakeups").value();
  pass.ring_overflow_drops =
      world->obs().counter("ring.overflow_drops").value();
  pass.bytecode_ops = engine.obs().counter("filter.bytecode_ops").value();
  return pass;
}

void run_e2e_bm(benchmark::State& state, Workload w, std::size_t ring_bytes,
                filter::MatchEngine match) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const E2EPass pass = run_e2e_pass(w, 4000, ring_bytes, match);
    events += pass.events;
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_EndToEnd_BatchCompiled_Mixed(benchmark::State& state) {
  run_e2e_bm(state, Workload::mixed, 0, filter::MatchEngine::compiled);
}
void BM_EndToEnd_RingBytecode_Mixed(benchmark::State& state) {
  run_e2e_bm(state, Workload::mixed, 256 * 1024,
             filter::MatchEngine::bytecode);
}

BENCHMARK(BM_EndToEnd_BatchCompiled_Mixed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_RingBytecode_Mixed)->Unit(benchmark::kMillisecond);

// ---- BENCH_pipeline.json --------------------------------------------------

/// One workload's end-to-end comparison: batched socket sends + compiled
/// template matching (the pre-PR configuration) versus the shared ring +
/// flat bytecode (the fast path), same event bodies, logs byte-compared.
struct E2EResult {
  Workload workload = Workload::mixed;
  double batch_compiled_eps = 0;   // events/sec through the whole pipeline
  double ring_bytecode_eps = 0;
  double speedup = 0;
  bool logs_identical = false;
  std::uint64_t ring_wakeups = 0;          // from the ring pass
  std::uint64_t ring_overflow_drops = 0;
  std::uint64_t bytecode_ops = 0;
};

struct PipelineBenchResult {
  double encode_owned_eps = 0;       // events/sec, serialize+copy
  double encode_zero_copy_eps = 0;   // events/sec, serialize_into
  double encode_owned_bps = 0;       // bytes/sec
  double encode_zero_copy_bps = 0;
  double encode_speedup = 0;
  double filter_owned_rps = 0;       // records/sec, decode-first
  double filter_view_rps = 0;        // records/sec, wire views
  double filter_speedup = 0;
  double filter_compiled_rps = 0;    // records/sec, compiled plan walker
  double filter_bytecode_rps = 0;    // records/sec, flat bytecode
  double match_speedup = 0;
  std::vector<E2EResult> e2e;        // one entry per workload
  bool output_identical = false;
  int events = 0;
  std::string obs_snapshot_jsonl;  // view engine's registry after the runs
};

/// Measures one workload end-to-end under both configurations. The rate is
/// the best over `reps` full passes (fresh World each pass, wall-clock
/// around World::run only); the logs from the first pass of each side are
/// byte-compared — the equivalence verdict the JSON carries.
E2EResult run_e2e(Workload w, int events, int reps) {
  E2EResult r;
  r.workload = w;
  std::string batch_log, ring_log;
  for (int i = 0; i < reps; ++i) {
    const E2EPass pass =
        run_e2e_pass(w, events, 0, filter::MatchEngine::compiled);
    if (i == 0) batch_log = pass.log;
    const double eps = pass.seconds > 0
                           ? static_cast<double>(pass.events) / pass.seconds
                           : 0;
    if (eps > r.batch_compiled_eps) r.batch_compiled_eps = eps;
  }
  for (int i = 0; i < reps; ++i) {
    const E2EPass pass =
        run_e2e_pass(w, events, 256 * 1024, filter::MatchEngine::bytecode);
    if (i == 0) {
      ring_log = pass.log;
      r.ring_wakeups = pass.ring_wakeups;
      r.ring_overflow_drops = pass.ring_overflow_drops;
      r.bytecode_ops = pass.bytecode_ops;
    }
    const double eps = pass.seconds > 0
                           ? static_cast<double>(pass.events) / pass.seconds
                           : 0;
    if (eps > r.ring_bytecode_eps) r.ring_bytecode_eps = eps;
  }
  r.speedup = r.batch_compiled_eps > 0
                  ? r.ring_bytecode_eps / r.batch_compiled_eps
                  : 0;
  r.logs_identical = !batch_log.empty() && batch_log == ring_log;
  return r;
}

/// Byte-identical selected output, whole-batch and chunked (chunk
/// boundaries landing mid-record exercise the partial buffer), plus
/// identical accept/reject/malformed counters.
bool outputs_identical(const util::Bytes& batch) {
  auto owned = make_engine(filter::EvalPath::owned);
  auto view = make_engine(filter::EvalPath::view);
  const std::string a = owned.feed(1, batch);
  const std::string b = view.feed(1, batch);
  if (a != b) return false;

  std::string chunked;
  for (std::size_t pos = 0; pos < batch.size(); pos += 97) {
    const std::size_t n = std::min<std::size_t>(97, batch.size() - pos);
    chunked += view.feed(2, util::Bytes(batch.begin() + static_cast<std::ptrdiff_t>(pos),
                                        batch.begin() + static_cast<std::ptrdiff_t>(pos + n)));
  }
  view.end_connection(2);
  if (chunked != a) return false;

  const auto& so = owned.stats();
  const auto& sv = view.stats();
  return so.records_in * 2 == sv.records_in && so.accepted * 2 == sv.accepted &&
         so.rejected * 2 == sv.rejected && so.malformed == 0 &&
         sv.malformed == 0;
}

PipelineBenchResult run_pipeline_bench(int events, double min_seconds,
                                       int reps, int e2e_events,
                                       int e2e_reps) {
  PipelineBenchResult r;
  r.events = events;

  const auto msgs = make_messages(Workload::mixed, events);
  const util::Bytes batch = make_batch(Workload::mixed, events);
  r.output_identical = outputs_identical(batch);

  const auto per_pass = static_cast<std::uint64_t>(events);
  std::uint64_t bytes = 0;
  std::uint64_t passes = 0;
  bytes = 0;
  r.encode_owned_eps = best_rate(
      reps, per_pass,
      [&] {
        bytes += encode_owned(msgs, kFlushBytes);
        ++passes;
      },
      min_seconds);
  r.encode_owned_bps =
      r.encode_owned_eps * static_cast<double>(bytes) /
      (static_cast<double>(passes) * static_cast<double>(events));

  bytes = 0;
  passes = 0;
  r.encode_zero_copy_eps = best_rate(
      reps, per_pass,
      [&] {
        bytes += encode_zero_copy(msgs, kFlushBytes);
        ++passes;
      },
      min_seconds);
  r.encode_zero_copy_bps =
      r.encode_zero_copy_eps * static_cast<double>(bytes) /
      (static_cast<double>(passes) * static_cast<double>(events));
  r.encode_speedup = r.encode_owned_eps > 0
                         ? r.encode_zero_copy_eps / r.encode_owned_eps
                         : 0;

  {
    auto engine = make_engine(filter::EvalPath::owned);
    std::uint64_t conn = 0;
    r.filter_owned_rps = best_rate(
        reps, per_pass,
        [&] {
          std::string log = engine.feed(++conn, batch);
          benchmark::DoNotOptimize(log);
        },
        min_seconds);
  }
  {
    auto engine = make_engine(filter::EvalPath::view);
    std::uint64_t conn = 0;
    r.filter_view_rps = best_rate(
        reps, per_pass,
        [&] {
          std::string log = engine.feed(++conn, batch);
          benchmark::DoNotOptimize(log);
        },
        min_seconds);
    // The registry the measured engine accounted through, embedded in the
    // JSON so a result file carries its own ground-truth counters.
    r.obs_snapshot_jsonl = engine.obs().snapshot_jsonl();
  }
  r.filter_speedup =
      r.filter_owned_rps > 0 ? r.filter_view_rps / r.filter_owned_rps : 0;

  {
    auto engine = make_engine(filter::EvalPath::view, kRules,
                              filter::MatchEngine::compiled);
    std::uint64_t conn = 0;
    r.filter_compiled_rps = best_rate(
        reps, per_pass,
        [&] {
          std::string log = engine.feed(++conn, batch);
          benchmark::DoNotOptimize(log);
        },
        min_seconds);
  }
  {
    auto engine = make_engine(filter::EvalPath::view, kRules,
                              filter::MatchEngine::bytecode);
    std::uint64_t conn = 0;
    r.filter_bytecode_rps = best_rate(
        reps, per_pass,
        [&] {
          std::string log = engine.feed(++conn, batch);
          benchmark::DoNotOptimize(log);
        },
        min_seconds);
  }
  r.match_speedup = r.filter_compiled_rps > 0
                        ? r.filter_bytecode_rps / r.filter_compiled_rps
                        : 0;

  for (Workload w : kWorkloads) {
    r.e2e.push_back(run_e2e(w, e2e_events, e2e_reps));
  }
  return r;
}

constexpr const char* kJsonPath = "BENCH_pipeline.json";

bool write_bench_json(const PipelineBenchResult& r, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << util::strprintf(
      "{\n"
      "  \"bench\": \"pipeline_zero_copy\",\n"
      "  \"workload\": \"%s\",\n"
      "  \"events\": %d,\n"
      "  \"encode_owned_events_per_s\": %.0f,\n"
      "  \"encode_zero_copy_events_per_s\": %.0f,\n"
      "  \"encode_owned_bytes_per_s\": %.0f,\n"
      "  \"encode_zero_copy_bytes_per_s\": %.0f,\n"
      "  \"encode_speedup\": %.2f,\n"
      "  \"filter_owned_records_per_s\": %.0f,\n"
      "  \"filter_view_records_per_s\": %.0f,\n"
      "  \"filter_speedup\": %.2f,\n"
      "  \"filter_compiled_records_per_s\": %.0f,\n"
      "  \"filter_bytecode_records_per_s\": %.0f,\n"
      "  \"match_speedup\": %.2f,\n",
      workload_name(Workload::mixed), r.events, r.encode_owned_eps,
      r.encode_zero_copy_eps, r.encode_owned_bps,
      r.encode_zero_copy_bps, r.encode_speedup, r.filter_owned_rps,
      r.filter_view_rps, r.filter_speedup, r.filter_compiled_rps,
      r.filter_bytecode_rps, r.match_speedup);
  out << "  \"e2e\": [\n";
  for (std::size_t i = 0; i < r.e2e.size(); ++i) {
    const E2EResult& e = r.e2e[i];
    out << util::strprintf(
        "    {\"workload\": \"%s\", "
        "\"batch_compiled_events_per_s\": %.0f, "
        "\"ring_bytecode_events_per_s\": %.0f, "
        "\"speedup\": %.2f, \"logs_identical\": %s, "
        "\"ring_wakeups\": %llu, \"ring_overflow_drops\": %llu, "
        "\"bytecode_ops\": %llu}%s\n",
        workload_name(e.workload), e.batch_compiled_eps, e.ring_bytecode_eps,
        e.speedup, e.logs_identical ? "true" : "false",
        static_cast<unsigned long long>(e.ring_wakeups),
        static_cast<unsigned long long>(e.ring_overflow_drops),
        static_cast<unsigned long long>(e.bytecode_ops),
        i + 1 < r.e2e.size() ? "," : "");
  }
  out << "  ],\n";
  out << util::strprintf(
      "  \"output_identical\": %s,\n"
      "  \"obs_snapshot\": %s\n"
      "}\n",
      r.output_identical ? "true" : "false",
      obs::jsonl_to_json_array(r.obs_snapshot_jsonl, 4).c_str());
  return out.good();
}

bool validate_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string trimmed{util::trim(text)};
  if (trimmed.empty() || trimmed.front() != '{' || trimmed.back() != '}') {
    return false;
  }
  for (const char* key :
       {"\"bench\"", "\"events\"", "\"encode_owned_events_per_s\"",
        "\"encode_zero_copy_events_per_s\"", "\"encode_speedup\"",
        "\"filter_owned_records_per_s\"", "\"filter_view_records_per_s\"",
        "\"filter_speedup\"", "\"filter_compiled_records_per_s\"",
        "\"filter_bytecode_records_per_s\"", "\"match_speedup\"", "\"e2e\"",
        "\"ring_bytecode_events_per_s\"", "\"output_identical\"",
        "\"obs_snapshot\""}) {
    if (text.find(key) == std::string::npos) return false;
  }
  // Equivalence is the pass signal: the owned/view comparison and every
  // per-workload cross-transport log comparison must all hold.
  return text.find("\"output_identical\": true") != std::string::npos &&
         text.find("\"logs_identical\": false") == std::string::npos &&
         text.find("\"logs_identical\": true") != std::string::npos;
}

/// --smoke: the fast ctest (and sanitizer) entry point. Equivalence is the
/// pass/fail signal; the speedups are reported, not asserted, since
/// sanitized or loaded machines make timing assertions flaky.
bool all_e2e_logs_identical(const PipelineBenchResult& r) {
  for (const E2EResult& e : r.e2e) {
    if (!e.logs_identical) return false;
  }
  return !r.e2e.empty();
}

void print_result(const PipelineBenchResult& r, const char* tag) {
  std::printf(
      "bench_pipeline %s: encode %.0f -> %.0f ev/s (%.2fx), "
      "filter %.0f -> %.0f rec/s (%.2fx), match %.0f -> %.0f rec/s (%.2fx), "
      "output_identical=%s\n",
      tag, r.encode_owned_eps, r.encode_zero_copy_eps, r.encode_speedup,
      r.filter_owned_rps, r.filter_view_rps, r.filter_speedup,
      r.filter_compiled_rps, r.filter_bytecode_rps, r.match_speedup,
      r.output_identical ? "true" : "false");
  for (const E2EResult& e : r.e2e) {
    std::printf(
        "  e2e %-13s batch+compiled %8.0f ev/s -> ring+bytecode %8.0f ev/s "
        "(%.2fx) logs_identical=%s wakeups=%llu drops=%llu\n",
        workload_name(e.workload), e.batch_compiled_eps, e.ring_bytecode_eps,
        e.speedup, e.logs_identical ? "true" : "false",
        static_cast<unsigned long long>(e.ring_wakeups),
        static_cast<unsigned long long>(e.ring_overflow_drops));
  }
}

/// --e2e: full-scale end-to-end comparison only (no google-benchmark
/// micros), fast enough for the regression gate in scripts/check_bench.sh.
/// Writes BENCH_e2e.json so the gate can jq-compare per-workload speedups
/// against the committed BENCH_pipeline.json like-for-like: the smoke's
/// smaller event count carries a higher fixed-cost share and reads
/// systematically below the recorded full-scale ratios.
int run_e2e_only() {
  PipelineBenchResult r;
  for (Workload w : kWorkloads) {
    r.e2e.push_back(run_e2e(w, 20000, 3));
  }
  std::ofstream out("BENCH_e2e.json", std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_pipeline: cannot write BENCH_e2e.json\n");
    return 1;
  }
  out << "{\n  \"e2e\": [\n";
  for (std::size_t i = 0; i < r.e2e.size(); ++i) {
    const E2EResult& e = r.e2e[i];
    out << util::strprintf(
        "    {\"workload\": \"%s\", \"speedup\": %.2f, "
        "\"logs_identical\": %s}%s\n",
        workload_name(e.workload), e.speedup,
        e.logs_identical ? "true" : "false",
        i + 1 < r.e2e.size() ? "," : "");
  }
  out << "  ]\n}\n";
  for (const E2EResult& e : r.e2e) {
    std::printf(
        "  e2e %-13s batch+compiled %8.0f ev/s -> ring+bytecode %8.0f ev/s "
        "(%.2fx) logs_identical=%s\n",
        workload_name(e.workload), e.batch_compiled_eps, e.ring_bytecode_eps,
        e.speedup, e.logs_identical ? "true" : "false");
  }
  return out.good() && all_e2e_logs_identical(r) ? 0 : 1;
}

int run_smoke() {
  // 0.3s per measured micro stage and one e2e rep per side: long enough
  // that the reported speedups are representative (tiny windows are
  // dominated by warmup noise), short enough for ctest and the sanitizer
  // configuration. Equivalence — owned==view output and batch==ring logs
  // on every workload — is the pass/fail signal; speedups are reported,
  // not asserted, since sanitized or loaded machines make timing
  // assertions flaky.
  const PipelineBenchResult r = run_pipeline_bench(512, 0.3, 3, 2000, 1);
  const std::string snap_err = obs::validate_snapshot(r.obs_snapshot_jsonl);
  if (!snap_err.empty()) {
    std::fprintf(stderr, "bench_pipeline: bad embedded snapshot: %s\n",
                 snap_err.c_str());
    return 1;
  }
  if (!write_bench_json(r, kJsonPath)) {
    std::fprintf(stderr, "bench_pipeline: cannot write %s\n", kJsonPath);
    return 1;
  }
  if (!validate_bench_json(kJsonPath)) {
    std::fprintf(stderr, "bench_pipeline: %s is malformed\n", kJsonPath);
    return 1;
  }
  print_result(r, "--smoke");
  std::printf("wrote %s\n", kJsonPath);
  return r.output_identical && all_e2e_logs_identical(r) ? 0 : 1;
}

}  // namespace
}  // namespace dpm::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return dpm::bench::run_smoke();
    if (std::strcmp(argv[i], "--e2e") == 0) return dpm::bench::run_e2e_only();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto r = dpm::bench::run_pipeline_bench(2000, 0.5, 3, 20000, 3);
  if (!dpm::bench::write_bench_json(r, dpm::bench::kJsonPath)) return 1;
  dpm::bench::print_result(r, "full");
  std::printf("wrote %s\n", dpm::bench::kJsonPath);
  return dpm::bench::all_e2e_logs_identical(r) ? 0 : 1;
}
