// Meter message formats — the reproduction of the paper's <metermsgs.h>
// (Appendix A).
//
// Every metered event produces one message: a fixed header followed by a
// body whose layout depends on the event type. The wire layout is fixed
// little-endian so that filter *description files* (Fig 3.2) can locate
// fields by byte offset. Divergences from the 1984 struct layout: times
// are 64-bit microseconds and socket identifiers are 64-bit (documented in
// DESIGN.md); socket names are carried as canonical text preceded by a
// 32-bit length, with internet names rendered as the paper's single
// decimal number.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/bytes.h"

namespace dpm::meter {

/// traceType values. Chosen so the paper's example selection rules hold:
/// Fig 3.3 matches a send with "type=1"; Fig 3.4 matches accepts with
/// "type=8, sockName=peerName".
enum class EventType : std::uint32_t {
  send = 1,
  recv = 2,
  recvcall = 3,
  sockcrt = 4,
  dup = 5,
  destsock = 6,
  fork = 7,
  accept = 8,
  connect = 9,
  termproc = 10,
};

std::string_view event_name(EventType t);
std::optional<EventType> event_by_name(std::string_view name);

using Pid = std::int32_t;
using SocketId = std::uint64_t;  // "file table entry address" in the paper

/// Common header (paper: struct MeterHeader).
/// Wire layout: size u32 @0, machine u16 @4, cpuTime i64 @6,
/// procTime i64 @14, traceType u32 @22. Header length 26 bytes.
struct MeterHeader {
  std::uint32_t size = 0;     // total message size including header
  std::uint16_t machine = 0;  // machine on which the process runs
  std::int64_t cpu_time = 0;  // local clock reading, microseconds (§4.1)
  std::int64_t proc_time = 0; // CPU time charged to the process, 10ms grain
  EventType trace_type = EventType::send;
};

constexpr std::size_t kHeaderSize = 26;

struct MeterAccept {
  Pid pid = 0;
  std::uint32_t pc = 0;     // call-site tag ("PC when system call was made")
  SocketId sock = 0;        // socket accepting the connection
  SocketId new_sock = 0;    // connection socket created by the accept
  std::string sock_name;    // name bound to the accepting socket
  std::string peer_name;    // name bound to the connecting socket
};

struct MeterConnect {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;        // socket requesting the connection
  std::string sock_name;    // name bound to the connecting socket
  std::string peer_name;    // name bound to the accepting socket
};

struct MeterSend {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;         // socket the message was sent through
  std::uint32_t msg_length = 0;
  std::string dest_name;     // empty when unknown (e.g. connected stream)
};

struct MeterRecvCall {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;
};

struct MeterRecv {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;
  std::uint32_t msg_length = 0;
  std::string source_name;   // empty when unknown
};

struct MeterSockCrt {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;
  std::uint32_t domain = 0;
  std::uint32_t type = 0;
  std::uint32_t protocol = 0;
};

struct MeterDup {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;
  SocketId new_sock = 0;
};

struct MeterDestSock {
  Pid pid = 0;
  std::uint32_t pc = 0;
  SocketId sock = 0;
};

struct MeterFork {
  Pid pid = 0;   // parent
  std::uint32_t pc = 0;
  Pid new_pid = 0;  // child
};

struct MeterTermProc {
  Pid pid = 0;
  std::uint32_t pc = 0;
  std::int32_t status = 0;  // 0 = normal termination
};

using MeterBody =
    std::variant<MeterSend, MeterRecv, MeterRecvCall, MeterSockCrt, MeterDup,
                 MeterDestSock, MeterFork, MeterAccept, MeterConnect,
                 MeterTermProc>;

/// One meter message (paper: struct MeterMsg). The header's size and
/// trace_type fields are filled in by serialize().
struct MeterMsg {
  MeterHeader header;
  MeterBody body;

  EventType type() const;
  Pid pid() const;

  /// Serializes to the fixed wire layout; the wire's size and traceType
  /// words are derived from the body during encoding.
  util::Bytes serialize() const;

  /// Appends the wire encoding to `out` in place — no intermediate buffer;
  /// the size word is back-patched after the body is written. This is the
  /// meter's hot path (meter_emit encodes straight into the process's
  /// pending batch). Byte-identical to serialize().
  void serialize_into(util::Bytes& out) const;

  /// Encodes through an already-positioned writer — the shared core of
  /// serialize()/serialize_into() and the ring transport's in-place encode.
  /// The size word is back-patched; in span mode the writer refuses to pass
  /// capacity (w.ok() turns false) rather than truncate.
  void encode_into(util::BinaryWriter& w) const;

  /// Exact wire size in bytes without encoding, so a ring producer can
  /// reserve contiguous space (or drop the whole record) up front.
  /// Invariant: wire_size() == serialize().size().
  std::size_t wire_size() const;

  /// Parses one message; nullopt on malformed input.
  static std::optional<MeterMsg> parse(const util::Bytes& wire);

  /// Parses one message from `wire` starting at `pos` if a complete message
  /// is present; advances `pos` past it. Used by filters draining a stream.
  static std::optional<MeterMsg> parse_stream(const util::Bytes& wire,
                                              std::size_t& pos);

  /// One-line human-readable rendering, e.g.
  /// "send machine=0 cpuTime=12000 pid=7 sock=3 len=64 dest=328140".
  std::string pretty() const;
};

/// Convenience builders set the body and leave the header for the meter.
MeterMsg make_msg(EventType t);

}  // namespace dpm::meter
