// Streaming-vs-batch equivalence: LiveAnalysis fed one event (or one
// text chunk) at a time must reproduce order_events() exactly — same
// pairs, same Lamport clocks, same anomaly counts — on every scenario the
// batch path handles, including a trace recorded from a real metered
// session.
#include <gtest/gtest.h>

#include "analysis/live/aggregator.h"
#include "analysis/ordering.h"
#include "analysis_testing.h"
#include "apps/apps.h"
#include "control/session.h"
#include "filter/filter_program.h"
#include "kernel/world.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;

/// Batch-analyzes `text` and replays it through LiveAnalysis twice (event
/// by event, and via TraceTailer at several chunk sizes); every view must
/// agree with order_events.
void expect_equivalent(const std::string& text) {
  const Trace trace = read_trace(text);
  const Ordering ord = order_events(trace);

  auto compare = [&](live::LiveAnalysis& live, const char* what) {
    ASSERT_EQ(live.events(), trace.events.size()) << what;
    const auto st = live.stats();
    EXPECT_EQ(st.message_pairs, ord.message_pairs) << what;
    EXPECT_EQ(st.cross_machine_pairs, ord.cross_machine_pairs) << what;
    EXPECT_EQ(st.clock_anomalies, ord.clock_anomalies) << what;
    EXPECT_EQ(st.max_anomaly_us, ord.max_anomaly_us) << what;
    EXPECT_EQ(st.had_cycle, ord.had_cycle) << what;
    EXPECT_FALSE(st.pairing_disorder) << what;
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      EXPECT_EQ(live.lamport_of(i), ord.events[i].lamport)
          << what << " lamport at " << i;
      EXPECT_EQ(live.matched_send_of(i), ord.events[i].matched_send)
          << what << " matched_send at " << i;
    }
  };

  {
    live::LiveAnalysis live;
    for (const Event& e : trace.events) live.add_event(e);
    compare(live, "event-by-event");
  }
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, text.size() + 1}) {
    live::LiveAnalysis live;
    live::TraceTailer tailer(live);
    for (std::size_t pos = 0; pos < text.size(); pos += chunk) {
      tailer.feed(std::string_view(text).substr(pos, chunk));
    }
    tailer.finish();
    EXPECT_EQ(tailer.malformed(), 0u);
    compare(live, "tailer");
  }
}

std::vector<std::pair<Stamp, meter::MeterBody>> connected_prefix() {
  return {
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 120, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
  };
}

TEST(LiveEquivalence, StreamPairs) {
  auto events = connected_prefix();
  for (int i = 0; i < 4; ++i) {
    events.push_back({Stamp{0, 200 + i, 0}, MeterSend{1, 0, 5, 10, ""}});
  }
  for (int i = 0; i < 4; ++i) {
    events.push_back({Stamp{1, 300 + i, 0}, MeterRecv{2, 0, 9, 10, ""}});
  }
  expect_equivalent(analysis_testing::trace_text(events));
}

TEST(LiveEquivalence, InterleavedBidirectionalTraffic) {
  auto events = connected_prefix();
  for (int i = 0; i < 3; ++i) {
    const std::int64_t t = 200 + 100 * i;
    events.push_back({Stamp{0, t, 0}, MeterSend{1, 0, 5, 64, ""}});
    events.push_back({Stamp{1, t + 40, 0}, MeterRecv{2, 0, 9, 64, ""}});
    events.push_back({Stamp{1, t + 50, 0}, MeterSend{2, 0, 9, 32, ""}});
    events.push_back({Stamp{0, t + 90, 0}, MeterRecv{1, 0, 5, 32, ""}});
  }
  expect_equivalent(analysis_testing::trace_text(events));
}

TEST(LiveEquivalence, ReceiveBeforeConnectionEvidence) {
  // The receive (and even the send) arrive before the connect/accept join
  // that routes them: the streaming core must park and then pair exactly
  // as the batch pass — which sees the whole table up front — does.
  expect_equivalent(analysis_testing::trace_text({
      {Stamp{0, 50, 0}, MeterSend{1, 0, 5, 16, ""}},
      {Stamp{1, 60, 0}, MeterRecv{2, 0, 9, 16, ""}},
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "196612", "131073"}},
      {Stamp{1, 120, 0}, MeterAccept{2, 0, 7, 9, "131073", "196612"}},
  }));
}

TEST(LiveEquivalence, DatagramByNameOwnership) {
  // Names learned from connect records route datagram traffic; both the
  // send's destName and the receive's sourceName resolve to owners.
  expect_equivalent(analysis_testing::trace_text({
      {Stamp{0, 10, 0}, MeterConnect{1, 0, 5, "65541", ""}},
      {Stamp{1, 20, 0}, MeterConnect{2, 0, 7, "131078", ""}},
      {Stamp{0, 100, 0}, MeterSend{1, 0, 5, 32, "131078"}},
      {Stamp{1, 150, 0}, MeterRecv{2, 0, 7, 32, "65541"}},
  }));
}

TEST(LiveEquivalence, DatagramBeforeNameResolution) {
  // Datagram traffic parked on unresolved names, flushed when the owner
  // appears.
  expect_equivalent(analysis_testing::trace_text({
      {Stamp{0, 100, 0}, MeterSend{1, 0, 5, 32, "131078"}},
      {Stamp{1, 150, 0}, MeterRecv{2, 0, 7, 32, "65541"}},
      {Stamp{0, 200, 0}, MeterConnect{1, 0, 5, "65541", ""}},
      {Stamp{1, 210, 0}, MeterConnect{2, 0, 7, "131078", ""}},
      {Stamp{0, 300, 0}, MeterSend{1, 0, 5, 32, "131078"}},
      {Stamp{1, 350, 0}, MeterRecv{2, 0, 7, 32, "65541"}},
  }));
}

TEST(LiveEquivalence, ClockSkewAnomalies) {
  auto events = connected_prefix();
  events.push_back({Stamp{0, 5000, 0}, MeterSend{1, 0, 5, 64, ""}});
  events.push_back({Stamp{1, 3000, 0}, MeterRecv{2, 0, 9, 64, ""}});
  expect_equivalent(analysis_testing::trace_text(events));
}

TEST(LiveEquivalence, UnmatchedTrafficStaysParked) {
  const std::string text = analysis_testing::trace_text({
      {Stamp{0, 1, 0}, MeterSend{1, 0, 5, 10, ""}},
      {Stamp{1, 2, 0}, MeterRecv{2, 0, 9, 10, ""}},
  });
  expect_equivalent(text);
  live::LiveAnalysis live;
  live::TraceTailer tailer(live);
  tailer.feed(text);
  tailer.finish();
  EXPECT_EQ(live.stats().message_pairs, 0u);
  EXPECT_EQ(live.stats().parked, 1u);  // the stream receive waits forever
}

TEST(LiveEquivalence, MultipleConnectionsSameNames) {
  // Two connects and two accepts under the same name pair join FIFO.
  std::vector<std::pair<Stamp, meter::MeterBody>> events;
  events.push_back({Stamp{0, 10, 0}, MeterConnect{1, 0, 5, "n1", "n2"}});
  events.push_back({Stamp{0, 20, 0}, MeterConnect{1, 0, 6, "n1", "n2"}});
  events.push_back({Stamp{1, 30, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}});
  events.push_back({Stamp{1, 40, 0}, MeterAccept{2, 0, 7, 10, "n2", "n1"}});
  events.push_back({Stamp{0, 100, 0}, MeterSend{1, 0, 5, 8, ""}});
  events.push_back({Stamp{0, 110, 0}, MeterSend{1, 0, 6, 8, ""}});
  events.push_back({Stamp{1, 200, 0}, MeterRecv{2, 0, 9, 8, ""}});
  events.push_back({Stamp{1, 210, 0}, MeterRecv{2, 0, 10, 8, ""}});
  expect_equivalent(analysis_testing::trace_text(events));
}

TEST(LiveEquivalence, RecordedSessionTrace) {
  // A trace recorded end-to-end from a metered session (the same shape
  // the quickstart produces), checked live-vs-batch — and the live sink
  // fed during the run must agree with the tailed log afterwards.
  kernel::World world;
  const kernel::MachineId red = world.add_machine("red");
  world.add_machine("green");
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  live::LiveAnalysis from_sink;
  auto sink = std::make_shared<live::LiveRecordSink>(from_sink);
  filter::install_live_sink(world, sink);

  control::MonitorSession session(world, {.host = "red", .uid = 100});
  world.run();
  (void)session.drain_output();
  (void)session.command("filter f1 red");
  (void)session.command("newjob eq");
  (void)session.command("addprocess eq green pingpong_server 4810 5");
  (void)session.command("addprocess eq red pingpong_client green 4810 5 64");
  (void)session.command("setflags eq all");
  (void)session.command("startjob eq");
  (void)session.command("removejob eq");
  (void)session.command("getlog f1 eq.trace");
  session.send_line("bye");
  world.run();

  auto text = world.machine(red).fs.read_text("eq.trace");
  ASSERT_TRUE(text.has_value());
  ASSERT_FALSE(text->empty());
  expect_equivalent(*text);

  // The sink saw the records in log order; its clocks must match too.
  EXPECT_EQ(sink->dropped(), 0u);
  const Trace trace = read_trace(*text);
  const Ordering ord = order_events(trace);
  ASSERT_EQ(from_sink.events(), trace.events.size());
  EXPECT_EQ(from_sink.stats().message_pairs, ord.message_pairs);
  EXPECT_GT(ord.cross_machine_pairs, 0u);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(from_sink.lamport_of(i), ord.events[i].lamport);
  }
}

}  // namespace
}  // namespace dpm::analysis
