file(REMOVE_RECURSE
  "CMakeFiles/trace_browser.dir/trace_browser.cpp.o"
  "CMakeFiles/trace_browser.dir/trace_browser.cpp.o.d"
  "trace_browser"
  "trace_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
