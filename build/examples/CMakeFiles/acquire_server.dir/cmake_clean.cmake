file(REMOVE_RECURSE
  "CMakeFiles/acquire_server.dir/acquire_server.cpp.o"
  "CMakeFiles/acquire_server.dir/acquire_server.cpp.o.d"
  "acquire_server"
  "acquire_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acquire_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
