// Process lifecycle: fork inheritance, suspended creation (the
// controller's "new" state), stop/continue/kill signals, SIGCHLD-style
// child change notifications, exec from files, permissions (§3.5.5).
#include "kernel/process.h"

#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm::kernel {
namespace {

using util::Err;

class ProcessTest : public ::testing::Test {
 protected:
  ProcessTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
    world_.add_account(machines_[0], 200);
  }

  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(ProcessTest, SpawnRequiresAccount) {
  auto ok = world_.spawn(machines_[0], "p", 100, [](Sys&) {});
  EXPECT_TRUE(ok.ok());
  // uid 200 has an account only on red (§3.5.5: "to create a process on a
  // machine, a user must have an account on that machine").
  auto denied = world_.spawn(machines_[1], "p", 200, [](Sys&) {});
  EXPECT_EQ(denied.error(), Err::eacces);
  auto root = world_.spawn(machines_[1], "p", 0, [](Sys&) {});
  EXPECT_TRUE(root.ok());
}

TEST_F(ProcessTest, ForkInheritsDescriptors) {
  std::string child_got;
  (void)world_.spawn(machines_[0], "parent", 100, [&](Sys& sys) {
    auto pair = sys.socketpair();
    ASSERT_TRUE(pair.ok());
    const Fd a = pair->first;
    const Fd b = pair->second;
    auto child = sys.fork([a, b, &child_got](Sys& csys) {
      // The child sees the same descriptors (§3.1: "If a process forks,
      // its child gains access to the parent's sockets").
      auto data = csys.recv_exact(b, 2);
      ASSERT_TRUE(data.ok());
      child_got = util::to_string(*data);
      (void)a;
    });
    ASSERT_TRUE(child.ok());
    ASSERT_TRUE(sys.send(a, "hi").ok());
  });
  world_.run();
  EXPECT_EQ(child_got, "hi");
}

TEST_F(ProcessTest, ForkReturnsChildPidAndParentGetsExitNotice) {
  Pid child_pid = 0;
  std::vector<ChildChange> changes;
  (void)world_.spawn(machines_[0], "parent", 100, [&](Sys& sys) {
    auto child = sys.fork([](Sys& csys) { csys.exit(7); });
    ASSERT_TRUE(child.ok());
    child_pid = *child;
    auto c = sys.waitchange(true);
    ASSERT_TRUE(c.ok());
    changes.push_back(*c);
  });
  world_.run();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].pid, child_pid);
  EXPECT_EQ(changes[0].event, ChildEvent::exited);
  EXPECT_EQ(changes[0].status, 7);
}

TEST_F(ProcessTest, SuspendedSpawnWaitsForContinue) {
  bool body_ran = false;
  SpawnOpts opts;
  opts.suspended = true;
  auto pid = world_.spawn(machines_[0], "susp", 100,
                          [&](Sys&) { body_ran = true; }, opts);
  ASSERT_TRUE(pid.ok());
  world_.run();
  EXPECT_FALSE(body_ran);  // parked at the stop gate ("new" state)
  ASSERT_TRUE(world_.proc_continue(machines_[0], *pid, 100).ok());
  world_.run();
  EXPECT_TRUE(body_ran);
}

TEST_F(ProcessTest, StopAndContinueRunningProcess) {
  int progress = 0;
  auto pid = world_.spawn(machines_[0], "loop", 100, [&](Sys& sys) {
    for (int i = 0; i < 10; ++i) {
      sys.sleep(util::msec(10));
      ++progress;
    }
  });
  ASSERT_TRUE(pid.ok());
  world_.run_for(util::msec(35));
  const int at_stop = progress;
  EXPECT_GT(at_stop, 0);
  EXPECT_LT(at_stop, 10);
  ASSERT_TRUE(world_.proc_stop(machines_[0], *pid, 100).ok());
  world_.run_for(util::msec(100));
  EXPECT_LE(progress, at_stop + 1);  // at most one step to the checkpoint
  const int frozen = progress;
  world_.run_for(util::msec(100));
  EXPECT_EQ(progress, frozen);  // fully stopped
  ASSERT_TRUE(world_.proc_continue(machines_[0], *pid, 100).ok());
  world_.run();
  EXPECT_EQ(progress, 10);
}

TEST_F(ProcessTest, KillUnwindsBlockedProcess) {
  bool cleaned = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  auto pid = world_.spawn(machines_[0], "blocked", 100, [&](Sys& sys) {
    Guard g{&cleaned};
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 6000);
    (void)sys.recvfrom(*fd);  // blocks forever
  });
  ASSERT_TRUE(pid.ok());
  world_.run();
  EXPECT_FALSE(cleaned);
  ASSERT_TRUE(world_.proc_kill(machines_[0], *pid, 100).ok());
  world_.run();
  EXPECT_TRUE(cleaned);
  Process* p = world_.find_process(machines_[0], *pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->status, ProcStatus::dead);
  EXPECT_TRUE(p->killed);
}

TEST_F(ProcessTest, SignalPermissions) {
  auto pid = world_.spawn(machines_[0], "victim", 100, [](Sys& sys) {
    sys.sleep(util::sec(10));
  });
  ASSERT_TRUE(pid.ok());
  world_.run_for(util::msec(1));
  // uid 200 may not signal uid 100's process; root may.
  EXPECT_EQ(world_.proc_stop(machines_[0], *pid, 200).error(), Err::eperm);
  EXPECT_EQ(world_.proc_kill(machines_[0], *pid, 200).error(), Err::eperm);
  EXPECT_TRUE(world_.proc_kill(machines_[0], *pid, 0).ok());
  world_.run();
}

TEST_F(ProcessTest, UnknownPidIsEsrch) {
  EXPECT_EQ(world_.proc_stop(machines_[0], 9999, 0).error(), Err::esrch);
  EXPECT_EQ(world_.proc_continue(machines_[0], 9999, 0).error(), Err::esrch);
}

TEST_F(ProcessTest, ExitClosesStreamsSoPeersSeeEof) {
  bool got_eof = false;
  (void)world_.spawn(machines_[0], "server", 100, [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4100);
    (void)sys.listen(*ls, 1);
    auto conn = sys.accept(*ls);
    auto data = sys.recv(*conn, 100);
    got_eof = data.ok() && data->empty();
  });
  (void)world_.spawn(machines_[1], "dier", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 4100);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    sys.exit(0);  // never sends; exit must close the connection
  });
  world_.run();
  EXPECT_TRUE(got_eof);
}

TEST_F(ProcessTest, SpawnFromFileRunsRegisteredProgram) {
  world_.programs().register_program(
      "greeter", [](const std::vector<std::string>& argv) -> ProcessMain {
        return [argv](Sys& sys) {
          (void)sys.print("greetings " + (argv.size() > 1 ? argv[1] : "?") +
                          "\n");
        };
      });
  world_.machine(machines_[0]).fs.put_executable("bin/greet", "greeter");

  auto out = std::make_shared<HostPipe>();
  SpawnOpts opts;
  opts.stdout_fd = Descriptor::for_pipe(out);
  auto pid = world_.spawn_file(machines_[0], "bin/greet", 100, {"world"},
                               opts);
  ASSERT_TRUE(pid.ok());
  world_.run();
  EXPECT_EQ(out->host_drain(), "greetings world\n");
}

TEST_F(ProcessTest, SpawnFileErrors) {
  EXPECT_EQ(world_.spawn_file(machines_[0], "no/such", 100, {}).error(),
            Err::enoent);
  world_.machine(machines_[0]).fs.put_text("plain.txt", "data");
  EXPECT_EQ(world_.spawn_file(machines_[0], "plain.txt", 100, {}).error(),
            Err::eacces);  // not executable
  world_.machine(machines_[0]).fs.put_executable("ghost", "unregistered");
  EXPECT_EQ(world_.spawn_file(machines_[0], "ghost", 100, {}).error(),
            Err::enoent);  // no such program
}

TEST_F(ProcessTest, SpawnSyscallMakesCallerParent) {
  world_.programs().register_program(
      "worker", [](const std::vector<std::string>&) -> ProcessMain {
        return [](Sys& sys) { sys.exit(3); };
      });
  world_.machine(machines_[0]).fs.put_executable("worker", "worker");

  bool notified = false;
  (void)world_.spawn(machines_[0], "spawner", 100, [&](Sys& sys) {
    Sys::SpawnArgs sa;
    sa.path = "worker";
    auto pid = sys.spawn(sa);
    ASSERT_TRUE(pid.ok());
    auto c = sys.waitchange(true);
    ASSERT_TRUE(c.ok());
    notified = c->pid == *pid && c->event == ChildEvent::exited &&
               c->status == 3;
  });
  world_.run();
  EXPECT_TRUE(notified);
}

TEST_F(ProcessTest, SeteuidRootOnly) {
  Err user_result = Err::ok;
  Uid effective = -1;
  (void)world_.spawn(machines_[0], "user", 100, [&](Sys& sys) {
    user_result = sys.seteuid(0).error();
  });
  (void)world_.spawn(machines_[0], "root", 0, [&](Sys& sys) {
    ASSERT_TRUE(sys.seteuid(100).ok());
    effective = sys.getuid();
    ASSERT_TRUE(sys.seteuid(0).ok());
  });
  world_.run();
  EXPECT_EQ(user_result, Err::eperm);
  EXPECT_EQ(effective, 100);
}

TEST_F(ProcessTest, StoppedChildReportsToParent) {
  std::vector<ChildEvent> events;
  Pid child_pid = 0;
  (void)world_.spawn(machines_[0], "parent", 100, [&](Sys& sys) {
    auto child = sys.fork([](Sys& csys) {
      for (int i = 0; i < 100; ++i) csys.sleep(util::msec(5));
    });
    ASSERT_TRUE(child.ok());
    child_pid = *child;
    sys.sleep(util::msec(20));
    ASSERT_TRUE(sys.kill_stop(child_pid).ok());
    auto c1 = sys.waitchange(true);
    ASSERT_TRUE(c1.ok());
    events.push_back(c1->event);
    ASSERT_TRUE(sys.kill_continue(child_pid).ok());
    auto c2 = sys.waitchange(true);
    ASSERT_TRUE(c2.ok());
    events.push_back(c2->event);
    ASSERT_TRUE(sys.kill_kill(child_pid).ok());
    auto c3 = sys.waitchange(true);
    ASSERT_TRUE(c3.ok());
    events.push_back(c3->event);
  });
  world_.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], ChildEvent::stopped);
  EXPECT_EQ(events[1], ChildEvent::continued);
  EXPECT_EQ(events[2], ChildEvent::killed);
}

TEST_F(ProcessTest, CpuTimeReportedAtTenMsGrain) {
  std::int64_t reported = -1;
  (void)world_.spawn(machines_[0], "burner", 100, [&](Sys& sys) {
    sys.compute(util::msec(34));
    reported = sys.proctime_us();
  });
  world_.run();
  // 34ms of CPU reads as 30ms at the 10ms accounting grain (§4.1).
  EXPECT_EQ(reported, 30000);
}

}  // namespace
}  // namespace dpm::kernel
