// Trace (log) file format.
//
// "A filter sends its output to a log file located in the /usr/tmp
// directory. Each filter has its own log file. This file is used to store
// the trace messages collected by the filter."
//
// The log is one text line per accepted event record: space-separated
// name=value pairs in description order, with discarded fields omitted
// (the paper stored edited binary records; a self-describing text line
// keeps the same information and the same size-reduction property —
// documented in DESIGN.md). Values never contain spaces; a value that
// would (none do today) is %-escaped.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "filter/descriptions.h"
#include "filter/templates.h"

namespace dpm::filter {

/// Renders an accepted record, omitting discarded fields. Ends with '\n'.
std::string trace_line(const Record& rec, const std::set<std::string>& discard);

/// Same, with the discards given as the compiled engine's field-index
/// mask (indexed like Record::fields; nullptr = discard nothing). Avoids
/// a name lookup per field on the hot path.
std::string trace_line(const Record& rec, const std::vector<bool>* discard_mask);

/// Renders an accepted record straight from its wire view — byte-identical
/// to trace_line(decode(v), discard_mask) — and appends it to `out`.
/// `strings` (optional) is the record's resolved string scratch from
/// WirePlan::validate. False (nothing appended) when the plan cannot
/// extract the record (not viewable, too many fields, malformed); the
/// caller falls back to the owned decode. This is the fast path: no
/// Record, no per-field string allocation.
bool trace_line_view(const WirePlan& plan, const RecordView& v,
                     const std::vector<bool>* discard_mask,
                     const std::string_view* strings, std::string& out);

/// Parses one trace line back into a Record (numbers become ints, other
/// values strings). Returns nullopt for blank/comment lines.
std::optional<Record> parse_trace_line(const std::string& line);

/// Parses a whole log file; malformed lines are skipped and counted.
struct ParsedTrace {
  std::vector<Record> records;
  std::size_t malformed = 0;
};
ParsedTrace parse_trace(const std::string& text);

/// Standard location of a filter's log file (§3.4).
std::string log_path_for(const std::string& filter_name);

}  // namespace dpm::filter
