#include "kernel/file_system.h"

namespace dpm::kernel {

void FileSystem::put(const std::string& path, util::Bytes content, Uid owner,
                     bool world_readable) {
  files_[path] = FileData{std::move(content), owner, world_readable, std::nullopt};
}

void FileSystem::put_text(const std::string& path, const std::string& text,
                          Uid owner, bool world_readable) {
  put(path, util::to_bytes(text), owner, world_readable);
}

void FileSystem::put_executable(const std::string& path,
                                const std::string& program, Uid owner) {
  FileData f;
  f.owner = owner;
  f.world_readable = true;
  f.program = program;
  files_[path] = std::move(f);
}

bool FileSystem::exists(const std::string& path) const {
  return files_.count(path) != 0;
}

util::SysResult<const FileData*> FileSystem::open_read(const std::string& path,
                                                       Uid uid) const {
  auto it = files_.find(path);
  if (it == files_.end()) return util::Err::enoent;
  const FileData& f = it->second;
  if (!f.world_readable && f.owner != uid && uid != kSuperUser) {
    return util::Err::eacces;
  }
  return &f;
}

util::SysResult<FileData*> FileSystem::open_write(const std::string& path,
                                                  Uid uid, bool truncate) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    FileData f;
    f.owner = uid;
    it = files_.emplace(path, std::move(f)).first;
  } else if (it->second.owner != uid && uid != kSuperUser) {
    return util::Err::eacces;
  } else if (truncate) {
    it->second.content.clear();
  }
  return &it->second;
}

util::SysResult<void> FileSystem::remove(const std::string& path, Uid uid) {
  auto it = files_.find(path);
  if (it == files_.end()) return util::Err::enoent;
  if (it->second.owner != uid && uid != kSuperUser) return util::Err::eacces;
  files_.erase(it);
  return {};
}

std::optional<std::string> FileSystem::read_text(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return util::to_string(it->second.content);
}

std::optional<util::Bytes> FileSystem::read_bytes(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.content;
}

std::vector<std::string> FileSystem::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, f] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

}  // namespace dpm::kernel
