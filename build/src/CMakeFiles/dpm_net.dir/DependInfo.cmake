
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/CMakeFiles/dpm_net.dir/net/address.cc.o" "gcc" "src/CMakeFiles/dpm_net.dir/net/address.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/dpm_net.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/dpm_net.dir/net/fabric.cc.o.d"
  "/root/repo/src/net/hosts.cc" "src/CMakeFiles/dpm_net.dir/net/hosts.cc.o" "gcc" "src/CMakeFiles/dpm_net.dir/net/hosts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
