file(REMOVE_RECURSE
  "CMakeFiles/dpm_meter.dir/meter/metermsgs.cc.o"
  "CMakeFiles/dpm_meter.dir/meter/metermsgs.cc.o.d"
  "libdpm_meter.a"
  "libdpm_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
