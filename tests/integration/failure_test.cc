// Failure injection: the monitor must degrade gracefully — a dying
// filter must not break the computation (transparency, §2.2), dead
// machines surface as controller errors, killed processes report
// "reason: killed".
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : world_(dpm::testing::quick_config(61)) {
    machines_ = dpm::testing::add_machines(world_, {"yellow", "red", "green"});
    control::install_monitor(world_);
    apps::install_everywhere(world_);
    control::spawn_meterdaemons(world_);
    session_ = std::make_unique<control::MonitorSession>(
        world_, control::MonitorSession::Options{.host = "yellow", .uid = 100});
    world_.run();
    (void)session_->drain_output();
  }

  kernel::Pid find_proc(kernel::MachineId m, const std::string& name) {
    for (auto& [pid, p] : world_.machine(m).procs) {
      if (p->name == name && p->status != kernel::ProcStatus::dead) return pid;
    }
    return 0;
  }

  kernel::World world_;
  std::vector<kernel::MachineId> machines_;
  std::unique_ptr<control::MonitorSession> session_;
};

TEST_F(FailureTest, FilterDeathDoesNotPerturbTheComputation) {
  (void)session_->command("filter f1 yellow");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red pingpong_server 4880 50");
  (void)session_->command("addprocess j green pingpong_client red 4880 50 64");
  (void)session_->command("setflags j all");

  // Kill the filter while the job runs: meter messages land on a dead
  // socket and are lost, but the computation itself completes normally.
  const kernel::Pid filter_pid = find_proc(machines_[0], "filter");
  ASSERT_NE(filter_pid, 0);
  session_->send_line("startjob j");
  world_.run_for(util::msec(30));
  ASSERT_TRUE(world_.proc_kill(machines_[0], filter_pid, 0).ok());
  std::string out = session_->command("");  // drain
  world_.run();
  out += session_->drain_output();
  EXPECT_NE(out.find("terminated: reason: normal"), std::string::npos) << out;
  EXPECT_NE(out.find("filter 'f1' terminated"), std::string::npos) << out;
}

TEST_F(FailureTest, UnknownMachineIsACleanError) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  std::string out = session_->command("addprocess j mauve hello");
  EXPECT_NE(out.find("unknown machine 'mauve'"), std::string::npos) << out;
  out = session_->command("filter f2 mauve");
  EXPECT_NE(out.find("unknown machine 'mauve'"), std::string::npos) << out;
}

TEST_F(FailureTest, MachineWithoutDaemonIsAnRpcError) {
  // A machine exists but runs no meterdaemon: connection refused surfaces
  // as a clean controller message, not a hang.
  const auto bare = world_.add_machine("bare");
  (void)bare;
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  std::string out = session_->command("addprocess j bare hello");
  EXPECT_NE(out.find("not created"), std::string::npos) << out;
  EXPECT_NE(out.find("connection refused"), std::string::npos) << out;
}

TEST_F(FailureTest, KilledProcessReportsReasonKilled) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red pingpong_server 4881 1");
  (void)session_->command("setflags j all");
  (void)session_->command("startjob j");  // blocks in accept forever

  // Kill it out from under the controller (as a crash would).
  const kernel::Pid pid = find_proc(machines_[1], "pingpong_server");
  ASSERT_NE(pid, 0);
  ASSERT_TRUE(world_.proc_kill(machines_[1], pid, 100).ok());
  world_.run();
  std::string out = session_->drain_output();
  EXPECT_NE(out.find("terminated: reason: killed"), std::string::npos) << out;

  // Its termproc record carries the killed status (-1).
  (void)session_->command("removejob j");
  (void)session_->command("getlog f1 t");
  auto text = world_.machine(machines_[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("status=-1"), std::string::npos) << *text;
}

TEST_F(FailureTest, MeteredProcessSurvivesFilterReplacedMidRun) {
  // setmeter with a new socket closes the old one (Appendix C); here the
  // daemon re-wires an acquired process from f1 to f2 mid-stream.
  (void)session_->command("filter f1 yellow");
  (void)session_->command("filter f2 yellow");
  auto server = world_.spawn(machines_[1], "echo_server", 100,
                             apps::make_echo_server({"echo_server", "9", "0"}));
  ASSERT_TRUE(server.ok());
  world_.run();
  (void)session_->command("newjob w1");
  (void)session_->command("setflags w1 send receive");
  (void)session_->command(util::strprintf("acquire w1 red %d", *server));
  (void)world_.spawn(machines_[2], "c1", 100,
                     apps::make_echo_client({"echo_client", "red", "9", "3", "8"}));
  world_.run();

  // Re-acquire into a job on the other filter: the kernel swaps sockets.
  (void)session_->command("newjob w2 f2");
  (void)session_->command("setflags w2 send receive");
  (void)session_->command(util::strprintf("acquire w2 red %d", *server));
  // Enough echoes that the server's buffered meter records cross the
  // flush threshold (it never exits, so only thresholds flush).
  (void)world_.spawn(machines_[2], "c2", 100,
                     apps::make_echo_client({"echo_client", "red", "9", "8", "8"}));
  world_.run();

  (void)session_->command("getlog f1 t1");
  (void)session_->command("getlog f2 t2");
  auto t1 = world_.machine(machines_[0]).fs.read_text("t1");
  auto t2 = world_.machine(machines_[0]).fs.read_text("t2");
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  // Both logs captured traffic; the server never noticed the swap.
  EXPECT_NE(t1->find("event=SEND"), std::string::npos);
  EXPECT_NE(t2->find("event=SEND"), std::string::npos);
  kernel::Process* p = world_.find_process(machines_[1], *server);
  EXPECT_EQ(p->status, kernel::ProcStatus::alive);
}

TEST_F(FailureTest, GetlogOfMissingFilterFails) {
  std::string out = session_->command("getlog ghost somewhere");
  EXPECT_NE(out.find("no such filter 'ghost'"), std::string::npos) << out;
}

TEST_F(FailureTest, DuplicateJobAndFilterNamesRejected) {
  (void)session_->command("filter f1");
  std::string out = session_->command("filter f1");
  EXPECT_NE(out.find("already exists"), std::string::npos) << out;
  (void)session_->command("newjob j");
  out = session_->command("newjob j");
  EXPECT_NE(out.find("already exists"), std::string::npos) << out;
}

}  // namespace
}  // namespace dpm
