#include "analysis/structure.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace dpm::analysis {

ConnectionMatcher::ConnectionMatcher(const Trace& trace) {
  // Connect and accept records may appear in either order in the log
  // (each process's meter connection flushes independently), so both
  // sides are collected first and joined by name pair afterwards. A
  // connect is keyed by its (sockName, peerName); the matching accept
  // carries the mirror image — its sockName is the listener's name the
  // connector targeted, its peerName is the connector's name. Repeated
  // connections with identical name pairs (impossible for internet names,
  // which embed unique ephemeral ports) pair in order of appearance.
  std::map<std::pair<std::string, std::string>, std::deque<Endpoint>> connects;
  std::map<std::pair<std::string, std::string>, std::deque<Endpoint>> accepts;

  auto learn_name = [this](const std::string& name, Endpoint ep) {
    if (name.empty()) return;
    auto it = names_.find(name);
    if (it == names_.end() || it->second.sock == 0) names_[name] = ep;
  };

  for (const Event& e : trace.events) {
    if (e.type == meter::EventType::connect) {
      connects[{e.sock_name, e.peer_name}].push_back(Endpoint{e.proc(), e.sock});
      learn_name(e.sock_name, Endpoint{e.proc(), e.sock});
    } else if (e.type == meter::EventType::accept) {
      accepts[{e.peer_name, e.sock_name}].push_back(Endpoint{e.proc(), e.new_sock});
      learn_name(e.sock_name, Endpoint{e.proc(), e.sock});
    }
  }

  for (auto& [key, cq] : connects) {
    auto it = accepts.find(key);
    if (it == accepts.end()) continue;
    auto& aq = it->second;
    while (!cq.empty() && !aq.empty()) {
      const Endpoint c = cq.front();
      const Endpoint a = aq.front();
      cq.pop_front();
      aq.pop_front();
      peers_[{c.proc, c.sock}] = a;
      peers_[{a.proc, a.sock}] = c;
      ++matched_;
    }
  }
}

std::optional<Endpoint> ConnectionMatcher::remote_of(const ProcKey& proc,
                                                     std::uint64_t sock) const {
  auto it = peers_.find({proc, sock});
  if (it == peers_.end()) return std::nullopt;
  return it->second;
}

std::optional<Endpoint> ConnectionMatcher::owner_of_name(
    const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end() || it->second.sock == 0) return std::nullopt;
  return it->second;
}

const CommEdge* CommGraph::edge(const ProcKey& from, const ProcKey& to) const {
  for (const auto& e : edges) {
    if (e.from == from && e.to == to) return &e;
  }
  return nullptr;
}

CommGraph build_comm_graph(const Trace& trace) {
  ConnectionMatcher matcher(trace);

  struct Tally {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  // Directed stream channels, keyed by the sending endpoint.
  std::map<std::pair<ProcKey, std::uint64_t>, Tally> chan_sends;
  std::map<std::pair<ProcKey, std::uint64_t>, Tally> chan_recvs;
  // Datagram traffic, attributed from RECEIVE records (the only records
  // that name both ends: sourceName plus the receiving process).
  std::map<std::pair<ProcKey, ProcKey>, Tally> dgram_edges;

  for (const Event& e : trace.events) {
    if (e.type == meter::EventType::send && e.dest_name.empty()) {
      auto& t = chan_sends[{e.proc(), e.sock}];
      ++t.messages;
      t.bytes += e.msg_length;
    } else if (e.type == meter::EventType::recv) {
      if (!e.source_name.empty()) {
        if (auto owner = matcher.owner_of_name(e.source_name)) {
          auto& t = dgram_edges[{owner->proc, e.proc()}];
          ++t.messages;
          t.bytes += e.msg_length;
        }
      } else if (e.msg_length > 0) {
        auto& t = chan_recvs[{e.proc(), e.sock}];
        ++t.messages;
        t.bytes += e.msg_length;
      }
    }
  }

  std::map<std::pair<ProcKey, ProcKey>, Tally> edges;
  std::set<std::pair<ProcKey, std::uint64_t>> recv_side_consumed;

  // Stream channels: the send side is authoritative when metered; a
  // channel whose sender was not metered falls back to the receiver's
  // RECEIVE records (read-sized, so message counts are approximate there).
  for (const auto& [key, t] : chan_sends) {
    auto remote = matcher.remote_of(key.first, key.second);
    if (!remote) continue;
    auto& e = edges[{key.first, remote->proc}];
    e.messages += t.messages;
    e.bytes += t.bytes;
    recv_side_consumed.insert({remote->proc, remote->sock});
  }
  for (const auto& [key, t] : chan_recvs) {
    if (recv_side_consumed.count(key)) continue;
    auto remote = matcher.remote_of(key.first, key.second);
    if (!remote) continue;
    // Only use the receive side when the sender produced no send records.
    if (chan_sends.count({remote->proc, remote->sock})) continue;
    auto& e = edges[{remote->proc, key.first}];
    e.messages += t.messages;
    e.bytes += t.bytes;
  }
  for (const auto& [key, t] : dgram_edges) {
    auto& e = edges[key];
    e.messages += t.messages;
    e.bytes += t.bytes;
  }

  CommGraph g;
  std::set<ProcKey> nodes;
  for (const auto& e : trace.events) nodes.insert(e.proc());
  g.nodes.assign(nodes.begin(), nodes.end());
  for (const auto& [key, t] : edges) {
    g.edges.push_back(CommEdge{key.first, key.second, t.messages, t.bytes});
  }
  std::sort(g.edges.begin(), g.edges.end(), [](const auto& a, const auto& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  return g;
}

std::vector<ConnStat> connection_table(const Trace& trace) {
  ConnectionMatcher matcher(trace);

  // Traffic per sending endpoint.
  struct Tally {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  std::map<Endpoint, Tally> sends;
  for (const Event& e : trace.events) {
    if (e.type == meter::EventType::send && e.dest_name.empty()) {
      auto& t = sends[Endpoint{e.proc(), e.sock}];
      ++t.messages;
      t.bytes += e.msg_length;
    }
  }

  std::vector<ConnStat> out;
  std::set<Endpoint> seen;
  for (const Event& e : trace.events) {
    if (e.type != meter::EventType::connect) continue;
    const Endpoint a{e.proc(), e.sock};
    if (seen.count(a)) continue;
    auto remote = matcher.remote_of(a.proc, a.sock);
    if (!remote) continue;
    seen.insert(a);
    seen.insert(*remote);
    ConnStat c;
    c.a = a;
    c.b = *remote;
    if (auto it = sends.find(a); it != sends.end()) {
      c.msgs_ab = it->second.messages;
      c.bytes_ab = it->second.bytes;
    }
    if (auto it = sends.find(*remote); it != sends.end()) {
      c.msgs_ba = it->second.messages;
      c.bytes_ba = it->second.bytes;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace dpm::analysis
