// F2.1: the three measurement stages end to end — metering in the kernel,
// filtering by a filter process, analysis over the retrieved trace.
#include <gtest/gtest.h>

#include "analysis/report.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"

namespace dpm {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : world_(dpm::testing::quick_config(11)) {
    machines_ = dpm::testing::add_machines(world_, {"yellow", "red", "green"});
    control::install_monitor(world_);
    apps::install_everywhere(world_);
    control::spawn_meterdaemons(world_);
    session_ = std::make_unique<control::MonitorSession>(
        world_, control::MonitorSession::Options{.host = "yellow", .uid = 100});
    world_.run();
    (void)session_->drain_output();
  }

  analysis::Trace run_job_and_get_trace(const std::string& flags,
                                        const std::string& templates_file = "") {
    std::string filter_cmd = "filter f1 yellow";
    if (!templates_file.empty()) {
      filter_cmd = "filter f1 yellow filter descriptions " + templates_file;
    }
    (void)session_->command(filter_cmd);
    (void)session_->command("newjob job");
    (void)session_->command("addprocess job red pingpong_server 4820 5");
    (void)session_->command(
        "addprocess job green pingpong_client red 4820 5 128");
    (void)session_->command("setflags job " + flags);
    (void)session_->command("startjob job");
    (void)session_->command("removejob job");
    (void)session_->command("getlog f1 out.trace");
    auto text = world_.machine(machines_[0]).fs.read_text("out.trace");
    EXPECT_TRUE(text.has_value());
    return analysis::read_trace(text.value_or(""));
  }

  kernel::World world_;
  std::vector<kernel::MachineId> machines_;
  std::unique_ptr<control::MonitorSession> session_;
};

TEST_F(PipelineTest, MeterFilterAnalyzeAllFlags) {
  analysis::Trace trace = run_job_and_get_trace("all");
  EXPECT_EQ(trace.malformed, 0u);
  ASSERT_GT(trace.events.size(), 20u);

  // Analysis stage: statistics, structure, ordering, parallelism all run
  // and agree with the workload.
  const analysis::CommStats stats =
      analysis::communication_statistics(trace);
  EXPECT_EQ(stats.per_process.size(), 2u);  // server + client

  // Each direction carried 5 messages of 128 bytes.
  ASSERT_EQ(stats.graph.edges.size(), 2u);
  for (const auto& e : stats.graph.edges) {
    EXPECT_EQ(e.messages, 5u);
    EXPECT_EQ(e.bytes, 5u * 128u);
  }

  const analysis::Ordering ordering = analysis::order_events(trace);
  EXPECT_EQ(ordering.message_pairs, 10u);
  EXPECT_EQ(ordering.cross_machine_pairs, 10u);
  EXPECT_FALSE(ordering.had_cycle);

  const analysis::ParallelismProfile par =
      analysis::measure_parallelism(trace);
  EXPECT_EQ(par.processes, 2u);
  EXPECT_GT(par.total_us, 0);

  // The report renders without issue.
  const std::string report = analysis::full_report(trace);
  EXPECT_NE(report.find("communication statistics"), std::string::npos);
  EXPECT_NE(report.find("-> "), std::string::npos);
}

TEST_F(PipelineTest, FilterSelectionRulesApplyAtTheFilter) {
  // A template keeping only the computation's 128-byte send events (the
  // msgLength clause also drops the client's stdout report line, which is
  // a metered send of a different size).
  world_.machine(machines_[0]).fs.put_text("only_sends",
                                           "type=1, msgLength=128\n", 100);
  analysis::Trace trace = run_job_and_get_trace("all", "only_sends");
  ASSERT_GT(trace.events.size(), 0u);
  for (const auto& e : trace.events) {
    EXPECT_EQ(e.type, meter::EventType::send);
  }
  EXPECT_EQ(trace.events.size(), 10u);  // 5 each way
}

TEST_F(PipelineTest, DiscardEditingShrinksTheLog) {
  world_.machine(machines_[0]).fs.put_text("drop_fields",
                                           "pc=#*, procTime=#*, size=#*\n",
                                           100);
  analysis::Trace full = run_job_and_get_trace("all");
  (void)session_->command("die");  // reset filters for a clean second run
  world_.run();

  // Second session for the reduced run.
  control::MonitorSession s2(
      world_, control::MonitorSession::Options{.host = "yellow", .uid = 100});
  world_.run();
  (void)s2.drain_output();
  (void)s2.command("filter f2 yellow filter descriptions drop_fields");
  (void)s2.command("newjob j2");
  (void)s2.command("addprocess j2 red pingpong_server 4830 5");
  (void)s2.command("addprocess j2 green pingpong_client red 4830 5 128");
  (void)s2.command("setflags j2 all");
  (void)s2.command("startjob j2");
  (void)s2.command("removejob j2");
  (void)s2.command("getlog f2 reduced.trace");

  auto full_log = world_.machine(machines_[0]).fs.read_text("out.trace");
  auto reduced_log = world_.machine(machines_[0]).fs.read_text("reduced.trace");
  ASSERT_TRUE(full_log.has_value());
  ASSERT_TRUE(reduced_log.has_value());
  analysis::Trace reduced = analysis::read_trace(*reduced_log);
  EXPECT_EQ(reduced.events.size(), full.events.size());
  EXPECT_LT(reduced_log->size(), full_log->size());
}

TEST_F(PipelineTest, EventsFlowAcrossMachineBoundaryToRemoteFilter) {
  // The filter lives on yellow; metered processes on red and green: every
  // meter connection crosses machines (§3.4: no restriction on filter
  // placement).
  analysis::Trace trace = run_job_and_get_trace("send receive");
  std::set<std::uint16_t> machines_seen;
  for (const auto& e : trace.events) machines_seen.insert(e.machine);
  EXPECT_EQ(machines_seen.size(), 2u);  // red's and green's indexes
}

}  // namespace
}  // namespace dpm
