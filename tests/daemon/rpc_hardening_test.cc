// RPC hardening: bounded receive against stalled or truncating peers,
// deadline/retry accounting on unreachable daemons, and the at-most-once
// replay cache (a retried create must not spawn a second process).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "control/session.h"
#include "daemon/protocol.h"
#include "kernel/syscalls.h"
#include "testing.h"

namespace dpm::daemon {
namespace {

using kernel::Fd;
using kernel::MachineId;
using kernel::Pid;
using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;
using util::Err;

class RpcHardeningTest : public ::testing::Test {
 protected:
  RpcHardeningTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
    control::install_monitor(world_);
    apps::install_everywhere(world_);
  }

  void with_daemons() { control::spawn_meterdaemons(world_); }

  /// Runs `body` as a uid-100 process on red.
  void as_controller(std::function<void(Sys&)> body) {
    (void)world_.spawn(machines_[0], "mini-controller", 100,
                       [body = std::move(body)](Sys& sys) {
                         sys.sleep(util::msec(5));
                         body(sys);
                       });
    world_.run();
  }

  kernel::World world_;
  std::vector<MachineId> machines_;
};

/// A fake daemon on green: accepts one connection and hands it to `serve`.
static void spawn_fake_daemon(kernel::World& world, MachineId m,
                              net::Port port,
                              std::function<void(Sys&, Fd)> serve) {
  (void)world.spawn(m, "fake-daemon", kernel::kSuperUser,
                    [port, serve = std::move(serve)](Sys& sys) {
                      auto ls = sys.socket(SockDomain::internet,
                                           SockType::stream);
                      ASSERT_TRUE(ls.ok());
                      ASSERT_TRUE(sys.bind_port(*ls, port).ok());
                      ASSERT_TRUE(sys.listen(*ls, 4).ok());
                      auto conn = sys.accept(*ls);
                      ASSERT_TRUE(conn.ok());
                      serve(sys, *conn);
                    });
}

TEST_F(RpcHardeningTest, StalledReplyTimesOutInsteadOfWedging) {
  // The fake daemon sends a frame header promising 64 bytes, then stalls.
  spawn_fake_daemon(world_, machines_[1], 6100, [](Sys& sys, Fd conn) {
    (void)sys.send(conn, util::Bytes{64, 0, 0, 0});
    sys.sleep(util::sec(10));  // never sends the rest
    (void)sys.close(conn);
  });

  Err got = Err::ok;
  std::int64_t waited_us = 0;
  as_controller([&](Sys& sys) {
    auto addr = sys.resolve("green", 6100);
    ASSERT_TRUE(addr.has_value());
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    const auto t0 = sys.world().now();
    auto reply = recv_msg(sys, *fd, util::msec(100));
    waited_us = util::count_us(sys.world().now() - t0);
    ASSERT_FALSE(reply.ok());
    got = reply.error();
    (void)sys.close(*fd);
  });
  EXPECT_EQ(got, Err::etimedout);
  EXPECT_GE(waited_us, 100'000);
  EXPECT_LT(waited_us, 200'000);  // bounded: not the fake daemon's 10s nap
}

TEST_F(RpcHardeningTest, ReplyTruncatedMidMessageIsConnReset) {
  // Header promises 64 bytes but the daemon closes after 8.
  spawn_fake_daemon(world_, machines_[1], 6101, [](Sys& sys, Fd conn) {
    (void)sys.send(conn, util::Bytes{64, 0, 0, 0, 21, 0, 0, 0});
    (void)sys.close(conn);
  });

  Err got = Err::ok;
  as_controller([&](Sys& sys) {
    auto addr = sys.resolve("green", 6101);
    ASSERT_TRUE(addr.has_value());
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    auto reply = recv_msg(sys, *fd, util::msec(100));
    ASSERT_FALSE(reply.ok());
    got = reply.error();
    (void)sys.close(*fd);
  });
  EXPECT_EQ(got, Err::econnreset);
}

TEST_F(RpcHardeningTest, HardenedRpcRetriesThenReportsFailure) {
  // No daemon anywhere: every attempt is refused, the call backs off and
  // retries its full budget, and the failure counters account for it.
  Err got = Err::ok;
  as_controller([&](Sys& sys) {
    auto addr = sys.resolve("green", kDaemonPort);
    ASSERT_TRUE(addr.has_value());
    ProcRequest ping;
    ping.what = MsgType::status_request;
    RpcOptions opts;
    opts.max_attempts = 3;
    opts.deadline = util::msec(50);
    auto reply = rpc_call(sys, *addr, ping, opts);
    ASSERT_FALSE(reply.ok());
    got = reply.error();
  });
  EXPECT_EQ(got, Err::econnrefused);
  EXPECT_EQ(world_.obs().counter("daemon.rpc_retries").value(), 2u);
  EXPECT_EQ(world_.obs().counter("daemon.rpc_failures").value(), 1u);
}

TEST_F(RpcHardeningTest, CreateNonceReplayDoesNotDoubleSpawn) {
  with_daemons();
  Pid first = 0, second = 0;
  as_controller([&](Sys& sys) {
    auto ns = sys.socket(SockDomain::internet, SockType::stream);
    auto bound = sys.bind_port(*ns, 0);
    ASSERT_TRUE(bound.ok());
    ASSERT_TRUE(sys.listen(*ns, 8).ok());

    CreateRequest req;
    req.uid = 100;
    req.filename = "hello";
    req.params = {"hi"};
    req.control_port = bound->port;
    req.control_host = "red";
    req.nonce = 0xbeef0001;
    auto addr = sys.resolve("green", kDaemonPort);
    ASSERT_TRUE(addr.has_value());

    auto r1 = rpc_call(sys, *addr, req, RpcOptions{});
    ASSERT_TRUE(r1.ok());
    auto* c1 = std::get_if<CreateReply>(&*r1);
    ASSERT_NE(c1, nullptr);
    ASSERT_EQ(c1->status, 0);
    first = c1->pid;

    // The "lost reply" retry: identical request, identical nonce. The
    // daemon must answer from its replay cache, not spawn again.
    auto r2 = rpc_call(sys, *addr, req, RpcOptions{});
    ASSERT_TRUE(r2.ok());
    auto* c2 = std::get_if<CreateReply>(&*r2);
    ASSERT_NE(c2, nullptr);
    second = c2->pid;
  });
  EXPECT_NE(first, 0);
  EXPECT_EQ(first, second);

  // Exactly one 'hello' process exists on green.
  int hellos = 0;
  for (auto& [pid, p] : world_.machine(machines_[1]).procs) {
    if (p->name == "hello") ++hellos;
  }
  EXPECT_EQ(hellos, 1);
}

TEST_F(RpcHardeningTest, StatusProbeDistinguishesLiveAndDeadPids) {
  with_daemons();
  as_controller([&](Sys& sys) {
    auto addr = sys.resolve("green", kDaemonPort);
    ASSERT_TRUE(addr.has_value());

    // pid=0: pure liveness ping.
    ProcRequest ping;
    ping.what = MsgType::status_request;
    auto r = rpc_call(sys, *addr, ping, RpcOptions{});
    ASSERT_TRUE(r.ok());
    auto* ok = std::get_if<SimpleReply>(&*r);
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->status, 0);

    // A pid the daemon never created: gone.
    ProcRequest probe;
    probe.what = MsgType::status_request;
    probe.pid = 4242;
    auto r2 = rpc_call(sys, *addr, probe, RpcOptions{});
    ASSERT_TRUE(r2.ok());
    auto* gone = std::get_if<SimpleReply>(&*r2);
    ASSERT_NE(gone, nullptr);
    EXPECT_EQ(gone->status, static_cast<std::int32_t>(Err::esrch));
  });
}

}  // namespace
}  // namespace dpm::daemon
