// trace2chrome: export a filter trace as Chrome trace_event JSON.
//
// The output loads in chrome://tracing or https://ui.perfetto.dev: one
// lane per machine/process, arrows for matched messages, and a synthetic
// "critical path" lane (see analysis/live/chrome_trace.h). Works from a
// finished trace log or straight from a live session — both replay
// through the same streaming LiveAnalysis.
//
//   trace2chrome <trace> [out.json]    convert a finished filter log
//   trace2chrome --session [out.json]  run a scripted metered session,
//                                      export its trace
//   trace2chrome --smoke [out.json]    --session + schema check +
//                                      batch-vs-live equivalence (ctest)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/live/aggregator.h"
#include "analysis/live/chrome_trace.h"
#include "analysis/ordering.h"
#include "apps/apps.h"
#include "control/session.h"
#include "filter/filter_program.h"
#include "kernel/world.h"

namespace {

using namespace dpm;

int write_export(analysis::live::LiveAnalysis& live,
                 const std::string& out_path) {
  const auto st = live.stats();
  if (st.events == 0) {
    // An empty document loads as a blank screen in the trace viewer with
    // no hint of what went wrong; fail loudly instead and write nothing.
    std::cerr << "trace2chrome: trace contains no events (empty or "
                 "comment-only input?) -- refusing to write "
              << out_path << "\n";
    return 1;
  }
  const std::string json = analysis::live::chrome_trace_json(live);
  const auto check = analysis::live::check_chrome_trace(json);
  if (!check.ok) {
    std::cerr << "trace2chrome: exported document failed its own schema "
                 "check: "
              << check.error << "\n";
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "trace2chrome: cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cout << "wrote " << out_path << ": " << check.events
            << " trace events (" << check.slices << " slices, "
            << check.flow_pairs << " message flows, "
            << check.cross_machine_flow_pairs << " cross-machine), "
            << st.events << " records, critical path "
            << live.critical_path().total_us << " us\n";
  return 0;
}

/// The scripted session both --session and --smoke run: a two-machine
/// ping-pong (cross-machine pairs guaranteed) captured live through the
/// filter sink, with the log retrieved for the batch-equivalence check.
struct SessionCapture {
  analysis::live::LiveAnalysis live;
  std::size_t sink_dropped = 0;
  std::string log_text;  // the same trace, via getlog
};

SessionCapture run_session() {
  SessionCapture cap;
  kernel::World world;
  const kernel::MachineId red = world.add_machine("red");
  world.add_machine("green");
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  auto sink = std::make_shared<analysis::live::LiveRecordSink>(cap.live);
  filter::install_live_sink(world, sink);

  control::MonitorSession session(world, {.host = "red", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 red");
  (void)session.command("newjob pp");
  (void)session.command("addprocess pp green pingpong_server 4900 8");
  (void)session.command("addprocess pp red pingpong_client green 4900 8 128");
  (void)session.command("setflags pp all");
  (void)session.command("startjob pp");
  (void)session.command("removejob pp");
  (void)session.command("getlog f1 pp.trace");
  session.send_line("bye");
  world.run();

  cap.sink_dropped = sink->dropped();
  if (auto text = world.machine(red).fs.read_text("pp.trace")) {
    cap.log_text = *text;
  }
  return cap;
}

int run_smoke(const std::string& out_path) {
  SessionCapture cap = run_session();
  auto fail = [](const std::string& what) {
    std::cerr << "trace2chrome --smoke: " << what << "\n";
    return 1;
  };

  const auto st = cap.live.stats();
  if (st.events == 0) return fail("no events reached the live sink");
  if (cap.sink_dropped != 0) return fail("sink dropped records");
  if (cap.log_text.empty()) return fail("getlog produced no trace");

  // Batch-vs-live equivalence on the very trace just exported: the log is
  // written in the order the sink saw the records, so pair counts and
  // every Lamport clock must agree with order_events().
  const analysis::Trace trace = analysis::read_trace(cap.log_text);
  if (trace.events.size() != st.events) {
    return fail("log has " + std::to_string(trace.events.size()) +
                " events, live saw " + std::to_string(st.events));
  }
  const analysis::Ordering ord = analysis::order_events(trace);
  if (ord.message_pairs != st.message_pairs) {
    return fail("batch paired " + std::to_string(ord.message_pairs) +
                ", live paired " + std::to_string(st.message_pairs));
  }
  if (ord.cross_machine_pairs != st.cross_machine_pairs) {
    return fail("cross-machine pair counts differ");
  }
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (ord.events[i].lamport != cap.live.lamport_of(i)) {
      return fail("lamport clock differs at event " + std::to_string(i));
    }
  }

  // The exported document: valid schema, with flow arrows crossing
  // machines and the critical-path lane present.
  const std::string json = analysis::live::chrome_trace_json(cap.live);
  const auto check = analysis::live::check_chrome_trace(json);
  if (!check.ok) return fail("schema check: " + check.error);
  if (check.slices == 0) return fail("no slices");
  if (check.flow_pairs == 0) return fail("no flow pairs");
  if (check.cross_machine_flow_pairs == 0) {
    return fail("no cross-machine flow pairs");
  }
  if (!check.has_critical_path) return fail("no critical-path lane");

  const int rc = write_export(cap.live, out_path);
  if (rc != 0) return rc;
  std::cout << "trace2chrome --smoke: OK (batch == live on "
            << trace.events.size() << " events, " << st.message_pairs
            << " pairs)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: trace2chrome <trace> [out.json]\n"
                 "       trace2chrome --session [out.json]\n"
                 "       trace2chrome --smoke [out.json]\n";
    return 2;
  }

  if (args[0] == "--smoke") {
    return run_smoke(args.size() > 1 ? args[1] : "trace2chrome_smoke.json");
  }
  if (args[0] == "--session") {
    SessionCapture cap = run_session();
    return write_export(cap.live,
                        args.size() > 1 ? args[1] : "session.trace.json");
  }

  std::ifstream in(args[0], std::ios::binary);
  if (!in) {
    std::cerr << "trace2chrome: cannot open " << args[0] << "\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  analysis::live::LiveAnalysis live;
  analysis::live::TraceTailer tailer(live);
  tailer.feed(ss.str());
  tailer.finish();
  if (tailer.malformed() != 0) {
    std::cerr << "trace2chrome: " << tailer.malformed()
              << " malformed lines skipped\n";
  }
  return write_export(live, args.size() > 1 ? args[1] : args[0] + ".json");
}
