# Empty compiler generated dependencies file for dpm_sim.
# This may be replaced when dependencies are built.
