#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace dpm::sim {

void EventQueue::schedule(util::TimePoint at, Fn fn) {
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

util::TimePoint EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fn EventQueue::pop() {
  assert(!heap_.empty());
  // priority_queue::top() is const; the event is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Fn fn = std::move(const_cast<Event&>(heap_.top()).fn);
  heap_.pop();
  return fn;
}

}  // namespace dpm::sim
