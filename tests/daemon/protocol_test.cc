// Controller/daemon message formats — Fig 3.6.
#include "daemon/protocol.h"

#include <gtest/gtest.h>

namespace dpm::daemon {
namespace {

template <typename T>
T round_trip(const DaemonMsg& m) {
  auto wire = serialize(m);
  auto parsed = parse(wire);
  EXPECT_TRUE(parsed.has_value());
  return std::get<T>(*parsed);
}

TEST(Protocol, Fig36TypeNumbers) {
  EXPECT_EQ(static_cast<std::uint32_t>(MsgType::create_request), 11u);
  EXPECT_EQ(static_cast<std::uint32_t>(MsgType::create_reply), 18u);
}

TEST(Protocol, CreateRequestCarriesFig36Fields) {
  // Fig 3.6: filename, parameter count, parameter list, filter port,
  // filter host, meter flags, control port, control host.
  CreateRequest req;
  req.uid = 100;
  req.filename = "A";
  req.params = {"arg1", "arg2", "arg3"};
  req.filter_port = 1234;
  req.filter_host = "blue";
  req.meter_flags = 0x1ff;
  req.control_port = 5678;
  req.control_host = "yellow";
  req.stdin_file = "input.dat";
  auto got = round_trip<CreateRequest>(req);
  EXPECT_EQ(got.uid, 100);
  EXPECT_EQ(got.filename, "A");
  EXPECT_EQ(got.params, req.params);
  EXPECT_EQ(got.filter_port, 1234);
  EXPECT_EQ(got.filter_host, "blue");
  EXPECT_EQ(got.meter_flags, 0x1ffu);
  EXPECT_EQ(got.control_port, 5678);
  EXPECT_EQ(got.control_host, "yellow");
  EXPECT_EQ(got.stdin_file, "input.dat");
}

TEST(Protocol, CreateReplyPidStatus) {
  auto got = round_trip<CreateReply>(CreateReply{2120, 0});
  EXPECT_EQ(got.pid, 2120);
  EXPECT_EQ(got.status, 0);
}

TEST(Protocol, FilterRequestReply) {
  FilterRequest req;
  req.uid = 1;
  req.filterfile = "filter";
  req.logfile = "/usr/tmp/f1.log";
  req.descriptions = "descriptions";
  req.templates = "templates";
  req.control_port = 9;
  req.control_host = "red";
  auto got = round_trip<FilterRequest>(req);
  EXPECT_EQ(got.logfile, "/usr/tmp/f1.log");
  EXPECT_EQ(got.templates, "templates");

  auto reply = round_trip<FilterReply>(FilterReply{2117, 0, 1050});
  EXPECT_EQ(reply.pid, 2117);
  EXPECT_EQ(reply.meter_port, 1050);
}

TEST(Protocol, ProcRequestPreservesSubtype) {
  for (MsgType t : {MsgType::start_request, MsgType::stop_request,
                    MsgType::kill_request, MsgType::release_request}) {
    ProcRequest req;
    req.what = t;
    req.uid = 7;
    req.pid = 42;
    auto wire = serialize(DaemonMsg{req});
    auto parsed = parse(wire);
    ASSERT_TRUE(parsed.has_value());
    auto got = std::get<ProcRequest>(*parsed);
    EXPECT_EQ(got.what, t);
    EXPECT_EQ(got.pid, 42);
  }
}

TEST(Protocol, SetFlagsAcquireNotes) {
  auto sf = round_trip<SetFlagsRequest>(SetFlagsRequest{5, 10, 0xff});
  EXPECT_EQ(sf.flags, 0xffu);

  AcquireRequest aq;
  aq.uid = 2;
  aq.pid = 99;
  aq.filter_port = 700;
  aq.filter_host = "blue";
  aq.meter_flags = 3;
  auto aq2 = round_trip<AcquireRequest>(aq);
  EXPECT_EQ(aq2.pid, 99);
  EXPECT_EQ(aq2.filter_host, "blue");

  StateNote note;
  note.machine = "green";
  note.pid = 2122;
  note.event = 2;
  note.status = 0;
  auto note2 = round_trip<StateNote>(note);
  EXPECT_EQ(note2.machine, "green");
  EXPECT_EQ(note2.pid, 2122);

  IoNote io;
  io.machine = "red";
  io.pid = 1;
  io.data = "some output\n";
  EXPECT_EQ(round_trip<IoNote>(io).data, "some output\n");

  IoSend is;
  is.uid = 1;
  is.pid = 2;
  is.data = "stdin data";
  EXPECT_EQ(round_trip<IoSend>(is).data, "stdin data");

  EXPECT_EQ(round_trip<SimpleReply>(SimpleReply{13}).status, 13);
}

TEST(Protocol, ParseRejectsCorruptInput) {
  auto wire = serialize(DaemonMsg{CreateReply{1, 0}});
  wire[4] = 0xEE;  // unknown type
  EXPECT_FALSE(parse(wire).has_value());

  auto wire2 = serialize(DaemonMsg{CreateReply{1, 0}});
  wire2.pop_back();  // size mismatch
  EXPECT_FALSE(parse(wire2).has_value());

  EXPECT_FALSE(parse(util::Bytes{}).has_value());
}

TEST(Protocol, SerializedSizeIsFramed) {
  auto wire = serialize(DaemonMsg{SimpleReply{0}});
  const std::uint32_t size = wire[0] | wire[1] << 8 | wire[2] << 16 |
                             static_cast<std::uint32_t>(wire[3]) << 24;
  EXPECT_EQ(size, wire.size());
}

}  // namespace
}  // namespace dpm::daemon
