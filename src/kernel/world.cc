#include "kernel/world.h"

#include <algorithm>
#include <cassert>

#include "kernel/meter_hooks.h"
#include "kernel/syscalls.h"
#include "net/faults.h"
#include "util/logging.h"

namespace dpm::kernel {

World::World(WorldConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      fabric_(exec_, cfg.seed ^ 0x9e3779b97f4a7c15ULL, &obs_) {
  exec_.set_obs(&obs_);  // also installs the sim clock as the registry's
  fabric_.configure_network(0, cfg_.default_net);
  fabric_.configure_local(cfg_.local_net);

  mobs_.events = &obs_.counter("kernel.meter_events");
  mobs_.flushes = &obs_.counter("kernel.meter_flushes");
  mobs_.bytes = &obs_.counter("kernel.meter_bytes");
  mobs_.dropped_batches = &obs_.counter("kernel.meter_dropped_batches");
  mobs_.dropped_bytes = &obs_.counter("kernel.meter_dropped_bytes");
  mobs_.malformed_records = &obs_.counter("kernel.meter_malformed_records");
  mobs_.consumed_records = &obs_.counter("kernel.meter_records_consumed");
  mobs_.dropped_records = &obs_.counter("kernel.meter_dropped_records");
  mobs_.lost_records = &obs_.counter("kernel.meter_lost_records");
  mobs_.stranded_records = &obs_.counter("kernel.meter_stranded_records");
  mobs_.pending_bytes = &obs_.gauge("kernel.meter_pending_bytes");
  mobs_.rbuf_bytes = &obs_.gauge("kernel.rbuf_bytes");
  mobs_.batch_bytes = &obs_.histogram("kernel.meter_batch_bytes");
  mobs_.batch_msgs = &obs_.histogram("kernel.meter_batch_msgs");
  mobs_.ring_occupancy = &obs_.gauge("ring.occupancy");
  mobs_.ring_wakeups = &obs_.counter("ring.wakeups");
  mobs_.ring_overflow_drops = &obs_.counter("ring.overflow_drops");
  fobs_.forwarded = &obs_.counter("fanin.forwarded_records");
  fobs_.consumed = &obs_.counter("fanin.records_consumed");
  fobs_.lost = &obs_.counter("fanin.lost_records");
  fobs_.overflow_records = &obs_.counter("fanin.overflow_records");
  fobs_.overflow_bytes = &obs_.counter("fanin.overflow_bytes");
  fobs_.stranded = &obs_.counter("fanin.stranded_records");
  fobs_.malformed = &obs_.counter("fanin.malformed_records");
  fobs_.queue_bytes = &obs_.gauge("fanin.queue_bytes");
  machines_down_ = &obs_.gauge("kernel.machines_down");
}

void World::set_service(const std::string& name,
                        std::shared_ptr<void> service) {
  if (!service) {
    services_.erase(name);
    return;
  }
  services_[name] = std::move(service);
}

std::shared_ptr<void> World::service(const std::string& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second;
}

MeterStats World::meter_stats() const {
  return MeterStats{mobs_.events->value(),
                    mobs_.flushes->value(),
                    mobs_.bytes->value(),
                    mobs_.dropped_batches->value(),
                    mobs_.dropped_bytes->value(),
                    mobs_.malformed_records->value()};
}

void World::start_obs_snapshots(util::Duration period, std::string* sink) {
  const std::uint64_t gen = ++obs_timer_gen_;
  // Self-rescheduling event; a bumped generation (stop, or a restart)
  // orphans the pending tick.
  struct Timer {
    World* w;
    util::Duration period;
    std::string* sink;
    std::uint64_t gen;
    void operator()() const {
      if (w->obs_timer_gen_ != gen) return;
      w->obs_.snapshot_jsonl(*sink);
      w->exec_.schedule_after(period, *this);
    }
  };
  exec_.schedule_after(period, Timer{this, period, sink, gen});
}

World::~World() {
  // Abort every live task while the world is still intact so that process
  // finalization (meter flush, descriptor teardown) sees valid state.
  for (auto& [mid, m] : machines_) {
    for (auto& [pid, p] : m->procs) {
      if (p->status != ProcStatus::dead && p->task != sim::kNoTask &&
          !exec_.task_finished(p->task)) {
        exec_.abort_task(p->task);
      }
    }
  }
  exec_.run();
}

MachineId World::add_machine(const std::string& name,
                             std::vector<net::Interface> interfaces,
                             sim::MachineClock::Config clock) {
  const MachineId id = next_machine_++;
  auto m = std::make_unique<Machine>(id, static_cast<std::uint16_t>(id - 1),
                                     name, sim::MachineClock(clock), interfaces);
  const bool ok = hosts_.add_host(name, id, std::move(interfaces));
  assert(ok && "duplicate host name or address");
  (void)ok;
  machines_[id] = std::move(m);
  return id;
}

MachineId World::add_machine(const std::string& name) {
  sim::MachineClock::Config clock;
  clock.offset = util::usec(rng_.uniform(-50000, 50000));
  clock.drift_ppm = static_cast<double>(rng_.uniform(-100, 100));
  clock.tick = util::usec(1000);
  return add_machine(name, {net::Interface{0, next_addr_++}}, clock);
}

void World::add_account(MachineId m, Uid uid) {
  machine(m).accounts.insert(uid);
}

void World::add_account_everywhere(Uid uid) {
  for (auto& [id, m] : machines_) m->accounts.insert(uid);
}

Machine& World::machine(MachineId id) {
  auto it = machines_.find(id);
  assert(it != machines_.end());
  return *it->second;
}

const Machine& World::machine(MachineId id) const {
  auto it = machines_.find(id);
  assert(it != machines_.end());
  return *it->second;
}

Machine* World::machine_by_name(const std::string& name) {
  for (auto& [id, m] : machines_) {
    if (m->name == name) return m.get();
  }
  return nullptr;
}

std::vector<MachineId> World::machines() const {
  std::vector<MachineId> out;
  out.reserve(machines_.size());
  for (const auto& [id, m] : machines_) out.push_back(id);
  return out;
}

util::SysResult<Pid> World::spawn(MachineId mid, const std::string& proc_name,
                                  Uid uid, ProcessMain main, SpawnOpts opts) {
  Machine& m = machine(mid);
  if (!m.up) return util::Err::eagain;  // crashed machine
  if (!m.accounts.count(uid) && uid != kSuperUser) return util::Err::eacces;

  const Pid pid = m.next_pid++;
  auto proc = std::make_shared<Process>(pid, mid, uid, proc_name,
                                        cfg_.max_descriptors);
  proc->parent = opts.parent;
  proc->stop_requested = opts.suspended;
  proc->initial_suspend = opts.suspended;

  auto install_stdio = [&](Fd fd, Descriptor d) {
    if (d.kind == Descriptor::Kind::socket) socket_ref(d.sock);
    proc->fds.install(fd, std::move(d));
  };
  install_stdio(0, opts.stdin_fd);
  install_stdio(1, opts.stdout_fd);
  install_stdio(2, opts.stderr_fd);

  m.procs[pid] = proc;

  auto args = opts.args;
  proc->task = exec_.spawn(
      proc_name, [this, proc, main = std::move(main), args]() mutable {
        Sys sys(*this, proc);
        sys.set_args(std::move(args));
        proc->status = ProcStatus::alive;
        int status = 0;
        bool was_killed = false;
        try {
          sys.stop_checkpoint();  // honors create-suspended (§3.5.1)
          main(sys);
        } catch (const ProcessExit& e) {
          status = e.status;
        } catch (const sim::TaskAborted&) {
          was_killed = true;
        }
        finalize_exit(proc, was_killed ? -1 : status, was_killed);
        if (was_killed) throw sim::TaskAborted{};  // let the task wrapper see it
      });
  return pid;
}

util::SysResult<Pid> World::spawn_file(MachineId mid, const std::string& path,
                                       Uid uid, std::vector<std::string> args,
                                       SpawnOpts opts) {
  Machine& m = machine(mid);
  auto file = m.fs.open_read(path, uid);
  if (!file) return file.error();
  if (!(*file)->program) return util::Err::eacces;  // not executable
  std::vector<std::string> argv;
  argv.push_back(path);
  for (auto& a : args) argv.push_back(a);
  auto main = programs_.instantiate(*(*file)->program, argv);
  if (!main) return util::Err::enoent;
  opts.args = std::move(argv);
  return spawn(mid, path, uid, std::move(*main), std::move(opts));
}

Process* World::find_process(MachineId mid, Pid pid) {
  auto it = machines_.find(mid);
  if (it == machines_.end()) return nullptr;
  auto pit = it->second->procs.find(pid);
  if (pit == it->second->procs.end()) return nullptr;
  return pit->second.get();
}

util::SysResult<void> World::proc_stop(MachineId mid, Pid pid, Uid caller) {
  Process* p = find_process(mid, pid);
  if (!p || p->status == ProcStatus::dead) return util::Err::esrch;
  if (p->uid != caller && caller != kSuperUser) return util::Err::eperm;
  if (!p->stop_requested) {
    p->stop_requested = true;
    // Nudge the task so a blocked process reaches its stop checkpoint.
    exec_.make_runnable(p->task);
  }
  return {};
}

util::SysResult<void> World::proc_continue(MachineId mid, Pid pid, Uid caller) {
  Process* p = find_process(mid, pid);
  if (!p || p->status == ProcStatus::dead) return util::Err::esrch;
  if (p->uid != caller && caller != kSuperUser) return util::Err::eperm;
  p->stop_requested = false;
  p->stop_gate.wake_all(exec_);
  return {};
}

util::SysResult<void> World::proc_kill(MachineId mid, Pid pid, Uid caller) {
  Process* p = find_process(mid, pid);
  if (!p) return util::Err::esrch;
  if (p->uid != caller && caller != kSuperUser) return util::Err::eperm;
  if (p->status == ProcStatus::dead) return {};
  p->stop_requested = false;  // a stopped process must unwind, not sleep
  exec_.abort_task(p->task);
  return {};
}

void World::install_faults(const net::FaultPlan& plan) {
  if (plan.empty()) return;
  net::FaultHooks hooks;
  hooks.machine_id = [this](const std::string& name) {
    return hosts_.machine_of(name);
  };
  hooks.crash_machine = [this](const std::string& name) {
    if (auto id = hosts_.machine_of(name)) crash_machine(*id);
  };
  hooks.restart_machine = [this](const std::string& name) {
    if (auto id = hosts_.machine_of(name)) restart_machine(*id);
  };
  hooks.kill_process = [this](const std::string& name, std::int32_t pid) {
    if (auto id = hosts_.machine_of(name)) (void)proc_kill(*id, pid, kSuperUser);
  };
  hooks.reset_streams = [this](const std::string& a, const std::string& b) {
    auto ma = hosts_.machine_of(a), mb = hosts_.machine_of(b);
    if (ma && mb) (void)reset_streams_between(*ma, *mb);
  };
  injector_ = std::make_unique<net::FaultInjector>(exec_, fabric_, plan,
                                                   std::move(hooks), &obs_);
  injector_->arm();
}

void World::crash_machine(MachineId id) {
  Machine& m = machine(id);
  if (!m.up) return;
  m.up = false;
  machines_down_->add(1);
  // Kill every live process. The abort unwinds through finalize_exit, so
  // each one flushes its pending meter batch on the way out — the fabric
  // carries whatever it still can. Descriptor teardown releases every
  // socket (and with them the machine's port bindings).
  for (auto& [pid, p] : m.procs) {
    if (p->status != ProcStatus::dead && p->task != sim::kNoTask &&
        !exec_.task_finished(p->task)) {
      p->stop_requested = false;
      exec_.abort_task(p->task);
    }
  }
}

void World::restart_machine(MachineId id) {
  Machine& m = machine(id);
  if (m.up) return;
  m.up = true;
  machines_down_->sub(1);
  for (auto& [mid, fn] : boot_programs_) {
    if (mid == id) fn(*this);
  }
}

void World::add_boot_program(MachineId m, std::function<void(World&)> fn) {
  boot_programs_.emplace_back(m, std::move(fn));
}

std::size_t World::reset_streams_between(MachineId a, MachineId b) {
  std::vector<std::pair<SocketId, SocketId>> conns;
  for (auto& [id, sp] : sockets_) {
    Socket& s = *sp;
    if (s.sstate != Socket::StreamState::connected || s.peer == 0) continue;
    if (id > s.peer) continue;  // handle each connection once
    Socket* peer = find_socket(s.peer);
    if (!peer) continue;
    const bool spans = (s.machine == a && peer->machine == b) ||
                       (s.machine == b && peer->machine == a);
    if (spans) conns.emplace_back(id, s.peer);
  }
  // sockets_ is hash-ordered; reset in id order so the EOF events are
  // scheduled deterministically.
  std::sort(conns.begin(), conns.end());
  for (auto [x, y] : conns) {
    // Close both endpoints: each side sees EOF after any data already in
    // flight; meter connections degrade at their next flush.
    if (Socket* sy = find_socket(y)) close_stream(*sy);
    if (Socket* sx = find_socket(x)) close_stream(*sx);
  }
  return conns.size();
}

void World::finalize_exit(std::shared_ptr<Process> p, int status,
                          bool was_killed) {
  if (p->status == ProcStatus::dead) return;

  // §3.2: "As part of process termination, any unsent messages are
  // forwarded to the filter." The termproc event itself is recorded first.
  meter_emit(*this, *p,
             MeterEventDraft{meter::M_TERMPROC,
                             meter::MeterTermProc{p->pid, p->pc,
                                                  was_killed ? -1 : status}});
  meter_flush(*this, *p);
  if (p->meter_sock != 0) {
    socket_unref(p->meter_sock);
    p->meter_sock = 0;
  }

  // Close every descriptor (socket refs drop; peers see EOF).
  for (auto& [fd, d] : p->fds.entries()) {
    auto released = p->fds.release(fd);
    if (released) release_descriptor(*released);
  }

  p->status = ProcStatus::dead;
  p->exit_status = status;
  p->killed = was_killed;

  Machine& m = machine(p->machine);
  if (p->parent != 0) {
    push_child_change(m, p->parent,
                      ChildChange{p->pid,
                                  was_killed ? ChildEvent::killed
                                             : ChildEvent::exited,
                                  status});
  }
  for (auto& fn : exit_listeners_) fn(p->machine, p->pid, status, was_killed);
}

void World::push_child_change(Machine& m, Pid parent, ChildChange change) {
  auto it = m.procs.find(parent);
  if (it == m.procs.end() || it->second->status == ProcStatus::dead) return;
  it->second->child_changes.push_back(change);
  it->second->child_wait.wake_all(exec_);
}

void World::release_descriptor(Descriptor& d) {
  if (d.kind == Descriptor::Kind::socket) {
    socket_unref(d.sock);
  }
  // Files and pipes are shared_ptr-managed; dropping the descriptor is
  // enough.
  d = Descriptor::null_dev();
}

std::size_t World::live_processes() const {
  std::size_t n = 0;
  for (const auto& [id, m] : machines_) {
    for (const auto& [pid, p] : m->procs) {
      if (p->status == ProcStatus::alive) ++n;
    }
  }
  return n;
}

std::int64_t World::clock_skew_bound_us() const {
  const std::int64_t horizon = util::count_us(exec_.now());
  std::int64_t worst = 0, second = 0;
  for (const auto& [id, m] : machines_) {
    const std::int64_t err = m->clock.error_bound_us(horizon);
    if (err >= worst) {
      second = worst;
      worst = err;
    } else if (err > second) {
      second = err;
    }
  }
  return worst + second;
}

util::SysResult<std::size_t> World::copy_file(MachineId src_m,
                                              const std::string& src,
                                              MachineId dst_m,
                                              const std::string& dst, Uid uid) {
  Machine& sm = machine(src_m);
  auto file = sm.fs.open_read(src, uid);
  if (!file) return file.error();
  const FileData& f = **file;
  Machine& dm = machine(dst_m);
  if (!dm.accounts.count(uid) && uid != kSuperUser) return util::Err::eacces;
  auto out = dm.fs.open_write(dst, uid, /*truncate=*/true);
  if (!out) return out.error();
  (*out)->content = f.content;
  (*out)->program = f.program;  // executables stay executable when copied
  return f.content.size();
}

}  // namespace dpm::kernel
