#include "daemon/rpc_pipeline.h"

#include <algorithm>
#include <optional>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "obs/registry.h"

namespace dpm::daemon {

namespace {

using kernel::Fd;
using kernel::Sys;
using util::Err;

bool retryable(Err e) {
  return e == Err::etimedout || e == Err::econnrefused ||
         e == Err::econnreset || e == Err::epipe;
}

/// Nonce carried by a request (0: none — replies then match by connection
/// alone, which a fresh-socket-per-attempt pipeline already guarantees).
std::uint64_t request_nonce(const DaemonMsg& m) {
  if (const auto* c = std::get_if<CreateRequest>(&m)) return c->nonce;
  if (const auto* f = std::get_if<FilterRequest>(&m)) return f->nonce;
  if (const auto* b = std::get_if<BatchCreateRequest>(&m)) return b->nonce;
  if (const auto* p = std::get_if<BatchProcRequest>(&m)) return p->nonce;
  return 0;
}

/// Nonce echoed by a reply (0: the reply type carries none).
std::uint64_t reply_nonce(const DaemonMsg& m) {
  if (const auto* b = std::get_if<BatchCreateReply>(&m)) return b->nonce;
  if (const auto* p = std::get_if<BatchProcReply>(&m)) return p->nonce;
  return 0;
}

enum class St { idle, connecting, awaiting, backoff, done };

struct CallState {
  St st = St::idle;
  Fd fd = -1;
  int attempts = 0;            // attempts launched so far
  util::Duration pause{};      // next backoff pause (doubles per retry)
  util::TimePoint deadline{};  // current attempt's expiry
  util::TimePoint resume{};    // end of the current backoff
  util::Bytes buf;             // reply re-framing (one frame per exchange)
};

}  // namespace

std::size_t run_pipeline(Sys& sys, std::vector<PipelinedCall>& calls,
                         int window) {
  obs::Registry& reg = sys.world().obs();
  obs::Counter& retries = reg.counter("daemon.rpc_retries");
  obs::Counter& timeouts = reg.counter("daemon.rpc_timeouts");
  obs::Counter& failures = reg.counter("daemon.rpc_failures");
  obs::Counter& mismatches = reg.counter("daemon.rpc_nonce_mismatch");
  obs::Gauge& inflight = reg.gauge("shard.inflight");
  reg.counter("daemon.rpc_calls").add(calls.size());
  reg.counter("daemon.rpc_pipelined").add(calls.size());

  if (window < 1) window = 1;
  std::vector<CallState> st(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    st[i].pause = calls[i].opts.backoff;
  }

  std::size_t done = 0;
  std::size_t ok = 0;
  int active = 0;  // connecting + awaiting

  auto settle = [&](std::size_t i, util::SysResult<DaemonMsg> result) {
    CallState& c = st[i];
    if (c.fd >= 0) {
      (void)sys.close(c.fd);
      c.fd = -1;
    }
    c.st = St::done;
    if (result) ++ok;
    else failures.add(1);
    calls[i].reply = std::move(result);
    ++done;
  };

  // One failed attempt: close the socket, then either give up (attempt
  // cap, non-retryable error) or back off before the next fresh attempt.
  auto fail_attempt = [&](std::size_t i, Err e) {
    CallState& c = st[i];
    if (c.st == St::connecting || c.st == St::awaiting) {
      --active;
      inflight.sub(1);
    }
    if (c.fd >= 0) {
      (void)sys.close(c.fd);
      c.fd = -1;
    }
    if (e == Err::etimedout) timeouts.add(1);
    const int cap = std::max(1, calls[i].opts.max_attempts);
    if (!retryable(e) || c.attempts >= cap) {
      c.st = St::done;
      calls[i].reply = e;
      failures.add(1);
      ++done;
      return;
    }
    c.st = St::backoff;
    c.resume = sys.world().now() + c.pause;
    c.pause = std::min(c.pause + c.pause, calls[i].opts.backoff_max);
  };

  auto launch = [&](std::size_t i) {
    CallState& c = st[i];
    ++c.attempts;
    c.buf.clear();
    auto fd = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    if (!fd) {
      settle(i, fd.error());
      return;
    }
    c.fd = *fd;
    c.deadline = sys.world().now() + calls[i].opts.deadline;
    auto begun = sys.connect_begin(*fd, calls[i].to);
    if (!begun) {
      c.st = St::connecting;  // so fail_attempt rebalances active
      ++active;
      inflight.add(1);
      fail_attempt(i, begun.error());
      return;
    }
    c.st = St::connecting;
    ++active;
    inflight.add(1);
  };

  // A completed connect: ship the request; the exchange then awaits its
  // framed reply on the same connection.
  auto on_writable = [&](std::size_t i) {
    CallState& c = st[i];
    auto fin = sys.connect_finish(c.fd);
    if (!fin) {
      if (fin.error() == Err::ewouldblock) return;  // spurious; still in flight
      fail_attempt(i, fin.error());
      return;
    }
    auto sent = send_msg(sys, c.fd, calls[i].request);
    if (!sent) {
      fail_attempt(i, sent.error());
      return;
    }
    c.st = St::awaiting;
  };

  auto on_readable = [&](std::size_t i) {
    CallState& c = st[i];
    auto data = sys.recv(c.fd, 8192);
    if (!data) {
      fail_attempt(i, data.error());
      return;
    }
    if (data->empty()) {
      fail_attempt(i, Err::econnreset);  // daemon died mid-reply
      return;
    }
    c.buf.insert(c.buf.end(), data->begin(), data->end());
    if (c.buf.size() < 4) return;
    const std::uint32_t size = static_cast<std::uint32_t>(c.buf[0]) |
                               static_cast<std::uint32_t>(c.buf[1]) << 8 |
                               static_cast<std::uint32_t>(c.buf[2]) << 16 |
                               static_cast<std::uint32_t>(c.buf[3]) << 24;
    if (size < 8 || size > (1u << 20)) {
      fail_attempt(i, Err::einval);  // garbage frame: not worth a retry
      return;
    }
    if (c.buf.size() < size) return;  // reply still arriving
    util::Bytes wire(c.buf.begin(), c.buf.begin() + size);
    auto msg = parse(wire);
    if (!msg) {
      fail_attempt(i, Err::einval);
      return;
    }
    // A nonce-carrying reply must echo the request's nonce. A mismatch is
    // a stale or crossed exchange: retry on a fresh connection — the
    // daemon's replay cache makes the retry safe.
    const std::uint64_t want = request_nonce(calls[i].request);
    const std::uint64_t got = reply_nonce(*msg);
    if (want != 0 && got != 0 && want != got) {
      mismatches.add(1);
      fail_attempt(i, Err::econnreset);
      return;
    }
    --active;
    inflight.sub(1);
    settle(i, std::move(*msg));
  };

  while (done < calls.size()) {
    const util::TimePoint now = sys.world().now();

    // Fill the window: fresh calls first, then retries whose backoff ended.
    for (std::size_t i = 0; i < calls.size() && active < window; ++i) {
      if (st[i].st == St::idle) {
        launch(i);
      } else if (st[i].st == St::backoff && now >= st[i].resume) {
        retries.add(1);
        launch(i);
      }
    }
    if (done >= calls.size()) break;

    std::vector<Fd> read_fds;
    std::vector<Fd> write_fds;
    std::optional<util::TimePoint> wake;
    auto propose = [&wake](util::TimePoint t) {
      if (!wake || t < *wake) wake = t;
    };
    for (std::size_t i = 0; i < calls.size(); ++i) {
      switch (st[i].st) {
        case St::connecting:
          write_fds.push_back(st[i].fd);
          propose(st[i].deadline);
          break;
        case St::awaiting:
          read_fds.push_back(st[i].fd);
          propose(st[i].deadline);
          break;
        case St::backoff:
          propose(st[i].resume);
          break;
        default:
          break;
      }
    }
    std::optional<util::Duration> timeout;
    if (wake) timeout = *wake > now ? *wake - now : util::Duration{0};

    auto sel = sys.select(read_fds, write_fds, /*child_events=*/false,
                          timeout);
    if (!sel) break;  // the controller process is being torn down

    auto index_of = [&](Fd fd, St want) -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (st[i].st == want && st[i].fd == fd) return i;
      }
      return std::nullopt;
    };
    for (Fd fd : sel->writable) {
      if (auto i = index_of(fd, St::connecting)) on_writable(*i);
    }
    for (Fd fd : sel->readable) {
      if (auto i = index_of(fd, St::awaiting)) on_readable(*i);
    }

    // Deadline sweep: any attempt (connecting or awaiting) past its bound
    // fails with etimedout, exactly as the serial hardened rpc_call does.
    const util::TimePoint after = sys.world().now();
    for (std::size_t i = 0; i < calls.size(); ++i) {
      if ((st[i].st == St::connecting || st[i].st == St::awaiting) &&
          after >= st[i].deadline) {
        fail_attempt(i, Err::etimedout);
      }
    }
  }

  // Torn down mid-run (select failure): account the unfinished calls.
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (st[i].st != St::done) {
      if (st[i].st == St::connecting || st[i].st == St::awaiting) {
        inflight.sub(1);
      }
      if (st[i].fd >= 0) (void)sys.close(st[i].fd);
      calls[i].reply = Err::etimedout;
      failures.add(1);
    }
  }
  return ok;
}

}  // namespace dpm::daemon
