// Randomized invariants of online predicate detection, on the same
// multi-connection workloads the live-equivalence property uses:
//
//   * determinism — the same trace fed twice produces the identical
//     verdict sequence (kind, occurrence, cut, witness indices);
//   * chunking invariance — per-event feeding and TraceTailer feeding at
//     random chunk sizes produce the identical verdict sequence;
//   * definitely ⊆ possibly — every definite verdict upgrades a possibly
//     verdict that was already emitted for the same witness occurrence.
//
// Rides its own target so the `predicates` label can gate it:
// scripts/check_predicates.sh replays these seeds with `ctest -L
// predicates` next to the bench smoke.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/analysis_testing.h"
#include "analysis/live/aggregator.h"
#include "analysis/predicates/detector.h"
#include "util/rng.h"

namespace dpm::analysis::pred {
namespace {

using dpm::analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;
using meter::MeterTermProc;

const filter::Descriptions& desc() {
  static const filter::Descriptions d =
      *filter::Descriptions::parse(filter::default_descriptions_text());
  return d;
}

/// The live-equivalence property's workload shape: random machine pairs,
/// per-connection message counts, per-machine clock offsets, and a random
/// per-process-ordered interleaving into the log.
std::vector<std::pair<Stamp, meter::MeterBody>> random_workload(
    util::Rng& rng, int nconns) {
  std::vector<std::vector<std::pair<Stamp, meter::MeterBody>>> streams;
  std::int64_t offsets[8];
  for (auto& o : offsets) o = rng.uniform(-50000, 50000);

  for (int c = 0; c < nconns; ++c) {
    const auto ma = static_cast<std::uint16_t>(rng.uniform(0, 7));
    const auto mb = static_cast<std::uint16_t>(rng.uniform(0, 7));
    const std::int32_t pa = 100 + 2 * c, pb = 101 + 2 * c;
    const auto sa = static_cast<std::uint64_t>(10 + 2 * c);
    const auto sb = static_cast<std::uint64_t>(11 + 2 * c);
    const std::string na = "n" + std::to_string(2 * c);
    const std::string nb = "n" + std::to_string(2 * c + 1);

    std::vector<std::pair<Stamp, meter::MeterBody>> a_events, b_events;
    std::int64_t t = rng.uniform(0, 5000);
    a_events.push_back(
        {Stamp{ma, t + offsets[ma], 0}, MeterConnect{pa, 0, sa, na, nb}});
    b_events.push_back({Stamp{mb, t + 200 + offsets[mb], 0},
                        MeterAccept{pb, 0, 20, sb, nb, na}});
    const int msgs = static_cast<int>(rng.uniform(1, 12));
    for (int i = 0; i < msgs; ++i) {
      t += rng.uniform(100, 2000);
      a_events.push_back(
          {Stamp{ma, t + offsets[ma], 0}, MeterSend{pa, 0, sa, 32, ""}});
      b_events.push_back({Stamp{mb, t + rng.uniform(200, 900) + offsets[mb], 0},
                          MeterRecv{pb, 0, sb, 32, ""}});
    }
    a_events.push_back(
        {Stamp{ma, t + 3000 + offsets[ma], 0}, MeterTermProc{pa, 0, 0}});
    b_events.push_back(
        {Stamp{mb, t + 3200 + offsets[mb], 0}, MeterTermProc{pb, 0, 0}});
    streams.push_back(std::move(a_events));
    streams.push_back(std::move(b_events));
  }

  std::vector<std::pair<Stamp, meter::MeterBody>> out;
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (;;) {
    std::vector<std::size_t> ready;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] < streams[s].size()) ready.push_back(s);
    }
    if (ready.empty()) break;
    const std::size_t pick = ready[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(ready.size()) - 1))];
    out.push_back(streams[pick][cursor[pick]++]);
  }
  return out;
}

/// Wildcard specs so instantiations grow with whatever processes the
/// random workload produced; send/recv states flip constantly, which is
/// the stress the interval queues need.
const char* kSpecs[] = {
    "xfer: @* type=send & @* type=recv",
    "busy: @* type=send",
};

std::string verdict_text(const PredicateDetector::Verdict& v) {
  std::string s = v.predicate;
  s += v.kind == PredicateDetector::VerdictKind::definitely ? "|D|" : "|P|";
  s += std::to_string(v.occurrence);
  s += "|" + std::to_string(v.cut_lo_us) + ".." + std::to_string(v.cut_hi_us);
  for (const auto& w : v.witness) {
    s += "|" + proc_key_text(w.proc) + "@" + std::to_string(w.lo_index) +
         "-" + std::to_string(w.hi_index);
  }
  return s;
}

/// Runs a fresh detector over `text` (per-event when chunk==0, else via a
/// TraceTailer at that chunk size) and serializes every verdict.
std::vector<std::string> run_once(const std::string& text, std::int64_t eps,
                                  std::size_t chunk,
                                  PredicateDetector::Stats* stats = nullptr) {
  live::LiveAnalysis live;
  PredicateDetector det(desc(), DetectorConfig{.epsilon_us = eps});
  live.add_observer(&det);
  std::string err;
  for (const char* spec : kSpecs) {
    EXPECT_TRUE(det.add_predicate(spec, &err)) << err;
  }
  if (chunk == 0) {
    const Trace tr = read_trace(text);
    for (const Event& e : tr.events) live.add_event(e);
  } else {
    live::TraceTailer tailer(live);
    for (std::size_t at = 0; at < text.size(); at += chunk) {
      tailer.feed(std::string_view(text).substr(at, chunk));
    }
    tailer.finish();
  }
  det.finish();
  if (stats != nullptr) *stats = det.stats();
  std::vector<std::string> out;
  for (const auto& v : det.take_verdicts()) out.push_back(verdict_text(v));
  return out;
}

class PredicateProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(PredicateProperty, VerdictsDeterministicAndChunkingInvariant) {
  util::Rng rng(GetParam() * 6271);
  const auto events =
      random_workload(rng, static_cast<int>(rng.uniform(2, 8)));
  const std::string text = dpm::analysis_testing::trace_text(events);
  const auto eps = rng.uniform(100, 20000);

  PredicateDetector::Stats st;
  const auto baseline = run_once(text, eps, /*chunk=*/0, &st);
  EXPECT_GT(st.verdicts_possibly, 0u) << "workload produced no verdicts";

  // Same trace, same feeding → same verdicts.
  EXPECT_EQ(run_once(text, eps, /*chunk=*/0), baseline);

  // Same trace in arbitrary chunkings (including byte-at-a-time and
  // bigger-than-trace) → same verdicts.
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7},
        static_cast<std::size_t>(rng.uniform(2, 512)),
        text.size() + 1}) {
    EXPECT_EQ(run_once(text, eps, chunk), baseline) << "chunk=" << chunk;
  }
}

TEST_P(PredicateProperty, DefinitelyIsSubsetOfPossibly) {
  util::Rng rng(GetParam() * 15121);
  const auto events =
      random_workload(rng, static_cast<int>(rng.uniform(2, 8)));
  const std::string text = dpm::analysis_testing::trace_text(events);

  live::LiveAnalysis live;
  PredicateDetector det(
      desc(),
      DetectorConfig{.epsilon_us = rng.uniform(100, 20000)});
  live.add_observer(&det);
  std::string err;
  for (const char* spec : kSpecs) {
    ASSERT_TRUE(det.add_predicate(spec, &err)) << err;
  }
  const Trace tr = read_trace(text);
  for (const Event& e : tr.events) live.add_event(e);
  det.finish();

  // Every definite verdict must upgrade an earlier possibly verdict with
  // the same (predicate, occurrence) — never appear out of thin air.
  std::map<std::pair<std::string, std::uint64_t>, int> possibly_seen;
  for (const auto& v : det.verdicts()) {
    const auto key = std::make_pair(v.predicate, v.occurrence);
    if (v.kind == PredicateDetector::VerdictKind::possibly) {
      ++possibly_seen[key];
    } else {
      ASSERT_EQ(possibly_seen.count(key), 1u)
          << "definitely without a prior possibly: " << verdict_text(v);
    }
  }
  const auto st = det.stats();
  EXPECT_LE(st.verdicts_definitely, st.verdicts_possibly);
}

}  // namespace
}  // namespace dpm::analysis::pred
