#include "kernel/process.h"

namespace dpm::kernel {

const char* child_event_name(ChildEvent e) {
  switch (e) {
    case ChildEvent::stopped: return "stopped";
    case ChildEvent::continued: return "continued";
    case ChildEvent::exited: return "exited";
    case ChildEvent::killed: return "killed";
    case ChildEvent::meter_lost: return "meter_lost";
  }
  return "?";
}

}  // namespace dpm::kernel
