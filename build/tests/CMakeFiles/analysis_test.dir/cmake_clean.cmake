file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/alignment_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/alignment_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/comm_stats_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/comm_stats_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/connection_table_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/connection_table_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/diagnose_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/diagnose_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/ordering_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/ordering_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/parallelism_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/parallelism_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/structure_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/structure_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/timeline_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/timeline_test.cc.o.d"
  "analysis_test"
  "analysis_test.pdb"
  "analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
