// Pipelined daemon RPC (the sharded controller's transport).
//
// A serial controller pays one round trip per daemon even when the calls
// are independent; at cluster scale the job-control wall time is the sum
// of every daemon's latency. run_pipeline keeps a bounded window of RPC
// exchanges in flight from one process — non-blocking connects
// (connect_begin / connect_finish), completion discovered through
// select()'s write set, replies re-framed per call and matched to their
// request by nonce — so wall time collapses toward the slowest single
// exchange. Per-call deadline/retry/backoff semantics are exactly those
// of the hardened rpc_call (RpcOptions): every retry runs on a fresh
// connection, and requests that create state must carry a nonce so the
// daemon's replay cache absorbs duplicates.
#pragma once

#include <cstddef>
#include <vector>

#include "daemon/protocol.h"

namespace dpm::daemon {

/// One call in a pipeline: where to send what, with the hardened-RPC
/// policy knobs. `reply` holds the outcome after run_pipeline returns —
/// the daemon's reply, or the final attempt's error.
struct PipelinedCall {
  net::SockAddr to;
  DaemonMsg request;
  RpcOptions opts;
  util::SysResult<DaemonMsg> reply = util::Err::etimedout;
};

/// Drives every call to completion with at most `window` exchanges in
/// flight; returns how many calls succeeded. Counts each call under the
/// daemon.rpc_* instruments like rpc_call, plus daemon.rpc_pipelined and
/// the shard.inflight gauge (high-water = peak window occupancy).
std::size_t run_pipeline(kernel::Sys& sys, std::vector<PipelinedCall>& calls,
                         int window = 8);

}  // namespace dpm::daemon
