#include "analysis/predicates/service.h"

#include "filter/filter_program.h"

namespace dpm::analysis::pred {

namespace {

/// Keeps the bundle alive alongside the sink the filter layer holds.
class BundleSink : public filter::RecordSink {
 public:
  explicit BundleSink(std::shared_ptr<LivePredicates> bundle)
      : bundle_(std::move(bundle)), sink_(bundle_->live) {}

  void on_record(const filter::Record& rec) override { sink_.on_record(rec); }

 private:
  std::shared_ptr<LivePredicates> bundle_;
  live::LiveRecordSink sink_;
};

}  // namespace

std::shared_ptr<LivePredicates> install_live_predicates(
    kernel::World& world, const filter::Descriptions& desc,
    live::LiveConfig live_cfg, DetectorConfig det_cfg) {
  auto bundle = std::make_shared<LivePredicates>(desc, live_cfg, det_cfg,
                                                 &world.obs());
  filter::install_live_sink(world, std::make_shared<BundleSink>(bundle));
  world.set_service(kPredicateService, bundle);
  return bundle;
}

std::shared_ptr<LivePredicates> predicate_service(kernel::World& world) {
  return std::static_pointer_cast<LivePredicates>(
      world.service(kPredicateService));
}

const filter::Descriptions& standard_descriptions() {
  static const filter::Descriptions desc = [] {
    auto parsed = filter::Descriptions::parse(
        filter::default_descriptions_text());
    return parsed ? std::move(*parsed) : filter::Descriptions{};
  }();
  return desc;
}

}  // namespace dpm::analysis::pred
