// Resource limits and edge semantics of the substrate.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/metermsgs.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

using util::Err;

class LimitsTest : public ::testing::Test {
 protected:
  LimitsTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
  }
  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(LimitsTest, DescriptorTableExhaustion) {
  Err result = Err::ok;
  std::size_t opened = 0;
  (void)world_.spawn(machines_[0], "hog", 100, [&](Sys& sys) {
    for (;;) {
      auto fd = sys.socket(SockDomain::internet, SockType::dgram);
      if (!fd.ok()) {
        result = fd.error();
        break;
      }
      ++opened;
    }
    // Closing one slot makes creation possible again.
    ASSERT_TRUE(sys.close(3).ok());
    EXPECT_TRUE(sys.socket(SockDomain::internet, SockType::dgram).ok());
  });
  world_.run();
  EXPECT_EQ(result, Err::emfile);
  // 64 slots minus 3 stdio.
  EXPECT_EQ(opened, world_.config().max_descriptors - 3);
}

TEST_F(LimitsTest, DatagramQueueOverflowDropsSilently) {
  const std::size_t qmax = world_.config().dgram_queue_max;
  std::size_t received = 0;
  (void)world_.spawn(machines_[0], "sink", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 6100);
    sys.sleep(util::msec(200));  // let the flood overflow the queue
    for (;;) {
      auto sel = sys.select({*fd}, false, util::msec(10));
      if (!sel.ok() || sel->timed_out) break;
      if (sys.recvfrom(*fd).ok()) ++received;
    }
  });
  (void)world_.spawn(machines_[1], "flood", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 6100);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    util::Bytes m(16, 1);
    for (std::size_t i = 0; i < qmax * 3; ++i) {
      ASSERT_TRUE(sys.sendto(*fd, m, *addr).ok());  // sender never errors
    }
  });
  world_.run();
  EXPECT_EQ(received, qmax);  // the excess was dropped at the full queue
}

TEST_F(LimitsTest, OversizeDatagramIsEmsgsize) {
  Err result = Err::ok;
  (void)world_.spawn(machines_[0], "big", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    auto addr = sys.resolve("green", 6101);
    util::Bytes huge(64 * 1024, 0);
    result = sys.sendto(*fd, huge, *addr).error();
  });
  world_.run();
  EXPECT_EQ(result, Err::emsgsize);
}

TEST_F(LimitsTest, DatagramToUnboundPortVanishes) {
  bool sent_ok = false;
  (void)world_.spawn(machines_[0], "lost", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    auto addr = sys.resolve("green", 9999);  // nobody bound
    sent_ok = sys.sendto(*fd, util::to_bytes("void"), *addr).ok();
  });
  world_.run();
  EXPECT_TRUE(sent_ok);  // UDP semantics: the sender never learns
}

TEST_F(LimitsTest, UnixNamesAreMachineLocal) {
  // The same path binds independently on two machines; a connect resolves
  // only on the caller's machine.
  bool red_accepted = false;
  (void)world_.spawn(machines_[0], "red-srv", 100, [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::unix_path, SockType::stream);
    ASSERT_TRUE(sys.bind(*ls, net::SockAddr::unix_name("/tmp/s")).ok());
    ASSERT_TRUE(sys.listen(*ls, 1).ok());
    red_accepted = sys.accept(*ls).ok();
  });
  bool green_bound = false;
  (void)world_.spawn(machines_[1], "green-srv", 100, [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::unix_path, SockType::stream);
    green_bound = sys.bind(*ls, net::SockAddr::unix_name("/tmp/s")).ok();
    sys.sleep(util::msec(50));
  });
  (void)world_.spawn(machines_[0], "red-cli", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto fd = sys.socket(SockDomain::unix_path, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, net::SockAddr::unix_name("/tmp/s")).ok());
  });
  world_.run();
  EXPECT_TRUE(green_bound);   // no cross-machine name conflict
  EXPECT_TRUE(red_accepted);  // the local connect reached the local server
}

TEST_F(LimitsTest, DoubleBindIsEinval) {
  Err result = Err::ok;
  (void)world_.spawn(machines_[0], "binder", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    ASSERT_TRUE(sys.bind_port(*fd, 6102).ok());
    result = sys.bind_port(*fd, 6103).error();
  });
  world_.run();
  EXPECT_EQ(result, Err::einval);
}

TEST_F(LimitsTest, StopWhileBlockedInAcceptThenContinue) {
  bool accepted = false;
  Pid server_pid = 0;
  {
    auto r = world_.spawn(machines_[0], "server", 100, [&](Sys& sys) {
      auto ls = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.bind_port(*ls, 6104);
      (void)sys.listen(*ls, 1);
      accepted = sys.accept(*ls).ok();
    });
    ASSERT_TRUE(r.ok());
    server_pid = *r;
  }
  world_.run_for(util::msec(10));
  // Stop it while it blocks in accept; then a client connects; then
  // continue: the accept must complete.
  ASSERT_TRUE(world_.proc_stop(machines_[0], server_pid, 100).ok());
  world_.run_for(util::msec(10));
  (void)world_.spawn(machines_[1], "client", 100, [&](Sys& sys) {
    auto addr = sys.resolve("red", 6104);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
    sys.sleep(util::msec(500));
  });
  world_.run_for(util::msec(100));
  EXPECT_FALSE(accepted);  // still stopped
  ASSERT_TRUE(world_.proc_continue(machines_[0], server_pid, 100).ok());
  world_.run();
  EXPECT_TRUE(accepted);
}

TEST_F(LimitsTest, PcTagFlowsIntoMeterRecords) {
  // Fig 4.1: the message body includes "the address of the instruction
  // that called the system routine"; apps tag call sites with set_pc.
  util::Bytes collected;
  (void)world_.spawn(machines_[1], "sink", 100, [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 4500);
    (void)sys.listen(*ls, 2);
    auto conn = sys.accept(*ls);
    for (;;) {
      auto data = sys.recv(*conn, 65536);
      if (!data.ok() || data->empty()) break;
      collected.insert(collected.end(), data->begin(), data->end());
    }
  });
  (void)world_.spawn(machines_[0], "app", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("green", 4500);
    auto ms = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*ms, *addr).ok());
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SOCKET), *ms)
                    .ok());
    sys.set_pc(0xbeef);
    (void)sys.socket(SockDomain::internet, SockType::dgram);
    sys.set_pc(0xcafe);
    (void)sys.socket(SockDomain::internet, SockType::dgram);
  });
  world_.run();
  std::vector<std::uint32_t> pcs;
  std::size_t pos = 0;
  while (auto m = meter::MeterMsg::parse_stream(collected, pos)) {
    pcs.push_back(std::get<meter::MeterSockCrt>(m->body).pc);
  }
  ASSERT_EQ(pcs.size(), 2u);
  EXPECT_EQ(pcs[0], 0xbeefu);
  EXPECT_EQ(pcs[1], 0xcafeu);
}

}  // namespace
}  // namespace dpm::kernel
