// Meter flags — the reproduction of the paper's <meterflags.h>.
//
// The flags select which system calls generate meter events for a process
// (§3.2, §4.1, setmeter(2) man page in Appendix C). They form a 32-bit
// mask stored in the process-table entry. M_IMMEDIATE is not an event: it
// requests that meter messages be sent immediately instead of buffered.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dpm::meter {

using Flags = std::uint32_t;

constexpr Flags M_SEND = 1u << 0;         // process sends a message
constexpr Flags M_RECEIVECALL = 1u << 1;  // process makes a call to receive
constexpr Flags M_RECEIVE = 1u << 2;      // process receives a message
constexpr Flags M_SOCKET = 1u << 3;       // process creates a socket
constexpr Flags M_DUP = 1u << 4;          // process duplicates a descriptor
constexpr Flags M_DESTSOCKET = 1u << 5;   // process closes a socket
constexpr Flags M_FORK = 1u << 6;         // process forks
constexpr Flags M_ACCEPT = 1u << 7;       // process accepts a connection
constexpr Flags M_CONNECT = 1u << 8;      // process initiates a connection
constexpr Flags M_TERMPROC = 1u << 9;     // process terminates

constexpr Flags M_ALL = M_SEND | M_RECEIVECALL | M_RECEIVE | M_SOCKET | M_DUP |
                        M_DESTSOCKET | M_FORK | M_ACCEPT | M_CONNECT |
                        M_TERMPROC;

/// Send meter messages immediately rather than buffering them (§4.1).
constexpr Flags M_IMMEDIATE = 1u << 31;

/// Sentinels for setmeter() arguments (Appendix C: the special value -1).
constexpr std::int32_t SETMETER_SELF = -1;        // proc: the calling process
constexpr std::int32_t SETMETER_NO_CHANGE = -1;   // flags/socket: keep current
constexpr std::int32_t SETMETER_NONE = -2;        // flags: clear; socket: close

/// Parses a user-facing flag name as used by the controller's setflags
/// command ("send", "receivecall", "receive", "socket", "dup",
/// "destsocket", "fork", "accept", "connect", "termproc", "all",
/// "immediate"). Returns nullopt for unknown names.
std::optional<Flags> flag_by_name(std::string_view name);

/// Renders a mask as the controller displays it, e.g. "send receive fork".
std::string flags_to_string(Flags flags);

/// All user-facing flag names, in display order.
const std::vector<std::string>& flag_names();

}  // namespace dpm::meter
