# Empty dependencies file for dpm_meter.
# This may be replaced when dependencies are built.
