#include "control/controller.h"

#include <algorithm>

#include "analysis/predicates/service.h"
#include "daemon/protocol.h"
#include "daemon/rpc_pipeline.h"
#include "filter/trace.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dpm::control {

namespace {

using daemon::AcquireRequest;
using daemon::BatchCreateReply;
using daemon::BatchCreateRequest;
using daemon::BatchProcReply;
using daemon::BatchProcRequest;
using daemon::CreateReply;
using daemon::CreateRequest;
using daemon::DaemonMsg;
using daemon::FilterReply;
using daemon::FilterRequest;
using daemon::IoNote;
using daemon::MsgType;
using daemon::ProcRequest;
using daemon::SetFlagsRequest;
using daemon::SimpleReply;
using daemon::StateNote;
using kernel::Fd;
using kernel::Sys;
using util::Err;

std::string basename_of(const std::string& path) {
  auto pos = path.rfind('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

/// Extracts the status of a daemon reply regardless of its exact type.
std::int32_t reply_status(const DaemonMsg& m) {
  if (const auto* s = std::get_if<SimpleReply>(&m)) return s->status;
  if (const auto* c = std::get_if<CreateReply>(&m)) return c->status;
  if (const auto* f = std::get_if<FilterReply>(&m)) return f->status;
  return static_cast<std::int32_t>(Err::einval);
}

std::string err_text(std::int32_t status) {
  return std::string(util::err_message(static_cast<Err>(status)));
}

}  // namespace

Controller::Controller(Sys& sys) : sys_(sys) {}

std::uint64_t Controller::next_nonce() {
  return (static_cast<std::uint64_t>(sys_.getpid()) << 32) | ++nonce_seq_;
}

util::SysResult<daemon::DaemonMsg> Controller::daemon_rpc(
    const std::string& machine, const net::SockAddr& addr,
    const daemon::DaemonMsg& req) {
  auto hit = machine_health_.find(machine);
  if (hit != machine_health_.end() && hit->second.down) {
    // Fail fast: no point burning a full deadline+retry budget per
    // command against a machine already known down. `reconcile` re-probes.
    return Err::etimedout;
  }
  auto reply = daemon::rpc_call(sys_, addr, req, daemon::RpcOptions{});
  if (!reply) note_rpc_failure(machine, reply.error());
  return reply;
}

void Controller::note_rpc_failure(const std::string& machine, Err e) {
  if (e == Err::etimedout || e == Err::econnrefused || e == Err::econnreset ||
      e == Err::epipe) {
    MachineHealth& h = machine_health_[machine];
    if (!h.down) {
      h.down = true;
      h.reason = std::string(util::err_name(e));
      emit(util::strprintf("machine '%s' marked down: %s\n", machine.c_str(),
                           h.reason.c_str()));
    }
  }
}

std::vector<util::SysResult<DaemonMsg>> Controller::multi_rpc(
    std::vector<MultiCall>& calls) {
  std::vector<util::SysResult<DaemonMsg>> out(
      calls.size(), util::SysResult<DaemonMsg>{Err::etimedout});
  if (!batched_) {
    for (std::size_t i = 0; i < calls.size(); ++i) {
      out[i] = daemon_rpc(calls[i].machine, calls[i].addr, calls[i].req);
    }
    return out;
  }
  // Pipelined path: everything not already marked down goes in flight at
  // once (bounded by window_); replies are matched by nonce.
  std::vector<daemon::PipelinedCall> pipe;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    auto hit = machine_health_.find(calls[i].machine);
    if (hit != machine_health_.end() && hit->second.down) continue;
    daemon::PipelinedCall c;
    c.to = calls[i].addr;
    c.request = calls[i].req;
    c.opts = calls[i].opts;
    pipe.push_back(std::move(c));
    index.push_back(i);
  }
  daemon::run_pipeline(sys_, pipe, window_);
  for (std::size_t j = 0; j < pipe.size(); ++j) {
    if (!pipe[j].reply) {
      note_rpc_failure(calls[index[j]].machine, pipe[j].reply.error());
    }
    out[index[j]] = std::move(pipe[j].reply);
  }
  return out;
}

std::pair<std::string, net::Port> Controller::meter_target(
    const FilterRec& filt, const std::string& machine) {
  auto it = filt.locals.find(machine);
  if (it != filt.locals.end()) return {machine, it->second.meter_port};
  return {filt.machine, filt.meter_port};
}

std::vector<std::int32_t> Controller::batch_proc_op(
    const std::vector<ProcEntry*>& procs, MsgType what) {
  std::vector<std::int32_t> statuses(
      procs.size(), static_cast<std::int32_t>(Err::etimedout));
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    groups[procs[i]->machine].push_back(i);
  }
  std::vector<MultiCall> calls;
  std::vector<std::vector<std::size_t>> order;
  for (auto& [m, idx] : groups) {
    auto addr = daemon_addr(m);
    if (!addr) continue;
    BatchProcRequest req;
    req.what = what;
    req.uid = sys_.getuid();
    req.nonce = next_nonce();
    for (std::size_t i : idx) req.pids.push_back(procs[i]->pid);
    MultiCall c;
    c.machine = m;
    c.addr = *addr;
    c.req = std::move(req);
    c.opts.deadline = util::msec(250 + 2 * static_cast<long long>(idx.size()));
    calls.push_back(std::move(c));
    order.push_back(idx);
  }
  auto replies = multi_rpc(calls);
  for (std::size_t j = 0; j < replies.size(); ++j) {
    const auto* br =
        replies[j] ? std::get_if<BatchProcReply>(&*replies[j]) : nullptr;
    for (std::size_t k = 0; k < order[j].size(); ++k) {
      if (br && k < br->statuses.size()) {
        statuses[order[j][k]] = br->statuses[k];
      } else if (!replies[j]) {
        statuses[order[j][k]] = static_cast<std::int32_t>(replies[j].error());
      }
    }
  }
  return statuses;
}

void Controller::emit(const std::string& text) {
  if (sink_fd_ >= 0) {
    (void)sys_.write(sink_fd_, text);
  } else {
    (void)sys_.print(text);
  }
}

void Controller::prompt() { emit("<Control> "); }

std::optional<net::SockAddr> Controller::daemon_addr(
    const std::string& machine) {
  return sys_.resolve(machine, daemon::kDaemonPort);
}

bool Controller::stage_file(const std::string& machine,
                            const std::string& path) {
  if (machine == sys_.hostname()) return true;
  // §3.5.3: no remote file system in 4.2BSD — copy the file with rcp. If
  // the file is not present locally we proceed: it may already exist on
  // the remote machine (the daemon reports an error if not).
  auto probe = sys_.open(path, Sys::OpenMode::read);
  if (!probe) return true;
  (void)sys_.close(*probe);
  auto r = sys_.rcp(sys_.hostname(), path, machine, path);
  if (!r && r.error() != Err::eacces) {
    // eacces means a copy of the file is already installed there under
    // another account (the standard files are); anything else is a real
    // staging failure worth reporting — but the daemon still gets to try.
    emit(util::strprintf("warning: cannot copy '%s' to '%s': %s\n",
                         path.c_str(), machine.c_str(),
                         err_text(static_cast<std::int32_t>(r.error())).c_str()));
  }
  return true;
}

void Controller::run() {
  // The notification socket: daemons connect here to report state changes
  // (§3.5.1's inverted exchange).
  auto ns = sys_.socket(kernel::SockDomain::internet, kernel::SockType::stream);
  if (!ns || !sys_.bind_port(*ns, 0) || !sys_.listen(*ns, 64)) {
    (void)sys_.print("controller: cannot create notification socket\n");
    sys_.exit(1);
  }
  notif_sock_ = *ns;
  auto bound = sys_.getsockname(*ns);
  control_port_ = bound ? bound->port : 0;

  for (;;) {
    prompt_pending_ = true;
    auto line = next_command_line();
    if (!line) {
      // stdin EOF behaves like an unconditional die (^D, §4.3).
      remove_filters();
      break;
    }
    if (!execute(*line)) break;
  }
  sys_.exit(0);
}

std::optional<std::string> Controller::next_command_line() {
  for (;;) {
    // Script input (source) takes precedence; notifications are polled
    // between script commands.
    if (!source_stack_.empty()) {
      poll_notifications(/*block_until_input=*/false);
      auto& top = source_stack_.back();
      if (top.empty()) {
        source_stack_.pop_back();
        continue;
      }
      std::string line = std::move(top.front());
      top.pop_front();
      if (prompt_pending_) {
        prompt();
        prompt_pending_ = false;
      }
      emit(line + "\n");  // echo script commands into the transcript
      return line;
    }

    if (prompt_pending_) {
      prompt();
      prompt_pending_ = false;
    }
    poll_notifications(/*block_until_input=*/true);
    auto line = sys_.read_line();
    if (!line) return std::nullopt;  // error: treat as EOF
    if (!line->has_value()) return std::nullopt;
    return **line;
  }
}

void Controller::poll_notifications(bool block_until_input) {
  for (;;) {
    std::optional<util::Duration> timeout;
    if (!block_until_input) timeout = util::Duration{0};
    auto sel = sys_.select({0, notif_sock_}, /*child_events=*/false, timeout);
    if (!sel) return;
    bool input_ready = false;
    bool note_ready = false;
    for (Fd fd : sel->readable) {
      if (fd == 0) input_ready = true;
      if (fd == notif_sock_) note_ready = true;
    }
    if (note_ready) {
      auto conn = sys_.accept(notif_sock_);
      if (conn) {
        handle_notification(*conn);
        (void)sys_.close(*conn);
      }
    }
    if (input_ready) return;
    if (!block_until_input && !note_ready) return;
  }
}

void Controller::handle_notification(Fd conn) {
  // Bounded read: a daemon that died after connecting (crash mid-note)
  // must not park the controller's command loop forever.
  auto msg = daemon::recv_msg(sys_, conn, util::msec(500));
  if (!msg) return;

  if (const auto* note = std::get_if<StateNote>(&*msg)) {
    const auto event = static_cast<kernel::ChildEvent>(note->event);
    // Is it a process of some job?
    for (auto& [jname, job] : jobs_) {
      ProcEntry* p = job.find_pid(note->machine, note->pid);
      if (!p) continue;
      switch (event) {
        case kernel::ChildEvent::exited:
        case kernel::ChildEvent::killed:
          if (p->state != ProcState::killed) {
            p->state = ProcState::killed;
            emit(util::strprintf(
                "DONE: process %s in job '%s' terminated: reason: %s\n",
                p->name.c_str(), jname.c_str(),
                event == kernel::ChildEvent::exited ? "normal" : "killed"));
          }
          break;
        case kernel::ChildEvent::stopped:
          if (p->state == ProcState::running) p->state = ProcState::stopped;
          break;
        case kernel::ChildEvent::continued:
          if (p->state == ProcState::stopped) p->state = ProcState::running;
          break;
        case kernel::ChildEvent::meter_lost:
          // The process runs on, unmetered: its meter connection died and
          // the kernel flipped it to accounted drop mode.
          if (p->note.empty()) {
            p->note = "[meter lost]";
            emit(util::strprintf(
                "WARNING: process %s in job '%s' lost its meter connection; "
                "its events are being dropped (counted)\n",
                p->name.c_str(), jname.c_str()));
          }
          break;
      }
      return;
    }
    // A filter?
    for (auto it = filters_.begin(); it != filters_.end(); ++it) {
      if (it->second.machine == note->machine && it->second.pid == note->pid) {
        if (event == kernel::ChildEvent::exited ||
            event == kernel::ChildEvent::killed) {
          // (meter_lost never applies: filters consume meter conns,
          // they do not own one.)
          emit(util::strprintf("filter '%s' terminated\n",
                               it->first.c_str()));
          if (default_filter_ == it->first) default_filter_.clear();
          filters_.erase(it);
        }
        return;
      }
    }
    return;
  }

  if (const auto* io = std::get_if<IoNote>(&*msg)) {
    for (auto& [jname, job] : jobs_) {
      ProcEntry* p = job.find_pid(io->machine, io->pid);
      if (p) {
        emit(util::strprintf("[%s] %s", p->name.c_str(), io->data.c_str()));
        if (!io->data.empty() && io->data.back() != '\n') emit("\n");
        return;
      }
    }
  }
}

bool Controller::execute(const std::string& raw_line) {
  const std::string line{util::trim(raw_line)};
  if (line.empty() || line[0] == '#') return true;
  auto tokens = util::split(line, " \t");
  const std::string cmd = util::to_lower(tokens[0]);
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());

  // `predicate` takes a raw spec tail whose characters (@ = * < > ! , &)
  // the word validator rejects, so it dispatches before validation.
  if (cmd == "predicate") {
    warned_die_ = false;
    sys_.world().obs().counter("control.commands").add(1);
    cmd_predicate(std::string(util::trim(line.substr(tokens[0].size()))));
    return true;
  }

  for (const auto& a : args) {
    if (!util::is_word(a)) {
      emit(util::strprintf("bad parameter '%s'\n", a.c_str()));
      return true;
    }
  }

  if (cmd != "die" && cmd != "exit" && cmd != "bye") warned_die_ = false;

  sys_.world().obs().counter("control.commands").add(1);

  if (cmd == "help") {
    cmd_help();
  } else if (cmd == "filter") {
    cmd_filter(args);
  } else if (cmd == "fanin") {
    cmd_fanin(args);
  } else if (cmd == "rpcmode") {
    cmd_rpcmode(args);
  } else if (cmd == "newjob") {
    cmd_newjob(args);
  } else if (cmd == "addprocess" || cmd == "add") {
    cmd_addprocess(args);
  } else if (cmd == "addgroup") {
    cmd_addgroup(args);
  } else if (cmd == "acquire") {
    cmd_acquire(args);
  } else if (cmd == "setflags") {
    cmd_setflags(args);
  } else if (cmd == "startjob") {
    cmd_startjob(args);
  } else if (cmd == "stopjob") {
    cmd_stopjob(args);
  } else if (cmd == "removejob" || cmd == "rmjob") {
    cmd_removejob(args);
  } else if (cmd == "removeprocess" || cmd == "rmprocess") {
    cmd_removeprocess(args);
  } else if (cmd == "jobs") {
    cmd_jobs(args);
  } else if (cmd == "reconcile") {
    cmd_reconcile(args);
  } else if (cmd == "getlog") {
    cmd_getlog(args);
  } else if (cmd == "source") {
    cmd_source(args);
  } else if (cmd == "sink") {
    cmd_sink(args);
  } else if (cmd == "die" || cmd == "exit" || cmd == "bye") {
    return cmd_die();
  } else {
    emit(util::strprintf("unknown command '%s' (try help)\n", cmd.c_str()));
  }
  return true;
}

void Controller::cmd_help() {
  emit(
      "commands:\n"
      "  help\n"
      "  filter [<filtername> [<machine> [<filterfile> [<descriptions> [<templates>]]]]]\n"
      "  fanin <filtername> <arity> <machineprefix> <first> <last>\n"
      "  rpcmode [serial | batched [<window>]]\n"
      "  newjob <jobname> [<filtername>]\n"
      "  addprocess <jobname> <machine> <processfile> [<parm1 parm2 ...>]\n"
      "  addgroup <jobname> <machineprefix> <first> <last> <permachine> <processfile> [<parms>]\n"
      "  acquire <jobname> <machine> <process identifier>\n"
      "  setflags <jobname> <flag1 flag2 ...>\n"
      "  startjob <jobname>\n"
      "  stopjob <jobname>\n"
      "  removejob <jobname>\n"
      "  removeprocess <jobname> <processname>\n"
      "  jobs [<jobname1 jobname2 ...>]\n"
      "  reconcile\n"
      "  predicate add <name>: <spec>   (online possibly/definitely detection)\n"
      "  predicate list | verdicts [<name>] | stats\n"
      "  getlog <filtername> <destination filename>\n"
      "  source <filename>\n"
      "  sink [<filename>]\n"
      "  die (aliases: exit, bye, ^D)\n"
      "metering flags: fork termproc send receivecall receive socket dup\n"
      "  destsocket accept connect all immediate (prefix '-' resets)\n");
}

void Controller::cmd_predicate(const std::string& rest) {
  auto svc = analysis::pred::predicate_service(sys_.world());
  if (!svc) {
    emit("no predicate service installed on this world\n");
    return;
  }
  auto& det = svc->detector;

  std::string sub{rest};
  std::string tail;
  if (const auto sp = rest.find_first_of(" \t"); sp != std::string::npos) {
    sub = rest.substr(0, sp);
    tail = std::string{util::trim(rest.substr(sp))};
  }
  sub = util::to_lower(sub);

  if (sub == "add") {
    if (tail.empty()) {
      emit("usage: predicate add <name>: <spec>\n");
      return;
    }
    std::string err;
    if (!det.add_predicate(tail, &err)) {
      emit(util::strprintf("predicate error: %s\n", err.c_str()));
      return;
    }
    emit(util::strprintf("predicate added (epsilon=%lldus)\n",
                         static_cast<long long>(det.config().epsilon_us)));
  } else if (sub == "list" || sub.empty()) {
    const auto st = det.status();
    if (st.empty()) {
      emit("no predicates\n");
      return;
    }
    static const char* kStrength[] = {"never", "possibly", "definitely"};
    for (const auto& p : st) {
      emit(util::strprintf(
          "%s: insts=%zu possibly=%llu definitely=%llu strongest=%s\n  %s\n",
          p.name.c_str(), p.instantiations,
          static_cast<unsigned long long>(p.possibly_count),
          static_cast<unsigned long long>(p.definitely_count),
          kStrength[p.strongest], p.spec.c_str()));
    }
  } else if (sub == "verdicts") {
    std::size_t shown = 0;
    for (const auto& v : det.verdicts()) {
      if (!tail.empty() && v.predicate != tail) continue;
      emit(util::strprintf(
          "%s %s #%llu cut=[%lld,%lld]us lag=%lldus procs=%zu\n",
          v.kind == analysis::pred::PredicateDetector::VerdictKind::definitely
              ? "definitely"
              : "possibly",
          v.predicate.c_str(), static_cast<unsigned long long>(v.occurrence),
          static_cast<long long>(v.cut_lo_us),
          static_cast<long long>(v.cut_hi_us),
          static_cast<long long>(v.detect_lag_us), v.witness.size()));
      ++shown;
    }
    if (shown == 0) emit("no verdicts\n");
  } else if (sub == "stats") {
    const auto s = det.stats();
    emit(util::strprintf(
        "events=%zu settled=%zu unsettled=%zu predicates=%zu insts=%zu "
        "open=%zu cuts=%llu possibly=%llu definitely=%llu capped=%zu "
        "stamps=%zu stamps_dropped=%zu\n",
        s.events, s.settled, s.unsettled, s.predicates, s.instantiations,
        s.open_intervals, static_cast<unsigned long long>(s.cuts_examined),
        static_cast<unsigned long long>(s.verdicts_possibly),
        static_cast<unsigned long long>(s.verdicts_definitely),
        s.capped_instantiations, s.send_stamps, s.send_stamps_dropped));
  } else {
    emit(
        "usage: predicate add <name>: <spec>\n"
        "       predicate list | verdicts [<name>] | stats\n");
  }
}

void Controller::cmd_filter(const std::vector<std::string>& args) {
  if (args.empty()) {
    if (filters_.empty()) {
      emit("no filters\n");
      return;
    }
    for (const auto& [name, f] : filters_) {
      emit(util::strprintf("%d %s %s\n", f.pid, name.c_str(),
                           f.machine.c_str()));
    }
    return;
  }

  const std::string& name = args[0];
  if (filters_.count(name)) {
    emit(util::strprintf("filter '%s' already exists\n", name.c_str()));
    return;
  }
  const std::string machine = args.size() > 1 ? args[1] : sys_.hostname();
  const std::string filterfile = args.size() > 2 ? args[2] : "filter";
  const std::string descriptions = args.size() > 3 ? args[3] : "descriptions";
  const std::string templates = args.size() > 4 ? args[4] : "templates";

  auto addr = daemon_addr(machine);
  if (!addr) {
    emit(util::strprintf("unknown machine '%s'\n", machine.c_str()));
    return;
  }
  if (!stage_file(machine, filterfile) || !stage_file(machine, descriptions) ||
      !stage_file(machine, templates)) {
    return;
  }

  FilterRequest req;
  req.uid = sys_.getuid();
  req.filterfile = filterfile;
  req.logfile = filter::log_path_for(name);
  req.descriptions = descriptions;
  req.templates = templates;
  req.control_port = control_port_;
  req.control_host = sys_.hostname();
  req.nonce = next_nonce();
  auto reply = daemon_rpc(machine, *addr, req);
  if (!reply) {
    emit(util::strprintf("filter '%s' not created: %s\n", name.c_str(),
                         std::string(util::err_message(reply.error())).c_str()));
    return;
  }
  const auto* fr = std::get_if<FilterReply>(&*reply);
  if (!fr || fr->status != 0) {
    emit(util::strprintf("filter '%s' not created: %s\n", name.c_str(),
                         err_text(reply_status(*reply)).c_str()));
    return;
  }
  FilterRec rec;
  rec.name = name;
  rec.machine = machine;
  rec.pid = fr->pid;
  rec.meter_port = fr->meter_port;
  rec.logfile = req.logfile;
  rec.descriptions = descriptions;
  rec.templates = templates;
  filters_[name] = rec;
  if (default_filter_.empty()) default_filter_ = name;
  emit(util::strprintf("filter '%s' ... created: identifier = %d\n",
                       name.c_str(), fr->pid));
}

void Controller::cmd_fanin(const std::vector<std::string>& args) {
  if (args.size() < 5) {
    emit("usage: fanin <filtername> <arity> <machineprefix> <first> <last>\n");
    return;
  }
  auto fit = filters_.find(args[0]);
  if (fit == filters_.end()) {
    emit(util::strprintf("no such filter '%s'\n", args[0].c_str()));
    return;
  }
  FilterRec& filt = fit->second;
  if (!filt.locals.empty() || !filt.aggregators.empty()) {
    emit(util::strprintf("filter '%s' already has a fan-in tree\n",
                         args[0].c_str()));
    return;
  }
  auto arity = util::parse_int(args[1]);
  auto first = util::parse_int(args[3]);
  auto last = util::parse_int(args[4]);
  if (!arity || *arity < 2) {
    emit("fanin: arity must be at least 2\n");
    return;
  }
  if (!first || !last || *last < *first) {
    emit("fanin: bad machine range\n");
    return;
  }
  const std::size_t A = static_cast<std::size_t>(*arity);
  std::vector<std::string> leaves;
  for (long long i = *first; i <= *last; ++i) {
    std::string m = args[2] + std::to_string(i);
    if (!daemon_addr(m)) {
      emit(util::strprintf("unknown machine '%s'\n", m.c_str()));
      return;
    }
    leaves.push_back(std::move(m));
  }
  // The session's default descriptions/templates are pre-installed on
  // every machine; only custom files need rcp staging.
  const bool custom =
      filt.descriptions != "descriptions" || filt.templates != "templates";

  // Tree shape, bottom-up: each machine gets a local filter; groups of
  // `arity` report to an aggregator hosted on the group's first machine,
  // and so on until at most `arity` nodes remain, which report to the
  // session (root) filter directly.
  std::vector<std::vector<std::string>> agg_levels;  // hosts, leafmost first
  {
    std::vector<std::string> cur = leaves;
    while (cur.size() > A) {
      std::vector<std::string> next;
      for (std::size_t g = 0; g < cur.size(); g += A) next.push_back(cur[g]);
      agg_levels.push_back(next);
      cur = std::move(next);
    }
  }

  struct Endpoint {
    std::string host;
    net::Port port = 0;
  };
  const Endpoint root_ep{filt.machine, filt.meter_port};
  std::vector<std::vector<Endpoint>> eps(agg_levels.size());
  for (std::size_t k = 0; k < agg_levels.size(); ++k) {
    eps[k].resize(agg_levels[k].size());
  }
  // A child whose aggregator failed to start falls up to the nearest live
  // ancestor, so a partial tree still delivers every record.
  auto parent_for = [&](std::size_t parent_level,
                        std::size_t child_idx) -> Endpoint {
    std::size_t idx = child_idx;
    for (std::size_t lvl = parent_level; lvl < eps.size(); ++lvl) {
      idx /= A;
      if (eps[lvl][idx].port != 0) return eps[lvl][idx];
    }
    return root_ep;
  };

  // Create top-down so every parent is listening before its children
  // connect upward; each level is one multi_rpc round (pipelined across
  // machines in batched mode).
  std::size_t aggs_ok = 0, aggs_failed = 0;
  for (std::size_t k = agg_levels.size(); k-- > 0;) {
    std::vector<MultiCall> calls;
    for (std::size_t j = 0; j < agg_levels[k].size(); ++j) {
      const std::string& m = agg_levels[k][j];
      Endpoint parent = parent_for(k + 1, j);
      FilterRequest req;
      req.uid = sys_.getuid();
      req.filterfile = "aggregator";
      req.control_port = control_port_;
      req.control_host = sys_.hostname();
      req.nonce = next_nonce();
      req.mode = 2;
      req.parent_host = parent.host;
      req.parent_port = parent.port;
      MultiCall c;
      c.machine = m;
      c.addr = *daemon_addr(m);
      c.req = std::move(req);
      calls.push_back(std::move(c));
    }
    auto replies = multi_rpc(calls);
    for (std::size_t j = 0; j < replies.size(); ++j) {
      const auto* fr =
          replies[j] ? std::get_if<FilterReply>(&*replies[j]) : nullptr;
      if (!fr || fr->status != 0) {
        ++aggs_failed;
        emit(util::strprintf("aggregator on '%s' not created\n",
                             agg_levels[k][j].c_str()));
        continue;
      }
      eps[k][j] = Endpoint{agg_levels[k][j], fr->meter_port};
      filt.aggregators.push_back(
          AggregatorRec{agg_levels[k][j], fr->pid, fr->meter_port});
      ++aggs_ok;
    }
  }

  // Leaf tier: one local filter per machine, running the session's
  // programs in place.
  std::vector<MultiCall> calls;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const std::string& m = leaves[i];
    if (custom) {
      (void)stage_file(m, filt.descriptions);
      (void)stage_file(m, filt.templates);
    }
    Endpoint parent = parent_for(0, i);
    FilterRequest req;
    req.uid = sys_.getuid();
    req.filterfile = "localfilter";
    req.descriptions = filt.descriptions;
    req.templates = filt.templates;
    req.control_port = control_port_;
    req.control_host = sys_.hostname();
    req.nonce = next_nonce();
    req.mode = 1;
    req.parent_host = parent.host;
    req.parent_port = parent.port;
    MultiCall c;
    c.machine = m;
    c.addr = *daemon_addr(m);
    c.req = std::move(req);
    calls.push_back(std::move(c));
  }
  std::size_t locals_ok = 0, locals_failed = 0;
  auto replies = multi_rpc(calls);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const auto* fr =
        replies[i] ? std::get_if<FilterReply>(&*replies[i]) : nullptr;
    if (!fr || fr->status != 0) {
      // The machine's processes fall back to metering straight into the
      // root filter (meter_target finds no local entry).
      ++locals_failed;
      continue;
    }
    filt.locals[leaves[i]] = LocalFilterRec{fr->pid, fr->meter_port};
    ++locals_ok;
  }
  emit(util::strprintf(
      "fanin '%s': %zu local filters (%zu failed), %zu aggregators "
      "(%zu failed), depth %zu\n",
      filt.name.c_str(), locals_ok, locals_failed, aggs_ok, aggs_failed,
      agg_levels.size() + 2));
}

void Controller::cmd_rpcmode(const std::vector<std::string>& args) {
  if (!args.empty()) {
    const std::string mode = util::to_lower(args[0]);
    if (mode == "serial") {
      batched_ = false;
    } else if (mode == "batched") {
      batched_ = true;
      if (args.size() > 1) {
        auto w = util::parse_int(args[1]);
        if (!w || *w < 1 || *w > 128) {
          emit("rpcmode: window must be 1..128\n");
          return;
        }
        window_ = static_cast<int>(*w);
      }
    } else {
      emit("usage: rpcmode [serial | batched [<window>]]\n");
      return;
    }
  }
  emit(batched_ ? util::strprintf("rpc mode: batched, window %d\n", window_)
                : std::string("rpc mode: serial\n"));
}

void Controller::cmd_newjob(const std::vector<std::string>& args) {
  if (args.empty()) {
    emit("usage: newjob <jobname> [<filtername>]\n");
    return;
  }
  const std::string& name = args[0];
  if (jobs_.count(name)) {
    emit(util::strprintf("job '%s' already exists\n", name.c_str()));
    return;
  }
  std::string filter_name = args.size() > 1 ? args[1] : default_filter_;
  if (filter_name.empty() || !filters_.count(filter_name)) {
    // §4.3: "A job cannot be created if a filter has not been created."
    emit("no filter: create a filter first\n");
    return;
  }
  Job job;
  job.name = name;
  job.filter_name = filter_name;
  jobs_[name] = std::move(job);
}

void Controller::cmd_addprocess(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    emit("usage: addprocess <jobname> <machine> <processfile> [<parms>]\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  Job& job = jit->second;
  const std::string& machine = args[1];
  const std::string& processfile = args[2];
  auto addr = daemon_addr(machine);
  if (!addr) {
    emit(util::strprintf("unknown machine '%s'\n", machine.c_str()));
    return;
  }
  if (!stage_file(machine, processfile)) return;

  const FilterRec& filt = filters_.at(job.filter_name);
  const auto [fhost, fport] = meter_target(filt, machine);
  CreateRequest req;
  req.uid = sys_.getuid();
  req.filename = processfile;
  req.params.assign(args.begin() + 3, args.end());
  req.filter_port = fport;
  req.filter_host = fhost;
  req.meter_flags = job.flags;
  req.control_port = control_port_;
  req.control_host = sys_.hostname();
  req.nonce = next_nonce();
  auto reply = daemon_rpc(machine, *addr, req);
  const std::string display = basename_of(processfile);
  if (!reply) {
    emit(util::strprintf("process '%s' not created: %s\n", display.c_str(),
                         std::string(util::err_message(reply.error())).c_str()));
    return;
  }
  const auto* cr = std::get_if<CreateReply>(&*reply);
  if (!cr || cr->status != 0) {
    emit(util::strprintf("process '%s' not created: %s\n", display.c_str(),
                         err_text(reply_status(*reply)).c_str()));
    return;
  }
  ProcEntry p;
  p.name = display;
  p.machine = machine;
  p.pid = cr->pid;
  p.state = ProcState::fresh;
  p.flags = job.flags;
  job.procs.push_back(std::move(p));
  emit(util::strprintf("process '%s' ... created: identifier = %d\n",
                       display.c_str(), cr->pid));
}

void Controller::cmd_addgroup(const std::vector<std::string>& args) {
  if (args.size() < 6) {
    emit(
        "usage: addgroup <jobname> <machineprefix> <first> <last> "
        "<permachine> <processfile> [<parms>]\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  Job& job = jit->second;
  auto first = util::parse_int(args[2]);
  auto last = util::parse_int(args[3]);
  auto per = util::parse_int(args[4]);
  if (!first || !last || *last < *first) {
    emit("addgroup: bad machine range\n");
    return;
  }
  if (!per || *per < 1) {
    emit("addgroup: permachine must be at least 1\n");
    return;
  }
  const std::string& processfile = args[5];
  const std::vector<std::string> params(args.begin() + 6, args.end());
  const std::string base = basename_of(processfile);
  const FilterRec& filt = filters_.at(job.filter_name);

  std::vector<std::string> machines;
  for (long long i = *first; i <= *last; ++i) {
    std::string m = args[1] + std::to_string(i);
    if (!daemon_addr(m)) {
      emit(util::strprintf("unknown machine '%s'\n", m.c_str()));
      return;
    }
    (void)stage_file(m, processfile);
    machines.push_back(std::move(m));
  }

  std::size_t created = 0, failed = 0;
  const std::size_t n_per = static_cast<std::size_t>(*per);
  auto record = [&](const std::string& machine, std::size_t k,
                    std::int32_t pid, std::int32_t status) {
    if (status != 0 || pid < 0) {
      ++failed;
      return;
    }
    ProcEntry p;
    p.name = util::strprintf("%s.%s.%zu", base.c_str(), machine.c_str(), k);
    p.machine = machine;
    p.pid = pid;
    p.state = ProcState::fresh;
    p.flags = job.flags;
    job.procs.push_back(std::move(p));
    ++created;
  };

  if (batched_) {
    // One multi-create per machine, pipelined across shards. The deadline
    // scales with the item count: each spawn costs real (simulated) time,
    // so a 100-item batch legitimately takes longer than one create.
    std::vector<MultiCall> calls;
    for (const auto& m : machines) {
      const auto [fhost, fport] = meter_target(filt, m);
      BatchCreateRequest req;
      req.uid = sys_.getuid();
      for (std::size_t k = 0; k < n_per; ++k) {
        req.items.push_back(BatchCreateRequest::Item{processfile, params});
      }
      req.filter_port = fport;
      req.filter_host = fhost;
      req.meter_flags = job.flags;
      req.control_port = control_port_;
      req.control_host = sys_.hostname();
      req.nonce = next_nonce();
      MultiCall c;
      c.machine = m;
      c.addr = *daemon_addr(m);
      c.req = std::move(req);
      c.opts.deadline = util::msec(250 + 10 * static_cast<long long>(n_per));
      calls.push_back(std::move(c));
    }
    auto replies = multi_rpc(calls);
    for (std::size_t i = 0; i < replies.size(); ++i) {
      const auto* br =
          replies[i] ? std::get_if<BatchCreateReply>(&*replies[i]) : nullptr;
      if (!br || br->pids.size() != n_per) {
        failed += n_per;
        continue;
      }
      for (std::size_t k = 0; k < n_per; ++k) {
        record(machines[i], k, br->pids[k], br->statuses[k]);
      }
    }
  } else {
    for (const auto& m : machines) {
      const auto addr = *daemon_addr(m);
      const auto [fhost, fport] = meter_target(filt, m);
      for (std::size_t k = 0; k < n_per; ++k) {
        CreateRequest req;
        req.uid = sys_.getuid();
        req.filename = processfile;
        req.params = params;
        req.filter_port = fport;
        req.filter_host = fhost;
        req.meter_flags = job.flags;
        req.control_port = control_port_;
        req.control_host = sys_.hostname();
        req.nonce = next_nonce();
        auto reply = daemon_rpc(m, addr, req);
        const auto* cr = reply ? std::get_if<CreateReply>(&*reply) : nullptr;
        if (!cr) {
          ++failed;
          continue;
        }
        record(m, k, cr->pid, cr->status);
      }
    }
  }
  emit(util::strprintf(
      "job '%s': %zu of %zu processes created across %zu machines\n",
      job.name.c_str(), created, created + failed, machines.size()));
}

void Controller::cmd_acquire(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    emit("usage: acquire <jobname> <machine> <process identifier>\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  Job& job = jit->second;
  const std::string& machine = args[1];
  auto pid = util::parse_int(args[2]);
  if (!pid) {
    emit("bad process identifier\n");
    return;
  }
  auto addr = daemon_addr(machine);
  if (!addr) {
    emit(util::strprintf("unknown machine '%s'\n", machine.c_str()));
    return;
  }
  const FilterRec& filt = filters_.at(job.filter_name);
  const auto [fhost, fport] = meter_target(filt, machine);
  AcquireRequest req;
  req.uid = sys_.getuid();
  req.pid = static_cast<std::int32_t>(*pid);
  req.filter_port = fport;
  req.filter_host = fhost;
  req.meter_flags = job.flags;
  // The full acquire round trip (connect → request → reply), in sim time.
  obs::Registry& reg = sys_.world().obs();
  auto reply = [&] {
    obs::ObsSpan span(reg, "control.acquire",
                      &reg.histogram("control.acquire_rtt_us"));
    return daemon_rpc(machine, *addr, req);
  }();
  const std::int32_t status = reply ? reply_status(*reply)
                                    : static_cast<std::int32_t>(reply.error());
  if (status != 0) {
    emit(util::strprintf("process %lld not acquired: %s\n",
                         static_cast<long long>(*pid),
                         err_text(status).c_str()));
    return;
  }
  ProcEntry p;
  p.name = util::strprintf("pid%lld", static_cast<long long>(*pid));
  p.machine = machine;
  p.pid = static_cast<kernel::Pid>(*pid);
  p.state = ProcState::acquired;
  p.flags = job.flags;
  job.procs.push_back(std::move(p));
  emit(util::strprintf("process %lld ... acquired\n",
                       static_cast<long long>(*pid)));
}

void Controller::cmd_setflags(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    emit("usage: setflags <jobname> <flag1 flag2 ...>\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  Job& job = jit->second;
  std::string bad;
  auto mask = apply_flag_tokens(job.flags,
                                std::vector<std::string>(args.begin() + 1,
                                                         args.end()),
                                &bad);
  if (!mask) {
    emit(util::strprintf("unknown flag '%s'\n", bad.c_str()));
    return;
  }
  job.flags = *mask;
  emit("new job flags = " + meter::flags_to_string(job.flags) + "\n");

  for (auto& p : job.procs) {
    if (p.state == ProcState::killed) continue;
    auto addr = daemon_addr(p.machine);
    if (!addr) continue;
    SetFlagsRequest req;
    req.uid = sys_.getuid();
    req.pid = p.pid;
    req.flags = job.flags;
    auto reply = daemon_rpc(p.machine, *addr, req);
    const std::int32_t status =
        reply ? reply_status(*reply) : static_cast<std::int32_t>(reply.error());
    if (status == 0) {
      p.flags = job.flags;
      emit(util::strprintf("Process '%s' : Flags set\n", p.name.c_str()));
    } else {
      emit(util::strprintf("Process '%s' : %s\n", p.name.c_str(),
                           err_text(status).c_str()));
    }
  }
}

void Controller::cmd_startjob(const std::vector<std::string>& args) {
  if (args.empty()) {
    emit("usage: startjob <jobname>\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  if (batched_) {
    std::vector<ProcEntry*> eligible;
    for (auto& p : jit->second.procs) {
      if (!can_transition(p.state, ProcState::running)) {
        emit(util::strprintf("'%s' cannot be started (%s).\n", p.name.c_str(),
                             proc_state_name(p.state)));
        continue;
      }
      eligible.push_back(&p);
    }
    obs::Registry& reg = sys_.world().obs();
    auto statuses = [&] {
      obs::ObsSpan span(reg, "control.start",
                        &reg.histogram("control.start_rtt_us"));
      return batch_proc_op(eligible, MsgType::start_request);
    }();
    std::size_t started = 0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      if (statuses[i] == 0) {
        eligible[i]->state = ProcState::running;
        ++started;
      } else {
        emit(util::strprintf("'%s' not started: %s\n",
                             eligible[i]->name.c_str(),
                             err_text(statuses[i]).c_str()));
      }
    }
    emit(util::strprintf("'%s': %zu of %zu processes started.\n",
                         jit->second.name.c_str(), started, eligible.size()));
    return;
  }
  for (auto& p : jit->second.procs) {
    if (!can_transition(p.state, ProcState::running)) {
      emit(util::strprintf("'%s' cannot be started (%s).\n", p.name.c_str(),
                           proc_state_name(p.state)));
      continue;
    }
    auto addr = daemon_addr(p.machine);
    if (!addr) continue;
    ProcRequest req;
    req.what = MsgType::start_request;
    req.uid = sys_.getuid();
    req.pid = p.pid;
    obs::Registry& reg = sys_.world().obs();
    auto reply = [&] {
      obs::ObsSpan span(reg, "control.start",
                        &reg.histogram("control.start_rtt_us"));
      return daemon_rpc(p.machine, *addr, req);
    }();
    const std::int32_t status =
        reply ? reply_status(*reply) : static_cast<std::int32_t>(reply.error());
    if (status == 0) {
      p.state = ProcState::running;
      emit(util::strprintf("'%s' started.\n", p.name.c_str()));
    } else {
      emit(util::strprintf("'%s' not started: %s\n", p.name.c_str(),
                           err_text(status).c_str()));
    }
  }
}

void Controller::cmd_stopjob(const std::vector<std::string>& args) {
  if (args.empty()) {
    emit("usage: stopjob <jobname>\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  if (batched_) {
    std::vector<ProcEntry*> eligible;
    for (auto& p : jit->second.procs) {
      if (can_transition(p.state, ProcState::stopped)) eligible.push_back(&p);
    }
    auto statuses = batch_proc_op(eligible, MsgType::stop_request);
    std::size_t stopped = 0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      if (statuses[i] == 0) {
        eligible[i]->state = ProcState::stopped;
        ++stopped;
      } else {
        emit(util::strprintf("'%s' not stopped: %s\n",
                             eligible[i]->name.c_str(),
                             err_text(statuses[i]).c_str()));
      }
    }
    emit(util::strprintf("'%s': %zu of %zu processes stopped.\n",
                         jit->second.name.c_str(), stopped, eligible.size()));
    return;
  }
  for (auto& p : jit->second.procs) {
    // Killed and acquired processes are ignored (§4.3).
    if (!can_transition(p.state, ProcState::stopped)) continue;
    auto addr = daemon_addr(p.machine);
    if (!addr) continue;
    ProcRequest req;
    req.what = MsgType::stop_request;
    req.uid = sys_.getuid();
    req.pid = p.pid;
    auto reply = daemon_rpc(p.machine, *addr, req);
    const std::int32_t status =
        reply ? reply_status(*reply) : static_cast<std::int32_t>(reply.error());
    if (status == 0) {
      p.state = ProcState::stopped;
      emit(util::strprintf("'%s' stopped.\n", p.name.c_str()));
    } else {
      emit(util::strprintf("'%s' not stopped: %s\n", p.name.c_str(),
                           err_text(status).c_str()));
    }
  }
}

bool Controller::remove_proc(Job& job, ProcEntry& p) {
  (void)job;
  auto addr = daemon_addr(p.machine);
  if (!addr) return false;
  if (p.state == ProcState::stopped) {
    ProcRequest req;
    req.what = MsgType::kill_request;
    req.uid = sys_.getuid();
    req.pid = p.pid;
    obs::Registry& reg = sys_.world().obs();
    {
      obs::ObsSpan span(reg, "control.kill",
                        &reg.histogram("control.kill_rtt_us"));
      (void)daemon_rpc(p.machine, *addr, req);
    }
    p.state = ProcState::killed;
  } else if (p.state == ProcState::acquired) {
    // "the control program insures that the filter connection of that
    // process is taken down ... but the process continues to execute."
    ProcRequest req;
    req.what = MsgType::release_request;
    req.uid = sys_.getuid();
    req.pid = p.pid;
    (void)daemon_rpc(p.machine, *addr, req);
  }
  return true;
}

void Controller::cmd_removejob(const std::vector<std::string>& args) {
  if (args.empty()) {
    emit("usage: removejob <jobname>\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  Job& job = jit->second;
  if (!job.removable()) {
    emit(util::strprintf(
        "job '%s' has running or new processes; not removed\n",
        job.name.c_str()));
    return;
  }
  if (batched_) {
    // Multi-kill / multi-release: one batch per machine, pipelined.
    std::vector<ProcEntry*> to_kill, to_release;
    for (auto& p : job.procs) {
      if (p.state == ProcState::stopped) to_kill.push_back(&p);
      if (p.state == ProcState::acquired) to_release.push_back(&p);
    }
    obs::Registry& reg = sys_.world().obs();
    {
      obs::ObsSpan span(reg, "control.kill",
                        &reg.histogram("control.kill_rtt_us"));
      (void)batch_proc_op(to_kill, MsgType::kill_request);
    }
    for (ProcEntry* p : to_kill) p->state = ProcState::killed;
    (void)batch_proc_op(to_release, MsgType::release_request);
    for (auto& p : job.procs) {
      emit(util::strprintf("'%s' removed\n", p.name.c_str()));
    }
    jobs_.erase(jit);
    return;
  }
  for (auto& p : job.procs) {
    remove_proc(job, p);
    emit(util::strprintf("'%s' removed\n", p.name.c_str()));
  }
  jobs_.erase(jit);
}

void Controller::cmd_removeprocess(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    emit("usage: removeprocess <jobname> <processname>\n");
    return;
  }
  auto jit = jobs_.find(args[0]);
  if (jit == jobs_.end()) {
    emit(util::strprintf("no such job '%s'\n", args[0].c_str()));
    return;
  }
  Job& job = jit->second;
  ProcEntry* p = job.find(args[1]);
  if (!p) {
    emit(util::strprintf("no process '%s' in job '%s'\n", args[1].c_str(),
                         job.name.c_str()));
    return;
  }
  if (p->state != ProcState::killed && p->state != ProcState::stopped &&
      p->state != ProcState::acquired) {
    emit(util::strprintf("'%s' is %s; not removed\n", p->name.c_str(),
                         proc_state_name(p->state)));
    return;
  }
  remove_proc(job, *p);
  emit(util::strprintf("'%s' removed\n", p->name.c_str()));
  job.procs.erase(job.procs.begin() + (p - job.procs.data()));
}

void Controller::cmd_jobs(const std::vector<std::string>& args) {
  for (const auto& [machine, h] : machine_health_) {
    if (h.down) {
      emit(util::strprintf("machine '%s' DOWN (%s) -- try reconcile\n",
                           machine.c_str(), h.reason.c_str()));
    }
  }
  if (args.empty()) {
    if (jobs_.empty()) {
      emit("no jobs\n");
      return;
    }
    int i = 1;
    for (const auto& [name, job] : jobs_) {
      emit(util::strprintf("%d. %s filter: %s\n", i++, name.c_str(),
                           job.filter_name.c_str()));
    }
    return;
  }
  for (const auto& name : args) {
    auto jit = jobs_.find(name);
    if (jit == jobs_.end()) {
      emit(util::strprintf("no such job '%s'\n", name.c_str()));
      continue;
    }
    emit(util::strprintf("job '%s' (filter %s):\n", name.c_str(),
                         jit->second.filter_name.c_str()));
    for (const auto& p : jit->second.procs) {
      emit(util::strprintf("  %d %s %s %s flags: %s%s%s\n", p.pid,
                           proc_state_name(p.state), p.name.c_str(),
                           p.machine.c_str(),
                           meter::flags_to_string(p.flags).c_str(),
                           p.note.empty() ? "" : " ", p.note.c_str()));
    }
  }
}

void Controller::cmd_reconcile(const std::vector<std::string>& args) {
  (void)args;
  bool any_down = false;
  for (auto& [machine, h] : machine_health_) {
    if (!h.down) continue;
    any_down = true;
    auto addr = daemon_addr(machine);
    if (!addr) continue;
    // Liveness ping, deliberately NOT via daemon_rpc (which fails fast on
    // down machines — probing them is the whole point here).
    ProcRequest ping;
    ping.what = MsgType::status_request;
    ping.uid = sys_.getuid();
    ping.pid = 0;
    daemon::RpcOptions probe;
    probe.max_attempts = 2;
    auto reply = daemon::rpc_call(sys_, *addr, ping, probe);
    if (!reply || reply_status(*reply) != 0) {
      emit(util::strprintf("machine '%s' still down\n", machine.c_str()));
      continue;
    }
    h.down = false;
    h.reason.clear();
    emit(util::strprintf("machine '%s' reconciled\n", machine.c_str()));

    // The daemon is back, but what happened while we could not talk to
    // it? Re-probe every process we believe is alive there.
    for (auto& [jname, job] : jobs_) {
      for (auto& p : job.procs) {
        if (p.machine != machine || p.state == ProcState::killed) continue;
        ProcRequest probe_proc;
        probe_proc.what = MsgType::status_request;
        probe_proc.uid = sys_.getuid();
        probe_proc.pid = p.pid;
        auto st = daemon::rpc_call(sys_, *addr, probe_proc, probe);
        const std::int32_t status =
            st ? reply_status(*st) : static_cast<std::int32_t>(st.error());
        if (status != 0) {
          p.state = ProcState::killed;
          if (p.note.empty()) p.note = "[presumed dead]";
          emit(util::strprintf(
              "DONE: process %s in job '%s' presumed dead after outage\n",
              p.name.c_str(), jname.c_str()));
        }
      }
    }
  }
  if (!any_down) emit("no machines marked down\n");
}

void Controller::cmd_getlog(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    emit("usage: getlog <filtername> <destination filename>\n");
    return;
  }
  auto fit = filters_.find(args[0]);
  if (fit == filters_.end()) {
    emit(util::strprintf("no such filter '%s'\n", args[0].c_str()));
    return;
  }
  auto r = sys_.rcp(fit->second.machine, fit->second.logfile, sys_.hostname(),
                    args[1]);
  if (!r) {
    emit(util::strprintf("getlog failed: %s\n",
                         std::string(util::err_message(r.error())).c_str()));
  }
}

void Controller::cmd_source(const std::vector<std::string>& args) {
  if (args.empty()) {
    emit("usage: source <filename>\n");
    return;
  }
  if (source_stack_.size() >= kMaxSourceDepth) {
    emit("source: nesting too deep\n");
    return;
  }
  auto fd = sys_.open(args[0], Sys::OpenMode::read);
  if (!fd) {
    emit(util::strprintf("cannot read '%s'\n", args[0].c_str()));
    return;
  }
  std::string text;
  for (;;) {
    auto chunk = sys_.read(*fd, 4096);
    if (!chunk || chunk->empty()) break;
    text += util::to_string(*chunk);
  }
  (void)sys_.close(*fd);
  std::deque<std::string> lines;
  for (auto& line : util::split_keep_empty(text, '\n')) {
    if (!util::trim(line).empty()) lines.push_back(line);
  }
  source_stack_.push_back(std::move(lines));
}

void Controller::cmd_sink(const std::vector<std::string>& args) {
  if (sink_fd_ >= 0) {
    (void)sys_.close(sink_fd_);
    sink_fd_ = -1;
  }
  if (args.empty()) return;  // output back to the terminal
  auto fd = sys_.open(args[0], Sys::OpenMode::write_trunc);
  if (!fd) {
    emit(util::strprintf("cannot write '%s'\n", args[0].c_str()));
    return;
  }
  sink_fd_ = *fd;
}

void Controller::remove_filters() {
  // Fan-in tiers first (children before the root they feed), one batch
  // kill per machine so a large tree tears down in a few RPC rounds.
  std::map<std::string, std::vector<std::int32_t>> tree_pids;
  for (const auto& [name, f] : filters_) {
    for (const auto& [m, lf] : f.locals) tree_pids[m].push_back(lf.pid);
    for (const auto& a : f.aggregators) tree_pids[a.machine].push_back(a.pid);
  }
  if (!tree_pids.empty()) {
    std::vector<MultiCall> calls;
    for (auto& [m, pids] : tree_pids) {
      auto addr = daemon_addr(m);
      if (!addr) continue;
      BatchProcRequest req;
      req.what = MsgType::kill_request;
      req.uid = sys_.getuid();
      req.nonce = next_nonce();
      req.pids = pids;
      MultiCall c;
      c.machine = m;
      c.addr = *addr;
      c.req = std::move(req);
      calls.push_back(std::move(c));
    }
    (void)multi_rpc(calls);
  }
  for (const auto& [name, f] : filters_) {
    auto addr = daemon_addr(f.machine);
    if (!addr) continue;
    ProcRequest req;
    req.what = MsgType::kill_request;
    req.uid = sys_.getuid();
    req.pid = f.pid;
    (void)daemon_rpc(f.machine, *addr, req);
  }
  filters_.clear();
}

bool Controller::cmd_die() {
  bool active = false;
  for (const auto& [name, job] : jobs_) {
    if (job.has_active()) active = true;
  }
  if (active && !warned_die_) {
    emit("there are still active processes; repeat to exit anyway\n");
    warned_die_ = true;
    return true;
  }
  // "Upon exit, all executing filter processes are removed."
  remove_filters();
  return false;
}

kernel::ProcessMain make_controller_main(const std::vector<std::string>&) {
  return [](Sys& sys) {
    Controller controller(sys);
    controller.run();
  };
}

void register_controller_program(kernel::ExecRegistry& registry) {
  registry.register_program(kControllerProgram, make_controller_main);
}

}  // namespace dpm::control
