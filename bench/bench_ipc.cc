// E5 — the IPC substrate (§3.1): stream vs datagram behaviour that the
// monitor's model rests on. Stream throughput and round-trip latency vs
// message size; local vs remote hops; datagram delivery under loss.
//
// Counters:
//   sim_us_rt        simulated round-trip time
//   sim_mbytes_per_s simulated stream throughput
//   delivery_rate    datagrams delivered / sent
#include "bench_util.h"

namespace dpm::bench {
namespace {

void BM_StreamRoundTrip(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const bool local = state.range(1) != 0;
  constexpr int kRounds = 50;
  double total = 0;
  for (auto _ : state) {
    auto world = make_world(2);
    (void)world->spawn(1, "server", 100, [&](kernel::Sys& sys) {
      auto ls = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.bind_port(*ls, 5000);
      (void)sys.listen(*ls, 2);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto d = sys.recv_exact(*conn, size);
        if (!d.ok()) break;
        if (!sys.send(*conn, *d).ok()) break;
      }
    });
    double elapsed = 0;
    (void)world->spawn(local ? 1u : 2u, "client", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("m0", 5000);
      auto fd = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.connect(*fd, *addr);
      util::Bytes msg(size, 0x5a);
      const double t0 = sim_us(sys.world());
      for (int i = 0; i < kRounds; ++i) {
        (void)sys.send(*fd, msg);
        (void)sys.recv_exact(*fd, size);
      }
      elapsed = sim_us(sys.world()) - t0;
      (void)sys.close(*fd);
    });
    world->run();
    total += elapsed;
  }
  state.counters["sim_us_rt"] =
      total / static_cast<double>(state.iterations()) / kRounds;
}

void BM_StreamThroughput(benchmark::State& state) {
  const std::size_t total_bytes = 1 << 20;
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  double total_us = 0;
  for (auto _ : state) {
    auto world = make_world(2);
    std::size_t received = 0;
    (void)world->spawn(1, "sink", 100, [&](kernel::Sys& sys) {
      auto ls = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.bind_port(*ls, 5001);
      (void)sys.listen(*ls, 2);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto d = sys.recv(*conn, 65536);
        if (!d.ok() || d->empty()) break;
        received += d->size();
      }
    });
    double elapsed = 0;
    (void)world->spawn(2, "source", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("m0", 5001);
      auto fd = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.connect(*fd, *addr);
      util::Bytes msg(chunk, 0x11);
      const double t0 = sim_us(sys.world());
      for (std::size_t sent = 0; sent < total_bytes; sent += chunk) {
        (void)sys.send(*fd, msg);
      }
      (void)sys.close(*fd);
      elapsed = sim_us(sys.world()) - t0;
    });
    world->run();
    total_us += elapsed;
  }
  const double secs = total_us / static_cast<double>(state.iterations()) / 1e6;
  state.counters["sim_mbytes_per_s"] =
      static_cast<double>(total_bytes) / (1 << 20) / secs;
}

void BM_DatagramDelivery(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  constexpr int kCount = 500;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    kernel::WorldConfig cfg;
    cfg.default_net.dgram_loss = loss;
    auto world = make_world(2, cfg);
    std::int64_t got = 0;
    (void)world->spawn(1, "sink", 100, [&](kernel::Sys& sys) {
      auto fd = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::dgram);
      (void)sys.bind_port(*fd, 5002);
      for (;;) {
        auto sel = sys.select({*fd}, false, util::msec(50));
        if (!sel.ok() || sel->timed_out) break;
        if (sys.recvfrom(*fd).ok()) ++got;
      }
    });
    (void)world->spawn(2, "source", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("m0", 5002);
      auto fd = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::dgram);
      util::Bytes msg(64, 0x22);
      for (int i = 0; i < kCount; ++i) {
        (void)sys.sendto(*fd, msg, *addr);
        sys.sleep(util::usec(200));
      }
    });
    world->run();
    delivered += got;
  }
  state.counters["delivery_rate"] = static_cast<double>(delivered) /
                                    static_cast<double>(state.iterations()) /
                                    kCount;
}

BENCHMARK(BM_StreamRoundTrip)
    ->Args({64, 0})->Args({1024, 0})->Args({16384, 0})  // remote
    ->Args({64, 1})->Args({1024, 1})                    // local
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamThroughput)->Arg(256)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DatagramDelivery)->Arg(0)->Arg(5)->Arg(25)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
