#include "analysis/trace_reader.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace dpm::analysis {

std::string proc_key_text(const ProcKey& k) {
  return util::strprintf("m%u/p%d", k.machine, k.pid);
}

std::optional<Event> event_from_record(const filter::Record& rec) {
  auto type = meter::event_by_name(util::to_lower(rec.event_name));
  if (!type) {
    // Description files name events in caps ("SEND"); map a few aliases.
    const std::string lower = util::to_lower(rec.event_name);
    if (lower == "receive") type = meter::EventType::recv;
    else if (lower == "socket") type = meter::EventType::sockcrt;
    else if (lower == "destsock") type = meter::EventType::destsock;
    else return std::nullopt;
  }
  Event e;
  e.type = *type;
  if (auto v = rec.num("machine")) e.machine = static_cast<std::uint16_t>(*v);
  if (auto v = rec.num("cpuTime")) e.cpu_time = *v;
  if (auto v = rec.num("procTime")) e.proc_time = *v;
  if (auto v = rec.num("pid")) e.pid = static_cast<std::int32_t>(*v);
  if (auto v = rec.num("pc")) e.pc = static_cast<std::uint32_t>(*v);
  if (auto v = rec.num("sock")) e.sock = static_cast<std::uint64_t>(*v);
  if (auto v = rec.num("newSock")) e.new_sock = static_cast<std::uint64_t>(*v);
  if (auto v = rec.num("msgLength")) e.msg_length = static_cast<std::uint32_t>(*v);
  if (auto v = rec.num("newPid")) e.new_pid = static_cast<std::int32_t>(*v);
  if (auto v = rec.num("status")) e.status = static_cast<std::int32_t>(*v);
  if (auto v = rec.text("destName")) e.dest_name = *v;
  if (auto v = rec.text("sourceName")) e.source_name = *v;
  if (auto v = rec.text("sockName")) e.sock_name = *v;
  if (auto v = rec.text("peerName")) e.peer_name = *v;
  return e;
}

Trace read_trace(const std::string& text) {
  Trace out;
  filter::ParsedTrace parsed = filter::parse_trace(text);
  out.malformed = parsed.malformed;
  out.events.reserve(parsed.records.size());
  for (const auto& rec : parsed.records) {
    auto e = event_from_record(rec);
    if (!e) {
      ++out.malformed;
      continue;
    }
    e->index = out.events.size();
    out.events.push_back(std::move(*e));
  }
  return out;
}

std::vector<ProcKey> Trace::processes() const {
  std::set<ProcKey> keys;
  for (const auto& e : events) keys.insert(e.proc());
  return std::vector<ProcKey>(keys.begin(), keys.end());
}

}  // namespace dpm::analysis
