// Distributed grid relaxation (Jacobi iteration with 1-D row
// decomposition): each node owns a strip of the grid and exchanges
// boundary rows with its neighbours every iteration over stream
// connections. The textbook tightly-coupled distributed computation —
// its trace shows the alternating compute/wait pattern the parallelism
// and timeline analyses are built to expose, and its numerical result is
// independent of the decomposition, which the tests verify.
//
//   grid_node <index> <n> <iters> <rows> <cols> <baseport> <host0> ...
//
// Global grid: rows x cols, zero boundary all around, cell (r,c)
// initialised to ((r*31 + c*17) % 100) / 10.0. After <iters> Jacobi
// sweeps each node prints the sum of its strip ("grid_node i: sum
// <value>"); the global sum is the sum over nodes.
#include <cmath>
#include <cstring>

#include "apps/apps.h"
#include "apps/apps_util.h"
#include "util/bytes.h"

namespace dpm::apps {

using kernel::Fd;
using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

namespace {

double initial_cell(std::int64_t r, std::int64_t c) {
  return static_cast<double>((r * 31 + c * 17) % 100) / 10.0;
}

util::Bytes pack_row(const std::vector<double>& row) {
  util::BinaryWriter w;
  for (double v : row) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    w.u64(bits);
  }
  return w.take();
}

bool unpack_row(const util::Bytes& data, std::vector<double>* row) {
  if (data.size() != row->size() * 8) return false;
  util::BinaryReader r(data);
  for (double& v : *row) {
    auto bits = r.u64();
    if (!bits) return false;
    std::memcpy(&v, &*bits, sizeof v);
  }
  return true;
}

}  // namespace

kernel::ProcessMain make_grid_node(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto index = arg_int(argv, 1, 0);
    const auto n = arg_int(argv, 2, 1);
    const auto iters = arg_int(argv, 3, 4);
    const auto rows = arg_int(argv, 4, 12);
    const auto cols = arg_int(argv, 5, 8);
    const auto base_port = static_cast<net::Port>(arg_int(argv, 6, 8400));
    std::vector<std::string> hosts;
    for (std::size_t i = 7; i < argv.size(); ++i) hosts.push_back(argv[i]);
    if (n < 1 || static_cast<std::int64_t>(hosts.size()) != n || index >= n ||
        rows < n || cols < 1) {
      (void)sys.print("grid_node: bad arguments\n");
      sys.exit(1);
    }

    // This node's strip of global rows [lo, hi).
    const std::int64_t lo = index * rows / n;
    const std::int64_t hi = (index + 1) * rows / n;
    const auto strip = static_cast<std::size_t>(hi - lo);
    const auto width = static_cast<std::size_t>(cols);
    std::vector<std::vector<double>> grid(strip, std::vector<double>(width));
    for (std::size_t r = 0; r < strip; ++r) {
      for (std::size_t c = 0; c < width; ++c) {
        grid[r][c] = initial_cell(lo + static_cast<std::int64_t>(r),
                                  static_cast<std::int64_t>(c));
      }
    }

    // One stream connection per adjacent pair: node i accepts from i-1
    // and connects to i+1 (streams are bidirectional).
    Fd left = -1, right = -1;
    Fd ls = -1;
    if (index > 0) {
      auto l = sys.socket(SockDomain::internet, SockType::stream);
      if (!l || !sys.bind_port(*l, static_cast<net::Port>(base_port + index)) ||
          !sys.listen(*l, 2)) {
        sys.exit(1);
      }
      ls = *l;
    }
    if (index < n - 1) {
      auto r = connect_retry(sys, hosts[static_cast<std::size_t>(index + 1)],
                             static_cast<net::Port>(base_port + index + 1));
      if (!r) sys.exit(1);
      right = *r;
    }
    if (index > 0) {
      auto conn = sys.accept(ls);
      if (!conn) sys.exit(1);
      left = *conn;
      (void)sys.close(ls);
    }

    std::vector<double> ghost_up(width, 0.0), ghost_down(width, 0.0);
    for (std::int64_t it = 0; it < iters; ++it) {
      // Exchange boundary rows with the neighbours.
      if (left >= 0 && !sys.send(left, pack_row(grid.front()))) sys.exit(1);
      if (right >= 0 && !sys.send(right, pack_row(grid.back()))) sys.exit(1);
      if (left >= 0) {
        auto data = sys.recv_exact(left, width * 8);
        if (!data || !unpack_row(*data, &ghost_up)) sys.exit(1);
      } else {
        std::fill(ghost_up.begin(), ghost_up.end(), 0.0);
      }
      if (right >= 0) {
        auto data = sys.recv_exact(right, width * 8);
        if (!data || !unpack_row(*data, &ghost_down)) sys.exit(1);
      } else {
        std::fill(ghost_down.begin(), ghost_down.end(), 0.0);
      }

      // Jacobi sweep with zero outer boundary.
      std::vector<std::vector<double>> next = grid;
      for (std::size_t r = 0; r < strip; ++r) {
        const std::vector<double>& up = r == 0 ? ghost_up : grid[r - 1];
        const std::vector<double>& down =
            r == strip - 1 ? ghost_down : grid[r + 1];
        for (std::size_t c = 0; c < width; ++c) {
          const double lft = c == 0 ? 0.0 : grid[r][c - 1];
          const double rgt = c == width - 1 ? 0.0 : grid[r][c + 1];
          next[r][c] = 0.25 * (up[c] + down[c] + lft + rgt);
        }
      }
      grid.swap(next);
      // The sweep costs CPU proportional to the strip size.
      sys.compute(util::usec(static_cast<std::int64_t>(strip * width) * 2));
    }

    double sum = 0.0;
    for (const auto& row : grid) {
      for (double v : row) sum += v;
    }
    if (left >= 0) (void)sys.close(left);
    if (right >= 0) (void)sys.close(right);
    (void)sys.print(util::strprintf("grid_node %lld: sum %.6f\n",
                                    static_cast<long long>(index), sum));
    sys.exit(0);
  };
}

}  // namespace dpm::apps
