#include "filter/templates.h"

#include <cstring>

#include "util/strings.h"

namespace dpm::filter {

std::string_view cmp_op_text(CmpOp op) {
  switch (op) {
    case CmpOp::eq: return "=";
    case CmpOp::ne: return "!=";
    case CmpOp::lt: return "<";
    case CmpOp::gt: return ">";
    case CmpOp::le: return "<=";
    case CmpOp::ge: return ">=";
  }
  return "?";
}

namespace {

/// Finds the comparison operator in a clause token; two-character
/// operators are matched first.
bool split_clause(const std::string& tok, std::string* field, CmpOp* op,
                  std::string* value) {
  struct OpText {
    const char* text;
    CmpOp op;
  };
  static constexpr OpText kOps[] = {
      {">=", CmpOp::ge}, {"<=", CmpOp::le}, {"!=", CmpOp::ne},
      {">", CmpOp::gt},  {"<", CmpOp::lt},  {"=", CmpOp::eq},
  };
  for (const auto& o : kOps) {
    auto pos = tok.find(o.text);
    if (pos != std::string::npos && pos > 0) {
      *field = std::string(util::trim(tok.substr(0, pos)));
      *value = std::string(util::trim(tok.substr(pos + std::strlen(o.text))));
      *op = o.op;
      return !field->empty() && !value->empty();
    }
  }
  return false;
}

std::string strip_comment(const std::string& line) {
  auto pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

std::optional<Templates> Templates::parse(const std::string& text,
                                          std::string* error) {
  Templates out;
  int lineno = 0;
  for (const auto& raw_line : util::split_keep_empty(text, '\n')) {
    ++lineno;
    std::string line{util::trim(strip_comment(raw_line))};
    if (line.empty() || line[0] == '#') continue;  // comment lines only;
    // note: '#' *inside* a clause is the discard marker, '#' at line start
    // is a comment.

    Rule rule;
    for (const auto& part : util::split(line, ",")) {
      const std::string tok{util::trim(part)};
      if (tok.empty()) continue;
      Clause c;
      std::string value;
      if (!split_clause(tok, &c.field, &c.op, &value)) {
        if (error) {
          *error = util::strprintf("line %d: bad clause '%s'", lineno, tok.c_str());
        }
        return std::nullopt;
      }
      if (!value.empty() && value[0] == '#') {
        c.discard = true;
        value.erase(0, 1);
        if (value.empty()) {
          if (error) *error = util::strprintf("line %d: '#' without value", lineno);
          return std::nullopt;
        }
      }
      if (value == "*") {
        // '*' only asserts the field's presence, so a comparison other
        // than '=' has no meaning — reject it instead of silently
        // accepting every record ("field != *" used to do exactly that).
        if (c.op != CmpOp::eq) {
          if (error) {
            *error = util::strprintf(
                "line %d: wildcard '*' requires '=' (got '%s')", lineno,
                std::string(cmp_op_text(c.op)).c_str());
          }
          return std::nullopt;
        }
        c.wildcard = true;
      } else {
        c.value = value;
      }
      rule.clauses.push_back(std::move(c));
    }
    if (!rule.clauses.empty()) out.rules_.push_back(std::move(rule));
  }
  return out;
}

bool Templates::clause_matches(const Clause& c, const Record& rec) {
  const FieldValue* lhs = rec.find(c.field);
  if (!lhs) return false;
  if (c.wildcard) return true;

  // Resolve the right-hand side: a field reference when the record has a
  // field of that name (sockName=peerName), otherwise a literal.
  FieldValue rhs_storage;
  const FieldValue* rhs = rec.find(c.value);
  if (!rhs) {
    if (auto n = util::parse_int(c.value)) {
      rhs_storage = *n;
    } else {
      rhs_storage = c.value;
    }
    rhs = &rhs_storage;
  }

  const auto ln = field_value_num(*lhs);
  const auto rn = field_value_num(*rhs);
  int cmp;
  if (ln && rn) {
    cmp = (*ln < *rn) ? -1 : (*ln > *rn) ? 1 : 0;
  } else {
    const std::string ls = field_value_text(*lhs);
    const std::string rs = field_value_text(*rhs);
    cmp = ls.compare(rs);
    cmp = cmp < 0 ? -1 : cmp > 0 ? 1 : 0;
  }
  switch (c.op) {
    case CmpOp::eq: return cmp == 0;
    case CmpOp::ne: return cmp != 0;
    case CmpOp::lt: return cmp < 0;
    case CmpOp::gt: return cmp > 0;
    case CmpOp::le: return cmp <= 0;
    case CmpOp::ge: return cmp >= 0;
  }
  return false;
}

bool Templates::clause_matches_view(const Clause& c, const RecordView& v,
                                    const Descriptions& desc) {
  const auto lhs = desc.wire_field(v, c.field);
  if (!lhs) return false;
  if (c.wildcard) return true;

  // Same RHS tie-break as clause_matches: a field reference when the
  // record's type carries a field of that name, otherwise a literal.
  int cmp;
  if (const auto rhs = desc.wire_field(v, c.value)) {
    cmp = field_view_cmp(*lhs, *rhs);
  } else if (auto n = util::parse_int(c.value)) {
    const auto ln = field_view_num(*lhs);
    if (ln) {
      cmp = (*ln < *n) ? -1 : (*ln > *n) ? 1 : 0;
    } else {
      // Non-numeric lhs against a numeric literal falls back to text,
      // comparing against the *parsed* value's rendering (as evaluate()
      // does via field_value_text).
      cmp = field_view_text_cmp(*lhs, field_value_text(FieldValue{*n}));
    }
  } else {
    cmp = field_view_text_cmp(*lhs, c.value);
  }
  switch (c.op) {
    case CmpOp::eq: return cmp == 0;
    case CmpOp::ne: return cmp != 0;
    case CmpOp::lt: return cmp < 0;
    case CmpOp::gt: return cmp > 0;
    case CmpOp::le: return cmp <= 0;
    case CmpOp::ge: return cmp >= 0;
  }
  return false;
}

Templates::Decision Templates::evaluate_view(const RecordView& v,
                                             const Descriptions& desc) const {
  Decision d;
  if (rules_.empty()) {
    d.accept = true;
    return d;
  }
  for (const Rule& rule : rules_) {
    bool all = true;
    for (const Clause& c : rule.clauses) {
      if (!clause_matches_view(c, v, desc)) {
        all = false;
        break;
      }
    }
    if (all) {
      d.accept = true;
      for (const Clause& c : rule.clauses) {
        if (c.discard) d.discard.insert(c.field);
      }
      return d;
    }
  }
  return d;
}

Templates::Decision Templates::evaluate(const Record& rec) const {
  Decision d;
  if (rules_.empty()) {
    d.accept = true;  // no rules: save everything
    return d;
  }
  for (const Rule& rule : rules_) {
    bool all = true;
    for (const Clause& c : rule.clauses) {
      if (!clause_matches(c, rec)) {
        all = false;
        break;
      }
    }
    if (all) {
      d.accept = true;
      for (const Clause& c : rule.clauses) {
        if (c.discard) d.discard.insert(c.field);
      }
      return d;  // first matching rule decides the edits
    }
  }
  return d;
}

const std::string& default_templates_text() {
  static const std::string text =
      "# Default selection rules: no rules — every event record is saved.\n"
      "# Rule syntax (one per line): field OP value, field OP value, ...\n"
      "# Ops: > < = != >= <= ; '*' matches anything; a '#' prefix on a\n"
      "# value discards that field from saved records (paper Figs 3.3/3.4).\n";
  return text;
}

}  // namespace dpm::filter
