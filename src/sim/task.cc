#include "sim/task.h"

#include <cassert>

#include "util/logging.h"

namespace dpm::sim {

Task::Task(std::string name) : name_(std::move(name)) {}

Task::~Task() {
  // The executive is responsible for aborting and draining tasks before
  // destruction; this is a backstop for abnormal teardown.
  if (thread_.joinable()) {
    if (!finished_) {
      request_abort();
      while (!finished_) resume();
    }
    thread_.join();
  }
}

void Task::start(Body body) {
  assert(!started_);
  started_ = true;
  body_ = std::move(body);
  thread_ = std::thread([this] {
    task_side_wait_for_turn();
    if (!abort_) {
      try {
        body_();
      } catch (const TaskAborted&) {
        // Normal forced-unwind path.
      }
    }
    std::unique_lock lk(mu_);
    finished_ = true;
    turn_ = Turn::executive;
    cv_.notify_all();
  });
}

void Task::reap() {
  if (finished_ && thread_.joinable()) thread_.join();
}

void Task::resume() {
  assert(started_ && !finished_);
  std::unique_lock lk(mu_);
  turn_ = Turn::task;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::executive; });
}

void Task::park() {
  {
    std::unique_lock lk(mu_);
    turn_ = Turn::executive;
    cv_.notify_all();
    cv_.wait(lk, [this] { return turn_ == Turn::task; });
  }
  if (abort_) throw TaskAborted{};
}

void Task::request_abort() { abort_ = true; }

void Task::task_side_wait_for_turn() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return turn_ == Turn::task; });
}

}  // namespace dpm::sim
