// Socket lifecycle and stream delivery (World methods).
//
// Sockets are never deallocated during a run: destruction marks the object
// closed ("zombie"), releases its names, drains its queues and wakes every
// waiter. This guarantees that syscall code blocked on a socket can safely
// re-examine it after waking, with no dangling references.
#include "kernel/socket.h"

#include <cassert>

#include "kernel/world.h"
#include "util/logging.h"

namespace dpm::kernel {

SocketId World::create_socket(MachineId m, SockDomain domain, SockType type) {
  const SocketId id = next_socket_++;
  sockets_[id] = std::make_unique<Socket>(id, m, domain, type);
  return id;
}

Socket* World::find_socket(SocketId id) {
  auto it = sockets_.find(id);
  if (it == sockets_.end()) return nullptr;
  if (it->second->sstate == Socket::StreamState::closed &&
      it->second->refs == 0) {
    return nullptr;  // destroyed; object kept only for parked waiters
  }
  return it->second.get();
}

Socket& World::socket(SocketId id) {
  auto it = sockets_.find(id);
  assert(it != sockets_.end());
  return *it->second;
}

void World::socket_ref(SocketId id) {
  if (id == 0) return;
  Socket* s = find_socket(id);
  assert(s);
  ++s->refs;
}

void World::socket_unref(SocketId id) {
  if (id == 0) return;
  auto it = sockets_.find(id);
  assert(it != sockets_.end());
  Socket& s = *it->second;
  assert(s.refs > 0);
  if (--s.refs == 0) destroy_socket(id);
}

void World::destroy_socket(SocketId id) {
  Socket& s = socket(id);

  // Release name bindings.
  Machine& m = machine(s.machine);
  if (s.bound) {
    if (s.name.family == net::Family::internet) {
      auto it = m.inet_bound.find(s.name.port);
      if (it != m.inet_bound.end() && it->second == id) m.inet_bound.erase(it);
    } else if (s.name.family == net::Family::unix_path) {
      auto it = m.unix_bound.find(s.name.path);
      if (it != m.unix_bound.end() && it->second == id) m.unix_bound.erase(it);
    }
  }

  // A dying listener destroys its queued, not-yet-accepted connections.
  for (SocketId conn_id : s.accept_queue) {
    Socket* conn = find_socket(conn_id);
    if (conn && conn->refs == 0) {
      close_stream(*conn);
      conn->sstate = Socket::StreamState::closed;
      conn->readers.wake_all(exec_);
      conn->writers.wake_all(exec_);
    }
  }
  s.accept_queue.clear();

  if (s.sstate == Socket::StreamState::connected) close_stream(s);
  s.sstate = Socket::StreamState::closed;
  if (s.is_meter_conn && !s.rbuf.empty()) {
    // Undelivered meter bytes die with the socket. Frame them the way the
    // filter would have: a partial record at the tail is a truncated
    // record the monitor lost, and the loss is counted, not silent.
    std::size_t pos = 0;
    const std::size_t n = s.rbuf.size();
    while (n - pos >= 4) {
      const std::uint32_t size =
          static_cast<std::uint32_t>(s.rbuf[pos]) |
          static_cast<std::uint32_t>(s.rbuf[pos + 1]) << 8 |
          static_cast<std::uint32_t>(s.rbuf[pos + 2]) << 16 |
          static_cast<std::uint32_t>(s.rbuf[pos + 3]) << 24;
      if (size < 4 || n - pos < size) break;  // cut-short (or garbage) tail
      pos += size;
    }
    if (pos < n) mobs_.malformed_records->add(1);
  }
  mobs_.rbuf_bytes->sub(static_cast<std::int64_t>(s.rbuf.size()));
  s.rbuf.clear();
  s.dgrams.clear();
  s.readers.wake_all(exec_);
  s.writers.wake_all(exec_);
  s.connectors.wake_all(exec_);
}

void World::close_stream(Socket& s) {
  if (s.sstate != Socket::StreamState::connected || s.peer == 0) return;
  const SocketId peer_id = s.peer;
  Socket* peer = find_socket(peer_id);
  s.sstate = Socket::StreamState::closed;
  s.peer = 0;
  if (!peer) return;
  // EOF must arrive after any data still in flight: ship it on the same
  // ordered channel.
  const bool local = peer->machine == s.machine;
  fabric_.send(s.net_hint, local, s.tx_channel, /*droppable=*/false, 1,
               [this, peer_id] { deliver_eof(peer_id); });
}

void World::kernel_stream_send(SocketId from, util::Bytes data) {
  Socket* s = find_socket(from);
  // Appendix C: "Meter messages are lost if they are sent on an
  // unconnected socket."
  if (!s || s->sstate != Socket::StreamState::connected || s->peer == 0) return;
  Socket* peer = find_socket(s->peer);
  if (!peer) return;
  const SocketId peer_id = peer->id;
  const bool local = peer->machine == s->machine;
  const std::size_t n = data.size();
  fabric_.send(s->net_hint, local, s->tx_channel, /*droppable=*/false, n,
               [this, peer_id, data = std::move(data)]() mutable {
                 deliver_stream(peer_id, std::move(data), /*accounted=*/false);
               });
}

void World::deliver_stream(SocketId to, util::Bytes data, bool accounted) {
  auto it = sockets_.find(to);
  if (it == sockets_.end()) return;
  Socket& s = *it->second;
  if (accounted) {
    assert(s.in_flight >= data.size());
    s.in_flight -= data.size();
  }
  if (s.sstate == Socket::StreamState::closed && s.refs == 0) return;
  s.rbuf.insert(s.rbuf.end(), data.begin(), data.end());
  mobs_.rbuf_bytes->add(static_cast<std::int64_t>(data.size()));
  s.readers.wake_all(exec_);
}

void World::deliver_eof(SocketId to) {
  auto it = sockets_.find(to);
  if (it == sockets_.end()) return;
  Socket& s = *it->second;
  s.eof = true;
  s.readers.wake_all(exec_);
  s.writers.wake_all(exec_);
}

}  // namespace dpm::kernel
