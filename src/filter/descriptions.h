// Event record descriptions (Fig 3.2).
//
// "The event record descriptions define the message formats. These
// descriptions are stored in a file with there being a description for
// each type of event. A description is a list of fields within an event
// record. ... Since the meter creates these messages, such definitions are
// very important for establishing a successful protocol between the meter
// and a filter."
//
// File grammar (one description per line; '#'-to-end-of-line comments):
//
//   HEADER size machine cpuTime procTime traceType
//   SEND 1, pid,0,4,10 pc,4,4,10 sock,8,8,10 msgLength,16,4,10 ...
//
// An event line is: NAME <type-number>, then fields as
// fieldName,offset,length,base. Offsets are relative to the start of the
// record *body* (the header layout is fixed and named by the HEADER line).
// length 1/2/4/8 with base 10 or 16 denotes a little-endian integer.
// length 0 with base 0 denotes a counted string: its byte count is the
// value of the earlier "<fieldName>Len" field, and consecutive string
// fields are laid out one after another starting at the first string
// field's offset.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.h"

namespace dpm::filter {

using FieldValue = std::variant<std::int64_t, std::string>;

std::string field_value_text(const FieldValue& v);

/// Numeric view of a value, when it has one (strings that parse as decimal
/// integers count, so internet names compare numerically — Fig 3.3).
std::optional<std::int64_t> field_value_num(const FieldValue& v);

/// Non-owning view of one framed wire record (header + body). The view
/// borrows the batch buffer it was framed from: it is valid only until
/// that buffer is next modified (the wire-view invariant, DESIGN.md §5).
struct RecordView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::uint32_t type = 0;  // traceType, decoded from the fixed header
};

/// Frames a view over `size` bytes of one record; nullopt if the bytes are
/// too short for a header or the size word disagrees with `size`.
std::optional<RecordView> make_record_view(const std::uint8_t* data,
                                           std::size_t size);

/// One field extracted from a RecordView without copying: integers decode
/// to int64 (sign-extended, like Descriptions::decode), counted strings
/// become views into the record's bytes.
using FieldView = std::variant<std::int64_t, std::string_view>;

/// Mirrors field_value_num: ints are numeric; strings are numeric when
/// they parse as decimal integers.
std::optional<std::int64_t> field_view_num(const FieldView& v);

/// Three-way textual comparison against `rhs_text`, rendering an integer
/// lhs into a stack buffer (no allocation). Matches the rendering of
/// field_value_text. Returns -1/0/1.
int field_view_text_cmp(const FieldView& lhs, std::string_view rhs_text);

/// Three-way comparison with the template-matching semantics: numeric when
/// both sides have a numeric view, textual otherwise. Returns -1/0/1.
int field_view_cmp(const FieldView& lhs, const FieldView& rhs);

struct FieldDesc {
  std::string name;
  std::size_t offset = 0;  // within the record body
  std::size_t length = 0;  // 0 = counted string
  int base = 10;           // display/compare base; 0 = string
};

struct EventDesc {
  std::string name;          // "SEND"
  std::uint32_t type = 0;    // traceType value
  std::vector<FieldDesc> fields;
};

/// Field locators for one event type, resolved once from its description:
/// lets the filter read individual fields straight off the wire (and
/// bounds-validate a whole record) without materializing a Record. Field
/// indices match Descriptions::record_layout / Record::fields order.
class WirePlan {
 public:
  /// False when the description cannot be view-decoded (a counted string
  /// with no earlier "<name>Len" field, or more string fields than
  /// kMaxStringFields); callers must fall back to the owned decode path.
  bool viewable() const { return viewable_; }
  std::size_t field_count() const { return fields_.size(); }
  const std::vector<std::string>& field_names() const { return names_; }
  /// Pre-rendered " <name>=" fragment per layout field: the trace renderer
  /// appends one string per field instead of three.
  const std::vector<std::string>& name_eq() const { return name_eq_; }

  /// Counted strings are resolved with a bounded stack scratchpad; plans
  /// with more string fields fall back to owned decoding. Callers that
  /// share a scratch across validate/evaluate/extract size it with this.
  static constexpr std::size_t kMaxStringFields = 16;
  /// The described event's name ("SEND"); empty for a default-constructed
  /// plan (an undescribed type).
  const std::string& event_name() const { return event_name_; }

  /// Index of `name` in the layout, or npos. Mirrors Record::find: the
  /// first field with that name wins.
  std::size_t index_of(std::string_view name) const;

  /// Absolute wire offset/width of layout field `i` when it is a
  /// fixed-width integer; nullopt for counted strings and out-of-range
  /// indices. Lets the bytecode compiler burn offsets into instructions so
  /// integer compares read the wire directly.
  struct IntLoc {
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  std::optional<IntLoc> int_loc(std::size_t i) const {
    if (i >= fields_.size() || fields_[i].length == 0) return std::nullopt;
    return IntLoc{fields_[i].offset, fields_[i].length};
  }

  /// Extracts layout field `i`; nullopt when the record is too short or a
  /// string length is inconsistent (exactly when decode() would fail).
  /// `strings` (when non-null) is a scratch previously filled by the
  /// validating overload of validate() for this same record — string
  /// fields then read straight from it instead of re-walking the record.
  std::optional<FieldView> field(const RecordView& v, std::size_t i,
                                 const std::string_view* strings = nullptr) const;

  /// Extracts every layout field of `v` in one pass into `out` (at least
  /// `cap` slots, indexed like field_names()). The single-pass form the
  /// view-direct trace renderer uses: strings are resolved once instead of
  /// once per field (or reused from `strings`, as in field()). False
  /// (nothing written) when the plan is not viewable, `cap` is too small,
  /// or the record is malformed — exactly when the caller must fall back
  /// to the owned decode.
  bool extract(const RecordView& v, FieldView* out, std::size_t cap,
               const std::string_view* strings = nullptr) const;

  /// Bounds-validates every described field of `v` without extracting
  /// strings; true exactly when Descriptions::decode would succeed.
  bool validate(const RecordView& v) const;

  /// Same verdict, and on success leaves the record's resolved string
  /// views in `strings` (at least kMaxStringFields slots) for reuse by
  /// field()/extract() on this same record — the strings are walked once
  /// per record instead of once per consumer.
  bool validate(const RecordView& v, std::string_view* strings) const;

 private:
  friend class Descriptions;
  static WirePlan build(const EventDesc& desc);

  struct Loc {
    std::size_t offset = 0;    // absolute within the record (ints only)
    std::size_t length = 0;    // integer width; 0 = counted string
    int ordinal = -1;          // position among the type's string fields
    std::size_t len_field = 0; // layout index of the "<name>Len" field
  };
  /// Computes the views of string ordinals [0, k]; false on bounds errors.
  bool string_views(const RecordView& v, int k, std::string_view* out) const;

  bool viewable_ = false;
  std::string event_name_;            // description name, for trace rendering
  std::vector<Loc> fields_;           // layout order: 5 header fields + body
  std::vector<std::string> names_;    // layout order, same indexing
  std::vector<std::string> name_eq_;  // " <name>=", same indexing
  std::size_t fixed_end_ = 0;         // max offset+length over integer fields
  std::size_t string_base_ = 0;       // absolute offset of the first string byte
  std::vector<std::size_t> strings_;  // layout indices of string fields, in order
};

/// A decoded event record: ordered (name, value) pairs, header fields
/// first. Field order matters for the trace file rendering.
struct Record {
  std::uint32_t type = 0;
  std::string event_name;
  std::vector<std::pair<std::string, FieldValue>> fields;

  const FieldValue* find(const std::string& name) const;
  std::optional<std::int64_t> num(const std::string& name) const;
  std::optional<std::string> text(const std::string& name) const;
};

class Descriptions {
 public:
  /// Parses a description file; returns nullopt and fills `error` on
  /// malformed input.
  static std::optional<Descriptions> parse(const std::string& text,
                                           std::string* error = nullptr);

  const EventDesc* by_type(std::uint32_t type) const;
  const EventDesc* by_name(const std::string& name) const;
  std::size_t size() const { return by_type_.size(); }

  /// All described traceType values, ascending.
  std::vector<std::uint32_t> types() const;

  /// Field names of a decoded record of `type`, in Record::fields order:
  /// the fixed header fields first, then the described body fields. Empty
  /// when the type is not described. This is the layout the template
  /// compiler resolves field indices against.
  std::vector<std::string> record_layout(std::uint32_t type) const;

  /// Decodes one complete raw meter message (header + body). Returns
  /// nullopt if the record is malformed or its type is not described.
  std::optional<Record> decode(const util::Bytes& raw) const;
  std::optional<Record> decode(const std::uint8_t* raw, std::size_t size) const;

  /// The resolved wire plan for `type`; nullptr when undescribed.
  const WirePlan* wire_plan(std::uint32_t type) const;

  /// Extracts the named field from a wire record via the type's plan;
  /// nullopt when the type is undescribed / not viewable, the field is
  /// absent, or the record is malformed. The interpreted template fallback
  /// matches through this.
  std::optional<FieldView> wire_field(const RecordView& v,
                                      std::string_view name) const;

 private:
  /// Plans for small type numbers live in a dense vector so the per-record
  /// lookup on the filter hot path is one bounds check and an index, not a
  /// map walk. Unreasonably large type numbers (nothing standard) overflow
  /// into the map. An undescribed slot holds a default (non-viewable)
  /// plan, which every caller treats the same as "no plan".
  static constexpr std::uint32_t kPlanCacheMax = 4096;

  std::map<std::uint32_t, EventDesc> by_type_;
  std::vector<WirePlan> plan_cache_;      // indexed by type, types < kPlanCacheMax
  std::map<std::uint32_t, WirePlan> plans_;  // types >= kPlanCacheMax
  std::vector<std::string> header_fields_;
};

/// The standard description file installed on every machine (describes all
/// ten meter event types in this kernel's wire layout).
const std::string& default_descriptions_text();

}  // namespace dpm::filter
