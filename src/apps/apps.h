// Application programs that run inside the simulated 4.2BSD world.
//
// These are the measured computations: the monitor's tests, examples and
// benchmarks create jobs from them. Each program is a ProcessMain factory
// taking exec-style argv (argv[0] is the executable path).
//
//   hello           [text]                    print and exit
//   pingpong_server <port> <rounds>           stream echo partner
//   pingpong_client <host> <port> <rounds> <bytes> [compute_us]
//   dgram_sink      <port> [quiet_ms]         drain datagrams until quiet
//   dgram_sender    <host> <port> <count> <bytes>
//   echo_server     <port> [max]              datagram echo (acquirable)
//   echo_client     <host> <port> <count> <bytes>
//   ring_node       <index> <n> <rounds> <baseport> <host0> ... <hostN-1>
//   grid_node       <index> <n> <iters> <rows> <cols> <baseport> <host...>
//   pipe_source     <host> <port> <items> <bytes>
//   pipe_stage      <inport> <outhost> <outport> [compute_us]
//   pipe_sink       <inport>
//   tsp_master      <port> <workers> <cities> <seed>
//   tsp_worker      <masterhost> <port> [cost_per_node_ns]
#pragma once

#include <string>
#include <vector>

#include "kernel/exec_registry.h"
#include "kernel/world.h"

namespace dpm::apps {

kernel::ProcessMain make_hello(const std::vector<std::string>& argv);
kernel::ProcessMain make_pingpong_server(const std::vector<std::string>& argv);
kernel::ProcessMain make_pingpong_client(const std::vector<std::string>& argv);
kernel::ProcessMain make_dgram_sink(const std::vector<std::string>& argv);
kernel::ProcessMain make_dgram_sender(const std::vector<std::string>& argv);
/// Datagram burst with a size pattern: every Nth datagram is large, the
/// rest small — the scale bench's selectivity knob.
kernel::ProcessMain make_burst_sender(const std::vector<std::string>& argv);
/// Parks forever (timeout-less select); alive until killed, zero events.
kernel::ProcessMain make_waiter(const std::vector<std::string>& argv);
kernel::ProcessMain make_echo_server(const std::vector<std::string>& argv);
kernel::ProcessMain make_echo_client(const std::vector<std::string>& argv);
kernel::ProcessMain make_ring_node(const std::vector<std::string>& argv);
kernel::ProcessMain make_grid_node(const std::vector<std::string>& argv);
kernel::ProcessMain make_pipe_source(const std::vector<std::string>& argv);
kernel::ProcessMain make_pipe_stage(const std::vector<std::string>& argv);
kernel::ProcessMain make_pipe_sink(const std::vector<std::string>& argv);
kernel::ProcessMain make_tsp_master(const std::vector<std::string>& argv);
kernel::ProcessMain make_tsp_worker(const std::vector<std::string>& argv);

/// Registers every application program under its name above.
void register_all(kernel::ExecRegistry& registry);

/// Installs executable files for all programs on every machine.
void install_everywhere(kernel::World& world);

}  // namespace dpm::apps
