file(REMOVE_RECURSE
  "CMakeFiles/filter_test.dir/filter/descriptions_test.cc.o"
  "CMakeFiles/filter_test.dir/filter/descriptions_test.cc.o.d"
  "CMakeFiles/filter_test.dir/filter/engine_test.cc.o"
  "CMakeFiles/filter_test.dir/filter/engine_test.cc.o.d"
  "CMakeFiles/filter_test.dir/filter/templates_test.cc.o"
  "CMakeFiles/filter_test.dir/filter/templates_test.cc.o.d"
  "CMakeFiles/filter_test.dir/filter/trace_test.cc.o"
  "CMakeFiles/filter_test.dir/filter/trace_test.cc.o.d"
  "filter_test"
  "filter_test.pdb"
  "filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
