#include "util/bytes.h"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace dpm::util {

std::uint8_t* BinaryWriter::grow_overflow(std::size_t n) {
  // Span overflow: fail safe into a discard buffer. fixed_pos_ keeps
  // advancing so size() reports the capacity the encode needed.
  overflow_ = true;
  fixed_pos_ += n;
  if (own_.size() < n) own_.resize(n);
  return own_.data();
}

void BinaryWriter::fixed_string(std::string_view s, std::size_t width) {
  const std::size_t n = s.size() < width ? s.size() : width;
  std::uint8_t* p = grow(width);
  if (n != 0) std::memcpy(p, s.data(), n);
  std::memset(p + n, 0, width - n);
}

void BinaryWriter::patch_u32(std::size_t at, std::uint32_t v) {
  if (fixed_ != nullptr) {
    if (overflow_ || at + 4 > fixed_pos_ || at + 4 > fixed_cap_) return;
    for (int i = 0; i < 4; ++i) {
      fixed_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
    return;
  }
  for (int i = 0; i < 4; ++i) {
    out_->at(base_ + at + i) = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

Bytes BinaryWriter::take() {
  assert(out_ == &own_ && fixed_ == nullptr &&
         "take() is only valid for an owned buffer");
  return std::move(own_);
}

bool BinaryReader::need(std::size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> BinaryReader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> BinaryReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> BinaryReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> BinaryReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::optional<std::int32_t> BinaryReader::i32() {
  auto v = u32();
  if (!v) return std::nullopt;
  return static_cast<std::int32_t>(*v);
}

std::optional<std::int64_t> BinaryReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<Bytes> BinaryReader::raw(std::size_t n) {
  if (!need(n)) return std::nullopt;
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

std::optional<std::string> BinaryReader::lstring() {
  auto n = u32();
  if (!n || !need(*n)) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *n);
  pos_ += *n;
  return s;
}

std::optional<std::string> BinaryReader::fixed_string(std::size_t width) {
  if (!need(width)) return std::nullopt;
  std::size_t len = width;
  while (len > 0 && data_[pos_ + len - 1] == 0) --len;
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += width;
  return s;
}

void BinaryReader::skip(std::size_t n) {
  if (need(n)) pos_ += n;
}

std::string hex_dump(const Bytes& b, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  char buf[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, "%02x", b[i]);
    if (i) out.push_back(' ');
    out += buf;
  }
  if (n < b.size()) out += " ...";
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

std::string to_string(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace dpm::util
