// A machine: CPU, clock, network interfaces, kernel state, filesystem.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "kernel/file_system.h"
#include "kernel/process.h"
#include "kernel/types.h"
#include "net/address.h"
#include "net/hosts.h"
#include "sim/clock.h"

namespace dpm::kernel {

class Machine {
 public:
  Machine(MachineId id, std::uint16_t index, std::string name,
          sim::MachineClock clock, std::vector<net::Interface> interfaces)
      : id(id), index(index), name(std::move(name)), clock(clock),
        interfaces(std::move(interfaces)) {}

  MachineId id;
  std::uint16_t index;  // compact id carried in meter headers
  std::string name;     // literal host name (what processes exchange, §3.5.4)
  sim::MachineClock clock;
  std::vector<net::Interface> interfaces;

  /// False while crashed (World::crash_machine): every process is dead,
  /// inbound SYNs and datagrams are lost, spawns fail.
  bool up = true;

  FileSystem fs;

  /// Name bindings for sockets on this machine.
  std::map<net::Port, SocketId> inet_bound;
  std::map<std::string, SocketId> unix_bound;
  net::Port next_port = 1024;

  /// Local process table; pids are meaningful only here (§3.5.1).
  std::map<Pid, std::shared_ptr<Process>> procs;
  Pid next_pid = 100;

  /// Non-preemptive FIFO CPU: the time until which the CPU is booked.
  util::TimePoint cpu_free_at{};

  /// User accounts; creating a process requires one (§3.5.5).
  std::set<Uid> accounts{kSuperUser};

  bool primary_interface(net::Interface* out) const {
    if (interfaces.empty()) return false;
    if (out) *out = interfaces.front();
    return true;
  }
};

}  // namespace dpm::kernel
