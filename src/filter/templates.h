// Selection rules / templates (Figs 3.3 and 3.4).
//
// "The selection rules are stored in another file and are used to select
// and edit event records. ... The conditions that may be used to specify
// selection criteria in a template are >, <, =, !=, >= and <=. ... A
// wildcard value which matches any value may be specified ('*'). To
// reduce the size of the data which is saved in the trace file, any field
// value may be prefixed with the discard character '#'."
//
// One rule per line; a rule is a comma-separated list of clauses
// "field OP value". A record is accepted when ANY rule matches (all of
// its clauses hold); an empty template file accepts everything. The first
// matching rule decides which fields are discarded. A value may be:
//   * a number            machine=5, cpuTime<10000
//   * a wildcard          pid=*        (field must be present; '*' is only
//                         meaningful with '=' — any other operator is a
//                         parse error)
//   * another field name  sockName=peerName
//   * a literal string    destName=/tmp/sock
//
// Field-reference tie-break: a value token that names a field of the
// record being matched is a field reference, and a literal otherwise —
// field references win. The compiled engine (compiled_templates.h)
// resolves this once per event type against the record description, so
// the decision is deterministic per type rather than per record; the
// interpreted path applies the same tie-break against the record itself
// (equivalent for description-decoded records, which always carry every
// described field).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "filter/descriptions.h"

namespace dpm::filter {

enum class CmpOp { eq, ne, lt, gt, le, ge };

std::string_view cmp_op_text(CmpOp op);

struct Clause {
  std::string field;
  CmpOp op = CmpOp::eq;
  bool discard = false;   // '#' prefix on the value
  bool wildcard = false;  // '*' value
  std::string value;      // raw value token (number, literal, or field name)
};

struct Rule {
  std::vector<Clause> clauses;
};

class Templates {
 public:
  /// Parses a template file; nullopt + error message on malformed input.
  static std::optional<Templates> parse(const std::string& text,
                                        std::string* error = nullptr);

  /// An empty rule set (accepts every record, discards nothing).
  Templates() = default;

  struct Decision {
    bool accept = false;
    std::set<std::string> discard;  // fields the matching rule drops
  };

  Decision evaluate(const Record& rec) const;

  /// Evaluates a wire record in place, resolving field names through
  /// `desc`'s wire plans (no Record materialization). Produces the same
  /// decision as evaluate() on the decoded record for any record that
  /// Descriptions::decode accepts.
  Decision evaluate_view(const RecordView& v, const Descriptions& desc) const;

  std::size_t rule_count() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }

 private:
  static bool clause_matches(const Clause& c, const Record& rec);
  static bool clause_matches_view(const Clause& c, const RecordView& v,
                                  const Descriptions& desc);
  std::vector<Rule> rules_;
};

/// The default template file: accept everything (it contains only
/// comments, so the rule set is empty).
const std::string& default_templates_text();

}  // namespace dpm::filter
