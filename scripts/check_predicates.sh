#!/bin/sh
# Regression gate for online global predicate detection.
#
# Re-runs the predicate skew-sweep bench in smoke size and verifies the
# structural guarantees the detector must never lose, whatever the
# timings: a full severity x epsilon grid was produced, definitely never
# escapes possibly in any cell, every severity's verdicts are
# deterministic across a re-run, and the widest epsilon still finds the
# predicate at all. Then replays the `predicates`-labeled ctest suite
# (verdict determinism, chunking invariance, definitely-subset property
# tests). Runs in a scratch directory so the committed
# BENCH_predicates.json is never clobbered.
# Usage: scripts/check_predicates.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"
build="${1:-build}"
bench="$repo/$build/bench"

if [ ! -x "$bench/bench_predicates" ]; then
  echo "check_predicates: $bench/bench_predicates not built" >&2
  exit 1
fi
if [ ! -f "$repo/BENCH_predicates.json" ]; then
  echo "check_predicates: no committed BENCH_predicates.json" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cd "$tmp"

echo "== bench_predicates --smoke (skew sweep, reduced rounds)"
"$bench/bench_predicates" --smoke

fail=0
json=BENCH_predicates.json

severities="$(jq -r '.severities | length' "$json")"
if [ "$severities" -lt 3 ]; then
  echo "check_predicates: only $severities severities (< 3)" >&2
  fail=1
fi

for s in $(jq -r '.severities[].name' "$json"); do
  cells="$(jq -r ".severities[] | select(.name == \"$s\") | .cells | length" \
          "$json")"
  det="$(jq -r ".severities[] | select(.name == \"$s\") | .deterministic" \
        "$json")"
  echo "   $s: $cells epsilon cells, deterministic=$det"
  if [ "$cells" -lt 3 ]; then
    echo "check_predicates: severity $s has $cells cells (< 3)" >&2
    fail=1
  fi
  if [ "$det" != "true" ]; then
    echo "check_predicates: severity $s verdicts not deterministic" >&2
    fail=1
  fi
  # Per cell: definitely stays inside possibly, both as a per-occurrence
  # subset flag and as counts; possibly must fire at the widest epsilon.
  subsets="$(jq -r ".severities[] | select(.name == \"$s\")
                    | .cells[].definitely_subset" "$json")"
  for sub in $subsets; do
    if [ "$sub" != "true" ]; then
      echo "check_predicates: $s has a cell where definitely escaped" \
           "possibly" >&2
      fail=1
    fi
  done
  bad="$(jq -r ".severities[] | select(.name == \"$s\")
               | [.cells[] | select(.definitely.verdicts > .possibly.verdicts)]
               | length" "$json")"
  if [ "$bad" != "0" ]; then
    echo "check_predicates: $s has $bad cells with more definitely than" \
         "possibly verdicts" >&2
    fail=1
  fi
  widest="$(jq -r ".severities[] | select(.name == \"$s\")
                  | .cells | max_by(.epsilon_us) | .possibly.verdicts" "$json")"
  if [ "$widest" -le 0 ]; then
    echo "check_predicates: $s found nothing at its widest epsilon" >&2
    fail=1
  fi
done

echo "== ctest -L predicates (property + smoke suite)"
cd "$repo/$build"
ctest -L predicates --output-on-failure -j 1 || fail=1

exit "$fail"
