// §3.2: "the many versions of write() all correspond to the same meter
// event, as do the varieties of read()." Every send/recv variant produces
// the identical event type and identical record content.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/metermsgs.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

class VariantsTest : public ::testing::Test {
 protected:
  VariantsTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
  }

  /// Runs a metered body and returns the parsed meter messages.
  std::vector<meter::MeterMsg> metered(std::function<void(Sys&)> body) {
    auto collected = std::make_shared<util::Bytes>();
    (void)world_.spawn(machines_[1], "sink", 100, [collected](Sys& sys) {
      auto ls = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 2);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto data = sys.recv(*conn, 65536);
        if (!data.ok() || data->empty()) break;
        collected->insert(collected->end(), data->begin(), data->end());
      }
    });
    (void)world_.spawn(machines_[0], "app", 100, [&, body](Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("green", 4500);
      auto ms = sys.socket(SockDomain::internet, SockType::stream);
      ASSERT_TRUE(sys.connect(*ms, *addr).ok());
      ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                               static_cast<std::int32_t>(meter::M_SEND |
                                                         meter::M_RECEIVE |
                                                         meter::M_RECEIVECALL),
                               *ms)
                      .ok());
      body(sys);
    });
    world_.run();
    std::vector<meter::MeterMsg> out;
    std::size_t pos = 0;
    while (auto m = meter::MeterMsg::parse_stream(*collected, pos)) {
      out.push_back(std::move(*m));
    }
    return out;
  }

  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(VariantsTest, AllWriteVariantsProduceTheSameSendEvent) {
  auto msgs = metered([](Sys& sys) {
    auto pair = sys.socketpair();
    ASSERT_TRUE(pair.ok());
    const util::Bytes data = util::to_bytes("payload!");
    ASSERT_TRUE(sys.send(pair->first, data).ok());
    ASSERT_TRUE(sys.write(pair->first, data).ok());
    ASSERT_TRUE(sys.sendmsg(pair->first, data).ok());
    ASSERT_TRUE(sys.writev(pair->first, {util::to_bytes("payl"),
                                         util::to_bytes("oad!")}).ok());
  });
  std::vector<const meter::MeterSend*> sends;
  for (const auto& m : msgs) {
    if (const auto* s = std::get_if<meter::MeterSend>(&m.body)) sends.push_back(s);
  }
  ASSERT_EQ(sends.size(), 4u);
  for (const auto* s : sends) {
    EXPECT_EQ(s->msg_length, 8u);
    EXPECT_EQ(s->sock, sends[0]->sock);
    EXPECT_TRUE(s->dest_name.empty());
  }
}

TEST_F(VariantsTest, AllReadVariantsProduceTheSameReceiveEvents) {
  auto msgs = metered([](Sys& sys) {
    auto pair = sys.socketpair();
    ASSERT_TRUE(pair.ok());
    ASSERT_TRUE(sys.send(pair->first, "abcdabcdabcd").ok());
    ASSERT_TRUE(sys.recv(pair->second, 4).ok());
    ASSERT_TRUE(sys.read(pair->second, 4).ok());
    ASSERT_TRUE(sys.readv(pair->second, 2).ok());
    ASSERT_TRUE(sys.recvmsg(pair->second, 2).ok());
  });
  int recvcalls = 0, recvs = 0;
  std::uint32_t total = 0;
  for (const auto& m : msgs) {
    if (m.type() == meter::EventType::recvcall) ++recvcalls;
    if (const auto* r = std::get_if<meter::MeterRecv>(&m.body)) {
      ++recvs;
      total += r->msg_length;
    }
  }
  EXPECT_EQ(recvcalls, 4);
  EXPECT_EQ(recvs, 4);
  EXPECT_EQ(total, 12u);
}

}  // namespace
}  // namespace dpm::kernel
