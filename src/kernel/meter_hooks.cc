#include "kernel/meter_hooks.h"

#include <algorithm>

#include "kernel/machine.h"

namespace dpm::kernel {

namespace {

/// Books CPU time for kernel metering work without blocking the process:
/// the machine's CPU is considered busy for `d` longer, and the time is
/// charged to the process (it pays for its own monitoring, as in the
/// paper's real kernel).
void book_cpu(World& world, Machine& m, Process& p, util::Duration d) {
  if (d.count() <= 0) return;
  const util::TimePoint now = world.exec().now();
  m.cpu_free_at = std::max(m.cpu_free_at, now) + d;
  p.cpu_used += d;
}

/// Headroom reserved beyond the flush threshold: the byte threshold is
/// checked only after a message is appended, so the pending buffer can
/// overshoot it by one message before the flush empties it.
constexpr std::size_t kPendingSlack = 256;

}  // namespace

void meter_emit(World& world, Process& p, MeterEventDraft&& draft) {
  if ((p.meter_flags & draft.guard) == 0) return;
  if (p.meter_sock == 0) {
    if (p.meter_degraded) {
      // Accounted drop mode: the meter connection died under the process
      // (dead filter, reset socket). Events are counted — emitted and
      // dropped in the same breath — instead of buffered, so conservation
      // stays exact without unbounded pending growth.
      ++p.meter_events;
      world.mobs_.events->add(1);
      world.mobs_.dropped_records->add(1);
    }
    return;
  }

  Machine& m = world.machine(p.machine);
  const WorldConfig& cfg = world.config();

  meter::MeterMsg msg;
  msg.body = std::move(draft.body);
  msg.header.machine = m.index;
  msg.header.cpu_time = m.clock.read_us(world.exec().now());
  const std::int64_t grain = cfg.cpu_grain.count();
  msg.header.proc_time = (p.cpu_used.count() / grain) * grain;

  // Encode straight into the pending batch. The reservation covers a full
  // batch (re-established after meter_flush's swap hands the capacity
  // away), so steady-state emission appends without reallocating.
  if (p.meter_pending.capacity() < cfg.meter_buffer_bytes + kPendingSlack) {
    p.meter_pending.reserve(cfg.meter_buffer_bytes + kPendingSlack);
  }
  const std::size_t before = p.meter_pending.size();
  msg.serialize_into(p.meter_pending);
  ++p.meter_pending_count;
  ++p.meter_events;
  world.mobs_.events->add(1);
  world.mobs_.pending_bytes->add(
      static_cast<std::int64_t>(p.meter_pending.size() - before));

  book_cpu(world, m, p, cfg.costs.meter_event);

  const bool immediate = (p.meter_flags & meter::M_IMMEDIATE) != 0;
  if (immediate || p.meter_pending_count >= cfg.meter_buffer_msgs ||
      p.meter_pending.size() >= cfg.meter_buffer_bytes) {
    meter_flush(world, p);
  }
}

void meter_flush(World& world, Process& p) {
  if (p.meter_pending.empty()) return;
  util::Bytes batch;
  batch.swap(p.meter_pending);
  const std::uint32_t batch_msgs = p.meter_pending_count;
  p.meter_pending_count = 0;
  // The occupancy gauge drops on *every* flush outcome — the dropped-batch
  // path empties the buffer just as surely as a delivered one (leaving the
  // gauge high after a drop once overstated occupancy forever).
  world.mobs_.pending_bytes->sub(static_cast<std::int64_t>(batch.size()));

  // A meter socket that has died underneath the process (peer reset, EOF,
  // connection torn down by a fault) is as useless as no socket at all.
  Socket* ms = p.meter_sock == 0 ? nullptr : world.find_socket(p.meter_sock);
  const bool healthy = ms && ms->sstate == Socket::StreamState::connected &&
                       ms->peer != 0 && !ms->eof && world.find_socket(ms->peer);
  if (!healthy) {
    // Without a usable meter socket the batch is simply lost (Appendix C):
    // no send happens, so no CPU is charged and nothing is counted as
    // delivered — the loss lands in the dropped counters instead.
    ++p.meter_dropped_batches;
    p.meter_dropped_bytes += batch.size();
    world.mobs_.dropped_batches->add(1);
    world.mobs_.dropped_bytes->add(batch.size());
    world.mobs_.dropped_records->add(batch_msgs);
    if (p.meter_sock != 0) {
      // First detection: flip to accounted drop mode and tell the parent
      // (the meterdaemon forwards this upstream as a state note).
      world.socket_unref(p.meter_sock);
      p.meter_sock = 0;
      p.meter_degraded = true;
      Machine& mm = world.machine(p.machine);
      world.push_child_change(mm, p.parent,
                              ChildChange{p.pid, ChildEvent::meter_lost, 0});
    }
    return;
  }

  Machine& m = world.machine(p.machine);
  const auto& costs = world.config().costs;
  book_cpu(world, m, p,
           costs.meter_flush_base +
               util::usec(costs.meter_flush_per_kb.count() *
                          static_cast<std::int64_t>(batch.size()) / 1024));

  ++p.meter_flushes;
  p.meter_bytes += batch.size();
  world.mobs_.flushes->add(1);
  world.mobs_.bytes->add(batch.size());
  world.mobs_.batch_bytes->record(static_cast<std::int64_t>(batch.size()));
  world.mobs_.batch_msgs->record(batch_msgs);

  world.kernel_stream_send(p.meter_sock, std::move(batch), batch_msgs);
}

}  // namespace dpm::kernel
