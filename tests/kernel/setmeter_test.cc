// setmeter(2) conformance — Appendix C of the paper.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/meterflags.h"
#include "meter/metermsgs.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

using util::Err;

class SetmeterTest : public ::testing::Test {
 protected:
  SetmeterTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
    world_.add_account_everywhere(200);
  }

  /// Spawns a filter-like sink on green:4500 that collects raw meter bytes.
  void spawn_meter_sink(util::Bytes* collected) {
    (void)world_.spawn(machines_[1], "sink", 100, [collected](Sys& sys) {
      auto ls = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 8);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto data = sys.recv(*conn, 65536);
        if (!data.ok() || data->empty()) break;
        collected->insert(collected->end(), data->begin(), data->end());
      }
    });
  }

  /// Connects a stream socket to the sink; returns the fd.
  static Fd connect_sink(Sys& sys) {
    auto addr = sys.resolve("green", 4500);
    EXPECT_TRUE(addr.has_value());
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(sys.connect(*fd, *addr).ok());
    return *fd;
  }

  static std::vector<meter::MeterMsg> parse_all(const util::Bytes& wire) {
    std::vector<meter::MeterMsg> out;
    std::size_t pos = 0;
    while (auto m = meter::MeterMsg::parse_stream(wire, pos)) {
      out.push_back(std::move(*m));
    }
    return out;
  }

  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(SetmeterTest, SelfMeteringProducesEvents) {
  util::Bytes collected;
  spawn_meter_sink(&collected);
  (void)world_.spawn(machines_[0], "app", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    const Fd ms = connect_sink(sys);
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_ALL), ms)
                    .ok());
    ASSERT_TRUE(sys.close(ms).ok());  // kernel keeps its own reference

    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.close(*fd).ok());
    // exit flushes pending messages (§3.2)
  });
  world_.run();

  auto msgs = parse_all(collected);
  // destsock for closing the registered meter descriptor, then the
  // datagram socket's create/close, then the exit record.
  ASSERT_GE(msgs.size(), 4u);
  EXPECT_EQ(msgs[0].type(), meter::EventType::destsock);
  EXPECT_EQ(msgs[1].type(), meter::EventType::sockcrt);
  EXPECT_EQ(msgs[2].type(), meter::EventType::destsock);
  EXPECT_EQ(msgs.back().type(), meter::EventType::termproc);
}

TEST_F(SetmeterTest, PermissionChecks) {
  Pid other = 0;
  {
    auto r = world_.spawn(machines_[0], "other-user", 200, [](Sys& sys) {
      sys.sleep(util::sec(1));
    });
    ASSERT_TRUE(r.ok());
    other = *r;
  }
  Err foreign = Err::ok;
  Err missing = Err::ok;
  Err as_root = Err::ok;
  (void)world_.spawn(machines_[0], "user", 100, [&](Sys& sys) {
    foreign = sys.setmeter(other, static_cast<std::int32_t>(meter::M_ALL),
                           meter::SETMETER_NO_CHANGE)
                  .error();
    missing = sys.setmeter(4242, static_cast<std::int32_t>(meter::M_ALL),
                           meter::SETMETER_NO_CHANGE)
                  .error();
  });
  (void)world_.spawn(machines_[0], "root", 0, [&](Sys& sys) {
    as_root = sys.setmeter(other, static_cast<std::int32_t>(meter::M_ALL),
                           meter::SETMETER_NO_CHANGE)
                  .error();
  });
  world_.run_for(util::msec(500));
  EXPECT_EQ(foreign, Err::eperm);   // "EPERM: process does not belong to caller"
  EXPECT_EQ(missing, Err::esrch);
  EXPECT_EQ(as_root, Err::ok);      // "A superuser process can set metering
                                    //  for any process."
}

TEST_F(SetmeterTest, SocketMustBeInternetStream) {
  Err dgram_err = Err::ok;
  Err unix_err = Err::ok;
  Err file_err = Err::ok;
  (void)world_.spawn(machines_[0], "app", 100, [&](Sys& sys) {
    auto d = sys.socket(SockDomain::internet, SockType::dgram);
    dgram_err = sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_ALL), *d)
                    .error();
    auto u = sys.socket(SockDomain::unix_path, SockType::stream);
    unix_err = sys.setmeter(meter::SETMETER_SELF,
                            static_cast<std::int32_t>(meter::M_ALL), *u)
                   .error();
    auto f = sys.open("templates", Sys::OpenMode::write_trunc);
    file_err = sys.setmeter(meter::SETMETER_SELF,
                            static_cast<std::int32_t>(meter::M_ALL), *f)
                   .error();
  });
  world_.run();
  EXPECT_EQ(dgram_err, Err::einval);
  EXPECT_EQ(unix_err, Err::einval);
  EXPECT_EQ(file_err, Err::enotsock);
}

TEST_F(SetmeterTest, UnconnectedSocketAcceptedButMessagesLost) {
  // "The socket must be connected to be used, though this is not checked.
  // Meter messages are lost if they are sent on an unconnected socket."
  bool accepted = false;
  (void)world_.spawn(machines_[0], "app", 100, [&](Sys& sys) {
    auto s = sys.socket(SockDomain::internet, SockType::stream);
    accepted = sys.setmeter(meter::SETMETER_SELF,
                            static_cast<std::int32_t>(meter::M_ALL) |
                                static_cast<std::int32_t>(meter::M_IMMEDIATE),
                            *s)
                   .ok();
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.close(*fd);
  });
  world_.run();
  EXPECT_TRUE(accepted);
  EXPECT_GT(world_.meter_stats().events, 0u);  // generated but lost
}

TEST_F(SetmeterTest, MeterSocketHiddenFromDescriptorTable) {
  util::Bytes collected;
  spawn_meter_sink(&collected);
  std::size_t before = 0, after = 0;
  (void)world_.spawn(machines_[0], "app", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    const Fd ms = connect_sink(sys);
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_ALL), ms)
                    .ok());
    before = sys.process().fds.in_use();
    ASSERT_TRUE(sys.close(ms).ok());
    after = sys.process().fds.in_use();
    // Metering still works after the daemon-side descriptor is closed:
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.close(*fd);
  });
  world_.run();
  // The meter connection does not occupy any descriptor slot after close.
  EXPECT_EQ(after, before - 1);
  auto msgs = parse_all(collected);
  EXPECT_GE(msgs.size(), 2u);  // events flowed through the hidden socket
}

TEST_F(SetmeterTest, ChildInheritsMeterState) {
  util::Bytes collected;
  spawn_meter_sink(&collected);
  Pid child_pid = 0;
  (void)world_.spawn(machines_[0], "parent", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    const Fd ms = connect_sink(sys);
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_ALL), ms)
                    .ok());
    (void)sys.close(ms);
    auto child = sys.fork([](Sys& csys) {
      auto fd = csys.socket(SockDomain::internet, SockType::dgram);
      (void)csys.close(*fd);
    });
    ASSERT_TRUE(child.ok());
    child_pid = *child;
    (void)sys.waitchange(true);
  });
  world_.run();
  auto msgs = parse_all(collected);
  // The fork event from the parent plus child events on the same
  // connection (§3.2: "all of the children of a metered process will also
  // have the same events monitored").
  bool saw_fork = false;
  bool saw_child_event = false;
  for (const auto& m : msgs) {
    if (m.type() == meter::EventType::fork) saw_fork = true;
    if (m.pid() == child_pid) saw_child_event = true;
  }
  EXPECT_TRUE(saw_fork);
  EXPECT_TRUE(saw_child_event);
}

TEST_F(SetmeterTest, SpawnedChildInheritsMeteringLikeRexec) {
  // §3.2: "If an outside agent is used to create a process, such as the
  // system rexec server, the new process will be monitored only if the
  // server is being monitored."
  world_.programs().register_program(
      "worklet", [](const std::vector<std::string>&) -> ProcessMain {
        return [](Sys& sys) {
          auto fd = sys.socket(SockDomain::internet, SockType::dgram);
          (void)sys.close(*fd);
        };
      });
  world_.machine(machines_[0]).fs.put_executable("worklet", "worklet");

  util::Bytes collected;
  spawn_meter_sink(&collected);
  Pid child_pid = 0;
  (void)world_.spawn(machines_[0], "server", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    const Fd ms = connect_sink(sys);
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SOCKET |
                                                       meter::M_TERMPROC),
                             ms)
                    .ok());
    Sys::SpawnArgs sa;
    sa.path = "worklet";
    auto pid = sys.spawn(sa);
    ASSERT_TRUE(pid.ok());
    child_pid = *pid;
    (void)sys.waitchange(true);
  });
  world_.run();
  bool child_metered = false;
  std::size_t pos = 0;
  while (auto m = meter::MeterMsg::parse_stream(collected, pos)) {
    if (m->pid() == child_pid && m->type() == meter::EventType::sockcrt) {
      child_metered = true;
    }
  }
  EXPECT_TRUE(child_metered);
}

TEST_F(SetmeterTest, NoneClearsAndFlagsReplace) {
  util::Bytes collected;
  spawn_meter_sink(&collected);
  (void)world_.spawn(machines_[0], "app", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    const Fd ms = connect_sink(sys);
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SOCKET |
                                                       meter::M_IMMEDIATE),
                             ms)
                    .ok());
    (void)sys.close(ms);
    auto a = sys.socket(SockDomain::internet, SockType::dgram);  // metered
    (void)sys.close(*a);  // destsock NOT metered (mask replaced fork/none)
    // Clear everything: subsequent events are not metered.
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF, meter::SETMETER_NONE,
                             meter::SETMETER_NONE)
                    .ok());
    auto b = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.close(*b);
  });
  world_.run();
  auto msgs = parse_all(collected);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].type(), meter::EventType::sockcrt);
}

TEST_F(SetmeterTest, MeterConnectionDoesNotConsumeDescriptorBudget) {
  // §3.2: "The meter does not reduce the number of open files and sockets
  // available to the metered process."
  util::Bytes collected;
  spawn_meter_sink(&collected);
  bool filled_table = false;
  (void)world_.spawn(machines_[0], "hog", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    const Fd ms = connect_sink(sys);
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_ALL), ms)
                    .ok());
    (void)sys.close(ms);
    // Fill the whole descriptor table; the hidden meter socket must not
    // take a slot.
    const std::size_t cap = sys.process().fds.capacity();
    std::size_t opened = 0;
    for (;;) {
      auto fd = sys.socket(SockDomain::internet, SockType::dgram);
      if (!fd.ok()) break;
      ++opened;
    }
    filled_table = (opened + sys.process().fds.in_use() - opened) <= cap &&
                   opened == cap - 3;  // 3 stdio slots are pre-wired
  });
  world_.run();
  EXPECT_TRUE(filled_table);
}

}  // namespace
}  // namespace dpm::kernel
