file(REMOVE_RECURSE
  "libdpm_kernel.a"
)
