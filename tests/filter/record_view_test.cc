// Wire-view decoding (the zero-copy filter path): RecordView framing,
// WirePlan field extraction and validation, and their agreement with the
// owned Descriptions::decode on every meter event type.
#include <gtest/gtest.h>

#include "filter/descriptions.h"
#include "filter/filter_program.h"
#include "meter/metermsgs.h"

namespace dpm::filter {
namespace {

meter::MeterMsg stamped(meter::MeterBody body) {
  meter::MeterMsg m;
  m.body = std::move(body);
  m.header.machine = 3;
  m.header.cpu_time = 123456789;
  m.header.proc_time = 40000;
  return m;
}

/// One message of each type, with both empty and non-empty names in the
/// string-carrying types.
std::vector<meter::MeterMsg> one_of_each() {
  using namespace meter;
  return {
      stamped(MeterSend{7, 9, 42, 100, "228320140"}),
      stamped(MeterSend{7, 9, 42, 100, ""}),  // unknown dest (§4.1)
      stamped(MeterRecv{1, 2, 3, 4, "328140"}),
      stamped(MeterRecvCall{5, 6, 7}),
      stamped(MeterSockCrt{1, 2, 3, 2, 1, 0}),
      stamped(MeterDup{1, 2, 30, 31}),
      stamped(MeterDestSock{1, 2, 3}),
      stamped(MeterFork{100, 0, 101}),
      stamped(MeterAccept{9, 8, 7, 6, "131073", "196612"}),
      stamped(MeterAccept{9, 8, 7, 6, "", std::string(255, 'p')}),
      stamped(MeterConnect{9, 8, 7, "me", "them"}),
      stamped(MeterTermProc{9, 0, -1}),
  };
}

void expect_field_eq(const FieldValue& owned, const FieldView& view,
                     const std::string& name) {
  if (std::holds_alternative<std::int64_t>(owned)) {
    ASSERT_TRUE(std::holds_alternative<std::int64_t>(view)) << name;
    EXPECT_EQ(std::get<std::int64_t>(owned), std::get<std::int64_t>(view))
        << name;
  } else {
    ASSERT_TRUE(std::holds_alternative<std::string_view>(view)) << name;
    EXPECT_EQ(std::get<std::string>(owned), std::get<std::string_view>(view))
        << name;
  }
}

TEST(RecordView, FramingChecksHeaderAndSizeWord) {
  const util::Bytes wire = stamped(meter::MeterSend{1, 0, 2, 10, "x"}).serialize();
  auto v = make_record_view(wire.data(), wire.size());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, 1u);
  EXPECT_EQ(v->size, wire.size());

  // Slice shorter than the size word claims: no view.
  EXPECT_FALSE(make_record_view(wire.data(), wire.size() - 1).has_value());
  // Too short for a header at all.
  EXPECT_FALSE(make_record_view(wire.data(), 8).has_value());
}

TEST(RecordView, EveryDescribedTypeIsViewable) {
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());
  for (std::uint32_t type : desc->types()) {
    const WirePlan* wp = desc->wire_plan(type);
    ASSERT_NE(wp, nullptr) << "type " << type;
    EXPECT_TRUE(wp->viewable()) << "type " << type;
    EXPECT_EQ(wp->field_count(), desc->record_layout(type).size())
        << "type " << type;
  }
}

TEST(RecordView, FieldsMatchOwnedDecodeOnEveryType) {
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());
  for (const auto& msg : one_of_each()) {
    const util::Bytes wire = msg.serialize();
    auto rec = desc->decode(wire);
    ASSERT_TRUE(rec.has_value());
    auto v = make_record_view(wire.data(), wire.size());
    ASSERT_TRUE(v.has_value());
    const WirePlan* wp = desc->wire_plan(v->type);
    ASSERT_NE(wp, nullptr);
    ASSERT_TRUE(wp->validate(*v));
    ASSERT_EQ(wp->field_count(), rec->fields.size());
    for (std::size_t i = 0; i < rec->fields.size(); ++i) {
      const auto fv = wp->field(*v, i);
      ASSERT_TRUE(fv.has_value()) << rec->fields[i].first;
      expect_field_eq(rec->fields[i].second, *fv, rec->fields[i].first);
      // Name-based lookup agrees with index-based.
      EXPECT_EQ(wp->index_of(rec->fields[i].first) <= i, true);
    }
  }
}

TEST(RecordView, WireFieldLooksUpByName) {
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());
  const util::Bytes wire =
      stamped(meter::MeterAccept{9, 8, 7, 6, "131073", "196612"}).serialize();
  auto v = make_record_view(wire.data(), wire.size());
  ASSERT_TRUE(v.has_value());

  auto sock = desc->wire_field(*v, "sock");
  ASSERT_TRUE(sock.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*sock), 7);
  auto peer = desc->wire_field(*v, "peerName");
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(std::get<std::string_view>(*peer), "196612");
  EXPECT_FALSE(desc->wire_field(*v, "ghost").has_value());
}

TEST(RecordView, ValidateAgreesWithDecodeOnTruncatedRecords) {
  // For every possible claimed record length, validate() must accept
  // exactly when the owned decoder does — the two paths must count the
  // same records malformed.
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());
  for (const auto& msg : one_of_each()) {
    util::Bytes wire = msg.serialize();
    for (std::size_t len = meter::kHeaderSize; len <= wire.size(); ++len) {
      util::Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
      // Re-stamp the size word so framing accepts the slice; only the
      // field bounds are under test.
      cut[0] = static_cast<std::uint8_t>(len);
      cut[1] = static_cast<std::uint8_t>(len >> 8);
      cut[2] = static_cast<std::uint8_t>(len >> 16);
      cut[3] = static_cast<std::uint8_t>(len >> 24);
      auto v = make_record_view(cut.data(), cut.size());
      ASSERT_TRUE(v.has_value());
      const WirePlan* wp = desc->wire_plan(v->type);
      ASSERT_NE(wp, nullptr);
      const bool owned_ok = desc->decode(cut).has_value();
      EXPECT_EQ(wp->validate(*v), owned_ok)
          << "type " << v->type << " len " << len << "/" << wire.size();
    }
  }
}

TEST(RecordView, FieldViewComparisonSemantics) {
  // Numeric view of strings mirrors field_value_num; textual comparison
  // renders integer operands the way field_value_text does.
  EXPECT_EQ(field_view_num(FieldView{std::int64_t{42}}).value(), 42);
  EXPECT_EQ(field_view_num(FieldView{std::string_view{"131073"}}).value(),
            131073);
  EXPECT_FALSE(field_view_num(FieldView{std::string_view{"addr-1"}}).has_value());

  EXPECT_EQ(field_view_text_cmp(FieldView{std::int64_t{-5}}, "-5"), 0);
  EXPECT_LT(field_view_text_cmp(FieldView{std::string_view{"abc"}}, "abd"), 0);
  EXPECT_GT(field_view_text_cmp(FieldView{std::string_view{"abd"}}, "abc"), 0);

  // Both numeric: numeric order (9 < 10); mixed: textual order ("9" > "10").
  EXPECT_LT(field_view_cmp(FieldView{std::int64_t{9}},
                           FieldView{std::string_view{"10"}}), 0);
  EXPECT_LT(field_view_cmp(FieldView{std::string_view{"9"}},
                           FieldView{std::string_view{"abc10"}}), 0);
}

TEST(RecordView, ViewAndOwnedEnginesRenderIdenticalLogs) {
  // A quick deterministic cut of the bench's equivalence check: rules with
  // accepts, rejects, field-to-field compares and discards.
  const char* rules =
      "machine=5, cpuTime<10000\n"
      "machine=3, type=1, sock=42, destName=228320140\n"
      "type=8, sockName=peerName\n"
      "machine=#*, pid=#*, type=2\n";
  auto mk = [&](EvalPath path) {
    auto d = Descriptions::parse(default_descriptions_text());
    auto t = Templates::parse(rules);
    return FilterEngine(std::move(*d), std::move(*t), path);
  };
  util::Bytes batch;
  for (const auto& msg : one_of_each()) msg.serialize_into(batch);

  FilterEngine owned = mk(EvalPath::owned);
  FilterEngine view = mk(EvalPath::view);
  EXPECT_EQ(owned.feed(1, batch), view.feed(1, batch));
  EXPECT_EQ(owned.stats().accepted, view.stats().accepted);
  EXPECT_EQ(owned.stats().rejected, view.stats().rejected);
  EXPECT_EQ(owned.stats().malformed, view.stats().malformed);
  // The view path must actually have been exercised.
  EXPECT_GT(view.stats().eval_compiled + view.stats().eval_interpreted, 0u);
}

}  // namespace
}  // namespace dpm::filter
