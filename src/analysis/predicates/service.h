// Wiring the predicate detector into a running World.
//
// LivePredicates bundles the streaming pieces a metered session needs for
// online detection: a LiveAnalysis fed by the filter's record sink, with
// a PredicateDetector subscribed as its observer. install_live_predicates
// hangs the bundle on the world twice — as the filter live sink (so every
// session filter feeds it, filter_program.h) and as the
// "analysis.predicates" service slot the controller's `predicate` command
// resolves (the same inverted-layer pattern as kLiveSinkService: the
// control layer cannot name analysis types, so the slot is type-erased).
#pragma once

#include <memory>

#include "analysis/live/aggregator.h"
#include "analysis/predicates/detector.h"
#include "kernel/world.h"

namespace dpm::analysis::pred {

inline constexpr const char* kPredicateService = "analysis.predicates";

struct LivePredicates {
  LivePredicates(const filter::Descriptions& desc, live::LiveConfig live_cfg,
                 DetectorConfig det_cfg, obs::Registry* reg)
      : live(live_cfg, reg), detector(desc, det_cfg, reg) {
    live.add_observer(&detector);
  }

  live::LiveAnalysis live;
  PredicateDetector detector;
};

/// Builds the bundle (accounting through the world's registry), installs
/// its record sink as the world's filter live sink, and registers it
/// under kPredicateService. `desc` must outlive the world's sessions —
/// pass filter::default_descriptions_text()-parsed statics or a
/// caller-owned Descriptions.
std::shared_ptr<LivePredicates> install_live_predicates(
    kernel::World& world, const filter::Descriptions& desc,
    live::LiveConfig live_cfg = {}, DetectorConfig det_cfg = {});

/// The installed bundle, or nullptr when none was installed.
std::shared_ptr<LivePredicates> predicate_service(kernel::World& world);

/// The standard descriptions, parsed once (what sessions run with unless
/// they load their own description files).
const filter::Descriptions& standard_descriptions();

}  // namespace dpm::analysis::pred
