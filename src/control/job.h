// Jobs and the process state machine (§4.2, Fig 4.2).
//
// "The controller uses the term job to designate a computation. ... The
// five process states recognized by the controller are new, acquired,
// running, stopped, and killed." The transition rules of Fig 4.2 are
// enforced here:
//   * new      -> running (start) | stopped (stopjob)
//   * running <-> stopped; running -> killed (completion)
//   * stopped  -> killed (removal)
//   * new      -/-> killed ("precautionary measure")
//   * acquired -> acquired only ("can only be metered")
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "meter/meterflags.h"

namespace dpm::control {

enum class ProcState { fresh, acquired, running, stopped, killed };
// ("fresh" is the paper's *new*; `new` is reserved in C++.)

const char* proc_state_name(ProcState s);

/// Would the Fig 4.2 state machine allow this transition?
bool can_transition(ProcState from, ProcState to);

/// A process tracked by the controller.
struct ProcEntry {
  std::string name;      // display name ('A', 'B', ...)
  std::string machine;   // literal host name
  kernel::Pid pid = 0;
  ProcState state = ProcState::fresh;
  meter::Flags flags = 0;
  /// Degradation annotation shown by `jobs` ("[meter lost]",
  /// "[presumed dead]"); empty for a healthy process.
  std::string note;
};

/// A job: a named computation plus the filter collecting its traces.
struct Job {
  std::string name;
  std::string filter_name;
  meter::Flags flags = 0;  // accumulated setflags mask (union semantics)
  std::vector<ProcEntry> procs;

  ProcEntry* find(const std::string& proc_name);
  ProcEntry* find_pid(const std::string& machine, kernel::Pid pid);

  /// removejob precondition: every process killed, stopped, or acquired.
  bool removable() const;
  /// die warns while any process is new, stopped, running, or acquired.
  bool has_active() const;
};

/// Applies a setflags argument list ("send", "-receive", "all", "-all") to
/// an accumulated mask; returns nullopt naming the bad token via `bad`.
std::optional<meter::Flags> apply_flag_tokens(
    meter::Flags current, const std::vector<std::string>& tokens,
    std::string* bad);

}  // namespace dpm::control
