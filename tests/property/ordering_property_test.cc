// Properties of the deduced global ordering on randomized workloads.
#include <gtest/gtest.h>

#include "analysis/ordering.h"
#include "analysis/analysis_testing.h"
#include "util/rng.h"

namespace dpm::analysis {
namespace {

using dpm::analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;
using meter::MeterTermProc;

/// Random multi-connection workload: `nconns` connections between random
/// machine pairs, each with a random number of one-directional messages,
/// events interleaved into the log in a random (but per-process ordered)
/// way, with random per-machine clock offsets.
struct Workload {
  std::vector<std::pair<Stamp, meter::MeterBody>> events;
  std::size_t total_msgs = 0;
};

Workload random_workload(util::Rng& rng, int nconns) {
  Workload w;
  std::vector<std::vector<std::pair<Stamp, meter::MeterBody>>> streams;
  std::int64_t offsets[8];
  for (auto& o : offsets) o = rng.uniform(-50000, 50000);

  for (int c = 0; c < nconns; ++c) {
    // Star topology: machine 0 talks to everyone, so every machine pair
    // with traffic is estimated *directly* by the clock-alignment BFS
    // (transitive composition is exercised by the deterministic
    // alignment tests; its per-pair bound is weaker by construction).
    const auto ma = static_cast<std::uint16_t>(0);
    const auto mb = static_cast<std::uint16_t>(rng.uniform(1, 7));
    const std::int32_t pa = 100 + 2 * c, pb = 101 + 2 * c;
    const auto sa = static_cast<std::uint64_t>(10 + 2 * c);
    const auto sb = static_cast<std::uint64_t>(11 + 2 * c);
    const std::string na = "n" + std::to_string(2 * c);
    const std::string nb = "n" + std::to_string(2 * c + 1);

    std::vector<std::pair<Stamp, meter::MeterBody>> sa_events, sb_events;
    std::int64_t t = rng.uniform(0, 5000);
    sa_events.push_back({Stamp{ma, t + offsets[ma], 0},
                         MeterConnect{pa, 0, sa, na, nb}});
    sb_events.push_back({Stamp{mb, t + 200 + offsets[mb], 0},
                         MeterAccept{pb, 0, 20, sb, nb, na}});
    const int msgs = static_cast<int>(rng.uniform(1, 12));
    for (int i = 0; i < msgs; ++i) {
      t += rng.uniform(100, 2000);
      sa_events.push_back({Stamp{ma, t + offsets[ma], 0},
                           MeterSend{pa, 0, sa, 32, ""}});
      sb_events.push_back(
          {Stamp{mb, t + rng.uniform(200, 900) + offsets[mb], 0},
           MeterRecv{pb, 0, sb, 32, ""}});
    }
    w.total_msgs += static_cast<std::size_t>(msgs);
    sa_events.push_back({Stamp{ma, t + 3000 + offsets[ma], 0},
                         MeterTermProc{pa, 0, 0}});
    sb_events.push_back({Stamp{mb, t + 3200 + offsets[mb], 0},
                         MeterTermProc{pb, 0, 0}});
    streams.push_back(std::move(sa_events));
    streams.push_back(std::move(sb_events));
  }

  // Interleave streams randomly but keep each stream's internal order
  // (exactly what independent meter connections do to the log).
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (;;) {
    std::vector<std::size_t> live;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] < streams[s].size()) live.push_back(s);
    }
    if (live.empty()) break;
    const std::size_t pick =
        live[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1))];
    w.events.push_back(streams[pick][cursor[pick]++]);
  }
  return w;
}

class OrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST_P(OrderingProperty, InvariantsOnRandomWorkloads) {
  util::Rng rng(GetParam());
  Workload w = random_workload(rng, static_cast<int>(rng.uniform(2, 8)));
  auto trace = dpm::analysis_testing::make_trace(w.events);
  Ordering o = order_events(trace);

  // Every message pairs (both sides metered, distinct name pairs).
  EXPECT_EQ(o.message_pairs, w.total_msgs);
  EXPECT_FALSE(o.had_cycle);

  // Lamport respects program order within each process...
  std::map<ProcKey, std::uint64_t> last;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const auto key = trace.events[i].proc();
    auto [it, fresh] = last.try_emplace(key, o.lamport_of(i));
    if (!fresh) {
      EXPECT_LT(it->second, o.lamport_of(i));
      it->second = o.lamport_of(i);
    }
  }
  // ...and the send-before-receive constraint for every matched pair.
  for (const auto& oe : o.events) {
    if (oe.matched_send) {
      EXPECT_GT(o.lamport_of(oe.index), o.lamport_of(*oe.matched_send));
    }
  }

  // Alignment restores causality for matched pairs.
  ClockAlignment a = estimate_clock_alignment(trace, o);
  for (const auto& oe : o.events) {
    if (!oe.matched_send) continue;
    const Event& recv = trace.events[oe.index];
    const Event& send = trace.events[*oe.matched_send];
    EXPECT_GE(a.aligned(recv), a.aligned(send))
        << "pair " << *oe.matched_send << " -> " << oe.index;
  }
}

TEST_P(OrderingProperty, LogShufflingDoesNotChangePairing) {
  // The same logical workload interleaved differently into the log must
  // produce the same pairing — only *per-process* order is guaranteed by
  // the meter connections, not global log order.
  util::Rng rng(GetParam() + 77);
  Workload w = random_workload(rng, 4);
  auto trace1 = dpm::analysis_testing::make_trace(w.events);
  Ordering o1 = order_events(trace1);

  // Constrained shuffle: split into per-process streams, re-interleave
  // with a different random schedule.
  std::map<std::pair<std::uint16_t, std::int32_t>,
           std::vector<std::pair<Stamp, meter::MeterBody>>> by_proc;
  for (const auto& ev : w.events) {
    const auto pid = std::visit([](const auto& b) { return b.pid; }, ev.second);
    by_proc[{ev.first.machine, pid}].push_back(ev);
  }
  std::vector<std::vector<std::pair<Stamp, meter::MeterBody>>> streams;
  for (auto& [key, evs] : by_proc) streams.push_back(std::move(evs));
  std::vector<std::size_t> cursor(streams.size(), 0);
  std::vector<std::pair<Stamp, meter::MeterBody>> shuffled;
  util::Rng rng2(GetParam() + 999);
  for (;;) {
    std::vector<std::size_t> live;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] < streams[s].size()) live.push_back(s);
    }
    if (live.empty()) break;
    const std::size_t pick = live[static_cast<std::size_t>(
        rng2.uniform(0, static_cast<std::int64_t>(live.size()) - 1))];
    shuffled.push_back(streams[pick][cursor[pick]++]);
  }

  auto trace2 = dpm::analysis_testing::make_trace(shuffled);
  Ordering o2 = order_events(trace2);
  EXPECT_EQ(o1.message_pairs, o2.message_pairs);
  EXPECT_EQ(o1.had_cycle, o2.had_cycle);
  EXPECT_EQ(o1.clock_anomalies, o2.clock_anomalies);
}

}  // namespace
}  // namespace dpm::analysis
