#include "filter/descriptions.h"

#include <algorithm>
#include <cstdio>

#include "meter/metermsgs.h"
#include "util/strings.h"

namespace dpm::filter {

std::string field_value_text(const FieldValue& v) {
  if (const auto* n = std::get_if<std::int64_t>(&v)) {
    return util::strprintf("%lld", static_cast<long long>(*n));
  }
  return std::get<std::string>(v);
}

std::optional<std::int64_t> field_value_num(const FieldValue& v) {
  if (const auto* n = std::get_if<std::int64_t>(&v)) return *n;
  return util::parse_int(std::get<std::string>(v));
}

std::optional<std::int64_t> field_view_num(const FieldView& v) {
  if (const auto* n = std::get_if<std::int64_t>(&v)) return *n;
  return util::parse_int(std::get<std::string_view>(v));
}

namespace {

/// Renders an integer FieldView into `buf` (sized for any int64) and
/// returns the resulting text view; string views pass through. Rendering
/// matches field_value_text ("%lld").
std::string_view view_text(const FieldView& v, char (&buf)[24]) {
  if (const auto* n = std::get_if<std::int64_t>(&v)) {
    const int len =
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(*n));
    return std::string_view(buf, static_cast<std::size_t>(len));
  }
  return std::get<std::string_view>(v);
}

int sign_of(int cmp) { return cmp < 0 ? -1 : cmp > 0 ? 1 : 0; }

}  // namespace

int field_view_text_cmp(const FieldView& lhs, std::string_view rhs_text) {
  char buf[24];
  return sign_of(view_text(lhs, buf).compare(rhs_text));
}

int field_view_cmp(const FieldView& lhs, const FieldView& rhs) {
  const auto ln = field_view_num(lhs);
  const auto rn = field_view_num(rhs);
  if (ln && rn) return *ln < *rn ? -1 : *ln > *rn ? 1 : 0;
  char buf[24];
  return field_view_text_cmp(lhs, view_text(rhs, buf));
}

const FieldValue* Record::find(const std::string& name) const {
  for (const auto& [n, v] : fields) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::optional<std::int64_t> Record::num(const std::string& name) const {
  const FieldValue* v = find(name);
  if (!v) return std::nullopt;
  return field_value_num(*v);
}

std::optional<std::string> Record::text(const std::string& name) const {
  const FieldValue* v = find(name);
  if (!v) return std::nullopt;
  return field_value_text(*v);
}

namespace {

std::string strip_comment(const std::string& line) {
  auto pos = line.find('#');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

std::optional<Descriptions> Descriptions::parse(const std::string& text,
                                                std::string* error) {
  Descriptions out;
  int lineno = 0;
  for (const auto& raw_line : util::split_keep_empty(text, '\n')) {
    ++lineno;
    const std::string line{util::trim(strip_comment(raw_line))};
    if (line.empty()) continue;

    auto tokens = util::split(line, " \t");
    if (tokens.empty()) continue;

    if (tokens[0] == "HEADER") {
      out.header_fields_.assign(tokens.begin() + 1, tokens.end());
      continue;
    }

    // "SEND 1, pid,0,4,10 pc,4,4,10 ..." — the type number may carry a
    // trailing comma.
    if (tokens.size() < 2) {
      if (error) *error = util::strprintf("line %d: missing type number", lineno);
      return std::nullopt;
    }
    EventDesc desc;
    desc.name = tokens[0];
    std::string type_tok = tokens[1];
    if (!type_tok.empty() && type_tok.back() == ',') type_tok.pop_back();
    auto type = util::parse_int(type_tok);
    if (!type || *type <= 0) {
      if (error) *error = util::strprintf("line %d: bad type '%s'", lineno, type_tok.c_str());
      return std::nullopt;
    }
    desc.type = static_cast<std::uint32_t>(*type);

    for (std::size_t i = 2; i < tokens.size(); ++i) {
      auto parts = util::split_keep_empty(tokens[i], ',');
      if (parts.size() != 4) {
        if (error) {
          *error = util::strprintf("line %d: bad field '%s' (want name,offset,len,base)",
                                   lineno, tokens[i].c_str());
        }
        return std::nullopt;
      }
      FieldDesc f;
      f.name = parts[0];
      auto off = util::parse_int(parts[1]);
      auto len = util::parse_int(parts[2]);
      auto base = util::parse_int(parts[3]);
      if (f.name.empty() || !off || *off < 0 || !len || *len < 0 || !base ||
          (*len != 0 && *len != 1 && *len != 2 && *len != 4 && *len != 8)) {
        if (error) *error = util::strprintf("line %d: bad field '%s'", lineno, tokens[i].c_str());
        return std::nullopt;
      }
      f.offset = static_cast<std::size_t>(*off);
      f.length = static_cast<std::size_t>(*len);
      f.base = static_cast<int>(*base);
      desc.fields.push_back(std::move(f));
    }
    out.by_type_[desc.type] = std::move(desc);
  }
  if (out.by_type_.empty()) {
    if (error) *error = "no event descriptions found";
    return std::nullopt;
  }
  // Resolve every type's wire plan once, so filters can match records
  // without decoding them. Small type numbers land in the dense cache.
  std::uint32_t dense_max = 0;
  for (const auto& [t, d] : out.by_type_) {
    if (t < kPlanCacheMax && t >= dense_max) dense_max = t + 1;
  }
  out.plan_cache_.resize(dense_max);
  for (const auto& [t, d] : out.by_type_) {
    if (t < kPlanCacheMax) {
      out.plan_cache_[t] = WirePlan::build(d);
    } else {
      out.plans_.emplace(t, WirePlan::build(d));
    }
  }
  return out;
}

const EventDesc* Descriptions::by_type(std::uint32_t type) const {
  auto it = by_type_.find(type);
  return it == by_type_.end() ? nullptr : &it->second;
}

std::vector<std::uint32_t> Descriptions::types() const {
  std::vector<std::uint32_t> out;
  out.reserve(by_type_.size());
  for (const auto& [t, d] : by_type_) out.push_back(t);
  return out;
}

std::vector<std::string> Descriptions::record_layout(std::uint32_t type) const {
  const EventDesc* desc = by_type(type);
  if (!desc) return {};
  // Must mirror decode(): it emplaces these five header fields before the
  // described body fields.
  std::vector<std::string> out = {"size", "machine", "cpuTime", "procTime",
                                  "type"};
  out.reserve(out.size() + desc->fields.size());
  for (const FieldDesc& f : desc->fields) out.push_back(f.name);
  return out;
}

const EventDesc* Descriptions::by_name(const std::string& name) const {
  for (const auto& [t, d] : by_type_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

namespace {

std::optional<std::int64_t> read_le(const std::uint8_t* raw, std::size_t size,
                                    std::size_t at, std::size_t len) {
  if (at > size || size - at < len) return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = len; i-- > 0;) v = (v << 8) | raw[at + i];
  // Fields are signed, as in the paper's C structs (a killed process's
  // termproc status is -1): sign-extend sub-8-byte widths.
  if (len < 8 && (v & (1ULL << (8 * len - 1)))) {
    v |= ~((1ULL << (8 * len)) - 1);
  }
  return static_cast<std::int64_t>(v);
}

/// True when `len` more bytes fit at `cursor` (overflow-safe: a counted
/// string's length can be any non-negative int64).
bool string_fits(std::size_t cursor, std::int64_t len, std::size_t size) {
  return cursor <= size &&
         static_cast<std::uint64_t>(len) <= static_cast<std::uint64_t>(size - cursor);
}

}  // namespace

std::optional<RecordView> make_record_view(const std::uint8_t* data,
                                           std::size_t size) {
  if (size < meter::kHeaderSize) return std::nullopt;
  const auto wire_size = read_le(data, size, 0, 4);
  if (static_cast<std::size_t>(*wire_size) != size) return std::nullopt;
  RecordView v;
  v.data = data;
  v.size = size;
  v.type = static_cast<std::uint32_t>(*read_le(data, size, 22, 4));
  return v;
}

std::optional<Record> Descriptions::decode(const util::Bytes& raw) const {
  return decode(raw.data(), raw.size());
}

std::optional<Record> Descriptions::decode(const std::uint8_t* raw,
                                           std::size_t size) const {
  if (size < meter::kHeaderSize) return std::nullopt;
  Record rec;

  // Fixed header layout: size u32 @0, machine u16 @4, cpuTime i64 @6,
  // procTime i64 @14, traceType u32 @22.
  auto wire_size = read_le(raw, size, 0, 4);
  auto machine = read_le(raw, size, 4, 2);
  auto cpu = read_le(raw, size, 6, 8);
  auto proc = read_le(raw, size, 14, 8);
  auto type = read_le(raw, size, 22, 4);
  if (!wire_size || static_cast<std::size_t>(*wire_size) != size) {
    return std::nullopt;
  }
  rec.type = static_cast<std::uint32_t>(*type);

  const EventDesc* desc = by_type(rec.type);
  if (!desc) return std::nullopt;
  rec.event_name = desc->name;
  rec.fields.emplace_back("size", *wire_size);
  rec.fields.emplace_back("machine", *machine);
  rec.fields.emplace_back("cpuTime", *cpu);
  rec.fields.emplace_back("procTime", *proc);
  rec.fields.emplace_back("type", *type);

  const std::size_t body = meter::kHeaderSize;
  // Counted strings are laid out back to back starting at the first
  // string field's offset; `cursor` tracks where the next one begins.
  std::size_t cursor = 0;
  bool cursor_set = false;
  for (const FieldDesc& f : desc->fields) {
    if (f.length > 0) {
      auto v = read_le(raw, size, body + f.offset, f.length);
      if (!v) return std::nullopt;
      rec.fields.emplace_back(f.name, *v);
      continue;
    }
    auto len = rec.num(f.name + "Len");
    if (!len || *len < 0) return std::nullopt;
    if (!cursor_set) {
      cursor = body + f.offset;
      cursor_set = true;
    }
    if (!string_fits(cursor, *len, size)) return std::nullopt;
    std::string s(reinterpret_cast<const char*>(raw + cursor),
                  static_cast<std::size_t>(*len));
    cursor += static_cast<std::size_t>(*len);
    rec.fields.emplace_back(f.name, std::move(s));
  }
  return rec;
}

// ---- WirePlan ----

WirePlan WirePlan::build(const EventDesc& desc) {
  WirePlan plan;
  plan.viewable_ = true;
  plan.event_name_ = desc.name;
  // The five fixed header fields, mirroring record_layout()/decode().
  const struct { const char* name; std::size_t off, len; } kHeader[] = {
      {"size", 0, 4},     {"machine", 4, 2}, {"cpuTime", 6, 8},
      {"procTime", 14, 8}, {"type", 22, 4},
  };
  for (const auto& h : kHeader) {
    plan.names_.emplace_back(h.name);
    plan.fields_.push_back(Loc{h.off, h.len, -1, 0});
  }
  for (const FieldDesc& f : desc.fields) {
    Loc loc;
    if (f.length > 0) {
      loc.offset = meter::kHeaderSize + f.offset;
      loc.length = f.length;
    } else {
      loc.ordinal = static_cast<int>(plan.strings_.size());
      if (plan.strings_.empty()) {
        plan.string_base_ = meter::kHeaderSize + f.offset;
      }
      // decode() resolves the byte count from the first *already decoded*
      // field named "<name>Len" — i.e. the first earlier layout field.
      const std::string len_name = f.name + "Len";
      std::size_t len_field = static_cast<std::size_t>(-1);
      for (std::size_t j = 0; j < plan.names_.size(); ++j) {
        if (plan.names_[j] == len_name) {
          len_field = j;
          break;
        }
      }
      if (len_field == static_cast<std::size_t>(-1) ||
          plan.strings_.size() >= kMaxStringFields) {
        // decode() would fail every record of this type (no length field),
        // or the type has more strings than the extraction scratchpad —
        // either way the owned path must handle it.
        plan.viewable_ = false;
      }
      loc.len_field = len_field;
      plan.strings_.push_back(plan.fields_.size());
    }
    plan.names_.push_back(f.name);
    plan.fields_.push_back(loc);
  }
  // One bound covering every integer field: a record at least this long
  // passes every fixed-field bounds check, so validate() compares once
  // instead of walking the field list per record.
  for (const Loc& f : plan.fields_) {
    if (f.length > 0 && f.offset + f.length > plan.fixed_end_) {
      plan.fixed_end_ = f.offset + f.length;
    }
  }
  plan.name_eq_.reserve(plan.names_.size());
  for (const std::string& n : plan.names_) {
    plan.name_eq_.push_back(" " + n + "=");
  }
  return plan;
}

std::size_t WirePlan::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool WirePlan::string_views(const RecordView& v, int k,
                            std::string_view* out) const {
  std::size_t cursor = string_base_;
  for (int j = 0; j <= k; ++j) {
    const Loc& lf = fields_[fields_[strings_[static_cast<std::size_t>(j)]].len_field];
    std::int64_t len;
    if (lf.length > 0) {
      auto val = read_le(v.data, v.size, lf.offset, lf.length);
      if (!val) return false;
      len = *val;
    } else {
      // The length field is itself an earlier counted string; its text
      // must parse as an integer (field_value_num semantics in decode()).
      auto n = util::parse_int(out[lf.ordinal]);
      if (!n) return false;
      len = *n;
    }
    if (len < 0 || !string_fits(cursor, len, v.size)) return false;
    out[j] = std::string_view(reinterpret_cast<const char*>(v.data) + cursor,
                              static_cast<std::size_t>(len));
    cursor += static_cast<std::size_t>(len);
  }
  return true;
}

std::optional<FieldView> WirePlan::field(const RecordView& v, std::size_t i,
                                         const std::string_view* strings) const {
  if (!viewable_ || i >= fields_.size()) return std::nullopt;
  const Loc& f = fields_[i];
  if (f.length > 0) {
    auto val = read_le(v.data, v.size, f.offset, f.length);
    if (!val) return std::nullopt;
    return FieldView{*val};
  }
  if (strings != nullptr) return FieldView{strings[f.ordinal]};
  std::string_view scratch[kMaxStringFields];
  if (!string_views(v, f.ordinal, scratch)) return std::nullopt;
  return FieldView{scratch[f.ordinal]};
}

bool WirePlan::validate(const RecordView& v) const {
  std::string_view scratch[kMaxStringFields];
  return validate(v, scratch);
}

bool WirePlan::validate(const RecordView& v, std::string_view* strings) const {
  if (!viewable_ || v.size < meter::kHeaderSize) return false;
  const auto wire_size = read_le(v.data, v.size, 0, 4);
  if (static_cast<std::size_t>(*wire_size) != v.size) return false;
  if (v.size < fixed_end_) return false;
  if (strings_.empty()) return true;
  return string_views(v, static_cast<int>(strings_.size()) - 1, strings);
}

bool WirePlan::extract(const RecordView& v, FieldView* out, std::size_t cap,
                       const std::string_view* strings) const {
  if (!viewable_ || fields_.size() > cap) return false;
  if (v.size < fixed_end_) return false;
  std::string_view scratch[kMaxStringFields];
  if (strings == nullptr) {
    if (!strings_.empty() &&
        !string_views(v, static_cast<int>(strings_.size()) - 1, scratch)) {
      return false;
    }
    strings = scratch;
  }
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const Loc& f = fields_[i];
    if (f.length > 0) {
      // In bounds by the fixed_end_ check above.
      std::uint64_t raw = 0;
      for (std::size_t j = f.length; j-- > 0;) {
        raw = (raw << 8) | v.data[f.offset + j];
      }
      if (f.length < 8 && (raw & (1ULL << (8 * f.length - 1)))) {
        raw |= ~((1ULL << (8 * f.length)) - 1);
      }
      out[i] = FieldView{static_cast<std::int64_t>(raw)};
    } else {
      out[i] = FieldView{strings[f.ordinal]};
    }
  }
  return true;
}

const WirePlan* Descriptions::wire_plan(std::uint32_t type) const {
  if (type < plan_cache_.size()) {
    // Undescribed slots hold a default (non-viewable) plan; callers check
    // viewable(), so returning it is equivalent to nullptr for them.
    return &plan_cache_[type];
  }
  auto it = plans_.find(type);
  return it == plans_.end() ? nullptr : &it->second;
}

std::optional<FieldView> Descriptions::wire_field(const RecordView& v,
                                                  std::string_view name) const {
  const WirePlan* plan = wire_plan(v.type);
  if (!plan || !plan->viewable()) return std::nullopt;
  const std::size_t i = plan->index_of(name);
  if (i == static_cast<std::size_t>(-1)) return std::nullopt;
  return plan->field(v, i);
}

const std::string& default_descriptions_text() {
  static const std::string text = R"(# Standard meter event record descriptions (cf. paper Fig 3.2).
# Format: NAME type, field,offset,length,base ... ; offsets are relative to
# the record body; length 0 / base 0 marks a counted string whose byte
# count is the earlier <name>Len field.
HEADER size machine cpuTime procTime traceType
SEND 1, pid,0,4,10 pc,4,4,10 sock,8,8,10 msgLength,16,4,10 destNameLen,20,4,10 destName,24,0,0
RECEIVE 2, pid,0,4,10 pc,4,4,10 sock,8,8,10 msgLength,16,4,10 sourceNameLen,20,4,10 sourceName,24,0,0
RECVCALL 3, pid,0,4,10 pc,4,4,10 sock,8,8,10
SOCKET 4, pid,0,4,10 pc,4,4,10 sock,8,8,10 domain,16,4,10 socktype,20,4,10 protocol,24,4,10
DUP 5, pid,0,4,10 pc,4,4,10 sock,8,8,10 newSock,16,8,10
DESTSOCK 6, pid,0,4,10 pc,4,4,10 sock,8,8,10
FORK 7, pid,0,4,10 pc,4,4,10 newPid,8,4,10
ACCEPT 8, pid,0,4,10 pc,4,4,10 sock,8,8,10 newSock,16,8,10 sockNameLen,24,4,10 peerNameLen,28,4,10 sockName,32,0,0 peerName,32,0,0
CONNECT 9, pid,0,4,10 pc,4,4,10 sock,8,8,10 sockNameLen,16,4,10 peerNameLen,20,4,10 sockName,24,0,0 peerName,24,0,0
TERMPROC 10, pid,0,4,10 pc,4,4,10 status,8,4,10
)";
  return text;
}

}  // namespace dpm::filter
