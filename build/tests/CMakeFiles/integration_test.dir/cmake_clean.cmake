file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/acquire_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/acquire_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/apps_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/apps_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/controller_edge_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/controller_edge_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/count_filter_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/count_filter_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/daemon_rpc_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/daemon_rpc_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/failure_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/failure_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/grid_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/grid_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/pipeline_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/pipeline_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/scale_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/scale_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/session_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/session_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/topology_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/topology_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
