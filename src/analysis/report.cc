#include "analysis/report.h"

#include "util/strings.h"

namespace dpm::analysis {

std::string render_comm_stats(const CommStats& stats) {
  std::string out = "== communication statistics ==\n";
  out += util::strprintf("events: %llu  messages sent: %llu  bytes sent: %llu\n",
                         static_cast<unsigned long long>(stats.total_events),
                         static_cast<unsigned long long>(stats.total_messages),
                         static_cast<unsigned long long>(stats.total_bytes));
  out += "process        sends  bytes    recvs  bytes    socks forks cpu(ms)\n";
  for (const auto& [key, p] : stats.per_process) {
    out += util::strprintf("%-14s %-6llu %-8llu %-6llu %-8llu %-5llu %-5llu %lld%s\n",
                           proc_key_text(key).c_str(),
                           static_cast<unsigned long long>(p.sends),
                           static_cast<unsigned long long>(p.send_bytes),
                           static_cast<unsigned long long>(p.recvs),
                           static_cast<unsigned long long>(p.recv_bytes),
                           static_cast<unsigned long long>(p.sockets_created),
                           static_cast<unsigned long long>(p.forks),
                           static_cast<long long>(p.final_proc_time / 1000),
                           p.terminated ? "" : " (no termproc)");
  }
  out += render_graph(stats.graph);
  return out;
}

std::string render_graph(const CommGraph& graph) {
  std::string out = "-- communication graph --\n";
  if (graph.edges.empty()) {
    out += "(no attributable message traffic)\n";
    return out;
  }
  for (const auto& e : graph.edges) {
    out += util::strprintf("%s -> %s : %llu msgs, %llu bytes\n",
                           proc_key_text(e.from).c_str(),
                           proc_key_text(e.to).c_str(),
                           static_cast<unsigned long long>(e.messages),
                           static_cast<unsigned long long>(e.bytes));
  }
  return out;
}

std::string render_ordering(const Trace& trace, const Ordering& ordering) {
  std::string out = "== event ordering ==\n";
  out += util::strprintf(
      "events: %zu  matched message pairs: %zu (cross-machine: %zu)\n",
      trace.events.size(), ordering.message_pairs,
      ordering.cross_machine_pairs);
  out += util::strprintf(
      "clock anomalies (receive stamped before send): %zu, worst %lld us\n",
      ordering.clock_anomalies,
      static_cast<long long>(ordering.max_anomaly_us));
  if (ordering.had_cycle) out += "warning: constraint cycle (mismatched pairs)\n";
  return out;
}

std::string render_parallelism(const ParallelismProfile& p) {
  std::string out = "== parallelism ==\n";
  out += util::strprintf(
      "processes: %zu  window: %lld us  average parallelism: %.2f\n",
      p.processes, static_cast<long long>(p.total_us), p.average);
  for (std::size_t k = 0; k < p.time_at_level.size(); ++k) {
    if (p.time_at_level[k] == 0) continue;
    out += util::strprintf("  %zu active: %5.1f%%\n", k, 100.0 * p.fraction_at(k));
  }
  return out;
}

std::string render_connections(const std::vector<ConnStat>& conns) {
  std::string out = "-- connections --\n";
  if (conns.empty()) {
    out += "(no matched stream connections)\n";
    return out;
  }
  for (const auto& c : conns) {
    out += util::strprintf(
        "%s(s%llu) <-> %s(s%llu): %llu msgs/%llu B ->, %llu msgs/%llu B <-\n",
        proc_key_text(c.a.proc).c_str(),
        static_cast<unsigned long long>(c.a.sock),
        proc_key_text(c.b.proc).c_str(),
        static_cast<unsigned long long>(c.b.sock),
        static_cast<unsigned long long>(c.msgs_ab),
        static_cast<unsigned long long>(c.bytes_ab),
        static_cast<unsigned long long>(c.msgs_ba),
        static_cast<unsigned long long>(c.bytes_ba));
  }
  return out;
}

std::string full_report(const Trace& trace) {
  const CommStats stats = communication_statistics(trace);
  const Ordering ordering = order_events(trace);
  const ParallelismProfile parallelism = measure_parallelism(trace);
  return render_comm_stats(stats) + render_connections(connection_table(trace)) +
         render_ordering(trace, ordering) + render_parallelism(parallelism) +
         "== timeline ==\n" + render_timeline(trace) +
         diagnose(trace).render();
}

}  // namespace dpm::analysis
