// End-to-end instrumentation: the registry's counters, gauges, and
// histograms must match hand-computed values for scripted workloads —
// kernel meter emits, fabric deliveries, a daemon RPC, and a truncated
// meter connection — plus the periodic snapshot timer and the
// dropped-batch gauge regression (the pending-bytes gauge must return to
// zero even when a flush drops its batch).
#include <gtest/gtest.h>

#include "control/session.h"
#include "apps/apps.h"
#include "filter/filter_program.h"
#include "kernel/meter_hooks.h"
#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/meterflags.h"
#include "meter/metermsgs.h"
#include "net/fabric.h"
#include "obs/snapshot.h"
#include "testing.h"

namespace dpm {
namespace {

class InstrumentationTest : public ::testing::Test {
 protected:
  InstrumentationTest() { reset({}); }

  void reset(kernel::WorldConfig cfg) {
    world_ = std::make_unique<kernel::World>(cfg);
    machines_ = dpm::testing::add_machines(*world_, {"red", "green"});
    world_->add_account_everywhere(100);
  }

  /// Byte sink on green:4500 (where metered batches land).
  void spawn_sink() {
    (void)world_->spawn(machines_[1], "sink", 100, [](kernel::Sys& sys) {
      auto ls = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 8);
      std::vector<kernel::Fd> conns;
      for (;;) {
        std::vector<kernel::Fd> fds = conns;
        fds.push_back(*ls);
        auto sel = sys.select(fds, false, util::sec(30));
        if (!sel.ok() || sel->timed_out) break;
        for (kernel::Fd fd : sel->readable) {
          if (fd == *ls) {
            auto c = sys.accept(*ls);
            if (c.ok()) conns.push_back(*c);
            continue;
          }
          auto data = sys.recv(fd, 65536);
          if (!data.ok() || data->empty()) (void)sys.close(fd);
        }
      }
    });
  }

  std::uint64_t counter(const std::string& key) {
    return world_->obs().counter(key).value();
  }

  std::unique_ptr<kernel::World> world_;
  std::vector<kernel::MachineId> machines_;
};

TEST_F(InstrumentationTest, MeterCountersMatchBatchArithmetic) {
  kernel::WorldConfig cfg;
  cfg.meter_buffer_msgs = 8;
  cfg.meter_buffer_bytes = 1 << 20;
  reset(cfg);
  spawn_sink();
  (void)world_->spawn(machines_[0], "app", 100, [](kernel::Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("green", 4500);
    auto ms = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    ASSERT_TRUE(sys.connect(*ms, *addr).ok());
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SEND), *ms)
                    .ok());
    ASSERT_TRUE(sys.close(*ms).ok());
    auto pair = sys.socketpair();
    for (int i = 0; i < 32; ++i) (void)sys.send(pair->first, "x");
  });
  world_->run();

  // 32 metered sends in batches of exactly 8: 4 full flushes, no drops.
  // (termproc is not flagged, so no partial batch remains at exit.)
  EXPECT_EQ(counter("kernel.meter_events"), 32u);
  EXPECT_EQ(counter("kernel.meter_flushes"), 4u);
  EXPECT_EQ(counter("kernel.meter_dropped_batches"), 0u);
  EXPECT_EQ(counter("kernel.meter_dropped_bytes"), 0u);

  const obs::Histogram& msgs =
      world_->obs().histogram("kernel.meter_batch_msgs");
  EXPECT_EQ(msgs.count(), 4u);
  EXPECT_EQ(msgs.sum(), 32);
  EXPECT_EQ(msgs.min(), 8);
  EXPECT_EQ(msgs.max(), 8);

  // Every flushed byte was accounted: batch-bytes histogram sums to the
  // delivered byte counter, and the pending gauge drained back to zero.
  const obs::Histogram& bytes =
      world_->obs().histogram("kernel.meter_batch_bytes");
  EXPECT_EQ(bytes.count(), 4u);
  EXPECT_EQ(static_cast<std::uint64_t>(bytes.sum()),
            counter("kernel.meter_bytes"));
  const obs::Gauge& pending =
      world_->obs().gauge("kernel.meter_pending_bytes");
  EXPECT_EQ(pending.value(), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(pending.high_water()),
            counter("kernel.meter_bytes") / 4);  // one batch's bytes

  // The registry view and the legacy struct view are the same numbers.
  const kernel::MeterStats stats = world_->meter_stats();
  EXPECT_EQ(stats.events, counter("kernel.meter_events"));
  EXPECT_EQ(stats.flushes, counter("kernel.meter_flushes"));
  EXPECT_EQ(stats.bytes, counter("kernel.meter_bytes"));
}

TEST(FabricInstrumentation, DeliveryCountersMatchHandComputedValues) {
  sim::Executive exec;
  obs::Registry reg;
  exec.set_obs(&reg);
  net::Fabric fabric(exec, 7, &reg);
  net::NetworkConfig cfg;
  cfg.base_latency = util::usec(500);
  cfg.per_kb = util::usec(0);
  cfg.jitter_max = util::usec(0);
  fabric.configure_network(0, cfg);

  int delivered = 0;
  for (std::size_t size : {100u, 200u, 300u}) {
    fabric.send(0, 1, 2, 0, false, size, [&] { ++delivered; });
  }
  // All three are in flight before the executive runs.
  EXPECT_EQ(reg.gauge("net.in_flight").value(), 3);
  exec.run();

  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(reg.counter("net.packets_sent").value(), 3u);
  EXPECT_EQ(reg.counter("net.bytes_sent").value(), 600u);
  EXPECT_EQ(reg.counter("net.packets_dropped").value(), 0u);
  EXPECT_EQ(reg.gauge("net.in_flight").value(), 0);
  EXPECT_EQ(reg.gauge("net.in_flight").high_water(), 3);
  // Zero jitter, zero per-kb: every delivery takes exactly base latency.
  const obs::Histogram& h = reg.histogram("net.delivery_us");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1500);
  EXPECT_EQ(h.min(), 500);
  EXPECT_EQ(h.max(), 500);

  // A guaranteed datagram drop: the attempt and the dropped bytes count,
  // but nothing flies and bytes_sent is not charged (regression: drops
  // used to inflate net.bytes_sent).
  cfg.dgram_loss = 1.0;
  fabric.configure_network(0, cfg);
  fabric.send(0, 1, 2, 0, true, 50, [&] { ++delivered; });
  exec.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(reg.counter("net.packets_sent").value(), 4u);
  EXPECT_EQ(reg.counter("net.packets_dropped").value(), 1u);
  EXPECT_EQ(reg.counter("net.bytes_sent").value(), 600u);
  EXPECT_EQ(reg.counter("net.bytes_dropped").value(), 50u);
  EXPECT_EQ(reg.histogram("net.delivery_us").count(), 3u);
}

TEST(DaemonInstrumentation, OneControllerCommandIsOneRpc) {
  kernel::World world(dpm::testing::quick_config());
  dpm::testing::add_machines(world, {"red", "green"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "red", .uid = 100});
  world.run();
  (void)session.drain_output();

  obs::Registry& reg = world.obs();
  const std::uint64_t calls0 = reg.counter("daemon.rpc_calls").value();
  const std::uint64_t served0 = reg.counter("daemon.requests_served").value();
  const std::uint64_t cmds0 = reg.counter("control.commands").value();
  const std::uint64_t filter0 = reg.histogram("daemon.rpc_filter_us").count();

  const std::string out = session.command("filter f1 green");
  EXPECT_NE(out.find("created"), std::string::npos) << out;

  // One command, one create RPC, served once, no failures; the RPC's
  // request->reply latency landed in its per-type histogram.
  EXPECT_EQ(reg.counter("control.commands").value(), cmds0 + 1);
  EXPECT_EQ(reg.counter("daemon.rpc_calls").value(), calls0 + 1);
  EXPECT_EQ(reg.counter("daemon.requests_served").value(), served0 + 1);
  EXPECT_EQ(reg.counter("daemon.rpc_failures").value(), 0u);
  const obs::Histogram& h = reg.histogram("daemon.rpc_filter_us");
  EXPECT_EQ(h.count(), filter0 + 1);
  EXPECT_GT(h.sum(), 0);  // the round trip takes simulated time

  session.send_line("bye");
  world.run();
}

TEST(FilterInstrumentation, TruncatedConnectionIsCountedOnce) {
  auto d = filter::Descriptions::parse(filter::default_descriptions_text());
  auto t = filter::Templates::parse("");
  ASSERT_TRUE(d.has_value() && t.has_value());
  filter::FilterEngine engine(std::move(*d), std::move(*t));

  meter::MeterMsg m;
  m.body = meter::MeterRecv{1, 0, 3, 64, "228320140"};
  const util::Bytes wire = m.serialize();

  // One whole record plus a second cut short by the connection ending.
  util::Bytes data = wire;
  data.insert(data.end(), wire.begin(), wire.end() - 1);
  (void)engine.feed(7, data);
  engine.end_connection(7);

  obs::Registry& reg = engine.obs();
  EXPECT_EQ(reg.counter("filter.records_in").value(), 1u);
  EXPECT_EQ(reg.counter("filter.accepted").value(), 1u);
  EXPECT_EQ(reg.counter("filter.truncated").value(), 1u);
  EXPECT_EQ(reg.counter("filter.malformed").value(), 1u);
  EXPECT_EQ(reg.counter("filter.bytes_in").value(), data.size());
  const filter::FilterStats st = engine.stats();
  EXPECT_EQ(st.truncated, 1u);
  EXPECT_EQ(st.malformed, 1u);
}

TEST_F(InstrumentationTest, DroppedBatchDrainsPendingGauge) {
  // Regression: meter_flush must decrement the pending-bytes gauge on the
  // dropped-batch path too, not only on delivery — otherwise a process
  // whose meter socket is torn down leaks pending bytes in the gauge
  // forever.
  kernel::WorldConfig cfg;
  cfg.meter_buffer_msgs = 1000;  // no threshold flush
  cfg.meter_buffer_bytes = 1 << 20;
  reset(cfg);
  spawn_sink();
  kernel::Pid pid = 0;
  (void)world_->spawn(machines_[0], "app", 100, [&](kernel::Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("green", 4500);
    auto ms = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    ASSERT_TRUE(sys.connect(*ms, *addr).ok());
    ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                             static_cast<std::int32_t>(meter::M_SEND), *ms)
                    .ok());
    ASSERT_TRUE(sys.close(*ms).ok());
    auto pair = sys.socketpair();
    for (int i = 0; i < 5; ++i) (void)sys.send(pair->first, "x");
    pid = sys.getpid();
    sys.sleep(util::sec(1));
  });
  world_->run_for(util::msec(100));

  kernel::Process* p = world_->find_process(machines_[0], pid);
  ASSERT_NE(p, nullptr);
  const obs::Gauge& pending =
      world_->obs().gauge("kernel.meter_pending_bytes");
  ASSERT_GT(pending.value(), 0);  // real emits filled the buffer
  EXPECT_EQ(pending.value(), static_cast<std::int64_t>(p->meter_pending.size()));
  const std::int64_t buffered = pending.value();

  // The meter socket vanishes out from under the process (Appendix C);
  // the flush drops the batch.
  p->meter_sock = 0;
  kernel::meter_flush(*world_, *p);

  EXPECT_EQ(pending.value(), 0);
  EXPECT_EQ(counter("kernel.meter_dropped_batches"), 1u);
  EXPECT_EQ(counter("kernel.meter_dropped_bytes"),
            static_cast<std::uint64_t>(buffered));
  EXPECT_EQ(counter("kernel.meter_flushes"), 0u);
  world_->run();
  EXPECT_EQ(pending.value(), 0);  // exit flush finds nothing pending
}

TEST_F(InstrumentationTest, PeriodicSnapshotsAccumulateUntilStopped) {
  auto headers = [](const std::string& s) {
    std::size_t n = 0;
    for (std::size_t pos = 0;
         (pos = s.find("{\"kind\":\"snapshot\"", pos)) != std::string::npos;
         ++pos) {
      ++n;
    }
    return n;
  };

  std::string sink;
  world_->start_obs_snapshots(util::msec(10), &sink);
  world_->run_for(util::msec(35));
  EXPECT_EQ(headers(sink), 3u);  // fired at 10, 20, 30 ms

  world_->stop_obs_snapshots();
  world_->run_for(util::msec(50));
  EXPECT_EQ(headers(sink), 3u);  // the stopped timer never fires again

  // The accumulated stream is schema-valid and parses to the last
  // snapshot.
  EXPECT_EQ(obs::validate_snapshot(sink), "");
  auto snap = obs::parse_snapshot(sink);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->seq, 3u);
  EXPECT_EQ(snap->t_us, 30000);

  // On-demand snapshots keep the sequence monotonic.
  auto on_demand = obs::parse_snapshot(world_->obs_snapshot());
  ASSERT_TRUE(on_demand.has_value());
  EXPECT_EQ(on_demand->seq, 4u);
}

}  // namespace
}  // namespace dpm
