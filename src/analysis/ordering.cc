#include "analysis/ordering.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace dpm::analysis {

namespace {

/// A directed channel for message matching: sends at one endpoint, the
/// receives they produce at the other.
struct ChannelQueues {
  std::deque<std::size_t> sends;
  std::deque<std::size_t> recvs;
};

}  // namespace

Ordering order_events(const Trace& trace) {
  Ordering out;
  const std::size_t n = trace.events.size();
  out.events.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.events[i].index = i;

  ConnectionMatcher matcher(trace);

  // ---- Match sends to receives per directed channel ----
  // Stream channels are keyed by the *sending* endpoint (proc, sock);
  // datagram traffic by the (source-name owner endpoint, receiver
  // endpoint) pair.
  std::map<std::pair<ProcKey, std::uint64_t>, ChannelQueues> stream_chans;
  std::map<std::pair<Endpoint, ProcKey>, ChannelQueues> dgram_chans;

  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = trace.events[i];
    if (e.type == meter::EventType::send) {
      if (e.dest_name.empty()) {
        stream_chans[{e.proc(), e.sock}].sends.push_back(i);
      }
      // Datagram sends are routed below, once every name is learned.
    } else if (e.type == meter::EventType::recv) {
      if (e.source_name.empty()) {
        // Stream receive: find the remote (sending) endpoint.
        if (auto remote = matcher.remote_of(e.proc(), e.sock)) {
          stream_chans[{remote->proc, remote->sock}].recvs.push_back(i);
        }
      } else if (auto owner = matcher.owner_of_name(e.source_name)) {
        dgram_chans[{*owner, e.proc()}].recvs.push_back(i);
      }
    }
  }
  // Datagram sends: route to the channel of (own endpoint, dest owner).
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = trace.events[i];
    if (e.type != meter::EventType::send || e.dest_name.empty()) continue;
    if (auto owner = matcher.owner_of_name(e.dest_name)) {
      // The sender's own endpoint may be known by its bound name via a
      // connect record; otherwise identify it by (proc, sock).
      dgram_chans[{Endpoint{e.proc(), e.sock}, owner->proc}].sends.push_back(i);
    }
  }
  // A datagram channel only pairs when the receive records' sourceName
  // resolves to the same endpoint (proc, sock) the sends came from —
  // which the trace guarantees when the sender connect()ed its socket.

  // Pair k-th send with k-th receive.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  auto add_edge = [&](std::size_t a, std::size_t b) {
    succ[a].push_back(b);
    ++indeg[b];
  };

  auto pair_queues = [&](ChannelQueues& q) {
    const std::size_t k = std::min(q.sends.size(), q.recvs.size());
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t s = q.sends[i];
      const std::size_t r = q.recvs[i];
      out.events[r].matched_send = s;
      add_edge(s, r);
      ++out.message_pairs;
      const Event& se = trace.events[s];
      const Event& re = trace.events[r];
      if (se.machine != re.machine) {
        ++out.cross_machine_pairs;
        if (re.cpu_time < se.cpu_time) {
          ++out.clock_anomalies;
          out.max_anomaly_us =
              std::max(out.max_anomaly_us, se.cpu_time - re.cpu_time);
        }
      }
    }
  };
  for (auto& [key, q] : stream_chans) pair_queues(q);
  for (auto& [key, q] : dgram_chans) pair_queues(q);

  // ---- Program order within each process ----
  std::map<ProcKey, std::size_t> last_of;
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = last_of.try_emplace(trace.events[i].proc(), i);
    if (!fresh) {
      add_edge(it->second, i);
      it->second = i;
    }
  }

  // ---- Lamport clocks by topological order (Kahn) ----
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    out.events[i].lamport = 1;
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    ++visited;
    for (std::size_t j : succ[i]) {
      out.events[j].lamport =
          std::max(out.events[j].lamport, out.events[i].lamport + 1);
      if (--indeg[j] == 0) ready.push_back(j);
    }
  }
  out.had_cycle = visited != n;  // possible only from mis-matched pairs
  return out;
}

ClockAlignment estimate_clock_alignment(const Trace& trace,
                                        const Ordering& ordering) {
  ClockAlignment out;

  // Minimum observed (recv - send) per directed machine pair.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::int64_t> min_delta;
  std::set<std::uint16_t> machines;
  for (const Event& e : trace.events) machines.insert(e.machine);

  for (const OrderedEvent& oe : ordering.events) {
    if (!oe.matched_send) continue;
    const Event& recv = trace.events[oe.index];
    const Event& send = trace.events[*oe.matched_send];
    if (recv.machine == send.machine) continue;
    const std::int64_t delta = recv.cpu_time - send.cpu_time;
    auto key = std::make_pair(send.machine, recv.machine);
    auto it = min_delta.find(key);
    if (it == min_delta.end() || delta < it->second) min_delta[key] = delta;
  }

  // Pairwise offset estimates; BFS over the "has traffic" graph anchors
  // each component at its lowest machine id.
  auto pair_offset = [&](std::uint16_t a,
                         std::uint16_t b) -> std::optional<std::int64_t> {
    auto ab = min_delta.find({a, b});
    auto ba = min_delta.find({b, a});
    if (ab != min_delta.end() && ba != min_delta.end()) {
      return (ab->second - ba->second) / 2;  // offset_b - offset_a
    }
    if (ab != min_delta.end()) return ab->second;  // latency unknown: bound
    if (ba != min_delta.end()) return -ba->second;
    return std::nullopt;
  };

  std::set<std::uint16_t> done;
  for (std::uint16_t root : machines) {
    if (done.count(root)) continue;
    out.offset_us[root] = 0;
    done.insert(root);
    std::deque<std::uint16_t> frontier{root};
    while (!frontier.empty()) {
      const std::uint16_t a = frontier.front();
      frontier.pop_front();
      for (std::uint16_t b : machines) {
        if (done.count(b)) continue;
        auto off = pair_offset(a, b);
        if (!off) continue;
        out.offset_us[b] = out.offset_us[a] + *off;
        done.insert(b);
        frontier.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace dpm::analysis
