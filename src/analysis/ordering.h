// Global event ordering (§4.1).
//
// "The separate machines' times ... only roughly correspond to a global
// time. Statements regarding the global ordering of events can only be
// made on the basis of evidence within the trace. For example, since a
// message must be sent before it may be received, the times of sending
// and receiving a message can always be ordered relative to one another.
// Given these constraints, much of the global ordering can be deduced."
//
// order_events() matches send and receive records into message pairs
// (k-th send on a channel with the k-th receive at its far end — exact
// for datagrams, an approximation for byte streams), combines them with
// per-process program order into a happens-before DAG, assigns Lamport
// clocks, and reports local-clock anomalies: matched pairs whose receive
// carries an *earlier* local timestamp than the send, which can only be
// clock skew.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/structure.h"
#include "analysis/trace_reader.h"

namespace dpm::analysis {

struct OrderedEvent {
  std::size_t index = 0;     // event index in the trace
  std::uint64_t lamport = 0;
  std::optional<std::size_t> matched_send;  // for receive events
};

struct Ordering {
  std::vector<OrderedEvent> events;  // parallel to trace.events
  std::size_t message_pairs = 0;     // matched send/receive pairs
  std::size_t cross_machine_pairs = 0;
  std::size_t clock_anomalies = 0;   // recv local time < send local time
  std::int64_t max_anomaly_us = 0;
  bool had_cycle = false;  // matching produced a cyclic constraint set

  std::uint64_t lamport_of(std::size_t trace_index) const {
    return events[trace_index].lamport;
  }
};

Ordering order_events(const Trace& trace);

/// Per-machine clock offset estimates derived from the trace itself.
///
/// For a matched message pair A→B, recvLocal − sendLocal = latency +
/// (offset_B − offset_A); with roughly symmetric latency the midpoint of
/// the two directions' minima estimates offset_B − offset_A (the same
/// principle as the TEMPO time controller the paper cites). Offsets are
/// relative to the lowest-numbered machine in each connected component;
/// machines with no cross-traffic keep offset 0.
struct ClockAlignment {
  std::map<std::uint16_t, std::int64_t> offset_us;

  /// The event's local time shifted onto the reference machine's clock.
  std::int64_t aligned(const Event& e) const {
    auto it = offset_us.find(e.machine);
    return it == offset_us.end() ? e.cpu_time : e.cpu_time - it->second;
  }
};

ClockAlignment estimate_clock_alignment(const Trace& trace,
                                        const Ordering& ordering);

}  // namespace dpm::analysis
