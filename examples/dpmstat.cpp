// dpmstat: inspect monitor-of-the-monitor snapshots (obs/snapshot.h).
//
//   dpmstat print <snapshot.jsonl>        pretty-print one snapshot
//   dpmstat diff <a.jsonl> <b.jsonl>      what changed between two snapshots
//   dpmstat json <snapshot.jsonl>         re-emit as a JSON array
//   dpmstat --smoke [out.jsonl]           run a scripted session, snapshot it,
//                                         validate the schema, print + diff
//   dpmstat --watch <interval_ms> [--frames N] [--smoke]
//                                         periodic refresh: drive a live
//                                         session in frames, printing each
//                                         snapshot's headline and the diff
//                                         from the previous frame
//
// The --smoke mode doubles as the ctest schema check: it drives a small
// metered session, captures world.obs_snapshot() twice, validates both
// against the JSONL schema, and requires instruments from the kernel,
// net, filter, daemon, control, and sim subsystems to be present.
// --watch --smoke is its periodic sibling: every frame's snapshot must
// validate and snapshot sequence numbers must strictly increase.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"
#include "obs/snapshot.h"
#include "util/strings.h"
#include "util/time.h"

namespace {

using namespace dpm;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "dpmstat: cannot open " << path << "\n";
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

obs::Snapshot parse_or_die(const std::string& text, const std::string& what) {
  std::string err;
  auto snap = obs::parse_snapshot(text, &err);
  if (!snap) {
    std::cerr << "dpmstat: " << what << ": " << err << "\n";
    std::exit(1);
  }
  return std::move(*snap);
}

void pretty_print(const obs::Snapshot& snap) {
  std::cout << util::strprintf(
      "snapshot seq=%llu t=%lldus (%zu counters, %zu gauges, %zu histograms, "
      "%zu span events)\n",
      static_cast<unsigned long long>(snap.seq),
      static_cast<long long>(snap.t_us), snap.counters.size(),
      snap.gauges.size(), snap.histograms.size(), snap.spans.size());
  std::cout << "subsystems:";
  for (const auto& s : snap.subsystems()) std::cout << " " << s;
  std::cout << "\n\ncounters:\n";
  for (const auto& [key, v] : snap.counters) {
    std::cout << util::strprintf("  %-40s %llu\n", key.c_str(),
                                 static_cast<unsigned long long>(v));
  }
  std::cout << "\ngauges (value / high-water):\n";
  for (const auto& [key, g] : snap.gauges) {
    std::cout << util::strprintf("  %-40s %lld / %lld\n", key.c_str(),
                                 static_cast<long long>(g.value),
                                 static_cast<long long>(g.high_water));
  }
  std::cout << "\nhistograms (count, p50/p90/p99, max):\n";
  for (const auto& [key, h] : snap.histograms) {
    std::cout << util::strprintf(
        "  %-40s n=%llu p50=%lld p90=%lld p99=%lld max=%lld\n", key.c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<long long>(h.p50), static_cast<long long>(h.p90),
        static_cast<long long>(h.p99), static_cast<long long>(h.max));
  }
  if (!snap.spans.empty()) {
    std::cout << "\nrecent spans:\n";
    for (const auto& ev : snap.spans) {
      std::cout << util::strprintf(
          "  [%6lld us] %s span=%llu%s%s\n", static_cast<long long>(ev.t_us),
          ev.begin ? "begin" : "end  ",
          static_cast<unsigned long long>(ev.id),
          ev.name.empty() ? "" : (" " + ev.name).c_str(),
          ev.parent != 0
              ? util::strprintf(" (parent=%llu)",
                                static_cast<unsigned long long>(ev.parent))
                    .c_str()
              : "");
    }
  }
}

/// A scripted two-machine metered session; returns its world snapshots
/// taken mid-run and at the end.
int run_smoke(const std::string& out_path) {
  kernel::World world;
  world.add_machine("red");
  world.add_machine("green");
  for (int i = 1; i <= 3; ++i) world.add_machine("g" + std::to_string(i));
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  control::MonitorSession session(world, {.host = "red", .uid = 100});
  world.run();
  (void)session.drain_output();

  // Batched RPC + a small fan-in tree (3 leaves at arity 2 gives two
  // aggregators), so the shard.*, localfilter.*, aggregator.*, and fanin.*
  // instruments all appear in the snapshot.
  (void)session.command("rpcmode batched 4");
  (void)session.command("filter f1 red");
  (void)session.command("fanin f1 2 g 1 3");
  (void)session.command("newjob smoke");
  (void)session.command("addprocess smoke g1 pingpong_server 4700 3");
  (void)session.command("addprocess smoke g2 pingpong_client g1 4700 3 64");
  (void)session.command("setflags smoke all");
  const std::string mid = world.obs_snapshot();

  (void)session.command("startjob smoke");
  (void)session.command("removejob smoke");
  session.send_line("bye");
  world.run();
  const std::string final_snap = world.obs_snapshot();

  for (const auto* s : {&mid, &final_snap}) {
    const std::string err = obs::validate_snapshot(*s);
    if (!err.empty()) {
      std::cerr << "dpmstat --smoke: invalid snapshot: " << err << "\n";
      return 1;
    }
  }

  const obs::Snapshot a = parse_or_die(mid, "mid snapshot");
  const obs::Snapshot b = parse_or_die(final_snap, "final snapshot");

  // The whole monitor must be visible: one registry, every layer.
  const std::vector<std::string> want = {
      "aggregator", "control", "daemon", "fanin", "filter",
      "kernel",     "localfilter", "net", "shard", "sim"};
  const auto have = b.subsystems();
  for (const auto& w : want) {
    if (std::find(have.begin(), have.end(), w) == have.end()) {
      std::cerr << "dpmstat --smoke: subsystem '" << w
                << "' missing from snapshot\n";
      return 1;
    }
  }

  std::ofstream out(out_path, std::ios::binary);
  out << final_snap;
  out.close();
  std::cout << "wrote " << out_path << "\n\n";

  pretty_print(b);
  std::cout << "\n" << obs::diff_snapshots(a, b);
  return 0;
}

/// Drives a live metered session in fixed frames, snapshotting between
/// them — the "top for the monitor itself" loop.
int run_watch(std::int64_t interval_ms, int frames, bool smoke) {
  if (interval_ms <= 0 || frames < 2) {
    std::cerr << "dpmstat --watch: interval must be > 0 and frames >= 2\n";
    return 2;
  }
  kernel::World world;
  world.add_machine("red");
  world.add_machine("green");
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  control::MonitorSession session(world, {.host = "red", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 red");
  (void)session.command("newjob watch");
  (void)session.command("addprocess watch green pingpong_server 4950 24");
  (void)session.command(
      "addprocess watch red pingpong_client green 4950 24 128");
  (void)session.command("setflags watch all");
  session.send_line("startjob watch");

  std::optional<obs::Snapshot> prev;
  std::uint64_t last_seq = 0;
  int valid = 0;
  for (int f = 0; f < frames; ++f) {
    world.run_for(util::msec(interval_ms));
    const std::string text = world.obs_snapshot();
    const std::string err = obs::validate_snapshot(text);
    if (!err.empty()) {
      std::cerr << "dpmstat --watch: invalid snapshot at frame " << f << ": "
                << err << "\n";
      return 1;
    }
    obs::Snapshot snap = parse_or_die(text, "watch snapshot");
    if (valid > 0 && snap.seq <= last_seq) {
      std::cerr << "dpmstat --watch: snapshot seq did not advance (frame "
                << f << ")\n";
      return 1;
    }
    std::cout << util::strprintf(
        "-- frame %-3d seq=%llu t=%lld us (%zu counters, %zu gauges, %zu "
        "histograms)\n",
        f, static_cast<unsigned long long>(snap.seq),
        static_cast<long long>(snap.t_us), snap.counters.size(),
        snap.gauges.size(), snap.histograms.size());
    if (prev) std::cout << obs::diff_snapshots(*prev, snap);
    last_seq = snap.seq;
    ++valid;
    prev = std::move(snap);
  }

  session.send_line("bye");
  world.run();

  if (smoke) {
    if (valid < 2) {
      std::cerr << "dpmstat --watch --smoke: fewer than 2 valid snapshots\n";
      return 1;
    }
    std::cout << "dpmstat --watch --smoke: OK (" << valid
              << " schema-valid snapshots, seq strictly increasing)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: dpmstat print <snapshot.jsonl>\n"
                 "       dpmstat diff <a.jsonl> <b.jsonl>\n"
                 "       dpmstat json <snapshot.jsonl>\n"
                 "       dpmstat --smoke [out.jsonl]\n"
                 "       dpmstat --watch <interval_ms> [--frames N] "
                 "[--smoke]\n";
    return 2;
  }

  if (args[0] == "--smoke") {
    return run_smoke(args.size() > 1 ? args[1] : "DPMSTAT_smoke.jsonl");
  }
  if (args[0] == "--watch" && args.size() >= 2) {
    const auto interval = util::parse_int(args[1]);
    if (!interval) {
      std::cerr << "dpmstat --watch: bad interval '" << args[1] << "'\n";
      return 2;
    }
    int frames = 5;
    bool smoke = false;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--frames" && i + 1 < args.size()) {
        const auto n = util::parse_int(args[++i]);
        if (!n) {
          std::cerr << "dpmstat --watch: bad frame count\n";
          return 2;
        }
        frames = static_cast<int>(*n);
      } else if (args[i] == "--smoke") {
        smoke = true;
      } else {
        std::cerr << "dpmstat --watch: unknown argument '" << args[i]
                  << "'\n";
        return 2;
      }
    }
    return run_watch(*interval, frames, smoke);
  }
  if (args[0] == "print" && args.size() == 2) {
    const std::string text = read_file(args[1]);
    const std::string err = obs::validate_snapshot(text);
    if (!err.empty()) {
      std::cerr << "dpmstat: invalid snapshot: " << err << "\n";
      return 1;
    }
    pretty_print(parse_or_die(text, args[1]));
    return 0;
  }
  if (args[0] == "diff" && args.size() == 3) {
    const obs::Snapshot a = parse_or_die(read_file(args[1]), args[1]);
    const obs::Snapshot b = parse_or_die(read_file(args[2]), args[2]);
    std::cout << obs::diff_snapshots(a, b);
    return 0;
  }
  if (args[0] == "json" && args.size() == 2) {
    std::cout << obs::jsonl_to_json_array(read_file(args[1])) << "\n";
    return 0;
  }
  std::cerr << "dpmstat: bad arguments (run with no arguments for usage)\n";
  return 2;
}
