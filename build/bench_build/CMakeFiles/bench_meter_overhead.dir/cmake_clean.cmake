file(REMOVE_RECURSE
  "../bench/bench_meter_overhead"
  "../bench/bench_meter_overhead.pdb"
  "CMakeFiles/bench_meter_overhead.dir/bench_meter_overhead.cc.o"
  "CMakeFiles/bench_meter_overhead.dir/bench_meter_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meter_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
