#!/bin/sh
# Replay the fault-chaos suite under AddressSanitizer + UBSan.
#
# Builds the asan preset and runs every test carrying the `chaos` ctest
# label -- the fault_chaos_test fixed seeds (11, 74, 1903, 29041, 57005:
# full monitoring sessions under randomized FaultPlans) -- plus the
# scripted chaos_smoke example (partition + machine crash mid-session).
# Usage: scripts/check_chaos.sh [-j N]
set -eu

jobs="$(nproc 2>/dev/null || echo 4)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then
  jobs="$2"
fi

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs" -L chaos
ctest --preset asan -R '^chaos_smoke$'
