// Streaming causal analysis: the paper's off-line stage three, online.
//
// The paper analyzes traces only "after the measured computation has
// ended" (§4). LiveAnalysis consumes the same records one at a time —
// pushed by a filter sink while the computation runs, or tailed from a
// growing log — and maintains incrementally what order_events() computes
// in batch, plus what batch never could: a view of *now*.
//
//   * happens-before: send/receive pairing through the shared PairingCore
//     (identical pairs to order_events), program order, and Lamport
//     clocks by monotone relaxation — every new edge can only raise a
//     clock, so propagating increases along the (at most two) successors
//     of each raised node reaches the same fixpoint Kahn's algorithm
//     computes on the final DAG;
//   * critical path: alongside each Lamport clock, the maximum-cost path
//     cost into every event (program edges weighted by local elapsed
//     time, message edges by send→receive latency, both clamped at 0)
//     with a predecessor pointer; walking back from the costliest event
//     yields the path with its time attributed per process and per
//     channel;
//   * rolling-window stats: per-process and per-channel rates over the
//     last window_us of trace time (RollingWindow), latencies into
//     obs::Registry log2 histograms.
//
// A cyclic constraint set (only possible from mis-matched pairs) is
// detected when a Lamport clock exceeds the event count — the longest
// path in a DAG of n events is at most n — and freezes further
// relaxation; stats().had_cycle mirrors Ordering::had_cycle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/live/pairing.h"
#include "analysis/live/window.h"
#include "analysis/trace_reader.h"
#include "filter/filter_program.h"
#include "obs/registry.h"

namespace dpm::analysis::live {

struct LiveConfig {
  /// Rolling-stats window, in trace-time microseconds.
  std::int64_t window_us = 1'000'000;
  /// Also keep one registry latency histogram per directed channel
  /// ("live.chan_latency_us.<from>-><to>") besides the aggregate.
  bool per_channel_histograms = true;
  /// Park TTL in units of Lamport progress: an event parked awaiting
  /// routing evidence for more than this much progress is expelled as a
  /// per-channel *gap* (its evidence is presumed lost to a fault) instead
  /// of holding memory forever. The longest path in an n-event DAG is n,
  /// so the default never fires on a healthy trace shorter than 64k
  /// events — batch equivalence is exact there. 0 disables expulsion.
  std::uint64_t park_ttl = 65536;
};

/// How one happens-before edge was induced.
enum class EdgeKind : std::uint8_t { none, program, message };

/// Downstream consumers of the pairing/ordering stream (the predicate
/// detector, analysis/predicates/). Callbacks fire synchronously inside
/// add_event, in a fixed order: on_event for the new event (indices are
/// arrival order, the same ones lamport_of/time_of use), then on_pair for
/// every pair the event completed, then on_gap for every parked event the
/// TTL sweep expelled. The same trace fed in any chunking produces the
/// same callback sequence.
class LiveObserver {
 public:
  virtual ~LiveObserver() = default;
  virtual void on_event(std::size_t index, const Event& e) = 0;
  virtual void on_pair(std::size_t /*send_index*/, std::size_t /*recv_index*/) {
  }
  virtual void on_gap(std::size_t /*index*/) {}
};

class LiveAnalysis {
 public:
  /// `reg` is the registry the aggregator accounts through (the world's,
  /// when attached to a running session — its live.* instruments then
  /// appear in world.obs_snapshot()). Null keeps a private registry.
  explicit LiveAnalysis(LiveConfig cfg = {}, obs::Registry* reg = nullptr);

  /// Consumes one event. Indices are assigned by arrival order; the
  /// event's own `index` field is ignored.
  void add_event(const Event& e);

  // ---- happens-before state (mirrors Ordering for equivalence) ----------
  std::size_t events() const { return nodes_.size(); }
  std::uint64_t lamport_of(std::size_t i) const { return nodes_[i].lamport; }
  std::optional<std::size_t> matched_send_of(std::size_t i) const;

  // Per-event views (the Chrome exporter renders lanes from these).
  ProcKey proc_of(std::size_t i) const { return nodes_[i].proc; }
  meter::EventType type_of(std::size_t i) const { return nodes_[i].type; }
  std::int64_t time_of(std::size_t i) const { return nodes_[i].t_us; }
  std::int64_t cost_of(std::size_t i) const { return nodes_[i].cost; }

  struct Stats {
    std::size_t events = 0;
    std::size_t message_pairs = 0;
    std::size_t cross_machine_pairs = 0;
    std::size_t clock_anomalies = 0;  // recv local time < send local time
    std::int64_t max_anomaly_us = 0;
    bool had_cycle = false;
    bool pairing_disorder = false;  // PairingCore::disorder()
    std::size_t parked = 0;         // events awaiting routing evidence
    std::size_t gaps = 0;           // parked events expelled by the TTL
    std::uint64_t max_lamport = 0;
    std::uint64_t relax_steps = 0;  // total relaxation edge visits
    std::int64_t now_us = 0;        // largest local timestamp seen
  };
  Stats stats() const;

  // ---- rolling-window rates ---------------------------------------------
  struct ProcRates {
    ProcKey proc;
    std::uint64_t total_events = 0;
    std::uint64_t total_sends = 0;
    std::uint64_t total_recvs = 0;
    std::uint64_t total_bytes = 0;  // sent + received payload bytes
    double events_per_s = 0;        // over the rolling window
    double bytes_per_s = 0;
    bool terminated = false;  // saw TERMPROC
  };
  /// Sorted by ProcKey. Advances every window to the newest trace time.
  std::vector<ProcRates> process_rates();

  struct ChannelRates {
    ProcKey from;
    ProcKey to;
    std::uint64_t total_msgs = 0;
    std::uint64_t total_bytes = 0;
    double msgs_per_s = 0;  // over the rolling window
    double bytes_per_s = 0;
    double avg_latency_us = 0;        // over the window (clamped at 0)
    std::int64_t last_latency_us = 0;  // raw, may be negative under skew
  };
  std::vector<ChannelRates> channel_rates();

  // ---- critical path ------------------------------------------------------
  struct CritStep {
    std::size_t from = 0;  // event indices
    std::size_t to = 0;
    EdgeKind kind = EdgeKind::none;
    std::int64_t elapsed_us = 0;
    ProcKey from_proc;
    ProcKey to_proc;
  };
  struct CriticalPath {
    bool valid = false;         // false until any event arrived
    std::int64_t total_us = 0;  // cost of the costliest event
    std::size_t end_event = 0;
    std::vector<CritStep> steps;  // start → end
    std::map<ProcKey, std::int64_t> proc_us;  // program-edge attribution
    std::map<std::pair<ProcKey, ProcKey>, std::int64_t> channel_us;
  };
  /// Walks the predecessor chain back from the costliest event. O(path).
  CriticalPath critical_path() const;

  const LiveConfig& config() const { return cfg_; }
  obs::Registry& obs() { return *reg_; }

  /// Registers a downstream observer (not owned; must outlive the
  /// aggregator or be removed by destroying the aggregator first).
  void add_observer(LiveObserver* obs) { observers_.push_back(obs); }

 private:
  static constexpr std::uint32_t kNone = UINT32_MAX;

  struct Node {
    ProcKey proc;
    meter::EventType type = meter::EventType::send;
    std::int64_t t_us = 0;
    std::uint32_t bytes = 0;
    std::uint64_t lamport = 1;
    std::int64_t cost = 0;  // max-cost path into this event, microseconds
    std::uint32_t pred = kNone;          // cost's argmax predecessor
    EdgeKind pred_kind = EdgeKind::none;
    std::uint32_t prog_next = kNone;     // program-order successor
    std::uint32_t pair_peer = kNone;     // send: its recv; recv: its send
  };

  struct ProcStats {
    explicit ProcStats(std::int64_t span)
        : wnd_events(span), wnd_bytes(span) {}
    RollingWindow wnd_events;
    RollingWindow wnd_bytes;
    std::uint64_t total_events = 0;
    std::uint64_t total_sends = 0;
    std::uint64_t total_recvs = 0;
    std::uint64_t total_bytes = 0;
    bool terminated = false;
  };
  struct ChanStats {
    explicit ChanStats(std::int64_t span)
        : wnd_msgs(span), wnd_bytes(span), wnd_latency(span) {}
    RollingWindow wnd_msgs;
    RollingWindow wnd_bytes;
    RollingWindow wnd_latency;  // weight = clamped latency
    std::uint64_t total_msgs = 0;
    std::uint64_t total_bytes = 0;
    std::int64_t last_latency_us = 0;
    obs::Histogram* latency_hist = nullptr;  // per-channel, optional
  };

  void on_pair(const PairingCore::Pair& p);
  bool relax(std::uint32_t u, std::uint32_t v, EdgeKind kind);
  void propagate(std::uint32_t from);
  std::int64_t edge_weight(std::uint32_t u, std::uint32_t v) const;

  LiveConfig cfg_;
  std::unique_ptr<obs::Registry> own_reg_;
  obs::Registry* reg_ = nullptr;

  std::vector<Node> nodes_;
  PairingCore pairing_;
  std::map<ProcKey, std::uint32_t> last_of_;  // per-process last event
  std::map<ProcKey, ProcStats> procs_;
  std::map<std::pair<ProcKey, ProcKey>, ChanStats> chans_;

  std::size_t message_pairs_ = 0;
  std::size_t cross_machine_pairs_ = 0;
  std::size_t clock_anomalies_ = 0;
  std::int64_t max_anomaly_us_ = 0;
  bool had_cycle_ = false;
  std::uint64_t max_lamport_ = 0;
  std::uint64_t relax_steps_ = 0;
  std::int64_t now_us_ = 0;
  std::uint32_t best_cost_node_ = kNone;

  std::vector<std::uint32_t> worklist_;
  std::vector<LiveObserver*> observers_;

  // Registry instruments (resolved once; null registry → private one).
  obs::Counter* c_events_ = nullptr;
  obs::Counter* c_pairs_ = nullptr;
  obs::Counter* c_cross_ = nullptr;
  obs::Counter* c_anomalies_ = nullptr;
  obs::Counter* c_relax_ = nullptr;
  obs::Counter* c_gaps_ = nullptr;
  obs::Gauge* g_parked_ = nullptr;
  obs::Gauge* g_max_lamport_ = nullptr;
  obs::Gauge* g_crit_us_ = nullptr;
  obs::Gauge* g_procs_ = nullptr;
  obs::Histogram* h_latency_ = nullptr;
};

/// Incremental splitter for a growing trace file: feed() any chunking of
/// the text (a live stream, tail-read blocks); complete lines are parsed
/// with parse_trace_event_line and pushed into the aggregator. finish()
/// flushes a trailing line that lacks its newline.
class TraceTailer {
 public:
  explicit TraceTailer(LiveAnalysis& live) : live_(&live) {}

  void feed(std::string_view chunk);
  void finish();

  std::size_t lines() const { return lines_; }
  std::size_t malformed() const { return malformed_; }

 private:
  void take_line(std::string_view line);

  LiveAnalysis* live_;
  std::string partial_;
  std::size_t lines_ = 0;
  std::size_t malformed_ = 0;
};

/// The filter push sink (filter::RecordSink) feeding a LiveAnalysis:
/// accepted records are converted with event_from_record and aggregated
/// with no log round-trip. Install on a World with
/// filter::install_live_sink so every filter started in a session feeds
/// it.
class LiveRecordSink : public filter::RecordSink {
 public:
  explicit LiveRecordSink(LiveAnalysis& live) : live_(&live) {}

  void on_record(const filter::Record& rec) override;

  /// Accepted records that did not convert to an Event (unknown name or
  /// missing identity fields).
  std::size_t dropped() const { return dropped_; }

 private:
  LiveAnalysis* live_;
  std::size_t dropped_ = 0;
};

}  // namespace dpm::analysis::live
