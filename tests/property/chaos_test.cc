// Chaos: randomized workloads with randomized control interference
// (stops, continues, kills at arbitrary moments). Whatever happens, the
// world must quiesce, the controller must survive, and whatever trace
// was collected must be well-formed.
#include <gtest/gtest.h>

#include "analysis/ordering.h"
#include "analysis/trace_reader.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dpm {
namespace {

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(3, 17, 101, 4242, 31337));

TEST_P(ChaosTest, MonitorSurvivesRandomInterference) {
  util::Rng rng(GetParam());
  kernel::World world(dpm::testing::quick_config(GetParam()));
  auto machines =
      dpm::testing::add_machines(world, {"hub", "a", "b", "c"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "hub", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 hub");
  (void)session.command("newjob chaos");

  // Random mix of workloads.
  const int npairs = static_cast<int>(rng.uniform(1, 4));
  const char* hosts[] = {"a", "b", "c"};
  for (int i = 0; i < npairs; ++i) {
    const int port = 5600 + i;
    const char* srv = hosts[rng.uniform(0, 2)];
    const char* cli = hosts[rng.uniform(0, 2)];
    const auto rounds = rng.uniform(2, 30);
    if (rng.bernoulli(0.5)) {
      (void)session.command(util::strprintf(
          "addprocess chaos %s pingpong_server %d %lld", srv, port,
          static_cast<long long>(rounds)));
      (void)session.command(util::strprintf(
          "addprocess chaos %s pingpong_client %s %d %lld 48", cli, srv, port,
          static_cast<long long>(rounds)));
    } else {
      (void)session.command(util::strprintf(
          "addprocess chaos %s dgram_sink %d 50", srv, port));
      (void)session.command(util::strprintf(
          "addprocess chaos %s dgram_sender %s %d %lld 48", cli, srv, port,
          static_cast<long long>(rounds)));
    }
  }
  (void)session.command("setflags chaos all");
  session.send_line("startjob chaos");

  // Random interference while it runs: stop/continue/kill random job
  // processes at random moments.
  for (int step = 0; step < 8; ++step) {
    world.run_for(util::msec(rng.uniform(1, 25)));
    const kernel::MachineId m = machines[static_cast<std::size_t>(
        1 + rng.uniform(0, 2))];
    // Pick a random live non-daemon process owned by uid 100.
    std::vector<kernel::Pid> candidates;
    for (auto& [pid, p] : world.machine(m).procs) {
      if (p->status == kernel::ProcStatus::alive && p->uid == 100) {
        candidates.push_back(pid);
      }
    }
    if (candidates.empty()) continue;
    const kernel::Pid victim = candidates[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    switch (rng.uniform(0, 2)) {
      case 0:
        (void)world.proc_stop(m, victim, 100);
        break;
      case 1:
        (void)world.proc_continue(m, victim, 100);
        break;
      default:
        (void)world.proc_kill(m, victim, 100);
        break;
    }
  }

  // Un-stick anything left stopped so the run can quiesce, then drain.
  for (kernel::MachineId m : machines) {
    for (auto& [pid, p] : world.machine(m).procs) {
      if (p->status == kernel::ProcStatus::alive && p->uid == 100) {
        (void)world.proc_continue(m, pid, 100);
      }
    }
  }
  world.run();
  (void)session.drain_output();

  // The controller is alive and coherent.
  ASSERT_TRUE(session.controller_alive());
  std::string out = session.command("jobs chaos");
  EXPECT_NE(out.find("job 'chaos'"), std::string::npos) << out;

  // Whatever trace exists is parseable and internally consistent.
  (void)session.command("getlog f1 t");
  auto text = world.machine(machines[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  EXPECT_EQ(trace.malformed, 0u);
  analysis::Ordering ordering = analysis::order_events(trace);
  EXPECT_FALSE(ordering.had_cycle);

  // Cleanup path still works: stop everything, remove, exit.
  (void)session.command("stopjob chaos");
  (void)session.command("removejob chaos");
  (void)session.command("die");
  std::string out2 = session.command("die");
  world.run();
  EXPECT_FALSE(session.controller_alive());
}

}  // namespace
}  // namespace dpm
