// Socket names (addresses).
//
// The paper (§4.1) presents socket names in three forms: an Internet-domain
// name, a UNIX path name, or an internally generated unique name (for
// socketpairs). A socket name is composed of a host address and a port
// (§3.5.4); a host can have different addresses on different networks, so
// literal host names — not addresses — are what processes exchange.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace dpm::net {

/// Address families, numbered as in 4.2BSD <sys/socket.h>.
enum class Family : std::uint8_t {
  unspec = 0,
  unix_path = 1,  // AF_UNIX
  internet = 2,   // AF_INET
  internal = 3,   // internally generated unique names (socketpairs)
};

using NetworkId = std::uint16_t;  // which physical network a host address is on
using HostAddr = std::uint32_t;   // host address, unique within one network
using Port = std::uint16_t;
using MachineId = std::uint32_t;  // identifies a machine within a World

/// A socket name. Internet names carry (network, host, port); UNIX and
/// internal names carry a path / unique string (scoped to one machine).
struct SockAddr {
  Family family = Family::unspec;
  NetworkId network = 0;
  HostAddr host = 0;
  Port port = 0;
  std::string path;  // unix_path: filesystem path; internal: unique token

  static SockAddr inet(NetworkId network, HostAddr host, Port port);
  static SockAddr unix_name(std::string path);
  static SockAddr internal(std::uint64_t unique);

  bool is_unspec() const { return family == Family::unspec; }

  /// Canonical text rendering. Internet names render as the paper's single
  /// decimal number (host*65536 + port; cf. "destName=228320140" in Fig
  /// 3.3), so filter templates can match them numerically. UNIX names
  /// render as the path; internal names as "#<n>".
  std::string text() const;

  /// Numeric key for internet names (host*65536 + port); nullopt otherwise.
  std::optional<std::int64_t> numeric() const;

  /// Verbose human-readable rendering for reports, e.g. "inet(net0,5:1234)".
  std::string debug() const;

  friend auto operator<=>(const SockAddr&, const SockAddr&) = default;
};

}  // namespace dpm::net
