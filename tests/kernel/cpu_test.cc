// CPU model: the non-preemptive FIFO CPU serializes local processes;
// syscalls have costs; machines run independently; clocks are skewed.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red", "green"});
    world_.add_account_everywhere(100);
  }
  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(CpuTest, ComputeAdvancesSimTime) {
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    sys.compute(util::msec(25));
  });
  world_.run();
  EXPECT_GE(util::count_us(world_.now()), 25000);
}

TEST_F(CpuTest, LocalProcessesContendForTheCpu) {
  // Two 20ms computations on ONE machine take >= 40ms of simulated time.
  (void)world_.spawn(machines_[0], "a", 100,
                     [&](Sys& sys) { sys.compute(util::msec(20)); });
  (void)world_.spawn(machines_[0], "b", 100,
                     [&](Sys& sys) { sys.compute(util::msec(20)); });
  world_.run();
  EXPECT_GE(util::count_us(world_.now()), 40000);
}

TEST_F(CpuTest, RemoteProcessesRunInParallel) {
  // The same two computations on DIFFERENT machines overlap.
  (void)world_.spawn(machines_[0], "a", 100,
                     [&](Sys& sys) { sys.compute(util::msec(20)); });
  (void)world_.spawn(machines_[1], "b", 100,
                     [&](Sys& sys) { sys.compute(util::msec(20)); });
  world_.run();
  const auto total = util::count_us(world_.now());
  EXPECT_GE(total, 20000);
  EXPECT_LT(total, 30000);
}

TEST_F(CpuTest, SleepDoesNotHoldTheCpu) {
  // A sleeping process lets another one compute.
  std::int64_t b_done_at = 0;
  (void)world_.spawn(machines_[0], "sleeper", 100,
                     [&](Sys& sys) { sys.sleep(util::msec(100)); });
  (void)world_.spawn(machines_[0], "worker", 100, [&](Sys& sys) {
    sys.compute(util::msec(10));
    b_done_at = util::count_us(world_.now());
  });
  world_.run();
  EXPECT_LT(b_done_at, 20000);  // did not wait for the sleeper
}

TEST_F(CpuTest, CpuTimeAccumulatesPerProcess) {
  Pid pid = 0;
  {
    auto r = world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
      sys.compute(util::msec(5));
      sys.sleep(util::msec(50));  // sleep is not CPU time
      sys.compute(util::msec(7));
    });
    ASSERT_TRUE(r.ok());
    pid = *r;
  }
  world_.run();
  Process* p = world_.find_process(machines_[0], pid);
  ASSERT_NE(p, nullptr);
  // 12ms of compute plus small syscall costs; well under 13ms.
  EXPECT_GE(p->cpu_used.count(), 12000);
  EXPECT_LT(p->cpu_used.count(), 13000);
}

TEST_F(CpuTest, ClocksDisagreeAcrossMachines) {
  std::int64_t red_reading = 0, green_reading = 0;
  (void)world_.spawn(machines_[0], "a", 100, [&](Sys& sys) {
    sys.sleep(util::msec(100));
    red_reading = sys.clock_us();
  });
  (void)world_.spawn(machines_[1], "b", 100, [&](Sys& sys) {
    sys.sleep(util::msec(100));
    green_reading = sys.clock_us();
  });
  world_.run();
  // The default machine model assigns distinct offsets (seeded); two
  // machines read the same instant differently.
  EXPECT_NE(red_reading, green_reading);
}

TEST_F(CpuTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    World w(dpm::testing::quick_config(seed));
    auto ms = dpm::testing::add_machines(w, {"red", "green"});
    w.add_account_everywhere(100);
    std::int64_t finish = 0;
    (void)w.spawn(ms[0], "srv", 100, [&](Sys& sys) {
      auto ls = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.bind_port(*ls, 4000);
      (void)sys.listen(*ls, 1);
      auto conn = sys.accept(*ls);
      for (int i = 0; i < 20; ++i) {
        auto d = sys.recv_exact(*conn, 8);
        if (!d.ok()) break;
        (void)sys.send(*conn, *d);
      }
      finish = util::count_us(w.now());
    });
    (void)w.spawn(ms[1], "cli", 100, [&](Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("red", 4000);
      auto fd = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.connect(*fd, *addr);
      util::Bytes m(8, 1);
      for (int i = 0; i < 20; ++i) {
        (void)sys.send(fd.value(), m);
        (void)sys.recv_exact(fd.value(), 8);
      }
    });
    w.run();
    return finish;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), 0);
}

}  // namespace
}  // namespace dpm::kernel
