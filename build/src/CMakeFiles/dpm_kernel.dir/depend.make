# Empty dependencies file for dpm_kernel.
# This may be replaced when dependencies are built.
