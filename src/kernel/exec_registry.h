// The exec registry: how executable files become running code.
//
// Real 4.2BSD loads machine code from the executable; in the simulation an
// executable file names a *program* registered here, and exec instantiates
// the program's ProcessMain with the argument vector. All the standard
// monitor programs (filter, meterdaemon) and the example applications are
// registered at world construction.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dpm::kernel {

class Sys;

/// The body of a simulated process. Receives its syscall interface; the
/// process terminates when the body returns or calls Sys::exit.
using ProcessMain = std::function<void(Sys&)>;

/// Instantiates a process body from an argument vector (argv[0] is the
/// program name, as in exec).
using ProgramFactory =
    std::function<ProcessMain(const std::vector<std::string>& argv)>;

class ExecRegistry {
 public:
  /// Registers a program; replaces an existing registration of that name.
  void register_program(const std::string& name, ProgramFactory factory);

  bool has(const std::string& name) const;

  /// Builds the process main; nullopt if the program is unknown.
  std::optional<ProcessMain> instantiate(
      const std::string& name, const std::vector<std::string>& argv) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, ProgramFactory> programs_;
};

}  // namespace dpm::kernel
