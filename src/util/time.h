// Simulated-time types used throughout the simulator.
//
// All simulation timekeeping is done in integral microseconds on a
// dedicated chrono clock (`SimClock`) so that simulated time can never be
// confused with wall-clock time at a type level.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace dpm::util {

/// Chrono clock for simulated time. Never reads the host clock; `now()` is
/// intentionally absent — the simulation executive is the only time source.
struct SimClock {
  using rep = std::int64_t;
  using period = std::micro;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<SimClock>;
  static constexpr bool is_steady = true;
};

using Duration = SimClock::duration;
using TimePoint = SimClock::time_point;

constexpr Duration usec(std::int64_t n) { return Duration{n}; }
constexpr Duration msec(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration sec(std::int64_t n) { return Duration{n * 1000000}; }

/// Microsecond count of a duration (convenience for logs and headers).
constexpr std::int64_t count_us(Duration d) { return d.count(); }
constexpr std::int64_t count_us(TimePoint t) { return t.time_since_epoch().count(); }

/// Renders a time point as seconds with microsecond precision, e.g. "1.250000s".
std::string format_time(TimePoint t);
std::string format_duration(Duration d);

}  // namespace dpm::util
