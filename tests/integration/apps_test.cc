// Application workloads under the monitor: the ring's structure is
// recovered by analysis; the distributed TSP matches a sequential solve;
// datagram loss shows up as missing receives, not errors.
#include <gtest/gtest.h>

#include "analysis/comm_stats.h"
#include "analysis/ordering.h"
#include "analysis/parallelism.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

std::unique_ptr<control::MonitorSession> boot(
    kernel::World& world, const std::vector<std::string>& names) {
  dpm::testing::add_machines(world, names);
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  auto s = std::make_unique<control::MonitorSession>(
      world, control::MonitorSession::Options{.host = names[0], .uid = 100});
  world.run();
  (void)s->drain_output();
  return s;
}

analysis::Trace fetch_trace(kernel::World& world,
                            control::MonitorSession& session,
                            const std::string& filter_name) {
  (void)session.command("getlog " + filter_name + " trace.out");
  auto text = world.machine(session.host()).fs.read_text("trace.out");
  EXPECT_TRUE(text.has_value());
  return analysis::read_trace(text.value_or(""));
}

TEST(AppsTest, RingStructureRecoveredByAnalysis) {
  kernel::World world(dpm::testing::quick_config(21));
  auto session = boot(world, {"yellow", "red", "green", "blue"});
  (void)session->command("filter f1");
  (void)session->command("newjob ring");
  const char* hosts[] = {"red", "green", "blue"};
  for (int i = 0; i < 3; ++i) {
    (void)session->command(util::strprintf(
        "addprocess ring %s ring_node %d 3 3 8600 red green blue", hosts[i],
        i));
  }
  (void)session->command("setflags ring all");
  std::string out = session->command("startjob ring");
  EXPECT_NE(out.find("terminated: reason: normal"), std::string::npos) << out;
  (void)session->command("removejob ring");

  analysis::Trace trace = fetch_trace(world, *session, "f1");
  analysis::CommStats stats = analysis::communication_statistics(trace);
  ASSERT_EQ(stats.per_process.size(), 3u);

  // The communication graph is exactly a 3-cycle.
  EXPECT_EQ(stats.graph.edges.size(), 3u);
  std::map<analysis::ProcKey, int> out_deg, in_deg;
  for (const auto& e : stats.graph.edges) {
    ++out_deg[e.from];
    ++in_deg[e.to];
    EXPECT_EQ(e.messages, 3u);  // three full circulations of the token
  }
  for (const auto& [k, d] : out_deg) EXPECT_EQ(d, 1);
  for (const auto& [k, d] : in_deg) EXPECT_EQ(d, 1);

  analysis::Ordering ordering = analysis::order_events(trace);
  EXPECT_FALSE(ordering.had_cycle);
  EXPECT_GT(ordering.message_pairs, 0u);
}

TEST(AppsTest, TspDistributedMatchesSequential) {
  kernel::World world(dpm::testing::quick_config(23));
  auto session = boot(world, {"yellow", "red", "green", "blue"});
  (void)session->command("filter f1");
  (void)session->command("newjob tsp");
  (void)session->command("addprocess tsp red tsp_master 9100 2 8 42");
  (void)session->command("addprocess tsp green tsp_worker red 9100");
  (void)session->command("addprocess tsp blue tsp_worker red 9100");
  (void)session->command("setflags tsp send receive");
  std::string out = session->command("startjob tsp");
  EXPECT_NE(out.find("terminated: reason: normal"), std::string::npos) << out;

  // The master printed its answer; compare with a 1-worker run.
  auto best_of = [](const std::string& text) -> std::int64_t {
    auto pos = text.find("best tour ");
    EXPECT_NE(pos, std::string::npos) << text;
    if (pos == std::string::npos) return -1;
    return util::parse_int(
               util::split(text.substr(pos + 10), " ").front())
        .value_or(-1);
  };
  const std::int64_t distributed = best_of(out);
  EXPECT_GT(distributed, 0);

  (void)session->command("removejob tsp");

  kernel::World world2(dpm::testing::quick_config(29));
  auto session2 = boot(world2, {"yellow", "red", "green"});
  (void)session2->command("filter f1");
  (void)session2->command("newjob tsp1");
  (void)session2->command("addprocess tsp1 red tsp_master 9100 1 8 42");
  (void)session2->command("addprocess tsp1 green tsp_worker red 9100");
  (void)session2->command("setflags tsp1 send");
  std::string out2 = session2->command("startjob tsp1");
  EXPECT_EQ(best_of(out2), distributed);  // same optimum either way
}

TEST(AppsTest, TspParallelismExceedsOne) {
  // The measurement study: with 3 workers the parallelism analysis should
  // see real overlap (this is the Lai & Miller-style use of the tool).
  kernel::World world(dpm::testing::quick_config(31));
  auto session = boot(world, {"yellow", "red", "green", "blue", "purple"});
  (void)session->command("filter f1");
  (void)session->command("newjob tsp");
  (void)session->command("addprocess tsp red tsp_master 9100 3 9 7");
  (void)session->command("addprocess tsp green tsp_worker red 9100");
  (void)session->command("addprocess tsp blue tsp_worker red 9100");
  (void)session->command("addprocess tsp purple tsp_worker red 9100");
  (void)session->command("setflags tsp all");
  (void)session->command("startjob tsp");
  (void)session->command("removejob tsp");
  analysis::Trace trace = fetch_trace(world, *session, "f1");
  ASSERT_EQ(trace.malformed, 0u);
  const analysis::ParallelismProfile p = analysis::measure_parallelism(trace);
  EXPECT_EQ(p.processes, 4u);
  EXPECT_GT(p.average, 1.2) << "workers should overlap";
}

TEST(AppsTest, PipelineFlowsEndToEnd) {
  kernel::World world(dpm::testing::quick_config(37));
  auto session = boot(world, {"yellow", "red", "green", "blue"});
  (void)session->command("filter f1");
  (void)session->command("newjob pipe");
  (void)session->command("addprocess pipe blue pipe_sink 8101");
  (void)session->command("addprocess pipe green pipe_stage 8100 blue 8101 400");
  (void)session->command("addprocess pipe red pipe_source green 8100 10 64");
  (void)session->command("setflags pipe send receive");
  std::string out = session->command("startjob pipe");
  EXPECT_NE(out.find("[pipe_sink] pipe_sink: 640 bytes"), std::string::npos)
      << out;
  (void)session->command("removejob pipe");
}

TEST(AppsTest, DatagramLossVisibleUnderLossyNetwork) {
  kernel::WorldConfig cfg = dpm::testing::quick_config(41);
  cfg.default_net.dgram_loss = 0.25;
  kernel::World world(cfg);
  auto session = boot(world, {"yellow", "red", "green"});
  (void)session->command("filter f1");
  (void)session->command("newjob d");
  (void)session->command("addprocess d red dgram_sink 8700 100");
  (void)session->command("addprocess d green dgram_sender red 8700 200 32");
  (void)session->command("setflags d send receive");
  std::string out = session->command("startjob d");
  // The sink reports how many datagrams actually arrived.
  auto pos = out.find("dgram_sink: ");
  ASSERT_NE(pos, std::string::npos) << out;
  const std::int64_t received =
      util::parse_int(util::split(out.substr(pos + 12), " ").front())
          .value_or(-1);
  EXPECT_GT(received, 100);  // most arrive ("delivery ... is likely")
  EXPECT_LT(received, 200);  // but not all: loss is real
  (void)session->command("removejob d");

  // Send records outnumber receive records in the trace accordingly.
  analysis::Trace trace = fetch_trace(world, *session, "f1");
  int sends = 0, recvs = 0;
  for (const auto& e : trace.events) {
    // Datagram sends carry a destination name; the sink's final stdout
    // report is a metered *stream* send and is excluded here.
    if (e.type == meter::EventType::send && !e.dest_name.empty()) ++sends;
    if (e.type == meter::EventType::recv && !e.source_name.empty()) ++recvs;
  }
  EXPECT_EQ(sends, 200);
  EXPECT_EQ(recvs, static_cast<int>(received));
}

}  // namespace
}  // namespace dpm
