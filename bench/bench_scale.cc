// Cluster-scale monitoring: hierarchical fan-in vs a flat session, and
// batched/pipelined controller RPC vs the serial per-process loops.
//
// Two claims are measured, both in simulated time (deterministic, so the
// recorded numbers are stable across runs and machines):
//
//  1. Throughput. N machines each run one burst_sender whose traffic is
//     1-in-`every` large datagrams; the session filter's rule accepts
//     exactly those. Flat topology wires every sender's meter stream to
//     the root filter; hierarchical (`fanin`) runs a local filter per
//     machine and aggregators in an arity-bounded tree, so only accepted
//     records cross the fabric. We record events/s through the session,
//     cross-fabric bytes (net.bytes_remote), and both conservation
//     ledgers, and require near-linear per-machine scaling from the
//     smallest to the largest hierarchical run.
//
//  2. Controller latency. In the largest hierarchical world, waves of
//     `waiter` processes are created/started/stopped/killed across all
//     machines — one wave with `rpcmode serial` (the paper's per-process
//     exchanges), the rest with `rpcmode batched` (multi-create/multi-kill
//     requests pipelined across daemon shards). The batched waves also
//     push the session past 100k processes in full mode.
//
// Every run writes BENCH_scale.json. The "smoke" section is produced in
// both modes at the same small sizes, so scripts/check_bench.sh can
// compare a fresh --smoke run against the committed full-mode file
// key-for-key.
#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "util/strings.h"

namespace dpm::bench {
namespace {

/// The session's selection rule: large sends only. burst_sender's big
/// datagrams (512 B) pass `msgLength>256`; its small ones (64 B) do not.
constexpr const char* kScaleRules = "machine=#*, pid=#*, type=1, msgLength>256\n";

struct ScaleConfig {
  std::vector<std::size_t> sizes;  // machine counts, ascending
  int arity = 4;                   // fan-in tree arity
  int count = 32;                  // datagrams per sender
  int every = 4;                   // 1-in-every is large (accepted)
  int gap_us = 300;                // inter-send gap
  int per_machine = 3;             // waiters per machine per wave
  int extra_batched_waves = 0;     // batched waves beyond the timed pair
  int window = 16;                 // pipelined in-flight window
};

struct TopoResult {
  std::size_t machines = 0;
  bool hier = false;
  std::uint64_t offered = 0;       // meter records emitted by senders
  std::uint64_t accepted = 0;      // records accepted at the root filter
  std::uint64_t expected = 0;      // machines * ceil(count/every)
  std::uint64_t bytes_remote = 0;  // cross-fabric bytes over the window
  double window_ms = 0;            // startjob -> quiescence, simulated
  double events_per_s = 0;         // offered / window
  double per_machine_eps = 0;
  bool lossless = false;           // no tier-0/tier-1 loss buckets
  bool tier0_ok = false;
  bool tier1_ok = false;
};

struct WaveResult {
  double create_ms = 0, start_ms = 0, stop_ms = 0, kill_ms = 0;
  std::uint64_t created = 0, started = 0, stopped = 0, removed = 0;
};

struct SuiteResult {
  std::vector<TopoResult> topologies;
  double hier_scaling = 0;  // per-machine eps, largest hier / smallest hier
  double flat_scaling = 0;
  WaveResult serial, batched;
  double speedup_create = 0, speedup_start = 0, speedup_kill = 0;
  std::size_t session_machines = 0;
  std::uint64_t session_processes = 0;  // through the one peak session
  bool session_tier0_ok = false;
  bool session_tier1_ok = false;
  int errors = 0;  // invariant violations, detailed on stderr
};

/// A world of `machines`+1 machines ("hub" plus m1..mN) with the monitor
/// installed, daemons running, and a session filter "f1" on hub — with a
/// local-filter/aggregator tree over m1..mN when `hier`.
struct Cluster {
  std::unique_ptr<kernel::World> world;
  std::unique_ptr<control::MonitorSession> session;
};

std::size_t count_substr(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Parses the leading count out of a controller summary line, located by
/// `marker`: "job 'w0': 24 of 24 processes created across 8 machines".
std::uint64_t summary_count(const std::string& out, const char* marker) {
  const auto p = out.find(marker);
  if (p == std::string::npos) return 0;
  auto ls = out.rfind('\n', p);
  ls = ls == std::string::npos ? 0 : ls + 1;
  const auto sep = out.find("': ", ls);
  if (sep == std::string::npos || sep > p) return 0;
  return std::strtoull(out.c_str() + sep + 3, nullptr, 10);
}

Cluster make_cluster(std::size_t machines, bool hier, const ScaleConfig& cfg,
                     int* errors) {
  kernel::WorldConfig wc;
  // A flat session concentrates every sender's meter connection on the
  // root filter's machine; the default 64-descriptor table would cap it.
  wc.max_descriptors = 4096;
  Cluster c;
  c.world = std::make_unique<kernel::World>(wc);
  c.world->add_machine("hub");
  for (std::size_t i = 1; i <= machines; ++i) {
    c.world->add_machine("m" + std::to_string(i));
  }
  control::install_monitor(*c.world);
  apps::install_everywhere(*c.world);
  control::spawn_meterdaemons(*c.world);
  c.world->machine_by_name("hub")->fs.put_text("tmpl_scale", kScaleRules);

  c.session = std::make_unique<control::MonitorSession>(
      *c.world, control::MonitorSession::Options{.host = "hub"});
  c.world->run();
  (void)c.session->drain_output();

  (void)c.session->command("rpcmode batched " +
                           std::to_string(cfg.window));
  (void)c.session->command("filter f1 hub filter descriptions tmpl_scale");
  if (hier) {
    const std::string out = c.session->command(util::strprintf(
        "fanin f1 %d m 1 %zu", cfg.arity, machines));
    if (count_substr(out, "(0 failed)") != 2) {
      std::fprintf(stderr, "bench_scale: fanin build failed:\n%s", out.c_str());
      ++*errors;
    }
  }
  return c;
}

TopoResult run_sender_load(Cluster& c, std::size_t machines, bool hier,
                           const ScaleConfig& cfg, int* errors) {
  TopoResult r;
  r.machines = machines;
  r.hier = hier;
  auto& world = *c.world;
  auto& s = *c.session;

  (void)s.command("newjob jA f1");
  (void)s.command("setflags jA send");
  const std::string out_add = s.command(util::strprintf(
      "addgroup jA m 1 %zu 1 burst_sender self 9 %d 64 512 %d %d",
      machines, cfg.count, cfg.every, cfg.gap_us));
  if (summary_count(out_add, "processes created") != machines) {
    std::fprintf(stderr, "bench_scale: sender addgroup failed (%zu m):\n%s",
                 machines, out_add.c_str());
    ++*errors;
  }

  const double t0 = sim_us(world);
  const auto a0 = world.obs().counter("filter.accepted").value();
  const auto b0 = world.obs().counter("net.bytes_remote").value();
  const auto e0 = world.meter_conservation().emitted;
  (void)s.command("startjob jA");
  const double window_us = sim_us(world) - t0;

  r.accepted = world.obs().counter("filter.accepted").value() - a0;
  r.bytes_remote = world.obs().counter("net.bytes_remote").value() - b0;
  const auto t0c = world.meter_conservation();
  const auto t1c = world.fanin_conservation();
  r.offered = t0c.emitted - e0;
  const auto per_sender = static_cast<std::uint64_t>(
      (cfg.count + cfg.every - 1) / cfg.every);
  r.expected = machines * per_sender;
  r.window_ms = window_us / 1000.0;
  r.events_per_s = window_us > 0
                       ? static_cast<double>(r.offered) / (window_us / 1e6)
                       : 0;
  r.per_machine_eps = r.events_per_s / static_cast<double>(machines);
  r.tier0_ok = t0c.balanced();
  r.tier1_ok = t1c.balanced();
  r.lossless = t0c.dropped == 0 && t0c.lost == 0 && t0c.stranded == 0 &&
               t0c.malformed == 0 && t1c.lost == 0 && t1c.overflow == 0 &&
               t1c.stranded == 0 && t1c.malformed == 0;

  if (!r.tier0_ok || !r.tier1_ok) {
    std::fprintf(stderr,
                 "bench_scale: conservation violated (%zu machines, %s)\n",
                 machines, hier ? "hier" : "flat");
    ++*errors;
  }
  if (r.offered != machines * static_cast<std::uint64_t>(cfg.count)) {
    std::fprintf(stderr,
                 "bench_scale: offered %llu != %zu senders * %d records\n",
                 static_cast<unsigned long long>(r.offered), machines,
                 cfg.count);
    ++*errors;
  }
  if (r.lossless && r.accepted != r.expected) {
    std::fprintf(stderr,
                 "bench_scale: lossless %s@%zu accepted %llu, expected %llu\n",
                 hier ? "hier" : "flat", machines,
                 static_cast<unsigned long long>(r.accepted),
                 static_cast<unsigned long long>(r.expected));
    ++*errors;
  }
  return r;
}

WaveResult run_wave(Cluster& c, const std::string& job, std::size_t machines,
                    bool serial, const ScaleConfig& cfg, int* errors) {
  WaveResult r;
  auto& world = *c.world;
  auto& s = *c.session;
  const auto expect = machines * static_cast<std::uint64_t>(cfg.per_machine);

  (void)s.command(serial ? std::string("rpcmode serial")
                         : util::strprintf("rpcmode batched %d", cfg.window));
  (void)s.command(util::strprintf("newjob %s f1", job.c_str()));

  double t = sim_us(world);
  const std::string out_add = s.command(util::strprintf(
      "addgroup %s m 1 %zu %d waiter", job.c_str(), machines,
      cfg.per_machine));
  r.create_ms = (sim_us(world) - t) / 1000.0;
  r.created = summary_count(out_add, "processes created");

  t = sim_us(world);
  const std::string out_start =
      s.command(util::strprintf("startjob %s", job.c_str()));
  r.start_ms = (sim_us(world) - t) / 1000.0;
  r.started = serial ? count_substr(out_start, "' started.")
                     : summary_count(out_start, "processes started.");

  t = sim_us(world);
  const std::string out_stop =
      s.command(util::strprintf("stopjob %s", job.c_str()));
  r.stop_ms = (sim_us(world) - t) / 1000.0;
  r.stopped = serial ? count_substr(out_stop, "' stopped.")
                     : summary_count(out_stop, "processes stopped.");

  t = sim_us(world);
  const std::string out_rm =
      s.command(util::strprintf("removejob %s", job.c_str()));
  r.kill_ms = (sim_us(world) - t) / 1000.0;
  r.removed = count_substr(out_rm, "' removed");

  if (r.created != expect || r.started != expect || r.stopped != expect ||
      r.removed != expect) {
    std::fprintf(
        stderr,
        "bench_scale: wave '%s' (%s) created/started/stopped/removed = "
        "%llu/%llu/%llu/%llu, expected %llu each\n",
        job.c_str(), serial ? "serial" : "batched",
        static_cast<unsigned long long>(r.created),
        static_cast<unsigned long long>(r.started),
        static_cast<unsigned long long>(r.stopped),
        static_cast<unsigned long long>(r.removed),
        static_cast<unsigned long long>(expect));
    ++*errors;
  }
  return r;
}

SuiteResult run_suite(const ScaleConfig& cfg) {
  SuiteResult suite;

  const TopoResult* small_hier = nullptr;
  const TopoResult* big_hier = nullptr;
  const TopoResult* small_flat = nullptr;
  const TopoResult* big_flat = nullptr;
  Cluster peak;  // the largest hierarchical world, kept for the waves

  suite.topologies.reserve(cfg.sizes.size() * 2);
  for (std::size_t m : cfg.sizes) {
    for (bool hier : {false, true}) {
      Cluster c = make_cluster(m, hier, cfg, &suite.errors);
      suite.topologies.push_back(
          run_sender_load(c, m, hier, cfg, &suite.errors));
      std::fflush(stderr);
      if (hier && m == cfg.sizes.back()) peak = std::move(c);
    }
  }
  for (const TopoResult& r : suite.topologies) {
    if (r.hier && r.machines == cfg.sizes.front()) small_hier = &r;
    if (r.hier && r.machines == cfg.sizes.back()) big_hier = &r;
    if (!r.hier && r.machines == cfg.sizes.front()) small_flat = &r;
    if (!r.hier && r.machines == cfg.sizes.back()) big_flat = &r;
  }
  if (small_hier && big_hier && small_hier->per_machine_eps > 0) {
    suite.hier_scaling = big_hier->per_machine_eps / small_hier->per_machine_eps;
  }
  if (small_flat && big_flat && small_flat->per_machine_eps > 0) {
    suite.flat_scaling = big_flat->per_machine_eps / small_flat->per_machine_eps;
  }
  // Identical offered load must yield identical selection through either
  // topology whenever nothing was lost on the way.
  for (std::size_t m : cfg.sizes) {
    const TopoResult *flat = nullptr, *hier = nullptr;
    for (const TopoResult& r : suite.topologies) {
      if (r.machines != m) continue;
      (r.hier ? hier : flat) = &r;
    }
    if (flat && hier && flat->lossless && hier->lossless &&
        flat->accepted != hier->accepted) {
      std::fprintf(stderr,
                   "bench_scale: flat/hier accepted diverge at %zu machines: "
                   "%llu vs %llu\n",
                   m, static_cast<unsigned long long>(flat->accepted),
                   static_cast<unsigned long long>(hier->accepted));
      ++suite.errors;
    }
  }

  // ---- controller waves through the peak hierarchical session ----
  const std::size_t peak_m = cfg.sizes.back();
  suite.session_machines = peak_m + 1;  // + hub
  suite.session_processes = peak_m;     // the senders already run
  suite.serial = run_wave(peak, "w0", peak_m, /*serial=*/true, cfg,
                          &suite.errors);
  suite.batched = run_wave(peak, "w1", peak_m, /*serial=*/false, cfg,
                           &suite.errors);
  suite.session_processes += suite.serial.created + suite.batched.created;
  for (int k = 0; k < cfg.extra_batched_waves; ++k) {
    WaveResult w = run_wave(peak, util::strprintf("w%d", k + 2), peak_m,
                            /*serial=*/false, cfg, &suite.errors);
    suite.session_processes += w.created;
  }
  auto ratio = [](double serial, double batched) {
    return batched > 0 ? serial / batched : 0;
  };
  suite.speedup_create = ratio(suite.serial.create_ms, suite.batched.create_ms);
  suite.speedup_start = ratio(suite.serial.start_ms, suite.batched.start_ms);
  suite.speedup_kill = ratio(suite.serial.kill_ms, suite.batched.kill_ms);

  const auto t0c = peak.world->meter_conservation();
  const auto t1c = peak.world->fanin_conservation();
  suite.session_tier0_ok = t0c.balanced();
  suite.session_tier1_ok = t1c.balanced();
  if (!suite.session_tier0_ok || !suite.session_tier1_ok) {
    std::fprintf(stderr,
                 "bench_scale: peak session conservation violated after "
                 "%llu processes\n",
                 static_cast<unsigned long long>(suite.session_processes));
    ++suite.errors;
  }
  return suite;
}

std::string suite_json(const SuiteResult& s, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"topologies\": [\n";
  for (std::size_t i = 0; i < s.topologies.size(); ++i) {
    const TopoResult& r = s.topologies[i];
    out += util::strprintf(
        "%s    {\"topology\": \"%s\", \"machines\": %zu, \"offered\": %llu, "
        "\"accepted\": %llu, \"expected\": %llu, \"bytes_remote\": %llu, "
        "\"window_ms\": %.2f, \"events_per_s\": %.0f, "
        "\"per_machine_eps\": %.1f, \"lossless\": %s, "
        "\"tier0_balanced\": %s, \"tier1_balanced\": %s}%s\n",
        pad.c_str(), r.hier ? "hier" : "flat", r.machines,
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.expected),
        static_cast<unsigned long long>(r.bytes_remote), r.window_ms,
        r.events_per_s, r.per_machine_eps, r.lossless ? "true" : "false",
        r.tier0_ok ? "true" : "false", r.tier1_ok ? "true" : "false",
        i + 1 < s.topologies.size() ? "," : "");
  }
  out += pad + "  ],\n";
  out += util::strprintf(
      "%s  \"scaling\": {\"hier\": %.3f, \"flat\": %.3f},\n", pad.c_str(),
      s.hier_scaling, s.flat_scaling);
  auto wave = [&](const char* name, const WaveResult& w) {
    return util::strprintf(
        "%s  \"%s\": {\"create_ms\": %.2f, \"start_ms\": %.2f, "
        "\"stop_ms\": %.2f, \"kill_ms\": %.2f, \"procs\": %llu},\n",
        pad.c_str(), name, w.create_ms, w.start_ms, w.stop_ms, w.kill_ms,
        static_cast<unsigned long long>(w.created));
  };
  out += wave("serial", s.serial);
  out += wave("batched", s.batched);
  out += util::strprintf(
      "%s  \"speedup\": {\"create\": %.2f, \"start\": %.2f, "
      "\"kill\": %.2f},\n",
      pad.c_str(), s.speedup_create, s.speedup_start, s.speedup_kill);
  out += util::strprintf(
      "%s  \"session\": {\"machines\": %zu, \"processes\": %llu, "
      "\"tier0_balanced\": %s, \"tier1_balanced\": %s}\n",
      pad.c_str(), s.session_machines,
      static_cast<unsigned long long>(s.session_processes),
      s.session_tier0_ok ? "true" : "false",
      s.session_tier1_ok ? "true" : "false");
  out += pad + "}";
  return out;
}

constexpr const char* kJsonPath = "BENCH_scale.json";

void print_suite(const char* label, const SuiteResult& s) {
  for (const TopoResult& r : s.topologies) {
    std::printf(
        "bench_scale %s: %-4s %4zu machines: %7llu offered, %6llu accepted, "
        "%8llu remote bytes, %8.1f ms, %9.0f ev/s (%7.1f /machine)\n",
        label, r.hier ? "hier" : "flat", r.machines,
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.bytes_remote), r.window_ms,
        r.events_per_s, r.per_machine_eps);
  }
  std::printf(
      "bench_scale %s: scaling hier %.3f flat %.3f | wave %llu procs: "
      "start %.2f->%.2f ms (%.1fx), kill %.2f->%.2f ms (%.1fx) | session "
      "%zu machines, %llu processes\n",
      label, s.hier_scaling, s.flat_scaling,
      static_cast<unsigned long long>(s.serial.created), s.serial.start_ms,
      s.batched.start_ms, s.speedup_start, s.serial.kill_ms,
      s.batched.kill_ms, s.speedup_kill, s.session_machines,
      static_cast<unsigned long long>(s.session_processes));
}

int run(bool full) {
  ScaleConfig smoke_cfg;
  smoke_cfg.sizes = {4, 8};
  smoke_cfg.arity = 4;
  smoke_cfg.count = 32;
  smoke_cfg.every = 4;
  smoke_cfg.gap_us = 300;
  smoke_cfg.per_machine = 3;
  smoke_cfg.extra_batched_waves = 0;

  SuiteResult smoke = run_suite(smoke_cfg);
  print_suite("smoke", smoke);

  SuiteResult fullr;
  if (full) {
    ScaleConfig full_cfg;
    full_cfg.sizes = {10, 100, 1000};
    full_cfg.arity = 16;
    full_cfg.count = 400;
    full_cfg.every = 16;
    // The window opens at `startjob` and closes at quiescence, so it
    // includes the RPC ramp that staggers 1000 senders into life (~2.3 s
    // of simulated time at the largest size). A 20 s steady send phase
    // (400 records, 50 ms apart) amortizes the ramp below 15% of the
    // window, so the scaling ratio measures the monitoring path rather
    // than job-start latency — and costs no wall clock, since the
    // discrete-event executive's work scales with events, not sim time.
    full_cfg.gap_us = 50000;
    full_cfg.per_machine = 10;
    // 10 waves of 10k waiters: >100k processes through the one session.
    full_cfg.extra_batched_waves = 8;
    fullr = run_suite(full_cfg);
    print_suite("full", fullr);
  }

  int errors = smoke.errors + fullr.errors;
  // Deterministic sim-time floors. The smoke thresholds are deliberately
  // loose; the full-mode ones are the issue's acceptance criteria.
  if (smoke.speedup_start < 1.2 || smoke.speedup_kill < 1.2) {
    std::fprintf(stderr, "bench_scale: smoke speedups %.2f/%.2f below 1.2\n",
                 smoke.speedup_start, smoke.speedup_kill);
    ++errors;
  }
  if (full) {
    if (fullr.hier_scaling < 0.75) {
      std::fprintf(stderr, "bench_scale: hier scaling %.3f < 0.75\n",
                   fullr.hier_scaling);
      ++errors;
    }
    if (fullr.speedup_start < 5 || fullr.speedup_kill < 5) {
      std::fprintf(stderr, "bench_scale: full speedups %.2f/%.2f below 5x\n",
                   fullr.speedup_start, fullr.speedup_kill);
      ++errors;
    }
    if (fullr.session_machines < 1000 || fullr.session_processes < 100000) {
      std::fprintf(stderr, "bench_scale: session %zu machines / %llu procs "
                           "under the 1000/100k floor\n",
                   fullr.session_machines,
                   static_cast<unsigned long long>(fullr.session_processes));
      ++errors;
    }
    const TopoResult *bf = nullptr, *bh = nullptr;
    for (const TopoResult& r : fullr.topologies) {
      if (r.machines == 1000) (r.hier ? bh : bf) = &r;
    }
    if (bf && bh && bh->bytes_remote * 2 > bf->bytes_remote) {
      std::fprintf(stderr,
                   "bench_scale: hier@1000 moved %llu remote bytes, not under "
                   "half of flat's %llu\n",
                   static_cast<unsigned long long>(bh->bytes_remote),
                   static_cast<unsigned long long>(bf->bytes_remote));
      ++errors;
    }
  }

  std::ofstream out(kJsonPath, std::ios::trunc);
  out << "{\n  \"bench\": \"cluster_scale\",\n  \"mode\": \""
      << (full ? "full" : "smoke") << "\",\n";
  out << "  \"smoke\": " << suite_json(smoke, 2);
  if (full) out << ",\n  \"full\": " << suite_json(fullr, 2);
  out << "\n}\n";
  if (!out.good()) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", kJsonPath);
    return 1;
  }
  std::printf("wrote %s\n", kJsonPath);
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dpm::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return dpm::bench::run(false);
  }
  return dpm::bench::run(true);
}
