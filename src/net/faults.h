// Deterministic fault injection: seeded, sim-time-scheduled failure plans.
//
// The paper's setting is machines joined by networks with "non-deterministic
// communication delay" and partial failure (§2.1, §3.5) — yet a simulator
// only exercises what it can inject. A FaultPlan is a list of timed fault
// events (datagram loss bursts, latency spikes, link partitions with heal
// times, stream resets, machine crash/restart, targeted process kills)
// that a FaultInjector schedules against the Fabric and — through
// FaultHooks, so the net layer stays below the kernel — against a World.
// Plans are reproducible from a seed + plan string: the same DSL text (or
// FaultPlan::random(seed, ...)) always yields the same run.
//
// Scenario DSL: events separated by ';' or newlines, '#' comments to end
// of line, durations as <int>us|ms|s:
//
//   drop@200ms net=0 for=50ms p=0.8     # datagram loss burst
//   spike@1s net=0 for=200ms add=5ms    # per-network latency spike
//   partition@500ms red blue for=2s     # link partition, heals itself
//   reset@1s red blue                   # reset streams between two hosts
//   crash@2s green                      # machine crash (processes die)
//   restart@3s green                    # machine back up, boot programs run
//   kill@1500ms blue 104                # kill one process by pid
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.h"
#include "net/fabric.h"
#include "obs/registry.h"
#include "sim/executive.h"
#include "util/time.h"

namespace dpm::net {

enum class FaultKind : std::uint8_t {
  drop_burst,
  latency_spike,
  partition,
  stream_reset,
  crash,
  restart,
  kill,
};
inline constexpr int kFaultKinds = 7;

/// The DSL keyword ("drop", "spike", "partition", "reset", "crash",
/// "restart", "kill").
const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  util::TimePoint at{};
  FaultKind kind = FaultKind::drop_burst;
  std::string a;                   // machine (crash/restart/kill), endpoint 1
  std::string b;                   // endpoint 2 (partition/reset)
  util::Duration duration{};       // drop_burst/latency_spike/partition
  double loss = 1.0;               // drop_burst
  util::Duration extra_latency{};  // latency_spike
  NetworkId net = 0;               // drop_burst/latency_spike
  std::int32_t pid = 0;            // kill
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parses the scenario DSL (see the header comment). Returns nullopt and
  /// fills `error` (if given) on the first malformed event.
  static std::optional<FaultPlan> parse(std::string_view dsl,
                                        std::string* error = nullptr);

  /// Canonical DSL text; round-trips through parse().
  std::string to_string() const;

  /// A reproducible random plan over `machines` within [0, horizon):
  /// loss bursts, latency spikes, self-healing partitions, stream resets,
  /// and crash/restart pairs. Never emits `kill` (pids are not knowable at
  /// plan time) and never crashes machines[0] — by convention the hub that
  /// runs the controller and filters.
  static FaultPlan random(std::uint64_t seed,
                          const std::vector<std::string>& machines,
                          util::Duration horizon);
};

/// Callbacks the kernel installs (World::install_faults) so fault events
/// can reach layers the net library cannot see. Unset hooks turn those
/// events into no-ops; unknown machine names are ignored.
struct FaultHooks {
  std::function<void(const std::string&)> crash_machine;
  std::function<void(const std::string&)> restart_machine;
  std::function<void(const std::string&, std::int32_t)> kill_process;
  std::function<void(const std::string&, const std::string&)> reset_streams;
  /// Name → MachineId for partitions. When unset, names that parse as
  /// decimal integers are used directly (standalone fabric tests).
  std::function<std::optional<MachineId>(const std::string&)> machine_id;
};

/// Schedules a FaultPlan's events against a Fabric (and, through the
/// hooks, a World). Owns the faults.* instruments: injection counters by
/// kind and the active-partitions gauge.
class FaultInjector {
 public:
  FaultInjector(sim::Executive& exec, Fabric& fabric, FaultPlan plan,
                FaultHooks hooks, obs::Registry* reg = nullptr);

  /// Schedules every event of the plan; call once.
  void arm();

  std::size_t injected() const { return injected_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void fire(const FaultEvent& ev);
  std::optional<MachineId> resolve(const std::string& name) const;

  sim::Executive& exec_;
  Fabric& fabric_;
  FaultPlan plan_;
  FaultHooks hooks_;
  std::unique_ptr<obs::Registry> own_reg_;
  obs::Registry* reg_ = nullptr;
  obs::Counter* c_injections_ = nullptr;
  obs::Counter* c_kind_[kFaultKinds] = {};
  obs::Gauge* g_active_partitions_ = nullptr;
  std::size_t injected_ = 0;
  bool armed_ = false;
};

}  // namespace dpm::net
