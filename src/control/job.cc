#include "control/job.h"

namespace dpm::control {

const char* proc_state_name(ProcState s) {
  switch (s) {
    case ProcState::fresh: return "new";
    case ProcState::acquired: return "acquired";
    case ProcState::running: return "running";
    case ProcState::stopped: return "stopped";
    case ProcState::killed: return "killed";
  }
  return "?";
}

bool can_transition(ProcState from, ProcState to) {
  if (from == to) return false;
  switch (from) {
    case ProcState::fresh:
      return to == ProcState::running || to == ProcState::stopped;
    case ProcState::running:
      return to == ProcState::stopped || to == ProcState::killed;
    case ProcState::stopped:
      return to == ProcState::running || to == ProcState::killed;
    case ProcState::acquired:
      return false;  // an acquired process can only be metered
    case ProcState::killed:
      return false;  // a process cannot be restarted once killed
  }
  return false;
}

ProcEntry* Job::find(const std::string& proc_name) {
  for (auto& p : procs) {
    if (p.name == proc_name) return &p;
  }
  return nullptr;
}

ProcEntry* Job::find_pid(const std::string& machine, kernel::Pid pid) {
  for (auto& p : procs) {
    if (p.machine == machine && p.pid == pid) return &p;
  }
  return nullptr;
}

bool Job::removable() const {
  for (const auto& p : procs) {
    if (p.state != ProcState::killed && p.state != ProcState::stopped &&
        p.state != ProcState::acquired) {
      return false;
    }
  }
  return true;
}

bool Job::has_active() const {
  for (const auto& p : procs) {
    if (p.state != ProcState::killed) return true;
  }
  return false;
}

std::optional<meter::Flags> apply_flag_tokens(
    meter::Flags current, const std::vector<std::string>& tokens,
    std::string* bad) {
  meter::Flags mask = current;
  for (const auto& tok : tokens) {
    bool reset = false;
    std::string name = tok;
    if (!name.empty() && name[0] == '-') {
      reset = true;
      name.erase(0, 1);
    }
    auto flag = meter::flag_by_name(name);
    if (!flag) {
      if (bad) *bad = tok;
      return std::nullopt;
    }
    if (reset) {
      mask &= ~*flag;
    } else {
      mask |= *flag;  // §4.3: the active set is the union of setflags calls
    }
  }
  return mask;
}

}  // namespace dpm::control
