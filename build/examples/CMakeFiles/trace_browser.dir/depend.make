# Empty dependencies file for trace_browser.
# This may be replaced when dependencies are built.
