// dpm — A Distributed Programs Monitor for Berkeley UNIX (ICDCS 1985),
// reproduced as a C++20 library over a deterministic 4.2BSD simulation.
//
// Umbrella header: include this to get the whole public API.
//
//   kernel::World            the simulated distributed system
//   kernel::Sys              the 4.2BSD-like syscall surface (+ setmeter)
//   meter::*                 <meterflags.h> / <metermsgs.h> equivalents
//   filter::*                descriptions, templates, the filter engine
//   daemon::*                the meterdaemon and its RPC protocol
//   control::MonitorSession  the user's terminal: drive the controller
//   analysis::*              statistics, structure, ordering, parallelism
//   apps::*                  ready-made metered workloads
//
// See README.md for a quickstart and DESIGN.md for the paper mapping.
#pragma once

#include "analysis/comm_stats.h"      // IWYU pragma: export
#include "analysis/diagnose.h"        // IWYU pragma: export
#include "analysis/ordering.h"        // IWYU pragma: export
#include "analysis/parallelism.h"     // IWYU pragma: export
#include "analysis/report.h"          // IWYU pragma: export
#include "analysis/structure.h"       // IWYU pragma: export
#include "analysis/timeline.h"        // IWYU pragma: export
#include "analysis/trace_reader.h"    // IWYU pragma: export
#include "apps/apps.h"                // IWYU pragma: export
#include "control/controller.h"       // IWYU pragma: export
#include "control/job.h"              // IWYU pragma: export
#include "control/session.h"          // IWYU pragma: export
#include "daemon/meterdaemon.h"       // IWYU pragma: export
#include "daemon/protocol.h"          // IWYU pragma: export
#include "filter/count_filter.h"      // IWYU pragma: export
#include "filter/descriptions.h"      // IWYU pragma: export
#include "filter/filter_program.h"    // IWYU pragma: export
#include "filter/templates.h"         // IWYU pragma: export
#include "filter/trace.h"             // IWYU pragma: export
#include "kernel/syscalls.h"          // IWYU pragma: export
#include "kernel/world.h"             // IWYU pragma: export
#include "meter/meterflags.h"         // IWYU pragma: export
#include "meter/metermsgs.h"          // IWYU pragma: export
