# Empty dependencies file for acquire_server.
# This may be replaced when dependencies are built.
