// Shared helpers for the application programs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/syscalls.h"
#include "util/strings.h"

namespace dpm::apps {

/// argv[i] as an integer, or `dflt` when absent/malformed.
inline std::int64_t arg_int(const std::vector<std::string>& argv, std::size_t i,
                            std::int64_t dflt) {
  if (i >= argv.size()) return dflt;
  return util::parse_int(argv[i]).value_or(dflt);
}

inline std::string arg_str(const std::vector<std::string>& argv, std::size_t i,
                           const std::string& dflt = {}) {
  return i < argv.size() ? argv[i] : dflt;
}

/// Bounds for connect_retry: every attempt carries its own connect
/// deadline and the loop is capped, so an unreachable peer yields an
/// error instead of spinning the sim indefinitely.
struct ConnectRetryOpts {
  int attempts = 50;
  util::Duration pause = util::msec(10);     // between attempts
  util::Duration deadline = util::msec(250);  // per-attempt connect bound
};

/// Connects a fresh stream socket to host:port, retrying while the peer
/// is not listening yet (processes of a job start in arbitrary order).
/// Returns the connected fd, or the final attempt's error (etimedout,
/// econnrefused, ...) once the attempt cap is exhausted.
util::SysResult<kernel::Fd> connect_retry(kernel::Sys& sys,
                                          const std::string& host,
                                          net::Port port,
                                          ConnectRetryOpts opts = {});

/// A deterministic payload of `n` bytes.
util::Bytes payload(std::size_t n, std::uint8_t tag = 0x5a);

}  // namespace dpm::apps
