# Empty dependencies file for dpm_control.
# This may be replaced when dependencies are built.
