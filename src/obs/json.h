// A minimal JSON value parser — just enough for the monitor's own
// artifacts: obs snapshots (snapshot.h), benchmark JSON files, and the
// Chrome trace_event exports (analysis/live/chrome_trace.h). Accepts the
// subset of JSON those writers emit; not a general-purpose parser (\uXXXX
// escapes decode to '?', numbers go through double).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dpm::obs {

struct JsonValue {
  enum class Kind { null, boolean, number, string, array, object } kind =
      Kind::null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  std::int64_t as_i64() const { return static_cast<std::int64_t>(num); }
  std::uint64_t as_u64() const {
    return num < 0 ? 0 : static_cast<std::uint64_t>(num);
  }
};

class JsonParser {
 public:
  /// `text` must outlive the parser. `err` (optional) receives the first
  /// failure with its byte offset.
  JsonParser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  std::optional<JsonValue> parse();

 private:
  std::optional<JsonValue> fail(const char* what);
  void skip_ws();
  bool consume(char c);
  std::optional<JsonValue> value();
  std::optional<JsonValue> boolean();
  std::optional<JsonValue> number();
  std::optional<std::string> raw_string();
  std::optional<JsonValue> string_value();
  std::optional<JsonValue> array();
  std::optional<JsonValue> object();

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

/// Member lookup constrained by kind; nullptr when absent or mistyped.
const JsonValue* json_field(const JsonValue& obj, const char* key,
                            JsonValue::Kind kind);

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void json_append_escaped(std::string& out, const std::string& s);

}  // namespace dpm::obs
