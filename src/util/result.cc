#include "util/result.h"

namespace dpm::util {

std::string_view err_name(Err e) {
  switch (e) {
    case Err::ok: return "ok";
    case Err::eperm: return "eperm";
    case Err::esrch: return "esrch";
    case Err::ebadf: return "ebadf";
    case Err::einval: return "einval";
    case Err::eacces: return "eacces";
    case Err::enoent: return "enoent";
    case Err::emfile: return "emfile";
    case Err::enotsock: return "enotsock";
    case Err::eopnotsupp: return "eopnotsupp";
    case Err::eaddrinuse: return "eaddrinuse";
    case Err::eaddrnotavail: return "eaddrnotavail";
    case Err::eisconn: return "eisconn";
    case Err::enotconn: return "enotconn";
    case Err::econnrefused: return "econnrefused";
    case Err::econnreset: return "econnreset";
    case Err::epipe: return "epipe";
    case Err::ewouldblock: return "ewouldblock";
    case Err::eintr: return "eintr";
    case Err::etimedout: return "etimedout";
    case Err::emsgsize: return "emsgsize";
    case Err::echild: return "echild";
    case Err::eagain: return "eagain";
    case Err::enomem: return "enomem";
  }
  return "unknown";
}

std::string_view err_message(Err e) {
  switch (e) {
    case Err::ok: return "success";
    case Err::eperm: return "operation not permitted";
    case Err::esrch: return "no such process";
    case Err::ebadf: return "bad file descriptor";
    case Err::einval: return "invalid argument";
    case Err::eacces: return "permission denied";
    case Err::enoent: return "no such file or directory";
    case Err::emfile: return "too many open files";
    case Err::enotsock: return "socket operation on non-socket";
    case Err::eopnotsupp: return "operation not supported";
    case Err::eaddrinuse: return "address already in use";
    case Err::eaddrnotavail: return "can't assign requested address";
    case Err::eisconn: return "socket is already connected";
    case Err::enotconn: return "socket is not connected";
    case Err::econnrefused: return "connection refused";
    case Err::econnreset: return "connection reset by peer";
    case Err::epipe: return "broken pipe";
    case Err::ewouldblock: return "operation would block";
    case Err::eintr: return "interrupted system call";
    case Err::etimedout: return "connection timed out";
    case Err::emsgsize: return "message too long";
    case Err::echild: return "no children";
    case Err::eagain: return "resource temporarily unavailable";
    case Err::enomem: return "out of memory";
  }
  return "unknown error";
}

}  // namespace dpm::util
