#include "filter/filter_program.h"

#include <algorithm>

#include "filter/trace.h"
#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/metermsgs.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dpm::filter {

FilterEngine::FilterEngine(Descriptions descriptions, Templates templates,
                           EvalPath path, obs::Registry* obs,
                           MatchEngine match, const std::string& key_prefix)
    : desc_(std::move(descriptions)),
      templ_(std::move(templates)),
      compiled_(CompiledTemplates::compile(templ_, desc_)),
      bytecode_(FilterBytecode::lower(compiled_)),
      path_(path),
      match_(match) {
  if (!obs) {
    own_obs_ = std::make_unique<obs::Registry>();
    obs = own_obs_.get();
  }
  obs_ = obs;
  auto key = [&key_prefix](const char* name) { return key_prefix + name; };
  bytecode_.set_ops_counter(&obs->counter(key(".bytecode_ops")));
  records_in_ = &obs_->counter(key(".records_in"));
  accepted_ = &obs_->counter(key(".accepted"));
  rejected_ = &obs_->counter(key(".rejected"));
  malformed_ = &obs_->counter(key(".malformed"));
  truncated_ = &obs_->counter(key(".truncated"));
  bytes_in_ = &obs_->counter(key(".bytes_in"));
  bytes_out_ = &obs_->counter(key(".bytes_out"));
  eval_compiled_ = &obs_->counter(key(".eval_compiled"));
  eval_interpreted_ = &obs_->counter(key(".eval_interpreted"));
  accept_view_ = &obs_->counter(key(".accept_view"));
  accept_owned_ = &obs_->counter(key(".accept_owned"));
}

void FilterEngine::add_sink(RecordSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

FilterStats FilterEngine::stats() const {
  FilterStats s;
  s.records_in = records_in_->value();
  s.accepted = accepted_->value();
  s.rejected = rejected_->value();
  s.malformed = malformed_->value();
  s.truncated = truncated_->value();
  s.bytes_in = bytes_in_->value();
  s.bytes_out = bytes_out_->value();
  s.eval_compiled = eval_compiled_->value();
  s.eval_interpreted = eval_interpreted_->value();
  return s;
}

std::string filter_summary_line(const std::string& prog,
                                const FilterStats& st) {
  return util::strprintf(
      "%s: records=%llu accepted=%llu rejected=%llu "
      "malformed=%llu truncated=%llu\n",
      prog.c_str(), static_cast<unsigned long long>(st.records_in),
      static_cast<unsigned long long>(st.accepted),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.malformed),
      static_cast<unsigned long long>(st.truncated));
}

bool FilterEngine::select_view(const std::uint8_t* raw, std::size_t size,
                               const OnAccept& on_accept,
                               const OnAcceptView* fast,
                               const OnAcceptRaw* raw_accept) {
  const auto v = make_record_view(raw, size);
  if (!v) return false;
  const WirePlan* wp = desc_.wire_plan(v->type);
  if (!wp || !wp->viewable()) return false;  // owned path decides

  // The record's counted strings are resolved once, here, and reused by
  // the matcher's string clauses and the accept fast path below.
  std::string_view strings[WirePlan::kMaxStringFields];
  if (!wp->validate(*v, strings)) {
    malformed_->add(1);
    return true;
  }
  // Match straight on the wire bytes; an owned Record is materialized only
  // for records that survive selection and must be handed downstream.
  const std::vector<bool>* mask = nullptr;
  const std::set<std::string>* names = nullptr;
  Templates::Decision d;
  const auto cd = match_ == MatchEngine::bytecode
                      ? bytecode_.evaluate(*v, strings)
                      : compiled_.evaluate(*v);
  if (cd) {
    eval_compiled_->add(1);
    if (!cd->accept) {
      rejected_->add(1);
      return true;
    }
    mask = cd->discard;
  } else {
    eval_interpreted_->add(1);
    d = templ_.evaluate_view(*v, desc_);
    if (!d.accept) {
      rejected_->add(1);
      return true;
    }
    if (!d.discard.empty()) names = &d.discard;
  }
  accepted_->add(1);
  accept_view_->add(1);
  // Forwarding path: the accepted record goes out as the bytes it came in
  // as — no decode at all. Only when a sink needs the owned Record does
  // the forwarding accept fall through to the decode below.
  if (raw_accept && sinks_.empty()) {
    (*raw_accept)(raw, size);
    return true;
  }
  // Fast path: a view consumer renders straight off the wire bytes —
  // byte-identical output with no owned Record. Interpreted-fallback
  // accepts carry name-set discards, which the view renderer does not
  // take; they use the owned path below.
  if (fast && !names && (*fast)(*v, *wp, mask, strings)) return true;
  // validate() passed, so the decode cannot fail.
  auto rec = desc_.decode(raw, size);
  on_accept(*rec, mask, names);
  if (raw_accept) (*raw_accept)(raw, size);
  return true;
}

void FilterEngine::drain(std::uint64_t conn, const util::Bytes& data,
                         const OnAccept& user_accept, const OnAcceptView* fast,
                         const OnAcceptRaw* raw_accept) {
  // One wrap point covers every accept site (the view path and both owned
  // paths below): registered sinks see each accepted record before the
  // caller's consumer renders or aggregates it. Sinks need the owned
  // Record, so they also disable the caller's view fast path.
  const OnAccept* on_ptr = &user_accept;
  OnAccept wrapped;
  if (!sinks_.empty()) {
    fast = nullptr;
    wrapped = [&](const Record& rec, const std::vector<bool>* mask,
                  const std::set<std::string>* names) {
      for (RecordSink* sink : sinks_) sink->on_record(rec);
      user_accept(rec, mask, names);
    };
    on_ptr = &wrapped;
  }
  const OnAccept& on_accept = *on_ptr;

  bytes_in_->add(data.size());
  util::Bytes& buf = partial_[conn];
  // Fast path: with no partial remainder carried over, frame directly over
  // the incoming bytes and stash only the trailing partial record — the
  // steady state never copies the full payload through the staging buffer.
  const bool direct = buf.empty();
  const std::uint8_t* base;
  std::size_t len;
  if (direct) {
    base = data.data();
    len = data.size();
  } else {
    buf.insert(buf.end(), data.begin(), data.end());
    base = buf.data();
    len = buf.size();
  }

  std::size_t pos = 0;
  bool desync = false;
  while (len - pos >= 4) {
    const std::uint32_t size = static_cast<std::uint32_t>(base[pos]) |
                               static_cast<std::uint32_t>(base[pos + 1]) << 8 |
                               static_cast<std::uint32_t>(base[pos + 2]) << 16 |
                               static_cast<std::uint32_t>(base[pos + 3]) << 24;
    if (size < meter::kHeaderSize || size > (1u << 20)) {
      // Desynchronized stream: drop the connection's buffer.
      malformed_->add(1);
      desync = true;
      break;
    }
    if (len - pos < size) break;  // record incomplete
    const std::uint8_t* raw = base + pos;
    pos += size;
    records_in_->add(1);

    // Hot path: evaluate in place over the wire bytes (the view borrows
    // `buf`, which is not touched until the loop ends). Types the view
    // decoder cannot handle fall through to the owned decode below.
    if (path_ == EvalPath::view &&
        select_view(raw, size, on_accept, fast, raw_accept)) {
      continue;
    }

    auto rec = desc_.decode(raw, size);
    if (!rec) {
      malformed_->add(1);
      continue;
    }
    // Clause plan compiled against the record description; records of
    // types the compiler did not cover fall back to the interpreted
    // evaluator.
    if (auto cd = compiled_.evaluate(*rec)) {
      eval_compiled_->add(1);
      if (!cd->accept) {
        rejected_->add(1);
        continue;
      }
      accepted_->add(1);
      accept_owned_->add(1);
      on_accept(*rec, cd->discard, nullptr);
      if (raw_accept) (*raw_accept)(raw, size);
    } else {
      eval_interpreted_->add(1);
      const Templates::Decision d = templ_.evaluate(*rec);
      if (!d.accept) {
        rejected_->add(1);
        continue;
      }
      accepted_->add(1);
      accept_owned_->add(1);
      on_accept(*rec, nullptr, d.discard.empty() ? nullptr : &d.discard);
      if (raw_accept) (*raw_accept)(raw, size);
    }
  }
  if (desync) {
    buf.clear();  // everything after the bad size word is dropped
  } else if (direct) {
    if (pos < len) buf.assign(base + pos, base + len);
  } else {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
  }
}

void FilterEngine::end_connection(std::uint64_t conn) {
  auto it = partial_.find(conn);
  if (it == partial_.end()) return;
  if (!it->second.empty()) {
    // The connection ended mid-record: the cut-short tail is a counted
    // loss, not a silent one.
    malformed_->add(1);
    truncated_->add(1);
  }
  partial_.erase(it);
}

std::string FilterEngine::feed(std::uint64_t conn, const util::Bytes& data) {
  std::string out;
  feed(conn, data, out);
  return out;
}

void FilterEngine::feed(std::uint64_t conn, const util::Bytes& data,
                        std::string& out) {
  const OnAccept on_accept = [&](const Record& rec,
                                 const std::vector<bool>* mask,
                                 const std::set<std::string>* names) {
    std::string line = names ? trace_line(rec, *names) : trace_line(rec, mask);
    bytes_out_->add(line.size());
    out += line;
  };
  // Trace rendering needs no owned Record: accepted records decided by the
  // lowered bytecode render straight from their wire view (drain drops the
  // hook again if sinks are registered). Declining (extract failure) falls
  // back to the owned path, so output is identical either way.
  if (path_ == EvalPath::view && match_ == MatchEngine::bytecode) {
    const OnAcceptView fast = [&](const RecordView& v, const WirePlan& wp,
                                  const std::vector<bool>* mask,
                                  const std::string_view* strings) {
      const std::size_t before = out.size();
      if (!trace_line_view(wp, v, mask, strings, out)) return false;
      bytes_out_->add(out.size() - before);
      return true;
    };
    drain(conn, data, on_accept, &fast);
    return;
  }
  drain(conn, data, on_accept);
}

void FilterEngine::feed_each(std::uint64_t conn, const util::Bytes& data,
                             const std::function<void(const Record&)>& fn) {
  drain(conn, data,
        [&](const Record& rec, const std::vector<bool>*,
            const std::set<std::string>*) { fn(rec); });
}

void FilterEngine::feed_forward(std::uint64_t conn, const util::Bytes& data,
                                const OnAcceptRaw& fn) {
  // The no-op owned accept still runs for sink-registered engines (drain
  // wraps it with the sink notifications) and for view-decode fallthrough;
  // the wire bytes always reach `fn` exactly once per accepted record.
  const OnAccept noop = [](const Record&, const std::vector<bool>*,
                           const std::set<std::string>*) {};
  drain(conn, data, noop, nullptr, &fn);
}

kernel::ProcessMain make_filter_main(const std::vector<std::string>& argv) {
  return [argv](kernel::Sys& sys) {
    if (argv.size() < 5) {
      (void)sys.print("filter: usage: filter logfile descriptions templates port\n");
      sys.exit(1);
    }
    const std::string& logfile = argv[1];
    const std::string& desc_path = argv[2];
    const std::string& templ_path = argv[3];
    const auto port = util::parse_int(argv[4]);
    if (!port || *port <= 0 || *port > 65535) {
      (void)sys.print("filter: bad port\n");
      sys.exit(1);
    }

    auto read_file = [&sys](const std::string& path) -> std::string {
      auto fd = sys.open(path, kernel::Sys::OpenMode::read);
      if (!fd) return {};
      std::string text;
      for (;;) {
        auto chunk = sys.read(*fd, 4096);
        if (!chunk || chunk->empty()) break;
        text += util::to_string(*chunk);
      }
      (void)sys.close(*fd);
      return text;
    };

    std::string err;
    auto desc = Descriptions::parse(read_file(desc_path), &err);
    if (!desc) {
      (void)sys.print("filter: bad descriptions: " + err + "\n");
      sys.exit(1);
    }
    auto templ = Templates::parse(read_file(templ_path), &err);
    if (!templ) {
      (void)sys.print("filter: bad templates: " + err + "\n");
      sys.exit(1);
    }
    // Account into the world's registry so the filter shows up in
    // world.obs_snapshot() alongside the kernel and fabric.
    obs::Registry& reg = sys.world().obs();
    FilterEngine engine(std::move(*desc), std::move(*templ), EvalPath::view,
                        &reg);
    // A live sink installed on the world (install_live_sink) taps this
    // filter's accepted records as they stream in. Held here so the sink
    // outlives the engine even if the harness drops its reference.
    std::shared_ptr<RecordSink> tap = live_sink(sys.world());
    if (tap) engine.add_sink(tap.get());
    obs::Histogram& records_per_round =
        reg.histogram("filter.records_per_round");
    obs::Histogram& log_append_bytes = reg.histogram("filter.log_append_bytes");

    auto log_fd = sys.open(logfile, kernel::Sys::OpenMode::write_trunc);
    if (!log_fd) {
      (void)sys.print("filter: cannot open log file\n");
      sys.exit(1);
    }

    auto lsock = sys.socket(kernel::SockDomain::internet,
                            kernel::SockType::stream);
    if (!lsock) sys.exit(1);
    auto bound = sys.bind_port(*lsock, static_cast<net::Port>(*port));
    if (!bound) {
      (void)sys.print("filter: cannot bind meter port\n");
      sys.exit(1);
    }
    if (!sys.listen(*lsock, 32)) sys.exit(1);

    // Trace lines are batched per select round instead of written per
    // record; kHighWater bounds the buffer within a round. Every round
    // flushes at its end so the log file stays current for concurrent
    // readers (getlog copies it while the filter is live).
    constexpr std::size_t kHighWater = 16 * 1024;
    std::string pending;
    auto flush_log = [&] {
      if (pending.empty()) return;
      log_append_bytes.record(static_cast<std::int64_t>(pending.size()));
      (void)sys.write(*log_fd, pending);
      pending.clear();
    };

    std::vector<kernel::Fd> conns;
    for (;;) {
      std::vector<kernel::Fd> fds = conns;
      fds.push_back(*lsock);
      auto sel = sys.select(fds, /*child_events=*/false, std::nullopt);
      if (!sel) break;
      obs::ObsSpan round(reg, "filter.select_round");
      const std::uint64_t records_before = engine.stats().records_in;
      for (kernel::Fd fd : sel->readable) {
        if (fd == *lsock) {
          auto conn = sys.accept(*lsock);
          if (conn) conns.push_back(*conn);
          continue;
        }
        auto data = sys.recv(fd, 8192);
        if (!data || data->empty()) {
          // Metered process went away; drop the connection.
          engine.end_connection(static_cast<std::uint64_t>(fd));
          (void)sys.close(fd);
          conns.erase(std::remove(conns.begin(), conns.end(), fd), conns.end());
          continue;
        }
        engine.feed(static_cast<std::uint64_t>(fd), *data, pending);
        if (pending.size() >= kHighWater) flush_log();
      }
      flush_log();
      records_per_round.record(
          static_cast<std::int64_t>(engine.stats().records_in - records_before));
    }
    flush_log();

    (void)sys.write(2, filter_summary_line("filter", engine.stats()));
    sys.exit(0);
  };
}

void register_filter_program(kernel::ExecRegistry& registry) {
  registry.register_program(kStdFilterProgram, make_filter_main);
}

void install_live_sink(kernel::World& world, std::shared_ptr<RecordSink> sink) {
  world.set_service(kLiveSinkService, std::move(sink));
}

std::shared_ptr<RecordSink> live_sink(kernel::World& world) {
  return std::static_pointer_cast<RecordSink>(world.service(kLiveSinkService));
}

}  // namespace dpm::filter
