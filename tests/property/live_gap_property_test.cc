// Park-TTL soundness on healthy traces: the pairing layer parks receives
// that arrive ahead of their routing evidence and expels them as gaps
// (live.gap.*) only after `park_ttl` worth of Lamport progress — a
// fault-recovery valve. On a *healthy* trace (every connect/accept and
// send present, nothing lost), the default TTL must never fire: whatever
// the workload, interleaving, or feed chunking, every parked event drains
// and the gap count stays zero.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analysis_testing.h"
#include "analysis/live/aggregator.h"
#include "analysis/ordering.h"
#include "util/rng.h"

namespace dpm::analysis::live {
namespace {

using dpm::analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;
using meter::MeterTermProc;

/// Healthy multi-connection workload: like the live-equivalence shape but
/// deliberately adversarial to the parking path — each connection's
/// connect/accept records land at a random point of the interleaving
/// (often *after* traffic they route), and receives may precede their
/// sends in log order, so events park constantly and must all drain.
std::vector<std::pair<Stamp, meter::MeterBody>> healthy_workload(
    util::Rng& rng, int nconns) {
  std::vector<std::vector<std::pair<Stamp, meter::MeterBody>>> streams;
  std::int64_t offsets[8];
  for (auto& o : offsets) o = rng.uniform(-50000, 50000);

  for (int c = 0; c < nconns; ++c) {
    const auto ma = static_cast<std::uint16_t>(rng.uniform(0, 7));
    const auto mb = static_cast<std::uint16_t>(rng.uniform(0, 7));
    const std::int32_t pa = 100 + 2 * c, pb = 101 + 2 * c;
    const auto sa = static_cast<std::uint64_t>(10 + 2 * c);
    const auto sb = static_cast<std::uint64_t>(11 + 2 * c);
    const std::string na = "n" + std::to_string(2 * c);
    const std::string nb = "n" + std::to_string(2 * c + 1);

    std::vector<std::pair<Stamp, meter::MeterBody>> a_events, b_events;
    std::int64_t t = rng.uniform(0, 5000);
    a_events.push_back(
        {Stamp{ma, t + offsets[ma], 0}, MeterConnect{pa, 0, sa, na, nb}});
    b_events.push_back({Stamp{mb, t + 200 + offsets[mb], 0},
                        MeterAccept{pb, 0, 20, sb, nb, na}});
    const int msgs = static_cast<int>(rng.uniform(1, 24));
    for (int i = 0; i < msgs; ++i) {
      t += rng.uniform(100, 2000);
      a_events.push_back(
          {Stamp{ma, t + offsets[ma], 0}, MeterSend{pa, 0, sa, 64, ""}});
      b_events.push_back({Stamp{mb, t + rng.uniform(200, 900) + offsets[mb], 0},
                          MeterRecv{pb, 0, sb, 64, ""}});
    }
    a_events.push_back(
        {Stamp{ma, t + 3000 + offsets[ma], 0}, MeterTermProc{pa, 0, 0}});
    b_events.push_back(
        {Stamp{mb, t + 3200 + offsets[mb], 0}, MeterTermProc{pb, 0, 0}});
    streams.push_back(std::move(a_events));
    streams.push_back(std::move(b_events));
  }

  std::vector<std::pair<Stamp, meter::MeterBody>> out;
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (;;) {
    std::vector<std::size_t> ready;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] < streams[s].size()) ready.push_back(s);
    }
    if (ready.empty()) break;
    const std::size_t pick = ready[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(ready.size()) - 1))];
    out.push_back(streams[pick][cursor[pick]++]);
  }
  return out;
}

class ParkTtlProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParkTtlProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST_P(ParkTtlProperty, DefaultTtlNeverExpelsOnHealthyTraces) {
  util::Rng rng(GetParam() * 4409);
  const auto events =
      healthy_workload(rng, static_cast<int>(rng.uniform(2, 10)));
  const std::string text = dpm::analysis_testing::trace_text(events);
  const Ordering ord = order_events(read_trace(text));

  // Feed the same text at several chunk granularities — the TTL sweep
  // runs inside add_event, so chunking must not change when it fires
  // (namely: never).
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{13},
        static_cast<std::size_t>(rng.uniform(2, 700)), text.size() + 1}) {
    LiveAnalysis live;  // default LiveConfig: park_ttl = 65536
    TraceTailer tailer(live);
    for (std::size_t at = 0; at < text.size(); at += chunk) {
      tailer.feed(std::string_view(text).substr(at, chunk));
    }
    tailer.finish();

    const auto st = live.stats();
    EXPECT_EQ(st.gaps, 0u) << "chunk=" << chunk;
    EXPECT_EQ(st.parked, 0u)
        << "chunk=" << chunk << ": a healthy trace must fully drain";
    EXPECT_EQ(live.obs().counter("live.gaps").value(), 0u)
        << "chunk=" << chunk;
    // With no expulsions, pairing agrees exactly with the batch order.
    EXPECT_EQ(st.message_pairs, ord.message_pairs) << "chunk=" << chunk;
  }
}

}  // namespace
}  // namespace dpm::analysis::live
