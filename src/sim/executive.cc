#include "sim/executive.h"

#include <cassert>

#include "util/logging.h"

namespace dpm::sim {

Executive::Executive() = default;

Executive::~Executive() {
  // Abort every live task and drain it so threads exit cleanly.
  for (auto& [id, st] : tasks_) {
    if (st.task->started() && !st.task->finished()) {
      st.task->request_abort();
      while (!st.task->finished()) st.task->resume();
    }
  }
}

EventId Executive::schedule_at(util::TimePoint t, std::function<void()> fn) {
  assert(t >= now_);
  return events_.schedule(t, std::move(fn));
}

EventId Executive::schedule_after(util::Duration d, std::function<void()> fn) {
  return schedule_at(now_ + d, std::move(fn));
}

void Executive::cancel_event(EventId id) { events_.cancel(id); }

void Executive::set_obs(obs::Registry* reg) {
  obs_ = reg;
  if (!reg) {
    runnable_gauge_ = nullptr;
    events_counter_ = nullptr;
    switches_counter_ = nullptr;
    events_per_tick_ = nullptr;
    return;
  }
  reg->set_clock([this] { return now_; });
  runnable_gauge_ = &reg->gauge("sim.runnable");
  events_counter_ = &reg->counter("sim.events_dispatched");
  switches_counter_ = &reg->counter("sim.task_switches");
  events_per_tick_ = &reg->histogram("sim.events_per_tick");
  runnable_gauge_->set(static_cast<std::int64_t>(runnable_.size()));
}

TaskId Executive::spawn(std::string name, Task::Body body) {
  const TaskId id = next_id_++;
  auto& st = tasks_[id];
  st.task = std::make_unique<Task>(std::move(name));
  st.task->start(std::move(body));
  st.runnable = true;
  runnable_.push_back(id);
  if (runnable_gauge_) runnable_gauge_->add(1);
  return id;
}

Executive::TaskState* Executive::find(TaskId id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

void Executive::make_runnable(TaskId id) {
  TaskState* st = find(id);
  if (!st || st->task->finished()) return;
  if (id == current_) {
    st->wake_pending = true;
    return;
  }
  if (st->runnable) return;
  st->runnable = true;
  runnable_.push_back(id);
  if (runnable_gauge_) runnable_gauge_->add(1);
}

void Executive::park_current() {
  assert(current_ != kNoTask && "park_current() outside a task");
  TaskState* st = find(current_);
  assert(st);
  if (st->wake_pending) {
    st->wake_pending = false;
    return;
  }
  st->task->park();
  // After park() returns the executive has resumed us; a wake consumed the
  // runnable slot already.
}

void Executive::sleep_until(util::TimePoint t) {
  const TaskId id = current_;
  assert(id != kNoTask);
  if (t <= now_) return;
  schedule_at(t, [this, id] { make_runnable(id); });
  park_current();
}

void Executive::sleep_for(util::Duration d) { sleep_until(now_ + d); }

void Executive::abort_task(TaskId id) {
  TaskState* st = find(id);
  if (!st || st->task->finished()) return;
  st->task->request_abort();
  assert(id != current_ && "a task cannot abort itself; call exit instead");
  make_runnable(id);
}

void Executive::resume_task(TaskId id) {
  TaskState* st = find(id);
  if (!st || st->task->finished()) return;
  st->runnable = false;
  current_ = id;
  ++switches_;
  if (switches_counter_) switches_counter_->add(1);
  st->task->resume();
  current_ = kNoTask;
  // A task that just ran to completion has an exited OS thread behind it;
  // join it now so its stack mapping is released (and recycled by the
  // runtime's stack cache) instead of accumulating one zombie mapping per
  // finished process for the life of the world.
  if (st->task->finished()) st->task->reap();
  // If a wake arrived while the task was running and it then parked, the
  // park consumed it synchronously (see park_current). If the task parked
  // without a pending wake it stays off the runnable queue until woken.
}

void Executive::run_one_step(bool& progressed) {
  progressed = false;
  if (!runnable_.empty()) {
    const TaskId id = runnable_.front();
    runnable_.pop_front();
    if (runnable_gauge_) runnable_gauge_->sub(1);
    resume_task(id);
    progressed = true;
    return;
  }
  if (!events_.empty()) {
    const util::TimePoint next = events_.next_time();
    if (events_per_tick_ && next > now_ && events_this_tick_ > 0) {
      events_per_tick_->record(static_cast<std::int64_t>(events_this_tick_));
      events_this_tick_ = 0;
    }
    now_ = next;
    auto fn = events_.pop();
    fn();
    if (events_counter_) events_counter_->add(1);
    ++events_this_tick_;
    progressed = true;
  }
}

void Executive::run() {
  bool progressed = true;
  while (progressed && (!runnable_.empty() || !events_.empty())) {
    run_one_step(progressed);
  }
}

void Executive::run_until(util::TimePoint t) {
  for (;;) {
    if (!runnable_.empty()) {
      bool progressed;
      run_one_step(progressed);
      continue;
    }
    if (events_.empty() || events_.next_time() > t) break;
    bool progressed;
    run_one_step(progressed);
  }
  if (now_ < t) now_ = t;
}

bool Executive::task_finished(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() || it->second.task->finished();
}

std::size_t Executive::live_tasks() const {
  std::size_t n = 0;
  for (const auto& [id, st] : tasks_) {
    if (st.task->started() && !st.task->finished()) ++n;
  }
  return n;
}

}  // namespace dpm::sim
