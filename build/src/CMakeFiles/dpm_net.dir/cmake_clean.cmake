file(REMOVE_RECURSE
  "CMakeFiles/dpm_net.dir/net/address.cc.o"
  "CMakeFiles/dpm_net.dir/net/address.cc.o.d"
  "CMakeFiles/dpm_net.dir/net/fabric.cc.o"
  "CMakeFiles/dpm_net.dir/net/fabric.cc.o.d"
  "CMakeFiles/dpm_net.dir/net/hosts.cc.o"
  "CMakeFiles/dpm_net.dir/net/hosts.cc.o.d"
  "libdpm_net.a"
  "libdpm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
