// Event record descriptions (Fig 3.2).
//
// "The event record descriptions define the message formats. These
// descriptions are stored in a file with there being a description for
// each type of event. A description is a list of fields within an event
// record. ... Since the meter creates these messages, such definitions are
// very important for establishing a successful protocol between the meter
// and a filter."
//
// File grammar (one description per line; '#'-to-end-of-line comments):
//
//   HEADER size machine cpuTime procTime traceType
//   SEND 1, pid,0,4,10 pc,4,4,10 sock,8,8,10 msgLength,16,4,10 ...
//
// An event line is: NAME <type-number>, then fields as
// fieldName,offset,length,base. Offsets are relative to the start of the
// record *body* (the header layout is fixed and named by the HEADER line).
// length 1/2/4/8 with base 10 or 16 denotes a little-endian integer.
// length 0 with base 0 denotes a counted string: its byte count is the
// value of the earlier "<fieldName>Len" field, and consecutive string
// fields are laid out one after another starting at the first string
// field's offset.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.h"

namespace dpm::filter {

using FieldValue = std::variant<std::int64_t, std::string>;

std::string field_value_text(const FieldValue& v);

/// Numeric view of a value, when it has one (strings that parse as decimal
/// integers count, so internet names compare numerically — Fig 3.3).
std::optional<std::int64_t> field_value_num(const FieldValue& v);

struct FieldDesc {
  std::string name;
  std::size_t offset = 0;  // within the record body
  std::size_t length = 0;  // 0 = counted string
  int base = 10;           // display/compare base; 0 = string
};

struct EventDesc {
  std::string name;          // "SEND"
  std::uint32_t type = 0;    // traceType value
  std::vector<FieldDesc> fields;
};

/// A decoded event record: ordered (name, value) pairs, header fields
/// first. Field order matters for the trace file rendering.
struct Record {
  std::uint32_t type = 0;
  std::string event_name;
  std::vector<std::pair<std::string, FieldValue>> fields;

  const FieldValue* find(const std::string& name) const;
  std::optional<std::int64_t> num(const std::string& name) const;
  std::optional<std::string> text(const std::string& name) const;
};

class Descriptions {
 public:
  /// Parses a description file; returns nullopt and fills `error` on
  /// malformed input.
  static std::optional<Descriptions> parse(const std::string& text,
                                           std::string* error = nullptr);

  const EventDesc* by_type(std::uint32_t type) const;
  const EventDesc* by_name(const std::string& name) const;
  std::size_t size() const { return by_type_.size(); }

  /// All described traceType values, ascending.
  std::vector<std::uint32_t> types() const;

  /// Field names of a decoded record of `type`, in Record::fields order:
  /// the fixed header fields first, then the described body fields. Empty
  /// when the type is not described. This is the layout the template
  /// compiler resolves field indices against.
  std::vector<std::string> record_layout(std::uint32_t type) const;

  /// Decodes one complete raw meter message (header + body). Returns
  /// nullopt if the record is malformed or its type is not described.
  std::optional<Record> decode(const util::Bytes& raw) const;

 private:
  std::map<std::uint32_t, EventDesc> by_type_;
  std::vector<std::string> header_fields_;
};

/// The standard description file installed on every machine (describes all
/// ten meter event types in this kernel's wire layout).
const std::string& default_descriptions_text();

}  // namespace dpm::filter
