file(REMOVE_RECURSE
  "libdpm_util.a"
)
