#include "meter/meterflags.h"

#include <gtest/gtest.h>

namespace dpm::meter {
namespace {

TEST(MeterFlags, AllCoversEveryEventFlag) {
  EXPECT_EQ(M_ALL, M_SEND | M_RECEIVECALL | M_RECEIVE | M_SOCKET | M_DUP |
                       M_DESTSOCKET | M_FORK | M_ACCEPT | M_CONNECT |
                       M_TERMPROC);
  EXPECT_EQ(M_ALL & M_IMMEDIATE, 0u);  // M_IMMEDIATE is not an event
}

TEST(MeterFlags, FlagsAreDistinctBits) {
  const Flags all[] = {M_SEND, M_RECEIVECALL, M_RECEIVE, M_SOCKET, M_DUP,
                       M_DESTSOCKET, M_FORK, M_ACCEPT, M_CONNECT, M_TERMPROC,
                       M_IMMEDIATE};
  for (std::size_t i = 0; i < std::size(all); ++i) {
    EXPECT_NE(all[i], 0u);
    for (std::size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_EQ(all[i] & all[j], 0u);
    }
  }
}

TEST(MeterFlags, ByNameMatchesSetflagsVocabulary) {
  // §4.3's flag list: fork termproc send receivecall receive socket dup
  // destsocket accept connect.
  EXPECT_EQ(flag_by_name("fork").value(), M_FORK);
  EXPECT_EQ(flag_by_name("termproc").value(), M_TERMPROC);
  EXPECT_EQ(flag_by_name("send").value(), M_SEND);
  EXPECT_EQ(flag_by_name("receivecall").value(), M_RECEIVECALL);
  EXPECT_EQ(flag_by_name("receive").value(), M_RECEIVE);
  EXPECT_EQ(flag_by_name("socket").value(), M_SOCKET);
  EXPECT_EQ(flag_by_name("dup").value(), M_DUP);
  EXPECT_EQ(flag_by_name("destsocket").value(), M_DESTSOCKET);
  EXPECT_EQ(flag_by_name("accept").value(), M_ACCEPT);
  EXPECT_EQ(flag_by_name("connect").value(), M_CONNECT);
  EXPECT_EQ(flag_by_name("all").value(), M_ALL);
  EXPECT_EQ(flag_by_name("immediate").value(), M_IMMEDIATE);
  EXPECT_EQ(flag_by_name("ACCEPT").value(), M_ACCEPT);  // case-insensitive
  EXPECT_FALSE(flag_by_name("bogus").has_value());
}

TEST(MeterFlags, ToStringRoundTrips) {
  const Flags mask = M_SEND | M_RECEIVE | M_FORK;
  EXPECT_EQ(flags_to_string(mask), "send receive fork");
  EXPECT_EQ(flags_to_string(0), "none");
}

TEST(MeterFlags, SentinelsDoNotCollideWithMasks) {
  // setmeter takes flags as int32: -1 (NO_CHANGE) and -2 (NONE) must not
  // be producible from any legal flag combination.
  const auto all_imm = static_cast<std::int32_t>(M_ALL | M_IMMEDIATE);
  EXPECT_NE(all_imm, SETMETER_NO_CHANGE);
  EXPECT_NE(all_imm, SETMETER_NONE);
}

}  // namespace
}  // namespace dpm::meter
