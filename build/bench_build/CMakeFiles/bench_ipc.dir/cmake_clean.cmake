file(REMOVE_RECURSE
  "../bench/bench_ipc"
  "../bench/bench_ipc.pdb"
  "CMakeFiles/bench_ipc.dir/bench_ipc.cc.o"
  "CMakeFiles/bench_ipc.dir/bench_ipc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
