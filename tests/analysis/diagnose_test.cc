#include "analysis/diagnose.h"

#include <gtest/gtest.h>

#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterRecvCall;
using meter::MeterSend;
using meter::MeterTermProc;

TEST(Diagnose, EmptyTraceHasNoFindings) {
  Trace t;
  Diagnosis d = diagnose(t);
  EXPECT_TRUE(d.findings.empty());
  EXPECT_NE(d.render().find("nothing notable"), std::string::npos);
}

TEST(Diagnose, StarvedProcessAttributedToPeer) {
  // p2 waits 80% of its window, always for p1's messages.
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      {Stamp{0, 0, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 50, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
  };
  std::int64_t t = 1000;
  for (int i = 0; i < 5; ++i) {
    ev.push_back({Stamp{1, t, 0}, MeterRecvCall{2, 0, 9}});
    ev.push_back({Stamp{0, t + 3500, 0}, MeterSend{1, 0, 5, 8, ""}});
    ev.push_back({Stamp{1, t + 4000, 0}, MeterRecv{2, 0, 9, 8, ""}});
    t += 5000;
  }
  ev.push_back({Stamp{1, t, 0}, MeterTermProc{2, 0, 0}});
  Diagnosis d = diagnose(analysis_testing::make_trace(ev));
  ASSERT_TRUE(d.has("wait"));
  bool found = false;
  for (const auto& f : d.findings) {
    if (f.category == "wait") {
      EXPECT_NE(f.message.find("m1/p2"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("mostly on m0/p1"), std::string::npos)
          << f.message;
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Diagnose, BusyProcessesProduceNoWaitFinding) {
  // Short waits relative to the window: no starvation report.
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      {Stamp{0, 0, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 50, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
  };
  std::int64_t t = 1000;
  for (int i = 0; i < 5; ++i) {
    ev.push_back({Stamp{0, t, 0}, MeterSend{1, 0, 5, 8, ""}});
    ev.push_back({Stamp{1, t + 100, 0}, MeterRecvCall{2, 0, 9}});
    ev.push_back({Stamp{1, t + 200, 0}, MeterRecv{2, 0, 9, 8, ""}});
    t += 5000;
  }
  ev.push_back({Stamp{1, t, 0}, MeterTermProc{2, 0, 0}});
  Diagnosis d = diagnose(analysis_testing::make_trace(ev));
  EXPECT_FALSE(d.has("wait"));
}

TEST(Diagnose, HotspotWhenOneChannelDominates) {
  std::vector<std::pair<Stamp, meter::MeterBody>> ev;
  // Three connections; the first carries far more bytes.
  for (int c = 0; c < 3; ++c) {
    const std::string na = "a" + std::to_string(c);
    const std::string nb = "b" + std::to_string(c);
    const std::int32_t pa = 10 + c, pb = 20 + c;
    ev.push_back({Stamp{0, 100, 0},
                  MeterConnect{pa, 0, static_cast<std::uint64_t>(5 + c), na, nb}});
    ev.push_back({Stamp{1, 150, 0},
                  MeterAccept{pb, 0, 7, static_cast<std::uint64_t>(30 + c), nb, na}});
    const std::uint32_t bytes = c == 0 ? 10000 : 100;
    ev.push_back({Stamp{0, 200, 0},
                  MeterSend{pa, 0, static_cast<std::uint64_t>(5 + c), bytes, ""}});
  }
  Diagnosis d = diagnose(analysis_testing::make_trace(ev));
  ASSERT_TRUE(d.has("hotspot"));
}

TEST(Diagnose, DatagramLossReported) {
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      // The sender's connect record makes its name attributable.
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "777", "888"}},
  };
  for (int i = 0; i < 10; ++i) {
    ev.push_back({Stamp{0, 200 + i, 0}, MeterSend{1, 0, 5, 8, "888"}});
  }
  // The "888" name needs an owner for sends to count as attributable;
  // recvs teach it via an accept-style record. Use a connect from the
  // receiver side binding 888.
  ev.push_back({Stamp{1, 150, 0}, MeterConnect{2, 0, 9, "888", "999"}});
  for (int i = 0; i < 6; ++i) {  // only 6 of 10 arrived
    ev.push_back({Stamp{1, 300 + i, 0}, MeterRecv{2, 0, 9, 8, "777"}});
  }
  Diagnosis d = diagnose(analysis_testing::make_trace(ev));
  ASSERT_TRUE(d.has("loss"));
  for (const auto& f : d.findings) {
    if (f.category == "loss") {
      EXPECT_NE(f.message.find("4 of 10"), std::string::npos) << f.message;
    }
  }
}

TEST(Diagnose, ClockSkewReported) {
  std::vector<std::pair<Stamp, meter::MeterBody>> ev = {
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 120, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
      {Stamp{0, 9000, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{1, 4000, 0}, MeterRecv{2, 0, 9, 8, ""}},  // before its send
  };
  Diagnosis d = diagnose(analysis_testing::make_trace(ev));
  ASSERT_TRUE(d.has("clocks"));
}

TEST(Diagnose, RenderTagsSeverities) {
  Diagnosis d;
  d.findings.push_back({Severity::warning, "x", "bad thing"});
  d.findings.push_back({Severity::info, "y", "fyi"});
  const std::string out = d.render();
  EXPECT_NE(out.find("[WARN] bad thing"), std::string::npos);
  EXPECT_NE(out.find("[info] fyi"), std::string::npos);
}

}  // namespace
}  // namespace dpm::analysis
