// Zero-copy meter→filter pipeline (§3.2–§3.4, §4).
//
// The monitor's hot path is meter_emit → batch flush → filter framing →
// selection → log. This benchmark measures both halves of the PR-2
// zero-copy rework against the paths they replaced:
//
//   * encode: MeterMsg::serialize_into appending straight into the pending
//     batch (with the batch capacity pre-reserved, as meter_emit does)
//     versus the old serialize-to-temporary-then-copy;
//   * filter ingestion: FilterEngine matching on wire views and decoding
//     only accepted records (EvalPath::view) versus decoding every record
//     first (EvalPath::owned);
//   * end-to-end: a metered World workload (send/recv-heavy,
//     accept/connect-heavy, mixed) whose meter batches are drained by a
//     sink process into a FilterEngine, timed in real seconds.
//
// Every run writes BENCH_pipeline.json (events/sec and bytes/sec for old
// vs zero-copy on the mixed workload, plus the equivalence verdict).
// `bench_pipeline --smoke` checks that the owned-Record and RecordView
// paths produce byte-identical selected log output (whole-batch and
// chunked feeds) and identical stats, validates the JSON, and exits; it is
// registered under ctest and also run under the sanitizer configuration.
#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "filter/filter_program.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"
#include "obs/snapshot.h"
#include "util/strings.h"
#include "workloads.h"

namespace dpm::bench {
namespace {

// ---- encode path: serialize+copy vs serialize_into ------------------------

/// The pre-PR meter_emit body: serialize into a temporary, copy into the
/// pending batch, swap the batch out at the flush threshold.
std::uint64_t encode_owned(const std::vector<meter::MeterMsg>& msgs,
                           std::size_t flush_bytes) {
  util::Bytes pending;
  std::uint64_t bytes = 0;
  for (const auto& m : msgs) {
    const util::Bytes wire = m.serialize();
    pending.insert(pending.end(), wire.begin(), wire.end());
    if (pending.size() >= flush_bytes) {
      util::Bytes batch;
      batch.swap(pending);
      bytes += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
  bytes += pending.size();
  benchmark::DoNotOptimize(pending.data());
  return bytes;
}

/// The zero-copy meter_emit body: reserve once per batch, encode in place.
std::uint64_t encode_zero_copy(const std::vector<meter::MeterMsg>& msgs,
                               std::size_t flush_bytes) {
  constexpr std::size_t kSlack = 256;  // meter_hooks' overshoot headroom
  util::Bytes pending;
  std::uint64_t bytes = 0;
  for (const auto& m : msgs) {
    if (pending.capacity() < flush_bytes + kSlack) {
      pending.reserve(flush_bytes + kSlack);
    }
    m.serialize_into(pending);
    if (pending.size() >= flush_bytes) {
      util::Bytes batch;
      batch.swap(pending);
      bytes += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
  bytes += pending.size();
  benchmark::DoNotOptimize(pending.data());
  return bytes;
}

constexpr int kEvents = 2000;
constexpr std::size_t kFlushBytes = 1024;  // WorldConfig default

void run_encode(benchmark::State& state, Workload w, bool zero_copy) {
  const auto msgs = make_messages(w, kEvents);
  std::uint64_t events = 0, bytes = 0;
  for (auto _ : state) {
    bytes += zero_copy ? encode_zero_copy(msgs, kFlushBytes)
                       : encode_owned(msgs, kFlushBytes);
    events += msgs.size();
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

void BM_Encode_Owned_SendRecv(benchmark::State& state) {
  run_encode(state, Workload::sendrecv, false);
}
void BM_Encode_ZeroCopy_SendRecv(benchmark::State& state) {
  run_encode(state, Workload::sendrecv, true);
}
void BM_Encode_Owned_AcceptConnect(benchmark::State& state) {
  run_encode(state, Workload::acceptconnect, false);
}
void BM_Encode_ZeroCopy_AcceptConnect(benchmark::State& state) {
  run_encode(state, Workload::acceptconnect, true);
}
void BM_Encode_Owned_Mixed(benchmark::State& state) {
  run_encode(state, Workload::mixed, false);
}
void BM_Encode_ZeroCopy_Mixed(benchmark::State& state) {
  run_encode(state, Workload::mixed, true);
}

BENCHMARK(BM_Encode_Owned_SendRecv);
BENCHMARK(BM_Encode_ZeroCopy_SendRecv);
BENCHMARK(BM_Encode_Owned_AcceptConnect);
BENCHMARK(BM_Encode_ZeroCopy_AcceptConnect);
BENCHMARK(BM_Encode_Owned_Mixed);
BENCHMARK(BM_Encode_ZeroCopy_Mixed);

// ---- filter ingestion: owned decode vs wire views -------------------------

void run_filter(benchmark::State& state, Workload w, filter::EvalPath path) {
  const util::Bytes batch = make_batch(w, kEvents);
  auto engine = make_engine(path);
  std::uint64_t records = 0, conn = 0;
  for (auto _ : state) {
    std::string log = engine.feed(++conn, batch);
    benchmark::DoNotOptimize(log);
    records += kEvents;
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["accept_rate"] =
      static_cast<double>(engine.stats().accepted) /
      static_cast<double>(engine.stats().records_in);
}

void BM_Filter_Owned_SendRecv(benchmark::State& state) {
  run_filter(state, Workload::sendrecv, filter::EvalPath::owned);
}
void BM_Filter_View_SendRecv(benchmark::State& state) {
  run_filter(state, Workload::sendrecv, filter::EvalPath::view);
}
void BM_Filter_Owned_AcceptConnect(benchmark::State& state) {
  run_filter(state, Workload::acceptconnect, filter::EvalPath::owned);
}
void BM_Filter_View_AcceptConnect(benchmark::State& state) {
  run_filter(state, Workload::acceptconnect, filter::EvalPath::view);
}
void BM_Filter_Owned_Mixed(benchmark::State& state) {
  run_filter(state, Workload::mixed, filter::EvalPath::owned);
}
void BM_Filter_View_Mixed(benchmark::State& state) {
  run_filter(state, Workload::mixed, filter::EvalPath::view);
}

BENCHMARK(BM_Filter_Owned_SendRecv);
BENCHMARK(BM_Filter_View_SendRecv);
BENCHMARK(BM_Filter_Owned_AcceptConnect);
BENCHMARK(BM_Filter_View_AcceptConnect);
BENCHMARK(BM_Filter_Owned_Mixed);
BENCHMARK(BM_Filter_View_Mixed);

// ---- end to end: meter_emit → flush → filter → log ------------------------

/// Drives a metered socketpair workload in a World; a sink process drains
/// the meter connection into a FilterEngine whose trace lines form the
/// log. Reports real-time events/sec through the whole pipeline.
void run_end_to_end(benchmark::State& state, filter::EvalPath path) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    kernel::WorldConfig cfg;
    cfg.meter_buffer_msgs = 16;
    auto world = make_world(2, cfg);

    auto engine = make_engine(path);
    std::string log;
    (void)world->spawn(2, "sink", 100, [&](kernel::Sys& sys) {
      auto ls = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 4);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto data = sys.recv(*conn, 65536);
        if (!data.ok() || data->empty()) break;
        engine.feed(1, *data, log);
      }
      engine.end_connection(1);
    });

    (void)world->spawn(1, "app", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("m1", 4500);
      auto ms = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.connect(*ms, *addr);
      (void)sys.setmeter(meter::SETMETER_SELF,
                         static_cast<std::int32_t>(meter::M_ALL), *ms);
      (void)sys.close(*ms);
      auto pair = sys.socketpair();
      for (int i = 0; i < 200; ++i) {
        (void)sys.send(pair->first, "0123456789abcdef");
        if (i % 8 == 0) (void)sys.recv(pair->second, 64);
      }
    });
    world->run();
    benchmark::DoNotOptimize(log);
    events += world->meter_stats().events;
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_EndToEnd_Owned(benchmark::State& state) {
  run_end_to_end(state, filter::EvalPath::owned);
}
void BM_EndToEnd_View(benchmark::State& state) {
  run_end_to_end(state, filter::EvalPath::view);
}

BENCHMARK(BM_EndToEnd_Owned)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_View)->Unit(benchmark::kMillisecond);

// ---- BENCH_pipeline.json --------------------------------------------------

struct PipelineBenchResult {
  double encode_owned_eps = 0;       // events/sec, serialize+copy
  double encode_zero_copy_eps = 0;   // events/sec, serialize_into
  double encode_owned_bps = 0;       // bytes/sec
  double encode_zero_copy_bps = 0;
  double encode_speedup = 0;
  double filter_owned_rps = 0;       // records/sec, decode-first
  double filter_view_rps = 0;        // records/sec, wire views
  double filter_speedup = 0;
  bool output_identical = false;
  int events = 0;
  std::string obs_snapshot_jsonl;  // view engine's registry after the runs
};

/// Byte-identical selected output, whole-batch and chunked (chunk
/// boundaries landing mid-record exercise the partial buffer), plus
/// identical accept/reject/malformed counters.
bool outputs_identical(const util::Bytes& batch) {
  auto owned = make_engine(filter::EvalPath::owned);
  auto view = make_engine(filter::EvalPath::view);
  const std::string a = owned.feed(1, batch);
  const std::string b = view.feed(1, batch);
  if (a != b) return false;

  std::string chunked;
  for (std::size_t pos = 0; pos < batch.size(); pos += 97) {
    const std::size_t n = std::min<std::size_t>(97, batch.size() - pos);
    chunked += view.feed(2, util::Bytes(batch.begin() + static_cast<std::ptrdiff_t>(pos),
                                        batch.begin() + static_cast<std::ptrdiff_t>(pos + n)));
  }
  view.end_connection(2);
  if (chunked != a) return false;

  const auto& so = owned.stats();
  const auto& sv = view.stats();
  return so.records_in * 2 == sv.records_in && so.accepted * 2 == sv.accepted &&
         so.rejected * 2 == sv.rejected && so.malformed == 0 &&
         sv.malformed == 0;
}

PipelineBenchResult run_pipeline_bench(int events, double min_seconds,
                                       int reps) {
  PipelineBenchResult r;
  r.events = events;

  const auto msgs = make_messages(Workload::mixed, events);
  const util::Bytes batch = make_batch(Workload::mixed, events);
  r.output_identical = outputs_identical(batch);

  const auto per_pass = static_cast<std::uint64_t>(events);
  std::uint64_t bytes = 0;
  std::uint64_t passes = 0;
  bytes = 0;
  r.encode_owned_eps = best_rate(
      reps, per_pass,
      [&] {
        bytes += encode_owned(msgs, kFlushBytes);
        ++passes;
      },
      min_seconds);
  r.encode_owned_bps =
      r.encode_owned_eps * static_cast<double>(bytes) /
      (static_cast<double>(passes) * static_cast<double>(events));

  bytes = 0;
  passes = 0;
  r.encode_zero_copy_eps = best_rate(
      reps, per_pass,
      [&] {
        bytes += encode_zero_copy(msgs, kFlushBytes);
        ++passes;
      },
      min_seconds);
  r.encode_zero_copy_bps =
      r.encode_zero_copy_eps * static_cast<double>(bytes) /
      (static_cast<double>(passes) * static_cast<double>(events));
  r.encode_speedup = r.encode_owned_eps > 0
                         ? r.encode_zero_copy_eps / r.encode_owned_eps
                         : 0;

  {
    auto engine = make_engine(filter::EvalPath::owned);
    std::uint64_t conn = 0;
    r.filter_owned_rps = best_rate(
        reps, per_pass,
        [&] {
          std::string log = engine.feed(++conn, batch);
          benchmark::DoNotOptimize(log);
        },
        min_seconds);
  }
  {
    auto engine = make_engine(filter::EvalPath::view);
    std::uint64_t conn = 0;
    r.filter_view_rps = best_rate(
        reps, per_pass,
        [&] {
          std::string log = engine.feed(++conn, batch);
          benchmark::DoNotOptimize(log);
        },
        min_seconds);
    // The registry the measured engine accounted through, embedded in the
    // JSON so a result file carries its own ground-truth counters.
    r.obs_snapshot_jsonl = engine.obs().snapshot_jsonl();
  }
  r.filter_speedup =
      r.filter_owned_rps > 0 ? r.filter_view_rps / r.filter_owned_rps : 0;
  return r;
}

constexpr const char* kJsonPath = "BENCH_pipeline.json";

bool write_bench_json(const PipelineBenchResult& r, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << util::strprintf(
      "{\n"
      "  \"bench\": \"pipeline_zero_copy\",\n"
      "  \"workload\": \"%s\",\n"
      "  \"events\": %d,\n"
      "  \"encode_owned_events_per_s\": %.0f,\n"
      "  \"encode_zero_copy_events_per_s\": %.0f,\n"
      "  \"encode_owned_bytes_per_s\": %.0f,\n"
      "  \"encode_zero_copy_bytes_per_s\": %.0f,\n"
      "  \"encode_speedup\": %.2f,\n"
      "  \"filter_owned_records_per_s\": %.0f,\n"
      "  \"filter_view_records_per_s\": %.0f,\n"
      "  \"filter_speedup\": %.2f,\n"
      "  \"output_identical\": %s,\n"
      "  \"obs_snapshot\": %s\n"
      "}\n",
      workload_name(Workload::mixed), r.events, r.encode_owned_eps,
      r.encode_zero_copy_eps, r.encode_owned_bps,
      r.encode_zero_copy_bps, r.encode_speedup, r.filter_owned_rps,
      r.filter_view_rps, r.filter_speedup,
      r.output_identical ? "true" : "false",
      obs::jsonl_to_json_array(r.obs_snapshot_jsonl, 4).c_str());
  return out.good();
}

bool validate_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string trimmed{util::trim(text)};
  if (trimmed.empty() || trimmed.front() != '{' || trimmed.back() != '}') {
    return false;
  }
  for (const char* key :
       {"\"bench\"", "\"events\"", "\"encode_owned_events_per_s\"",
        "\"encode_zero_copy_events_per_s\"", "\"encode_speedup\"",
        "\"filter_owned_records_per_s\"", "\"filter_view_records_per_s\"",
        "\"filter_speedup\"", "\"output_identical\"", "\"obs_snapshot\""}) {
    if (text.find(key) == std::string::npos) return false;
  }
  return text.find("\"output_identical\": true") != std::string::npos;
}

/// --smoke: the fast ctest (and sanitizer) entry point. Equivalence is the
/// pass/fail signal; the speedups are reported, not asserted, since
/// sanitized or loaded machines make timing assertions flaky.
int run_smoke() {
  // 0.3s per measured stage: long enough that the reported speedups are
  // representative (tiny windows are dominated by warmup noise), short
  // enough for ctest and the sanitizer configuration.
  const PipelineBenchResult r = run_pipeline_bench(512, 0.3, 3);
  const std::string snap_err = obs::validate_snapshot(r.obs_snapshot_jsonl);
  if (!snap_err.empty()) {
    std::fprintf(stderr, "bench_pipeline: bad embedded snapshot: %s\n",
                 snap_err.c_str());
    return 1;
  }
  if (!write_bench_json(r, kJsonPath)) {
    std::fprintf(stderr, "bench_pipeline: cannot write %s\n", kJsonPath);
    return 1;
  }
  if (!validate_bench_json(kJsonPath)) {
    std::fprintf(stderr, "bench_pipeline: %s is malformed\n", kJsonPath);
    return 1;
  }
  std::printf(
      "bench_pipeline --smoke: encode %.0f -> %.0f ev/s (%.2fx), "
      "filter %.0f -> %.0f rec/s (%.2fx), output_identical=%s -> %s\n",
      r.encode_owned_eps, r.encode_zero_copy_eps, r.encode_speedup,
      r.filter_owned_rps, r.filter_view_rps, r.filter_speedup,
      r.output_identical ? "true" : "false", kJsonPath);
  return r.output_identical ? 0 : 1;
}

}  // namespace
}  // namespace dpm::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return dpm::bench::run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto r = dpm::bench::run_pipeline_bench(2000, 0.5, 3);
  if (!dpm::bench::write_bench_json(r, dpm::bench::kJsonPath)) return 1;
  std::printf("wrote %s (encode %.2fx, filter %.2fx)\n", dpm::bench::kJsonPath,
              r.encode_speedup, r.filter_speedup);
  return 0;
}
